package repro

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/fm"
	"repro/internal/multilevel"
	"repro/internal/partition"
)

// BenchmarkObjective measures multistart direct k-way partitioning under the
// cut objective against the connectivity (km1) objective at k = 2, 4, 8. Both
// sides run the identical candidate starts (same seeds; the FM kernel's move
// trajectory is objective-independent, see fm.Objective), so the comparison
// isolates what selecting on each metric buys. The first run writes
// BENCH_objective.json, a committed baseline for the objective layer, and
// enforces the quality bar: at every k the km1-optimized mean km1 must be at
// or below the cut-optimized mean km1. At k = 2 the objectives coincide, so
// that row doubles as an identity check (equal means on both metrics).
func BenchmarkObjective(b *testing.B) {
	nl := mustNetlist(b, "IBM01S", benchScale())
	const starts = 4
	runOne := func(k int, obj fm.Objective, seed uint64) (*multilevel.Result, time.Duration) {
		p := partition.NewFree(nl.H, k, 0.05)
		rng := rand.New(rand.NewPCG(seed, 0x0b7))
		t0 := time.Now()
		res, err := multilevel.MultistartKWay(p, multilevel.Config{Objective: obj}, starts, rng)
		if err != nil {
			b.Fatal(err)
		}
		return res, time.Since(t0)
	}
	ks := []int{2, 4, 8}
	for _, k := range ks {
		for _, obj := range []fm.Objective{fm.ObjectiveCut, fm.ObjectiveKM1} {
			b.Run(fmt.Sprintf("%s/k=%d", obj, k), func(b *testing.B) {
				var res *multilevel.Result
				for i := 0; i < b.N; i++ {
					res, _ = runOne(k, obj, 1)
				}
				b.ReportMetric(float64(res.Cut), "cut")
				b.ReportMetric(float64(res.KMinus1), "km1")
			})
		}
	}
	objectiveBaselineOnce.Do(func() {
		base := objectiveBaseline{Instance: "IBM01S", Scale: benchScale(), Seeds: 3, Starts: starts}
		for _, k := range ks {
			row := objectiveSample{K: k}
			for seed := uint64(1); seed <= uint64(base.Seeds); seed++ {
				cres, ct := runOne(k, fm.ObjectiveCut, seed)
				kres, kt := runOne(k, fm.ObjectiveKM1, seed)
				row.CutOptCut += float64(cres.Cut)
				row.CutOptKM1 += float64(cres.KMinus1)
				row.KM1OptCut += float64(kres.Cut)
				row.KM1OptKM1 += float64(kres.KMinus1)
				row.CutNS += ct.Nanoseconds()
				row.KM1NS += kt.Nanoseconds()
			}
			n := float64(base.Seeds)
			row.CutOptCut /= n
			row.CutOptKM1 /= n
			row.KM1OptCut /= n
			row.KM1OptKM1 /= n
			row.CutNS /= int64(base.Seeds)
			row.KM1NS /= int64(base.Seeds)
			if row.KM1OptKM1 > row.CutOptKM1 {
				b.Errorf("k=%d: km1-optimized mean km1 %.1f > cut-optimized mean km1 %.1f (acceptance bar)",
					k, row.KM1OptKM1, row.CutOptKM1)
			}
			if k == 2 && (row.KM1OptKM1 != row.CutOptKM1 || row.KM1OptCut != row.CutOptCut) {
				b.Errorf("k=2: objectives must coincide, got cut-opt (%.1f,%.1f) vs km1-opt (%.1f,%.1f)",
					row.CutOptCut, row.CutOptKM1, row.KM1OptCut, row.KM1OptKM1)
			}
			base.Rows = append(base.Rows, row)
		}
		buf, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_objective.json", append(buf, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		fmt.Println("wrote BENCH_objective.json")
	})
}

var objectiveBaselineOnce sync.Once

// objectiveBaseline is the schema of BENCH_objective.json.
type objectiveBaseline struct {
	Instance string            `json:"instance"`
	Scale    float64           `json:"scale"`
	Seeds    int               `json:"seeds"`
	Starts   int               `json:"starts"`
	Rows     []objectiveSample `json:"rows"`
}

type objectiveSample struct {
	K         int     `json:"k"`
	CutOptCut float64 `json:"cut_opt_cut"`
	CutOptKM1 float64 `json:"cut_opt_km1"`
	KM1OptCut float64 `json:"km1_opt_cut"`
	KM1OptKM1 float64 `json:"km1_opt_km1"`
	CutNS     int64   `json:"cut_ns"`
	KM1NS     int64   `json:"km1_ns"`
}
