package repro

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/fm"
	"repro/internal/multilevel"
	"repro/internal/partition"
)

// BenchmarkLocalizedFM measures the localized parallel FM stage
// (Config.LocalizedFMWorkers) end to end on million-cell instances, one row
// per worker count in {1, 2, 4, 8} plus the stage-off baseline
// (LocalizedFMWorkers=0 with RefineWorkers=1: the pre-stage pipeline, whose
// finest level runs the full serial polish). Coarsening is paid once per
// instance and shared by every row through Hierarchy.WithRefinement, so the
// rows time exactly what the stage changes: the refinement phase
// (refine_parallel_ns + refine_localized_ns + refine_ns) of a full descent.
//
// Every worker row is verified bit-identical to the workers=1 row — cut, km1
// and assignment — before its timing counts, for both objectives; the
// determinism checks run unconditionally on every host. Quality is bounded
// statistically against the stage-off baseline: per objective, the mean cut
// and mean km1 over the quality seeds must stay within 2% of the baseline
// means (the per-trial distribution lives in internal/multilevel's
// TestLocalizedFMDifferentialQuality).
//
// Environment knobs:
//
//	REPRO_LFM_PRESET  comma-separated instance presets
//	                  (default "HUGE1,HUGE2")
//	REPRO_LFM_SCALE   preset scale factor (default 1.0; CI smoke-tests a
//	                  reduced scale)
//
// As in BenchmarkParallelRefine, rows raise GOMAXPROCS toward the worker
// count but never past runtime.NumCPU(), then clamp the effective worker
// count to the GOMAXPROCS actually granted (counts >= 1 are bit-identical,
// so the clamp only removes oversubscription overhead); each row records
// both the requested and effective counts. The first run writes
// BENCH_lfm.json (num_cpu recorded) and enforces the bars the host can
// support: the refinement phase at 8 workers must be >= 2.5x faster than
// the serial-polish baseline given 8 cores, >= 1.5x given 4, >= 1.2x given
// 2; unconditionally — on every host, including single-core ones — the
// 1-worker row's refinement time must stay within 1.3x of the baseline
// (the localized stage plus its 1-pass tail replaces the full polish, so
// even serial it must not cost more than a bounded overhead).
func BenchmarkLocalizedFM(b *testing.B) {
	presets := strings.Split(envStr("REPRO_LFM_PRESET", "HUGE1,HUGE2"), ",")
	scale := envFloat("REPRO_LFM_SCALE", 1.0)
	workerCounts := []int{1, 2, 4, 8}
	objectives := []fm.Objective{fm.ObjectiveCut, fm.ObjectiveKM1}
	// Quality means are taken over these descent seeds; the first seed also
	// provides the timing rows.
	qualitySeeds := []uint64{131, 227, 311}

	// descend runs one full descent of h at the given LocalizedFMWorkers
	// count (RefineWorkers pinned to 1, the stage-on default of the prior
	// pipeline) and reports the result, the per-phase refinement
	// nanoseconds, the GOMAXPROCS granted and the effective worker count
	// after the clamp.
	descend := func(b *testing.B, h *multilevel.Hierarchy, obj fm.Objective, workers int, seed uint64) (*multilevel.Result, lfmPhases, int, int) {
		procs := runtime.GOMAXPROCS(0)
		if target := min(workers, runtime.NumCPU()); target > procs {
			prev := runtime.GOMAXPROCS(target)
			defer runtime.GOMAXPROCS(prev)
			procs = target
		}
		effective := workers
		if effective > procs {
			effective = procs
		}
		phases := &multilevel.PhaseStats{}
		res, err := h.WithRefinement(multilevel.Config{
			Objective:          obj,
			RefineWorkers:      1,
			LocalizedFMWorkers: effective,
			Stats:              phases,
		}).Descend(rand.New(rand.NewPCG(seed, 17)))
		if err != nil {
			b.Fatal(err)
		}
		return res, lfmPhases{
			Rounds:    phases.RefineParallelNS,
			Localized: phases.RefineLocalizedNS,
			Polish:    phases.RefineNS,
		}, procs, effective
	}

	build := func(b *testing.B, preset string) (*multilevel.Hierarchy, *partition.Problem) {
		nl := mustNetlist(b, preset, scale)
		p := partition.NewBipartition(nl.H, 0.02)
		h, err := multilevel.BuildHierarchy(p, multilevel.Config{CoarsenWorkers: min(8, runtime.NumCPU())}, rand.New(rand.NewPCG(31, 41)))
		if err != nil {
			b.Fatal(err)
		}
		return h, p
	}

	for _, preset := range presets {
		h, _ := build(b, preset)
		for _, workers := range append([]int{0}, workerCounts...) {
			b.Run(fmt.Sprintf("%s/workers=%d", preset, workers), func(b *testing.B) {
				var ph lfmPhases
				for i := 0; i < b.N; i++ {
					_, ph, _, _ = descend(b, h, fm.ObjectiveCut, workers, qualitySeeds[0])
				}
				b.ReportMetric(float64(ph.Rounds+ph.Localized+ph.Polish)/1e6, "refine-ms")
			})
		}
	}

	lfmBaselineOnce.Do(func() {
		base := lfmBaseline{
			Scale:        scale,
			NumCPU:       runtime.NumCPU(),
			GOMAXPROCS:   runtime.GOMAXPROCS(0),
			QualitySeeds: len(qualitySeeds),
		}
		for _, preset := range presets {
			h, p := build(b, preset)
			inst := lfmInstance{
				Instance: preset,
				Vertices: p.H.NumVertices(),
				Nets:     p.H.NumNets(),
				Pins:     p.H.NumPins(),
				Levels:   h.Levels(),
			}
			for _, obj := range objectives {
				row := lfmObjective{Objective: obj.String()}

				// Stage-off baseline: timing from the first seed, quality
				// means over all seeds.
				var baseCutSum, baseKM1Sum int64
				for i, seed := range qualitySeeds {
					res, ph, _, _ := descend(b, h, obj, 0, seed)
					baseCutSum += res.Cut
					baseKM1Sum += res.KMinus1
					if i == 0 {
						row.BaselineRoundsNS = ph.Rounds
						row.BaselinePolishNS = ph.Polish
						row.BaselineRefineNS = ph.Rounds + ph.Localized + ph.Polish
						row.BaselineCut = res.Cut
						row.BaselineKM1 = res.KMinus1
					}
				}
				row.BaselineMeanCut = float64(baseCutSum) / float64(len(qualitySeeds))
				row.BaselineMeanKM1 = float64(baseKM1Sum) / float64(len(qualitySeeds))

				// Localized rows at the first seed: timing plus the
				// unconditional bit-identity contract against workers=1.
				var refCut, refKM1 int64
				var refAssign partition.Assignment
				for _, workers := range workerCounts {
					res, ph, procs, effective := descend(b, h, obj, workers, qualitySeeds[0])
					if workers == workerCounts[0] {
						refCut, refKM1, refAssign = res.Cut, res.KMinus1, res.Assignment
					} else {
						if res.Cut != refCut || res.KMinus1 != refKM1 {
							b.Errorf("%s %s workers=%d: cut/km1 %d/%d != workers=1 %d/%d (determinism contract broken)",
								preset, obj, workers, res.Cut, res.KMinus1, refCut, refKM1)
						}
						for v := range refAssign {
							if res.Assignment[v] != refAssign[v] {
								b.Errorf("%s %s workers=%d: assignment diverges from workers=1 at vertex %d", preset, obj, workers, v)
								break
							}
						}
					}
					refineNS := ph.Rounds + ph.Localized + ph.Polish
					row.Rows = append(row.Rows, lfmSample{
						Workers:          workers,
						EffectiveWorkers: effective,
						GOMAXPROCS:       procs,
						RoundsNS:         ph.Rounds,
						LocalizedNS:      ph.Localized,
						PolishNS:         ph.Polish,
						RefineNS:         refineNS,
						Speedup:          float64(row.BaselineRefineNS) / float64(refineNS),
						Cut:              res.Cut,
						KMinus1:          res.KMinus1,
					})
				}

				// Quality means for the localized pipeline (workers=1; every
				// count is bit-identical, so one count speaks for all).
				locCutSum, locKM1Sum := row.Rows[0].Cut, row.Rows[0].KMinus1
				for _, seed := range qualitySeeds[1:] {
					res, _, _, _ := descend(b, h, obj, 1, seed)
					locCutSum += res.Cut
					locKM1Sum += res.KMinus1
				}
				row.LocalizedMeanCut = float64(locCutSum) / float64(len(qualitySeeds))
				row.LocalizedMeanKM1 = float64(locKM1Sum) / float64(len(qualitySeeds))
				row.CutRatio = row.LocalizedMeanCut / row.BaselineMeanCut
				row.KM1Ratio = row.LocalizedMeanKM1 / row.BaselineMeanKM1
				if row.CutRatio > 1.02 {
					b.Errorf("%s %s: localized mean cut %.1f exceeds baseline mean %.1f by more than 2%%",
						preset, obj, row.LocalizedMeanCut, row.BaselineMeanCut)
				}
				if row.KM1Ratio > 1.02 {
					b.Errorf("%s %s: localized mean km1 %.1f exceeds baseline mean %.1f by more than 2%%",
						preset, obj, row.LocalizedMeanKM1, row.BaselineMeanKM1)
				}

				// Speedup bars scale with the cores the host can grant; the
				// 1-worker overhead bound holds everywhere.
				row1, row8 := row.Rows[0], row.Rows[len(row.Rows)-1]
				if float64(row1.RefineNS) > 1.3*float64(row.BaselineRefineNS) {
					b.Errorf("%s %s workers=1: refinement %.1fms exceeds the 1.3x overhead bound over the serial-polish baseline %.1fms",
						preset, obj, float64(row1.RefineNS)/1e6, float64(row.BaselineRefineNS)/1e6)
				}
				switch {
				case base.NumCPU >= 8 && row8.Speedup < 2.5:
					b.Errorf("%s %s: refine speedup at 8 workers %.2fx below the 2.5x bar on %d cores (baseline %.1fms vs %.1fms)",
						preset, obj, row8.Speedup, base.NumCPU, float64(row.BaselineRefineNS)/1e6, float64(row8.RefineNS)/1e6)
				case base.NumCPU >= 4 && base.NumCPU < 8 && row8.Speedup < 1.5:
					b.Errorf("%s %s: refine speedup at 8 workers %.2fx below the 1.5x bar on %d cores", preset, obj, row8.Speedup, base.NumCPU)
				case base.NumCPU >= 2 && base.NumCPU < 4 && row8.Speedup < 1.2:
					b.Errorf("%s %s: refine speedup at 8 workers %.2fx below the 1.2x bar on %d cores", preset, obj, row8.Speedup, base.NumCPU)
				}
				inst.Objectives = append(inst.Objectives, row)
			}
			base.Instances = append(base.Instances, inst)
		}

		buf, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_lfm.json", append(buf, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		for _, inst := range base.Instances {
			for _, row := range inst.Objectives {
				row8 := row.Rows[len(row.Rows)-1]
				fmt.Printf("wrote BENCH_lfm.json row (%s@%g %s, baseline refine %.1fms, 8-worker speedup %.2fx on %d cores, mean cut %.1f vs baseline %.1f)\n",
					inst.Instance, scale, row.Objective, float64(row.BaselineRefineNS)/1e6, row8.Speedup, base.NumCPU, row.LocalizedMeanCut, row.BaselineMeanCut)
			}
		}
	})
}

var lfmBaselineOnce sync.Once

// lfmPhases splits one descent's refinement phase: Rounds is the parallel
// round stage (refine_parallel_ns), Localized the localized FM stage at the
// finest level (refine_localized_ns), Polish the serial FM passes
// (refine_ns).
type lfmPhases struct {
	Rounds, Localized, Polish int64
}

// lfmBaseline is the schema of BENCH_lfm.json. Per instance and objective,
// baseline_refine_ns is the refinement phase of the LocalizedFMWorkers=0
// pipeline (RefineWorkers=1, full serial polish at the finest level — the
// quality and speed baseline) and each row's speedup is that divided by the
// row's rounds+localized+polish refinement time; cut_ratio/km1_ratio compare
// quality means over quality_seeds descents; num_cpu records how many real
// cores the rows could use, which is what the speedup bars (and the CI smoke
// assertion) condition on.
type lfmBaseline struct {
	Scale        float64       `json:"scale"`
	NumCPU       int           `json:"num_cpu"`
	GOMAXPROCS   int           `json:"gomaxprocs"`
	QualitySeeds int           `json:"quality_seeds"`
	Instances    []lfmInstance `json:"instances"`
}

type lfmInstance struct {
	Instance   string         `json:"instance"`
	Vertices   int            `json:"vertices"`
	Nets       int            `json:"nets"`
	Pins       int            `json:"pins"`
	Levels     int            `json:"levels"`
	Objectives []lfmObjective `json:"objectives"`
}

type lfmObjective struct {
	Objective        string      `json:"objective"`
	BaselineRoundsNS int64       `json:"baseline_rounds_ns"`
	BaselinePolishNS int64       `json:"baseline_polish_ns"`
	BaselineRefineNS int64       `json:"baseline_refine_ns"`
	BaselineCut      int64       `json:"baseline_cut"`
	BaselineKM1      int64       `json:"baseline_km1"`
	BaselineMeanCut  float64     `json:"baseline_mean_cut"`
	BaselineMeanKM1  float64     `json:"baseline_mean_km1"`
	LocalizedMeanCut float64     `json:"localized_mean_cut"`
	LocalizedMeanKM1 float64     `json:"localized_mean_km1"`
	CutRatio         float64     `json:"cut_ratio"`
	KM1Ratio         float64     `json:"km1_ratio"`
	Rows             []lfmSample `json:"rows"`
}

type lfmSample struct {
	Workers int `json:"workers"`
	// EffectiveWorkers is the count the row actually ran after the
	// GOMAXPROCS clamp (identical results; see the benchmark comment).
	EffectiveWorkers int     `json:"effective_workers"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
	RoundsNS         int64   `json:"rounds_ns"`
	LocalizedNS      int64   `json:"localized_ns"`
	PolishNS         int64   `json:"polish_ns"`
	RefineNS         int64   `json:"refine_ns"`
	Speedup          float64 `json:"speedup"`
	Cut              int64   `json:"cut"`
	KMinus1          int64   `json:"km1"`
}
