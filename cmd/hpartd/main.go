// Command hpartd serves hypergraph partitioning over HTTP.
//
// It wraps the multilevel fixed-vertex partitioner in a long-running service
// with a hierarchy cache, admission control and Prometheus metrics — see
// internal/server for the endpoint contract and README.md for usage examples.
//
// Usage:
//
//	hpartd [flags]
//
// Flags:
//
//	-addr string        listen address (default ":8080")
//	-concurrency int    concurrent partition runs (default GOMAXPROCS)
//	-queue int          admission queue depth (default 2*concurrency)
//	-cache int          hierarchy cache capacity in instances (default 32)
//	-run-workers int    goroutines per run's multistart fan-out (default 1)
//	-coarsen-workers int  default goroutines inside each coarsening descent
//	                    (default 1; requests may override with
//	                    "coarsen_workers", clamped to GOMAXPROCS; never
//	                    changes results)
//	-refine-workers int  default worker count for the synchronous-round
//	                    parallel refinement stage in each descent (default 1:
//	                    stage on; 0 disables it, restoring serial-only
//	                    refinement; requests may override with
//	                    "refine_workers", clamped to GOMAXPROCS; every count
//	                    >= 1 is bit-identical)
//	-localized-fm-workers int  default worker count for the localized FM
//	                    stage at the finest level of each descent (default 1:
//	                    stage on; 0 disables it, restoring the full serial
//	                    polish; requests may override with
//	                    "localized_fm_workers", clamped to GOMAXPROCS; every
//	                    count >= 1 is bit-identical)
//	-max-body int       request body limit in bytes (default 32 MiB)
//	-max-starts int     per-request multistart limit (default 64)
//	-timeout duration   default per-request timeout (default 1m)
//	-max-timeout duration  cap on requested timeouts (default 5m)
//	-drain duration     graceful-shutdown drain budget (default 30s)
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains in-flight runs
// for the -drain budget, then hard-cancels stragglers (they respond with
// their best-so-far truncated results) and exits.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	concurrency := flag.Int("concurrency", 0, "concurrent partition runs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 2*concurrency)")
	cache := flag.Int("cache", 32, "hierarchy cache capacity in instances")
	runWorkers := flag.Int("run-workers", 1, "goroutines per run's multistart fan-out")
	coarsenWorkers := flag.Int("coarsen-workers", 1, "default goroutines inside each coarsening descent (clamped to GOMAXPROCS; never changes results)")
	refineWorkers := flag.Int("refine-workers", 1, "default parallel-refinement workers per descent (0 disables the round stage; counts >= 1 are bit-identical; clamped to GOMAXPROCS)")
	localizedFMWorkers := flag.Int("localized-fm-workers", 1, "default localized-FM workers at the finest level (0 disables the stage; counts >= 1 are bit-identical; clamped to GOMAXPROCS)")
	maxBody := flag.Int64("max-body", 32<<20, "request body limit in bytes")
	maxStarts := flag.Int("max-starts", 64, "per-request multistart limit")
	timeout := flag.Duration("timeout", time.Minute, "default per-request timeout")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on requested timeouts")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	flag.Parse()

	srv := server.New(server.Config{
		Concurrency:        *concurrency,
		QueueDepth:         *queue,
		CacheEntries:       *cache,
		RunWorkers:         *runWorkers,
		CoarsenWorkers:     *coarsenWorkers,
		RefineWorkers:      *refineWorkers,
		LocalizedFMWorkers: *localizedFMWorkers,
		MaxBodyBytes:       *maxBody,
		MaxStarts:          *maxStarts,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("hpartd listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case sig := <-sigCh:
		log.Printf("received %v, draining for up to %v", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("hpartd stopped")
}
