package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bookshelf"
)

func TestRunWritesPlacement(t *testing.T) {
	out := filepath.Join(t.TempDir(), "p.pl")
	if err := run("IBM01S", 0.02, 1, out, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lines := 0
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 4 {
			t.Fatalf("malformed line %q", sc.Text())
		}
		lines++
	}
	if lines < 200 {
		t.Errorf("placement file has %d lines", lines)
	}
}

func TestRunUnknownPreset(t *testing.T) {
	if err := run("NOPE", 0.1, 1, "", ""); err == nil {
		t.Error("want error for unknown preset")
	}
}

func TestRunWritesGSRC(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "ibm")
	if err := run("IBM01S", 0.02, 1, "", base); err != nil {
		t.Fatalf("run: %v", err)
	}
	got, err := bookshelf.ReadGSRC(dir, "ibm")
	if err != nil {
		t.Fatalf("ReadGSRC: %v", err)
	}
	if got.H.NumVertices() < 200 {
		t.Errorf("vertices = %d", got.H.NumVertices())
	}
	fixedPads := 0
	for v := 0; v < got.H.NumVertices(); v++ {
		if got.H.IsPad(v) && got.Fixed[v] {
			fixedPads++
		}
	}
	if fixedPads == 0 {
		t.Error("no fixed pads in .pl")
	}
}
