// Command placer runs the top-down min-cut placer on a synthetic circuit and
// reports wirelength; optionally it writes the (x, y) locations, the raw
// material from which the paper's Section IV benchmarks are derived.
//
// Usage:
//
//	placer [-preset IBM01S] [-scale 0.25] [-seed 1] [-out placement.pl]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bookshelf"
	"repro/internal/gen"
	"repro/internal/place"
)

func main() {
	var (
		preset = flag.String("preset", "IBM01S", "circuit preset")
		scale  = flag.Float64("scale", 0.25, "scale factor")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("out", "", "write cell locations to this file")
		gsrc   = flag.String("gsrc", "", "also write a GSRC bookshelf .nodes/.nets/.pl trio with this base path (e.g. out/ibm01s)")
	)
	flag.Parse()
	if err := run(*preset, *scale, *seed, *out, *gsrc); err != nil {
		fmt.Fprintln(os.Stderr, "placer:", err)
		os.Exit(1)
	}
}

func run(preset string, scale float64, seed uint64, out, gsrc string) error {
	pr, err := gen.PresetByName(preset)
	if err != nil {
		return err
	}
	nl, err := gen.Generate(pr.Params.Scaled(scale))
	if err != nil {
		return err
	}
	nv := nl.H.NumVertices()
	fx := make([]float64, nv)
	fy := make([]float64, nv)
	for v := 0; v < nv; v++ {
		if nl.H.IsPad(v) {
			fx[v] = float64(nl.CellX[v])
			fy[v] = float64(nl.CellY[v])
		} else {
			fx[v], fy[v] = math.NaN(), math.NaN()
		}
	}
	t0 := time.Now()
	pl, err := place.Place(nl.H, place.Config{
		Width: float64(nl.GridSide), Height: float64(nl.GridSide),
		FixedX: fx, FixedY: fy,
	}, rand.New(rand.NewPCG(seed, 0x91ace)))
	if err != nil {
		return err
	}
	fmt.Printf("%s: %v placed in %v, HPWL = %.0f\n", preset, nl.H, time.Since(t0), pl.HPWL())
	if gsrc != "" {
		dir, base := filepath.Split(gsrc)
		if dir == "" {
			dir = "."
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		fixed := make([]bool, nv)
		for v := range fixed {
			fixed[v] = nl.H.IsPad(v)
		}
		if err := bookshelf.WriteGSRC(dir, base, nl.H, pl.X, pl.Y, fixed); err != nil {
			return err
		}
		fmt.Printf("wrote %s.nodes/.nets/.pl\n", gsrc)
	}
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for v := 0; v < nv; v++ {
		kind := "cell"
		if nl.H.IsPad(v) {
			kind = "pad"
		}
		fmt.Fprintf(w, "%s %s %.3f %.3f\n", nl.H.VertexName(v), kind, pl.X[v], pl.Y[v])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return f.Close()
}
