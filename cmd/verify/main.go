// Command verify checks a solution file against a fixed-terminals benchmark
// bundle: it recomputes the cut objectives, verifies balance in every
// resource, and confirms that every fixed or OR-region terminal sits in an
// allowed partition. It is the evaluator that would accompany a published
// benchmark suite.
//
// Usage:
//
//	verify -dir bench -base IBM01SB_L1_V0_V -sol best.sol
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bookshelf"
	"repro/internal/partition"
)

func main() {
	var (
		dir  = flag.String("dir", ".", "directory holding the benchmark bundle")
		base = flag.String("base", "", "bundle base name (required)")
		sol  = flag.String("sol", "", "solution file (required)")
	)
	flag.Parse()
	if *base == "" || *sol == "" {
		fmt.Fprintln(os.Stderr, "verify: -base and -sol are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*dir, *base, *sol); err != nil {
		fmt.Fprintln(os.Stderr, "verify: FAIL:", err)
		os.Exit(1)
	}
}

func run(dir, base, sol string) error {
	p, err := bookshelf.ReadProblem(dir, base)
	if err != nil {
		return err
	}
	f, err := os.Open(sol)
	if err != nil {
		return err
	}
	defer f.Close()
	a, err := bookshelf.ReadSolution(f, p)
	if err != nil {
		return err
	}
	if err := p.Feasible(a); err != nil {
		return err
	}
	w := partition.PartWeights(p.H, a, p.K)
	fmt.Printf("instance %s: %v, k=%d, %d fixed (%.1f%%)\n",
		base, p.H, p.K, p.NumFixed(), 100*p.FixedFraction())
	fmt.Printf("solution OK: cut=%d cutnets=%d lambda-1=%d soed=%d\n",
		partition.Cut(p.H, a), partition.CutNets(p.H, a),
		partition.KMinus1(p.H, a), partition.SOED(p.H, a))
	for q := 0; q < p.K; q++ {
		fmt.Printf("  part %d:", q)
		for r := 0; r < p.H.NumResources(); r++ {
			fmt.Printf(" %d in [%d,%d]", w[q][r], p.Balance.Min[q][r], p.Balance.Max[q][r])
		}
		fmt.Println()
	}
	rep := partition.Constrainedness(p)
	fmt.Printf("constraint: netfix=%.3f touch=%.3f forced-cut>=%d\n",
		rep.ConstrainedNetFraction, rep.TouchedFreeFraction, rep.ForcedCut)
	return nil
}
