package main

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bookshelf"
	"repro/internal/gen"
	"repro/internal/multilevel"
	"repro/internal/partition"
)

func TestVerifyAcceptsValidSolution(t *testing.T) {
	dir := t.TempDir()
	nl, err := gen.Generate(gen.Params{
		Cells: 150, Pads: 6, RentExponent: 0.65, PinsPerCell: 3.6, AvgNetSize: 3.3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := partition.NewBipartition(nl.H, 0.05)
	rng := rand.New(rand.NewPCG(1, 1))
	for v := 0; v < nl.H.NumVertices(); v++ {
		if nl.H.IsPad(v) {
			p.Fix(v, rng.IntN(2))
		}
	}
	if err := bookshelf.WriteProblem(dir, "t", p); err != nil {
		t.Fatal(err)
	}
	res, err := multilevel.Partition(p, multilevel.Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	sol := filepath.Join(dir, "t.sol")
	f, err := os.Create(sol)
	if err != nil {
		t.Fatal(err)
	}
	if err := bookshelf.WriteSolution(f, p, res.Assignment); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(dir, "t", sol); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestVerifyRejectsBadSolutions(t *testing.T) {
	dir := t.TempDir()
	nl, err := gen.Generate(gen.Params{
		Cells: 100, Pads: 4, RentExponent: 0.65, PinsPerCell: 3.6, AvgNetSize: 3.3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := partition.NewBipartition(nl.H, 0.05)
	p.Fix(0, 1)
	if err := bookshelf.WriteProblem(dir, "t", p); err != nil {
		t.Fatal(err)
	}
	write := func(name string, a partition.Assignment) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := bookshelf.WriteSolution(f, p, a); err != nil {
			t.Fatal(err)
		}
		return path
	}
	// Unbalanced: everything in part 0 — and it also violates the fixture.
	bad := write("bad.sol", make(partition.Assignment, nl.H.NumVertices()))
	if err := run(dir, "t", bad); err == nil {
		t.Error("want error for infeasible solution")
	}
	if err := run(dir, "t", filepath.Join(dir, "missing.sol")); err == nil {
		t.Error("want error for missing solution file")
	}
	if err := run(dir, "missing", bad); err == nil {
		t.Error("want error for missing bundle")
	}
}
