// Command experiments regenerates the paper's tables and figures on the
// synthetic IBM01S-IBM05S circuits.
//
// Usage:
//
//	experiments -exp table1|fig1|fig2|table2|table3|table4|multiway|
//	                 constraint|profile|starts|objective|all
//	            [-scale 0.25] [-trials 10] [-seed 1] [-workers 0]
//	            [-refine-workers 0] [-localized-fm-workers 0]
//	            [-objective cut|km1] [-stats]
//	            [-csv sweep.csv] [-cpuprofile cpu.pprof]
//	            [-memprofile mem.pprof]
//
// The experiment ids beyond the paper's tables and figures are the extension
// studies: constraint (constraint-strength sweep), profile (within-pass gain
// profiles), starts (multistart-effort curve), objective (cut- vs
// km1-optimized multistart at k in {2,4,8}). -csv additionally writes the
// fig1/fig2 sweep data as CSV for external plotting.
//
// -objective selects the metric every multilevel run in the sweeps optimizes
// and selects starts by ("cut", the default, or "km1"); the objective study
// itself always runs both.
//
// Independent experiment cells run on -workers goroutines (0 = GOMAXPROCS);
// results are identical for every worker count.
//
// -refine-workers > 0 enables the deterministic synchronous-round parallel
// refinement stage inside every multilevel run of the sweeps (counts >= 1
// are bit-identical to each other). The default 0 keeps the serial-only
// refinement the published study numbers were produced with — turning the
// stage on changes the exact cuts, not just wall-clock.
//
// -localized-fm-workers > 0 likewise enables the deterministic localized FM
// stage at the finest level of every multilevel run (counts >= 1 are
// bit-identical to each other); the default 0 keeps the full serial polish
// the published study numbers were produced with.
//
// -cpuprofile/-memprofile write pprof profiles of the whole run; multilevel
// phases carry pprof labels
// (phase=coarsen|init|refine_parallel|refine_localized|refine) for -tagfocus.
//
// CPU numbers are host wall-clock; the paper's were measured on 1990s Sun
// hardware, so only relative comparisons are meaningful.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"

	"repro/internal/benchgen"
	"repro/internal/experiments"
	"repro/internal/fm"
	"repro/internal/gen"
	"repro/internal/multilevel"
	"repro/internal/place"
	"repro/internal/profiling"
	"repro/internal/rent"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id: table1, fig1, fig2, table2, table3, table4, multiway, constraint, profile, starts, objective or all")
		objective  = flag.String("objective", "cut", "metric multilevel runs optimize and select by: cut or km1")
		scale      = flag.Float64("scale", 0.25, "scale factor for circuit sizes")
		trials     = flag.Int("trials", 10, "trials per data point (paper: 50)")
		seed       = flag.Uint64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "goroutines for independent cells (0 = GOMAXPROCS)")
		refineW    = flag.Int("refine-workers", 0, "parallel-refinement workers per descent (0 keeps the study's serial-only refinement; counts >= 1 are bit-identical)")
		localizedW = flag.Int("localized-fm-workers", 0, "localized-FM workers at the finest level (0 keeps the study's full serial polish; counts >= 1 are bit-identical)")
		csvOut     = flag.String("csv", "", "also write fig1/fig2 sweep data as CSV to this file")
		stats      = flag.Bool("stats", false, "print per-phase timings and FM kernel work counters after the run")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	csvPath = *csvOut
	cellWorkers = *workers
	refineWorkers = *refineW
	localizedFMWorkers = *localizedW
	var err error
	mlObjective, err = fm.ParseObjective(*objective)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	if *stats {
		mlStats = &multilevel.PhaseStats{}
	}
	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	err = run(*exp, *scale, *trials, *seed)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if mlStats != nil {
		k := mlStats.Kernel.Snapshot()
		fmt.Printf("\nmultilevel phases: coarsen %.1f ms, init %.1f ms, refine %.1f ms\n",
			float64(mlStats.CoarsenNS)/1e6, float64(mlStats.InitNS)/1e6, float64(mlStats.RefineNS)/1e6)
		red := "-"
		if k.PinsScanned > 0 {
			red = fmt.Sprintf("%.2fx", float64(k.PinsScanned+k.PinScansAvoided)/float64(k.PinsScanned))
		}
		fmt.Printf("fm kernel: %d locked nets skipped, %d/%d pin scans avoided/executed (%s reduction), %d bucket updates saved\n",
			k.NetsSkipped, k.PinScansAvoided, k.PinsScanned, red, k.BucketUpdatesSaved)
	}
}

func run(exp string, scale float64, trials int, seed uint64) error {
	runners := map[string]func() error{
		"table1":     func() error { return table1() },
		"fig1":       func() error { return figure("IBM01S", scale, trials, seed) },
		"fig2":       func() error { return figure("IBM03S", scale, trials, seed) },
		"table2":     func() error { return table2(scale, trials, seed) },
		"table3":     func() error { return table3(scale, trials, seed) },
		"table4":     func() error { return table4(scale, seed) },
		"multiway":   func() error { return multiway(scale, trials, seed) },
		"constraint": func() error { return constraint(scale, trials, seed) },
		"profile":    func() error { return profile(scale, trials, seed) },
		"starts":     func() error { return starts(scale, trials, seed) },
		"objective":  func() error { return objectiveStudy(scale, trials, seed) },
	}
	if exp == "all" {
		for _, id := range []string{"table1", "fig1", "fig2", "table2", "table3", "table4", "multiway", "constraint", "profile", "starts", "objective"} {
			fmt.Printf("\n===== %s =====\n", id)
			if err := runners[id](); err != nil {
				return err
			}
		}
		return nil
	}
	r, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return r()
}

func netlist(name string, scale float64) (*gen.Netlist, error) {
	pr, err := gen.PresetByName(name)
	if err != nil {
		return nil, err
	}
	return gen.Generate(pr.Params.Scaled(scale))
}

func table1() error {
	return experiments.RenderTableI(os.Stdout, []float64{0.50, 0.60, 0.68, 0.75}, rent.DefaultPinsPerCell)
}

// csvPath, when set, receives the sweep data of figure runs as CSV.
var csvPath string

// cellWorkers bounds the goroutines running independent experiment cells.
var cellWorkers int

// refineWorkers is the -refine-workers override threaded into every
// SweepConfig (0 = serial-only refinement, the study default).
var refineWorkers int

// localizedFMWorkers is the -localized-fm-workers override threaded into
// every SweepConfig (0 = full serial polish, the study default).
var localizedFMWorkers int

// mlStats, when -stats is set, accumulates phase timings and FM kernel work
// counters across every multilevel run of the experiments (updated
// atomically, so concurrent cells are safe; the per-phase wall-clock numbers
// overlap under -workers > 1 and are only attributable serially).
var mlStats *multilevel.PhaseStats

// mlObjective is the metric every multilevel run optimizes (-objective).
var mlObjective fm.Objective

// mlConfig is the multilevel engine config the experiment sweeps run with:
// defaults, plus the -objective choice and the shared stats sink when -stats
// is set.
func mlConfig() multilevel.Config {
	return multilevel.Config{Objective: mlObjective, Stats: mlStats}
}

func figure(name string, scale float64, trials int, seed uint64) error {
	nl, err := netlist(name, scale)
	if err != nil {
		return err
	}
	res, err := experiments.RunSweep(name, nl.H, experiments.SweepConfig{
		Trials:             trials,
		Seed:               seed,
		Workers:            cellWorkers,
		RefineWorkers:      refineWorkers,
		LocalizedFMWorkers: localizedFMWorkers,
		ML:                 mlConfig(),
	})
	if err != nil {
		return err
	}
	if err := experiments.RenderSweep(os.Stdout, res, []int{1, 2, 4, 8}); err != nil {
		return err
	}
	if oc := experiments.Overconstrained(res, 1); len(oc) > 0 {
		fmt.Printf("\nrelatively overconstrained fractions (good regime, 1 start): %v\n", oc)
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.SweepCSV(f, res); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
	return nil
}

func table2(scale float64, trials int, seed uint64) error {
	var rows []experiments.TableIIRow
	for _, name := range []string{"IBM01S", "IBM02S", "IBM03S", "IBM04S", "IBM05S"} {
		nl, err := netlist(name, scale)
		if err != nil {
			return err
		}
		r, err := experiments.TableII(name, nl.H, experiments.FlatConfig{
			Fractions: []float64{0, 0.05, 0.10, 0.20, 0.30, 0.50},
			Runs:      maxInt(trials, 10),
			Seed:      seed,
		})
		if err != nil {
			return err
		}
		rows = append(rows, r...)
	}
	return experiments.RenderTableII(os.Stdout, rows)
}

func table3(scale float64, trials int, seed uint64) error {
	cutoffs := experiments.DefaultCutoffs()
	var rows []experiments.TableIIIRow
	for _, name := range []string{"IBM01S", "IBM02S", "IBM03S", "IBM04S", "IBM05S"} {
		nl, err := netlist(name, scale)
		if err != nil {
			return err
		}
		r, err := experiments.TableIII(name, nl.H, cutoffs, experiments.FlatConfig{
			Fractions: []float64{0, 0.10, 0.30, 0.50},
			Runs:      maxInt(trials, 10),
			Seed:      seed,
		})
		if err != nil {
			return err
		}
		rows = append(rows, r...)
	}
	return experiments.RenderTableIII(os.Stdout, rows, cutoffs)
}

func table4(scale float64, seed uint64) error {
	var instances []*benchgen.Instance
	for _, pr := range gen.IBMPresets() {
		nl, err := gen.Generate(pr.Params.Scaled(scale))
		if err != nil {
			return err
		}
		pl, err := placeNetlist(nl, seed)
		if err != nil {
			return err
		}
		for _, spec := range benchgen.StandardSpecs(pl, pr.Name) {
			inst, err := benchgen.Derive(pl, spec, 0.02)
			if err != nil {
				return err
			}
			instances = append(instances, inst)
		}
	}
	return experiments.RenderTableIV(os.Stdout, experiments.TableIV(instances))
}

func multiway(scale float64, trials int, seed uint64) error {
	nl, err := netlist("IBM01S", scale)
	if err != nil {
		return err
	}
	rows, err := experiments.MultiwaySweep("IBM01S", nl.H, 4, experiments.SweepConfig{
		Fractions:          []float64{0, 0.05, 0.10, 0.20, 0.30, 0.50},
		Trials:             trials,
		Seed:               seed,
		Workers:            cellWorkers,
		RefineWorkers:      refineWorkers,
		LocalizedFMWorkers: localizedFMWorkers,
		ML:                 mlConfig(),
	})
	if err != nil {
		return err
	}
	return experiments.RenderMultiway(os.Stdout, rows)
}

func constraint(scale float64, trials int, seed uint64) error {
	nl, err := netlist("IBM01S", scale)
	if err != nil {
		return err
	}
	rows, err := experiments.ConstraintStudy("IBM01S", nl.H, experiments.SweepConfig{
		Fractions:          []float64{0, 0.05, 0.10, 0.20, 0.30, 0.50},
		Trials:             trials,
		Seed:               seed,
		Workers:            cellWorkers,
		RefineWorkers:      refineWorkers,
		LocalizedFMWorkers: localizedFMWorkers,
		ML:                 mlConfig(),
	})
	if err != nil {
		return err
	}
	return experiments.RenderConstraintStudy(os.Stdout, rows)
}

func profile(scale float64, trials int, seed uint64) error {
	nl, err := netlist("IBM01S", scale)
	if err != nil {
		return err
	}
	rows, err := experiments.PassProfile("IBM01S", nl.H, experiments.FlatConfig{
		Fractions: []float64{0, 0.10, 0.30, 0.50},
		Runs:      maxInt(trials, 10),
		Seed:      seed,
		ML:        mlConfig(),
	})
	if err != nil {
		return err
	}
	return experiments.RenderPassProfile(os.Stdout, rows)
}

func starts(scale float64, trials int, seed uint64) error {
	nl, err := netlist("IBM01S", scale)
	if err != nil {
		return err
	}
	rows, err := experiments.StartsRequired("IBM01S", nl.H, experiments.SweepConfig{
		Fractions:          []float64{0, 0.05, 0.10, 0.20, 0.30, 0.50},
		Trials:             trials,
		Seed:               seed,
		Workers:            cellWorkers,
		RefineWorkers:      refineWorkers,
		LocalizedFMWorkers: localizedFMWorkers,
		ML:                 mlConfig(),
	})
	if err != nil {
		return err
	}
	return experiments.RenderStartsRequired(os.Stdout, rows)
}

func objectiveStudy(scale float64, trials int, seed uint64) error {
	nl, err := netlist("IBM01S", scale)
	if err != nil {
		return err
	}
	rows, err := experiments.ObjectiveStudy("IBM01S", nl.H, []int{2, 4, 8}, experiments.SweepConfig{
		Fractions:          []float64{0, 0.10, 0.30, 0.50},
		Trials:             trials,
		Seed:               seed,
		Workers:            cellWorkers,
		RefineWorkers:      refineWorkers,
		LocalizedFMWorkers: localizedFMWorkers,
		ML:                 mlConfig(),
	})
	if err != nil {
		return err
	}
	return experiments.RenderObjectiveStudy(os.Stdout, rows)
}

func placeNetlist(nl *gen.Netlist, seed uint64) (*place.Placement, error) {
	nv := nl.H.NumVertices()
	fx := make([]float64, nv)
	fy := make([]float64, nv)
	for v := 0; v < nv; v++ {
		if nl.H.IsPad(v) {
			fx[v] = float64(nl.CellX[v])
			fy[v] = float64(nl.CellY[v])
		} else {
			fx[v], fy[v] = math.NaN(), math.NaN()
		}
	}
	return place.Place(nl.H, place.Config{
		Width: float64(nl.GridSide), Height: float64(nl.GridSide),
		FixedX: fx, FixedY: fy, Workers: cellWorkers,
	}, rand.New(rand.NewPCG(seed, 0x9ace)))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
