package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable1(t *testing.T) {
	if err := run("table1", 0.02, 1, 1); err != nil {
		t.Fatalf("run(table1): %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", 0.02, 1, 1); err == nil {
		t.Error("want error for unknown experiment")
	}
}

func TestRunMultiwayTiny(t *testing.T) {
	if err := run("multiway", 0.02, 1, 1); err != nil {
		t.Fatalf("run(multiway): %v", err)
	}
}

func TestRunFigureWithCSV(t *testing.T) {
	dir := t.TempDir()
	csvPath = filepath.Join(dir, "fig.csv")
	defer func() { csvPath = "" }()
	if err := run("fig1", 0.02, 1, 1); err != nil {
		t.Fatalf("run(fig1): %v", err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.Contains(string(data), "instance,regime") {
		t.Errorf("csv content: %q", string(data)[:60])
	}
}
