package main

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bookshelf"
	"repro/internal/gen"
	"repro/internal/partition"
)

func writeBundle(t *testing.T, dir, base string) *partition.Problem {
	t.Helper()
	nl, err := gen.Generate(gen.Params{
		Cells: 200, Pads: 8, RentExponent: 0.65, PinsPerCell: 3.6, AvgNetSize: 3.3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := partition.NewBipartition(nl.H, 0.05)
	rng := rand.New(rand.NewPCG(1, 1))
	for v := 0; v < nl.H.NumVertices(); v++ {
		if nl.H.IsPad(v) {
			p.Fix(v, rng.IntN(2))
		}
	}
	if err := bookshelf.WriteProblem(dir, base, p); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunMultilevel(t *testing.T) {
	dir := t.TempDir()
	p := writeBundle(t, dir, "tiny")
	out := filepath.Join(dir, "tiny.sol")
	if err := run(dir, "tiny", "ml", "direct", "cut", 2, 1, 1, 2, 2, 2, 2, false, 2, false, out); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("solution not written: %v", err)
	}
	defer f.Close()
	a, err := bookshelf.ReadSolution(f, p)
	if err != nil {
		t.Fatalf("ReadSolution: %v", err)
	}
	if err := p.Feasible(a); err != nil {
		t.Errorf("written solution infeasible: %v", err)
	}
}

// TestRunSharedCoarsen exercises -shared-coarsen end to end: a 2-way ml run
// with fewer hierarchies than starts must write a feasible solution, and the
// flag must be rejected for flat engines and k>2 bundles.
func TestRunSharedCoarsen(t *testing.T) {
	dir := t.TempDir()
	p := writeBundle(t, dir, "tiny")
	out := filepath.Join(dir, "tiny_shared.sol")
	if err := run(dir, "tiny", "ml", "direct", "cut", 4, 1, 1, 2, 2, 2, 2, true, 2, false, out); err != nil {
		t.Fatalf("run -shared-coarsen: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("solution not written: %v", err)
	}
	defer f.Close()
	a, err := bookshelf.ReadSolution(f, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Feasible(a); err != nil {
		t.Errorf("shared solution infeasible: %v", err)
	}
	if err := run(dir, "tiny", "clip", "direct", "cut", 1, 1, 1, 1, 1, 0, 0, true, 2, false, ""); err == nil {
		t.Error("want error for -shared-coarsen with a flat engine")
	}
}

// TestRunObjectiveKM1 exercises -objective km1 end to end on both the 2-way
// and k-way ml paths plus a flat engine, and checks bad spellings error.
func TestRunObjectiveKM1(t *testing.T) {
	dir := t.TempDir()
	p := writeBundle(t, dir, "tiny")
	out := filepath.Join(dir, "tiny_km1.sol")
	if err := run(dir, "tiny", "ml", "direct", "km1", 2, 1, 1, 2, 2, 2, 2, false, 2, false, out); err != nil {
		t.Fatalf("run -objective km1: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("solution not written: %v", err)
	}
	defer f.Close()
	a, err := bookshelf.ReadSolution(f, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Feasible(a); err != nil {
		t.Errorf("km1 solution infeasible: %v", err)
	}
	if err := run(dir, "tiny", "clip", "direct", "km1", 1, 1, 1, 1, 1, 0, 0, false, 2, false, ""); err != nil {
		t.Errorf("flat engine with -objective km1: %v", err)
	}
	if err := run(dir, "tiny", "ml", "direct", "wirelength", 1, 1, 1, 1, 1, 0, 0, false, 2, false, ""); err == nil {
		t.Error("want error for unknown objective")
	}
}

func TestRunFlatEngines(t *testing.T) {
	dir := t.TempDir()
	writeBundle(t, dir, "tiny")
	for _, engine := range []string{"lifo", "clip"} {
		if err := run(dir, "tiny", engine, "direct", "cut", 1, 0.25, 2, 1, 1, 0, 0, false, 2, false, ""); err != nil {
			t.Errorf("engine %s: %v", engine, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	writeBundle(t, dir, "tiny")
	if err := run(dir, "tiny", "bogus", "direct", "cut", 1, 1, 1, 1, 1, 1, 1, false, 2, false, ""); err == nil {
		t.Error("want error for unknown engine")
	}
	if err := run(dir, "missing", "ml", "direct", "cut", 1, 1, 1, 1, 1, 1, 1, false, 2, false, ""); err == nil {
		t.Error("want error for missing bundle")
	}
}

func TestPassFraction(t *testing.T) {
	if passFraction(1) != 0 || passFraction(0) != 0 || passFraction(0.25) != 0.25 {
		t.Error("passFraction mapping wrong")
	}
}

func TestRunKWayBundle(t *testing.T) {
	dir := t.TempDir()
	nl, err := gen.Generate(gen.Params{
		Cells: 200, Pads: 8, RentExponent: 0.65, PinsPerCell: 3.6, AvgNetSize: 3.3, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := partition.NewFree(nl.H, 4, 0.1)
	rng := rand.New(rand.NewPCG(9, 9))
	for v := 0; v < nl.H.NumVertices(); v++ {
		if nl.H.IsPad(v) {
			p.Fix(v, rng.IntN(4))
		}
	}
	if err := bookshelf.WriteProblem(dir, "quad", p); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"direct", "rb"} {
		out := filepath.Join(dir, "quad_"+mode+".sol")
		if err := run(dir, "quad", "ml", mode, "cut", 2, 1, 1, 2, 2, 2, 2, false, 2, false, out); err != nil {
			t.Fatalf("run ml k=4 -kway=%s: %v", mode, err)
		}
		got, err := bookshelf.ReadProblem(dir, "quad")
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		a, err := bookshelf.ReadSolution(f, got)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Feasible(a); err != nil {
			t.Fatalf("-kway=%s solution infeasible: %v", mode, err)
		}
	}
	if err := run(dir, "quad", "ml", "bogus", "cut", 1, 1, 1, 1, 1, 1, 1, false, 2, false, ""); err == nil {
		t.Error("want error for unknown -kway mode")
	}
	if err := run(dir, "quad", "lifo", "direct", "cut", 1, 1, 2, 1, 1, 0, 0, false, 2, false, ""); err != nil {
		t.Fatalf("run flat k=4: %v", err)
	}
}

// TestRunNonPowerOfTwoK exercises a k=3 bundle end to end in both -kway
// modes, which the CLI rejected before RecursiveBisect learned uneven splits.
func TestRunNonPowerOfTwoK(t *testing.T) {
	dir := t.TempDir()
	nl, err := gen.Generate(gen.Params{
		Cells: 150, Pads: 6, RentExponent: 0.65, PinsPerCell: 3.6, AvgNetSize: 3.3, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := partition.NewFree(nl.H, 3, 0.1)
	rng := rand.New(rand.NewPCG(13, 13))
	for v := 0; v < nl.H.NumVertices(); v++ {
		if nl.H.IsPad(v) {
			p.Fix(v, rng.IntN(3))
		}
	}
	if err := bookshelf.WriteProblem(dir, "tri", p); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"direct", "rb"} {
		if err := run(dir, "tri", "ml", mode, "cut", 1, 1, 1, 1, 1, 1, 1, false, 2, false, ""); err != nil {
			t.Errorf("run ml k=3 -kway=%s: %v", mode, err)
		}
	}
}
