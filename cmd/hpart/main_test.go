package main

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bookshelf"
	"repro/internal/gen"
	"repro/internal/hgr"
	"repro/internal/hypergraph"
	"repro/internal/partition"
)

func writeBundle(t *testing.T, dir, base string) *partition.Problem {
	t.Helper()
	nl, err := gen.Generate(gen.Params{
		Cells: 200, Pads: 8, RentExponent: 0.65, PinsPerCell: 3.6, AvgNetSize: 3.3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := partition.NewBipartition(nl.H, 0.05)
	rng := rand.New(rand.NewPCG(1, 1))
	for v := 0; v < nl.H.NumVertices(); v++ {
		if nl.H.IsPad(v) {
			p.Fix(v, rng.IntN(2))
		}
	}
	if err := bookshelf.WriteProblem(dir, base, p); err != nil {
		t.Fatal(err)
	}
	return p
}

// testOpts mirrors the flag defaults plus the worker counts the old tests
// pinned; individual tests override fields from here.
func testOpts(dir, base string) options {
	return options{
		dir: dir, base: base, k: 2, tol: 0.02, fixSeed: 1,
		engine: "ml", kway: "direct", objective: "cut",
		starts: 1, cutoff: 1, seed: 1,
		coarsenWorkers: 1, refineWorkers: 1, localizedWorkers: 1,
		hierarchies: 2,
	}
}

func TestRunMultilevel(t *testing.T) {
	dir := t.TempDir()
	p := writeBundle(t, dir, "tiny")
	out := filepath.Join(dir, "tiny.sol")
	o := testOpts(dir, "tiny")
	o.starts, o.workers, o.coarsenWorkers, o.refineWorkers, o.localizedWorkers = 2, 2, 2, 2, 2
	o.out = out
	if err := run(o); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("solution not written: %v", err)
	}
	defer f.Close()
	a, err := bookshelf.ReadSolution(f, p)
	if err != nil {
		t.Fatalf("ReadSolution: %v", err)
	}
	if err := p.Feasible(a); err != nil {
		t.Errorf("written solution infeasible: %v", err)
	}
}

// TestRunSharedCoarsen exercises -shared-coarsen end to end: a 2-way ml run
// with fewer hierarchies than starts must write a feasible solution, and the
// flag must be rejected for flat engines and k>2 bundles.
func TestRunSharedCoarsen(t *testing.T) {
	dir := t.TempDir()
	p := writeBundle(t, dir, "tiny")
	out := filepath.Join(dir, "tiny_shared.sol")
	o := testOpts(dir, "tiny")
	o.starts, o.workers, o.coarsenWorkers, o.refineWorkers, o.localizedWorkers = 4, 2, 2, 2, 2
	o.shared, o.out = true, out
	if err := run(o); err != nil {
		t.Fatalf("run -shared-coarsen: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("solution not written: %v", err)
	}
	defer f.Close()
	a, err := bookshelf.ReadSolution(f, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Feasible(a); err != nil {
		t.Errorf("shared solution infeasible: %v", err)
	}
	bad := testOpts(dir, "tiny")
	bad.engine, bad.refineWorkers, bad.localizedWorkers, bad.shared = "clip", 0, 0, true
	if err := run(bad); err == nil {
		t.Error("want error for -shared-coarsen with a flat engine")
	}
}

// TestRunObjectiveKM1 exercises -objective km1 end to end on both the 2-way
// and k-way ml paths plus a flat engine, and checks bad spellings error.
func TestRunObjectiveKM1(t *testing.T) {
	dir := t.TempDir()
	p := writeBundle(t, dir, "tiny")
	out := filepath.Join(dir, "tiny_km1.sol")
	o := testOpts(dir, "tiny")
	o.objective = "km1"
	o.starts, o.workers, o.coarsenWorkers, o.refineWorkers, o.localizedWorkers = 2, 2, 2, 2, 2
	o.out = out
	if err := run(o); err != nil {
		t.Fatalf("run -objective km1: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("solution not written: %v", err)
	}
	defer f.Close()
	a, err := bookshelf.ReadSolution(f, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Feasible(a); err != nil {
		t.Errorf("km1 solution infeasible: %v", err)
	}
	flat := testOpts(dir, "tiny")
	flat.engine, flat.objective, flat.refineWorkers, flat.localizedWorkers = "clip", "km1", 0, 0
	if err := run(flat); err != nil {
		t.Errorf("flat engine with -objective km1: %v", err)
	}
	bad := testOpts(dir, "tiny")
	bad.objective = "wirelength"
	if err := run(bad); err == nil {
		t.Error("want error for unknown objective")
	}
}

func TestRunFlatEngines(t *testing.T) {
	dir := t.TempDir()
	writeBundle(t, dir, "tiny")
	for _, engine := range []string{"lifo", "clip"} {
		o := testOpts(dir, "tiny")
		o.engine, o.cutoff, o.seed = engine, 0.25, 2
		o.refineWorkers, o.localizedWorkers = 0, 0
		if err := run(o); err != nil {
			t.Errorf("engine %s: %v", engine, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	writeBundle(t, dir, "tiny")
	bogus := testOpts(dir, "tiny")
	bogus.engine = "bogus"
	if err := run(bogus); err == nil {
		t.Error("want error for unknown engine")
	}
	if err := run(testOpts(dir, "missing")); err == nil {
		t.Error("want error for missing bundle")
	}
	both := testOpts(dir, "tiny")
	both.hgrPath = filepath.Join(dir, "x.hgr")
	if err := run(both); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("run(-base with -hgr) = %v, want mutual-exclusion error", err)
	}
	fixOnly := testOpts(dir, "tiny")
	fixOnly.fixPath = filepath.Join(dir, "x.fix")
	if err := run(fixOnly); err == nil || !strings.Contains(err.Error(), "-fix applies to -hgr input only") {
		t.Errorf("run(-base with -fix) = %v, want fix-without-hgr error", err)
	}
	frac := testOpts(dir, "tiny")
	frac.fixFraction = 1.5
	if err := run(frac); err == nil || !strings.Contains(err.Error(), "outside [0, 1]") {
		t.Errorf("run(-fix-fraction 1.5) = %v, want range error", err)
	}
}

func TestPassFraction(t *testing.T) {
	if passFraction(1) != 0 || passFraction(0) != 0 || passFraction(0.25) != 0.25 {
		t.Error("passFraction mapping wrong")
	}
}

func TestRunKWayBundle(t *testing.T) {
	dir := t.TempDir()
	nl, err := gen.Generate(gen.Params{
		Cells: 200, Pads: 8, RentExponent: 0.65, PinsPerCell: 3.6, AvgNetSize: 3.3, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := partition.NewFree(nl.H, 4, 0.1)
	rng := rand.New(rand.NewPCG(9, 9))
	for v := 0; v < nl.H.NumVertices(); v++ {
		if nl.H.IsPad(v) {
			p.Fix(v, rng.IntN(4))
		}
	}
	if err := bookshelf.WriteProblem(dir, "quad", p); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"direct", "rb"} {
		out := filepath.Join(dir, "quad_"+mode+".sol")
		o := testOpts(dir, "quad")
		o.kway = mode
		o.starts, o.workers, o.coarsenWorkers, o.refineWorkers, o.localizedWorkers = 2, 2, 2, 2, 2
		o.out = out
		if err := run(o); err != nil {
			t.Fatalf("run ml k=4 -kway=%s: %v", mode, err)
		}
		got, err := bookshelf.ReadProblem(dir, "quad")
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		a, err := bookshelf.ReadSolution(f, got)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Feasible(a); err != nil {
			t.Fatalf("-kway=%s solution infeasible: %v", mode, err)
		}
	}
	bogus := testOpts(dir, "quad")
	bogus.kway = "bogus"
	if err := run(bogus); err == nil {
		t.Error("want error for unknown -kway mode")
	}
	flat := testOpts(dir, "quad")
	flat.engine, flat.seed, flat.refineWorkers, flat.localizedWorkers = "lifo", 2, 0, 0
	if err := run(flat); err != nil {
		t.Fatalf("run flat k=4: %v", err)
	}
}

// TestRunNonPowerOfTwoK exercises a k=3 bundle end to end in both -kway
// modes, which the CLI rejected before RecursiveBisect learned uneven splits.
func TestRunNonPowerOfTwoK(t *testing.T) {
	dir := t.TempDir()
	nl, err := gen.Generate(gen.Params{
		Cells: 150, Pads: 6, RentExponent: 0.65, PinsPerCell: 3.6, AvgNetSize: 3.3, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := partition.NewFree(nl.H, 3, 0.1)
	rng := rand.New(rand.NewPCG(13, 13))
	for v := 0; v < nl.H.NumVertices(); v++ {
		if nl.H.IsPad(v) {
			p.Fix(v, rng.IntN(3))
		}
	}
	if err := bookshelf.WriteProblem(dir, "tri", p); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"direct", "rb"} {
		o := testOpts(dir, "tri")
		o.kway = mode
		if err := run(o); err != nil {
			t.Errorf("run ml k=3 -kway=%s: %v", mode, err)
		}
	}
}

// writeHGRSuite writes a small random instance to dir as circuit.hgr +
// circuit.fix and returns the problem it describes (k=2, tol as given).
// Built directly (not via gen) because .hgr cannot represent the generator's
// zero-area pads — hMetis weights are >= 1.
func writeHGRSuite(t *testing.T, dir string, tol float64) *partition.Problem {
	t.Helper()
	const nv = 200
	rng := rand.New(rand.NewPCG(5, 5))
	b := hypergraph.NewBuilder(1)
	for v := 0; v < nv; v++ {
		b.AddVertex(int64(1 + v%3))
	}
	for e := 0; e < 300; e++ {
		deg := 2 + rng.IntN(4)
		pins := make([]int, 0, deg)
		seen := map[int]bool{}
		for len(pins) < deg {
			v := rng.IntN(nv)
			if !seen[v] {
				seen[v] = true
				pins = append(pins, v)
			}
		}
		b.AddWeightedNet(int64(1+rng.IntN(3)), pins...)
	}
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := partition.NewBipartition(h, tol)
	for v := 0; v < nv; v += 25 {
		p.Fix(v, (v/25)%2)
	}
	hf, err := os.Create(filepath.Join(dir, "circuit.hgr"))
	if err != nil {
		t.Fatal(err)
	}
	if err := hgr.WriteHGR(hf, h); err != nil {
		t.Fatal(err)
	}
	hf.Close()
	ff, err := os.Create(filepath.Join(dir, "circuit.fix"))
	if err != nil {
		t.Fatal(err)
	}
	if err := hgr.WriteFix(ff, p); err != nil {
		t.Fatal(err)
	}
	ff.Close()
	return p
}

// TestRunHGRMode drives the exchange-format path end to end: -hgr + -fix in,
// -write-parts out, and the written partition file must be a feasible
// assignment of the same instance.
func TestRunHGRMode(t *testing.T) {
	dir := t.TempDir()
	p := writeHGRSuite(t, dir, 0.05)
	parts := filepath.Join(dir, "circuit.part")
	o := testOpts("", "")
	o.hgrPath = filepath.Join(dir, "circuit.hgr")
	o.fixPath = filepath.Join(dir, "circuit.fix")
	o.tol = 0.05
	o.starts, o.workers = 2, 2
	o.writeParts = parts
	if err := run(o); err != nil {
		t.Fatalf("run -hgr: %v", err)
	}
	f, err := os.Open(parts)
	if err != nil {
		t.Fatalf("partition file not written: %v", err)
	}
	defer f.Close()
	a, err := hgr.ReadParts(f, p.H.NumVertices(), p.K)
	if err != nil {
		t.Fatalf("ReadParts: %v", err)
	}
	if err := p.Feasible(a); err != nil {
		t.Errorf("written partition infeasible: %v", err)
	}
}

// TestRunHGRFixFraction drives the synthesized-constraints workflow: the
// pads stay fixed from the .fix file, -fix-fraction fixes more vertices on
// top, and -write-fix round-trips the effective constraint set.
func TestRunHGRFixFraction(t *testing.T) {
	dir := t.TempDir()
	writeHGRSuite(t, dir, 0.1)
	chosen := filepath.Join(dir, "chosen.fix")
	o := testOpts("", "")
	o.hgrPath = filepath.Join(dir, "circuit.hgr")
	o.fixPath = filepath.Join(dir, "circuit.fix")
	o.tol = 0.1
	o.fixFraction, o.fixSeed = 0.2, 7
	o.writeFix = chosen
	if err := run(o); err != nil {
		t.Fatalf("run -fix-fraction: %v", err)
	}
	f, err := os.Open(chosen)
	if err != nil {
		t.Fatalf("fix file not written: %v", err)
	}
	defer f.Close()
	hf, err := os.Open(o.hgrPath)
	if err != nil {
		t.Fatal(err)
	}
	defer hf.Close()
	h, err := hgr.ReadHGR(hf)
	if err != nil {
		t.Fatal(err)
	}
	masks, err := hgr.ReadFix(f, h.NumVertices(), 2)
	if err != nil {
		t.Fatalf("re-read written fix: %v", err)
	}
	fixed := 0
	for _, m := range masks {
		if _, ok := m.OnlyPart(); ok {
			fixed++
		}
	}
	if want := int(0.2 * float64(h.NumVertices())); fixed < want {
		t.Errorf("written fix file fixes %d vertices, want at least %d", fixed, want)
	}
}
