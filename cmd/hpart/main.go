// Command hpart partitions a fixed-terminals instance — a Bookshelf
// benchmark bundle (base.net/.are/.blk/.fix, as written by genbench or
// bookshelf.WriteProblem) or an hMetis .hgr file — and reports the cut.
//
// Usage:
//
//	hpart -dir bench -base IBM01SA_L0_V [-engine ml|lifo|clip] [-starts 4]
//	      [-kway direct|rb] [-objective cut|km1] [-cutoff 0.25] [-seed 1]
//	      [-workers 0] [-coarsen-workers 1] [-refine-workers 1]
//	      [-localized-fm-workers 1]
//	      [-shared-coarsen] [-hierarchies 2] [-stats] [-cpuprofile cpu.pprof]
//	      [-memprofile mem.pprof] [-out solution.sol]
//
//	hpart -hgr circuit.hgr [-fix circuit.fix] [-k 2] [-tol 0.02]
//	      [-fix-fraction 0.2] [-fix-seed 1] [-write-fix chosen.fix]
//	      [-write-parts circuit.part] [engine flags as above]
//
// The two input modes are mutually exclusive. -hgr reads an hMetis .hgr
// netlist (fmt codes 0, 1, 10, 11); -fix adds KaHyPar-style fixed-vertex
// constraints (-1 per free vertex, a part id to fix, several ids for an
// OR-region); -k and -tol pose the instance, since unlike a Bookshelf bundle
// the exchange formats carry neither. -fix-fraction synthesizes a
// deterministic paper-style fixed-terminals regime on top (seeded by
// -fix-seed, identical to the hpartd fix_fraction field), and -write-fix
// saves the synthesized constraints so a study can be re-run or shared.
// -write-parts writes the winning assignment in the standard partition-file
// form (one part id per line) in either input mode; -out writes a Bookshelf
// .sol. See FORMATS.md for all grammars and EXPERIMENTS.md for the
// benchmark-suite workflow.
//
// -objective selects the metric runs optimize and the best start is chosen
// by: "cut" (default, the paper's weighted net cut) or "km1"
// (connectivity-minus-one). Whatever the choice, the result line reports
// cut, km1 and soed of the winning assignment.
//
// With the ml engine, independent starts run on -workers goroutines
// (0 = GOMAXPROCS); the result is identical for every worker count.
// -coarsen-workers parallelizes the inside of each coarsening descent —
// heavy-edge matching and contraction — on top of that (default 1, serial;
// 0 = GOMAXPROCS). It too never changes results: hierarchies, cuts and
// fingerprints are bit-identical for every value.
// -refine-workers (ml engine) enables the deterministic synchronous-round
// parallel refinement stage inside each descent (default 1: stage on;
// 0 disables it, restoring serial-only refinement; 0 < n clamps to
// GOMAXPROCS). Every count >= 1 returns bit-identical results; turning the
// stage on at all selects a different — typically faster, comparably good —
// move sequence than serial-only refinement.
// -localized-fm-workers (ml engine) enables the deterministic localized FM
// stage at the finest level of each descent (default 1: stage on; 0 disables
// it, restoring the full serial polish; clamped to GOMAXPROCS). Every count
// >= 1 returns bit-identical results; turning the stage on replaces most of
// the finest-level serial polish with bounded localized searches plus a
// one-pass tail.
// -shared-coarsen (2-way bundles only) amortises coarsening across starts:
// -hierarchies owner starts build and fully refine private hierarchies, the
// remaining starts resample those hierarchies as cheap pass-cutoff follower
// descents. For k > 2 bundles, -kway selects how the ml engine reaches k
// parts: "direct" (default) coarsens the full k-way problem once and refines
// with direct k-way FM at every level, "rb" decomposes into recursive
// multilevel bisections (any k >= 2, not just powers of two) with a final
// k-way FM polish.
//
// -cpuprofile/-memprofile write pprof profiles of the whole run; multilevel
// phases carry pprof labels
// (phase=coarsen|init|refine_parallel|refine_localized|refine), so
// `go tool pprof -tagfocus phase=refine cpu.pprof` isolates one phase.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/bookshelf"
	"repro/internal/fm"
	"repro/internal/hgr"
	"repro/internal/multilevel"
	"repro/internal/partition"
	"repro/internal/profiling"
)

// options collects every run knob; flag parsing in main fills one, tests
// build them directly.
type options struct {
	// Bookshelf-bundle input mode.
	dir  string
	base string

	// Exchange-format input mode (mutually exclusive with base).
	hgrPath     string
	fixPath     string
	k           int
	tol         float64
	fixFraction float64
	fixSeed     uint64
	writeFix    string

	engine           string
	kway             string
	objective        string
	starts           int
	cutoff           float64
	seed             uint64
	workers          int
	coarsenWorkers   int
	refineWorkers    int
	localizedWorkers int
	shared           bool
	hierarchies      int
	stats            bool

	out        string
	writeParts string
}

func main() {
	var o options
	flag.StringVar(&o.dir, "dir", ".", "directory holding the benchmark bundle")
	flag.StringVar(&o.base, "base", "", "bundle base name (required unless -hgr is given)")
	flag.StringVar(&o.hgrPath, "hgr", "", "hMetis .hgr netlist to partition instead of a bundle")
	flag.StringVar(&o.fixPath, "fix", "", "KaHyPar-style fixed-vertex file for the -hgr netlist")
	flag.IntVar(&o.k, "k", 2, "number of parts for -hgr instances (bundles carry their own)")
	flag.Float64Var(&o.tol, "tol", 0.02, "balance tolerance for -hgr instances (bundles carry their own)")
	flag.Float64Var(&o.fixFraction, "fix-fraction", 0, "fix this fraction of vertices deterministically (seeded shuffle, round-robin parts)")
	flag.Uint64Var(&o.fixSeed, "fix-seed", 1, "seed for -fix-fraction's vertex choice")
	flag.StringVar(&o.writeFix, "write-fix", "", "write the instance's effective constraints as a .fix file")
	flag.StringVar(&o.engine, "engine", "ml", "partitioning engine: ml (multilevel CLIP), lifo or clip (flat FM)")
	flag.StringVar(&o.kway, "kway", "direct", "k>2 strategy for the ml engine: direct (k-way V-cycle) or rb (recursive bisection)")
	flag.StringVar(&o.objective, "objective", "cut", "metric to optimize and select by: cut or km1")
	flag.IntVar(&o.starts, "starts", 1, "independent starts; the best result is kept")
	flag.Float64Var(&o.cutoff, "cutoff", 1, "pass cutoff fraction after the first pass (1 = none)")
	flag.Uint64Var(&o.seed, "seed", 1, "random seed")
	flag.IntVar(&o.workers, "workers", 0, "goroutines for parallel multistart (0 = GOMAXPROCS)")
	flag.IntVar(&o.coarsenWorkers, "coarsen-workers", 1, "goroutines inside each coarsening descent (0 = GOMAXPROCS; never changes results)")
	flag.IntVar(&o.refineWorkers, "refine-workers", 1, "parallel-refinement workers per descent (0 disables the round stage; counts >= 1 are bit-identical; clamped to GOMAXPROCS)")
	flag.IntVar(&o.localizedWorkers, "localized-fm-workers", 1, "localized-FM workers at the finest level (0 disables the stage; counts >= 1 are bit-identical; clamped to GOMAXPROCS)")
	flag.BoolVar(&o.shared, "shared-coarsen", false, "share coarsening hierarchies across ml starts (2-way only)")
	flag.IntVar(&o.hierarchies, "hierarchies", 2, "shared hierarchies to build with -shared-coarsen")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.BoolVar(&o.stats, "stats", false, "print per-phase timings and FM kernel work counters after the run")
	flag.StringVar(&o.out, "out", "", "write the best assignment as a Bookshelf .sol file")
	flag.StringVar(&o.writeParts, "write-parts", "", "write the best assignment as a partition file (one part id per line)")
	flag.Parse()
	if o.base == "" && o.hgrPath == "" {
		fmt.Fprintln(os.Stderr, "hpart: one of -base and -hgr is required")
		flag.Usage()
		os.Exit(2)
	}
	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpart:", err)
		os.Exit(1)
	}
	err = run(o)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpart:", err)
		os.Exit(1)
	}
}

// loadProblem materializes the instance the options describe from whichever
// input mode is selected, returning it with a display name.
func loadProblem(o options) (*partition.Problem, string, error) {
	if o.hgrPath != "" {
		if o.base != "" {
			return nil, "", fmt.Errorf("-base and -hgr are mutually exclusive")
		}
		hf, err := os.Open(o.hgrPath)
		if err != nil {
			return nil, "", err
		}
		defer hf.Close()
		var fixR io.Reader
		if o.fixPath != "" {
			ff, err := os.Open(o.fixPath)
			if err != nil {
				return nil, "", err
			}
			defer ff.Close()
			fixR = ff
		}
		p, err := hgr.ReadProblem(hf, fixR, o.k, o.tol)
		if err != nil {
			return nil, "", err
		}
		return p, filepath.Base(o.hgrPath), nil
	}
	if o.fixPath != "" {
		return nil, "", fmt.Errorf("-fix applies to -hgr input only (bundles carry constraints in base.fix)")
	}
	p, err := bookshelf.ReadProblem(o.dir, o.base)
	if err != nil {
		return nil, "", err
	}
	return p, o.base, nil
}

func run(o options) error {
	obj, err := fm.ParseObjective(o.objective)
	if err != nil {
		return err
	}
	p, name, err := loadProblem(o)
	if err != nil {
		return err
	}
	if o.fixFraction < 0 || o.fixFraction > 1 {
		return fmt.Errorf("-fix-fraction %v outside [0, 1]", o.fixFraction)
	}
	if o.fixFraction > 0 {
		partition.ApplyFixFraction(p, o.fixFraction, o.fixSeed)
		// Synthesized fixes can overfill a part just like a hostile .fix
		// file; diagnose that here rather than mid-solve.
		if err := hgr.CheckFeasible(p); err != nil {
			return err
		}
	}
	if o.writeFix != "" {
		f, err := os.Create(o.writeFix)
		if err != nil {
			return err
		}
		werr := hgr.WriteFix(f, p)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("wrote %s\n", o.writeFix)
	}
	fmt.Printf("instance %s: %v, k=%d, fixed=%d (%.1f%%)\n",
		name, p.H, p.K, p.NumFixed(), 100*p.FixedFraction())
	if o.shared && (o.engine != "ml" || p.K != 2) {
		return fmt.Errorf("-shared-coarsen requires the ml engine on a 2-way instance (engine=%s, k=%d)", o.engine, p.K)
	}
	rng := rand.New(rand.NewPCG(o.seed, 0x42))
	t0 := time.Now()
	var best partition.Assignment
	var score int64 // the winning assignment's value under -objective
	var phases *multilevel.PhaseStats
	var flatKernel fm.KernelStats
	if o.stats {
		phases = &multilevel.PhaseStats{}
	}
	switch o.engine {
	case "ml":
		coarsenWorkers := o.coarsenWorkers
		if coarsenWorkers == 0 {
			coarsenWorkers = runtime.GOMAXPROCS(0)
		}
		refineWorkers := o.refineWorkers
		if max := runtime.GOMAXPROCS(0); refineWorkers > max {
			refineWorkers = max
		}
		localizedWorkers := o.localizedWorkers
		if max := runtime.GOMAXPROCS(0); localizedWorkers > max {
			localizedWorkers = max
		}
		cfg := multilevel.Config{Objective: obj, MaxPassFraction: passFraction(o.cutoff), Workers: o.workers, CoarsenWorkers: coarsenWorkers, RefineWorkers: refineWorkers, LocalizedFMWorkers: localizedWorkers, Stats: phases}
		switch {
		case p.K == 2 && o.shared:
			res, err := multilevel.ParallelSharedMultistart(p, cfg, o.starts, o.hierarchies, rng)
			if err != nil {
				return err
			}
			best, score = res.Assignment, res.Score
		case p.K == 2:
			res, err := multilevel.ParallelMultistart(p, cfg, o.starts, rng)
			if err != nil {
				return err
			}
			best, score = res.Assignment, res.Score
		case o.kway == "direct":
			res, err := multilevel.ParallelMultistartKWay(p, cfg, o.starts, rng)
			if err != nil {
				return err
			}
			best, score = res.Assignment, res.Score
		case o.kway == "rb":
			// Recursive bisection per start, then direct k-way FM polish on
			// the full problem.
			for s := 0; s < o.starts; s++ {
				res, err := multilevel.RecursiveBisect(p, cfg, rng)
				if err != nil {
					return err
				}
				ref, err := fm.KWayPartition(p, res.Assignment, fm.Config{Policy: fm.CLIP, Objective: obj, MaxPassFraction: passFraction(o.cutoff), Stats: flatStats(o.stats, &flatKernel)})
				if err != nil {
					return err
				}
				if best == nil || ref.Score < score {
					best, score = ref.Assignment, ref.Score
				}
			}
		default:
			return fmt.Errorf("unknown -kway mode %q (want direct or rb)", o.kway)
		}
	case "lifo", "clip":
		policy := fm.LIFO
		if o.engine == "clip" {
			policy = fm.CLIP
		}
		cfg := fm.Config{Policy: policy, Objective: obj, MaxPassFraction: passFraction(o.cutoff), Stats: flatStats(o.stats, &flatKernel)}
		for s := 0; s < o.starts; s++ {
			var a partition.Assignment
			var c int64
			if p.K == 2 {
				res, err := fm.RunFromRandom(p, cfg, rng)
				if err != nil {
					return err
				}
				a, c = res.Assignment, res.Score
			} else {
				initial, err := partition.RandomFeasible(p, rng)
				if err != nil {
					return err
				}
				res, err := fm.KWayPartition(p, initial, cfg)
				if err != nil {
					return err
				}
				a, c = res.Assignment, res.Score
			}
			if best == nil || c < score {
				best, score = a, c
			}
		}
	default:
		return fmt.Errorf("unknown engine %q", o.engine)
	}
	fmt.Printf("best %s over %d start(s): %d   (%.1f ms)\n",
		obj, o.starts, score, float64(time.Since(t0).Microseconds())/1000)
	fmt.Printf("objectives: cut=%d km1=%d soed=%d\n",
		partition.Cut(p.H, best), partition.KMinus1(p.H, best), partition.SOED(p.H, best))
	if o.stats {
		printStats(phases, &flatKernel)
	}
	if err := p.Feasible(best); err != nil {
		return fmt.Errorf("internal error: result infeasible: %w", err)
	}
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bookshelf.WriteSolution(f, p, best); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.out)
	}
	if o.writeParts != "" {
		f, err := os.Create(o.writeParts)
		if err != nil {
			return err
		}
		werr := hgr.WriteParts(f, best)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("wrote %s\n", o.writeParts)
	}
	return nil
}

// flatStats returns the kernel-counter sink for the flat engines (nil when
// -stats is off, so the hot path skips the atomics).
func flatStats(enabled bool, k *fm.KernelStats) *fm.KernelStats {
	if !enabled {
		return nil
	}
	return k
}

// printStats reports the per-phase breakdown (multilevel engines) and the FM
// kernel's net-state-aware work counters.
func printStats(phases *multilevel.PhaseStats, flat *fm.KernelStats) {
	kernel := flat.Snapshot()
	if phases != nil {
		if phases.TotalNS() > 0 {
			fmt.Printf("phases: coarsen %.1f ms, init %.1f ms, refine-parallel %.1f ms, refine-localized %.1f ms, refine %.1f ms\n",
				float64(phases.CoarsenNS)/1e6, float64(phases.InitNS)/1e6,
				float64(phases.RefineParallelNS)/1e6, float64(phases.RefineLocalizedNS)/1e6, float64(phases.RefineNS)/1e6)
		}
		ml := phases.Kernel.Snapshot()
		kernel.NetsSkipped += ml.NetsSkipped
		kernel.PinScansAvoided += ml.PinScansAvoided
		kernel.PinsScanned += ml.PinsScanned
		kernel.BucketUpdatesSaved += ml.BucketUpdatesSaved
	}
	fmt.Printf("fm kernel: %d locked nets skipped, %d/%d pin scans avoided/executed (%s reduction), %d bucket updates saved\n",
		kernel.NetsSkipped, kernel.PinScansAvoided, kernel.PinsScanned,
		scanReduction(kernel), kernel.BucketUpdatesSaved)
}

// scanReduction renders the kernel's gain-update pin-traversal reduction over
// the frozen reference ("1.91x", or "-" before any net has been scanned).
func scanReduction(k fm.KernelStats) string {
	if k.PinsScanned == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(k.PinsScanned+k.PinScansAvoided)/float64(k.PinsScanned))
}

func passFraction(cutoff float64) float64 {
	if cutoff >= 1 || cutoff <= 0 {
		return 0
	}
	return cutoff
}
