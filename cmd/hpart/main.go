// Command hpart partitions a fixed-terminals benchmark bundle
// (base.net/.are/.blk/.fix, as written by genbench or bookshelf.WriteProblem)
// and reports the cut.
//
// Usage:
//
//	hpart -dir bench -base IBM01SA_L0_V [-engine ml|lifo|clip] [-starts 4]
//	      [-kway direct|rb] [-objective cut|km1] [-cutoff 0.25] [-seed 1]
//	      [-workers 0] [-coarsen-workers 1] [-refine-workers 1]
//	      [-localized-fm-workers 1]
//	      [-shared-coarsen] [-hierarchies 2] [-stats] [-cpuprofile cpu.pprof]
//	      [-memprofile mem.pprof] [-out solution.sol]
//
// -objective selects the metric runs optimize and the best start is chosen
// by: "cut" (default, the paper's weighted net cut) or "km1"
// (connectivity-minus-one). Whatever the choice, the result line reports
// cut, km1 and soed of the winning assignment.
//
// With the ml engine, independent starts run on -workers goroutines
// (0 = GOMAXPROCS); the result is identical for every worker count.
// -coarsen-workers parallelizes the inside of each coarsening descent —
// heavy-edge matching and contraction — on top of that (default 1, serial;
// 0 = GOMAXPROCS). It too never changes results: hierarchies, cuts and
// fingerprints are bit-identical for every value.
// -refine-workers (ml engine) enables the deterministic synchronous-round
// parallel refinement stage inside each descent (default 1: stage on;
// 0 disables it, restoring serial-only refinement; 0 < n clamps to
// GOMAXPROCS). Every count >= 1 returns bit-identical results; turning the
// stage on at all selects a different — typically faster, comparably good —
// move sequence than serial-only refinement.
// -localized-fm-workers (ml engine) enables the deterministic localized FM
// stage at the finest level of each descent (default 1: stage on; 0 disables
// it, restoring the full serial polish; clamped to GOMAXPROCS). Every count
// >= 1 returns bit-identical results; turning the stage on replaces most of
// the finest-level serial polish with bounded localized searches plus a
// one-pass tail.
// -shared-coarsen (2-way bundles only) amortises coarsening across starts:
// -hierarchies owner starts build and fully refine private hierarchies, the
// remaining starts resample those hierarchies as cheap pass-cutoff follower
// descents. For k > 2 bundles, -kway selects how the ml engine reaches k
// parts: "direct" (default) coarsens the full k-way problem once and refines
// with direct k-way FM at every level, "rb" decomposes into recursive
// multilevel bisections (any k >= 2, not just powers of two) with a final
// k-way FM polish.
//
// -cpuprofile/-memprofile write pprof profiles of the whole run; multilevel
// phases carry pprof labels
// (phase=coarsen|init|refine_parallel|refine_localized|refine), so
// `go tool pprof -tagfocus phase=refine cpu.pprof` isolates one phase.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"time"

	"repro/internal/bookshelf"
	"repro/internal/fm"
	"repro/internal/multilevel"
	"repro/internal/partition"
	"repro/internal/profiling"
)

func main() {
	var (
		dir         = flag.String("dir", ".", "directory holding the benchmark bundle")
		base        = flag.String("base", "", "bundle base name (required)")
		engine      = flag.String("engine", "ml", "partitioning engine: ml (multilevel CLIP), lifo or clip (flat FM)")
		kway        = flag.String("kway", "direct", "k>2 strategy for the ml engine: direct (k-way V-cycle) or rb (recursive bisection)")
		objective   = flag.String("objective", "cut", "metric to optimize and select by: cut or km1")
		starts      = flag.Int("starts", 1, "independent starts; the best result is kept")
		cutoff      = flag.Float64("cutoff", 1, "pass cutoff fraction after the first pass (1 = none)")
		seed        = flag.Uint64("seed", 1, "random seed")
		workers     = flag.Int("workers", 0, "goroutines for parallel multistart (0 = GOMAXPROCS)")
		coarsenW    = flag.Int("coarsen-workers", 1, "goroutines inside each coarsening descent (0 = GOMAXPROCS; never changes results)")
		refineW     = flag.Int("refine-workers", 1, "parallel-refinement workers per descent (0 disables the round stage; counts >= 1 are bit-identical; clamped to GOMAXPROCS)")
		localizedW  = flag.Int("localized-fm-workers", 1, "localized-FM workers at the finest level (0 disables the stage; counts >= 1 are bit-identical; clamped to GOMAXPROCS)")
		shared      = flag.Bool("shared-coarsen", false, "share coarsening hierarchies across ml starts (2-way only)")
		hierarchies = flag.Int("hierarchies", 2, "shared hierarchies to build with -shared-coarsen")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		stats       = flag.Bool("stats", false, "print per-phase timings and FM kernel work counters after the run")
		out         = flag.String("out", "", "write the best assignment to this file")
	)
	flag.Parse()
	if *base == "" {
		fmt.Fprintln(os.Stderr, "hpart: -base is required")
		flag.Usage()
		os.Exit(2)
	}
	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpart:", err)
		os.Exit(1)
	}
	err = run(*dir, *base, *engine, *kway, *objective, *starts, *cutoff, *seed, *workers, *coarsenW, *refineW, *localizedW, *shared, *hierarchies, *stats, *out)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpart:", err)
		os.Exit(1)
	}
}

func run(dir, base, engine, kway, objective string, starts int, cutoff float64, seed uint64, workers, coarsenWorkers, refineWorkers, localizedWorkers int, shared bool, hierarchies int, stats bool, out string) error {
	obj, err := fm.ParseObjective(objective)
	if err != nil {
		return err
	}
	p, err := bookshelf.ReadProblem(dir, base)
	if err != nil {
		return err
	}
	fmt.Printf("instance %s: %v, k=%d, fixed=%d (%.1f%%)\n",
		base, p.H, p.K, p.NumFixed(), 100*p.FixedFraction())
	if shared && (engine != "ml" || p.K != 2) {
		return fmt.Errorf("-shared-coarsen requires the ml engine on a 2-way bundle (engine=%s, k=%d)", engine, p.K)
	}
	rng := rand.New(rand.NewPCG(seed, 0x42))
	t0 := time.Now()
	var best partition.Assignment
	var score int64 // the winning assignment's value under -objective
	var phases *multilevel.PhaseStats
	var flatKernel fm.KernelStats
	if stats {
		phases = &multilevel.PhaseStats{}
	}
	switch engine {
	case "ml":
		if coarsenWorkers == 0 {
			coarsenWorkers = runtime.GOMAXPROCS(0)
		}
		if max := runtime.GOMAXPROCS(0); refineWorkers > max {
			refineWorkers = max
		}
		if max := runtime.GOMAXPROCS(0); localizedWorkers > max {
			localizedWorkers = max
		}
		cfg := multilevel.Config{Objective: obj, MaxPassFraction: passFraction(cutoff), Workers: workers, CoarsenWorkers: coarsenWorkers, RefineWorkers: refineWorkers, LocalizedFMWorkers: localizedWorkers, Stats: phases}
		switch {
		case p.K == 2 && shared:
			res, err := multilevel.ParallelSharedMultistart(p, cfg, starts, hierarchies, rng)
			if err != nil {
				return err
			}
			best, score = res.Assignment, res.Score
		case p.K == 2:
			res, err := multilevel.ParallelMultistart(p, cfg, starts, rng)
			if err != nil {
				return err
			}
			best, score = res.Assignment, res.Score
		case kway == "direct":
			res, err := multilevel.ParallelMultistartKWay(p, cfg, starts, rng)
			if err != nil {
				return err
			}
			best, score = res.Assignment, res.Score
		case kway == "rb":
			// Recursive bisection per start, then direct k-way FM polish on
			// the full problem.
			for s := 0; s < starts; s++ {
				res, err := multilevel.RecursiveBisect(p, cfg, rng)
				if err != nil {
					return err
				}
				ref, err := fm.KWayPartition(p, res.Assignment, fm.Config{Policy: fm.CLIP, Objective: obj, MaxPassFraction: passFraction(cutoff), Stats: flatStats(stats, &flatKernel)})
				if err != nil {
					return err
				}
				if best == nil || ref.Score < score {
					best, score = ref.Assignment, ref.Score
				}
			}
		default:
			return fmt.Errorf("unknown -kway mode %q (want direct or rb)", kway)
		}
	case "lifo", "clip":
		policy := fm.LIFO
		if engine == "clip" {
			policy = fm.CLIP
		}
		cfg := fm.Config{Policy: policy, Objective: obj, MaxPassFraction: passFraction(cutoff), Stats: flatStats(stats, &flatKernel)}
		for s := 0; s < starts; s++ {
			var a partition.Assignment
			var c int64
			if p.K == 2 {
				res, err := fm.RunFromRandom(p, cfg, rng)
				if err != nil {
					return err
				}
				a, c = res.Assignment, res.Score
			} else {
				initial, err := partition.RandomFeasible(p, rng)
				if err != nil {
					return err
				}
				res, err := fm.KWayPartition(p, initial, cfg)
				if err != nil {
					return err
				}
				a, c = res.Assignment, res.Score
			}
			if best == nil || c < score {
				best, score = a, c
			}
		}
	default:
		return fmt.Errorf("unknown engine %q", engine)
	}
	fmt.Printf("best %s over %d start(s): %d   (%.1f ms)\n",
		obj, starts, score, float64(time.Since(t0).Microseconds())/1000)
	fmt.Printf("objectives: cut=%d km1=%d soed=%d\n",
		partition.Cut(p.H, best), partition.KMinus1(p.H, best), partition.SOED(p.H, best))
	if stats {
		printStats(phases, &flatKernel)
	}
	if err := p.Feasible(best); err != nil {
		return fmt.Errorf("internal error: result infeasible: %w", err)
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bookshelf.WriteSolution(f, p, best); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}

// flatStats returns the kernel-counter sink for the flat engines (nil when
// -stats is off, so the hot path skips the atomics).
func flatStats(enabled bool, k *fm.KernelStats) *fm.KernelStats {
	if !enabled {
		return nil
	}
	return k
}

// printStats reports the per-phase breakdown (multilevel engines) and the FM
// kernel's net-state-aware work counters.
func printStats(phases *multilevel.PhaseStats, flat *fm.KernelStats) {
	kernel := flat.Snapshot()
	if phases != nil {
		if phases.TotalNS() > 0 {
			fmt.Printf("phases: coarsen %.1f ms, init %.1f ms, refine-parallel %.1f ms, refine-localized %.1f ms, refine %.1f ms\n",
				float64(phases.CoarsenNS)/1e6, float64(phases.InitNS)/1e6,
				float64(phases.RefineParallelNS)/1e6, float64(phases.RefineLocalizedNS)/1e6, float64(phases.RefineNS)/1e6)
		}
		ml := phases.Kernel.Snapshot()
		kernel.NetsSkipped += ml.NetsSkipped
		kernel.PinScansAvoided += ml.PinScansAvoided
		kernel.PinsScanned += ml.PinsScanned
		kernel.BucketUpdatesSaved += ml.BucketUpdatesSaved
	}
	fmt.Printf("fm kernel: %d locked nets skipped, %d/%d pin scans avoided/executed (%s reduction), %d bucket updates saved\n",
		kernel.NetsSkipped, kernel.PinScansAvoided, kernel.PinsScanned,
		scanReduction(kernel), kernel.BucketUpdatesSaved)
}

// scanReduction renders the kernel's gain-update pin-traversal reduction over
// the frozen reference ("1.91x", or "-" before any net has been scanned).
func scanReduction(k fm.KernelStats) string {
	if k.PinsScanned == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(k.PinsScanned+k.PinScansAvoided)/float64(k.PinsScanned))
}

func passFraction(cutoff float64) float64 {
	if cutoff >= 1 || cutoff <= 0 {
		return 0
	}
	return cutoff
}
