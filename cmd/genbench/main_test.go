package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bookshelf"
	"repro/internal/gen"
)

func TestRunWritesSuite(t *testing.T) {
	dir := t.TempDir()
	presets := gen.IBMPresets()[:1]
	if err := run(dir, presets, 0.02, 1); err != nil {
		t.Fatalf("run: %v", err)
	}
	// 8 specs x 4 files + TABLE_IV.txt.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 8*4+1 {
		t.Errorf("wrote %d files, want %d", len(entries), 8*4+1)
	}
	// A derived half-chip bundle reads back with fixed terminals.
	p, err := bookshelf.ReadProblem(dir, "IBM01SB_L1_V0_V")
	if err != nil {
		t.Fatalf("ReadProblem: %v", err)
	}
	if p.NumFixed() == 0 {
		t.Error("derived instance has no fixed terminals")
	}
	if _, err := os.Stat(filepath.Join(dir, "TABLE_IV.txt")); err != nil {
		t.Errorf("TABLE_IV.txt missing: %v", err)
	}
}
