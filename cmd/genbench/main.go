// Command genbench generates the synthetic IBM01S-IBM05S circuits, places
// them top-down, derives the fixed-terminals benchmark suite of the paper's
// Section IV, and writes everything as bookshelf bundles plus a Table IV
// summary.
//
// Usage:
//
//	genbench -out bench [-preset IBM01S | -all] [-scale 0.25] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"

	"repro/internal/benchgen"
	"repro/internal/bookshelf"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/place"
)

func main() {
	var (
		out    = flag.String("out", "bench", "output directory")
		preset = flag.String("preset", "", "single preset to generate (e.g. IBM01S)")
		all    = flag.Bool("all", false, "generate all IBM01S-IBM05S presets")
		scale  = flag.Float64("scale", 1.0, "scale factor for cell/pad counts")
		seed   = flag.Uint64("seed", 1, "random seed for placement")
	)
	flag.Parse()
	var presets []gen.Preset
	switch {
	case *preset != "":
		pr, err := gen.PresetByName(*preset)
		if err != nil {
			fmt.Fprintln(os.Stderr, "genbench:", err)
			os.Exit(2)
		}
		presets = []gen.Preset{pr}
	case *all:
		presets = gen.IBMPresets()
	default:
		presets = gen.IBMPresets()[:1]
	}
	if err := run(*out, presets, *scale, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "genbench:", err)
		os.Exit(1)
	}
}

func run(out string, presets []gen.Preset, scale float64, seed uint64) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	var instances []*benchgen.Instance
	for _, pr := range presets {
		params := pr.Params.Scaled(scale)
		nl, err := gen.Generate(params)
		if err != nil {
			return fmt.Errorf("generating %s: %w", pr.Name, err)
		}
		fmt.Printf("%s: %v\n", pr.Name, nl.H)
		pl, err := placeNetlist(nl, seed)
		if err != nil {
			return fmt.Errorf("placing %s: %w", pr.Name, err)
		}
		fmt.Printf("%s: placed, HPWL = %.0f\n", pr.Name, pl.HPWL())
		for _, spec := range benchgen.StandardSpecs(pl, pr.Name) {
			inst, err := benchgen.Derive(pl, spec, 0.02)
			if err != nil {
				return fmt.Errorf("deriving %s: %w", spec.Name, err)
			}
			instances = append(instances, inst)
			if err := bookshelf.WriteProblem(out, inst.Name, inst.Problem); err != nil {
				return fmt.Errorf("writing %s: %w", inst.Name, err)
			}
		}
	}
	if err := experiments.RenderTableIV(os.Stdout, experiments.TableIV(instances)); err != nil {
		return err
	}
	summary, err := os.Create(filepath.Join(out, "TABLE_IV.txt"))
	if err != nil {
		return err
	}
	defer summary.Close()
	fmt.Printf("wrote %d bundles to %s\n", len(instances), out)
	return experiments.RenderTableIV(summary, experiments.TableIV(instances))
}

// placeNetlist runs the top-down placer with pads pinned to the generator's
// periphery positions.
func placeNetlist(nl *gen.Netlist, seed uint64) (*place.Placement, error) {
	nv := nl.H.NumVertices()
	side := float64(nl.GridSide)
	fx := make([]float64, nv)
	fy := make([]float64, nv)
	for v := 0; v < nv; v++ {
		if nl.H.IsPad(v) {
			fx[v] = float64(nl.CellX[v])
			fy[v] = float64(nl.CellY[v])
		} else {
			fx[v], fy[v] = math.NaN(), math.NaN()
		}
	}
	return place.Place(nl.H, place.Config{
		Width: side, Height: side,
		FixedX: fx, FixedY: fy,
	}, rand.New(rand.NewPCG(seed, 0x9ace)))
}
