package bookshelf

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/hypergraph"
)

// The GSRC/UCLA bookshelf placement formats (.nodes/.nets/.pl) are the
// format family under which the paper's benchmark suite was published.
// These writers and readers cover the subset needed for partitioning
// benchmarks with placements: node dimensions (cells carry their area as
// width x 1; terminals are zero-size), net pin lists, and placed locations
// with /FIXED markers for pads.

// GSRCPlacement couples a hypergraph with placed coordinates, as stored in a
// .nodes/.nets/.pl trio. Fixed[v] reports a /FIXED marker in the .pl file
// (pads pinned to the periphery).
type GSRCPlacement struct {
	H     *hypergraph.Hypergraph
	X, Y  []float64
	Fixed []bool
}

// WriteGSRC writes base.nodes, base.nets and base.pl into dir. Pad vertices
// must follow all cells (as with WriteNetAre); pads are emitted as
// zero-size terminal nodes with /FIXED placements.
func WriteGSRC(dir, base string, h *hypergraph.Hypergraph, x, y []float64, fixed []bool) error {
	if len(x) != h.NumVertices() || len(y) != h.NumVertices() {
		return fmt.Errorf("bookshelf: coordinate slices cover %d/%d of %d vertices", len(x), len(y), h.NumVertices())
	}
	names, _, err := moduleNames(h)
	if err != nil {
		return err
	}
	nodes, err := os.Create(filepath.Join(dir, base+".nodes"))
	if err != nil {
		return err
	}
	defer nodes.Close()
	w := bufio.NewWriter(nodes)
	fmt.Fprintln(w, "UCLA nodes 1.0")
	fmt.Fprintf(w, "NumNodes : %d\n", h.NumVertices())
	fmt.Fprintf(w, "NumTerminals : %d\n", h.NumPads())
	for v := 0; v < h.NumVertices(); v++ {
		if h.IsPad(v) {
			fmt.Fprintf(w, "\t%s\t0\t0\tterminal\n", names[v])
		} else {
			fmt.Fprintf(w, "\t%s\t%d\t1\n", names[v], h.Weight(v))
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}

	nets, err := os.Create(filepath.Join(dir, base+".nets"))
	if err != nil {
		return err
	}
	defer nets.Close()
	w = bufio.NewWriter(nets)
	fmt.Fprintln(w, "UCLA nets 1.0")
	fmt.Fprintf(w, "NumNets : %d\n", h.NumNets())
	fmt.Fprintf(w, "NumPins : %d\n", h.NumPins())
	for e := 0; e < h.NumNets(); e++ {
		fmt.Fprintf(w, "NetDegree : %d n%d\n", h.NetSize(e), e)
		for _, v := range h.Pins(e) {
			fmt.Fprintf(w, "\t%s B\n", names[v])
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}

	pl, err := os.Create(filepath.Join(dir, base+".pl"))
	if err != nil {
		return err
	}
	defer pl.Close()
	w = bufio.NewWriter(pl)
	fmt.Fprintln(w, "UCLA pl 1.0")
	for v := 0; v < h.NumVertices(); v++ {
		fmt.Fprintf(w, "%s\t%g\t%g : N", names[v], x[v], y[v])
		if fixed != nil && v < len(fixed) && fixed[v] {
			fmt.Fprint(w, " /FIXED")
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}

// ReadGSRC reads a .nodes/.nets/.pl trio written by WriteGSRC (or any
// bookshelf source using the same subset).
func ReadGSRC(dir, base string) (*GSRCPlacement, error) {
	nodesF, err := os.Open(filepath.Join(dir, base+".nodes"))
	if err != nil {
		return nil, err
	}
	defer nodesF.Close()
	type nodeRec struct {
		name     string
		area     int64
		terminal bool
	}
	var recs []nodeRec
	index := map[string]int{}
	sc := newScanner(nodesF)
	if err := expectHeader(sc, "UCLA nodes"); err != nil {
		return nil, err
	}
	numNodes, numTerms := -1, -1
	for {
		line, ok := sc.next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "NumNodes":
			numNodes, err = headerCount(sc, fields)
		case fields[0] == "NumTerminals":
			numTerms, err = headerCount(sc, fields)
		default:
			if len(fields) < 3 {
				return nil, sc.errf("malformed node line %q", line)
			}
			wv, err1 := strconv.ParseFloat(fields[1], 64)
			hv, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil {
				return nil, sc.errf("bad node dimensions %q", line)
			}
			rec := nodeRec{name: fields[0], area: int64(math.Round(wv * hv))}
			if len(fields) > 3 && fields[3] == "terminal" {
				rec.terminal = true
			}
			if _, dup := index[rec.name]; dup {
				return nil, sc.errf("duplicate node %q", rec.name)
			}
			index[rec.name] = len(recs)
			recs = append(recs, rec)
		}
		if err != nil {
			return nil, err
		}
	}
	if numNodes >= 0 && numNodes != len(recs) {
		return nil, fmt.Errorf("bookshelf: .nodes declares %d nodes, found %d", numNodes, len(recs))
	}
	terms := 0
	b := hypergraph.NewBuilder(1)
	for _, r := range recs {
		id := b.AddCell(r.name, r.area)
		if r.terminal {
			b.SetPad(id, true)
			terms++
		}
	}
	if numTerms >= 0 && numTerms != terms {
		return nil, fmt.Errorf("bookshelf: .nodes declares %d terminals, found %d", numTerms, terms)
	}

	netsF, err := os.Open(filepath.Join(dir, base+".nets"))
	if err != nil {
		return nil, err
	}
	defer netsF.Close()
	sc = newScanner(netsF)
	if err := expectHeader(sc, "UCLA nets"); err != nil {
		return nil, err
	}
	declaredNets, declaredPins := -1, -1
	var current []int
	remaining := 0
	pins := 0
	flush := func() error {
		if remaining > 0 {
			return fmt.Errorf("bookshelf: net ended with %d pins missing", remaining)
		}
		if len(current) > 0 {
			b.AddNet(current...)
			current = nil
		}
		return nil
	}
	for {
		line, ok := sc.next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "NumNets":
			declaredNets, err = headerCount(sc, fields)
		case "NumPins":
			declaredPins, err = headerCount(sc, fields)
		case "NetDegree":
			if err := flush(); err != nil {
				return nil, err
			}
			if len(fields) < 3 {
				return nil, sc.errf("malformed NetDegree line %q", line)
			}
			remaining, err = strconv.Atoi(fields[2])
			if err != nil {
				return nil, sc.errf("bad net degree %q", fields[2])
			}
		default:
			v, ok := index[fields[0]]
			if !ok {
				return nil, sc.errf("pin references unknown node %q", fields[0])
			}
			if remaining <= 0 {
				return nil, sc.errf("pin line %q outside a net", line)
			}
			current = append(current, v)
			remaining--
			pins++
		}
		if err != nil {
			return nil, err
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if declaredPins >= 0 && declaredPins != pins {
		return nil, fmt.Errorf("bookshelf: .nets declares %d pins, found %d", declaredPins, pins)
	}
	h, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("bookshelf: %w", err)
	}
	if declaredNets >= 0 && declaredNets != h.NumNets() {
		return nil, fmt.Errorf("bookshelf: .nets declares %d nets, found %d", declaredNets, h.NumNets())
	}

	out := &GSRCPlacement{
		H:     h,
		X:     make([]float64, h.NumVertices()),
		Y:     make([]float64, h.NumVertices()),
		Fixed: make([]bool, h.NumVertices()),
	}
	plF, err := os.Open(filepath.Join(dir, base+".pl"))
	if err != nil {
		return nil, err
	}
	defer plF.Close()
	sc = newScanner(plF)
	if err := expectHeader(sc, "UCLA pl"); err != nil {
		return nil, err
	}
	seen := make([]bool, h.NumVertices())
	for {
		line, ok := sc.next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, sc.errf("malformed placement line %q", line)
		}
		v, ok := index[fields[0]]
		if !ok {
			return nil, sc.errf("placement references unknown node %q", fields[0])
		}
		xv, err1 := strconv.ParseFloat(fields[1], 64)
		yv, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			return nil, sc.errf("bad coordinates %q", line)
		}
		out.X[v], out.Y[v] = xv, yv
		seen[v] = true
		for _, f := range fields[3:] {
			if f == "/FIXED" {
				out.Fixed[v] = true
			}
		}
	}
	for v, s := range seen {
		if !s {
			return nil, fmt.Errorf("bookshelf: .pl missing node %s", h.VertexName(v))
		}
	}
	return out, nil
}

// expectHeader consumes the "UCLA <kind> 1.0" banner.
func expectHeader(sc *scanner, prefix string) error {
	line, ok := sc.next()
	if !ok || !strings.HasPrefix(line, prefix) {
		return sc.errf("missing %q header (got %q)", prefix, line)
	}
	return nil
}

// headerCount parses "Key : N" lines.
func headerCount(sc *scanner, fields []string) (int, error) {
	if len(fields) != 3 || fields[1] != ":" {
		return 0, sc.errf("malformed header %v", fields)
	}
	n, err := strconv.Atoi(fields[2])
	if err != nil {
		return 0, sc.errf("bad header count %q", fields[2])
	}
	return n, nil
}
