package bookshelf_test

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bookshelf"
	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// sample builds a hypergraph with 4 cells then 2 pads (pads last, as the
// writer requires).
func sample(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(1)
	for i := 0; i < 4; i++ {
		b.AddCell("", int64(i+1))
	}
	p1 := b.AddPad("")
	p2 := b.AddPad("")
	b.AddNet(0, 1, 2)
	b.AddNet(2, 3)
	b.AddNet(p1, 0)
	b.AddNet(p2, 3, 1)
	return b.MustBuild()
}

func roundTrip(t *testing.T, h *hypergraph.Hypergraph) *hypergraph.Hypergraph {
	t.Helper()
	var netBuf, areBuf bytes.Buffer
	if err := bookshelf.WriteNetAre(&netBuf, &areBuf, h); err != nil {
		t.Fatalf("WriteNetAre: %v", err)
	}
	got, err := bookshelf.ReadNetAre(&netBuf, &areBuf)
	if err != nil {
		t.Fatalf("ReadNetAre: %v", err)
	}
	return got
}

func sameHypergraph(a, b *hypergraph.Hypergraph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumNets() != b.NumNets() ||
		a.NumPins() != b.NumPins() || a.NumResources() != b.NumResources() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.IsPad(v) != b.IsPad(v) {
			return false
		}
		for r := 0; r < a.NumResources(); r++ {
			if a.WeightIn(v, r) != b.WeightIn(v, r) {
				return false
			}
		}
	}
	for e := 0; e < a.NumNets(); e++ {
		pa, pb := a.Pins(e), b.Pins(e)
		if len(pa) != len(pb) {
			return false
		}
		for i := range pa {
			if pa[i] != pb[i] {
				return false
			}
		}
	}
	return true
}

func TestNetAreRoundTrip(t *testing.T) {
	h := sample(t)
	got := roundTrip(t, h)
	if !sameHypergraph(h, got) {
		t.Error("round trip changed the hypergraph")
	}
}

func TestNetAreMultiResource(t *testing.T) {
	b := hypergraph.NewBuilder(3)
	b.AddCell("", 5, 1, 9)
	b.AddCell("", 7, 2, 0)
	b.AddNet(0, 1)
	h := b.MustBuild()
	got := roundTrip(t, h)
	if got.NumResources() != 3 || got.WeightIn(0, 2) != 9 {
		t.Errorf("multi-resource areas lost: resources=%d w=%d", got.NumResources(), got.WeightIn(0, 2))
	}
}

func TestWriteNetAreRejectsInterleavedPads(t *testing.T) {
	b := hypergraph.NewBuilder(1)
	b.AddPad("")
	b.AddCell("", 1)
	b.AddNet(0, 1)
	h := b.MustBuild()
	var n, a bytes.Buffer
	if err := bookshelf.WriteNetAre(&n, &a, h); err == nil {
		t.Error("want error for pad before cells")
	}
}

func TestNetAreFormatShape(t *testing.T) {
	h := sample(t)
	var netBuf, areBuf bytes.Buffer
	if err := bookshelf.WriteNetAre(&netBuf, &areBuf, h); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(netBuf.String()), "\n")
	if lines[0] != "0" || lines[1] != "10" || lines[2] != "4" || lines[3] != "6" || lines[4] != "4" {
		t.Errorf("header = %v", lines[:5])
	}
	if lines[5] != "a0 s" {
		t.Errorf("first pin line = %q, want \"a0 s\"", lines[5])
	}
	if !strings.Contains(areBuf.String(), "p1 0") {
		t.Errorf("pad area missing: %q", areBuf.String())
	}
}

func TestReadNetAreErrors(t *testing.T) {
	are := "a0 1\na1 1\n"
	cases := []struct{ name, net, are string }{
		{"short header", "0\n4\n", are},
		{"unknown module", "0\n2\n1\n2\n2\nzz s\na1 l\n", are},
		{"bad tag", "0\n2\n1\n2\n2\na0 x\na1 l\n", are},
		{"continuation first", "0\n2\n1\n2\n2\na0 l\na1 l\n", are},
		{"pin count mismatch", "0\n5\n1\n2\n2\na0 s\na1 l\n", are},
		{"net count mismatch", "0\n2\n2\n2\n2\na0 s\na1 l\n", are},
		{"missing area", "0\n2\n1\n2\n2\na0 s\na1 l\n", "a0 1\n"},
		{"duplicate area", "0\n2\n1\n2\n2\na0 s\na1 l\n", "a0 1\na0 2\na1 1\n"},
		{"bad pad offset", "0\n2\n1\n2\n9\na0 s\na1 l\n", are},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := bookshelf.ReadNetAre(strings.NewReader(c.net), strings.NewReader(c.are))
			if err == nil {
				t.Errorf("want error")
			}
		})
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	net := "# classic format\n0\n2\n1\n2\n2\n\na0 s # start\na1 l\n"
	are := "a0 3\n# trailing\na1 4\n"
	h, err := bookshelf.ReadNetAre(strings.NewReader(net), strings.NewReader(are))
	if err != nil {
		t.Fatalf("ReadNetAre: %v", err)
	}
	if h.Weight(0) != 3 || h.Weight(1) != 4 {
		t.Errorf("areas = %d,%d", h.Weight(0), h.Weight(1))
	}
}

func TestBlkRoundTrip(t *testing.T) {
	bal := partition.Balance{
		Min: [][]int64{{10, 1}, {20, 2}, {0, 0}},
		Max: [][]int64{{30, 5}, {40, 6}, {50, 7}},
	}
	var buf bytes.Buffer
	if err := bookshelf.WriteBlk(&buf, bal); err != nil {
		t.Fatalf("WriteBlk: %v", err)
	}
	got, k, err := bookshelf.ReadBlk(&buf)
	if err != nil {
		t.Fatalf("ReadBlk: %v", err)
	}
	if k != 3 {
		t.Errorf("k = %d", k)
	}
	for p := 0; p < 3; p++ {
		for r := 0; r < 2; r++ {
			if got.Min[p][r] != bal.Min[p][r] || got.Max[p][r] != bal.Max[p][r] {
				t.Errorf("bounds differ at part %d resource %d", p, r)
			}
		}
	}
}

func TestReadBlkErrors(t *testing.T) {
	cases := []string{
		"",
		"parts 2\n",
		"resources 1\nparts 2\n",
		"parts 1\nresources 1\n0 1 2\n",
		"parts 2\nresources 1\n0 1 2\n",
		"parts 2\nresources 1\n0 1 2\n0 1 2\n",
		"parts 2\nresources 1\n0 1\n1 1 2\n",
		"parts 2\nresources 1\n7 1 2\n1 1 2\n",
	}
	for i, c := range cases {
		if _, _, err := bookshelf.ReadBlk(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestFixRoundTrip(t *testing.T) {
	h := sample(t)
	p := partition.NewFree(h, 4, 0.5)
	p.Fix(4, 0)                                  // pad p1
	p.Restrict(5, partition.Single(1).With(3))   // pad p2: OR-region {1,3}
	p.Restrict(0, partition.AllParts(4).With(0)) // effectively free; not written

	var buf bytes.Buffer
	if err := bookshelf.WriteFix(&buf, p); err != nil {
		t.Fatalf("WriteFix: %v", err)
	}
	text := buf.String()
	if !strings.Contains(text, "p1 0") || !strings.Contains(text, "p2 1 3") {
		t.Errorf("fix file contents: %q", text)
	}
	if strings.Contains(text, "a0") {
		t.Errorf("free vertex written: %q", text)
	}
	names := map[string]int{"a0": 0, "a1": 1, "a2": 2, "a3": 3, "p1": 4, "p2": 5}
	masks, err := bookshelf.ReadFix(&buf, names, 6, 4)
	if err != nil {
		t.Fatalf("ReadFix: %v", err)
	}
	if masks[4] != partition.Single(0) {
		t.Errorf("mask p1 = %b", masks[4])
	}
	if masks[5] != partition.Single(1).With(3) {
		t.Errorf("mask p2 = %b", masks[5])
	}
	if masks[0] != partition.AllParts(4) {
		t.Errorf("mask a0 = %b, want free", masks[0])
	}
}

func TestReadFixErrors(t *testing.T) {
	names := map[string]int{"a0": 0}
	cases := []string{"a0\n", "zz 1\n", "a0 9\n", "a0 -1\n"}
	for i, c := range cases {
		if _, err := bookshelf.ReadFix(strings.NewReader(c), names, 1, 2); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestSolutionRoundTrip(t *testing.T) {
	h := sample(t)
	p := partition.NewBipartition(h, 0.5)
	a := partition.Assignment{0, 1, 0, 1, 0, 1}
	var buf bytes.Buffer
	if err := bookshelf.WriteSolution(&buf, p, a); err != nil {
		t.Fatalf("WriteSolution: %v", err)
	}
	got, err := bookshelf.ReadSolution(&buf, p)
	if err != nil {
		t.Fatalf("ReadSolution: %v", err)
	}
	for v := range a {
		if got[v] != a[v] {
			t.Errorf("solution differs at %d", v)
		}
	}
	// Missing module error.
	if _, err := bookshelf.ReadSolution(strings.NewReader("a0 1\n"), p); err == nil {
		t.Error("want error for incomplete solution")
	}
}

func TestProblemBundleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	h := sample(t)
	p := partition.NewBipartition(h, 0.1)
	p.Fix(4, 0)
	p.Fix(5, 1)
	if err := bookshelf.WriteProblem(dir, "tiny", p); err != nil {
		t.Fatalf("WriteProblem: %v", err)
	}
	got, err := bookshelf.ReadProblem(dir, "tiny")
	if err != nil {
		t.Fatalf("ReadProblem: %v", err)
	}
	if got.K != 2 || !sameHypergraph(p.H, got.H) {
		t.Error("bundle round trip changed the instance")
	}
	if part, ok := got.FixedPart(4); !ok || part != 0 {
		t.Errorf("pad fixation lost: %d %v", part, ok)
	}
	if got.NumFixed() != 2 {
		t.Errorf("NumFixed = %d", got.NumFixed())
	}
	// Cell areas are 1,2,3,4; {0,1,0,1} splits 4/6, inside the 10%-of-10
	// bounds [4,6]; pads are weightless.
	if !got.Balance.Admits(partition.PartWeights(got.H, partition.Assignment{0, 1, 0, 1, 0, 1}, 2)) {
		t.Error("balance semantics changed")
	}
	if got.Balance.Admits(partition.PartWeights(got.H, partition.Assignment{0, 0, 1, 1, 0, 1}, 2)) {
		t.Error("balance accepts a 3/7 split it should reject")
	}
}

func TestProblemBundleRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 31))
		nCells := 4 + rng.IntN(20)
		nPads := rng.IntN(4)
		b := hypergraph.NewBuilder(1)
		for i := 0; i < nCells; i++ {
			b.AddCell("", int64(1+rng.IntN(9)))
		}
		for i := 0; i < nPads; i++ {
			b.AddPad("")
		}
		nv := nCells + nPads
		for e := 0; e < 2*nv; e++ {
			sz := 2 + rng.IntN(3)
			b.AddNet(rng.Perm(nv)[:sz]...)
		}
		h := b.MustBuild()
		k := 2 + rng.IntN(3)
		p := partition.NewFree(h, k, 0.5)
		for v := 0; v < nv; v++ {
			if rng.IntN(3) == 0 {
				p.Fix(v, rng.IntN(k))
			}
		}
		if err := bookshelf.WriteProblem(dir, "prop", p); err != nil {
			return false
		}
		got, err := bookshelf.ReadProblem(dir, "prop")
		if err != nil {
			return false
		}
		if !sameHypergraph(p.H, got.H) || got.K != p.K {
			return false
		}
		for v := 0; v < nv; v++ {
			if p.MaskOf(v)&partition.AllParts(k) != got.MaskOf(v)&partition.AllParts(k) {
				return false
			}
		}
		// Cut of a random assignment is identical on both sides.
		a := make(partition.Assignment, nv)
		for v := range a {
			a[v] = int8(rng.IntN(k))
		}
		return partition.Cut(p.H, a) == partition.Cut(got.H, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReadProblemMissingFixIsFree(t *testing.T) {
	dir := t.TempDir()
	h := sample(t)
	p := partition.NewBipartition(h, 0.2)
	if err := bookshelf.WriteProblem(dir, "free", p); err != nil {
		t.Fatalf("WriteProblem: %v", err)
	}
	got, err := bookshelf.ReadProblem(dir, "free")
	if err != nil {
		t.Fatalf("ReadProblem: %v", err)
	}
	if got.NumFixed() != 0 {
		t.Errorf("NumFixed = %d, want 0", got.NumFixed())
	}
}

func TestReadNetDDirections(t *testing.T) {
	// .netD style: a direction column I/O/B after the tag.
	net := "0\n3\n1\n3\n3\na0 s O\na1 l I\na2 l B\n"
	are := "a0 1\na1 1\na2 1\n"
	h, err := bookshelf.ReadNetAre(strings.NewReader(net), strings.NewReader(are))
	if err != nil {
		t.Fatalf("ReadNetAre(.netD): %v", err)
	}
	if h.NumNets() != 1 || h.NetSize(0) != 3 {
		t.Errorf("netD parse: %v", h)
	}
	bad := "0\n2\n1\n2\n2\na0 s X\na1 l\n"
	if _, err := bookshelf.ReadNetAre(strings.NewReader(bad), strings.NewReader(are)); err == nil {
		t.Error("want error for unknown direction")
	}
	long := "0\n2\n1\n2\n2\na0 s O extra\na1 l\n"
	if _, err := bookshelf.ReadNetAre(strings.NewReader(long), strings.NewReader(are)); err == nil {
		t.Error("want error for overlong pin line")
	}
}

func TestWriteProblemRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	h := sample(t)
	p := partition.NewFree(h, 1, 0.1) // k < 2: invalid
	if err := bookshelf.WriteProblem(dir, "bad", p); err == nil {
		t.Error("want error for invalid problem")
	}
}
