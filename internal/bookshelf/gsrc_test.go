package bookshelf_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bookshelf"
)

func TestGSRCRoundTrip(t *testing.T) {
	dir := t.TempDir()
	h := sample(t)
	x := []float64{0, 1, 2, 3, 0.5, 9.5}
	y := []float64{0, 1, 2, 3, 0, 10}
	fixed := []bool{false, false, false, false, true, true}
	if err := bookshelf.WriteGSRC(dir, "g", h, x, y, fixed); err != nil {
		t.Fatalf("WriteGSRC: %v", err)
	}
	got, err := bookshelf.ReadGSRC(dir, "g")
	if err != nil {
		t.Fatalf("ReadGSRC: %v", err)
	}
	if !sameHypergraph(h, got.H) {
		t.Error("round trip changed the hypergraph")
	}
	for v := 0; v < h.NumVertices(); v++ {
		if got.X[v] != x[v] || got.Y[v] != y[v] {
			t.Errorf("vertex %d moved: (%g,%g) -> (%g,%g)", v, x[v], y[v], got.X[v], got.Y[v])
		}
		if got.Fixed[v] != fixed[v] {
			t.Errorf("vertex %d fixed flag = %v", v, got.Fixed[v])
		}
	}
}

func TestGSRCFileShapes(t *testing.T) {
	dir := t.TempDir()
	h := sample(t)
	coords := make([]float64, h.NumVertices())
	if err := bookshelf.WriteGSRC(dir, "g", h, coords, coords, nil); err != nil {
		t.Fatalf("WriteGSRC: %v", err)
	}
	nodes, err := os.ReadFile(filepath.Join(dir, "g.nodes"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(nodes)
	if !strings.HasPrefix(text, "UCLA nodes 1.0") {
		t.Errorf("missing banner: %q", text[:30])
	}
	if !strings.Contains(text, "NumTerminals : 2") {
		t.Errorf("terminal count missing:\n%s", text)
	}
	if !strings.Contains(text, "terminal") {
		t.Error("terminal marker missing")
	}
	nets, err := os.ReadFile(filepath.Join(dir, "g.nets"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(nets), "NetDegree : 3 n0") {
		t.Errorf(".nets shape wrong:\n%s", nets)
	}
}

func TestWriteGSRCErrors(t *testing.T) {
	dir := t.TempDir()
	h := sample(t)
	if err := bookshelf.WriteGSRC(dir, "g", h, []float64{1}, []float64{1}, nil); err == nil {
		t.Error("want error for short coordinates")
	}
}

func TestReadGSRCErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	nodesOK := "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 0\na0 1 1\na1 1 1\n"
	netsOK := "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\na0 B\na1 B\n"
	plOK := "UCLA pl 1.0\na0 0 0 : N\na1 1 1 : N\n"

	cases := []struct{ name, nodes, nets, pl string }{
		{"bad banner", "WRONG\n", netsOK, plOK},
		{"node count mismatch", "UCLA nodes 1.0\nNumNodes : 5\na0 1 1\na1 1 1\n", netsOK, plOK},
		{"duplicate node", "UCLA nodes 1.0\na0 1 1\na0 1 1\n", netsOK, plOK},
		{"unknown pin", nodesOK, "UCLA nets 1.0\nNetDegree : 2 n0\nzz B\na1 B\n", plOK},
		{"short net", nodesOK, "UCLA nets 1.0\nNetDegree : 3 n0\na0 B\na1 B\n", plOK},
		{"pin count mismatch", nodesOK, "UCLA nets 1.0\nNumPins : 9\nNetDegree : 2 n0\na0 B\na1 B\n", plOK},
		{"pl missing node", nodesOK, netsOK, "UCLA pl 1.0\na0 0 0 : N\n"},
		{"pl unknown node", nodesOK, netsOK, "UCLA pl 1.0\na0 0 0 : N\nzz 1 1 : N\n"},
		{"pl bad coords", nodesOK, netsOK, "UCLA pl 1.0\na0 x y : N\na1 1 1 : N\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			write("e.nodes", c.nodes)
			write("e.nets", c.nets)
			write("e.pl", c.pl)
			if _, err := bookshelf.ReadGSRC(dir, "e"); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestReadGSRCTerminalAreas(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "t.nodes"), []byte(
		"UCLA nodes 1.0\nNumNodes : 3\nNumTerminals : 1\na0 4 2\na1 3 1\np1 0 0 terminal\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "t.nets"), []byte(
		"UCLA nets 1.0\nNetDegree : 3 n0\na0 B\na1 B\np1 B\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "t.pl"), []byte(
		"UCLA pl 1.0\na0 0 0 : N\na1 5 5 : N\np1 9 9 : N /FIXED\n"), 0o644)
	got, err := bookshelf.ReadGSRC(dir, "t")
	if err != nil {
		t.Fatalf("ReadGSRC: %v", err)
	}
	if got.H.Weight(0) != 8 || got.H.Weight(1) != 3 {
		t.Errorf("areas = %d,%d, want width*height", got.H.Weight(0), got.H.Weight(1))
	}
	if !got.H.IsPad(2) || !got.Fixed[2] {
		t.Error("terminal flags lost")
	}
}
