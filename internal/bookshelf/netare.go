// Package bookshelf reads and writes partitioning benchmark files: the
// classic .net/.are pair of the ACM/SIGDA and ISPD-98 suites, and the
// fixed-terminals extensions the paper proposes for the GSRC bookshelf —
// a .blk partition/capacity file with absolute or relative balance
// semantics, a .fix fixed/region file with OR-assignment of terminals to
// several partitions, a multi-area .are with one area per resource repeated
// on the same line, and a .sol solution file.
//
// All formats are line based; '#' starts a comment, blank lines are ignored.
package bookshelf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/hypergraph"
)

// WriteNetAre writes h in the classic two-file form: the netlist to netW
// (module-per-line, 's' marking the first pin of each net) and per-module
// areas to areW. Multi-resource hypergraphs emit all areas on the module's
// line, the paper's proposed multi-area extension; single-resource files are
// byte-compatible with the classic format.
//
// Modules are named a0..a<n-1> in vertex order for cells and p1..p<m> for
// pads; the header's pad offset is the number of non-pad modules. To keep
// the naming scheme invertible, pad vertices must follow all cell vertices.
func WriteNetAre(netW, areW io.Writer, h *hypergraph.Hypergraph) error {
	names, padOffset, err := moduleNames(h)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(netW)
	fmt.Fprintln(bw, 0)
	fmt.Fprintln(bw, h.NumPins())
	fmt.Fprintln(bw, h.NumNets())
	fmt.Fprintln(bw, h.NumVertices())
	fmt.Fprintln(bw, padOffset)
	for e := 0; e < h.NumNets(); e++ {
		for i, v := range h.Pins(e) {
			tag := "l"
			if i == 0 {
				tag = "s"
			}
			fmt.Fprintf(bw, "%s %s\n", names[v], tag)
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	aw := bufio.NewWriter(areW)
	for v := 0; v < h.NumVertices(); v++ {
		fmt.Fprintf(aw, "%s", names[v])
		for r := 0; r < h.NumResources(); r++ {
			fmt.Fprintf(aw, " %d", h.WeightIn(v, r))
		}
		fmt.Fprintln(aw)
	}
	return aw.Flush()
}

// moduleNames assigns canonical module names and checks pad ordering.
func moduleNames(h *hypergraph.Hypergraph) ([]string, int, error) {
	names := make([]string, h.NumVertices())
	padOffset := h.NumVertices() - h.NumPads()
	for v := 0; v < h.NumVertices(); v++ {
		if h.IsPad(v) {
			if v < padOffset {
				return nil, 0, fmt.Errorf("bookshelf: pad vertex %d precedes cell vertices; reorder before writing", v)
			}
			names[v] = fmt.Sprintf("p%d", v-padOffset+1)
		} else {
			if v >= padOffset {
				return nil, 0, fmt.Errorf("bookshelf: cell vertex %d follows pad vertices; reorder before writing", v)
			}
			names[v] = fmt.Sprintf("a%d", v)
		}
	}
	return names, padOffset, nil
}

// ReadNetAre parses the two-file form back into a hypergraph. It accepts
// single- or multi-area .are files (the resource count is inferred from the
// first area line) and returns vertices in module order: cells a0.. then
// pads p1.. .
func ReadNetAre(netR, areR io.Reader) (*hypergraph.Hypergraph, error) {
	sc := newScanner(netR)
	var header [5]int
	for i := range header {
		line, ok := sc.next()
		if !ok {
			return nil, sc.errf("unexpected end of .net header")
		}
		n, err := strconv.Atoi(strings.Fields(line)[0])
		if err != nil {
			return nil, sc.errf("bad header value %q: %v", line, err)
		}
		header[i] = n
	}
	numPins, numNets, numModules, padOffset := header[1], header[2], header[3], header[4]
	if padOffset < 0 || padOffset > numModules {
		return nil, sc.errf("pad offset %d outside [0,%d]", padOffset, numModules)
	}

	// Areas first, so we know the resource count before adding vertices.
	areas, numResources, err := readAreas(areR)
	if err != nil {
		return nil, err
	}

	b := hypergraph.NewBuilder(numResources)
	index := make(map[string]int, numModules)
	for v := 0; v < numModules; v++ {
		var name string
		if v < padOffset {
			name = fmt.Sprintf("a%d", v)
		} else {
			name = fmt.Sprintf("p%d", v-padOffset+1)
		}
		ws, haveArea := areas[name]
		if !haveArea && v < padOffset {
			return nil, fmt.Errorf("bookshelf: .are missing area for module %s", name)
		}
		id := b.AddCell(name, ws...) // pads may omit areas (zero)
		if v >= padOffset {
			b.SetPad(id, true)
		}
		index[name] = id
	}

	var current []int
	flush := func() {
		if len(current) > 0 {
			b.AddNet(current...)
			current = nil
		}
	}
	pins := 0
	for {
		line, ok := sc.next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, sc.errf("malformed pin line %q", line)
		}
		// .netD files append a pin direction (I/O/B) after the tag; it does
		// not affect partitioning and is accepted and ignored.
		if len(fields) == 3 {
			switch fields[2] {
			case "I", "O", "B":
			default:
				return nil, sc.errf("unknown pin direction %q", fields[2])
			}
		} else if len(fields) > 3 {
			return nil, sc.errf("malformed pin line %q", line)
		}
		v, ok := index[fields[0]]
		if !ok {
			return nil, sc.errf("pin references unknown module %q", fields[0])
		}
		switch fields[1] {
		case "s":
			flush()
			current = []int{v}
		case "l":
			if current == nil {
				return nil, sc.errf("continuation pin before any net start")
			}
			current = append(current, v)
		default:
			return nil, sc.errf("unknown pin tag %q", fields[1])
		}
		pins++
	}
	flush()
	if pins != numPins {
		return nil, fmt.Errorf("bookshelf: .net declares %d pins, found %d", numPins, pins)
	}
	h, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("bookshelf: %w", err)
	}
	if h.NumNets() != numNets {
		return nil, fmt.Errorf("bookshelf: .net declares %d nets, found %d", numNets, h.NumNets())
	}
	return h, nil
}

// readAreas parses an .are file into name -> areas. All lines must list the
// same number of areas (one per resource).
func readAreas(r io.Reader) (map[string][]int64, int, error) {
	sc := newScanner(r)
	areas := map[string][]int64{}
	numResources := 0
	for {
		line, ok := sc.next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, 0, sc.errf("malformed area line %q", line)
		}
		ws := make([]int64, 0, len(fields)-1)
		for _, f := range fields[1:] {
			w, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, 0, sc.errf("bad area %q: %v", f, err)
			}
			ws = append(ws, w)
		}
		if numResources == 0 {
			numResources = len(ws)
		} else if len(ws) != numResources {
			return nil, 0, sc.errf("module %s has %d areas, expected %d", fields[0], len(ws), numResources)
		}
		if _, dup := areas[fields[0]]; dup {
			return nil, 0, sc.errf("duplicate area line for module %s", fields[0])
		}
		areas[fields[0]] = ws
	}
	if numResources == 0 {
		numResources = 1
	}
	return areas, numResources, nil
}

// scanner is a line scanner with comment stripping and line tracking.
type scanner struct {
	sc   *bufio.Scanner
	line int
}

func newScanner(r io.Reader) *scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &scanner{sc: sc}
}

// next returns the next non-blank, comment-stripped line.
func (s *scanner) next() (string, bool) {
	for s.sc.Scan() {
		s.line++
		line := s.sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			return line, true
		}
	}
	return "", false
}

func (s *scanner) errf(format string, args ...any) error {
	return fmt.Errorf("bookshelf: line %d: %s", s.line, fmt.Sprintf(format, args...))
}
