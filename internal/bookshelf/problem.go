package bookshelf

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/partition"
)

// WriteBlk writes the partition/capacity file: the number of parts and
// resources, then one line per part with explicit min/max bounds per
// resource. Absolute capacities and relative tolerances both reduce to these
// bounds; a `uniform` shorthand line is accepted on read for the common
// evenly-balanced case.
//
//	parts 2
//	resources 1
//	0 4900 5100
//	1 4900 5100
func WriteBlk(w io.Writer, b partition.Balance) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "parts %d\n", b.NumParts())
	fmt.Fprintf(bw, "resources %d\n", b.NumResources())
	for p := 0; p < b.NumParts(); p++ {
		fmt.Fprintf(bw, "%d", p)
		for r := 0; r < b.NumResources(); r++ {
			fmt.Fprintf(bw, " %d %d", b.Min[p][r], b.Max[p][r])
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadBlk parses a .blk file.
func ReadBlk(r io.Reader) (partition.Balance, int, error) {
	sc := newScanner(r)
	var bal partition.Balance
	parts, resources := 0, 0
	readHeader := func(key string) (int, error) {
		line, ok := sc.next()
		if !ok {
			return 0, sc.errf("missing %q header", key)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || fields[0] != key {
			return 0, sc.errf("expected %q header, got %q", key, line)
		}
		return strconv.Atoi(fields[1])
	}
	var err error
	if parts, err = readHeader("parts"); err != nil {
		return bal, 0, err
	}
	if resources, err = readHeader("resources"); err != nil {
		return bal, 0, err
	}
	if parts < 2 || parts > partition.MaxParts || resources < 1 {
		return bal, 0, sc.errf("invalid dimensions parts=%d resources=%d", parts, resources)
	}
	bal.Min = make([][]int64, parts)
	bal.Max = make([][]int64, parts)
	for p := range bal.Min {
		bal.Min[p] = make([]int64, resources)
		bal.Max[p] = make([]int64, resources)
	}
	seen := make([]bool, parts)
	for i := 0; i < parts; i++ {
		line, ok := sc.next()
		if !ok {
			return bal, 0, sc.errf("missing bounds for %d parts", parts-i)
		}
		fields := strings.Fields(line)
		if len(fields) != 1+2*resources {
			return bal, 0, sc.errf("part line %q needs %d fields", line, 1+2*resources)
		}
		p, err := strconv.Atoi(fields[0])
		if err != nil || p < 0 || p >= parts {
			return bal, 0, sc.errf("bad part index %q", fields[0])
		}
		if seen[p] {
			return bal, 0, sc.errf("duplicate part %d", p)
		}
		seen[p] = true
		for r := 0; r < resources; r++ {
			mn, err1 := strconv.ParseInt(fields[1+2*r], 10, 64)
			mx, err2 := strconv.ParseInt(fields[2+2*r], 10, 64)
			if err1 != nil || err2 != nil {
				return bal, 0, sc.errf("bad bounds on line %q", line)
			}
			bal.Min[p][r], bal.Max[p][r] = mn, mx
		}
	}
	return bal, parts, nil
}

// WriteFix writes the fixed/region file: one line per constrained vertex
// with its module name followed by the allowed partitions. A single
// partition fixes the terminal; several express the paper's OR-region
// semantics (the partitioner may pick any listed part). Free vertices are
// omitted.
//
//	p1 0
//	p7 0 1   # propagated terminal allowed in either left-side quadrant
func WriteFix(w io.Writer, p *partition.Problem) error {
	names, _, err := moduleNames(p.H)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for v := 0; v < p.H.NumVertices(); v++ {
		if p.IsFree(v) {
			continue
		}
		fmt.Fprintf(bw, "%s", names[v])
		for _, part := range p.MaskOf(v).Parts(p.K) {
			fmt.Fprintf(bw, " %d", part)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadFix parses a .fix file into per-vertex masks for a k-way problem over
// h's module names. Vertices not mentioned stay free.
func ReadFix(r io.Reader, names map[string]int, numVerts, k int) ([]partition.Mask, error) {
	sc := newScanner(r)
	masks := make([]partition.Mask, numVerts)
	all := partition.AllParts(k)
	for i := range masks {
		masks[i] = all
	}
	for {
		line, ok := sc.next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, sc.errf("malformed fix line %q", line)
		}
		v, ok := names[fields[0]]
		if !ok {
			return nil, sc.errf("fix references unknown module %q", fields[0])
		}
		var m partition.Mask
		for _, f := range fields[1:] {
			part, err := strconv.Atoi(f)
			if err != nil || part < 0 || part >= k {
				return nil, sc.errf("bad partition %q for module %s (k=%d)", f, fields[0], k)
			}
			m = m.With(part)
		}
		masks[v] = m
	}
	return masks, nil
}

// WriteSolution writes an assignment as "name part" lines.
func WriteSolution(w io.Writer, p *partition.Problem, a partition.Assignment) error {
	names, _, err := moduleNames(p.H)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for v, part := range a {
		fmt.Fprintf(bw, "%s %d\n", names[v], part)
	}
	return bw.Flush()
}

// ReadSolution parses a solution file for the problem's module names.
func ReadSolution(r io.Reader, p *partition.Problem) (partition.Assignment, error) {
	names, _, err := moduleNames(p.H)
	if err != nil {
		return nil, err
	}
	index := make(map[string]int, len(names))
	for v, n := range names {
		index[n] = v
	}
	sc := newScanner(r)
	a := make(partition.Assignment, p.H.NumVertices())
	seen := make([]bool, len(a))
	for {
		line, ok := sc.next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, sc.errf("malformed solution line %q", line)
		}
		v, ok := index[fields[0]]
		if !ok {
			return nil, sc.errf("solution references unknown module %q", fields[0])
		}
		part, err := strconv.Atoi(fields[1])
		if err != nil || part < 0 || part >= p.K {
			return nil, sc.errf("bad part %q", fields[1])
		}
		a[v] = int8(part)
		seen[v] = true
	}
	for v, s := range seen {
		if !s {
			return nil, fmt.Errorf("bookshelf: solution missing module %s", names[v])
		}
	}
	return a, nil
}

// WriteProblem writes a complete fixed-terminals benchmark bundle into dir:
// base.net, base.are, base.blk and base.fix.
func WriteProblem(dir, base string, p *partition.Problem) error {
	if err := p.Validate(); err != nil {
		return err
	}
	write := func(ext string, fn func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, base+ext))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fn(f); err != nil {
			return fmt.Errorf("bookshelf: writing %s%s: %w", base, ext, err)
		}
		return f.Close()
	}
	netPath := filepath.Join(dir, base+".net")
	nf, err := os.Create(netPath)
	if err != nil {
		return err
	}
	defer nf.Close()
	af, err := os.Create(filepath.Join(dir, base+".are"))
	if err != nil {
		return err
	}
	defer af.Close()
	if err := WriteNetAre(nf, af, p.H); err != nil {
		return err
	}
	if err := nf.Close(); err != nil {
		return err
	}
	if err := af.Close(); err != nil {
		return err
	}
	if err := write(".blk", func(w io.Writer) error { return WriteBlk(w, p.Balance) }); err != nil {
		return err
	}
	return write(".fix", func(w io.Writer) error { return WriteFix(w, p) })
}

// ReadProblem reads a benchmark bundle written by WriteProblem. A missing
// .fix file yields a free instance.
func ReadProblem(dir, base string) (*partition.Problem, error) {
	nf, err := os.Open(filepath.Join(dir, base+".net"))
	if err != nil {
		return nil, err
	}
	defer nf.Close()
	af, err := os.Open(filepath.Join(dir, base+".are"))
	if err != nil {
		return nil, err
	}
	defer af.Close()
	h, err := ReadNetAre(nf, af)
	if err != nil {
		return nil, err
	}
	bf, err := os.Open(filepath.Join(dir, base+".blk"))
	if err != nil {
		return nil, err
	}
	defer bf.Close()
	bal, k, err := ReadBlk(bf)
	if err != nil {
		return nil, err
	}
	p := &partition.Problem{H: h, K: k, Balance: bal}
	ff, err := os.Open(filepath.Join(dir, base+".fix"))
	if err == nil {
		defer ff.Close()
		names, _, nerr := moduleNames(h)
		if nerr != nil {
			return nil, nerr
		}
		index := make(map[string]int, len(names))
		for v, n := range names {
			index[n] = v
		}
		masks, ferr := ReadFix(ff, index, h.NumVertices(), k)
		if ferr != nil {
			return nil, ferr
		}
		p.Allowed = masks
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("bookshelf: read problem invalid: %w", err)
	}
	return p, nil
}
