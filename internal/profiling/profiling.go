// Package profiling wires the opt-in -cpuprofile/-memprofile flags of the
// command-line tools to runtime/pprof. The multilevel engine labels its
// phases with pprof goroutine labels (phase=coarsen|init|refine_parallel|refine), so a CPU
// profile written here can be narrowed to one phase with
// `go tool pprof -tagfocus phase=refine cpu.pprof`.
package profiling

import (
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
)

// AttachPprof registers the net/http/pprof handlers on mux under
// /debug/pprof/, mirroring what importing net/http/pprof does to
// http.DefaultServeMux without forcing the server to expose the default mux.
// The profiles carry the multilevel phase labels, so
// `go tool pprof -tagfocus phase=refine http://host/debug/pprof/profile`
// isolates refinement work on a live hpartd.
func AttachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
}

// Start enables the requested pprof outputs. An empty path skips that
// profile. The returned stop function flushes them and must run before
// os.Exit; it is non-nil even when both paths are empty.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Printf("wrote %s\n", cpuPath)
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // capture live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			fmt.Printf("wrote %s\n", memPath)
		}
	}, nil
}
