// Package rent provides Rent's-rule analytics: expected terminal counts for
// blocks of a given size, the block-size thresholds of the paper's Table I,
// and an empirical Rent-parameter fit for generated netlists and
// placer-derived blocks.
//
// Rent's rule states that a block of C cells in a layout with Rent parameter
// p exposes on average T = k * C^p external (propagated) terminals, where k
// is the average number of pins per cell (about 3.5 for the designs the
// paper considers). In a top-down placement flow those terminals become the
// fixed vertices of the block's partitioning instance.
package rent

import (
	"fmt"
	"math"
)

// DefaultPinsPerCell is the paper's assumed average pins per cell, k = 3.5.
const DefaultPinsPerCell = 3.5

// ExpectedTerminals returns T = k * C^p, the expected number of propagated
// terminals for a block of c cells.
func ExpectedTerminals(c float64, p, k float64) float64 {
	return k * math.Pow(c, p)
}

// FixedFraction returns the expected fraction of fixed vertices in the
// partitioning instance induced by a block of c cells: T / (C + T).
func FixedFraction(c float64, p, k float64) float64 {
	t := ExpectedTerminals(c, p, k)
	return t / (c + t)
}

// BlockSizeThreshold returns the block size below which the expected number
// of fixed vertices exceeds fraction pct (e.g. 0.05, 0.10, 0.20) of the
// total vertices in the instance — the quantity tabulated in the paper's
// Table I. Solving T/(C+T) = pct with T = k*C^p gives
//
//	C = (k * (1-pct) / pct)^(1/(1-p)).
//
// It returns an error for degenerate inputs (p >= 1 makes the fraction
// independent of or increasing with block size).
func BlockSizeThreshold(p, k, pct float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("rent: Rent exponent p=%v outside (0,1)", p)
	}
	if pct <= 0 || pct >= 1 {
		return 0, fmt.Errorf("rent: fraction pct=%v outside (0,1)", pct)
	}
	if k <= 0 {
		return 0, fmt.Errorf("rent: pins per cell k=%v must be positive", k)
	}
	return math.Pow(k*(1-pct)/pct, 1/(1-p)), nil
}

// Sample is one (block size, external terminal count) observation, e.g.
// measured on a block of a top-down placement hierarchy.
type Sample struct {
	Cells     int
	Terminals int
}

// Fit estimates (k, p) from samples by least squares on
// log T = log k + p log C. Samples with non-positive cells or terminals are
// ignored; it returns an error when fewer than two usable, distinct block
// sizes remain.
func Fit(samples []Sample) (k, p float64, err error) {
	var n float64
	var sx, sy, sxx, sxy float64
	sizes := map[int]bool{}
	for _, s := range samples {
		if s.Cells <= 0 || s.Terminals <= 0 {
			continue
		}
		x := math.Log(float64(s.Cells))
		y := math.Log(float64(s.Terminals))
		n++
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		sizes[s.Cells] = true
	}
	if n < 2 || len(sizes) < 2 {
		return 0, 0, fmt.Errorf("rent: need samples at >= 2 distinct block sizes, have %d", len(sizes))
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("rent: degenerate samples")
	}
	p = (n*sxy - sx*sy) / den
	k = math.Exp((sy - p*sx) / n)
	return k, p, nil
}

// TableIRow is one row of the paper's Table I: for a Rent parameter p, the
// block sizes below which the expected fixed-vertex fraction exceeds 5%,
// 10%, and 20%.
type TableIRow struct {
	P          float64
	Cells5Pct  float64
	Cells10Pct float64
	Cells20Pct float64
}

// TableI computes Table I rows for the given Rent parameters with k pins per
// cell (use DefaultPinsPerCell for the paper's setting).
func TableI(ps []float64, k float64) ([]TableIRow, error) {
	rows := make([]TableIRow, 0, len(ps))
	for _, p := range ps {
		c5, err := BlockSizeThreshold(p, k, 0.05)
		if err != nil {
			return nil, err
		}
		c10, err := BlockSizeThreshold(p, k, 0.10)
		if err != nil {
			return nil, err
		}
		c20, err := BlockSizeThreshold(p, k, 0.20)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableIRow{P: p, Cells5Pct: c5, Cells10Pct: c10, Cells20Pct: c20})
	}
	return rows, nil
}
