package rent_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rent"
)

func TestExpectedTerminals(t *testing.T) {
	// T = 3.5 * 1000^0.68
	got := rent.ExpectedTerminals(1000, 0.68, 3.5)
	want := 3.5 * math.Pow(1000, 0.68)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ExpectedTerminals = %v, want %v", got, want)
	}
}

func TestFixedFraction(t *testing.T) {
	// At the threshold size the fraction equals pct by construction.
	c, err := rent.BlockSizeThreshold(0.68, 3.5, 0.20)
	if err != nil {
		t.Fatalf("BlockSizeThreshold: %v", err)
	}
	if f := rent.FixedFraction(c, 0.68, 3.5); math.Abs(f-0.20) > 1e-9 {
		t.Errorf("FixedFraction at threshold = %v, want 0.20", f)
	}
	// Smaller blocks exceed the fraction.
	if f := rent.FixedFraction(c/10, 0.68, 3.5); f <= 0.20 {
		t.Errorf("fraction below threshold size = %v, want > 0.20", f)
	}
}

func TestBlockSizeThresholdValues(t *testing.T) {
	// Hand-computed: C = (k(1-pct)/pct)^(1/(1-p)).
	c, err := rent.BlockSizeThreshold(0.68, 3.5, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(3.5*0.8/0.2, 1/0.32)
	if math.Abs(c-want)/want > 1e-12 {
		t.Errorf("threshold = %v, want %v", c, want)
	}
	// The paper's narrative: blocks of thousands of cells already exceed 20%
	// fixed at p=0.68.
	if c < 1000 || c > 20000 {
		t.Errorf("20%% threshold at p=0.68 = %v, expected in the thousands", c)
	}
}

func TestBlockSizeThresholdErrors(t *testing.T) {
	cases := []struct{ p, k, pct float64 }{
		{1.0, 3.5, 0.1},
		{0, 3.5, 0.1},
		{0.68, 0, 0.1},
		{0.68, 3.5, 0},
		{0.68, 3.5, 1},
	}
	for _, c := range cases {
		if _, err := rent.BlockSizeThreshold(c.p, c.k, c.pct); err == nil {
			t.Errorf("want error for p=%v k=%v pct=%v", c.p, c.k, c.pct)
		}
	}
}

func TestTableI(t *testing.T) {
	rows, err := rent.TableI([]float64{0.50, 0.60, 0.68, 0.75}, rent.DefaultPinsPerCell)
	if err != nil {
		t.Fatalf("TableI: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		// Within a row, thresholds shrink as the required fraction grows.
		if !(r.Cells5Pct > r.Cells10Pct && r.Cells10Pct > r.Cells20Pct) {
			t.Errorf("row %d not decreasing: %+v", i, r)
		}
		// Higher Rent parameter -> larger thresholds (more terminals).
		if i > 0 && rows[i].Cells10Pct <= rows[i-1].Cells10Pct {
			t.Errorf("thresholds not increasing in p: %v <= %v", rows[i].Cells10Pct, rows[i-1].Cells10Pct)
		}
	}
}

func TestFitRecoversParameters(t *testing.T) {
	// Exact power-law samples.
	var samples []rent.Sample
	for _, c := range []int{16, 64, 256, 1024, 4096} {
		tm := rent.ExpectedTerminals(float64(c), 0.68, 3.5)
		samples = append(samples, rent.Sample{Cells: c, Terminals: int(math.Round(tm))})
	}
	k, p, err := rent.Fit(samples)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if math.Abs(p-0.68) > 0.02 {
		t.Errorf("fitted p = %v, want ~0.68", p)
	}
	if math.Abs(k-3.5) > 0.5 {
		t.Errorf("fitted k = %v, want ~3.5", k)
	}
}

func TestFitErrors(t *testing.T) {
	if _, _, err := rent.Fit(nil); err == nil {
		t.Error("want error for no samples")
	}
	same := []rent.Sample{{Cells: 8, Terminals: 4}, {Cells: 8, Terminals: 5}}
	if _, _, err := rent.Fit(same); err == nil {
		t.Error("want error for single distinct size")
	}
	junk := []rent.Sample{{Cells: -1, Terminals: 4}, {Cells: 8, Terminals: 0}}
	if _, _, err := rent.Fit(junk); err == nil {
		t.Error("want error when all samples unusable")
	}
}

func TestThresholdPropertyMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		p := 0.4 + float64(seed%50)/100 // 0.40..0.89
		c1, err1 := rent.BlockSizeThreshold(p, 3.5, 0.05)
		c2, err2 := rent.BlockSizeThreshold(p, 3.5, 0.10)
		if err1 != nil || err2 != nil {
			return false
		}
		return c1 > c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFitWithNoise(t *testing.T) {
	// Noisy power-law samples still fit within a loose band.
	var samples []rent.Sample
	for i, c := range []int{32, 64, 128, 256, 512, 1024, 2048} {
		tm := rent.ExpectedTerminals(float64(c), 0.65, 3.5)
		noise := 1.0 + 0.1*float64(i%3-1) // ±10%
		samples = append(samples, rent.Sample{Cells: c, Terminals: int(tm * noise)})
	}
	_, p, err := rent.Fit(samples)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if p < 0.55 || p > 0.75 {
		t.Errorf("noisy fit p = %v, want near 0.65", p)
	}
}
