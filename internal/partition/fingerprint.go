package partition

import "repro/internal/hypergraph"

// Fingerprint returns a stable structural hash of the full partitioning
// instance: the hypergraph fingerprint combined with k, the per-part balance
// bounds and every allowed-parts mask. Two problems with equal fingerprints
// pose the same instance to any solver in this repository, which is what
// lets the hpartd hierarchy cache key coarsening work on it. Like
// hypergraph.Fingerprint it is a pure function of the data (stable across
// processes); it does not read the movable-count cache, so it is safe to
// call concurrently with solvers sharing the Problem.
func (p *Problem) Fingerprint() uint64 {
	f := hypergraph.NewFingerprint().
		Word(p.H.Fingerprint()).
		Word(uint64(p.K)).
		Word(uint64(p.Balance.NumParts())).
		Word(uint64(p.Balance.NumResources()))
	for q := range p.Balance.Max {
		f = f.Words(p.Balance.Min[q]).Words(p.Balance.Max[q])
	}
	if p.Allowed != nil {
		for _, m := range p.Allowed {
			f = f.Word(uint64(m))
		}
	}
	return f.Sum()
}
