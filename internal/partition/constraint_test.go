package partition_test

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/partition"
)

func TestConstrainednessFreeInstance(t *testing.T) {
	h := grid(10)
	p := partition.NewBipartition(h, 0.1)
	rep := partition.Constrainedness(p)
	if rep.FixedVertexFraction != 0 || rep.ConstrainedNetFraction != 0 ||
		rep.ConflictNetFraction != 0 || rep.TouchedFreeFraction != 0 || rep.ForcedCut != 0 {
		t.Errorf("free instance not all-zero: %+v", rep)
	}
}

func TestConstrainednessValues(t *testing.T) {
	// grid(2): 4 vertices 0,1 (top), 2,3 (bottom); nets: (0,1), (2,3),
	// (0,2), (1,3) — 4 unit nets.
	h := grid(2)
	p := partition.NewBipartition(h, 0.5)
	p.Fix(0, 0)
	p.Fix(3, 1)
	rep := partition.Constrainedness(p)
	if rep.FixedVertexFraction != 0.5 {
		t.Errorf("FixedVertexFraction = %v", rep.FixedVertexFraction)
	}
	// All 4 nets touch vertex 0 or 3.
	if rep.ConstrainedNetFraction != 1.0 {
		t.Errorf("ConstrainedNetFraction = %v", rep.ConstrainedNetFraction)
	}
	// No net contains both fixed vertices, so nothing is forced cut.
	if rep.ConflictNetFraction != 0 || rep.ForcedCut != 0 {
		t.Errorf("conflict: %+v", rep)
	}
	// Free vertices 1 and 2 both share nets with terminals.
	if rep.TouchedFreeFraction != 1.0 {
		t.Errorf("TouchedFreeFraction = %v", rep.TouchedFreeFraction)
	}
	// Now force a conflict: net (0,1) with 1 fixed opposite 0.
	p.Fix(1, 1)
	rep = partition.Constrainedness(p)
	if rep.ForcedCut != 1 {
		t.Errorf("ForcedCut = %d, want 1 (net {0,1})", rep.ForcedCut)
	}
}

func TestConstrainednessForcedCutIsLowerBound(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 51))
		h := grid(4 + int(seed%6))
		p := partition.NewBipartition(h, 0.5)
		for v := 0; v < h.NumVertices(); v++ {
			if rng.IntN(3) == 0 {
				p.Fix(v, rng.IntN(2))
			}
		}
		rep := partition.Constrainedness(p)
		// Any assignment consistent with the fixture has cut >= ForcedCut.
		a := make(partition.Assignment, h.NumVertices())
		for v := range a {
			if part, ok := p.FixedPart(v); ok {
				a[v] = int8(part)
			} else {
				a[v] = int8(rng.IntN(2))
			}
		}
		return partition.Cut(h, a) >= rep.ForcedCut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestConstrainednessInvariantUnderTerminalClustering is the property the
// paper's conclusion calls for: the net-based measures must not change when
// all terminals of a part are merged into one, because that reduction
// preserves instance difficulty.
func TestConstrainednessInvariantUnderTerminalClustering(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 52))
		h := grid(5 + int(seed%8))
		p := partition.NewBipartition(h, 0.5)
		any := false
		for v := 0; v < h.NumVertices(); v++ {
			if rng.IntN(3) == 0 {
				p.Fix(v, rng.IntN(2))
				any = true
			}
		}
		if !any {
			return true
		}
		before := partition.Constrainedness(p)
		red, err := partition.ClusterTerminals(p)
		if err != nil {
			return false
		}
		after := partition.Constrainedness(red.Problem)
		const eps = 1e-12
		if math.Abs(before.ConstrainedNetFraction-after.ConstrainedNetFraction) > eps {
			return false
		}
		if math.Abs(before.ConflictNetFraction-after.ConflictNetFraction) > eps {
			return false
		}
		if math.Abs(before.TouchedFreeFraction-after.TouchedFreeFraction) > eps {
			return false
		}
		return before.ForcedCut == after.ForcedCut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConstrainednessEmpty(t *testing.T) {
	var hb = grid(2)
	p := &partition.Problem{H: hb, K: 2, Balance: partition.NewBisection(hb, 0.5)}
	_ = partition.Constrainedness(p) // no panic on minimal problem
}
