package partition

import (
	"fmt"

	"repro/internal/hypergraph"
)

// Assignment maps each vertex to its part (0..k-1). Part indices fit in an
// int8 because MaxParts is 64.
type Assignment []int8

// NewAssignment returns an all-zero assignment for n vertices.
func NewAssignment(n int) Assignment { return make(Assignment, n) }

// Clone returns a copy of a.
func (a Assignment) Clone() Assignment { return append(Assignment(nil), a...) }

// CopyFrom overwrites a with src (lengths must match).
func (a Assignment) CopyFrom(src Assignment) {
	if len(a) != len(src) {
		panic(fmt.Sprintf("partition: CopyFrom length mismatch %d != %d", len(a), len(src)))
	}
	copy(a, src)
}

// PartWeights returns the total primary-resource-first weight matrix
// w[part][resource] for assignment a over h.
func PartWeights(h *hypergraph.Hypergraph, a Assignment, k int) [][]int64 {
	nr := h.NumResources()
	w := make([][]int64, k)
	for p := range w {
		w[p] = make([]int64, nr)
	}
	for v := 0; v < h.NumVertices(); v++ {
		for r := 0; r < nr; r++ {
			w[a[v]][r] += h.WeightIn(v, r)
		}
	}
	return w
}

// Cut returns the total weight of nets spanning more than one part
// (the min-cut objective of the paper).
func Cut(h *hypergraph.Hypergraph, a Assignment) int64 {
	var cut int64
	for e := 0; e < h.NumNets(); e++ {
		pins := h.Pins(e)
		first := a[pins[0]]
		for _, v := range pins[1:] {
			if a[v] != first {
				cut += h.NetWeight(e)
				break
			}
		}
	}
	return cut
}

// CutNets returns the number of nets spanning more than one part, ignoring
// net weights.
func CutNets(h *hypergraph.Hypergraph, a Assignment) int {
	n := 0
	for e := 0; e < h.NumNets(); e++ {
		pins := h.Pins(e)
		first := a[pins[0]]
		for _, v := range pins[1:] {
			if a[v] != first {
				n++
				break
			}
		}
	}
	return n
}

// KMinus1 returns the (lambda-1) objective: for each net, (number of parts
// it spans - 1) times its weight. For bipartitioning this equals Cut.
func KMinus1(h *hypergraph.Hypergraph, a Assignment) int64 {
	var total int64
	var seen Mask
	for e := 0; e < h.NumNets(); e++ {
		seen = 0
		for _, v := range h.Pins(e) {
			seen |= Single(int(a[v]))
		}
		total += int64(seen.Count()-1) * h.NetWeight(e)
	}
	return total
}

// SOED returns the sum-of-external-degrees objective: for each cut net, the
// number of parts it spans times its weight (uncut nets contribute nothing).
// SOED = KMinus1 + Cut for any assignment.
func SOED(h *hypergraph.Hypergraph, a Assignment) int64 {
	var total int64
	var seen Mask
	for e := 0; e < h.NumNets(); e++ {
		seen = 0
		for _, v := range h.Pins(e) {
			seen |= Single(int(a[v]))
		}
		if n := seen.Count(); n > 1 {
			total += int64(n) * h.NetWeight(e)
		}
	}
	return total
}

// NetSpan returns, for net e under assignment a, the set of parts the net
// touches.
func NetSpan(h *hypergraph.Hypergraph, a Assignment, e int) Mask {
	var seen Mask
	for _, v := range h.Pins(e) {
		seen |= Single(int(a[v]))
	}
	return seen
}
