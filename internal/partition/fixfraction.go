package partition

import (
	"math/rand/v2"
	"sort"
)

// ApplyFixFraction fixes frac of the problem's vertices deterministically:
// a seeded shuffle picks the sample from the vertices not already fixed to a
// single part, and parts are assigned round-robin over the sample in vertex
// order so the fixed set stays balanced — the paper's "rand" fixed-terminals
// regime. The target count is frac * NumVertices (rounded down), clamped to
// the available free vertices; vertices already fixed are never re-fixed,
// but OR-region masks may be narrowed to a single part like any free vertex.
//
// The same (problem, frac, seed) triple always fixes the same vertices to
// the same parts, so a CLI run and a server request posing the same study
// see the same instance. Both the hpart -fix-fraction flag and the hpartd
// fix_fraction request field resolve to this function.
func ApplyFixFraction(p *Problem, frac float64, seed uint64) {
	if frac <= 0 {
		return
	}
	nv := p.H.NumVertices()
	rng := rand.New(rand.NewPCG(seed, 0xf1f1))
	free := make([]int, 0, nv)
	for v := 0; v < nv; v++ {
		if _, fixed := p.FixedPart(v); !fixed {
			free = append(free, v)
		}
	}
	rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	n := int(frac * float64(nv))
	if n > len(free) {
		n = len(free)
	}
	// Sort the chosen sample so the masks applied are independent of the
	// shuffle's iteration details beyond membership.
	chosen := append([]int(nil), free[:n]...)
	sort.Ints(chosen)
	for i, v := range chosen {
		p.Fix(v, i%p.K)
	}
}
