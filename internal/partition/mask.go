// Package partition defines partitioning problems over hypergraphs: k-way
// assignments, balance constraints (possibly over multiple resources), fixed
// and OR-region vertex constraints, and cut objectives.
//
// The paper's central object is a partitioning instance with *fixed
// terminals*: a hypergraph in which some vertices are pre-assigned to
// partitions (or, in the proposed benchmark format, to a set of allowed
// partitions, interpreted as an "or"). Problem captures exactly that.
package partition

import "math/bits"

// MaxParts is the largest supported number of parts, bounded by the Mask
// bitset width.
const MaxParts = 64

// Mask is a set of allowed parts for a vertex, one bit per part. A vertex
// with exactly one allowed part is fixed; a vertex allowed in every part is
// free; anything in between is an OR-region constraint in the sense of the
// paper's proposed benchmark format (e.g. a propagated terminal fixed in
// either left-side quadrant of a quadrisection).
type Mask uint64

// AllParts returns the mask allowing every part in [0, k).
func AllParts(k int) Mask {
	if k >= 64 {
		return ^Mask(0)
	}
	return Mask(1)<<k - 1
}

// Single returns the mask allowing only part p.
func Single(p int) Mask { return Mask(1) << p }

// Contains reports whether part p is allowed.
func (m Mask) Contains(p int) bool { return m&(Mask(1)<<p) != 0 }

// Count returns the number of allowed parts.
func (m Mask) Count() int { return bits.OnesCount64(uint64(m)) }

// OnlyPart returns the single allowed part and true when the mask fixes the
// vertex to exactly one part, and (-1, false) otherwise.
func (m Mask) OnlyPart() (int, bool) {
	if m.Count() != 1 {
		return -1, false
	}
	return bits.TrailingZeros64(uint64(m)), true
}

// With returns m with part p added.
func (m Mask) With(p int) Mask { return m | Mask(1)<<p }

// Intersect returns the parts allowed by both masks. Merging two vertices
// during clustering intersects their masks; an empty result means the merge
// is illegal (vertices fixed in different parts).
func (m Mask) Intersect(o Mask) Mask { return m & o }

// Parts returns the allowed parts in increasing order, considering only
// parts below k.
func (m Mask) Parts(k int) []int {
	out := make([]int, 0, m.Count())
	for p := 0; p < k && p < MaxParts; p++ {
		if m.Contains(p) {
			out = append(out, p)
		}
	}
	return out
}
