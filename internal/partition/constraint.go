package partition

// ConstraintReport quantifies how constrained a fixed-terminals instance is.
// The paper's conclusion asks for a measure that is *invariant* in the right
// way: an instance with any number of fixed terminals is equivalent to one
// with a single merged terminal per part (ClusterTerminals), so counting
// fixed vertices cannot capture constraint strength. The report therefore
// offers both the naive count and measures defined over nets, which survive
// the terminal-clustering reduction unchanged (see the property test).
type ConstraintReport struct {
	// FixedVertexFraction is the naive measure: fixed vertices over all
	// vertices. NOT invariant under terminal clustering.
	FixedVertexFraction float64
	// ConstrainedNetFraction is the net-weight fraction of nets with at
	// least one fixed pin, taken over the nets that can influence the
	// optimization at all (nets whose pins are all fixed in a single part
	// are constant and excluded). Invariant under terminal clustering.
	ConstrainedNetFraction float64
	// ConflictNetFraction is the net-weight fraction of nets whose fixed
	// pins span two or more parts; such nets are cut in every feasible
	// solution. Invariant under terminal clustering.
	ConflictNetFraction float64
	// TouchedFreeFraction is the fraction of free vertices sharing a net
	// with a fixed terminal — the vertices whose FM gains the terminals
	// bias directly. Invariant under terminal clustering (clustering only
	// merges terminals).
	TouchedFreeFraction float64
	// ForcedCut is the total weight of conflict nets: a lower bound on the
	// cut of any feasible solution.
	ForcedCut int64
}

// Constrainedness computes the constraint-strength report for p.
func Constrainedness(p *Problem) ConstraintReport {
	h := p.H
	nv := h.NumVertices()
	var rep ConstraintReport
	if nv == 0 {
		return rep
	}
	fixedPart := make([]int8, nv)
	nFixed := 0
	for v := 0; v < nv; v++ {
		fixedPart[v] = -1
		if part, ok := p.FixedPart(v); ok {
			fixedPart[v] = int8(part)
			nFixed++
		}
	}
	rep.FixedVertexFraction = float64(nFixed) / float64(nv)

	var totalNetW, constrainedW, conflictW int64
	touched := make([]bool, nv)
	for e := 0; e < h.NumNets(); e++ {
		w := h.NetWeight(e)
		var span Mask
		hasFixed, hasFree := false, false
		for _, v := range h.Pins(e) {
			if fp := fixedPart[v]; fp >= 0 {
				hasFixed = true
				span |= Single(int(fp))
			} else {
				hasFree = true
			}
		}
		if hasFixed && !hasFree && span.Count() == 1 {
			continue // constant net: cut status decided, no influence
		}
		totalNetW += w
		if !hasFixed {
			continue
		}
		constrainedW += w
		for _, v := range h.Pins(e) {
			if fixedPart[v] < 0 {
				touched[v] = true
			}
		}
		if span.Count() >= 2 {
			conflictW += w
		}
	}
	if totalNetW > 0 {
		rep.ConstrainedNetFraction = float64(constrainedW) / float64(totalNetW)
		rep.ConflictNetFraction = float64(conflictW) / float64(totalNetW)
	}
	rep.ForcedCut = conflictW

	nFree := nv - nFixed
	if nFree > 0 {
		nTouched := 0
		for v := 0; v < nv; v++ {
			if touched[v] {
				nTouched++
			}
		}
		rep.TouchedFreeFraction = float64(nTouched) / float64(nFree)
	}
	return rep
}
