package partition_test

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// TestSOEDIdentity enforces the identity the SOED doc comment promises,
// SOED = KMinus1 + Cut, on randomized hypergraphs and assignments: a cut
// net spanning λ parts contributes λ·w to SOED, (λ-1)·w to KMinus1 and w to
// Cut, while an uncut net contributes nothing to any of the three.
func TestSOEDIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x50ed))
		nv := 4 + rng.IntN(60)
		b := hypergraph.NewBuilder(1)
		for v := 0; v < nv; v++ {
			b.AddVertex(1)
		}
		ne := 1 + rng.IntN(3*nv)
		for e := 0; e < ne; e++ {
			sz := 2 + rng.IntN(6)
			if sz > nv {
				sz = nv
			}
			b.AddWeightedNet(int64(1+rng.IntN(5)), rng.Perm(nv)[:sz]...)
		}
		h, err := b.Build()
		if err != nil || h.NumNets() == 0 {
			return true
		}
		k := 2 + rng.IntN(7)
		a := partition.NewAssignment(nv)
		for v := range a {
			a[v] = int8(rng.IntN(k))
		}
		cut := partition.Cut(h, a)
		km1 := partition.KMinus1(h, a)
		soed := partition.SOED(h, a)
		if soed != km1+cut {
			t.Logf("seed %d: SOED %d != KMinus1 %d + Cut %d", seed, soed, km1, cut)
			return false
		}
		// k = 2 collapses the hierarchy: every cut net spans exactly 2 parts.
		if k == 2 && (km1 != cut || soed != 2*cut) {
			t.Logf("seed %d: k=2 degenerate case broken: cut %d km1 %d soed %d", seed, cut, km1, soed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
