package partition_test

import (
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

func fingerprintProblem(t *testing.T) *partition.Problem {
	t.Helper()
	b := hypergraph.NewBuilder(1)
	for v := 0; v < 8; v++ {
		b.AddVertex(1)
	}
	b.AddNet(0, 1, 2)
	b.AddNet(2, 3, 4)
	b.AddNet(5, 6, 7)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return partition.NewBipartition(h, 0.1)
}

// TestProblemFingerprint: the fingerprint identifies the full instance —
// hypergraph, k, balance and constraints — so any of them moving must move
// the hash, while re-deriving the same problem must not.
func TestProblemFingerprint(t *testing.T) {
	base := fingerprintProblem(t).Fingerprint()
	if again := fingerprintProblem(t).Fingerprint(); again != base {
		t.Fatalf("identical problems disagree: %016x vs %016x", again, base)
	}

	fixed := fingerprintProblem(t)
	fixed.Fix(0, 1)
	if fixed.Fingerprint() == base {
		t.Error("fixing a vertex did not change the fingerprint")
	}

	masked := fingerprintProblem(t)
	masked.Restrict(3, partition.Mask(0).With(0).With(1))
	_ = masked.Fingerprint() // mask equal to free may or may not differ; just must not panic

	k4 := fingerprintProblem(t)
	p4 := partition.NewFree(k4.H, 4, 0.1)
	if p4.Fingerprint() == base {
		t.Error("k=4 problem collides with k=2 problem")
	}

	loose := partition.NewBipartition(fingerprintProblem(t).H, 0.4)
	if loose.Fingerprint() == base {
		t.Error("different balance tolerance collides")
	}
}
