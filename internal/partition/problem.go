package partition

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync/atomic"

	"repro/internal/hypergraph"
)

// Problem is a k-way hypergraph partitioning instance with balance and
// fixed-vertex constraints.
type Problem struct {
	H *hypergraph.Hypergraph
	K int
	// Balance gives per-part weight bounds.
	Balance Balance
	// Allowed[v] is the set of parts vertex v may occupy; nil means every
	// vertex is free. A vertex whose mask has a single bit is a fixed
	// terminal.
	Allowed []Mask

	// movableCache memoizes MovableCount as count+1 (0 = unset). It is
	// accessed atomically so concurrent solvers may share one Problem;
	// Fix/Restrict invalidate it. Callers that assign Allowed directly must
	// do so before the first MovableCount call.
	movableCache int64
}

// NewFree returns a problem over h with k parts, the given uniform balance
// tolerance, and no fixed vertices.
func NewFree(h *hypergraph.Hypergraph, k int, tol float64) *Problem {
	return &Problem{H: h, K: k, Balance: NewUniform(h, k, tol)}
}

// NewBipartition returns a 2-way problem with the paper's standard setup:
// actual vertex areas and a tol (e.g. 0.02) deviation from exact bisection.
func NewBipartition(h *hypergraph.Hypergraph, tol float64) *Problem {
	return NewFree(h, 2, tol)
}

// ensureAllowed materializes the Allowed slice (all-free) when nil.
func (p *Problem) ensureAllowed() {
	if p.Allowed == nil {
		p.Allowed = make([]Mask, p.H.NumVertices())
		all := AllParts(p.K)
		for i := range p.Allowed {
			p.Allowed[i] = all
		}
	}
}

// Fix pins vertex v to part part.
func (p *Problem) Fix(v, part int) {
	p.ensureAllowed()
	p.Allowed[v] = Single(part)
	atomic.StoreInt64(&p.movableCache, 0)
}

// Restrict limits vertex v to the parts in mask (OR-region semantics).
func (p *Problem) Restrict(v int, mask Mask) {
	p.ensureAllowed()
	p.Allowed[v] = mask
	atomic.StoreInt64(&p.movableCache, 0)
}

// MaskOf returns the allowed-parts mask for vertex v.
func (p *Problem) MaskOf(v int) Mask {
	if p.Allowed == nil {
		return AllParts(p.K)
	}
	return p.Allowed[v]
}

// FixedPart returns the part vertex v is fixed in and true, or (-1, false)
// when v is not fixed to a single part.
func (p *Problem) FixedPart(v int) (int, bool) {
	if p.Allowed == nil {
		return -1, false
	}
	return p.Allowed[v].OnlyPart()
}

// IsFree reports whether vertex v may occupy every part.
func (p *Problem) IsFree(v int) bool {
	if p.Allowed == nil {
		return true
	}
	return p.Allowed[v]&AllParts(p.K) == AllParts(p.K)
}

// NumFixed returns the number of vertices fixed to a single part.
func (p *Problem) NumFixed() int {
	n := 0
	for v := 0; v < p.H.NumVertices(); v++ {
		if _, ok := p.FixedPart(v); ok {
			n++
		}
	}
	return n
}

// MovableCount returns the number of vertices not fixed to a single part.
// The first call scans Allowed once; the count is then cached (atomically,
// so a Problem shared by concurrent solvers stays race-free) until the next
// Fix or Restrict.
func (p *Problem) MovableCount() int {
	if c := atomic.LoadInt64(&p.movableCache); c > 0 {
		return int(c - 1)
	}
	n := 0
	for v := 0; v < p.H.NumVertices(); v++ {
		if _, fixed := p.FixedPart(v); !fixed {
			n++
		}
	}
	atomic.StoreInt64(&p.movableCache, int64(n)+1)
	return n
}

// FixedFraction returns the fraction of vertices fixed to a single part.
func (p *Problem) FixedFraction() float64 {
	nv := p.H.NumVertices()
	if nv == 0 {
		return 0
	}
	return float64(p.NumFixed()) / float64(nv)
}

// Validate checks the problem for structural errors: k in range, balance
// consistent with the hypergraph, masks non-empty and within k parts.
func (p *Problem) Validate() error {
	if p.H == nil {
		return fmt.Errorf("partition: problem has nil hypergraph")
	}
	if p.K < 2 || p.K > MaxParts {
		return fmt.Errorf("partition: k = %d outside [2, %d]", p.K, MaxParts)
	}
	if err := p.Balance.Validate(p.H); err != nil {
		return err
	}
	if p.Balance.NumParts() != p.K {
		return fmt.Errorf("partition: balance covers %d parts, problem has %d", p.Balance.NumParts(), p.K)
	}
	if p.Allowed != nil {
		if len(p.Allowed) != p.H.NumVertices() {
			return fmt.Errorf("partition: %d masks for %d vertices", len(p.Allowed), p.H.NumVertices())
		}
		all := AllParts(p.K)
		for v, m := range p.Allowed {
			if m&all == 0 {
				return fmt.Errorf("partition: vertex %d has no allowed part", v)
			}
		}
	}
	return nil
}

// Feasible reports whether assignment a satisfies the problem's constraints:
// every vertex in an allowed part and every part within balance.
func (p *Problem) Feasible(a Assignment) error {
	if len(a) != p.H.NumVertices() {
		return fmt.Errorf("partition: assignment has %d entries for %d vertices", len(a), p.H.NumVertices())
	}
	for v, part := range a {
		if part < 0 || int(part) >= p.K {
			return fmt.Errorf("partition: vertex %d assigned to part %d outside [0,%d)", v, part, p.K)
		}
		if !p.MaskOf(v).Contains(int(part)) {
			return fmt.Errorf("partition: vertex %d assigned to part %d but allowed mask is %b", v, part, p.MaskOf(v))
		}
	}
	w := PartWeights(p.H, a, p.K)
	if !p.Balance.Admits(w) {
		return fmt.Errorf("partition: part weights %v violate balance", w)
	}
	return nil
}

// RandomFeasible generates a random assignment respecting fixed/region masks
// and balance upper bounds, using a randomized first-fit over a shuffled
// vertex order with a largest-first fallback. It returns an error when no
// feasible assignment is found after several attempts (e.g. a genuinely
// overconstrained instance).
func RandomFeasible(p *Problem, rng *rand.Rand) (Assignment, error) {
	nv := p.H.NumVertices()
	nr := p.H.NumResources()
	for attempt := 0; attempt < 8; attempt++ {
		a := make(Assignment, nv)
		w := make([][]int64, p.K)
		for q := range w {
			w[q] = make([]int64, nr)
		}
		order := rng.Perm(nv)
		if attempt >= 4 {
			// Largest-first is more likely to satisfy tight balance.
			sortByWeightDesc(p.H, order)
		}
		// Seat forced vertices first — they have no choice, so placing them
		// after free vertices have consumed the balance headroom would fail
		// spuriously on tightly balanced instances with many terminals.
		sort.SliceStable(order, func(i, j int) bool {
			_, fi := p.FixedPart(order[i])
			_, fj := p.FixedPart(order[j])
			return fi && !fj
		})
		ok := true
		for _, v := range order {
			mask := p.MaskOf(v)
			part := chooseFeasiblePart(p, mask, w, v, rng)
			if part < 0 {
				// Fall back to the allowed part with the most remaining
				// headroom, even if it exceeds Max; the Min check below
				// will usually still fail, forcing a retry, but on loose
				// instances this rescues borderline cases.
				ok = false
				break
			}
			a[v] = int8(part)
			for r := 0; r < nr; r++ {
				w[part][r] += p.H.WeightIn(v, r)
			}
		}
		if !ok {
			continue
		}
		if p.Balance.Admits(w) {
			return a, nil
		}
		// Upper bounds held but some part is under Min: rebalance by moving
		// free vertices from overfull to underfull parts.
		if rebalance(p, a, w, rng) && p.Balance.Admits(w) {
			return a, nil
		}
	}
	return nil, fmt.Errorf("partition: no feasible assignment found (instance may be overconstrained)")
}

// chooseFeasiblePart picks a uniformly random allowed part that keeps every
// resource under Max, or -1 when none qualifies.
func chooseFeasiblePart(p *Problem, mask Mask, w [][]int64, v int, rng *rand.Rand) int {
	nr := p.H.NumResources()
	candidates := make([]int, 0, p.K)
	for q := 0; q < p.K; q++ {
		if !mask.Contains(q) {
			continue
		}
		fits := true
		for r := 0; r < nr; r++ {
			if w[q][r]+p.H.WeightIn(v, r) > p.Balance.Max[q][r] {
				fits = false
				break
			}
		}
		if fits {
			candidates = append(candidates, q)
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[rng.IntN(len(candidates))]
}

// rebalance greedily moves free vertices from parts above Min toward parts
// below Min. Returns true when it made progress toward admitting w.
func rebalance(p *Problem, a Assignment, w [][]int64, rng *rand.Rand) bool {
	nr := p.H.NumResources()
	nv := p.H.NumVertices()
	progress := false
	for iter := 0; iter < 4; iter++ {
		under := -1
		for q := 0; q < p.K; q++ {
			for r := 0; r < nr; r++ {
				if w[q][r] < p.Balance.Min[q][r] {
					under = q
				}
			}
		}
		if under < 0 {
			return true
		}
		order := rng.Perm(nv)
		moved := false
		for _, v := range order {
			from := int(a[v])
			if from == under || !p.MaskOf(v).Contains(under) {
				continue
			}
			fits := true
			for r := 0; r < nr; r++ {
				if w[under][r]+p.H.WeightIn(v, r) > p.Balance.Max[under][r] ||
					w[from][r]-p.H.WeightIn(v, r) < 0 {
					fits = false
					break
				}
			}
			if !fits {
				continue
			}
			a[v] = int8(under)
			for r := 0; r < nr; r++ {
				w[from][r] -= p.H.WeightIn(v, r)
				w[under][r] += p.H.WeightIn(v, r)
			}
			moved, progress = true, true
			stillUnder := false
			for r := 0; r < nr; r++ {
				if w[under][r] < p.Balance.Min[under][r] {
					stillUnder = true
				}
			}
			if !stillUnder {
				break
			}
		}
		if !moved {
			return progress
		}
	}
	return progress
}

func sortByWeightDesc(h *hypergraph.Hypergraph, order []int) {
	sort.SliceStable(order, func(i, j int) bool {
		return h.Weight(order[i]) > h.Weight(order[j])
	})
}
