package partition

import (
	"fmt"
	"math"

	"repro/internal/hypergraph"
)

// Balance holds per-part, per-resource weight bounds: part p is balanced
// when Min[p][r] <= weight(p, r) <= Max[p][r] for every resource r.
//
// The paper's experiments use a 2% tolerance around exact bisection of cell
// area; the proposed benchmark format generalizes this to per-part capacities
// with absolute or relative tolerances and k > 1 resources per module.
type Balance struct {
	Min [][]int64 // [part][resource]
	Max [][]int64 // [part][resource]
}

// NumParts returns the number of parts the balance constraint covers.
func (b Balance) NumParts() int { return len(b.Max) }

// NumResources returns the number of resources per part.
func (b Balance) NumResources() int {
	if len(b.Max) == 0 {
		return 0
	}
	return len(b.Max[0])
}

// NewBisection returns a 2-way balance allowing each side to deviate from
// exact bisection of every resource by tol (a fraction of the total, e.g.
// 0.02 for the paper's 2% tolerance).
func NewBisection(h *hypergraph.Hypergraph, tol float64) Balance {
	return NewUniform(h, 2, tol)
}

// NewUniform returns a k-way balance with target total/k per part per
// resource and an allowed deviation of tol*total (rounded outward).
func NewUniform(h *hypergraph.Hypergraph, k int, tol float64) Balance {
	r := h.NumResources()
	b := Balance{Min: make([][]int64, k), Max: make([][]int64, k)}
	for p := 0; p < k; p++ {
		b.Min[p] = make([]int64, r)
		b.Max[p] = make([]int64, r)
		for i := 0; i < r; i++ {
			total := float64(h.TotalWeightIn(i))
			target := total / float64(k)
			dev := tol * total
			b.Max[p][i] = ceilLoose(target + dev)
			mn := floorLoose(target - dev)
			if mn < 0 {
				mn = 0
			}
			b.Min[p][i] = mn
		}
	}
	return b
}

// NewCapacities returns a balance from explicit per-part, per-resource
// capacities with a relative tolerance: part p must hold within
// caps[p][r]*(1±tol). This models the absolute-capacity semantics of the
// proposed benchmark format.
func NewCapacities(caps [][]int64, tol float64) Balance {
	k := len(caps)
	b := Balance{Min: make([][]int64, k), Max: make([][]int64, k)}
	for p := 0; p < k; p++ {
		r := len(caps[p])
		b.Min[p] = make([]int64, r)
		b.Max[p] = make([]int64, r)
		for i := 0; i < r; i++ {
			c := float64(caps[p][i])
			b.Max[p][i] = ceilLoose(c * (1 + tol))
			mn := floorLoose(c * (1 - tol))
			if mn < 0 {
				mn = 0
			}
			b.Min[p][i] = mn
		}
	}
	return b
}

// ceilLoose and floorLoose round with a small tolerance so that values that
// are integers up to float64 rounding error (e.g. 100*1.1) land on the
// intended integer.
func ceilLoose(x float64) int64  { return int64(math.Ceil(x - 1e-9)) }
func floorLoose(x float64) int64 { return int64(math.Floor(x + 1e-9)) }

// Admits reports whether the per-part weights w ([part][resource]) satisfy
// the balance bounds.
func (b Balance) Admits(w [][]int64) bool {
	for p := range b.Max {
		for r := range b.Max[p] {
			if w[p][r] > b.Max[p][r] || w[p][r] < b.Min[p][r] {
				return false
			}
		}
	}
	return true
}

// Validate checks structural sanity (equal dimensions, Min <= Max) and that
// the bounds can accommodate the hypergraph's total weight in every resource.
func (b Balance) Validate(h *hypergraph.Hypergraph) error {
	if len(b.Min) != len(b.Max) {
		return fmt.Errorf("partition: balance has %d min rows and %d max rows", len(b.Min), len(b.Max))
	}
	if len(b.Max) == 0 {
		return fmt.Errorf("partition: balance has no parts")
	}
	nr := len(b.Max[0])
	if nr != h.NumResources() {
		return fmt.Errorf("partition: balance has %d resources, hypergraph has %d", nr, h.NumResources())
	}
	sumMin := make([]int64, nr)
	sumMax := make([]int64, nr)
	for p := range b.Max {
		if len(b.Min[p]) != nr || len(b.Max[p]) != nr {
			return fmt.Errorf("partition: balance row %d has inconsistent resource count", p)
		}
		for r := 0; r < nr; r++ {
			if b.Min[p][r] > b.Max[p][r] {
				return fmt.Errorf("partition: part %d resource %d has min %d > max %d", p, r, b.Min[p][r], b.Max[p][r])
			}
			sumMin[r] += b.Min[p][r]
			sumMax[r] += b.Max[p][r]
		}
	}
	for r := 0; r < nr; r++ {
		t := h.TotalWeightIn(r)
		if sumMax[r] < t {
			return fmt.Errorf("partition: resource %d max capacities sum to %d < total weight %d", r, sumMax[r], t)
		}
		if sumMin[r] > t {
			return fmt.Errorf("partition: resource %d min requirements sum to %d > total weight %d", r, sumMin[r], t)
		}
	}
	return nil
}
