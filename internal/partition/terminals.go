package partition

import (
	"fmt"

	"repro/internal/hypergraph"
)

// ClusterTerminalsResult is the outcome of ClusterTerminals.
type ClusterTerminalsResult struct {
	Problem *Problem
	// ClusterOf maps original vertices to vertices of the reduced problem.
	ClusterOf []int32
	// TerminalOf maps each part to its merged terminal vertex in the reduced
	// problem, or -1 when the part had no fixed vertices.
	TerminalOf []int32
}

// ClusterTerminals applies the reduction observed in the paper's conclusion:
// a partitioning instance with an arbitrary number of fixed terminals is
// equivalent to one with at most one terminal per part, obtained by
// clustering all vertices fixed in a given part into a single terminal.
// Free and OR-region vertices are left as singletons.
//
// The reduced problem has the same balance bounds; cut values of
// corresponding assignments are identical (see the property test).
func ClusterTerminals(p *Problem) (*ClusterTerminalsResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	nv := p.H.NumVertices()
	clusterOf := make([]int32, nv)
	terminalOf := make([]int32, p.K)
	for i := range terminalOf {
		terminalOf[i] = -1
	}
	next := int32(0)
	// First pass: one cluster per part that has fixed vertices, in part order
	// of first appearance.
	for v := 0; v < nv; v++ {
		if part, ok := p.FixedPart(v); ok {
			if terminalOf[part] < 0 {
				terminalOf[part] = next
				next++
			}
			clusterOf[v] = terminalOf[part]
		} else {
			clusterOf[v] = -1 // assigned below
		}
	}
	for v := 0; v < nv; v++ {
		if clusterOf[v] < 0 {
			clusterOf[v] = next
			next++
		}
	}
	coarse, _, err := hypergraph.Contract(p.H, clusterOf, int(next), hypergraph.ContractOptions{})
	if err != nil {
		return nil, fmt.Errorf("partition: clustering terminals: %w", err)
	}
	reduced := &Problem{H: coarse, K: p.K, Balance: p.Balance}
	reduced.ensureAllowed()
	for v := 0; v < nv; v++ {
		reduced.Allowed[clusterOf[v]] = reduced.Allowed[clusterOf[v]].Intersect(p.MaskOf(v))
	}
	if err := reduced.Validate(); err != nil {
		return nil, fmt.Errorf("partition: reduced problem invalid: %w", err)
	}
	return &ClusterTerminalsResult{Problem: reduced, ClusterOf: clusterOf, TerminalOf: terminalOf}, nil
}

// Project maps an assignment of the reduced problem back to the original
// vertices.
func (r *ClusterTerminalsResult) Project(reduced Assignment) Assignment {
	out := make(Assignment, len(r.ClusterOf))
	for v, c := range r.ClusterOf {
		out[v] = reduced[c]
	}
	return out
}

// Reduce maps an assignment of the original problem to the reduced problem.
// All vertices in a cluster must agree; fixed clusters take their fixed part.
func (r *ClusterTerminalsResult) Reduce(original Assignment) (Assignment, error) {
	out := make(Assignment, r.Problem.H.NumVertices())
	set := make([]bool, len(out))
	for v, c := range r.ClusterOf {
		if set[c] && out[c] != original[v] {
			return nil, fmt.Errorf("partition: vertices in cluster %d assigned to different parts", c)
		}
		out[c] = original[v]
		set[c] = true
	}
	return out, nil
}
