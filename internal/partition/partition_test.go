package partition_test

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

func TestMask(t *testing.T) {
	m := partition.AllParts(4)
	if m.Count() != 4 {
		t.Fatalf("AllParts(4).Count = %d", m.Count())
	}
	if !m.Contains(0) || !m.Contains(3) || m.Contains(4) {
		t.Errorf("AllParts(4) membership wrong")
	}
	s := partition.Single(2)
	if p, ok := s.OnlyPart(); !ok || p != 2 {
		t.Errorf("Single(2).OnlyPart = %d,%v", p, ok)
	}
	if _, ok := m.OnlyPart(); ok {
		t.Error("AllParts(4).OnlyPart should be false")
	}
	if got := partition.Single(0).With(2).Parts(4); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Parts = %v", got)
	}
	if partition.Single(1).Intersect(partition.Single(2)) != 0 {
		t.Error("disjoint masks should intersect to 0")
	}
	if partition.AllParts(64) != ^partition.Mask(0) {
		t.Error("AllParts(64) should be full mask")
	}
}

// grid builds a 2x n grid-like netlist: vertices 0..2n-1, rails of 2-pin nets.
func grid(n int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(1)
	for i := 0; i < 2*n; i++ {
		b.AddVertex(1)
	}
	for i := 0; i+1 < n; i++ {
		b.AddNet(i, i+1)     // top rail
		b.AddNet(n+i, n+i+1) // bottom rail
	}
	for i := 0; i < n; i++ {
		b.AddNet(i, n+i) // rungs
	}
	return b.MustBuild()
}

func TestBalanceBisection(t *testing.T) {
	h := grid(10) // 20 unit vertices
	b := partition.NewBisection(h, 0.02)
	if b.NumParts() != 2 || b.NumResources() != 1 {
		t.Fatalf("dims: %d parts %d resources", b.NumParts(), b.NumResources())
	}
	// total=20, target=10, dev=0.4 -> Max=ceil(10.4)=11, Min=floor(9.6)=9.
	if b.Max[0][0] != 11 || b.Min[0][0] != 9 {
		t.Errorf("bounds = [%d,%d], want [9,11]", b.Min[0][0], b.Max[0][0])
	}
	if err := b.Validate(h); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if !b.Admits([][]int64{{10}, {10}}) {
		t.Error("10/10 should be admitted")
	}
	if b.Admits([][]int64{{12}, {8}}) {
		t.Error("12/8 should be rejected")
	}
}

func TestBalanceCapacities(t *testing.T) {
	b := partition.NewCapacities([][]int64{{100, 10}, {50, 5}}, 0.1)
	if b.Max[0][0] != 110 || b.Min[1][1] != 4 {
		t.Errorf("bounds: max00=%d min11=%d", b.Max[0][0], b.Min[1][1])
	}
}

func TestBalanceValidateErrors(t *testing.T) {
	h := grid(5)
	bad := partition.Balance{Min: [][]int64{{5}}, Max: [][]int64{{4}}}
	if err := bad.Validate(h); err == nil {
		t.Error("want error for min > max")
	}
	tooSmall := partition.Balance{Min: [][]int64{{0}, {0}}, Max: [][]int64{{2}, {2}}}
	if err := tooSmall.Validate(h); err == nil {
		t.Error("want error for capacities below total")
	}
	empty := partition.Balance{}
	if err := empty.Validate(h); err == nil {
		t.Error("want error for empty balance")
	}
}

func TestProblemFixAndValidate(t *testing.T) {
	h := grid(10)
	p := partition.NewBipartition(h, 0.1)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !p.IsFree(3) {
		t.Error("vertex 3 should start free")
	}
	p.Fix(0, 0)
	p.Fix(19, 1)
	if part, ok := p.FixedPart(0); !ok || part != 0 {
		t.Errorf("FixedPart(0) = %d,%v", part, ok)
	}
	if p.IsFree(0) {
		t.Error("fixed vertex reported free")
	}
	if p.NumFixed() != 2 {
		t.Errorf("NumFixed = %d, want 2", p.NumFixed())
	}
	if f := p.FixedFraction(); f != 0.1 {
		t.Errorf("FixedFraction = %v, want 0.1", f)
	}
	p.Restrict(5, partition.Single(0).With(1))
	if _, ok := p.FixedPart(5); ok {
		t.Error("OR-region vertex should not be fixed")
	}
}

func TestProblemValidateErrors(t *testing.T) {
	h := grid(4)
	p := partition.NewBipartition(h, 0.1)
	p.Restrict(0, 0) // empty mask
	if err := p.Validate(); err == nil {
		t.Error("want error for empty mask")
	}
	p2 := partition.NewFree(h, 1, 0.1)
	if err := p2.Validate(); err == nil {
		t.Error("want error for k < 2")
	}
	p3 := &partition.Problem{H: h, K: 3, Balance: partition.NewUniform(h, 2, 0.1)}
	if err := p3.Validate(); err == nil {
		t.Error("want error for balance/k mismatch")
	}
}

func TestFeasible(t *testing.T) {
	h := grid(10)
	p := partition.NewBipartition(h, 0.1)
	p.Fix(0, 1)
	a := make(partition.Assignment, 20)
	for i := 10; i < 20; i++ {
		a[i] = 1
	}
	// Vertex 0 assigned to part 0 but fixed in 1.
	if err := p.Feasible(a); err == nil {
		t.Error("want fixed-vertex violation")
	}
	a[0] = 1
	a[10] = 0 // keep 10/10 split
	if err := p.Feasible(a); err != nil {
		t.Errorf("Feasible: %v", err)
	}
	// Unbalance it.
	for i := range a {
		a[i] = 1
	}
	if err := p.Feasible(a); err == nil {
		t.Error("want balance violation")
	}
	if err := p.Feasible(a[:5]); err == nil {
		t.Error("want length violation")
	}
}

func TestCutObjectives(t *testing.T) {
	h := grid(4) // 8 vertices; nets: 3 top rail, 3 bottom rail, 4 rungs
	a := make(partition.Assignment, 8)
	for i := 4; i < 8; i++ {
		a[i] = 1 // split top rail vs bottom rail: only rungs cut
	}
	if got := partition.Cut(h, a); got != 4 {
		t.Errorf("Cut = %d, want 4 (the rungs)", got)
	}
	if got := partition.CutNets(h, a); got != 4 {
		t.Errorf("CutNets = %d, want 4", got)
	}
	if got := partition.KMinus1(h, a); got != 4 {
		t.Errorf("KMinus1 = %d, want 4", got)
	}
	span := partition.NetSpan(h, a, 6) // first rung net
	if span.Count() != 2 {
		t.Errorf("rung net should span 2 parts, got %d", span.Count())
	}
	w := partition.PartWeights(h, a, 2)
	if w[0][0] != 4 || w[1][0] != 4 {
		t.Errorf("PartWeights = %v", w)
	}
}

func TestKMinus1EqualsCutForBipartition(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		h := grid(3 + int(seed%8))
		a := make(partition.Assignment, h.NumVertices())
		for i := range a {
			a[i] = int8(rng.IntN(2))
		}
		return partition.Cut(h, a) == partition.KMinus1(h, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomFeasible(t *testing.T) {
	h := grid(20)
	p := partition.NewBipartition(h, 0.02)
	p.Fix(0, 0)
	p.Fix(39, 1)
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 20; trial++ {
		a, err := partition.RandomFeasible(p, rng)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := p.Feasible(a); err != nil {
			t.Fatalf("trial %d: infeasible result: %v", trial, err)
		}
	}
}

func TestRandomFeasibleKWay(t *testing.T) {
	h := grid(30)
	p := partition.NewFree(h, 4, 0.05)
	rng := rand.New(rand.NewPCG(3, 4))
	a, err := partition.RandomFeasible(p, rng)
	if err != nil {
		t.Fatalf("RandomFeasible: %v", err)
	}
	if err := p.Feasible(a); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
}

func TestRandomFeasibleOverconstrained(t *testing.T) {
	// All vertices fixed in part 0 but balance demands a split: infeasible.
	h := grid(5)
	p := partition.NewBipartition(h, 0.02)
	for v := 0; v < h.NumVertices(); v++ {
		p.Fix(v, 0)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	if _, err := partition.RandomFeasible(p, rng); err == nil {
		t.Error("want error for overconstrained instance")
	}
}

func TestAssignmentHelpers(t *testing.T) {
	a := partition.NewAssignment(4)
	a[2] = 3
	b := a.Clone()
	b[0] = 1
	if a[0] != 0 || b[2] != 3 {
		t.Error("Clone not independent copy")
	}
	c := partition.NewAssignment(4)
	c.CopyFrom(b)
	if c[0] != 1 {
		t.Error("CopyFrom failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("CopyFrom with mismatched length should panic")
		}
	}()
	c.CopyFrom(a[:2])
}

func TestClusterTerminals(t *testing.T) {
	h := grid(10)
	p := partition.NewBipartition(h, 0.3)
	// Fix several vertices per side.
	for _, v := range []int{0, 1, 2} {
		p.Fix(v, 0)
	}
	for _, v := range []int{17, 18, 19} {
		p.Fix(v, 1)
	}
	res, err := partition.ClusterTerminals(p)
	if err != nil {
		t.Fatalf("ClusterTerminals: %v", err)
	}
	// 20 - 6 fixed + 2 merged terminals = 16 vertices.
	if got := res.Problem.H.NumVertices(); got != 16 {
		t.Fatalf("reduced vertices = %d, want 16", got)
	}
	if res.Problem.NumFixed() != 2 {
		t.Errorf("reduced NumFixed = %d, want 2", res.Problem.NumFixed())
	}
	for part := 0; part < 2; part++ {
		term := res.TerminalOf[part]
		if term < 0 {
			t.Fatalf("part %d has no terminal", part)
		}
		if got, ok := res.Problem.FixedPart(int(term)); !ok || got != part {
			t.Errorf("terminal %d fixed in %d,%v, want %d", term, got, ok, part)
		}
	}
	// Merged terminal weight = sum of members.
	if w := res.Problem.H.Weight(int(res.TerminalOf[0])); w != 3 {
		t.Errorf("terminal weight = %d, want 3", w)
	}
}

// TestClusterTerminalsPreservesCut is the equivalence property from the
// paper's conclusion: for any assignment consistent with the fixture, the
// reduced instance has the same cut.
func TestClusterTerminalsPreservesCut(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		h := grid(5 + int(seed%10))
		p := partition.NewBipartition(h, 0.5)
		nv := h.NumVertices()
		for v := 0; v < nv; v++ {
			if rng.IntN(3) == 0 {
				p.Fix(v, rng.IntN(2))
			}
		}
		res, err := partition.ClusterTerminals(p)
		if err != nil {
			return false
		}
		// Random assignment consistent with the fixture.
		a := make(partition.Assignment, nv)
		for v := 0; v < nv; v++ {
			if part, ok := p.FixedPart(v); ok {
				a[v] = int8(part)
			} else {
				a[v] = int8(rng.IntN(2))
			}
		}
		reduced, err := res.Reduce(a)
		if err != nil {
			return false
		}
		if partition.Cut(h, a) != partition.Cut(res.Problem.H, reduced) {
			return false
		}
		// Round trip.
		back := res.Project(reduced)
		for v := range a {
			if back[v] != a[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceConflict(t *testing.T) {
	h := grid(5)
	p := partition.NewBipartition(h, 0.5)
	p.Fix(0, 0)
	p.Fix(1, 0)
	res, err := partition.ClusterTerminals(p)
	if err != nil {
		t.Fatalf("ClusterTerminals: %v", err)
	}
	a := make(partition.Assignment, h.NumVertices())
	a[1] = 1 // conflicts with vertex 0 (same cluster, different part)
	if _, err := res.Reduce(a); err == nil {
		t.Error("want conflict error")
	}
}

func TestSOED(t *testing.T) {
	h := grid(4)
	a := make(partition.Assignment, 8)
	for i := 4; i < 8; i++ {
		a[i] = 1
	}
	// 4 cut rungs, each spanning 2 parts: SOED = 8; uncut rails contribute 0.
	if got := partition.SOED(h, a); got != 8 {
		t.Errorf("SOED = %d, want 8", got)
	}
	// Identity SOED = KMinus1 + Cut.
	if partition.SOED(h, a) != partition.KMinus1(h, a)+partition.Cut(h, a) {
		t.Error("SOED identity violated")
	}
}

func TestSOEDIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 91))
		h := grid(3 + int(seed%8))
		a := make(partition.Assignment, h.NumVertices())
		for i := range a {
			a[i] = int8(rng.IntN(4))
		}
		return partition.SOED(h, a) == partition.KMinus1(h, a)+partition.Cut(h, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMovableCountCaching(t *testing.T) {
	h := grid(6)
	p := partition.NewBipartition(h, 0.1)
	nv := h.NumVertices()
	if got := p.MovableCount(); got != nv {
		t.Fatalf("MovableCount = %d, want %d", got, nv)
	}
	// Fix must invalidate the cache.
	p.Fix(0, 0)
	p.Fix(1, 1)
	if got := p.MovableCount(); got != nv-2 {
		t.Fatalf("MovableCount after Fix = %d, want %d", got, nv-2)
	}
	// Restrict to a single part also fixes the vertex.
	p.Restrict(2, partition.Single(0))
	if got := p.MovableCount(); got != nv-3 {
		t.Fatalf("MovableCount after Restrict = %d, want %d", got, nv-3)
	}
	// A non-singleton restriction keeps the vertex movable.
	p.Restrict(3, partition.AllParts(2))
	if got := p.MovableCount(); got != nv-3 {
		t.Fatalf("MovableCount after free Restrict = %d, want %d", got, nv-3)
	}
	// The cached value must agree with a fresh recount.
	n := 0
	for v := 0; v < nv; v++ {
		if _, fixed := p.FixedPart(v); !fixed {
			n++
		}
	}
	if got := p.MovableCount(); got != n {
		t.Fatalf("cached MovableCount = %d, recount = %d", got, n)
	}
}

func TestMovableCountConcurrent(t *testing.T) {
	h := grid(50)
	p := partition.NewBipartition(h, 0.1)
	p.Fix(0, 0)
	want := h.NumVertices() - 1
	done := make(chan int, 8)
	for g := 0; g < 8; g++ {
		go func() { done <- p.MovableCount() }()
	}
	for g := 0; g < 8; g++ {
		if got := <-done; got != want {
			t.Fatalf("concurrent MovableCount = %d, want %d", got, want)
		}
	}
}
