// Package place implements a top-down recursive-bisection standard-cell
// placer in the Dunlop–Kernighan tradition: regions are bisected by the
// multilevel min-cut partitioner, external nets are propagated onto region
// boundaries as fixed terminals, and recursion bottoms out by spreading the
// few remaining cells across the region.
//
// The placer exists because the paper derives its fixed-terminals benchmark
// suite from actual placements (Section IV); it is also the context that
// produces fixed-terminal partitioning instances in the first place.
package place

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/hypergraph"
	"repro/internal/multilevel"
	"repro/internal/par"
	"repro/internal/partition"
)

// Config controls the placer.
type Config struct {
	// ML configures the multilevel partitioner used for each bisection,
	// including ML.Objective: fm.ObjectiveKM1 makes every split minimize
	// connectivity instead of cut, which penalizes nets straddling many
	// regions — the partitioning-level proxy for wirelength-aware placement
	// (bisections are k = 2 where the objectives coincide, so the choice
	// matters on Quadrisection's 4-way splits).
	ML multilevel.Config
	// Tolerance is the per-bisection balance tolerance (default 0.1; looser
	// than the paper's 2% partitioning experiments because placement splits
	// must track region capacity, not exact bisection).
	Tolerance float64
	// MinBlockCells stops recursion when a region holds at most this many
	// cells (default 8).
	MinBlockCells int
	// Quadrisection, when set, splits squarish regions with enough cells
	// into their four quadrants with one direct 4-way partition instead of
	// two successive bisections, so the partitioner sees the full 2x2
	// decision at once. Terminal propagation then votes per axis; a net
	// whose external pins tie on an axis gets an OR-region mask spanning
	// both quadrants on that axis. Elongated or small regions still bisect.
	Quadrisection bool
	// FixedX/FixedY pin vertices (typically pads) to chip coordinates; use
	// NaN entries (or nil slices) for movable vertices.
	FixedX, FixedY []float64
	// Width, Height are the chip dimensions (default: unit square scaled to
	// sqrt of total area).
	Width, Height float64
	// Workers bounds the goroutines bisecting the independent regions of one
	// top-down level (<= 0 means runtime.GOMAXPROCS). Each region's RNG is
	// drawn from the caller's rng in deterministic region order, so the
	// placement is identical for every worker count.
	Workers int
}

// Placement is the result of Place: a position for every vertex.
type Placement struct {
	H             *hypergraph.Hypergraph
	X, Y          []float64
	Width, Height float64
}

// HPWL returns the total half-perimeter wirelength of the placement.
func (pl *Placement) HPWL() float64 {
	var total float64
	for e := 0; e < pl.H.NumNets(); e++ {
		pins := pl.H.Pins(e)
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for _, v := range pins {
			x, y := pl.X[v], pl.Y[v]
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
		total += (maxX - minX) + (maxY - minY)
	}
	return total
}

type region struct {
	x0, y0, x1, y1 float64
	cells          []int32 // movable vertices confined to this region
}

func (r region) width() float64  { return r.x1 - r.x0 }
func (r region) height() float64 { return r.y1 - r.y0 }
func (r region) cx() float64     { return (r.x0 + r.x1) / 2 }
func (r region) cy() float64     { return (r.y0 + r.y1) / 2 }

// Place computes a top-down min-cut placement of h.
func Place(h *hypergraph.Hypergraph, cfg Config, rng *rand.Rand) (*Placement, error) {
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.1
	}
	if cfg.MinBlockCells <= 0 {
		cfg.MinBlockCells = 8
	}
	if cfg.Width <= 0 || cfg.Height <= 0 {
		side := math.Sqrt(float64(h.TotalWeight()))
		if side <= 0 {
			side = math.Sqrt(float64(h.NumVertices())) + 1
		}
		cfg.Width, cfg.Height = side, side
	}
	nv := h.NumVertices()
	pl := &Placement{
		H:     h,
		X:     make([]float64, nv),
		Y:     make([]float64, nv),
		Width: cfg.Width, Height: cfg.Height,
	}
	var rootCells []int32
	for v := 0; v < nv; v++ {
		fx, fy := math.NaN(), math.NaN()
		if cfg.FixedX != nil && v < len(cfg.FixedX) {
			fx = cfg.FixedX[v]
		}
		if cfg.FixedY != nil && v < len(cfg.FixedY) {
			fy = cfg.FixedY[v]
		}
		if !math.IsNaN(fx) && !math.IsNaN(fy) {
			pl.X[v], pl.Y[v] = clamp(fx, 0, cfg.Width), clamp(fy, 0, cfg.Height)
		} else {
			pl.X[v], pl.Y[v] = cfg.Width/2, cfg.Height/2
			rootCells = append(rootCells, int32(v))
		}
	}
	// Top-down levels: the regions of one level partition disjoint cell sets,
	// so their bisections are independent and run on cfg.Workers goroutines.
	// Terminal regions are spread first (their final positions feed terminal
	// propagation), per-region seeds are drawn in region order, and child
	// positions are applied after the level's barrier — so every level's
	// bisections see the same snapshot regardless of worker count.
	level := []region{{0, 0, cfg.Width, cfg.Height, rootCells}}
	for len(level) > 0 {
		var work []region
		for _, r := range level {
			if len(r.cells) <= cfg.MinBlockCells {
				spreadCells(pl, r)
			} else {
				work = append(work, r)
			}
		}
		seeds := make([]uint64, len(work))
		for i := range seeds {
			seeds[i] = rng.Uint64()
		}
		type split struct {
			children []region
			ok       bool
		}
		splits := make([]split, len(work))
		par.ForEach(len(work), cfg.Workers, func(i int) {
			rrng := rand.New(rand.NewPCG(seeds[i], 0))
			if cfg.Quadrisection && quadWorthy(work[i], cfg) {
				if children, err := quadrisectRegion(pl, work[i], cfg, rrng); err == nil {
					splits[i] = split{children, true}
					return
				}
				// An infeasible quadrisection (macro-dominated quadrant,
				// overconstrained terminals) falls back to bisection below.
			}
			left, right, err := bisectRegion(pl, work[i], cfg, rrng)
			if err != nil {
				// A macro-dominated region can make the bisection infeasible
				// at the configured tolerance; loosen progressively, and as a
				// last resort leave the region terminal.
				loose := cfg
				for tol := cfg.Tolerance * 2; err != nil && tol <= 0.5; tol *= 2 {
					loose.Tolerance = tol
					left, right, err = bisectRegion(pl, work[i], loose, rrng)
				}
			}
			if err == nil {
				splits[i] = split{[]region{left, right}, true}
			}
		})
		var next []region
		for i, r := range work {
			if !splits[i].ok {
				spreadCells(pl, r)
				continue
			}
			for _, child := range splits[i].children {
				for _, v := range child.cells {
					pl.X[v], pl.Y[v] = child.cx(), child.cy()
				}
				next = append(next, child)
			}
		}
		level = next
	}
	return pl, nil
}

// quadWorthy reports whether a region should be quadrisected: enough cells
// that every quadrant stays above the recursion floor, and squarish enough
// that a 2x2 grid of children makes geometric sense.
func quadWorthy(r region, cfg Config) bool {
	if len(r.cells) <= 4*cfg.MinBlockCells {
		return false
	}
	ar := r.width() / r.height()
	return ar >= 0.5 && ar <= 2
}

// quadrisectRegion splits r into its four quadrants with one direct 4-way
// min-cut partition. Quadrant q covers the (xbit, ybit) = (q&1, q>>1) corner
// — bottom-left, bottom-right, top-left, top-right — matching
// geometry.Quadrisection order. External nets are propagated as zero-area
// terminals with per-axis votes: a decisive axis fixes that coordinate bit,
// a tied axis leaves it free, so the terminal's allowed mask is the
// OR-region of the consistent quadrants (a net tied on both axes floats
// freely among all four).
func quadrisectRegion(pl *Placement, r region, cfg Config, rng *rand.Rand) ([]region, error) {
	cx, cy := r.cx(), r.cy()
	children := []region{
		{r.x0, r.y0, cx, cy, nil},
		{cx, r.y0, r.x1, cy, nil},
		{r.x0, cy, cx, r.y1, nil},
		{cx, cy, r.x1, r.y1, nil},
	}

	h := pl.H
	inRegion := make(map[int32]int32, len(r.cells))
	b := hypergraph.NewBuilder(1)
	b.DropSingletons = true
	b.DedupPins = true
	for i, v := range r.cells {
		b.AddVertex(h.Weight(int(v)))
		inRegion[v] = int32(i)
	}
	masks := make([]partition.Mask, len(r.cells))
	free := partition.AllParts(4)
	for i := range masks {
		masks[i] = free
	}

	seen := make(map[int32]bool)
	var pins []int
	for _, v := range r.cells {
		for _, en := range h.NetsOf(int(v)) {
			if seen[en] {
				continue
			}
			seen[en] = true
			pins = pins[:0]
			votesX, votesY := 0, 0 // >0 favour right / top
			external := 0
			for _, u := range h.Pins(int(en)) {
				if su, ok := inRegion[u]; ok {
					pins = append(pins, int(su))
					continue
				}
				external++
				if clamp(pl.X[u], r.x0, r.x1) >= cx {
					votesX++
				} else {
					votesX--
				}
				if clamp(pl.Y[u], r.y0, r.y1) >= cy {
					votesY++
				} else {
					votesY--
				}
			}
			if external > 0 {
				var m partition.Mask
				for q := 0; q < 4; q++ {
					xbit, ybit := q&1, q>>1
					if (votesX > 0 && xbit == 0) || (votesX < 0 && xbit == 1) {
						continue
					}
					if (votesY > 0 && ybit == 0) || (votesY < 0 && ybit == 1) {
						continue
					}
					m = m.With(q)
				}
				t := b.AddVertex(0)
				masks = append(masks, m)
				pins = append(pins, t)
			}
			if len(pins) >= 2 {
				b.AddNet(pins...)
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("place: building quadrant subproblem: %w", err)
	}
	prob := &partition.Problem{
		H:       sub,
		K:       4,
		Balance: partition.NewUniform(sub, 4, cfg.Tolerance),
		Allowed: masks,
	}
	res, err := multilevel.PartitionKWay(prob, cfg.ML, rng)
	if err != nil {
		return nil, fmt.Errorf("place: quadrisecting region: %w", err)
	}
	for i, v := range r.cells {
		q := res.Assignment[i]
		children[q].cells = append(children[q].cells, v)
	}
	return children, nil
}

// bisectRegion splits r perpendicular to its longer side using min-cut
// bipartitioning with propagated terminals.
func bisectRegion(pl *Placement, r region, cfg Config, rng *rand.Rand) (left, right region, err error) {
	vertical := r.width() >= r.height() // vertical cutline splits left/right
	if vertical {
		mid := r.cx()
		left = region{r.x0, r.y0, mid, r.y1, nil}
		right = region{mid, r.y0, r.x1, r.y1, nil}
	} else {
		mid := r.cy()
		left = region{r.x0, r.y0, r.x1, mid, nil}
		right = region{r.x0, mid, r.x1, r.y1, nil}
	}

	h := pl.H
	inRegion := make(map[int32]int32, len(r.cells)) // vertex -> sub id
	b := hypergraph.NewBuilder(1)
	b.DropSingletons = true
	b.DedupPins = true
	for i, v := range r.cells {
		b.AddVertex(h.Weight(int(v)))
		inRegion[v] = int32(i)
	}
	var masks []partition.Mask
	free := partition.AllParts(2)
	for range r.cells {
		masks = append(masks, free)
	}

	// Collect nets touching the region; propagate external pins to the
	// nearer half-region as zero-area fixed terminals (one per external
	// net, at the consensus side of its external pins).
	seen := make(map[int32]bool)
	var pins []int
	for _, v := range r.cells {
		for _, en := range h.NetsOf(int(v)) {
			if seen[en] {
				continue
			}
			seen[en] = true
			pins = pins[:0]
			votes := 0 // >0 favours the `right` child
			external := 0
			for _, u := range h.Pins(int(en)) {
				if su, ok := inRegion[u]; ok {
					pins = append(pins, int(su))
					continue
				}
				external++
				if nearerSecond(pl, r, vertical, int(u)) {
					votes++
				} else {
					votes--
				}
			}
			if external > 0 {
				side := 0
				if votes > 0 {
					side = 1
				} else if votes == 0 {
					side = rng.IntN(2)
				}
				t := b.AddVertex(0)
				masks = append(masks, partition.Single(side))
				pins = append(pins, t)
			}
			if len(pins) >= 2 {
				b.AddNet(pins...)
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return region{}, region{}, fmt.Errorf("place: building region subproblem: %w", err)
	}
	prob := &partition.Problem{
		H:       sub,
		K:       2,
		Balance: partition.NewBisection(sub, cfg.Tolerance),
		Allowed: masks,
	}
	res, err := multilevel.Partition(prob, cfg.ML, rng)
	if err != nil {
		return region{}, region{}, fmt.Errorf("place: bisecting region: %w", err)
	}
	for i, v := range r.cells {
		if res.Assignment[i] == 0 {
			left.cells = append(left.cells, v)
		} else {
			right.cells = append(right.cells, v)
		}
	}
	return left, right, nil
}

// nearerSecond reports whether vertex u's current position is nearer the
// second (right/top) child of r under the given cut direction.
func nearerSecond(pl *Placement, r region, vertical bool, u int) bool {
	if vertical {
		return clamp(pl.X[u], r.x0, r.x1) >= r.cx()
	}
	return clamp(pl.Y[u], r.y0, r.y1) >= r.cy()
}

// spreadCells distributes a terminal region's cells on a small grid inside
// the region.
func spreadCells(pl *Placement, r region) {
	n := len(r.cells)
	if n == 0 {
		return
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	rows := (n + cols - 1) / cols
	for i, v := range r.cells {
		cx := i % cols
		cy := i / cols
		pl.X[v] = r.x0 + (float64(cx)+0.5)*r.width()/float64(cols)
		pl.Y[v] = r.y0 + (float64(cy)+0.5)*r.height()/float64(rows)
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
