package place_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/fm"
	"repro/internal/gen"
	"repro/internal/hypergraph"
	"repro/internal/multilevel"
	"repro/internal/place"
)

func testNetlist(t *testing.T, cells int, seed uint64) *gen.Netlist {
	t.Helper()
	nl, err := gen.Generate(gen.Params{
		Cells:        cells,
		Pads:         16,
		RentExponent: 0.65,
		PinsPerCell:  3.6,
		AvgNetSize:   3.3,
		MaxAreaPct:   3,
		Seed:         seed,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return nl
}

// padCoords pins pad vertices to their generator periphery position, scaled
// to the chip, leaving cells movable (NaN).
func padCoords(nl *gen.Netlist, w, h float64) ([]float64, []float64) {
	nv := nl.H.NumVertices()
	fx := make([]float64, nv)
	fy := make([]float64, nv)
	for v := 0; v < nv; v++ {
		if nl.H.IsPad(v) {
			fx[v] = float64(nl.CellX[v]) / float64(nl.GridSide) * w
			fy[v] = float64(nl.CellY[v]) / float64(nl.GridSide) * h
		} else {
			fx[v], fy[v] = math.NaN(), math.NaN()
		}
	}
	return fx, fy
}

func TestPlaceBasic(t *testing.T) {
	nl := testNetlist(t, 400, 1)
	fx, fy := padCoords(nl, 100, 100)
	pl, err := place.Place(nl.H, place.Config{Width: 100, Height: 100, FixedX: fx, FixedY: fy},
		rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	for v := 0; v < nl.H.NumVertices(); v++ {
		if pl.X[v] < 0 || pl.X[v] > 100 || pl.Y[v] < 0 || pl.Y[v] > 100 {
			t.Fatalf("vertex %d at (%.1f,%.1f) outside chip", v, pl.X[v], pl.Y[v])
		}
		if nl.H.IsPad(v) && (pl.X[v] != fx[v] || pl.Y[v] != fy[v]) {
			t.Errorf("pad %d moved from (%.1f,%.1f) to (%.1f,%.1f)", v, fx[v], fy[v], pl.X[v], pl.Y[v])
		}
	}
}

func TestPlaceBeatsRandom(t *testing.T) {
	nl := testNetlist(t, 500, 2)
	rng := rand.New(rand.NewPCG(2, 2))
	pl, err := place.Place(nl.H, place.Config{Width: 100, Height: 100}, rng)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	// Random placement of the same netlist.
	randomPl := &place.Placement{
		H:      nl.H,
		X:      make([]float64, nl.H.NumVertices()),
		Y:      make([]float64, nl.H.NumVertices()),
		Width:  100,
		Height: 100,
	}
	for v := range randomPl.X {
		randomPl.X[v] = rng.Float64() * 100
		randomPl.Y[v] = rng.Float64() * 100
	}
	placed, random := pl.HPWL(), randomPl.HPWL()
	t.Logf("HPWL placed=%.0f random=%.0f", placed, random)
	if placed >= random {
		t.Errorf("min-cut placement HPWL %.0f not better than random %.0f", placed, random)
	}
}

func TestPlaceSpreadsCells(t *testing.T) {
	nl := testNetlist(t, 200, 3)
	pl, err := place.Place(nl.H, place.Config{Width: 64, Height: 64}, rand.New(rand.NewPCG(3, 3)))
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	// No two cells should share the exact same position too often; count
	// distinct positions.
	type pt struct{ x, y float64 }
	seen := map[pt]int{}
	for v := 0; v < nl.H.NumVertices(); v++ {
		seen[pt{pl.X[v], pl.Y[v]}]++
	}
	if len(seen) < nl.H.NumVertices()/4 {
		t.Errorf("only %d distinct positions for %d vertices", len(seen), nl.H.NumVertices())
	}
}

func TestPlaceTinyInstance(t *testing.T) {
	b := hypergraph.NewBuilder(1)
	for i := 0; i < 5; i++ {
		b.AddVertex(1)
	}
	b.AddNet(0, 1)
	b.AddNet(2, 3, 4)
	h := b.MustBuild()
	pl, err := place.Place(h, place.Config{}, rand.New(rand.NewPCG(4, 4)))
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if pl.Width <= 0 || pl.Height <= 0 {
		t.Errorf("default chip dims not set: %v x %v", pl.Width, pl.Height)
	}
}

func TestHPWL(t *testing.T) {
	b := hypergraph.NewBuilder(1)
	for i := 0; i < 3; i++ {
		b.AddVertex(1)
	}
	b.AddNet(0, 1, 2)
	h := b.MustBuild()
	pl := &place.Placement{
		H: h,
		X: []float64{0, 4, 2},
		Y: []float64{0, 0, 3},
	}
	if got := pl.HPWL(); got != 7 {
		t.Errorf("HPWL = %v, want 7 (dx=4 + dy=3)", got)
	}
}

func TestPlaceClampsOutOfRangeFixed(t *testing.T) {
	b := hypergraph.NewBuilder(1)
	c0 := b.AddCell("c0", 1)
	c1 := b.AddCell("c1", 1)
	p0 := b.AddPad("p0")
	b.AddNet(c0, c1)
	b.AddNet(c1, p0)
	h := b.MustBuild()
	fx := []float64{math.NaN(), math.NaN(), -50} // pad pinned far outside
	fy := []float64{math.NaN(), math.NaN(), 500}
	pl, err := place.Place(h, place.Config{Width: 10, Height: 10, FixedX: fx, FixedY: fy},
		rand.New(rand.NewPCG(5, 5)))
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if pl.X[p0] != 0 || pl.Y[p0] != 10 {
		t.Errorf("out-of-range pad clamped to (%g,%g), want (0,10)", pl.X[p0], pl.Y[p0])
	}
}

func TestPlaceShortFixedSlices(t *testing.T) {
	b := hypergraph.NewBuilder(1)
	c0 := b.AddCell("c0", 1)
	c1 := b.AddCell("c1", 1)
	b.AddNet(c0, c1)
	h := b.MustBuild()
	// FixedX/FixedY shorter than the vertex count: extra vertices movable.
	pl, err := place.Place(h, place.Config{Width: 4, Height: 4, FixedX: []float64{1}, FixedY: []float64{1}},
		rand.New(rand.NewPCG(6, 6)))
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if pl.X[c0] != 1 || pl.Y[c0] != 1 {
		t.Errorf("short-slice fixed vertex not pinned: (%g,%g)", pl.X[c0], pl.Y[c0])
	}
}

// TestPlaceWorkersDeterministic checks the placer's determinism contract:
// per-region RNGs are derived in region order, so any worker count yields a
// bit-identical placement.
func TestPlaceWorkersDeterministic(t *testing.T) {
	nl := testNetlist(t, 300, 5)
	fx, fy := padCoords(nl, 64, 64)
	var ref *place.Placement
	for _, workers := range []int{1, 2, 8} {
		pl, err := place.Place(nl.H, place.Config{
			Width: 64, Height: 64, FixedX: fx, FixedY: fy, Workers: workers,
		}, rand.New(rand.NewPCG(9, 9)))
		if err != nil {
			t.Fatalf("Place workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = pl
			continue
		}
		for v := 0; v < nl.H.NumVertices(); v++ {
			if pl.X[v] != ref.X[v] || pl.Y[v] != ref.Y[v] {
				t.Fatalf("workers=%d: vertex %d at (%v,%v), want (%v,%v)",
					workers, v, pl.X[v], pl.Y[v], ref.X[v], ref.Y[v])
			}
		}
	}
}

// TestPlaceQuadrisection runs the placer in quadrisection mode and checks the
// result is in-bounds, keeps pads pinned, and is competitive with bisection
// on wirelength.
func TestPlaceQuadrisection(t *testing.T) {
	nl := testNetlist(t, 400, 7)
	fx, fy := padCoords(nl, 100, 100)
	base := place.Config{Width: 100, Height: 100, FixedX: fx, FixedY: fy}
	quadCfg := base
	quadCfg.Quadrisection = true
	quad, err := place.Place(nl.H, quadCfg, rand.New(rand.NewPCG(7, 7)))
	if err != nil {
		t.Fatalf("Place quadrisection: %v", err)
	}
	for v := 0; v < nl.H.NumVertices(); v++ {
		if quad.X[v] < 0 || quad.X[v] > 100 || quad.Y[v] < 0 || quad.Y[v] > 100 {
			t.Fatalf("vertex %d at (%.1f,%.1f) outside chip", v, quad.X[v], quad.Y[v])
		}
		if nl.H.IsPad(v) && (quad.X[v] != fx[v] || quad.Y[v] != fy[v]) {
			t.Errorf("pad %d moved", v)
		}
	}
	bis, err := place.Place(nl.H, base, rand.New(rand.NewPCG(7, 7)))
	if err != nil {
		t.Fatalf("Place bisection: %v", err)
	}
	qh, bh := quad.HPWL(), bis.HPWL()
	t.Logf("HPWL: quadrisection %.0f, bisection %.0f", qh, bh)
	if qh > 1.5*bh {
		t.Errorf("quadrisection HPWL %.0f more than 1.5x bisection's %.0f", qh, bh)
	}
}

// TestPlaceQuadrisectionDeterministic verifies quadrisection mode keeps the
// worker-count determinism contract.
func TestPlaceQuadrisectionDeterministic(t *testing.T) {
	nl := testNetlist(t, 250, 8)
	fx, fy := padCoords(nl, 64, 64)
	var ref *place.Placement
	for _, workers := range []int{1, 4} {
		pl, err := place.Place(nl.H, place.Config{
			Width: 64, Height: 64, FixedX: fx, FixedY: fy,
			Workers: workers, Quadrisection: true,
		}, rand.New(rand.NewPCG(10, 10)))
		if err != nil {
			t.Fatalf("Place workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = pl
			continue
		}
		for v := 0; v < nl.H.NumVertices(); v++ {
			if pl.X[v] != ref.X[v] || pl.Y[v] != ref.Y[v] {
				t.Fatalf("workers=4: vertex %d diverges from workers=1", v)
			}
		}
	}
}

// TestPlaceObjectiveKM1 runs the placer with the connectivity objective on
// its 4-way quadrisection splits (where cut and km1 genuinely differ) and
// checks the placement is valid, sane on wirelength, and deterministic
// against itself.
func TestPlaceObjectiveKM1(t *testing.T) {
	nl := testNetlist(t, 400, 7)
	fx, fy := padCoords(nl, 100, 100)
	cfg := place.Config{
		Width: 100, Height: 100, FixedX: fx, FixedY: fy,
		Quadrisection: true,
		ML:            multilevel.Config{Objective: fm.ObjectiveKM1},
	}
	km1, err := place.Place(nl.H, cfg, rand.New(rand.NewPCG(7, 7)))
	if err != nil {
		t.Fatalf("Place km1: %v", err)
	}
	for v := 0; v < nl.H.NumVertices(); v++ {
		if km1.X[v] < 0 || km1.X[v] > 100 || km1.Y[v] < 0 || km1.Y[v] > 100 {
			t.Fatalf("vertex %d at (%.1f,%.1f) outside chip", v, km1.X[v], km1.Y[v])
		}
		if nl.H.IsPad(v) && (km1.X[v] != fx[v] || km1.Y[v] != fy[v]) {
			t.Errorf("pad %d moved", v)
		}
	}
	cutCfg := cfg
	cutCfg.ML.Objective = fm.ObjectiveCut
	cut, err := place.Place(nl.H, cutCfg, rand.New(rand.NewPCG(7, 7)))
	if err != nil {
		t.Fatalf("Place cut: %v", err)
	}
	kh, ch := km1.HPWL(), cut.HPWL()
	t.Logf("HPWL: km1-objective %.0f, cut-objective %.0f", kh, ch)
	if kh > 1.5*ch {
		t.Errorf("km1-objective HPWL %.0f more than 1.5x cut-objective's %.0f", kh, ch)
	}
	again, err := place.Place(nl.H, cfg, rand.New(rand.NewPCG(7, 7)))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < nl.H.NumVertices(); v++ {
		if km1.X[v] != again.X[v] || km1.Y[v] != again.Y[v] {
			t.Fatalf("km1 placement not reproducible at vertex %d", v)
		}
	}
}
