package place_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/gen"
	"repro/internal/place"
)

func BenchmarkPlace(b *testing.B) {
	pr, err := gen.PresetByName("IBM01S")
	if err != nil {
		b.Fatal(err)
	}
	nl, err := gen.Generate(pr.Params.Scaled(0.1))
	if err != nil {
		b.Fatal(err)
	}
	nv := nl.H.NumVertices()
	fx := make([]float64, nv)
	fy := make([]float64, nv)
	for v := 0; v < nv; v++ {
		if nl.H.IsPad(v) {
			fx[v] = float64(nl.CellX[v])
			fy[v] = float64(nl.CellY[v])
		} else {
			fx[v], fy[v] = math.NaN(), math.NaN()
		}
	}
	rng := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := place.Place(nl.H, place.Config{
			Width: float64(nl.GridSide), Height: float64(nl.GridSide),
			FixedX: fx, FixedY: fy,
		}, rng); err != nil {
			b.Fatal(err)
		}
	}
}
