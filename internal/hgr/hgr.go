package hgr

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/hypergraph"
)

// Limits bounds what a reader will accept before it starts allocating.
// A zero field selects the package default. The checks run against the
// header's *declared* sizes and against the running pin count, so a hostile
// file is rejected before its claims translate into memory.
type Limits struct {
	// MaxVertices caps the declared vertex count (default 50,000,000).
	MaxVertices int
	// MaxNets caps the declared net count (default 50,000,000).
	MaxNets int
	// MaxPins caps the total number of pins actually parsed
	// (default 500,000,000).
	MaxPins int
}

// Package defaults for Limits' zero fields: sized for the largest public
// benchmark instances with an order of magnitude to spare, small enough that
// a forged header cannot provoke a multi-terabyte allocation.
const (
	DefaultMaxVertices = 50_000_000
	DefaultMaxNets     = 50_000_000
	DefaultMaxPins     = 500_000_000
)

func (l Limits) withDefaults() Limits {
	if l.MaxVertices <= 0 {
		l.MaxVertices = DefaultMaxVertices
	}
	if l.MaxNets <= 0 {
		l.MaxNets = DefaultMaxNets
	}
	if l.MaxPins <= 0 {
		l.MaxPins = DefaultMaxPins
	}
	return l
}

// LimitError reports an input rejected because its size exceeds the
// configured Limits — well-formed but too large, as opposed to malformed.
// Servers map it to 413 rather than 400.
type LimitError struct{ msg string }

func (e *LimitError) Error() string { return e.msg }

func limitErrf(format string, args ...any) error {
	return &LimitError{msg: fmt.Sprintf(format, args...)}
}

// ReadHGR parses an hMetis .hgr hypergraph with the package-default Limits.
// See ReadHGRLimits.
func ReadHGR(r io.Reader) (*hypergraph.Hypergraph, error) {
	return ReadHGRLimits(r, Limits{})
}

// ReadHGRLimits parses an hMetis .hgr hypergraph:
//
//	<numNets> <numVertices> [fmt]
//	<net line: [weight] pin pin ...>     (numNets lines, pins 1-based)
//	<vertex weight>                      (numVertices lines, fmt 10/11 only)
//
// fmt is 0 (unweighted, may be omitted), 1 (net weights lead each net line),
// 10 (vertex weights follow the nets) or 11 (both). '%' starts a comment;
// blank lines are ignored. All weights must be >= 1 (hMetis semantics —
// degenerate zero or negative weights are rejected, not clamped).
//
// Deviations from strictness, both inherited from how public suites actually
// look: duplicate pins within a net are dropped, and single-pin nets (which
// can never be cut) are dropped entirely, shifting the ids of later nets
// down.
//
// Every parse error is line-numbered with a stable message prefix
// (FORMATS.md tabulates the full taxonomy); size rejections are *LimitError.
func ReadHGRLimits(r io.Reader, lim Limits) (*hypergraph.Hypergraph, error) {
	lim = lim.withDefaults()
	lx := newLexer(r, "hgr")

	first, err := lx.next()
	if err == io.EOF {
		return nil, fmt.Errorf("hgr: missing header")
	}
	if err != nil {
		return nil, err
	}
	header := []token{first}
	for {
		t, ok, err := lx.sameLine(first.line)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		header = append(header, t)
	}
	if len(header) < 2 || len(header) > 3 {
		return nil, lx.errf(first.line, "malformed header: want \"nets vertices [fmt]\", got %d fields", len(header))
	}
	numNets, err := parseCount(lx, header[0], "net count")
	if err != nil {
		return nil, err
	}
	numVerts, err := parseCount(lx, header[1], "vertex count")
	if err != nil {
		return nil, err
	}
	netWeighted, vertWeighted := false, false
	if len(header) == 3 {
		switch header[2].text {
		case "0":
		case "1":
			netWeighted = true
		case "10":
			vertWeighted = true
		case "11":
			netWeighted, vertWeighted = true, true
		default:
			return nil, lx.errf(header[2].line, "unsupported fmt code %q (want 0, 1, 10 or 11)", header[2].text)
		}
	}
	if numVerts < 1 {
		return nil, lx.errf(first.line, "malformed header: %d vertices (need at least 1)", numVerts)
	}
	if numVerts > lim.MaxVertices {
		return nil, limitErrf("hgr: header declares %d vertices, limit %d", numVerts, lim.MaxVertices)
	}
	if numNets > lim.MaxNets {
		return nil, limitErrf("hgr: header declares %d nets, limit %d", numNets, lim.MaxNets)
	}

	b := hypergraph.NewBuilder(1)
	b.DedupPins = true
	b.DropSingletons = true
	for v := 0; v < numVerts; v++ {
		b.AddVertex(1)
	}

	pins := make([]int, 0, 16)
	totalPins := 0
	var totalNetWeight int64
	for e := 0; e < numNets; e++ {
		t, err := lx.next()
		if err == io.EOF {
			return nil, fmt.Errorf("hgr: truncated file: %d of %d net lines", e, numNets)
		}
		if err != nil {
			return nil, err
		}
		line := t.line
		weight := int64(1)
		pins = pins[:0]
		if netWeighted {
			weight, err = parseWeight(lx, t, "net weight")
			if err != nil {
				return nil, err
			}
			if totalNetWeight > math.MaxInt64-weight {
				return nil, lx.errf(line, "total net weight overflows int64")
			}
			totalNetWeight += weight
		} else {
			v, err := parsePin(lx, t, numVerts)
			if err != nil {
				return nil, err
			}
			pins = append(pins, v)
		}
		for {
			t, ok, err := lx.sameLine(line)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			v, err := parsePin(lx, t, numVerts)
			if err != nil {
				return nil, err
			}
			if totalPins+len(pins) >= lim.MaxPins {
				return nil, limitErrf("hgr: line %d: pin count exceeds limit %d", line, lim.MaxPins)
			}
			pins = append(pins, v)
		}
		if len(pins) == 0 {
			return nil, lx.errf(line, "net %d has no pins", e)
		}
		totalPins += len(pins)
		b.AddWeightedNet(weight, pins...)
	}

	if vertWeighted {
		var total int64
		prevLine := -1
		for v := 0; v < numVerts; v++ {
			t, err := lx.next()
			if err == io.EOF {
				return nil, fmt.Errorf("hgr: truncated file: %d of %d vertex weight lines", v, numVerts)
			}
			if err != nil {
				return nil, err
			}
			if t.line == prevLine {
				return nil, lx.errf(t.line, "vertex weight line has trailing fields")
			}
			prevLine = t.line
			w, err := parseWeight(lx, t, "vertex weight")
			if err != nil {
				return nil, err
			}
			if total > math.MaxInt64-w {
				return nil, lx.errf(t.line, "total vertex weight overflows int64")
			}
			total += w
			b.SetWeight(v, 0, w)
		}
	}

	if t, err := lx.next(); err == nil {
		return nil, lx.errf(t.line, "unexpected trailing line")
	} else if err != io.EOF {
		return nil, err
	}

	h, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("hgr: %w", err)
	}
	return h, nil
}

// parseCount parses a nonnegative header count.
func parseCount(lx *lexer, t token, what string) (int, error) {
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil || n < 0 || n > math.MaxInt32 {
		return 0, lx.errf(t.line, "malformed header: bad %s %q", what, t.text)
	}
	return int(n), nil
}

// parseWeight parses a net or vertex weight, enforcing the hMetis >= 1 rule.
func parseWeight(lx *lexer, t token, what string) (int64, error) {
	w, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, lx.errf(t.line, "bad %s %q", what, t.text)
	}
	if w < 1 {
		return 0, lx.errf(t.line, "bad %s %d (must be >= 1)", what, w)
	}
	return w, nil
}

// parsePin parses a 1-based pin index and returns it 0-based.
func parsePin(lx *lexer, t token, numVerts int) (int, error) {
	v, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, lx.errf(t.line, "bad pin %q", t.text)
	}
	if v < 1 || v > int64(numVerts) {
		return 0, lx.errf(t.line, "pin %d outside [1, %d]", v, numVerts)
	}
	return int(v - 1), nil
}

// WriteHGR writes h as an hMetis .hgr file, choosing the narrowest fmt code
// that represents it: net weights are emitted only when some net weight
// differs from 1, vertex weights only when some vertex weight differs from 1.
//
// .hgr carries strictly less than a Hypergraph: names and pad flags have no
// encoding and are silently dropped. Multi-resource weights and zero-weight
// vertices in a weighted graph cannot be represented at all and are rejected
// (hMetis weights are >= 1), so writers of pad-bearing netlists should
// expect the round trip to lose the pad marks — structure, pins and weights
// survive bit for bit.
func WriteHGR(w io.Writer, h *hypergraph.Hypergraph) error {
	if h.NumResources() != 1 {
		return fmt.Errorf("hgr: cannot write %d-resource hypergraph as .hgr (one weight per vertex)", h.NumResources())
	}
	netWeighted, vertWeighted := false, false
	for e := 0; e < h.NumNets(); e++ {
		if h.NetWeight(e) != 1 {
			netWeighted = true
			break
		}
	}
	for v := 0; v < h.NumVertices(); v++ {
		if h.Weight(v) != 1 {
			vertWeighted = true
			break
		}
	}
	if vertWeighted {
		for v := 0; v < h.NumVertices(); v++ {
			if h.Weight(v) < 1 {
				return fmt.Errorf("hgr: vertex %d has weight %d, not representable in .hgr (weights must be >= 1)", v, h.Weight(v))
			}
		}
	}
	if netWeighted {
		for e := 0; e < h.NumNets(); e++ {
			if h.NetWeight(e) < 1 {
				return fmt.Errorf("hgr: net %d has weight %d, not representable in .hgr (weights must be >= 1)", e, h.NetWeight(e))
			}
		}
	}

	bw := bufio.NewWriter(w)
	switch {
	case netWeighted && vertWeighted:
		fmt.Fprintf(bw, "%d %d 11\n", h.NumNets(), h.NumVertices())
	case vertWeighted:
		fmt.Fprintf(bw, "%d %d 10\n", h.NumNets(), h.NumVertices())
	case netWeighted:
		fmt.Fprintf(bw, "%d %d 1\n", h.NumNets(), h.NumVertices())
	default:
		fmt.Fprintf(bw, "%d %d\n", h.NumNets(), h.NumVertices())
	}
	for e := 0; e < h.NumNets(); e++ {
		if netWeighted {
			fmt.Fprintf(bw, "%d", h.NetWeight(e))
			for _, v := range h.Pins(e) {
				fmt.Fprintf(bw, " %d", v+1)
			}
		} else {
			for i, v := range h.Pins(e) {
				if i > 0 {
					fmt.Fprintf(bw, " %d", v+1)
				} else {
					fmt.Fprintf(bw, "%d", v+1)
				}
			}
		}
		fmt.Fprintln(bw)
	}
	if vertWeighted {
		for v := 0; v < h.NumVertices(); v++ {
			fmt.Fprintf(bw, "%d\n", h.Weight(v))
		}
	}
	return bw.Flush()
}
