package hgr

import (
	"bufio"
	"fmt"
	"io"
)

// maxTokenLen bounds a single token. The longest legitimate token in any of
// this package's formats is a signed 64-bit integer (20 digits); anything
// longer is hostile input and is rejected before it can grow the buffer.
const maxTokenLen = 32

// token is one whitespace-delimited field together with the 1-based line it
// appeared on. Line numbers group tokens into records: .hgr nets and vertex
// weights, .fix and partition-file entries are all line-based.
type token struct {
	text string
	line int
}

// lexer streams whitespace-separated tokens from r with '%'-comment
// stripping (the hMetis convention: '%' runs to end of line) and line
// accounting. It reads byte by byte through a bufio.Reader and never buffers
// more than one token, so memory stays constant regardless of line length —
// the property that makes the parsers safe on adversarial input.
type lexer struct {
	r      *bufio.Reader
	prefix string // error prefix: "hgr", "fix" or "parts"
	line   int    // line the read head is on (1-based)
	held   *token // one-token lookahead for peek
	buf    []byte
}

func newLexer(r io.Reader, prefix string) *lexer {
	return &lexer{r: bufio.NewReaderSize(r, 64*1024), prefix: prefix, line: 1, buf: make([]byte, 0, maxTokenLen)}
}

// errf formats a line-numbered parse error: "<prefix>: line <n>: <msg>".
func (lx *lexer) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s: line %d: %s", lx.prefix, line, fmt.Sprintf(format, args...))
}

// next returns the next token, skipping whitespace, blank lines and
// comments. It returns io.EOF when the input is exhausted and a *token too
// long* parse error for tokens over maxTokenLen.
func (lx *lexer) next() (token, error) {
	if lx.held != nil {
		t := *lx.held
		lx.held = nil
		return t, nil
	}
	inComment := false
	for {
		b, err := lx.r.ReadByte()
		if err != nil {
			if err == io.EOF {
				return token{}, io.EOF
			}
			return token{}, fmt.Errorf("%s: line %d: read: %w", lx.prefix, lx.line, err)
		}
		switch {
		case b == '\n':
			lx.line++
			inComment = false
		case inComment:
		case b == '%':
			inComment = true
		case b == ' ' || b == '\t' || b == '\r' || b == '\v' || b == '\f':
		default:
			return lx.readToken(b)
		}
	}
}

// readToken accumulates a token whose first byte has already been consumed.
func (lx *lexer) readToken(first byte) (token, error) {
	lx.buf = append(lx.buf[:0], first)
	startLine := lx.line
	for {
		c, err := lx.r.ReadByte()
		if err != nil {
			if err == io.EOF {
				break
			}
			return token{}, fmt.Errorf("%s: line %d: read: %w", lx.prefix, lx.line, err)
		}
		if c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f' || c == '\n' || c == '%' {
			_ = lx.r.UnreadByte()
			break
		}
		if len(lx.buf) >= maxTokenLen {
			return token{}, lx.errf(startLine, "token too long (over %d bytes)", maxTokenLen)
		}
		lx.buf = append(lx.buf, c)
	}
	return token{text: string(lx.buf), line: startLine}, nil
}

// peek returns the next token without consuming it.
func (lx *lexer) peek() (token, error) {
	if lx.held != nil {
		return *lx.held, nil
	}
	t, err := lx.next()
	if err != nil {
		return token{}, err
	}
	lx.held = &t
	return t, nil
}

// sameLine reports whether another token follows on line `line` and, if so,
// consumes and returns it.
func (lx *lexer) sameLine(line int) (token, bool, error) {
	t, err := lx.peek()
	if err != nil || t.line != line {
		if err == io.EOF {
			err = nil
		}
		return token{}, false, err
	}
	lx.held = nil
	return t, true, nil
}
