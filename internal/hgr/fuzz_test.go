package hgr

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/partition"
)

// FuzzHGR drives the .hgr parser with arbitrary bytes under small limits.
// The invariants: never panic, never allocate past the limits, and any
// successfully parsed hypergraph survives a write/re-read round trip with an
// identical fingerprint.
func FuzzHGR(f *testing.F) {
	f.Add([]byte(hgrFmt0))
	f.Add([]byte(hgrFmt1))
	f.Add([]byte(hgrFmt10))
	f.Add([]byte(hgrFmt11))
	f.Add([]byte("% comment\n2 3\n1 2\n2 3\n"))
	f.Add([]byte("1 1\n"))
	f.Add([]byte("9999999999 9999999999 11\n"))
	f.Add([]byte("2 3 1\n9223372036854775807 1 2\n9223372036854775807 2 3\n"))
	lim := Limits{MaxVertices: 1 << 16, MaxNets: 1 << 16, MaxPins: 1 << 18}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ReadHGRLimits(bytes.NewReader(data), lim)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteHGR(&buf, h); err != nil {
			t.Fatalf("WriteHGR of parsed graph: %v", err)
		}
		h2, err := ReadHGRLimits(bytes.NewReader(buf.Bytes()), lim)
		if err != nil {
			t.Fatalf("re-read of written graph: %v\n%s", err, buf.String())
		}
		if h.Fingerprint() != h2.Fingerprint() {
			t.Fatalf("round trip changed fingerprint %016x -> %016x", h.Fingerprint(), h2.Fingerprint())
		}
	})
}

// FuzzFix drives the .fix parser with arbitrary bytes. Successfully parsed
// mask sets must be exactly numVerts long with every mask a nonempty subset
// of the k parts.
func FuzzFix(f *testing.F) {
	f.Add([]byte("-1\n2\n-1\n0 3\n0\n"), 5, 4)
	f.Add([]byte(strings.Repeat("-1\n", 7)), 7, 2)
	f.Add([]byte("0 1 2 3\n"), 1, 4)
	f.Add([]byte("% comment\n63\n"), 1, 64)
	f.Fuzz(func(t *testing.T, data []byte, numVerts, k int) {
		if numVerts < 0 || numVerts > 1<<12 {
			return
		}
		masks, err := ReadFix(bytes.NewReader(data), numVerts, k)
		if err != nil {
			return
		}
		if len(masks) != numVerts {
			t.Fatalf("got %d masks for %d vertices", len(masks), numVerts)
		}
		for v, m := range masks {
			if m == 0 {
				t.Fatalf("vertex %d: empty mask", v)
			}
			if m&^partition.AllParts(k) != 0 {
				t.Fatalf("vertex %d: mask %b has bits outside the %d parts", v, m, k)
			}
		}
	})
}
