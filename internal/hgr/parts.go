package hgr

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"repro/internal/partition"
)

// WriteParts writes an assignment in the partition-file format the
// hMetis/KaHyPar family emits and placement flows read back: one part id per
// line, in vertex order.
func WriteParts(w io.Writer, a partition.Assignment) error {
	bw := bufio.NewWriter(w)
	for _, part := range a {
		fmt.Fprintf(bw, "%d\n", part)
	}
	return bw.Flush()
}

// ReadParts parses a partition file back into an assignment over numVerts
// vertices of a k-way problem. Conventionally one part id per line; any
// whitespace separation is accepted, '%' comments and blank lines are
// ignored, and the entry count must equal numVerts exactly.
func ReadParts(r io.Reader, numVerts, k int) (partition.Assignment, error) {
	if k < 2 || k > partition.MaxParts {
		return nil, fmt.Errorf("parts: k = %d outside [2, %d]", k, partition.MaxParts)
	}
	lx := newLexer(r, "parts")
	a := make(partition.Assignment, numVerts)
	v := 0
	for {
		t, err := lx.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if v >= numVerts {
			return nil, lx.errf(t.line, "more part entries than the %d vertices", numVerts)
		}
		p, perr := strconv.Atoi(t.text)
		if perr != nil {
			return nil, lx.errf(t.line, "bad part id %q", t.text)
		}
		if p < 0 || p >= k {
			return nil, lx.errf(t.line, "part %d outside [0, %d)", p, k)
		}
		a[v] = int8(p)
		v++
	}
	if v < numVerts {
		return nil, fmt.Errorf("parts: file lists %d of %d part entries", v, numVerts)
	}
	return a, nil
}
