package hgr

import (
	"fmt"
	"io"

	"repro/internal/partition"
)

// ReadProblem reads an .hgr netlist plus an optional fixed-vertex file
// (fixR may be nil) into a validated k-way Problem with a uniform balance
// tolerance of tol, using the package-default Limits. See ReadProblemLimits.
func ReadProblem(hgrR, fixR io.Reader, k int, tol float64) (*partition.Problem, error) {
	return ReadProblemLimits(hgrR, fixR, k, tol, Limits{})
}

// ReadProblemLimits assembles a partitioning instance from the exchange
// formats: the hypergraph from hgrR, constraints from fixR (nil for a free
// instance), k parts, uniform balance tolerance tol. The result has passed
// both Problem.Validate and CheckFeasible — structurally impossible inputs
// (a vertex heavier than every part it may occupy, fixed vertices that
// overfill a part) are rejected here, at ingestion, rather than surfacing as
// an unexplained mid-solve failure.
//
// A fix file whose every line is -1 yields the same Problem (and the same
// Problem.Fingerprint) as no fix file at all, so constraint-free instances
// are identical however they were posed.
func ReadProblemLimits(hgrR, fixR io.Reader, k int, tol float64, lim Limits) (*partition.Problem, error) {
	h, err := ReadHGRLimits(hgrR, lim)
	if err != nil {
		return nil, err
	}
	p := partition.NewFree(h, k, tol)
	if fixR != nil {
		masks, err := ReadFix(fixR, h.NumVertices(), k)
		if err != nil {
			return nil, err
		}
		// Normalize the all-free case to a nil mask slice so a trivial fix
		// file cannot change the problem's fingerprint.
		all := partition.AllParts(k)
		for _, m := range masks {
			if m != all {
				p.Allowed = masks
				break
			}
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := CheckFeasible(p); err != nil {
		return nil, err
	}
	return p, nil
}

// CheckFeasible diagnoses structural balance infeasibility that
// Problem.Validate (which only checks dimensional consistency and aggregate
// capacity) does not: a vertex too heavy for every part its mask allows, or
// fixed vertices whose combined weight overfills a part. Solvers fed such an
// instance fail eventually and obscurely — a random start that never
// admits, an FM pass with no feasible move — so the ingestion path rejects
// them up front with an error naming the offending vertex or part.
//
// A nil error does not promise a feasible assignment exists (that decision
// is NP-hard in general); it rules out the single-vertex and single-part
// certificates of infeasibility that heavy-vertex inputs actually exhibit in
// the wild.
func CheckFeasible(p *partition.Problem) error {
	nr := p.H.NumResources()
	for v := 0; v < p.H.NumVertices(); v++ {
		mask := p.MaskOf(v)
		fits := false
		for q := 0; q < p.K && !fits; q++ {
			if !mask.Contains(q) {
				continue
			}
			fits = true
			for r := 0; r < nr; r++ {
				if p.H.WeightIn(v, r) > p.Balance.Max[q][r] {
					fits = false
					break
				}
			}
		}
		if !fits {
			return fmt.Errorf("hgr: vertex %d (weight %d) exceeds the capacity of every part its mask %b allows — balance infeasible",
				v, p.H.Weight(v), uint64(mask&partition.AllParts(p.K)))
		}
	}
	fixed := make([][]int64, p.K)
	for q := range fixed {
		fixed[q] = make([]int64, nr)
	}
	for v := 0; v < p.H.NumVertices(); v++ {
		q, ok := p.FixedPart(v)
		if !ok {
			continue
		}
		for r := 0; r < nr; r++ {
			fixed[q][r] += p.H.WeightIn(v, r)
			if fixed[q][r] > p.Balance.Max[q][r] {
				return fmt.Errorf("hgr: fixed vertices overfill part %d: weight %d exceeds capacity %d in resource %d — balance infeasible",
					q, fixed[q][r], p.Balance.Max[q][r], r)
			}
		}
	}
	return nil
}
