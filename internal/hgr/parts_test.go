package hgr

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/partition"
)

func TestPartsRoundTrip(t *testing.T) {
	a := partition.Assignment{0, 2, 1, 1, 3, 0}
	var buf bytes.Buffer
	if err := WriteParts(&buf, a); err != nil {
		t.Fatalf("WriteParts: %v", err)
	}
	if buf.String() != "0\n2\n1\n1\n3\n0\n" {
		t.Fatalf("WriteParts produced %q", buf.String())
	}
	got, err := ReadParts(bytes.NewReader(buf.Bytes()), len(a), 4)
	if err != nil {
		t.Fatalf("ReadParts: %v", err)
	}
	for v := range a {
		if got[v] != a[v] {
			t.Fatalf("vertex %d: round trip part %d, want %d", v, got[v], a[v])
		}
	}
}

func TestReadPartsErrors(t *testing.T) {
	cases := []struct{ name, in, wantPrefix string }{
		{"bad part id", "x\n0\n1\n", `parts: line 1: bad part id "x"`},
		{"part out of range", "0\n4\n1\n", "parts: line 2: part 4 outside [0, 4)"},
		{"negative part", "-1\n0\n1\n", "parts: line 1: part -1 outside [0, 4)"},
		{"too many entries", "0\n1\n2\n3\n", "parts: line 4: more part entries than the 3 vertices"},
		{"truncated", "0\n1\n", "parts: file lists 2 of 3 part entries"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadParts(strings.NewReader(tc.in), 3, 4)
			if err == nil {
				t.Fatalf("ReadParts accepted %q", tc.in)
			}
			if !strings.HasPrefix(err.Error(), tc.wantPrefix) {
				t.Fatalf("error = %q, want prefix %q", err, tc.wantPrefix)
			}
		})
	}
	if _, err := ReadParts(strings.NewReader("0\n"), 1, 65); err == nil ||
		!strings.HasPrefix(err.Error(), "parts: k = 65 outside [2, 64]") {
		t.Fatalf("ReadParts(k=65) = %v, want k-range error", err)
	}
}
