package hgr

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"repro/internal/partition"
)

// ReadFix parses a KaHyPar-style fixed-vertex file into per-vertex
// allowed-parts masks for a k-way problem over numVerts vertices. The file
// has one line per vertex, in vertex order:
//
//	-1           the vertex is free
//	p            the vertex is fixed to part p (0 <= p < k)
//	p q ...      OR-region extension: the vertex may take any listed part
//
// The multi-part form is this repository's extension for the source paper's
// OR-region terminals; plain KaHyPar files (single value per line) parse
// unchanged, and WriteFix emits the single-value form whenever no OR-region
// mask is present. '%' starts a comment; blank lines are ignored (vertex
// association is by data-line count, not physical line number).
//
// Every parse error carries a stable line-numbered message prefix; see
// FORMATS.md for the taxonomy.
func ReadFix(r io.Reader, numVerts, k int) ([]partition.Mask, error) {
	if k < 2 || k > partition.MaxParts {
		return nil, fmt.Errorf("fix: k = %d outside [2, %d]", k, partition.MaxParts)
	}
	lx := newLexer(r, "fix")
	masks := make([]partition.Mask, numVerts)
	all := partition.AllParts(k)
	for i := range masks {
		masks[i] = all
	}
	v := 0
	for {
		t, err := lx.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if v >= numVerts {
			return nil, lx.errf(t.line, "more vertex lines than the %d vertices", numVerts)
		}
		line := t.line
		free := t.text == "-1"
		var m partition.Mask
		if !free {
			m, err = parseFixPart(lx, t, k, m)
			if err != nil {
				return nil, err
			}
		}
		for {
			t, ok, err := lx.sameLine(line)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			if free || t.text == "-1" {
				return nil, lx.errf(t.line, "-1 must stand alone on its line")
			}
			m, err = parseFixPart(lx, t, k, m)
			if err != nil {
				return nil, err
			}
		}
		if free {
			m = all
		}
		masks[v] = m
		v++
	}
	if v < numVerts {
		return nil, fmt.Errorf("fix: file lists %d of %d vertex lines", v, numVerts)
	}
	return masks, nil
}

// parseFixPart folds one part id into the line's mask.
func parseFixPart(lx *lexer, t token, k int, m partition.Mask) (partition.Mask, error) {
	p, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, lx.errf(t.line, "bad part id %q", t.text)
	}
	if p < 0 || p >= k {
		return 0, lx.errf(t.line, "part %d outside [0, %d)", p, k)
	}
	if m.Contains(p) {
		return 0, lx.errf(t.line, "duplicate part %d", p)
	}
	return m.With(p), nil
}

// WriteFix writes the problem's constraints as a KaHyPar-style fixed-vertex
// file: one line per vertex, -1 for free vertices, the part id for fixed
// ones, and the space-separated allowed parts for OR-region masks (the
// repository extension — a file round-trips through ReadFix to bit-identical
// masks). Problems whose every vertex is free still emit all -1 lines, so
// the file always has exactly NumVertices lines.
func WriteFix(w io.Writer, p *partition.Problem) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < p.H.NumVertices(); v++ {
		if p.IsFree(v) {
			fmt.Fprintln(bw, -1)
			continue
		}
		for i, part := range p.MaskOf(v).Parts(p.K) {
			if i > 0 {
				fmt.Fprintf(bw, " %d", part)
			} else {
				fmt.Fprintf(bw, "%d", part)
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
