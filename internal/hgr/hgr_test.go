package hgr

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// The same four-net, seven-vertex instance in all four fmt codes. Pins are
// written 1-based in the files and checked 0-based here.
const (
	hgrFmt0 = "4 7\n1 2\n1 7 5 6\n5 6 4\n2 3 4\n"
	hgrFmt1 = "4 7 1\n2 1 2\n3 1 7 5 6\n8 5 6 4\n7 2 3 4\n"
	hgrFmt10 = "4 7 10\n1 2\n1 7 5 6\n5 6 4\n2 3 4\n" +
		"5\n1\n8\n7\n3\n9\n3\n"
	hgrFmt11 = "4 7 11\n2 1 2\n3 1 7 5 6\n8 5 6 4\n7 2 3 4\n" +
		"5\n1\n8\n7\n3\n9\n3\n"
)

var (
	goldenPins       = [][]int{{0, 1}, {0, 6, 4, 5}, {4, 5, 3}, {1, 2, 3}}
	goldenNetWeights = []int64{2, 3, 8, 7}
	goldenVertWts    = []int64{5, 1, 8, 7, 3, 9, 3}
)

func TestReadHGRGolden(t *testing.T) {
	cases := []struct {
		name         string
		in           string
		netWeighted  bool
		vertWeighted bool
	}{
		{"fmt0", hgrFmt0, false, false},
		{"fmt1", hgrFmt1, true, false},
		{"fmt10", hgrFmt10, false, true},
		{"fmt11", hgrFmt11, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, err := ReadHGR(strings.NewReader(tc.in))
			if err != nil {
				t.Fatalf("ReadHGR: %v", err)
			}
			if h.NumVertices() != 7 || h.NumNets() != 4 {
				t.Fatalf("got %d vertices, %d nets; want 7, 4", h.NumVertices(), h.NumNets())
			}
			for e, want := range goldenPins {
				got := h.Pins(e)
				if len(got) != len(want) {
					t.Fatalf("net %d: pins %v, want %v", e, got, want)
				}
				for i, v := range want {
					if int(got[i]) != v {
						t.Fatalf("net %d: pins %v, want %v", e, got, want)
					}
				}
				ew := int64(1)
				if tc.netWeighted {
					ew = goldenNetWeights[e]
				}
				if h.NetWeight(e) != ew {
					t.Fatalf("net %d weight = %d, want %d", e, h.NetWeight(e), ew)
				}
			}
			for v := 0; v < 7; v++ {
				vw := int64(1)
				if tc.vertWeighted {
					vw = goldenVertWts[v]
				}
				if h.Weight(v) != vw {
					t.Fatalf("vertex %d weight = %d, want %d", v, h.Weight(v), vw)
				}
			}
		})
	}
}

// A fmt code may be omitted entirely (equivalent to 0), comments and blank
// lines are ignored, and duplicate pins / single-pin nets are dropped rather
// than rejected — all three occur in public benchmark suites.
func TestReadHGRLenient(t *testing.T) {
	in := "% comment header\n3 4 % trailing comment\n\n1 2 1\n\n% mid comment\n3 3\n2 4\n"
	h, err := ReadHGR(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadHGR: %v", err)
	}
	// Net 0 had a duplicate pin (1 2 1 -> {0,1}); net 1 was a singleton
	// (3 3 -> {2}) and is dropped; net 2 survives as net 1.
	if h.NumNets() != 2 {
		t.Fatalf("got %d nets, want 2 (singleton dropped)", h.NumNets())
	}
	if got := h.Pins(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("net 0 pins = %v, want [0 1]", got)
	}
	if got := h.Pins(1); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("net 1 pins = %v, want [1 3]", got)
	}
}

func TestWriteHGRRoundTrip(t *testing.T) {
	for _, in := range []string{hgrFmt0, hgrFmt1, hgrFmt10, hgrFmt11} {
		h, err := ReadHGR(strings.NewReader(in))
		if err != nil {
			t.Fatalf("ReadHGR: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteHGR(&buf, h); err != nil {
			t.Fatalf("WriteHGR: %v", err)
		}
		h2, err := ReadHGR(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read written file: %v\n%s", err, buf.String())
		}
		if h.Fingerprint() != h2.Fingerprint() {
			t.Fatalf("round trip changed fingerprint %016x -> %016x\n%s",
				h.Fingerprint(), h2.Fingerprint(), buf.String())
		}
	}
}

// WriteHGR picks the narrowest fmt code that represents the instance.
func TestWriteHGRFmtSelection(t *testing.T) {
	cases := []struct{ in, wantHeader string }{
		{hgrFmt0, "4 7"},
		{hgrFmt1, "4 7 1"},
		{hgrFmt10, "4 7 10"},
		{hgrFmt11, "4 7 11"},
	}
	for _, tc := range cases {
		h, err := ReadHGR(strings.NewReader(tc.in))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteHGR(&buf, h); err != nil {
			t.Fatal(err)
		}
		first, _, _ := strings.Cut(buf.String(), "\n")
		if first != tc.wantHeader {
			t.Fatalf("header = %q, want %q", first, tc.wantHeader)
		}
	}
}

// Every documented .hgr parse-error class, asserted by message prefix. The
// prefixes are the contract FORMATS.md documents; changing one is a breaking
// change to the error taxonomy.
func TestReadHGRErrors(t *testing.T) {
	cases := []struct{ name, in, wantPrefix string }{
		{"missing header", "% only a comment\n", "hgr: missing header"},
		{"header too short", "4\n", "hgr: line 1: malformed header"},
		{"header too long", "4 7 11 9\n", "hgr: line 1: malformed header"},
		{"bad net count", "x 7\n", `hgr: line 1: malformed header: bad net count "x"`},
		{"bad vertex count", "4 -7\n", `hgr: line 1: malformed header: bad vertex count "-7"`},
		{"zero vertices", "0 0\n", "hgr: line 1: malformed header: 0 vertices"},
		{"bad fmt code", "4 7 2\n", `hgr: line 1: unsupported fmt code "2"`},
		{"truncated nets", "2 3\n1 2\n", "hgr: truncated file: 1 of 2 net lines"},
		{"bad pin", "1 3\n1 x\n", `hgr: line 2: bad pin "x"`},
		{"pin zero", "1 3\n0 1\n", "hgr: line 2: pin 0 outside [1, 3]"},
		{"pin too large", "1 3\n1 4\n", "hgr: line 2: pin 4 outside [1, 3]"},
		{"bad net weight", "1 3 1\nx 1 2\n", `hgr: line 2: bad net weight "x"`},
		{"zero net weight", "1 3 1\n0 1 2\n", "hgr: line 2: bad net weight 0 (must be >= 1)"},
		{"weighted net no pins", "1 3 1\n5\n", "hgr: line 2: net 0 has no pins"},
		{"net weight overflow", "2 3 1\n9223372036854775807 1 2\n9223372036854775807 2 3\n",
			"hgr: line 3: total net weight overflows int64"},
		{"bad vertex weight", "1 2 10\n1 2\nx\n1\n", `hgr: line 3: bad vertex weight "x"`},
		{"zero vertex weight", "1 2 10\n1 2\n0\n1\n", "hgr: line 3: bad vertex weight 0 (must be >= 1)"},
		{"vertex weight trailing fields", "1 2 10\n1 2\n1 2\n", "hgr: line 3: vertex weight line has trailing fields"},
		{"truncated vertex weights", "1 2 10\n1 2\n1\n", "hgr: truncated file: 1 of 2 vertex weight lines"},
		{"vertex weight overflow", "1 2 10\n1 2\n9223372036854775807\n9223372036854775807\n",
			"hgr: line 4: total vertex weight overflows int64"},
		{"trailing line", "1 2\n1 2\n1 2\n", "hgr: line 3: unexpected trailing line"},
		{"token too long", strings.Repeat("9", 40) + " 7\n", "hgr: line 1: token too long"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadHGR(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("ReadHGR accepted %q", tc.in)
			}
			if !strings.HasPrefix(err.Error(), tc.wantPrefix) {
				t.Fatalf("error = %q, want prefix %q", err, tc.wantPrefix)
			}
			var le *LimitError
			if errors.As(err, &le) {
				t.Fatalf("parse error %q should not be a LimitError", err)
			}
		})
	}
}

// Size rejections are *LimitError (servers map them to 413, not 400), and
// they fire against the declared header counts before anything is allocated.
func TestReadHGRLimits(t *testing.T) {
	lim := Limits{MaxVertices: 4, MaxNets: 3, MaxPins: 5}
	cases := []struct{ name, in, wantPrefix string }{
		{"vertices", "1 400000000\n1 2\n", "hgr: header declares 400000000 vertices, limit 4"},
		{"nets", "400000000 3\n", "hgr: header declares 400000000 nets, limit 3"},
		{"pins", "2 4\n1 2 3 4\n1 2 3 4\n", "hgr: line 3: pin count exceeds limit 5"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadHGRLimits(strings.NewReader(tc.in), lim)
			if err == nil {
				t.Fatal("accepted oversized input")
			}
			var le *LimitError
			if !errors.As(err, &le) {
				t.Fatalf("error %T %q is not a *LimitError", err, err)
			}
			if !strings.HasPrefix(err.Error(), tc.wantPrefix) {
				t.Fatalf("error = %q, want prefix %q", err, tc.wantPrefix)
			}
		})
	}
}

func TestWriteHGRUnrepresentable(t *testing.T) {
	h, err := ReadHGR(strings.NewReader(hgrFmt0))
	if err != nil {
		t.Fatal(err)
	}
	_ = h // multi-resource graphs cannot come out of ReadHGR; build one directly
	mr := buildMultiResource(t)
	var buf bytes.Buffer
	err = WriteHGR(&buf, mr)
	if err == nil || !strings.HasPrefix(err.Error(), "hgr: cannot write 2-resource hypergraph") {
		t.Fatalf("WriteHGR(multi-resource) = %v, want cannot-write error", err)
	}
}
