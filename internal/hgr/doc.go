// Package hgr reads and writes the hypergraph-partitioning ecosystem's
// exchange formats: hMetis .hgr netlists (plain, edge-weighted,
// vertex-weighted and both — fmt codes 0, 1, 10 and 11), KaHyPar-style
// fixed-vertex .fix files (one line per vertex: -1 for free, a part id to
// fix, several part ids as this repository's OR-region extension), and the
// partition output file hMetis-family tools emit and placement flows such as
// Coloquinte read back (one part id per line). Everything converts to and
// from the repository's own types: hypergraph.Hypergraph, partition.Mask
// slices and partition.Problem.
//
// The readers are built for hostile input. They stream byte by byte —
// memory is bounded by the configurable Limits, never by what the input
// *claims* (a multi-gigabyte net line costs one token of buffer) — and every
// rejection is a line-numbered error with a stable, documented message
// prefix (see FORMATS.md for the full error taxonomy). Structural
// infeasibility that would otherwise surface as a mid-solve failure — a
// vertex heavier than every part it may occupy, fixed vertices that overfill
// a part — is rejected up front by CheckFeasible, which ReadProblem applies
// before returning.
//
// Determinism and concurrency contract: all functions in this package are
// pure — output depends only on the bytes read and the arguments, with no
// randomness, map iteration or time dependence, so a file parses to a
// hypergraph with the same Fingerprint on every run and host. None of the
// functions retain or mutate their arguments after returning; distinct
// reader/writer calls may run concurrently. An *os.File or any other
// io.Reader may only be shared across concurrent calls if the callers
// arrange their own synchronization, as usual.
package hgr
