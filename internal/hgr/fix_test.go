package hgr

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/partition"
)

func TestReadFixGolden(t *testing.T) {
	// KaHyPar form plus the OR-region extension: vertex 0 free, 1 fixed to
	// part 2, 2 free, 3 restricted to {0, 3}, 4 fixed to 0.
	in := "% fix file\n-1\n2\n-1\n0 3\n0\n"
	masks, err := ReadFix(strings.NewReader(in), 5, 4)
	if err != nil {
		t.Fatalf("ReadFix: %v", err)
	}
	all := partition.AllParts(4)
	want := []partition.Mask{all, partition.Single(2), all, partition.Single(0) | partition.Single(3), partition.Single(0)}
	for v, m := range want {
		if masks[v] != m {
			t.Fatalf("vertex %d mask = %b, want %b", v, masks[v], m)
		}
	}
}

// WriteFix then ReadFix reproduces the masks bit for bit, including the
// OR-region extension lines.
func TestFixRoundTrip(t *testing.T) {
	h, err := ReadHGR(strings.NewReader(hgrFmt11))
	if err != nil {
		t.Fatal(err)
	}
	p := partition.NewFree(h, 4, 0.5)
	p.Fix(1, 2)
	p.Restrict(3, partition.Single(0)|partition.Single(3))
	p.Fix(6, 0)

	var buf bytes.Buffer
	if err := WriteFix(&buf, p); err != nil {
		t.Fatalf("WriteFix: %v", err)
	}
	want := "-1\n2\n-1\n0 3\n-1\n-1\n0\n"
	if buf.String() != want {
		t.Fatalf("WriteFix produced %q, want %q", buf.String(), want)
	}

	masks, err := ReadFix(bytes.NewReader(buf.Bytes()), h.NumVertices(), p.K)
	if err != nil {
		t.Fatalf("re-read: %v", err)
	}
	for v := range masks {
		if masks[v] != p.MaskOf(v) {
			t.Fatalf("vertex %d: round trip mask %b, want %b", v, masks[v], p.MaskOf(v))
		}
	}
}

// Every documented .fix parse-error class, asserted by message prefix.
func TestReadFixErrors(t *testing.T) {
	cases := []struct{ name, in, wantPrefix string }{
		{"bad part id", "x\n-1\n-1\n", `fix: line 1: bad part id "x"`},
		{"part out of range", "-1\n5\n-1\n", "fix: line 2: part 5 outside [0, 4)"},
		{"negative part", "-2\n-1\n-1\n", "fix: line 1: part -2 outside [0, 4)"},
		{"duplicate part", "0 0\n-1\n-1\n", "fix: line 1: duplicate part 0"},
		{"minus one with part", "-1 2\n-1\n-1\n", "fix: line 1: -1 must stand alone on its line"},
		{"part with minus one", "2 -1\n-1\n-1\n", "fix: line 1: -1 must stand alone on its line"},
		{"too many lines", "-1\n-1\n-1\n-1\n", "fix: line 4: more vertex lines than the 3 vertices"},
		{"truncated", "-1\n0\n", "fix: file lists 2 of 3 vertex lines"},
		{"token too long", strings.Repeat("1", 40) + "\n-1\n-1\n", "fix: line 1: token too long"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadFix(strings.NewReader(tc.in), 3, 4)
			if err == nil {
				t.Fatalf("ReadFix accepted %q", tc.in)
			}
			if !strings.HasPrefix(err.Error(), tc.wantPrefix) {
				t.Fatalf("error = %q, want prefix %q", err, tc.wantPrefix)
			}
		})
	}
	if _, err := ReadFix(strings.NewReader("-1\n"), 1, 1); err == nil ||
		!strings.HasPrefix(err.Error(), "fix: k = 1 outside [2, 64]") {
		t.Fatalf("ReadFix(k=1) = %v, want k-range error", err)
	}
}
