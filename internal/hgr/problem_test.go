package hgr

import (
	"strings"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

func buildMultiResource(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(2)
	for v := 0; v < 3; v++ {
		b.AddVertex(1)
		b.SetWeight(v, 1, 2)
	}
	b.AddWeightedNet(1, 0, 1)
	b.AddWeightedNet(1, 1, 2)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestReadProblem(t *testing.T) {
	fix := "-1\n2\n-1\n0 3\n0\n-1\n-1\n"
	p, err := ReadProblem(strings.NewReader(hgrFmt11), strings.NewReader(fix), 4, 0.5)
	if err != nil {
		t.Fatalf("ReadProblem: %v", err)
	}
	if p.K != 4 || p.H.NumVertices() != 7 {
		t.Fatalf("K = %d, vertices = %d; want 4, 7", p.K, p.H.NumVertices())
	}
	if q, ok := p.FixedPart(1); !ok || q != 2 {
		t.Fatalf("vertex 1 fixed part = %d, %v; want 2, true", q, ok)
	}
	if m := p.MaskOf(3); m != partition.Single(0)|partition.Single(3) {
		t.Fatalf("vertex 3 mask = %b, want OR-region {0,3}", m)
	}
	if !p.IsFree(0) || !p.IsFree(2) {
		t.Fatal("vertices 0 and 2 should be free")
	}
}

// A fix file that constrains nothing must not change the problem — it yields
// the same fingerprint as no fix file, so JSON uploads (Allowed == nil) and
// .hgr uploads of constraint-free instances share a cache entry downstream.
func TestReadProblemAllFreeFingerprint(t *testing.T) {
	free, err := ReadProblem(strings.NewReader(hgrFmt11), nil, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	trivial, err := ReadProblem(strings.NewReader(hgrFmt11),
		strings.NewReader(strings.Repeat("-1\n", 7)), 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if trivial.Allowed != nil {
		t.Fatal("all-free fix file should normalize Allowed to nil")
	}
	if free.Fingerprint() != trivial.Fingerprint() {
		t.Fatalf("fingerprints differ: %016x vs %016x", free.Fingerprint(), trivial.Fingerprint())
	}
	constrained, err := ReadProblem(strings.NewReader(hgrFmt11),
		strings.NewReader("0\n"+strings.Repeat("-1\n", 6)), 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if constrained.Fingerprint() == free.Fingerprint() {
		t.Fatal("a real constraint must change the fingerprint")
	}
}

// A vertex heavier than every part it may occupy is rejected at ingestion
// with a diagnosable error, not left to fail mid-solve.
func TestCheckFeasibleHeavyVertex(t *testing.T) {
	// Vertex 1 carries 100 of the 103 total weight; with k=2 and tol=0.1
	// each part caps out well below 100.
	in := "2 3 10\n1 2\n2 3\n1\n100\n2\n"
	_, err := ReadProblem(strings.NewReader(in), nil, 2, 0.1)
	if err == nil {
		t.Fatal("ReadProblem accepted a balance-infeasible heavy vertex")
	}
	if !strings.HasPrefix(err.Error(), "hgr: vertex 1 (weight 100) exceeds the capacity of every part") {
		t.Fatalf("error = %q, want heavy-vertex prefix", err)
	}
	// The same weights are fine with a tolerance that admits the vertex.
	if _, err := ReadProblem(strings.NewReader(in), nil, 2, 1.0); err != nil {
		t.Fatalf("ReadProblem with loose tolerance: %v", err)
	}
}

// Fixed vertices whose combined weight overfills their part are rejected even
// when each vertex fits on its own.
func TestCheckFeasibleFixedOverfill(t *testing.T) {
	in := "2 4 10\n1 2\n3 4\n40\n40\n40\n40\n"
	fix := "0\n0\n0\n-1\n"
	_, err := ReadProblem(strings.NewReader(in), strings.NewReader(fix), 2, 0.1)
	if err == nil {
		t.Fatal("ReadProblem accepted overfilled fixed part")
	}
	if !strings.HasPrefix(err.Error(), "hgr: fixed vertices overfill part 0") {
		t.Fatalf("error = %q, want overfill prefix", err)
	}
	// The same fix file is feasible when spread across both parts.
	ok := "0\n1\n0\n-1\n"
	if _, err := ReadProblem(strings.NewReader(in), strings.NewReader(ok), 2, 0.1); err != nil {
		t.Fatalf("ReadProblem with balanced fix: %v", err)
	}
}

// Errors from either underlying reader pass through with their own prefixes.
func TestReadProblemPropagatesParseErrors(t *testing.T) {
	_, err := ReadProblem(strings.NewReader("1 2\n1 x\n"), nil, 2, 0.1)
	if err == nil || !strings.HasPrefix(err.Error(), `hgr: line 2: bad pin "x"`) {
		t.Fatalf("hgr error = %v, want bad-pin prefix", err)
	}
	_, err = ReadProblem(strings.NewReader(hgrFmt0), strings.NewReader("9\n"), 2, 0.1)
	if err == nil || !strings.HasPrefix(err.Error(), "fix: line 1: part 9 outside [0, 2)") {
		t.Fatalf("fix error = %v, want part-range prefix", err)
	}
}
