package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPartitionObjectiveEcho: the effective objective is echoed in the
// response (defaulting to cut), and every response reports cut, km1 and soed
// with the documented identity soed = cut + km1.
func TestPartitionObjectiveEcho(t *testing.T) {
	s := New(Config{})
	_, def := post(t, s.Handler(), presetBody(""))
	if def == nil {
		t.Fatal("default request failed")
	}
	if def.Objective != "cut" {
		t.Errorf("default objective %q, want cut", def.Objective)
	}
	_, km1 := post(t, s.Handler(), presetBody(`"objective":"km1"`))
	if km1 == nil {
		t.Fatal("km1 request failed")
	}
	if km1.Objective != "km1" {
		t.Errorf("objective %q, want km1", km1.Objective)
	}
	for _, resp := range []*Response{def, km1} {
		if resp.SOED != resp.Cut+resp.KMinus1 {
			t.Errorf("objective %s: soed %d != cut %d + km1 %d", resp.Objective, resp.SOED, resp.Cut, resp.KMinus1)
		}
		// k = 2: every net spans at most 2 parts, so km1 == cut.
		if resp.KMinus1 != resp.Cut {
			t.Errorf("objective %s: k=2 km1 %d != cut %d", resp.Objective, resp.KMinus1, resp.Cut)
		}
	}
}

// TestPartitionObjectiveCacheSeparation: cut and km1 requests must not share
// hierarchy-cache entries — the objective is part of the cache key.
func TestPartitionObjectiveCacheSeparation(t *testing.T) {
	s := New(Config{})
	_, cut := post(t, s.Handler(), presetBody(`"objective":"cut"`))
	_, km1 := post(t, s.Handler(), presetBody(`"objective":"km1"`))
	if cut == nil || km1 == nil {
		t.Fatal("request failed")
	}
	if cut.Cache != "miss" || km1.Cache != "miss" {
		t.Errorf("cache kinds %q/%q, want miss/miss (objectives must not share entries)", cut.Cache, km1.Cache)
	}
	st := s.cache.stats()
	if st.Misses != 2 || st.Hits != 0 {
		t.Errorf("cache stats misses=%d hits=%d, want 2/0", st.Misses, st.Hits)
	}
	// A repeated km1 request hits its own entry.
	_, warm := post(t, s.Handler(), presetBody(`"objective":"km1"`))
	if warm == nil || warm.Cache != "hit" {
		t.Fatalf("repeated km1 request cache=%v, want hit", warm)
	}
	if warm.Cut != km1.Cut || warm.KMinus1 != km1.KMinus1 {
		t.Errorf("warm km1 answer (cut %d, km1 %d) != cold (cut %d, km1 %d)",
			warm.Cut, warm.KMinus1, km1.Cut, km1.KMinus1)
	}
	// An explicit "cut" body and an absent objective share one entry: both
	// resolve to the same effective objective and therefore the same key.
	_, absent := post(t, s.Handler(), presetBody(""))
	if absent == nil || absent.Cache != "hit" {
		t.Fatalf("defaulted-cut request cache=%v, want hit on the explicit-cut entry", absent)
	}
}

// TestPartitionObjectiveValidation: unknown objectives are rejected with 400.
func TestPartitionObjectiveValidation(t *testing.T) {
	s := New(Config{})
	rec, _ := post(t, s.Handler(), presetBody(`"objective":"wirelength"`))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "objective") {
		t.Errorf("error body does not name the objective field: %s", rec.Body.String())
	}
}

// TestMetricsObjectiveRuns: completed runs are counted per objective.
func TestMetricsObjectiveRuns(t *testing.T) {
	s := New(Config{})
	post(t, s.Handler(), presetBody(""))
	post(t, s.Handler(), presetBody(`"objective":"km1"`))
	post(t, s.Handler(), presetBody(`"objective":"km1"`))
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		`hpartd_objective_runs_total{objective="cut"} 1`,
		`hpartd_objective_runs_total{objective="km1"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
