package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
)

// TestPartitionCoarsenWorkersField: the coarsen_workers request field is
// accepted, clamped to GOMAXPROCS, echoed back as the effective value, and —
// the determinism contract — never changes the answer or misses the
// hierarchy cache.
func TestPartitionCoarsenWorkersField(t *testing.T) {
	s := New(Config{})
	_, base := post(t, s.Handler(), presetBody(""))
	if base == nil {
		t.Fatal("baseline request failed")
	}
	if base.CoarsenWorkers != 1 {
		t.Errorf("default coarsen_workers = %d, want the server default 1", base.CoarsenWorkers)
	}

	rec, resp := post(t, s.Handler(), presetBody(`"coarsen_workers":4`))
	if resp == nil {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	want := 4
	if max := runtime.GOMAXPROCS(0); want > max {
		want = max
	}
	if resp.CoarsenWorkers != want {
		t.Errorf("effective coarsen_workers = %d, want %d (request 4 clamped to GOMAXPROCS %d)",
			resp.CoarsenWorkers, want, runtime.GOMAXPROCS(0))
	}
	if resp.Cut != base.Cut {
		t.Errorf("coarsen_workers changed the cut: %d vs %d", resp.Cut, base.Cut)
	}
	for v := range base.Assignment {
		if resp.Assignment[v] != base.Assignment[v] {
			t.Fatalf("coarsen_workers changed the assignment at vertex %d", v)
		}
	}
	// coarsen_workers is excluded from the cache key: a different worker
	// count must reuse the hierarchies built by the baseline request.
	if resp.Cache != "hit" {
		t.Errorf("coarsen_workers=4 request cache=%q, want hit (field must not join the cache key)", resp.Cache)
	}
}

// TestPartitionCoarsenWorkersServerDefault: the -coarsen-workers server flag
// supplies the default when the request omits the field, after the same
// GOMAXPROCS clamp.
func TestPartitionCoarsenWorkersServerDefault(t *testing.T) {
	s := New(Config{CoarsenWorkers: 8})
	_, resp := post(t, s.Handler(), presetBody(""))
	if resp == nil {
		t.Fatal("request failed")
	}
	want := 8
	if max := runtime.GOMAXPROCS(0); want > max {
		want = max
	}
	if resp.CoarsenWorkers != want {
		t.Errorf("effective coarsen_workers = %d, want %d (server default 8 clamped)", resp.CoarsenWorkers, want)
	}
}

// TestPartitionCoarsenWorkersNegative: negative values are a 400, not a
// silent clamp.
func TestPartitionCoarsenWorkersNegative(t *testing.T) {
	s := New(Config{})
	req := httptest.NewRequest(http.MethodPost, "/partition", strings.NewReader(presetBody(`"coarsen_workers":-2`)))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("coarsen_workers=-2: status %d, want 400; body %s", rec.Code, rec.Body.String())
	}
}

// TestMetricsCoarsenWorkers: /metrics exposes the effective coarsening
// parallelism of the last run and the coarsen-phase nanosecond counter.
func TestMetricsCoarsenWorkers(t *testing.T) {
	s := New(Config{})
	if _, resp := post(t, s.Handler(), presetBody(`"coarsen_workers":3`)); resp == nil {
		t.Fatal("request failed")
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	want := 3
	if max := runtime.GOMAXPROCS(0); want > max {
		want = max
	}
	if !strings.Contains(body, fmt.Sprintf("hpartd_coarsen_workers %d", want)) {
		t.Errorf("metrics missing hpartd_coarsen_workers %d:\n%s", want, body)
	}
	if !strings.Contains(body, "hpartd_coarsen_phase_ns_total") {
		t.Error("metrics missing hpartd_coarsen_phase_ns_total")
	}
}
