package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// presetBody is a small, fast request used throughout; scale 0.05 keeps a
// full multistart under ~100ms.
func presetBody(extra string) string {
	s := `{"preset":{"name":"IBM01S","scale":0.05},"starts":4,"fix_fraction":0.3`
	if extra != "" {
		s += "," + extra
	}
	return s + "}"
}

func post(t *testing.T, h http.Handler, body string) (*httptest.ResponseRecorder, *Response) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/partition", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return rec, nil
	}
	var resp Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad 200 body: %v\n%s", err, rec.Body.String())
	}
	return rec, &resp
}

func TestPartitionPresetHappyPath(t *testing.T) {
	s := New(Config{})
	rec, resp := post(t, s.Handler(), presetBody(""))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Instance != "IBM01S@0.05" {
		t.Errorf("instance %q", resp.Instance)
	}
	if resp.K != 2 || resp.Vertices == 0 || len(resp.Assignment) != resp.Vertices {
		t.Errorf("shape: k=%d vertices=%d len(assignment)=%d", resp.K, resp.Vertices, len(resp.Assignment))
	}
	if resp.Fixed == 0 {
		t.Error("fix_fraction 0.3 fixed no vertices")
	}
	if resp.Cache != "miss" {
		t.Errorf("first request cache=%q, want miss", resp.Cache)
	}
	if resp.Truncated || resp.Starts != 4 {
		t.Errorf("starts=%d truncated=%v", resp.Starts, resp.Truncated)
	}
	if resp.Phases == nil || resp.Phases.CoarsenNS == 0 {
		t.Error("cold request reported no coarsening time")
	}
}

// TestPartitionCacheHitIdentical: a repeated identical body is served from
// the hierarchy cache with a bit-identical answer and no coarsening work.
func TestPartitionCacheHitIdentical(t *testing.T) {
	s := New(Config{})
	_, cold := post(t, s.Handler(), presetBody(""))
	_, warm := post(t, s.Handler(), presetBody(""))
	if cold == nil || warm == nil {
		t.Fatal("request failed")
	}
	if warm.Cache != "hit" {
		t.Errorf("second request cache=%q, want hit", warm.Cache)
	}
	if warm.Cut != cold.Cut {
		t.Errorf("warm cut %d != cold cut %d", warm.Cut, cold.Cut)
	}
	for v := range cold.Assignment {
		if warm.Assignment[v] != cold.Assignment[v] {
			t.Fatalf("assignment diverges at vertex %d", v)
		}
	}
	if warm.Phases.CoarsenNS != 0 {
		t.Errorf("warm request coarsened (%d ns)", warm.Phases.CoarsenNS)
	}
	st := s.cache.stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("cache stats misses=%d hits=%d, want 1/1", st.Misses, st.Hits)
	}
}

// TestPartitionConcurrentSingleBuild: many concurrent identical requests
// collapse to exactly one hierarchy build; everyone gets the same answer.
func TestPartitionConcurrentSingleBuild(t *testing.T) {
	s := New(Config{Concurrency: 8})
	const n = 8
	cuts := make([]int64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, resp := post(t, s.Handler(), presetBody(""))
			if resp == nil {
				t.Errorf("request %d: status %d", i, rec.Code)
				return
			}
			cuts[i] = resp.Cut
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if cuts[i] != cuts[0] {
			t.Errorf("request %d cut %d != %d", i, cuts[i], cuts[0])
		}
	}
	st := s.cache.stats()
	if st.Misses != 1 {
		t.Errorf("%d concurrent identical requests built %d times", n, st.Misses)
	}
	if st.Hits != n-1 {
		t.Errorf("hits=%d, want %d", st.Hits, n-1)
	}
}

func TestPartitionUploadAndKWay(t *testing.T) {
	s := New(Config{})
	upload := `{"hypergraph":{"areas":[1,1,1,1,1,1,1,1],"nets":[[0,1,2],[2,3,4],[4,5,6],[6,7,0],[1,5]]},"starts":2}`
	rec, resp := post(t, s.Handler(), upload)
	if resp == nil {
		t.Fatalf("upload failed: %d %s", rec.Code, rec.Body.String())
	}
	if resp.Vertices != 8 || resp.Nets != 5 {
		t.Errorf("upload shape %d/%d", resp.Vertices, resp.Nets)
	}
	if _, warm := post(t, s.Handler(), upload); warm == nil || warm.Cache != "hit" {
		t.Error("re-uploaded identical netlist missed the cache")
	}

	kway := `{"preset":{"name":"IBM01S","scale":0.05},"k":4,"starts":2}`
	if _, resp := post(t, s.Handler(), kway); resp == nil {
		t.Fatal("k=4 request failed")
	} else if resp.Cache != "bypass" || resp.K != 4 {
		t.Errorf("k=4: cache=%q k=%d, want bypass/4", resp.Cache, resp.K)
	}
}

func TestPartitionValidation(t *testing.T) {
	s := New(Config{MaxStarts: 8})
	cases := map[string]string{
		"both instance kinds":  `{"preset":{"name":"IBM01S"},"hypergraph":{"areas":[1,1],"nets":[[0,1]]}}`,
		"neither":              `{}`,
		"unknown preset":       `{"preset":{"name":"NOPE"}}`,
		"bad policy":           presetBody(`"policy":"fifo"`),
		"bad k":                presetBody(`"k":1`),
		"bad cutoff":           presetBody(`"cutoff":1.5`),
		"bad fix_fraction":     presetBody(`"fix_fraction":-0.1`),
		"too many starts":      presetBody(`"starts":9`),
		"unknown field":        presetBody(`"bogus":1`),
		"tiny upload":          `{"hypergraph":{"areas":[1],"nets":[[0]]}}`,
		"net pin out of range": `{"hypergraph":{"areas":[1,1],"nets":[[0,7]]}}`,
		"fixed part too big":   presetBody(`"fixed":[{"vertex":0,"parts":[5]}]`),
	}
	for name, body := range cases {
		rec, _ := post(t, s.Handler(), body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, rec.Code, rec.Body.String())
		}
	}
	if rec := httptest.NewRecorder(); true {
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/partition", nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("GET /partition: %d, want 405", rec.Code)
		}
	}
}

func TestPartitionTooLarge(t *testing.T) {
	s := New(Config{MaxBodyBytes: 256, MaxVertices: 4})
	big := `{"hypergraph":{"areas":[` + strings.Repeat("1,", 200) + `1],"nets":[[0,1]]}}`
	rec, _ := post(t, s.Handler(), big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: %d, want 413", rec.Code)
	}

	s2 := New(Config{MaxVertices: 4})
	over := `{"hypergraph":{"areas":[1,1,1,1,1,1],"nets":[[0,1]]}}`
	rec2, _ := post(t, s2.Handler(), over)
	if rec2.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("too many vertices: %d, want 413", rec2.Code)
	}
	rec3, _ := post(t, s2.Handler(), `{"preset":{"name":"IBM01S"}}`)
	if rec3.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized preset: %d, want 413", rec3.Code)
	}
}

// TestPartitionQueueFull drives admission control deterministically by
// occupying the worker semaphore directly: with both slots held, the first
// extra request queues and the one after that overflows the depth-1 queue.
func TestPartitionQueueFull(t *testing.T) {
	s := New(Config{Concurrency: 1, QueueDepth: 1})
	s.sem <- struct{}{} // occupy the only worker slot

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec, _ := post(t, s.Handler(), presetBody(""))
		done <- rec
	}()
	waitFor(t, func() bool { return atomic.LoadInt64(&s.queued) == 1 })

	rec, _ := post(t, s.Handler(), presetBody(""))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	<-s.sem // free the slot; the queued request must now run to completion
	if rec := <-done; rec.Code != http.StatusOK {
		t.Errorf("queued request finished with %d", rec.Code)
	}
}

// TestPartitionTimeoutTruncates: a 1ms budget against a 64-start run either
// returns a feasible truncated prefix (200) or, if nothing finished, 504.
func TestPartitionTimeoutTruncates(t *testing.T) {
	s := New(Config{})
	body := `{"preset":{"name":"IBM01S","scale":0.2},"starts":64,"timeout_ms":1}`
	rec, resp := post(t, s.Handler(), body)
	switch rec.Code {
	case http.StatusOK:
		if !resp.Truncated {
			t.Errorf("64 starts in 1ms reported untruncated (starts=%d)", resp.Starts)
		}
		if resp.Starts >= resp.RequestedStarts {
			t.Errorf("truncated but starts %d >= requested %d", resp.Starts, resp.RequestedStarts)
		}
	case http.StatusGatewayTimeout:
		// acceptable: cancelled before any start completed
	default:
		t.Errorf("status %d, want 200 or 504: %s", rec.Code, rec.Body.String())
	}
}

// TestShutdownDrains: in-flight requests finish with 200 during a graceful
// drain; requests arriving after drain begins get 503.
func TestShutdownDrains(t *testing.T) {
	s := New(Config{})
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec, _ := post(t, s.Handler(), `{"preset":{"name":"IBM01S","scale":0.2},"starts":16}`)
		done <- rec
	}()
	waitFor(t, func() bool { return atomic.LoadInt64(&s.metrics.inflight) == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if rec := <-done; rec.Code != http.StatusOK {
		t.Errorf("in-flight request finished with %d during drain", rec.Code)
	}
	rec, _ := post(t, s.Handler(), presetBody(""))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("post-drain request: %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestShutdownHardCancel: when the drain deadline has already passed, runs
// are hard-cancelled and still respond (truncated or 504) instead of hanging.
func TestShutdownHardCancel(t *testing.T) {
	s := New(Config{})
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec, _ := post(t, s.Handler(), `{"preset":{"name":"IBM01S","scale":0.3},"starts":64}`)
		done <- rec
	}()
	waitFor(t, func() bool { return atomic.LoadInt64(&s.metrics.inflight) == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("hard-cancel shutdown did not converge: %v", err)
	}
	select {
	case rec := <-done:
		if rec.Code != http.StatusOK && rec.Code != http.StatusGatewayTimeout {
			t.Errorf("hard-cancelled request finished with %d", rec.Code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hard-cancelled request never responded")
	}
}

func TestHealthzMetricsPresets(t *testing.T) {
	s := New(Config{})
	post(t, s.Handler(), presetBody(""))

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var hz map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil || hz["status"] != "ok" {
		t.Errorf("healthz: %v %s", err, rec.Body.String())
	}
	if hz["cache_entries"] != float64(1) {
		t.Errorf("healthz cache_entries = %v, want 1", hz["cache_entries"])
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, w := range []string{
		`hpartd_requests_total{endpoint="partition",code="200"} 1`,
		"hpartd_cache_misses_total 1",
		"hpartd_request_duration_seconds_count 1",
		"hpartd_starts_total 4",
		`hpartd_phase_seconds_total{phase="refine"}`,
		"hpartd_fm_pins_scanned_total",
	} {
		if !strings.Contains(body, w) {
			t.Errorf("metrics missing %q", w)
		}
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/presets", nil))
	var presets []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &presets); err != nil || len(presets) == 0 {
		t.Errorf("presets: %v %s", err, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof cmdline: %d", rec.Code)
	}
}

// TestPartitionSeedChangesAnswerKeyDoesNot: the run seed varies the answer
// but not the cache key (hierarchies are keyed by instance, not run seed).
func TestPartitionSeedChangesAnswerKeyDoesNot(t *testing.T) {
	s := New(Config{})
	_, a := post(t, s.Handler(), presetBody(`"seed":1`))
	_, b := post(t, s.Handler(), presetBody(`"seed":2`))
	if a == nil || b == nil {
		t.Fatal("request failed")
	}
	st := s.cache.stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("different seeds should share hierarchies: misses=%d hits=%d", st.Misses, st.Hits)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
