package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
)

// TestPartitionLocalizedFMWorkersField: the localized_fm_workers request
// field is accepted, clamped to GOMAXPROCS, echoed back as the effective
// value, and — the determinism contract — every count >= 1 returns the
// identical answer while still hitting the hierarchy cache (the field is not
// in the key).
func TestPartitionLocalizedFMWorkersField(t *testing.T) {
	s := New(Config{})
	_, base := post(t, s.Handler(), presetBody(""))
	if base == nil {
		t.Fatal("baseline request failed")
	}
	if base.LocalizedFMWorkers != 0 {
		t.Errorf("default localized_fm_workers = %d, want the server default 0 (stage off)", base.LocalizedFMWorkers)
	}

	recA, respA := post(t, s.Handler(), presetBody(`"localized_fm_workers":2`))
	if respA == nil {
		t.Fatalf("status %d: %s", recA.Code, recA.Body.String())
	}
	recB, respB := post(t, s.Handler(), presetBody(`"localized_fm_workers":4`))
	if respB == nil {
		t.Fatalf("status %d: %s", recB.Code, recB.Body.String())
	}
	wantA, wantB := 2, 4
	if max := runtime.GOMAXPROCS(0); wantA > max {
		wantA = max
	}
	if max := runtime.GOMAXPROCS(0); wantB > max {
		wantB = max
	}
	if respA.LocalizedFMWorkers != wantA || respB.LocalizedFMWorkers != wantB {
		t.Errorf("effective localized_fm_workers = %d/%d, want %d/%d (clamped to GOMAXPROCS %d)",
			respA.LocalizedFMWorkers, respB.LocalizedFMWorkers, wantA, wantB, runtime.GOMAXPROCS(0))
	}
	// Worker-count invariance: 2 and 4 workers must agree bit for bit.
	if respA.Cut != respB.Cut || respA.KMinus1 != respB.KMinus1 {
		t.Errorf("localized_fm_workers changed the answer: cut %d/%d, km1 %d/%d",
			respA.Cut, respB.Cut, respA.KMinus1, respB.KMinus1)
	}
	for v := range respA.Assignment {
		if respA.Assignment[v] != respB.Assignment[v] {
			t.Fatalf("localized_fm_workers changed the assignment at vertex %d", v)
		}
	}
	// localized_fm_workers is excluded from the cache key: these requests
	// must reuse the hierarchies built by the (stage-off) baseline request.
	if respA.Cache != "hit" || respB.Cache != "hit" {
		t.Errorf("localized_fm_workers requests cache=%q/%q, want hit (field must not join the cache key)",
			respA.Cache, respB.Cache)
	}
}

// TestPartitionLocalizedFMWorkersServerDefault: the -localized-fm-workers
// server flag supplies the default when the request omits the field, after
// the same GOMAXPROCS clamp.
func TestPartitionLocalizedFMWorkersServerDefault(t *testing.T) {
	s := New(Config{LocalizedFMWorkers: 8})
	_, resp := post(t, s.Handler(), presetBody(""))
	if resp == nil {
		t.Fatal("request failed")
	}
	want := 8
	if max := runtime.GOMAXPROCS(0); want > max {
		want = max
	}
	if resp.LocalizedFMWorkers != want {
		t.Errorf("effective localized_fm_workers = %d, want %d (server default 8 clamped)", resp.LocalizedFMWorkers, want)
	}
}

// TestPartitionLocalizedFMWorkersNegative: negative values are a 400, not a
// silent clamp.
func TestPartitionLocalizedFMWorkersNegative(t *testing.T) {
	s := New(Config{})
	req := httptest.NewRequest(http.MethodPost, "/partition", strings.NewReader(presetBody(`"localized_fm_workers":-2`)))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("localized_fm_workers=-2: status %d, want 400; body %s", rec.Code, rec.Body.String())
	}
}

// TestMetricsLocalizedFMWorkers: /metrics exposes the effective localized-FM
// parallelism of the last run, the stage's nanosecond counter, and the
// refine_localized entry of the phase-seconds family.
func TestMetricsLocalizedFMWorkers(t *testing.T) {
	s := New(Config{})
	if _, resp := post(t, s.Handler(), presetBody(`"localized_fm_workers":3`)); resp == nil {
		t.Fatal("request failed")
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	want := 3
	if max := runtime.GOMAXPROCS(0); want > max {
		want = max
	}
	if !strings.Contains(body, fmt.Sprintf("hpartd_localized_fm_workers %d", want)) {
		t.Errorf("metrics missing hpartd_localized_fm_workers %d:\n%s", want, body)
	}
	if !strings.Contains(body, "hpartd_localized_fm_phase_ns_total") {
		t.Error("metrics missing hpartd_localized_fm_phase_ns_total")
	}
	if !strings.Contains(body, `hpartd_phase_seconds_total{phase="refine_localized"}`) {
		t.Error("metrics missing phase=\"refine_localized\" in hpartd_phase_seconds_total")
	}
}
