package server

import (
	"strings"
	"testing"
	"time"
)

func TestMetricsLatencyHistogram(t *testing.T) {
	m := newMetrics()
	m.observeLatency(500 * time.Microsecond) // bucket le=0.001
	m.observeLatency(3 * time.Millisecond)   // bucket le=0.005
	m.observeLatency(2 * time.Minute)        // +Inf only
	var sb strings.Builder
	m.writeTo(&sb, cacheStats{})
	out := sb.String()
	for _, w := range []string{
		`hpartd_request_duration_seconds_bucket{le="0.001"} 1`,
		`hpartd_request_duration_seconds_bucket{le="0.005"} 2`,
		`hpartd_request_duration_seconds_bucket{le="60"} 2`,
		`hpartd_request_duration_seconds_bucket{le="+Inf"} 3`,
		`hpartd_request_duration_seconds_count 3`,
	} {
		if !strings.Contains(out, w) {
			t.Errorf("missing %q in:\n%s", w, out)
		}
	}
}

func TestMetricsRequestLabels(t *testing.T) {
	m := newMetrics()
	m.observeRequest("partition", 200)
	m.observeRequest("partition", 200)
	m.observeRequest("partition", 429)
	m.observeRejected("queue_full")
	var sb strings.Builder
	m.writeTo(&sb, cacheStats{Hits: 5, Misses: 2, Evictions: 1, Entries: 2})
	out := sb.String()
	for _, w := range []string{
		`hpartd_requests_total{endpoint="partition",code="200"} 2`,
		`hpartd_requests_total{endpoint="partition",code="429"} 1`,
		`hpartd_rejected_total{reason="queue_full"} 1`,
		"hpartd_cache_hits_total 5",
		"hpartd_cache_misses_total 2",
		"hpartd_cache_evictions_total 1",
		"hpartd_cache_entries 2",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("missing %q", w)
		}
	}
	// Exposition-format sanity: every non-comment line is "name{labels} value"
	// or "name value" with no stray whitespace.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}
