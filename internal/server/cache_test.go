package server

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/multilevel"
)

func dummyHiers() []*multilevel.Hierarchy { return []*multilevel.Hierarchy{nil} }

func TestCacheLRUEviction(t *testing.T) {
	c := newHierCache(2)
	builds := 0
	get := func(key string) {
		c.getOrBuild(key, func() ([]*multilevel.Hierarchy, error) {
			builds++
			return dummyHiers(), nil
		})
	}
	get("a")
	get("b")
	get("a") // touch a: b is now LRU
	get("c") // evicts b
	get("a") // still resident
	get("b") // rebuilt
	st := c.stats()
	if builds != 4 {
		t.Errorf("built %d times, want 4 (a, b, c, b-again)", builds)
	}
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
	if st.Hits != 2 || st.Misses != 4 {
		t.Errorf("hits/misses = %d/%d, want 2/4", st.Hits, st.Misses)
	}
}

// TestCacheSingleflight: concurrent callers of one missing key run the build
// exactly once; the waiters count as hits and all receive the same slice.
func TestCacheSingleflight(t *testing.T) {
	c := newHierCache(4)
	release := make(chan struct{})
	built := dummyHiers()
	var builds int32
	var wg sync.WaitGroup
	results := make([][]*multilevel.Hierarchy, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, _, err := c.getOrBuild("k", func() ([]*multilevel.Hierarchy, error) {
				builds++
				<-release
				return built, nil
			})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
			}
			results[i] = h
		}(i)
	}
	// Wait until every goroutine has either started the build or parked on
	// the ready channel, then release the builder.
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.misses+c.hits == int64(len(results))
	})
	close(release)
	wg.Wait()
	if builds != 1 {
		t.Fatalf("build ran %d times", builds)
	}
	for i, h := range results {
		if len(h) != len(built) {
			t.Errorf("goroutine %d got %d hierarchies", i, len(h))
		}
	}
	st := c.stats()
	if st.Misses != 1 || st.Hits != int64(len(results)-1) {
		t.Errorf("misses=%d hits=%d, want 1/%d", st.Misses, st.Hits, len(results)-1)
	}
}

// TestCacheErrorNotCached: a failed build is dropped so the next request
// retries — transient failures (a cancelled context) must not poison a key.
func TestCacheErrorNotCached(t *testing.T) {
	c := newHierCache(4)
	boom := errors.New("boom")
	_, _, err := c.getOrBuild("k", func() ([]*multilevel.Hierarchy, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	h, hit, err := c.getOrBuild("k", func() ([]*multilevel.Hierarchy, error) { return dummyHiers(), nil })
	if err != nil || hit || len(h) != 1 {
		t.Errorf("retry after failure: h=%v hit=%v err=%v", h, hit, err)
	}
	if st := c.stats(); st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
}

func TestCacheCapacityFloor(t *testing.T) {
	c := newHierCache(0)
	for i := 0; i < 3; i++ {
		c.getOrBuild(fmt.Sprintf("k%d", i), func() ([]*multilevel.Hierarchy, error) { return dummyHiers(), nil })
	}
	if st := c.stats(); st.Entries != 1 {
		t.Errorf("capacity floor: entries = %d, want 1", st.Entries)
	}
}
