// Package server implements hpartd, the HTTP partitioning service: it
// accepts partition requests (an uploaded hypergraph or a named generator
// preset, plus fixed-vertex masks, k, balance, policy and start counts),
// runs them on the multilevel engine's cancellable multistart drivers, and
// returns assignments, cuts and per-phase statistics as JSON.
//
// The service exists because the paper's fixed-vertex instances arise as
// many small, related subproblems of one top-down placement: the same
// netlist is partitioned over and over under different constraints, so a
// long-running process that amortizes setup beats a fresh solver invocation
// per call. Three mechanisms deliver that:
//
//   - Hierarchy cache. Coarsening hierarchies are cached under a key that is
//     a pure function of the instance (partition.Problem.Fingerprint, or the
//     preset parameters before generation), the coarsening-relevant config
//     (multilevel.Config.CoarseningFingerprint) and the hierarchy count.
//     Repeated requests against the same netlist skip generation/parsing and
//     coarsening entirely and run refinement-only descents
//     (multilevel.MultistartOnHierarchies). Hierarchies are immutable, so
//     any number of concurrent requests share a cached entry; duplicate
//     concurrent builds of the same key are collapsed to one (the losers
//     wait and count as cache hits).
//   - Admission control. A bounded worker semaphore caps concurrent solves,
//     a bounded queue caps waiters (429 + Retry-After beyond it), body and
//     instance-size limits reject oversized uploads (413), and every run is
//     governed by a per-request timeout threaded as a context.Context into
//     the multistart drivers — a timed-out run returns the best result
//     computed so far, marked "truncated", rather than nothing.
//   - Observability. /metrics exposes request counts, latency histograms,
//     cache hit/miss/eviction counters and the engine's aggregated phase and
//     FM-kernel counters in Prometheus text format (no external
//     dependencies); /debug/pprof serves live profiles with the multilevel
//     phase labels intact.
//
// Concurrency and determinism contract: request handling is fully
// concurrent; all shared state (cache, metrics, admission counters) is
// internally synchronized. A request's result is a pure function of its
// JSON body — cache hit or miss, any worker count — EXCEPT when the run is
// cut short by timeout, cancellation or shutdown, in which case the response
// is the best of a timing-dependent prefix of the start sequence and says
// so via "truncated": true. Graceful shutdown (Server.Shutdown) stops
// admitting new work, lets in-flight runs drain, and hard-cancels them via
// their contexts only when the drain deadline expires.
package server
