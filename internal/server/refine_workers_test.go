package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
)

// TestPartitionRefineWorkersField: the refine_workers request field is
// accepted, clamped to GOMAXPROCS, echoed back as the effective value, and —
// the determinism contract — every count >= 1 returns the identical answer
// while still hitting the hierarchy cache (the field is not in the key).
func TestPartitionRefineWorkersField(t *testing.T) {
	s := New(Config{})
	_, base := post(t, s.Handler(), presetBody(""))
	if base == nil {
		t.Fatal("baseline request failed")
	}
	if base.RefineWorkers != 0 {
		t.Errorf("default refine_workers = %d, want the server default 0 (stage off)", base.RefineWorkers)
	}

	recA, respA := post(t, s.Handler(), presetBody(`"refine_workers":2`))
	if respA == nil {
		t.Fatalf("status %d: %s", recA.Code, recA.Body.String())
	}
	recB, respB := post(t, s.Handler(), presetBody(`"refine_workers":4`))
	if respB == nil {
		t.Fatalf("status %d: %s", recB.Code, recB.Body.String())
	}
	wantA, wantB := 2, 4
	if max := runtime.GOMAXPROCS(0); wantA > max {
		wantA = max
	}
	if max := runtime.GOMAXPROCS(0); wantB > max {
		wantB = max
	}
	if respA.RefineWorkers != wantA || respB.RefineWorkers != wantB {
		t.Errorf("effective refine_workers = %d/%d, want %d/%d (clamped to GOMAXPROCS %d)",
			respA.RefineWorkers, respB.RefineWorkers, wantA, wantB, runtime.GOMAXPROCS(0))
	}
	// Worker-count invariance: 2 and 4 workers must agree bit for bit.
	if respA.Cut != respB.Cut || respA.KMinus1 != respB.KMinus1 {
		t.Errorf("refine_workers changed the answer: cut %d/%d, km1 %d/%d",
			respA.Cut, respB.Cut, respA.KMinus1, respB.KMinus1)
	}
	for v := range respA.Assignment {
		if respA.Assignment[v] != respB.Assignment[v] {
			t.Fatalf("refine_workers changed the assignment at vertex %d", v)
		}
	}
	// refine_workers is excluded from the cache key: these requests must
	// reuse the hierarchies built by the (stage-off) baseline request.
	if respA.Cache != "hit" || respB.Cache != "hit" {
		t.Errorf("refine_workers requests cache=%q/%q, want hit (field must not join the cache key)",
			respA.Cache, respB.Cache)
	}
}

// TestPartitionRefineWorkersServerDefault: the -refine-workers server flag
// supplies the default when the request omits the field, after the same
// GOMAXPROCS clamp.
func TestPartitionRefineWorkersServerDefault(t *testing.T) {
	s := New(Config{RefineWorkers: 8})
	_, resp := post(t, s.Handler(), presetBody(""))
	if resp == nil {
		t.Fatal("request failed")
	}
	want := 8
	if max := runtime.GOMAXPROCS(0); want > max {
		want = max
	}
	if resp.RefineWorkers != want {
		t.Errorf("effective refine_workers = %d, want %d (server default 8 clamped)", resp.RefineWorkers, want)
	}
}

// TestPartitionRefineWorkersNegative: negative values are a 400, not a
// silent clamp.
func TestPartitionRefineWorkersNegative(t *testing.T) {
	s := New(Config{})
	req := httptest.NewRequest(http.MethodPost, "/partition", strings.NewReader(presetBody(`"refine_workers":-2`)))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("refine_workers=-2: status %d, want 400; body %s", rec.Code, rec.Body.String())
	}
}

// TestMetricsRefineWorkers: /metrics exposes the effective refinement
// parallelism of the last run, the refine-phase nanosecond counter, and the
// refine_parallel entry of the phase-seconds family.
func TestMetricsRefineWorkers(t *testing.T) {
	s := New(Config{})
	if _, resp := post(t, s.Handler(), presetBody(`"refine_workers":3`)); resp == nil {
		t.Fatal("request failed")
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	want := 3
	if max := runtime.GOMAXPROCS(0); want > max {
		want = max
	}
	if !strings.Contains(body, fmt.Sprintf("hpartd_refine_workers %d", want)) {
		t.Errorf("metrics missing hpartd_refine_workers %d:\n%s", want, body)
	}
	if !strings.Contains(body, "hpartd_refine_phase_ns_total") {
		t.Error("metrics missing hpartd_refine_phase_ns_total")
	}
	if !strings.Contains(body, `hpartd_phase_seconds_total{phase="refine_parallel"}`) {
		t.Error("metrics missing phase=\"refine_parallel\" in hpartd_phase_seconds_total")
	}
}
