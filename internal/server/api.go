package server

import (
	"fmt"
	"io"
	"runtime"
	"strings"

	"repro/internal/fm"
	"repro/internal/gen"
	"repro/internal/hgr"
	"repro/internal/hypergraph"
	"repro/internal/multilevel"
	"repro/internal/partition"
)

// Request is the JSON body of POST /partition. Exactly one of Preset and
// Hypergraph names the instance; everything else has a server-side default.
// A request is a complete, self-contained description of a deterministic
// computation: two identical bodies get identical responses (whether served
// cold or from the hierarchy cache), unless a run is cut short — see
// Response.Truncated.
type Request struct {
	// Preset names a built-in generator circuit (see GET /presets) at an
	// optional scale factor.
	Preset *PresetSpec `json:"preset,omitempty"`
	// Hypergraph is an inline netlist upload.
	Hypergraph *HypergraphSpec `json:"hypergraph,omitempty"`
	// HGR is an inline upload in the hMetis exchange formats: the netlist as
	// .hgr text, constraints as optional .fix text. An instance uploaded this
	// way is indistinguishable downstream from the same instance posed as
	// "hypergraph" + "fixed" — same responses, same hierarchy-cache entries.
	HGR *HGRSpec `json:"hgr,omitempty"`

	// K is the number of parts (default 2). k = 2 requests are served
	// through the hierarchy cache; k > 2 requests run the direct k-way
	// driver uncached.
	K int `json:"k,omitempty"`
	// Tolerance is the relative balance tolerance (default 0.02).
	Tolerance float64 `json:"tolerance,omitempty"`
	// Fixed lists explicit per-vertex constraints: a single part fixes the
	// vertex, several parts form an OR-region mask.
	Fixed []FixSpec `json:"fixed,omitempty"`
	// FixFraction, with FixSeed, fixes that fraction of vertices chosen and
	// assigned deterministically (round-robin over a seeded shuffle) — the
	// quick way to pose a paper-style fixed-terminals instance against a
	// preset without uploading masks.
	FixFraction float64 `json:"fix_fraction,omitempty"`
	// FixSeed seeds FixFraction's vertex choice (default 1).
	FixSeed uint64 `json:"fix_seed,omitempty"`

	// Starts is the number of multistart descents (default 4).
	Starts int `json:"starts,omitempty"`
	// Hierarchies is the number of coarsening hierarchies backing a k = 2
	// run (default min(2, starts)); starts beyond it are follower descents
	// with the pass cutoff, exactly as in SharedMultistart.
	Hierarchies int `json:"hierarchies,omitempty"`
	// Policy selects the FM discipline: "clip" (default) or "lifo".
	Policy string `json:"policy,omitempty"`
	// Objective selects the metric the run optimizes and selects starts by:
	// "cut" (default, the paper's weighted net cut) or "km1"
	// (connectivity-minus-one). Whatever the choice, the response reports
	// cut, km1 and soed of the winning assignment. Cut and km1 requests
	// never share hierarchy-cache entries (the key covers the objective).
	Objective string `json:"objective,omitempty"`
	// Cutoff applies the paper's pass-length cutoff fraction to refinement
	// (0 or 1 disables).
	Cutoff float64 `json:"cutoff,omitempty"`
	// RefinePasses caps FM passes per level (0 = run to convergence, the
	// engine default). Low values trade cut quality for latency — the
	// speed knob for interactive callers; like Cutoff it is a
	// refinement-phase setting, so it never invalidates cached
	// hierarchies.
	RefinePasses int `json:"refine_passes,omitempty"`
	// Seed makes the run deterministic (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds the goroutines this run's starts fan out on (default:
	// the server's per-run worker setting). It never changes results.
	Workers int `json:"workers,omitempty"`
	// CoarsenWorkers parallelizes the inside of each coarsening descent
	// (matching + contraction; default: the server's -coarsen-workers flag,
	// clamped to GOMAXPROCS). Like Workers it never changes results —
	// hierarchies, cuts and fingerprints are bit-identical for every value —
	// so it does not participate in the hierarchy-cache key.
	CoarsenWorkers int `json:"coarsen_workers,omitempty"`
	// RefineWorkers enables the deterministic synchronous-round parallel
	// refinement stage inside each descent and sets its worker count
	// (default: the server's -refine-workers flag; 0 defers to that
	// default, negative is rejected, values above GOMAXPROCS are clamped).
	// Every count >= 1 returns bit-identical results, so like
	// coarsen_workers the field stays out of the hierarchy-cache key.
	// Unlike coarsen_workers, switching the stage on at all (any count
	// >= 1) selects a different — typically faster, comparably good — move
	// sequence than the serial-only refinement a server whose default is 0
	// runs; see multilevel.Config.RefineWorkers.
	RefineWorkers int `json:"refine_workers,omitempty"`
	// LocalizedFMWorkers enables the deterministic localized FM stage at the
	// finest level of each descent and sets its worker count (default: the
	// server's -localized-fm-workers flag; 0 defers to that default,
	// negative is rejected, values above GOMAXPROCS are clamped). Every
	// count >= 1 returns bit-identical results, so like the other worker
	// knobs the field stays out of the hierarchy-cache key. Switching the
	// stage on at all (any count >= 1) replaces most of the finest-level
	// serial polish with bounded localized searches plus a one-pass tail —
	// a different, typically faster, comparably good move sequence than a
	// server whose default is 0 runs; see
	// multilevel.Config.LocalizedFMWorkers.
	LocalizedFMWorkers int `json:"localized_fm_workers,omitempty"`
	// TimeoutMS bounds the run's wall clock; a run cut short returns the
	// best completed result with "truncated": true (or 504 if nothing
	// finished). 0 means the server default; values above the server
	// maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// PresetSpec names a generator circuit.
type PresetSpec struct {
	// Name is an IBMPresets name, e.g. "IBM01S".
	Name string `json:"name"`
	// Scale shrinks the circuit (default 1.0, the published size).
	Scale float64 `json:"scale,omitempty"`
}

// HypergraphSpec is an inline netlist: nets as vertex-index lists plus
// per-vertex weights. Vertices are implicitly 0..N-1 where N is the weight
// count.
type HypergraphSpec struct {
	// Areas holds the primary-resource vertex weights (cell areas) and
	// defines the vertex count.
	Areas []int64 `json:"areas"`
	// ExtraResources optionally adds more weight resources, each a slice
	// parallel to Areas (the multi-area extension).
	ExtraResources [][]int64 `json:"extra_resources,omitempty"`
	// Pads lists vertex indices that are zero-area I/O pads.
	Pads []int `json:"pads,omitempty"`
	// Nets lists each net's pins as vertex indices (>= 2 pins per net).
	Nets [][]int `json:"nets"`
	// NetWeights optionally weighs each net (default 1).
	NetWeights []int64 `json:"net_weights,omitempty"`
}

// HGRSpec is an inline upload in the standard exchange formats. The texts
// are parsed with the same hostile-input limits the server applies to JSON
// uploads (line-numbered 400s for malformed content, 413 for oversized
// declarations); see FORMATS.md for both grammars.
type HGRSpec struct {
	// HGR is the hMetis .hgr netlist text (fmt codes 0, 1, 10, 11).
	HGR string `json:"hgr"`
	// Fix is optional KaHyPar-style fixed-vertex text: one line per vertex,
	// -1 for free, a part id to fix, several part ids for an OR-region.
	// The request's "fixed" list and "fix_fraction" still apply on top.
	Fix string `json:"fix,omitempty"`
}

// FixSpec constrains one vertex to a set of allowed parts.
type FixSpec struct {
	Vertex int   `json:"vertex"`
	Parts  []int `json:"parts"`
}

// Response is the JSON body of a successful POST /partition.
type Response struct {
	Instance string `json:"instance"`
	Vertices int    `json:"vertices"`
	Nets     int    `json:"nets"`
	Pins     int    `json:"pins"`
	K        int    `json:"k"`
	Fixed    int    `json:"fixed"`

	// Cut, KMinus1 and SOED report the three standard objectives of the
	// winning assignment, whichever one the run optimized; Objective echoes
	// the effective choice ("cut" or "km1").
	Cut        int64  `json:"cut"`
	KMinus1    int64  `json:"km1"`
	SOED       int64  `json:"soed"`
	Objective  string `json:"objective"`
	Assignment []int  `json:"assignment"`
	// Starts is the number of descents that actually completed;
	// RequestedStarts what the request asked for.
	Starts          int  `json:"starts"`
	RequestedStarts int  `json:"requested_starts"`
	Truncated       bool `json:"truncated"`
	Levels          int  `json:"levels"`
	// Cache is "hit", "miss" or "bypass" (k > 2 runs are uncached).
	Cache string `json:"cache"`
	// CoarsenWorkers is the effective intra-descent coarsening parallelism
	// this run used, after defaulting and the GOMAXPROCS clamp.
	CoarsenWorkers int `json:"coarsen_workers"`
	// RefineWorkers is the effective parallel-refinement worker count after
	// defaulting and the GOMAXPROCS clamp; 0 means the stage was off and
	// refinement ran on the serial kernel alone.
	RefineWorkers int `json:"refine_workers"`
	// LocalizedFMWorkers is the effective localized-FM worker count after
	// defaulting and the GOMAXPROCS clamp; 0 means the stage was off and the
	// finest level ran the full serial polish.
	LocalizedFMWorkers int       `json:"localized_fm_workers"`
	ElapsedMS          float64   `json:"elapsed_ms"`
	PartWeights        [][]int64 `json:"part_weights"`
	// Phases carries the run's per-phase wall time, allocation and FM-kernel
	// counters (zero coarsen time is the signature of a cache hit).
	Phases *multilevel.PhaseStats `json:"phases,omitempty"`
}

// errorResponse is the JSON body of any non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
	// RetryAfterSec mirrors the Retry-After header on 429/503.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

// withDefaults resolves the request's defaulted fields against the server
// configuration.
func (r Request) withDefaults(cfg Config) Request {
	if r.K == 0 {
		r.K = 2
	}
	if r.Tolerance <= 0 {
		r.Tolerance = 0.02
	}
	if r.Starts < 1 {
		r.Starts = 4
	}
	if r.Hierarchies < 1 {
		r.Hierarchies = 2
	}
	if r.Hierarchies > r.Starts {
		r.Hierarchies = r.Starts
	}
	if r.Policy == "" {
		r.Policy = "clip"
	}
	if r.Objective == "" {
		r.Objective = "cut"
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.FixSeed == 0 {
		r.FixSeed = 1
	}
	if r.Preset != nil && r.Preset.Scale <= 0 {
		p := *r.Preset
		p.Scale = 1
		r.Preset = &p
	}
	if r.Workers == 0 {
		r.Workers = cfg.RunWorkers
	}
	if r.CoarsenWorkers == 0 {
		r.CoarsenWorkers = cfg.CoarsenWorkers
	}
	// More coarsen workers than schedulable CPUs only adds overhead (results
	// are identical either way), so clamp rather than reject.
	if max := runtime.GOMAXPROCS(0); r.CoarsenWorkers > max {
		r.CoarsenWorkers = max
	}
	if r.RefineWorkers == 0 {
		r.RefineWorkers = cfg.RefineWorkers
	}
	// Same clamp for refine workers: every count >= 1 is bit-identical, so
	// oversubscribing only adds overhead.
	if max := runtime.GOMAXPROCS(0); r.RefineWorkers > max {
		r.RefineWorkers = max
	}
	if r.LocalizedFMWorkers == 0 {
		r.LocalizedFMWorkers = cfg.LocalizedFMWorkers
	}
	// And for localized FM workers, for the same reason.
	if max := runtime.GOMAXPROCS(0); r.LocalizedFMWorkers > max {
		r.LocalizedFMWorkers = max
	}
	return r
}

// validate rejects structurally bad requests with a client-facing message.
func (r Request) validate(cfg Config) error {
	sources := 0
	for _, given := range []bool{r.Preset != nil, r.Hypergraph != nil, r.HGR != nil} {
		if given {
			sources++
		}
	}
	if sources != 1 {
		return fmt.Errorf("exactly one of \"preset\", \"hypergraph\" and \"hgr\" must be given")
	}
	if r.K < 2 || r.K > partition.MaxParts {
		return fmt.Errorf("k = %d outside [2, %d]", r.K, partition.MaxParts)
	}
	if r.Policy != "clip" && r.Policy != "lifo" {
		return fmt.Errorf("unknown policy %q (want clip or lifo)", r.Policy)
	}
	if _, err := fm.ParseObjective(r.Objective); err != nil {
		return fmt.Errorf("unknown objective %q (want cut or km1)", r.Objective)
	}
	if r.Cutoff < 0 || r.Cutoff > 1 {
		return fmt.Errorf("cutoff %v outside [0, 1]", r.Cutoff)
	}
	if r.FixFraction < 0 || r.FixFraction > 1 {
		return fmt.Errorf("fix_fraction %v outside [0, 1]", r.FixFraction)
	}
	if r.RefinePasses < 0 {
		return fmt.Errorf("refine_passes %d is negative", r.RefinePasses)
	}
	if r.CoarsenWorkers < 0 {
		return fmt.Errorf("coarsen_workers %d is negative", r.CoarsenWorkers)
	}
	if r.RefineWorkers < 0 {
		return fmt.Errorf("refine_workers %d is negative", r.RefineWorkers)
	}
	if r.LocalizedFMWorkers < 0 {
		return fmt.Errorf("localized_fm_workers %d is negative", r.LocalizedFMWorkers)
	}
	if r.Starts > cfg.MaxStarts {
		return fmt.Errorf("starts %d exceeds server limit %d", r.Starts, cfg.MaxStarts)
	}
	if r.Preset != nil {
		if _, err := gen.PresetByName(r.Preset.Name); err != nil {
			return fmt.Errorf("unknown preset %q", r.Preset.Name)
		}
		if r.Preset.Scale > 1 {
			return fmt.Errorf("preset scale %v exceeds 1", r.Preset.Scale)
		}
	}
	if hg := r.Hypergraph; hg != nil {
		if len(hg.Areas) < 2 {
			return fmt.Errorf("hypergraph needs at least 2 vertices, got %d", len(hg.Areas))
		}
		if len(hg.Nets) < 1 {
			return fmt.Errorf("hypergraph has no nets")
		}
		if len(hg.Areas) > cfg.MaxVertices {
			return errTooLarge{fmt.Sprintf("hypergraph has %d vertices, limit %d", len(hg.Areas), cfg.MaxVertices)}
		}
		if len(hg.Nets) > cfg.MaxNets {
			return errTooLarge{fmt.Sprintf("hypergraph has %d nets, limit %d", len(hg.Nets), cfg.MaxNets)}
		}
	}
	if r.HGR != nil && strings.TrimSpace(r.HGR.HGR) == "" {
		return fmt.Errorf("hgr upload has empty netlist text")
	}
	if r.Preset != nil {
		pr, _ := gen.PresetByName(r.Preset.Name)
		cells := pr.Params.Scaled(r.Preset.Scale).Cells
		if cells > cfg.MaxVertices {
			return errTooLarge{fmt.Sprintf("preset at scale %v has ~%d cells, limit %d", r.Preset.Scale, cells, cfg.MaxVertices)}
		}
	}
	return nil
}

// errTooLarge marks validation failures that should map to 413 rather than
// 400: the request is well-formed but exceeds the server's size limits.
type errTooLarge struct{ msg string }

func (e errTooLarge) Error() string { return e.msg }

// cacheKey returns the hierarchy-cache key for a k = 2 request: a pure
// function of everything that determines the hierarchies — the instance
// (preset parameters, or the built problem's fingerprint for uploads), the
// constraint set, the coarsening-relevant engine config and the hierarchy
// count. For preset instances the key is computable WITHOUT generating the
// netlist, so warm requests skip generation entirely; prob may be nil in
// that case. The per-key hierarchy build seed is derived from the key
// itself, keeping hierarchy construction a pure function of the key.
// coarsen_workers is deliberately absent: it never changes the hierarchies
// (CoarseningFingerprint excludes it for the same reason), so entries built
// at any worker count serve every request. refine_workers and
// localized_fm_workers are absent for the same reason — the round and
// localized stages run strictly after coarsening, so cached hierarchies
// serve every value, stage off included. The objective IS in the key,
// conservatively: coarsening never consults it (CoarseningFingerprint
// excludes it), but separating cut and km1 entries keeps every cached
// answer trivially attributable to one objective's request stream.
//
// The two branches hash different things on purpose. For uploads the key is
// Problem.Fingerprint() — the instance as *built*, covering the netlist, k,
// tolerance-derived balance and every constraint mask however the request
// expressed it — so a "hypergraph" + "fixed" upload and an "hgr" + .fix
// upload of the same instance collapse to one entry. For presets the key
// hashes the request fields directly (name, scale, constraint specs), which
// is computable without the netlist; it cannot use Problem.Fingerprint
// without forfeiting exactly that generation-skipping property.
func (r Request) cacheKey(prob *partition.Problem) string {
	obj, _ := fm.ParseObjective(r.Objective)
	f := hypergraph.NewFingerprint().
		Word(uint64(r.Hierarchies)).
		Word(uint64(obj)).
		Word(multilevel.Config{}.CoarseningFingerprint())
	if r.Preset != nil {
		f = f.Word(uint64(r.K)).
			Word(uint64(int64(r.Tolerance * 1e9))).
			Word(uint64(int64(r.FixFraction * 1e9))).
			Word(r.FixSeed)
		for _, fx := range r.Fixed {
			f = f.Word(uint64(fx.Vertex))
			for _, p := range fx.Parts {
				f = f.Word(uint64(p))
			}
		}
		return fmt.Sprintf("preset:%s:%g:%016x", r.Preset.Name, r.Preset.Scale, f.Sum())
	}
	return fmt.Sprintf("upload:%016x", f.Word(prob.Fingerprint()).Sum())
}

// buildProblem materializes the partitioning instance a request describes.
// cfg supplies the size limits the .hgr parser enforces against declared
// header counts (JSON uploads hit the same limits in validate, where the
// counts are directly visible).
func buildProblem(r Request, cfg Config) (*partition.Problem, string, error) {
	if r.HGR != nil {
		return buildHGRUpload(r, cfg)
	}
	var h *hypergraph.Hypergraph
	var name string
	switch {
	case r.Preset != nil:
		pr, err := gen.PresetByName(r.Preset.Name)
		if err != nil {
			return nil, "", err
		}
		nl, err := gen.Generate(pr.Params.Scaled(r.Preset.Scale))
		if err != nil {
			return nil, "", err
		}
		h = nl.H
		name = fmt.Sprintf("%s@%g", pr.Name, r.Preset.Scale)
	default:
		built, err := buildUpload(r.Hypergraph)
		if err != nil {
			return nil, "", err
		}
		h = built
		name = fmt.Sprintf("upload:%016x", h.Fingerprint())
	}
	p := partition.NewFree(h, r.K, r.Tolerance)
	if err := applyConstraints(p, r); err != nil {
		return nil, "", err
	}
	if err := p.Validate(); err != nil {
		return nil, "", err
	}
	return p, name, nil
}

// buildHGRUpload materializes an "hgr" upload: the .hgr netlist and optional
// .fix constraints parse under the server's size limits (oversized
// declarations surface as *hgr.LimitError, which the handler maps to 413
// like any other too-large upload), then the request's own "fixed" list and
// fix_fraction apply on top exactly as for JSON uploads.
func buildHGRUpload(r Request, cfg Config) (*partition.Problem, string, error) {
	lim := hgr.Limits{MaxVertices: cfg.MaxVertices, MaxNets: cfg.MaxNets}
	var fixR io.Reader
	if r.HGR.Fix != "" {
		fixR = strings.NewReader(r.HGR.Fix)
	}
	p, err := hgr.ReadProblemLimits(strings.NewReader(r.HGR.HGR), fixR, r.K, r.Tolerance, lim)
	if err != nil {
		return nil, "", err
	}
	if err := applyConstraints(p, r); err != nil {
		return nil, "", err
	}
	if err := p.Validate(); err != nil {
		return nil, "", err
	}
	return p, fmt.Sprintf("hgr:%016x", p.H.Fingerprint()), nil
}

// buildUpload assembles an uploaded netlist into a Hypergraph.
func buildUpload(spec *HypergraphSpec) (*hypergraph.Hypergraph, error) {
	nv := len(spec.Areas)
	for ri, res := range spec.ExtraResources {
		if len(res) != nv {
			return nil, fmt.Errorf("extra resource %d has %d weights for %d vertices", ri, len(res), nv)
		}
	}
	if spec.NetWeights != nil && len(spec.NetWeights) != len(spec.Nets) {
		return nil, fmt.Errorf("%d net weights for %d nets", len(spec.NetWeights), len(spec.Nets))
	}
	b := hypergraph.NewBuilder(1 + len(spec.ExtraResources))
	b.DedupPins = true
	for v := 0; v < nv; v++ {
		weights := make([]int64, 1+len(spec.ExtraResources))
		weights[0] = spec.Areas[v]
		for ri, res := range spec.ExtraResources {
			weights[1+ri] = res[v]
		}
		b.AddVertex(weights...)
	}
	for _, v := range spec.Pads {
		if v < 0 || v >= nv {
			return nil, fmt.Errorf("pad index %d outside [0, %d)", v, nv)
		}
		b.SetPad(v, true)
	}
	for ei, pins := range spec.Nets {
		for _, v := range pins {
			if v < 0 || v >= nv {
				return nil, fmt.Errorf("net %d pin %d outside [0, %d)", ei, v, nv)
			}
		}
		w := int64(1)
		if spec.NetWeights != nil {
			w = spec.NetWeights[ei]
		}
		b.AddWeightedNet(w, pins...)
	}
	h, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("hypergraph: %w", err)
	}
	return h, nil
}

// applyConstraints installs the request's fixed-vertex masks: the explicit
// list first, then the deterministic fix_fraction sample over the still-free
// vertices (seeded shuffle, parts assigned round-robin so the fixed set
// stays balanced, mirroring the paper's rand regime).
func applyConstraints(p *partition.Problem, r Request) error {
	nv := p.H.NumVertices()
	for _, fx := range r.Fixed {
		if fx.Vertex < 0 || fx.Vertex >= nv {
			return fmt.Errorf("fixed vertex %d outside [0, %d)", fx.Vertex, nv)
		}
		if len(fx.Parts) == 0 {
			return fmt.Errorf("fixed vertex %d has no allowed parts", fx.Vertex)
		}
		var m partition.Mask
		for _, q := range fx.Parts {
			if q < 0 || q >= r.K {
				return fmt.Errorf("fixed vertex %d names part %d outside [0, %d)", fx.Vertex, q, r.K)
			}
			m = m.With(q)
		}
		p.Restrict(fx.Vertex, m)
	}
	partition.ApplyFixFraction(p, r.FixFraction, r.FixSeed)
	return nil
}
