package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fm"
	"repro/internal/gen"
	"repro/internal/hgr"
	"repro/internal/multilevel"
	"repro/internal/partition"
	"repro/internal/profiling"
)

// Config sizes the service. The zero value of every field selects a sensible
// default; see New.
type Config struct {
	// Concurrency is the number of partition runs executing at once
	// (default: GOMAXPROCS). Beyond it, requests queue.
	Concurrency int
	// QueueDepth is the number of requests allowed to wait for a worker
	// slot (default: 2 * Concurrency). Beyond it, requests are rejected
	// with 429 and a Retry-After.
	QueueDepth int
	// RunWorkers bounds the goroutines each run's starts fan out on
	// (default 1: concurrency across requests, not within one — the
	// throughput-optimal choice under load; requests may override with
	// "workers").
	RunWorkers int
	// CoarsenWorkers is the default intra-descent coarsening parallelism
	// (matching + contraction goroutines per descent; default 1, serial).
	// Requests may override with "coarsen_workers"; either way the value is
	// clamped to GOMAXPROCS and never changes results.
	CoarsenWorkers int
	// RefineWorkers is the default worker count for the synchronous-round
	// parallel refinement stage inside each descent (default 0: the stage
	// is off and refinement is the serial FM kernel alone, the historical
	// behavior). Requests may override with "refine_workers"; either way
	// the value is clamped to GOMAXPROCS. Every count >= 1 is
	// bit-identical to every other, but switching the stage on at all
	// changes results versus 0 — see multilevel.Config.RefineWorkers.
	RefineWorkers int
	// LocalizedFMWorkers is the default worker count for the localized FM
	// stage at the finest level of each descent (default 0: the stage is off
	// and the finest level runs the full serial polish, the historical
	// behavior). Requests may override with "localized_fm_workers"; either
	// way the value is clamped to GOMAXPROCS. Every count >= 1 is
	// bit-identical to every other, but switching the stage on at all
	// changes results versus 0 — see multilevel.Config.LocalizedFMWorkers.
	LocalizedFMWorkers int
	// CacheEntries is the hierarchy-cache capacity in instances
	// (default 32).
	CacheEntries int
	// MaxBodyBytes bounds the request body (default 32 MiB).
	MaxBodyBytes int64
	// MaxVertices / MaxNets bound accepted instance sizes
	// (default 4,000,000 each).
	MaxVertices, MaxNets int
	// MaxStarts bounds a single request's multistart count (default 64).
	MaxStarts int
	// DefaultTimeout governs runs that do not send timeout_ms
	// (default 60s); MaxTimeout clamps what they may ask for
	// (default 5m).
	DefaultTimeout, MaxTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Concurrency < 1 {
		c.Concurrency = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 2 * c.Concurrency
	}
	if c.RunWorkers == 0 {
		c.RunWorkers = 1
	}
	if c.CoarsenWorkers == 0 {
		c.CoarsenWorkers = 1
	}
	// RefineWorkers keeps its zero value (stage off); a negative default
	// would turn every defaulted request into a 400, so normalize it away.
	if c.RefineWorkers < 0 {
		c.RefineWorkers = 0
	}
	// Same for LocalizedFMWorkers: zero means stage off, negative normalizes
	// to off rather than poisoning defaulted requests.
	if c.LocalizedFMWorkers < 0 {
		c.LocalizedFMWorkers = 0
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 32
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxVertices <= 0 {
		c.MaxVertices = 4_000_000
	}
	if c.MaxNets <= 0 {
		c.MaxNets = 4_000_000
	}
	if c.MaxStarts <= 0 {
		c.MaxStarts = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	return c
}

// Server is the hpartd partitioning service. Create one with New, expose
// Handler on an http.Server, and call Shutdown to drain. All methods are
// safe for concurrent use.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	cache   *hierCache
	metrics *metrics

	sem    chan struct{} // worker slots; len == in-flight runs
	queued int64         // requests waiting on sem

	draining  atomic.Bool
	drainCh   chan struct{} // closed when Shutdown begins
	drainOnce sync.Once
	inflight  sync.WaitGroup // requests past admission

	// runCtx is cancelled only when the drain deadline expires, hard-
	// cancelling still-running solves (they return best-so-far).
	runCtx    context.Context
	runCancel context.CancelFunc
}

// New builds a Server with cfg (zero fields defaulted).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		cache:   newHierCache(cfg.CacheEntries),
		metrics: newMetrics(),
		sem:     make(chan struct{}, cfg.Concurrency),
		drainCh: make(chan struct{}),
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	s.mux.HandleFunc("/partition", s.handlePartition)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/presets", s.handlePresets)
	profiling.AttachPprof(s.mux)
	return s
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the service: new partition requests are rejected with 503
// immediately, in-flight runs are given until ctx's deadline to finish, and
// past the deadline their contexts are cancelled so they return best-so-far
// truncated results. Shutdown returns once every in-flight request has been
// responded to, or with ctx.Err() if that does not happen even after the
// hard cancel.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Deadline passed: hard-cancel runs, then give them a moment to flush
	// their (truncated) responses.
	s.runCancel()
	select {
	case <-done:
		return nil
	case <-time.After(5 * time.Second):
		return ctx.Err()
	}
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError writes an errorResponse; retryAfter > 0 also sets Retry-After.
func (s *Server) writeError(w http.ResponseWriter, endpoint string, code int, retryAfter int, msg string) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	s.metrics.observeRequest(endpoint, code)
	writeJSON(w, code, errorResponse{Error: msg, RetryAfterSec: retryAfter})
}

func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	const endpoint = "partition"
	if r.Method != http.MethodPost {
		s.writeError(w, endpoint, http.StatusMethodNotAllowed, 0, "POST only")
		return
	}
	if s.draining.Load() {
		s.metrics.observeRejected("draining")
		s.writeError(w, endpoint, http.StatusServiceUnavailable, 5, "server is draining")
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.metrics.observeRejected("too_large")
			s.writeError(w, endpoint, http.StatusRequestEntityTooLarge, 0,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		s.writeError(w, endpoint, http.StatusBadRequest, 0, fmt.Sprintf("bad request body: %v", err))
		return
	}
	req = req.withDefaults(s.cfg)
	if err := req.validate(s.cfg); err != nil {
		var tooLarge errTooLarge
		if errors.As(err, &tooLarge) {
			s.metrics.observeRejected("too_large")
			s.writeError(w, endpoint, http.StatusRequestEntityTooLarge, 0, err.Error())
			return
		}
		s.writeError(w, endpoint, http.StatusBadRequest, 0, err.Error())
		return
	}

	// Admission: bounded queue in front of the worker semaphore.
	if n := atomic.AddInt64(&s.queued, 1); n > int64(s.cfg.QueueDepth) {
		atomic.AddInt64(&s.queued, -1)
		s.metrics.observeRejected("queue_full")
		s.writeError(w, endpoint, http.StatusTooManyRequests, s.retryAfterSec(), "queue full")
		return
	}
	atomic.AddInt64(&s.metrics.queued, 1)
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		atomic.AddInt64(&s.queued, -1)
		atomic.AddInt64(&s.metrics.queued, -1)
		s.writeError(w, endpoint, 499, 0, "client went away while queued")
		return
	case <-s.drainCh:
		atomic.AddInt64(&s.queued, -1)
		atomic.AddInt64(&s.metrics.queued, -1)
		s.metrics.observeRejected("draining")
		s.writeError(w, endpoint, http.StatusServiceUnavailable, 5, "server is draining")
		return
	}
	atomic.AddInt64(&s.queued, -1)
	atomic.AddInt64(&s.metrics.queued, -1)
	atomic.AddInt64(&s.metrics.inflight, 1)
	defer func() {
		atomic.AddInt64(&s.metrics.inflight, -1)
		<-s.sem
	}()

	// The run context: client disconnect or per-request timeout cancels it,
	// and so does the server's hard-cancel at the drain deadline.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	stop := context.AfterFunc(s.runCtx, cancel)
	defer stop()

	t0 := time.Now()
	resp, code, errMsg := s.run(ctx, req)
	elapsed := time.Since(t0)
	s.metrics.observeLatency(elapsed)
	if resp == nil {
		s.writeError(w, endpoint, code, 0, errMsg)
		return
	}
	resp.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	s.metrics.observeRequest(endpoint, http.StatusOK)
	writeJSON(w, http.StatusOK, resp)
}

// retryAfterSec estimates how long a rejected client should wait before
// retrying: one mean request latency, clamped to [1, 30] seconds.
func (s *Server) retryAfterSec() int {
	count := atomic.LoadInt64(&s.metrics.count)
	if count == 0 {
		return 1
	}
	mean := time.Duration(atomic.LoadInt64(&s.metrics.sumNS) / count)
	sec := int(mean / time.Second)
	if sec < 1 {
		return 1
	}
	if sec > 30 {
		return 30
	}
	return sec
}

// buildErrStatus maps a buildProblem failure to its HTTP status: oversized
// .hgr declarations (*hgr.LimitError — the streaming parser's analogue of
// validate's errTooLarge, which fires before JSON uploads get here) are 413,
// every other build failure is a plain 400.
func buildErrStatus(err error) int {
	var le *hgr.LimitError
	if errors.As(err, &le) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// run executes one admitted partition request. It returns either a response,
// or a status code and message for the error path.
func (s *Server) run(ctx context.Context, req Request) (*Response, int, string) {
	phases := &multilevel.PhaseStats{}
	objective, _ := fm.ParseObjective(req.Objective) // validated on admission
	mlCfg := multilevel.Config{
		Objective:       objective,
		MaxPassFraction: passFraction(req.Cutoff),
		RefineMaxPasses: req.RefinePasses,
		Workers:         req.Workers,
		CoarsenWorkers:  req.CoarsenWorkers,
		RefineWorkers:   req.RefineWorkers,
		Stats:           phases,
	}
	mlCfg.LocalizedFMWorkers = req.LocalizedFMWorkers
	if req.Policy == "lifo" {
		mlCfg.SetPolicy(fm.LIFO)
	} else {
		mlCfg.SetPolicy(fm.CLIP)
	}

	var (
		prob      *partition.Problem
		res       *multilevel.Result
		cacheKind string
		name      string
		err       error
	)
	switch {
	case req.K == 2:
		// Cached path: hierarchies keyed by the instance + coarsening
		// config; the hierarchy build seed derives from the key so the
		// built hierarchies are a pure function of the key.
		var key string
		if req.Preset != nil {
			key = req.cacheKey(nil)
		} else {
			prob, name, err = buildProblem(req, s.cfg)
			if err != nil {
				return nil, buildErrStatus(err), err.Error()
			}
			key = req.cacheKey(prob)
		}
		hiers, hit, berr := s.cache.getOrBuild(key, func() ([]*multilevel.Hierarchy, error) {
			p := prob
			if p == nil {
				var perr error
				p, name, perr = buildProblem(req, s.cfg)
				if perr != nil {
					return nil, perr
				}
			}
			seed := hierarchySeed(key)
			return multilevel.BuildHierarchies(ctx, p, mlCfg, req.Hierarchies, seed)
		})
		if berr != nil {
			if ctx.Err() != nil {
				return nil, http.StatusGatewayTimeout, "run cancelled before coarsening finished: " + berr.Error()
			}
			return nil, buildErrStatus(berr), berr.Error()
		}
		cacheKind = "miss"
		if hit {
			cacheKind = "hit"
		}
		prob = hiers[0].Root()
		if name == "" {
			name = req.instanceName()
		}
		baseSeed := rand.New(rand.NewPCG(req.Seed, 0x6a9d)).Uint64()
		res, err = multilevel.MultistartOnHierarchies(ctx, hiers, mlCfg, req.Starts, baseSeed)
	default:
		// k > 2: direct k-way multistart, uncached (hierarchies are 2-way).
		cacheKind = "bypass"
		prob, name, err = buildProblem(req, s.cfg)
		if err != nil {
			return nil, buildErrStatus(err), err.Error()
		}
		rng := rand.New(rand.NewPCG(req.Seed, 0x6a9d))
		res, err = multilevel.ParallelMultistartKWayCtx(ctx, prob, mlCfg, req.Starts, rng)
	}
	if err != nil {
		if ctx.Err() != nil {
			return nil, http.StatusGatewayTimeout, "run cancelled before any start completed: " + err.Error()
		}
		return nil, http.StatusUnprocessableEntity, err.Error()
	}
	s.metrics.observeRun(res, phases, req.CoarsenWorkers, req.RefineWorkers, req.LocalizedFMWorkers, objective.String())
	if ferr := prob.Feasible(res.Assignment); ferr != nil {
		return nil, http.StatusInternalServerError, "internal error: infeasible result: " + ferr.Error()
	}

	assignment := make([]int, len(res.Assignment))
	for v, part := range res.Assignment {
		assignment[v] = int(part)
	}
	return &Response{
		Instance:           name,
		Vertices:           prob.H.NumVertices(),
		Nets:               prob.H.NumNets(),
		Pins:               prob.H.NumPins(),
		K:                  prob.K,
		Fixed:              prob.NumFixed(),
		Cut:                res.Cut,
		KMinus1:            res.KMinus1,
		SOED:               res.SOED,
		Objective:          objective.String(),
		Assignment:         assignment,
		Starts:             res.Starts,
		RequestedStarts:    req.Starts,
		Truncated:          res.Truncated,
		Levels:             res.Levels,
		Cache:              cacheKind,
		CoarsenWorkers:     req.CoarsenWorkers,
		RefineWorkers:      req.RefineWorkers,
		LocalizedFMWorkers: req.LocalizedFMWorkers,
		PartWeights:        partition.PartWeights(prob.H, res.Assignment, prob.K),
		Phases:             phases,
	}, 0, ""
}

// instanceName renders a short instance description for preset requests.
func (r Request) instanceName() string {
	if r.Preset != nil {
		return fmt.Sprintf("%s@%g", r.Preset.Name, r.Preset.Scale)
	}
	return "upload"
}

// hierarchySeed derives the hierarchy build seed from the cache key (FNV-1a
// over its bytes), so building is a pure function of the key.
func hierarchySeed(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// passFraction maps the request's cutoff knob to Config.MaxPassFraction
// (0 and 1 both mean "no cutoff").
func passFraction(cutoff float64) float64 {
	if cutoff >= 1 || cutoff <= 0 {
		return 0
	}
	return cutoff
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	s.metrics.observeRequest("healthz", http.StatusOK)
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        status,
		"inflight":      atomic.LoadInt64(&s.metrics.inflight),
		"queued":        atomic.LoadInt64(&s.queued),
		"cache_entries": s.cache.stats().Entries,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.observeRequest("metrics", http.StatusOK)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writeTo(w, s.cache.stats())
}

func (s *Server) handlePresets(w http.ResponseWriter, r *http.Request) {
	type preset struct {
		Name  string `json:"name"`
		Cells int    `json:"cells"`
		Pads  int    `json:"pads"`
	}
	var out []preset
	for _, pr := range gen.AllPresets() {
		out = append(out, preset{Name: pr.Name, Cells: pr.Params.Cells, Pads: pr.Params.Pads})
	}
	s.metrics.observeRequest("presets", http.StatusOK)
	writeJSON(w, http.StatusOK, out)
}
