package server

import (
	"container/list"
	"sync"

	"repro/internal/multilevel"
)

// hierCache is the LRU hierarchy cache: completed coarsening hierarchies
// keyed by the request's instance/config fingerprint. Entries are immutable
// once built (multilevel.Hierarchy is immutable by construction), so lookups
// hand the same slice to any number of concurrent requests.
//
// Concurrent requests for the same missing key are collapsed: the first
// caller builds, the rest block on the entry's ready channel and count as
// hits. A failed build removes the entry so a later request can retry.
// Eviction only drops the cache's reference — in-flight requests holding the
// hierarchies keep using them; the garbage collector reclaims the memory
// when the last user finishes.
type hierCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*cacheEntry

	hits, misses, evictions int64
}

type cacheEntry struct {
	key   string
	ready chan struct{} // closed when hiers/err are set
	hiers []*multilevel.Hierarchy
	err   error
	elem  *list.Element
}

// cacheStats is a consistent snapshot of the cache counters for /metrics.
type cacheStats struct {
	Hits, Misses, Evictions, Entries int64
}

func newHierCache(capacity int) *hierCache {
	if capacity < 1 {
		capacity = 1
	}
	return &hierCache{cap: capacity, ll: list.New(), byKey: make(map[string]*cacheEntry)}
}

// getOrBuild returns the hierarchies for key, building them with build on a
// miss. hit reports whether the key was already present (including "present
// but still building", in which case the call blocks until the builder
// finishes). The build runs outside the cache lock, so slow coarsening never
// stalls lookups of other keys.
func (c *hierCache) getOrBuild(key string, build func() ([]*multilevel.Hierarchy, error)) (hiers []*multilevel.Hierarchy, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.byKey[key]; ok {
		c.hits++
		c.ll.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.ready
		return e.hiers, true, e.err
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.misses++
	e.elem = c.ll.PushFront(e)
	c.byKey[key] = e
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.mu.Unlock()

	e.hiers, e.err = build()
	close(e.ready)
	if e.err != nil {
		// Drop failed builds so the next request retries instead of being
		// served a cached error (the failure may be transient, e.g. a
		// cancelled build context).
		c.mu.Lock()
		if cur, ok := c.byKey[key]; ok && cur == e {
			c.ll.Remove(e.elem)
			delete(c.byKey, key)
		}
		c.mu.Unlock()
	}
	return e.hiers, false, e.err
}

// stats returns a snapshot of the counters.
func (c *hierCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: int64(c.ll.Len())}
}
