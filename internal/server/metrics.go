package server

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fm"
	"repro/internal/multilevel"
)

// latencyBuckets are the upper bounds (seconds) of the request-duration
// histogram; an implicit +Inf bucket follows.
var latencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// metrics is the process-wide observability surface, rendered as Prometheus
// text exposition (no external dependencies). Counters are monotonic and
// updated either atomically or under the map mutex, so any number of request
// goroutines may record concurrently while /metrics renders.
type metrics struct {
	mu        sync.Mutex
	requests  map[string]int64 // "endpoint|code" -> count
	rejected  map[string]int64 // reason -> count
	objective map[string]int64 // objective name -> completed runs

	// Partition-request latency histogram (len(latencyBuckets)+1 slots,
	// the last one the +Inf bucket).
	buckets []int64
	sumNS   int64
	count   int64

	inflight  int64
	queued    int64
	truncated int64
	starts    int64

	coarsenNS int64
	initNS    int64
	refineNS  int64
	// refineParNS accumulates the synchronous-round parallel refinement
	// stage; refineNS counts only the serial FM polish, mirroring
	// PhaseStats.
	refineParNS int64
	// refineLocNS accumulates the localized FM stage at the finest level,
	// again mirroring PhaseStats.
	refineLocNS int64
	// coarsenWorkers / refineWorkers / localizedFMWorkers are the effective
	// per-descent worker counts of the most recent completed run (after
	// defaulting and the GOMAXPROCS clamp).
	coarsenWorkers     int64
	refineWorkers      int64
	localizedFMWorkers int64
	kernel             fm.KernelStats
}

func newMetrics() *metrics {
	return &metrics{
		requests:  make(map[string]int64),
		rejected:  make(map[string]int64),
		objective: make(map[string]int64),
		buckets:   make([]int64, len(latencyBuckets)+1),
	}
}

// observeRequest counts one finished HTTP request.
func (m *metrics) observeRequest(endpoint string, code int) {
	m.mu.Lock()
	m.requests[fmt.Sprintf("%s|%d", endpoint, code)]++
	m.mu.Unlock()
}

// observeLatency records one partition-run duration in the histogram.
func (m *metrics) observeLatency(d time.Duration) {
	sec := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, sec)
	atomic.AddInt64(&m.buckets[i], 1)
	atomic.AddInt64(&m.sumNS, d.Nanoseconds())
	atomic.AddInt64(&m.count, 1)
}

// observeRejected counts one rejected request by reason
// (queue_full, too_large, draining, timeout).
func (m *metrics) observeRejected(reason string) {
	m.mu.Lock()
	m.rejected[reason]++
	m.mu.Unlock()
}

// observeRun folds one completed partition run into the aggregate engine
// counters: starts actually executed, truncation, the objective optimized,
// the effective coarsening worker count, and the per-phase wall time and
// FM-kernel work the run recorded in its private PhaseStats.
func (m *metrics) observeRun(res *multilevel.Result, phases *multilevel.PhaseStats, coarsenWorkers, refineWorkers, localizedFMWorkers int, objective string) {
	atomic.AddInt64(&m.starts, int64(res.Starts))
	m.mu.Lock()
	m.objective[objective]++
	m.mu.Unlock()
	atomic.StoreInt64(&m.coarsenWorkers, int64(coarsenWorkers))
	atomic.StoreInt64(&m.refineWorkers, int64(refineWorkers))
	atomic.StoreInt64(&m.localizedFMWorkers, int64(localizedFMWorkers))
	if res.Truncated {
		atomic.AddInt64(&m.truncated, 1)
	}
	if phases != nil {
		atomic.AddInt64(&m.coarsenNS, atomic.LoadInt64(&phases.CoarsenNS))
		atomic.AddInt64(&m.initNS, atomic.LoadInt64(&phases.InitNS))
		atomic.AddInt64(&m.refineNS, atomic.LoadInt64(&phases.RefineNS))
		atomic.AddInt64(&m.refineParNS, atomic.LoadInt64(&phases.RefineParallelNS))
		atomic.AddInt64(&m.refineLocNS, atomic.LoadInt64(&phases.RefineLocalizedNS))
		k := phases.Kernel.Snapshot()
		atomic.AddInt64(&m.kernel.NetsSkipped, k.NetsSkipped)
		atomic.AddInt64(&m.kernel.PinScansAvoided, k.PinScansAvoided)
		atomic.AddInt64(&m.kernel.PinsScanned, k.PinsScanned)
		atomic.AddInt64(&m.kernel.BucketUpdatesSaved, k.BucketUpdatesSaved)
	}
}

// writeTo renders every counter in Prometheus text exposition format v0.0.4.
func (m *metrics) writeTo(w io.Writer, cache cacheStats) {
	head := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	head("hpartd_requests_total", "HTTP requests served, by endpoint and status code.", "counter")
	m.mu.Lock()
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		endpoint, code, _ := strings.Cut(k, "|")
		fmt.Fprintf(w, "hpartd_requests_total{endpoint=%q,code=%q} %d\n", endpoint, code, m.requests[k])
	}
	rkeys := make([]string, 0, len(m.rejected))
	for k := range m.rejected {
		rkeys = append(rkeys, k)
	}
	sort.Strings(rkeys)
	rejected := make(map[string]int64, len(m.rejected))
	for _, k := range rkeys {
		rejected[k] = m.rejected[k]
	}
	okeys := make([]string, 0, len(m.objective))
	for k := range m.objective {
		okeys = append(okeys, k)
	}
	sort.Strings(okeys)
	objective := make(map[string]int64, len(m.objective))
	for _, k := range okeys {
		objective[k] = m.objective[k]
	}
	m.mu.Unlock()

	head("hpartd_rejected_total", "Requests rejected by admission control, by reason.", "counter")
	for _, k := range rkeys {
		fmt.Fprintf(w, "hpartd_rejected_total{reason=%q} %d\n", k, rejected[k])
	}

	head("hpartd_objective_runs_total", "Completed partition runs, by optimized objective.", "counter")
	for _, k := range okeys {
		fmt.Fprintf(w, "hpartd_objective_runs_total{objective=%q} %d\n", k, objective[k])
	}

	head("hpartd_request_duration_seconds", "Partition request latency.", "histogram")
	cum := int64(0)
	for i, ub := range latencyBuckets {
		cum += atomic.LoadInt64(&m.buckets[i])
		fmt.Fprintf(w, "hpartd_request_duration_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += atomic.LoadInt64(&m.buckets[len(latencyBuckets)])
	fmt.Fprintf(w, "hpartd_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "hpartd_request_duration_seconds_sum %g\n", float64(atomic.LoadInt64(&m.sumNS))/1e9)
	fmt.Fprintf(w, "hpartd_request_duration_seconds_count %d\n", atomic.LoadInt64(&m.count))

	gauge := func(name, help string, v int64) {
		head(name, help, "gauge")
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
	counter := func(name, help string, v int64) {
		head(name, help, "counter")
		fmt.Fprintf(w, "%s %d\n", name, v)
	}

	gauge("hpartd_inflight_requests", "Partition requests currently executing.", atomic.LoadInt64(&m.inflight))
	gauge("hpartd_queued_requests", "Partition requests waiting for a worker slot.", atomic.LoadInt64(&m.queued))
	counter("hpartd_truncated_total", "Partition runs cut short by timeout or shutdown that returned a best-so-far result.", atomic.LoadInt64(&m.truncated))
	counter("hpartd_starts_total", "Multistart descents executed across all requests.", atomic.LoadInt64(&m.starts))

	counter("hpartd_cache_hits_total", "Hierarchy cache hits.", cache.Hits)
	counter("hpartd_cache_misses_total", "Hierarchy cache misses.", cache.Misses)
	counter("hpartd_cache_evictions_total", "Hierarchy cache evictions.", cache.Evictions)
	gauge("hpartd_cache_entries", "Hierarchy cache entries resident.", cache.Entries)

	head("hpartd_phase_seconds_total", "Engine wall time by multilevel phase.", "counter")
	fmt.Fprintf(w, "hpartd_phase_seconds_total{phase=\"coarsen\"} %g\n", float64(atomic.LoadInt64(&m.coarsenNS))/1e9)
	fmt.Fprintf(w, "hpartd_phase_seconds_total{phase=\"init\"} %g\n", float64(atomic.LoadInt64(&m.initNS))/1e9)
	fmt.Fprintf(w, "hpartd_phase_seconds_total{phase=\"refine\"} %g\n", float64(atomic.LoadInt64(&m.refineNS))/1e9)
	fmt.Fprintf(w, "hpartd_phase_seconds_total{phase=\"refine_parallel\"} %g\n", float64(atomic.LoadInt64(&m.refineParNS))/1e9)
	fmt.Fprintf(w, "hpartd_phase_seconds_total{phase=\"refine_localized\"} %g\n", float64(atomic.LoadInt64(&m.refineLocNS))/1e9)

	gauge("hpartd_coarsen_workers", "Effective intra-descent coarsening parallelism of the most recent run.", atomic.LoadInt64(&m.coarsenWorkers))
	counter("hpartd_coarsen_phase_ns_total", "Coarsening-phase wall time in nanoseconds across all runs.", atomic.LoadInt64(&m.coarsenNS))

	gauge("hpartd_refine_workers", "Effective parallel-refinement worker count of the most recent run (0 = stage off).", atomic.LoadInt64(&m.refineWorkers))
	counter("hpartd_refine_phase_ns_total", "Parallel-refinement-stage wall time in nanoseconds across all runs (serial polish excluded).", atomic.LoadInt64(&m.refineParNS))

	gauge("hpartd_localized_fm_workers", "Effective localized-FM worker count of the most recent run (0 = stage off).", atomic.LoadInt64(&m.localizedFMWorkers))
	counter("hpartd_localized_fm_phase_ns_total", "Localized-FM-stage wall time in nanoseconds across all runs.", atomic.LoadInt64(&m.refineLocNS))

	k := m.kernel.Snapshot()
	counter("hpartd_fm_nets_skipped_total", "Nets bypassed by locked-net short-circuiting in the FM kernel.", k.NetsSkipped)
	counter("hpartd_fm_pin_scans_avoided_total", "Gain-update pin traversals avoided by the net-state-aware kernel.", k.PinScansAvoided)
	counter("hpartd_fm_pins_scanned_total", "Gain-update pin traversals executed by the FM kernel.", k.PinsScanned)
	counter("hpartd_fm_bucket_updates_saved_total", "Gain-bucket repositionings folded away by batched updates.", k.BucketUpdatesSaved)
}
