package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// The same 8-vertex instance as TestPartitionUploadAndKWay's JSON upload,
// expressed as .hgr text. Both spellings must build to the same
// Problem.Fingerprint and therefore share one hierarchy-cache entry.
const (
	hgrUploadText = "5 8\n1 2 3\n3 4 5\n5 6 7\n7 8 1\n2 6\n"
	jsonUpload    = `{"hypergraph":{"areas":[1,1,1,1,1,1,1,1],"nets":[[0,1,2],[2,3,4],[4,5,6],[6,7,0],[1,5]]},"starts":2}`
)

func hgrBody(hgrText, fixText, extra string) string {
	spec := map[string]string{"hgr": hgrText}
	if fixText != "" {
		spec["fix"] = fixText
	}
	raw, _ := json.Marshal(spec)
	s := `{"hgr":` + string(raw) + `,"starts":2`
	if extra != "" {
		s += "," + extra
	}
	return s + "}"
}

func TestPartitionHGRUpload(t *testing.T) {
	s := New(Config{})
	fix := "0\n-1\n-1\n-1\n1\n-1\n-1\n-1\n"
	rec, resp := post(t, s.Handler(), hgrBody(hgrUploadText, fix, `"tolerance":0.3`))
	if resp == nil {
		t.Fatalf("hgr upload failed: %d %s", rec.Code, rec.Body.String())
	}
	if resp.Vertices != 8 || resp.Nets != 5 || resp.K != 2 {
		t.Errorf("shape %d/%d k=%d, want 8/5 k=2", resp.Vertices, resp.Nets, resp.K)
	}
	if resp.Fixed != 2 {
		t.Errorf("fixed=%d, want 2 (the .fix constraints must be echoed)", resp.Fixed)
	}
	if !strings.HasPrefix(resp.Instance, "hgr:") {
		t.Errorf("instance %q, want hgr:<fingerprint>", resp.Instance)
	}
	if resp.Assignment[0] != 0 || resp.Assignment[4] != 1 {
		t.Errorf("fixed vertices landed on %d/%d, want 0/1", resp.Assignment[0], resp.Assignment[4])
	}
	if _, warm := post(t, s.Handler(), hgrBody(hgrUploadText, fix, `"tolerance":0.3`)); warm == nil || warm.Cache != "hit" {
		t.Error("re-uploaded identical .hgr instance missed the cache")
	}
}

// TestPartitionHGRJSONCacheShared is the differential test: the same
// instance uploaded as JSON and as .hgr text must produce identical
// solutions from ONE shared hierarchy-cache entry — the .hgr request after
// the JSON one is a hit, not a second miss.
func TestPartitionHGRJSONCacheShared(t *testing.T) {
	s := New(Config{})
	_, cold := post(t, s.Handler(), jsonUpload)
	if cold == nil {
		t.Fatal("JSON upload failed")
	}
	if cold.Cache != "miss" {
		t.Fatalf("first upload cache=%q, want miss", cold.Cache)
	}
	rec, warm := post(t, s.Handler(), hgrBody(hgrUploadText, "", ""))
	if warm == nil {
		t.Fatalf("hgr upload failed: %d %s", rec.Code, rec.Body.String())
	}
	if warm.Cache != "hit" {
		t.Errorf("hgr upload of the JSON-uploaded instance: cache=%q, want hit", warm.Cache)
	}
	if warm.Cut != cold.Cut {
		t.Errorf("hgr cut %d != JSON cut %d for the same instance", warm.Cut, cold.Cut)
	}
	for v := range warm.Assignment {
		if warm.Assignment[v] != cold.Assignment[v] {
			t.Fatalf("assignments diverge at vertex %d", v)
		}
	}
}

func TestPartitionHGRKWay(t *testing.T) {
	s := New(Config{})
	rec, resp := post(t, s.Handler(), hgrBody(hgrUploadText, "", `"k":4,"tolerance":0.5`))
	if resp == nil {
		t.Fatalf("k=4 hgr upload failed: %d %s", rec.Code, rec.Body.String())
	}
	if resp.K != 4 || resp.Cache != "bypass" {
		t.Errorf("k=4: k=%d cache=%q, want 4/bypass", resp.K, resp.Cache)
	}
}

// Malformed .hgr/.fix text is a 400 whose message carries the parser's
// line-numbered diagnosis; oversized declarations are 413.
func TestPartitionHGRErrors(t *testing.T) {
	s := New(Config{})
	cases := map[string]struct {
		body     string
		wantCode int
		wantMsg  string
	}{
		"bad pin": {hgrBody("1 3\n1 x\n", "", ""),
			http.StatusBadRequest, "hgr: line 2: bad pin"},
		"truncated": {hgrBody("2 3\n1 2\n", "", ""),
			http.StatusBadRequest, "hgr: truncated file: 1 of 2 net lines"},
		"bad fix part": {hgrBody(hgrUploadText, "9\n-1\n-1\n-1\n-1\n-1\n-1\n-1\n", ""),
			http.StatusBadRequest, "fix: line 1: part 9 outside [0, 2)"},
		"empty netlist": {hgrBody("  ", "", ""),
			http.StatusBadRequest, "hgr upload has empty netlist text"},
		"both hgr and json": {`{"hgr":{"hgr":"1 2\n1 2\n"},"hypergraph":{"areas":[1,1],"nets":[[0,1]]}}`,
			http.StatusBadRequest, "exactly one of"},
		"heavy vertex": {hgrBody("1 2 10\n1 2\n100\n1\n", "", ""),
			http.StatusBadRequest, "exceeds the capacity of every part"},
	}
	for name, tc := range cases {
		rec, _ := post(t, s.Handler(), tc.body)
		if rec.Code != tc.wantCode {
			t.Errorf("%s: status %d, want %d (%s)", name, rec.Code, tc.wantCode, rec.Body.String())
			continue
		}
		if !strings.Contains(rec.Body.String(), tc.wantMsg) {
			t.Errorf("%s: body %q does not carry %q", name, rec.Body.String(), tc.wantMsg)
		}
	}

	tiny := New(Config{MaxVertices: 4})
	rec, _ := post(t, tiny.Handler(), hgrBody("1 400\n1 2\n", "", ""))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized .hgr declaration: %d, want 413 (%s)", rec.Code, rec.Body.String())
	}
}
