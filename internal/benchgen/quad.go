package benchgen

import (
	"fmt"

	"repro/internal/geometry"
	"repro/internal/hypergraph"
	"repro/internal/partition"
	"repro/internal/place"
)

// DeriveQuad builds a quadrisection (4-way) benchmark instance from a
// placement block, exercising the remaining features of the paper's proposed
// benchmark type: multiple partition geometries and terminals fixed in more
// than one partition with OR semantics.
//
// Each external vertex propagates a *source region* onto the block
// (geometry.PropagationRegion) and is allowed in every quadrant the
// propagated region touches. The source region is the vertex's exact placed
// location unless it falls inside one of externalRegions — typically the
// sibling blocks of the slicing hierarchy, within which a cell's final
// position is still undecided during top-down placement. A cell floating in
// the sibling half to the left of the block thus propagates to the block's
// left edge strip and may go to either left-side quadrant, exactly the
// paper's OR example.
func DeriveQuad(pl *place.Placement, name string, block Rect, externalRegions []geometry.Rect, tol float64) (*Instance, error) {
	gBlock := geometry.Rect{X0: block.X0, Y0: block.Y0, X1: block.X1, Y1: block.Y1}
	layout := geometry.QuadrisectionOf(gBlock)
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	h := pl.H
	nv := h.NumVertices()

	b := hypergraph.NewBuilder(1)
	b.DropSingletons = true
	b.DedupPins = true
	subOf := make([]int32, nv)
	for i := range subOf {
		subOf[i] = -1
	}
	var cellOf []int32
	var masks []partition.Mask
	free := partition.AllParts(4)
	inBlock := func(v int) bool {
		return !h.IsPad(v) && block.Contains(pl.X[v], pl.Y[v])
	}
	for v := 0; v < nv; v++ {
		if inBlock(v) {
			id := b.AddCell(h.VertexName(v), h.Weight(v))
			subOf[v] = int32(id)
			cellOf = append(cellOf, int32(v))
			masks = append(masks, free)
		}
	}
	nCells := len(cellOf)
	if nCells < 4 {
		return nil, fmt.Errorf("benchgen: block %q contains %d cells; need at least 4 for quadrisection", name, nCells)
	}

	externalNets := 0
	netSeen := make([]bool, h.NumNets())
	var pins []int
	for ci := 0; ci < nCells; ci++ {
		pv := cellOf[ci]
		for _, en := range h.NetsOf(int(pv)) {
			if netSeen[en] {
				continue
			}
			netSeen[en] = true
			pins = pins[:0]
			external := false
			for _, u := range h.Pins(int(en)) {
				if subOf[u] >= 0 && inBlock(int(u)) {
					pins = append(pins, int(subOf[u]))
					continue
				}
				external = true
				if subOf[u] < 0 {
					src := geometry.Point(pl.X[u], pl.Y[u])
					for _, er := range externalRegions {
						if er.Contains(pl.X[u], pl.Y[u]) {
							src = er
							break
						}
					}
					region := geometry.PropagationRegion(gBlock, src)
					mask, err := layout.MaskForRegion(region)
					if err != nil {
						return nil, fmt.Errorf("benchgen: terminal for %s: %w", h.VertexName(int(u)), err)
					}
					id := b.AddPad(h.VertexName(int(u)))
					subOf[u] = int32(id)
					cellOf = append(cellOf, int32(u))
					masks = append(masks, mask)
				}
				pins = append(pins, int(subOf[u]))
			}
			if external {
				externalNets++
			}
			if len(pins) >= 2 {
				b.AddNet(pins...)
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("benchgen: %w", err)
	}
	prob := &partition.Problem{
		H:       sub,
		K:       4,
		Balance: partition.NewUniform(sub, 4, tol),
		Allowed: masks,
	}
	if err := prob.Validate(); err != nil {
		return nil, fmt.Errorf("benchgen: derived quad instance invalid: %w", err)
	}
	st := hypergraph.ComputeStats(sub)
	return &Instance{
		Name:    name,
		Problem: prob,
		CellOf:  cellOf,
		Stats: InstanceStats{
			Cells:        nCells,
			Nets:         sub.NumNets(),
			Pads:         sub.NumVertices() - nCells,
			ExternalNets: externalNets,
			MaxPct:       st.MaxWeightPct,
		},
	}, nil
}
