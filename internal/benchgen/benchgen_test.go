package benchgen_test

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/benchgen"
	"repro/internal/fm"
	"repro/internal/gen"
	"repro/internal/geometry"
	"repro/internal/multilevel"
	"repro/internal/partition"
	"repro/internal/place"
)

func testPlacement(t *testing.T, cells int, seed uint64) *place.Placement {
	t.Helper()
	nl, err := gen.Generate(gen.Params{
		Cells:        cells,
		Pads:         20,
		RentExponent: 0.65,
		PinsPerCell:  3.6,
		AvgNetSize:   3.3,
		MaxAreaPct:   3,
		Seed:         seed,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	nv := nl.H.NumVertices()
	fx := make([]float64, nv)
	fy := make([]float64, nv)
	for v := 0; v < nv; v++ {
		if nl.H.IsPad(v) {
			fx[v] = float64(nl.CellX[v]) / float64(nl.GridSide) * 100
			fy[v] = float64(nl.CellY[v]) / float64(nl.GridSide) * 100
		} else {
			fx[v], fy[v] = math.NaN(), math.NaN()
		}
	}
	pl, err := place.Place(nl.H, place.Config{Width: 100, Height: 100, FixedX: fx, FixedY: fy},
		rand.New(rand.NewPCG(seed, 77)))
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	return pl
}

func TestStandardSpecs(t *testing.T) {
	pl := testPlacement(t, 300, 1)
	specs := benchgen.StandardSpecs(pl, "T01S")
	if len(specs) != 8 {
		t.Fatalf("specs = %d, want 8", len(specs))
	}
	var v, h int
	for _, s := range specs {
		if !strings.HasPrefix(s.Name, "T01S") {
			t.Errorf("name %q missing base", s.Name)
		}
		if strings.HasSuffix(s.Name, "_V") {
			v++
		}
		if strings.HasSuffix(s.Name, "_H") {
			h++
		}
	}
	if v != 4 || h != 4 {
		t.Errorf("cut direction split %d/%d, want 4/4", v, h)
	}
}

func TestDeriveWholeChip(t *testing.T) {
	pl := testPlacement(t, 300, 2)
	specs := benchgen.StandardSpecs(pl, "T")
	inst, err := benchgen.Derive(pl, specs[0], 0.02) // block A, vertical cut
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	h := inst.Problem.H
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := inst.Problem.Validate(); err != nil {
		t.Fatalf("problem invalid: %v", err)
	}
	// Whole chip: every non-pad vertex is movable; terminals come from pads.
	wantCells := 0
	for v := 0; v < pl.H.NumVertices(); v++ {
		if !pl.H.IsPad(v) {
			wantCells++
		}
	}
	if inst.Stats.Cells != wantCells {
		t.Errorf("cells = %d, want %d", inst.Stats.Cells, wantCells)
	}
	if inst.Stats.Pads == 0 || inst.Stats.Pads > pl.H.NumPads() {
		t.Errorf("pads = %d, want in (0,%d]", inst.Stats.Pads, pl.H.NumPads())
	}
	if inst.Stats.Cells+inst.Stats.Pads != h.NumVertices() {
		t.Errorf("cells+pads = %d, vertices = %d", inst.Stats.Cells+inst.Stats.Pads, h.NumVertices())
	}
	if inst.Stats.ExternalNets == 0 {
		t.Error("expected external nets from pads")
	}
	// Terminals: zero area, fixed to a single part.
	for v := inst.Stats.Cells; v < h.NumVertices(); v++ {
		if h.Weight(v) != 0 {
			t.Errorf("terminal %d has area %d", v, h.Weight(v))
		}
		if _, ok := inst.Problem.FixedPart(v); !ok {
			t.Errorf("terminal %d not fixed", v)
		}
	}
	if inst.Problem.NumFixed() != inst.Stats.Pads {
		t.Errorf("NumFixed = %d, pads = %d", inst.Problem.NumFixed(), inst.Stats.Pads)
	}
}

func TestDeriveHalfBlockHasPropagatedTerminals(t *testing.T) {
	pl := testPlacement(t, 400, 3)
	specs := benchgen.StandardSpecs(pl, "T")
	// Block B = left half.
	var inst *benchgen.Instance
	for _, s := range specs {
		if strings.Contains(s.Name, "B_L1_V0") && s.Cut == benchgen.Vertical {
			got, err := benchgen.Derive(pl, s, 0.02)
			if err != nil {
				t.Fatalf("Derive: %v", err)
			}
			inst = got
		}
	}
	if inst == nil {
		t.Fatal("block B spec not found")
	}
	// The half block must have substantially more terminals than the chip
	// has pads: cut nets of the placement propagate in.
	if inst.Stats.Pads <= 3 {
		t.Errorf("half block has %d terminals; expected propagated terminals from the other half", inst.Stats.Pads)
	}
	if f := inst.Problem.FixedFraction(); f <= 0 || f >= 1 {
		t.Errorf("fixed fraction = %v", f)
	}
	t.Logf("half-block instance: %+v (fixed fraction %.1f%%)", inst.Stats, 100*inst.Problem.FixedFraction())
}

func TestDeriveTerminalSides(t *testing.T) {
	pl := testPlacement(t, 300, 4)
	spec := benchgen.Spec{
		Name:  "half",
		Block: benchgen.Rect{X0: 0, Y0: 0, X1: 50, Y1: 100.01},
		Cut:   benchgen.Vertical, // cutline at x=25
	}
	inst, err := benchgen.Derive(pl, spec, 0.02)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	for i := inst.Stats.Cells; i < inst.Problem.H.NumVertices(); i++ {
		orig := int(inst.CellOf[i])
		part, ok := inst.Problem.FixedPart(i)
		if !ok {
			t.Fatalf("terminal %d not fixed", i)
		}
		x := pl.X[orig]
		if x < 0 {
			x = 0
		}
		if x > 50 {
			x = 50
		}
		want := 0
		if x >= 25 {
			want = 1
		}
		if part != want {
			t.Errorf("terminal for vertex %d at x=%.1f fixed in part %d, want %d", orig, pl.X[orig], part, want)
		}
	}
}

func TestDeriveErrors(t *testing.T) {
	pl := testPlacement(t, 300, 5)
	empty := benchgen.Spec{Name: "empty", Block: benchgen.Rect{X0: -10, Y0: -10, X1: -5, Y1: -5}}
	if _, err := benchgen.Derive(pl, empty, 0.02); err == nil {
		t.Error("want error for empty block")
	}
}

func TestDerivedInstanceIsPartitionable(t *testing.T) {
	pl := testPlacement(t, 400, 6)
	specs := benchgen.StandardSpecs(pl, "T")
	inst, err := benchgen.Derive(pl, specs[2], 0.02) // block B vertical
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	res, err := multilevel.Partition(inst.Problem, multilevel.Config{}, rand.New(rand.NewPCG(6, 6)))
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	if err := inst.Problem.Feasible(res.Assignment); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if res.Cut < 0 {
		t.Errorf("cut = %d", res.Cut)
	}
}

func TestCutDirString(t *testing.T) {
	if benchgen.Vertical.String() != "V" || benchgen.Horizontal.String() != "H" {
		t.Error("CutDir strings wrong")
	}
}

func TestRectContains(t *testing.T) {
	r := benchgen.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}
	if !r.Contains(0, 0) || r.Contains(10, 5) || r.Contains(5, -1) {
		t.Error("Contains boundary semantics wrong (half-open)")
	}
}

func TestDeriveQuad(t *testing.T) {
	pl := testPlacement(t, 500, 8)
	block := benchgen.Rect{X0: 0, Y0: 0, X1: 50, Y1: 100.01} // left half
	// External cells float in the sibling (right) half of the chip.
	sibling := []geometry.Rect{{X0: 50, Y0: 0, X1: 100.01, Y1: 100.01}}
	inst, err := benchgen.DeriveQuad(pl, "quadB", block, sibling, 0.05)
	if err != nil {
		t.Fatalf("DeriveQuad: %v", err)
	}
	if inst.Problem.K != 4 {
		t.Fatalf("K = %d", inst.Problem.K)
	}
	if err := inst.Problem.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	h := inst.Problem.H
	orSeen := false
	for v := inst.Stats.Cells; v < h.NumVertices(); v++ {
		mask := inst.Problem.MaskOf(v)
		n := mask.Count()
		if n < 1 || n > 4 {
			t.Fatalf("terminal %d mask %b", v, mask)
		}
		if n >= 2 && n < 4 {
			orSeen = true
		}
		if h.Weight(v) != 0 {
			t.Errorf("terminal %d has area", v)
		}
	}
	if !orSeen {
		t.Error("expected at least one OR-region terminal (multi-quadrant mask)")
	}
	// The instance is solvable 4-way.
	rng := rand.New(rand.NewPCG(8, 8))
	initial, err := partition.RandomFeasible(inst.Problem, rng)
	if err != nil {
		t.Fatalf("RandomFeasible: %v", err)
	}
	res, err := fm.KWayPartition(inst.Problem, initial, fm.Config{Policy: fm.CLIP})
	if err != nil {
		t.Fatalf("KWayPartition: %v", err)
	}
	if err := inst.Problem.Feasible(res.Assignment); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	t.Logf("quad instance: %+v, kway cut=%d", inst.Stats, res.Cut)
}

func TestDeriveQuadErrors(t *testing.T) {
	pl := testPlacement(t, 300, 9)
	empty := benchgen.Rect{X0: -5, Y0: -5, X1: -1, Y1: -1}
	if _, err := benchgen.DeriveQuad(pl, "e", empty, nil, 0.05); err == nil {
		t.Error("want error for empty block")
	}
}

func TestSpecsAtLevel(t *testing.T) {
	pl := testPlacement(t, 300, 10)
	l0 := benchgen.SpecsAtLevel(pl, "X", 0)
	if len(l0) != 2 {
		t.Fatalf("level 0 specs = %d", len(l0))
	}
	l2 := benchgen.SpecsAtLevel(pl, "X", 2)
	if len(l2) != 8 {
		t.Fatalf("level 2 specs = %d, want 4 blocks x 2 cuts", len(l2))
	}
	names := map[string]bool{}
	totalCells := 0
	for _, s := range l2 {
		if names[s.Name] {
			t.Errorf("duplicate name %q", s.Name)
		}
		names[s.Name] = true
		if s.Cut == benchgen.Vertical {
			inst, err := benchgen.Derive(pl, s, 0.1)
			if err != nil {
				t.Fatalf("Derive %s: %v", s.Name, err)
			}
			totalCells += inst.Stats.Cells
		}
	}
	// The four level-2 blocks tile the chip: movable cells sum to all cells.
	wantCells := 0
	for v := 0; v < pl.H.NumVertices(); v++ {
		if !pl.H.IsPad(v) {
			wantCells++
		}
	}
	if totalCells != wantCells {
		t.Errorf("level-2 blocks cover %d cells, want %d", totalCells, wantCells)
	}
}

func TestWirelengthWeights(t *testing.T) {
	pl := testPlacement(t, 400, 11)
	base := benchgen.Spec{
		Name:  "plain",
		Block: benchgen.Rect{X0: 0, Y0: 0, X1: 100.01, Y1: 100.01},
		Cut:   benchgen.Vertical,
	}
	weighted := base
	weighted.Name = "weighted"
	weighted.WirelengthWeights = true

	plain, err := benchgen.Derive(pl, base, 0.02)
	if err != nil {
		t.Fatalf("Derive plain: %v", err)
	}
	wl, err := benchgen.Derive(pl, weighted, 0.02)
	if err != nil {
		t.Fatalf("Derive weighted: %v", err)
	}
	if plain.Stats.Nets != wl.Stats.Nets {
		t.Fatalf("net counts differ: %d vs %d", plain.Stats.Nets, wl.Stats.Nets)
	}
	varied := false
	for e := 0; e < wl.Problem.H.NumNets(); e++ {
		w := wl.Problem.H.NetWeight(e)
		if w < 1 || w > 16 {
			t.Fatalf("net %d weight %d outside [1,16]", e, w)
		}
		if w != 1 {
			varied = true
		}
		if plain.Problem.H.NetWeight(e) != 1 {
			t.Fatalf("plain instance has weighted net %d", e)
		}
	}
	if !varied {
		t.Error("wirelength weighting produced all-unit weights")
	}
	// The weighted instance is partitionable and its cut reflects weights.
	res, err := multilevel.Partition(wl.Problem, multilevel.Config{}, rand.New(rand.NewPCG(11, 11)))
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	if res.Cut != partition.Cut(wl.Problem.H, res.Assignment) {
		t.Error("cut mismatch on weighted instance")
	}
}
