// Package benchgen derives fixed-terminals partitioning benchmarks from
// placements, following Section IV of the paper:
//
//   - a block is an axis-parallel rectangle laid over the placement;
//   - an axis-parallel cutline bisects the block;
//   - each cell contained in the block induces a movable vertex;
//   - each pad adjacent to a cell in the block induces a zero-area terminal
//     vertex fixed in the closest partition, and adjacent cells outside the
//     block similarly induce terminals;
//   - instances are named by the level at which they occur (L0, L1_V0, ...).
//
// This construction deliberately creates more terminal vertices than there
// are external nets (terminals are per external pin, not per net), which
// does not affect the partitioning problem because terminals have zero area.
package benchgen

import (
	"fmt"
	"math"

	"repro/internal/hypergraph"
	"repro/internal/partition"
	"repro/internal/place"
)

// CutDir is the orientation of the cutline bisecting a block.
type CutDir int

const (
	// Vertical cutlines split a block into left (part 0) and right (part 1).
	Vertical CutDir = iota
	// Horizontal cutlines split a block into bottom (part 0) and top (part 1).
	Horizontal
)

// String returns "V" or "H".
func (d CutDir) String() string {
	if d == Vertical {
		return "V"
	}
	return "H"
}

// Rect is an axis-parallel rectangle in placement coordinates.
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// Contains reports whether (x, y) lies in the rectangle (inclusive on the
// low edges, exclusive on the high edges except at the outer boundary —
// callers pass blocks that tile the chip, so shared edges must not double
// count).
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// Spec names a benchmark instance: a block rectangle plus a cutline
// direction.
type Spec struct {
	Name  string
	Block Rect
	Cut   CutDir
	// WirelengthWeights, when set, derives a placement-specific objective
	// (the paper's footnote on "net bounding boxes and Steiner tree
	// estimators"): each net's weight becomes 1 plus its placed bounding-box
	// extent perpendicular to the cutline, scaled to [1, 16], so the
	// partitioner prefers to cut nets that already span the cutline region
	// and spares short local nets.
	WirelengthWeights bool
}

// InstanceStats are the Table IV parameters of a derived instance.
type InstanceStats struct {
	Cells        int     // movable vertices
	Nets         int     // nets retained in the instance
	Pads         int     // terminal vertices (fixed, zero area)
	ExternalNets int     // nets incident to at least one terminal
	MaxPct       float64 // largest cell area as % of total cell area
}

// Instance is a derived fixed-terminals partitioning benchmark.
type Instance struct {
	Name    string
	Problem *partition.Problem
	Stats   InstanceStats
	// CellOf maps the instance's movable vertices back to placement
	// vertices (terminal vertices map to the external vertex they shadow).
	CellOf []int32
}

// Derive builds the benchmark instance for spec over the placement, with a
// relative balance tolerance tol (the paper uses 0.02).
func Derive(pl *place.Placement, spec Spec, tol float64) (*Instance, error) {
	h := pl.H
	nv := h.NumVertices()
	mid := (spec.Block.X0 + spec.Block.X1) / 2
	if spec.Cut == Horizontal {
		mid = (spec.Block.Y0 + spec.Block.Y1) / 2
	}

	b := hypergraph.NewBuilder(1)
	b.DropSingletons = true
	b.DedupPins = true
	subOf := make([]int32, nv)
	for i := range subOf {
		subOf[i] = -1
	}
	var cellOf []int32
	var masks []partition.Mask
	free := partition.AllParts(2)
	inBlock := func(v int) bool {
		return !h.IsPad(v) && spec.Block.Contains(pl.X[v], pl.Y[v])
	}
	for v := 0; v < nv; v++ {
		if inBlock(v) {
			id := b.AddCell(h.VertexName(v), h.Weight(v))
			subOf[v] = int32(id)
			cellOf = append(cellOf, int32(v))
			masks = append(masks, free)
		}
	}
	nCells := len(cellOf)
	if nCells < 2 {
		return nil, fmt.Errorf("benchgen: block %q contains %d cells; need at least 2", spec.Name, nCells)
	}

	// closestSide returns the partition nearest an external vertex's placed
	// location (positions clamped into the block first, so a pad left of
	// the block propagates to the left partition).
	closestSide := func(v int) int {
		var pos float64
		if spec.Cut == Vertical {
			pos = clamp(pl.X[v], spec.Block.X0, spec.Block.X1)
		} else {
			pos = clamp(pl.Y[v], spec.Block.Y0, spec.Block.Y1)
		}
		if pos >= mid {
			return 1
		}
		return 0
	}

	// Walk nets once; external pins become (deduplicated) terminals.
	externalNets := 0
	netSeen := make([]bool, h.NumNets())
	var pins []int
	for _, pv := range cellOf {
		for _, en := range h.NetsOf(int(pv)) {
			if netSeen[en] {
				continue
			}
			netSeen[en] = true
			pins = pins[:0]
			external := false
			for _, u := range h.Pins(int(en)) {
				if subOf[u] >= 0 && inBlock(int(u)) {
					pins = append(pins, int(subOf[u]))
					continue
				}
				external = true
				if subOf[u] < 0 {
					id := b.AddPad(h.VertexName(int(u)))
					subOf[u] = int32(id)
					cellOf = append(cellOf, int32(u))
					masks = append(masks, partition.Single(closestSide(int(u))))
				}
				pins = append(pins, int(subOf[u]))
			}
			if external {
				externalNets++
			}
			if len(pins) >= 2 {
				b.AddWeightedNet(netWeight(pl, spec, int(en)), pins...)
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("benchgen: %w", err)
	}
	prob := &partition.Problem{
		H:       sub,
		K:       2,
		Balance: partition.NewBisection(sub, tol),
		Allowed: masks,
	}
	if err := prob.Validate(); err != nil {
		return nil, fmt.Errorf("benchgen: derived instance invalid: %w", err)
	}
	st := hypergraph.ComputeStats(sub)
	return &Instance{
		Name:    spec.Name,
		Problem: prob,
		CellOf:  cellOf,
		Stats: InstanceStats{
			Cells:        nCells,
			Nets:         sub.NumNets(),
			Pads:         sub.NumVertices() - nCells,
			ExternalNets: externalNets,
			MaxPct:       st.MaxWeightPct,
		},
	}, nil
}

// StandardSpecs returns the paper-style block family for a placement: block
// A is the whole chip (L0), B the left half (L1_V0), C the bottom half
// (L1_H0), and D the bottom-left quadrant (L2_V0_H0); each appears with a
// vertical and a horizontal cutline, giving eight instances per circuit.
func StandardSpecs(pl *place.Placement, base string) []Spec {
	w, h := pl.Width, pl.Height
	// Blocks extend slightly past the chip so boundary cells are included
	// (Contains is half-open).
	full := Rect{0, 0, w * 1.0001, h * 1.0001}
	left := Rect{0, 0, w / 2, h * 1.0001}
	bottom := Rect{0, 0, w * 1.0001, h / 2}
	quad := Rect{0, 0, w / 2, h / 2}
	blocks := []struct {
		suffix string
		level  string
		r      Rect
	}{
		{"A", "L0", full},
		{"B", "L1_V0", left},
		{"C", "L1_H0", bottom},
		{"D", "L2_V0_H0", quad},
	}
	var specs []Spec
	for _, blk := range blocks {
		for _, cut := range []CutDir{Vertical, Horizontal} {
			specs = append(specs, Spec{
				Name:  fmt.Sprintf("%s%s_%s_%s", base, blk.suffix, blk.level, cut),
				Block: blk.r,
				Cut:   cut,
			})
		}
	}
	return specs
}

// netWeight returns the net weight for a derived instance: 1 for plain
// min-cut, or a wirelength-derived weight when the spec asks for the
// placement-specific objective.
func netWeight(pl *place.Placement, spec Spec, e int) int64 {
	if !spec.WirelengthWeights {
		return 1
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range pl.H.Pins(e) {
		pos := pl.X[v]
		if spec.Cut == Horizontal {
			pos = pl.Y[v]
		}
		lo = math.Min(lo, pos)
		hi = math.Max(hi, pos)
	}
	span := spec.Block.X1 - spec.Block.X0
	if spec.Cut == Horizontal {
		span = spec.Block.Y1 - spec.Block.Y0
	}
	if span <= 0 {
		return 1
	}
	w := 1 + int64(math.Round(15*(hi-lo)/span))
	if w < 1 {
		w = 1
	}
	if w > 16 {
		w = 16
	}
	return w
}

// SpecsAtLevel returns one spec per block of the regular 2^level x 1 (odd
// levels alternate axes) slicing of the chip at the given hierarchy depth,
// each with both cutline directions. Level 0 is the whole chip; level 1 the
// two halves of a vertical top-level cut; level 2 the four quadrants, and so
// on, with blocks named by their slicing path (L2_V0_H1, ...). It
// generalizes the A-D family of StandardSpecs to arbitrary depth.
func SpecsAtLevel(pl *place.Placement, base string, level int) []Spec {
	type node struct {
		r    Rect
		name string
	}
	eps := 1.0001
	blocks := []node{{Rect{0, 0, pl.Width * eps, pl.Height * eps}, fmt.Sprintf("L%d", level)}}
	for d := 0; d < level; d++ {
		vertical := d%2 == 0
		var next []node
		for _, n := range blocks {
			var a, b Rect
			if vertical {
				mid := (n.r.X0 + n.r.X1) / 2
				a = Rect{n.r.X0, n.r.Y0, mid, n.r.Y1}
				b = Rect{mid, n.r.Y0, n.r.X1, n.r.Y1}
			} else {
				mid := (n.r.Y0 + n.r.Y1) / 2
				a = Rect{n.r.X0, n.r.Y0, n.r.X1, mid}
				b = Rect{n.r.X0, mid, n.r.X1, n.r.Y1}
			}
			axis := "V"
			if !vertical {
				axis = "H"
			}
			next = append(next,
				node{a, fmt.Sprintf("%s_%s0", n.name, axis)},
				node{b, fmt.Sprintf("%s_%s1", n.name, axis)})
		}
		blocks = next
	}
	var specs []Spec
	for _, n := range blocks {
		for _, cut := range []CutDir{Vertical, Horizontal} {
			specs = append(specs, Spec{
				Name:  fmt.Sprintf("%s_%s_%s", base, n.name, cut),
				Block: n.r,
				Cut:   cut,
			})
		}
	}
	return specs
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
