package multilevel

import (
	"math/rand/v2"

	"repro/internal/fm"
	"repro/internal/par"
	"repro/internal/partition"
)

// The parallel multistart drivers in this file obey a strict determinism
// contract:
//
//   - Per-start RNG derivation. A run draws one base seed from the caller's
//     rng, and start i runs on rand.NewPCG(baseSeed, i). Start i's outcome is
//     therefore a pure function of (problem, config, baseSeed, i) — never of
//     scheduling, worker count, or which starts run beside it.
//   - Index-ordered selection. The best result is chosen by scanning starts
//     in index order with a strict < on Score (the configured objective), so
//     ties break toward the lowest start index exactly as the serial loop
//     does.
//   - Speculative batches (adaptive mode). ParallelAdaptiveMultistart
//     computes starts in batches of patience+workers, then *replays* the
//     serial stopping rule over results in index order; a start only counts
//     toward patience at its index position, so the returned result, cut and
//     Starts count match AdaptiveMultistart bit-for-bit. Speculatively
//     computed starts past the stopping point are discarded.
//
// Consequence: for the same incoming rng state, ParallelMultistart with any
// worker count, ParallelMultistart with 1 worker, and serial Multistart all
// return bit-identical Results (and likewise for the adaptive pair).

// startRNG derives the RNG for start index i of a run whose base seed is
// baseSeed. Every start gets an independent deterministic stream regardless
// of worker count or execution order.
func startRNG(baseSeed uint64, i int) *rand.Rand {
	return rand.New(rand.NewPCG(baseSeed, uint64(i)))
}

// partitionFunc is one single-start partitioner (partitionWith or
// partitionKWayWith) running on a caller-provided FM scratch; the parallel
// drivers are generic over it.
type partitionFunc func(p *partition.Problem, cfg Config, rng *rand.Rand, sc *fm.Scratch) (*Result, error)

// runStarts computes starts [lo, hi) of `part` on up to `workers` goroutines,
// writing each start's outcome at its index in results/errs. One FM scratch
// is pinned per worker for the whole batch — on small instances the per-start
// pool round-trip was the dominant parallel overhead (contended sync.Pool
// gets plus re-warming evicted scratches made 8 workers slower than serial).
// Scratch contents never influence results, so pinning keeps the determinism
// contract intact.
func runStarts(part partitionFunc, p *partition.Problem, cfg Config, baseSeed uint64, lo, hi, workers int, results []*Result, errs []error) {
	n := hi - lo
	scratches := make([]*fm.Scratch, par.EffectiveWorkers(n, workers))
	for w := range scratches {
		scratches[w] = fm.GetScratch()
	}
	par.ForEachWorker(n, workers, func(worker, i int) {
		idx := lo + i
		results[idx], errs[idx] = part(p, cfg, startRNG(baseSeed, idx), scratches[worker])
	})
	for _, sc := range scratches {
		fm.PutScratch(sc)
	}
}

// ParallelMultistart is Multistart running its independent starts on a
// bounded worker pool of cfg.Workers goroutines (<= 0 meaning GOMAXPROCS).
// It returns a Result bit-identical to the serial Multistart for the same
// incoming rng state, for any worker count.
func ParallelMultistart(p *partition.Problem, cfg Config, starts int, rng *rand.Rand) (*Result, error) {
	return parallelMultistart(partitionWith, p, cfg, starts, rng)
}

// ParallelMultistartKWay is MultistartKWay on a bounded worker pool. It obeys
// the same determinism contract: for the same incoming rng state it returns a
// Result bit-identical to the serial MultistartKWay, for any worker count.
func ParallelMultistartKWay(p *partition.Problem, cfg Config, starts int, rng *rand.Rand) (*Result, error) {
	return parallelMultistart(partitionKWayWith, p, cfg, starts, rng)
}

func parallelMultistart(part partitionFunc, p *partition.Problem, cfg Config, starts int, rng *rand.Rand) (*Result, error) {
	if starts < 1 {
		starts = 1
	}
	baseSeed := rng.Uint64()
	results := make([]*Result, starts)
	errs := make([]error, starts)
	runStarts(part, p, cfg, baseSeed, 0, starts, cfg.Workers, results, errs)
	var best *Result
	for i := 0; i < starts; i++ {
		if errs[i] != nil {
			// The serial loop fails at the first erroring start; returning
			// the lowest-index error preserves equivalence.
			return nil, errs[i]
		}
		if best == nil || results[i].Score < best.Score {
			best = results[i]
		}
	}
	best.Starts = starts
	return best, nil
}

// ParallelAdaptiveMultistart is AdaptiveMultistart on a bounded worker pool.
// It speculatively executes batches of patience+workers starts, then applies
// the sequential stopping rule to the computed prefix in index order, so the
// result (cut, assignment and Starts count) is bit-identical to the serial
// driver for the same incoming rng state, for any worker count. The price of
// the parallelism is bounded speculation: at most patience+workers-1 starts
// beyond the serial stopping point are computed and discarded.
func ParallelAdaptiveMultistart(p *partition.Problem, cfg Config, maxStarts, patience int, rng *rand.Rand) (*Result, error) {
	if maxStarts < 1 {
		maxStarts = 16
	}
	if patience < 1 {
		patience = 2
	}
	baseSeed := rng.Uint64()
	workers := par.Workers(cfg.Workers)
	results := make([]*Result, maxStarts)
	errs := make([]error, maxStarts)
	computed := 0 // starts [0, computed) have results
	var best *Result
	stale := 0
	used := 0
	for used < maxStarts {
		if used == computed {
			batch := patience + workers
			if batch > maxStarts-computed {
				batch = maxStarts - computed
			}
			runStarts(partitionWith, p, cfg, baseSeed, computed, computed+batch, workers, results, errs)
			computed += batch
		}
		// Replay the serial stopping semantics: start `used` counts toward
		// patience only now, at its index position.
		if errs[used] != nil {
			return nil, errs[used]
		}
		res := results[used]
		used++
		if best == nil || res.Score < best.Score {
			best = res
			stale = 0
		} else {
			stale++
			if stale >= patience {
				break
			}
		}
	}
	best.Starts = used
	return best, nil
}
