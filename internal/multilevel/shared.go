package multilevel

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/fm"
	"repro/internal/par"
	"repro/internal/partition"
)

// SharedMultistart runs `starts` multilevel starts over only `hierarchies`
// coarsening descents (H <= starts; values < 1 pick ceil(starts/4)), so the
// coarsening+contraction cost is amortised H/starts-fold.
//
// Start indices keep the determinism contract of Multistart: one base seed is
// drawn from rng up front and start i runs on rand.NewPCG(baseSeed, i).
//   - Starts 0..H-1 are *owners*: start j builds hierarchy j and then runs a
//     full-refinement descent on the same RNG — exactly Partition's phases,
//     bit for bit. With hierarchies == starts this makes SharedMultistart
//     reproduce Multistart exactly.
//   - Starts H..starts-1 are *followers*: start i resamples hierarchy i%H
//     with a fresh coarsest-level initial partitioning and a pass-cutoff
//     refinement descent (Config.FollowerPassFraction); cheap extra samples
//     anchored by the owners' full-quality descents.
//
// Every start is a pure function of (problem, config, baseSeed, index,
// hierarchies), so ParallelSharedMultistart reproduces this loop
// bit-identically for any worker count. The best cut wins, ties toward the
// lowest start index.
func SharedMultistart(p *partition.Problem, cfg Config, starts, hierarchies int, rng *rand.Rand) (*Result, error) {
	return sharedMultistart(p, cfg, starts, hierarchies, 1, rng)
}

// ParallelSharedMultistart is SharedMultistart on a bounded worker pool of
// cfg.Workers goroutines (<= 0 meaning GOMAXPROCS). Owner starts (hierarchy
// build + full descent) run concurrently first; a barrier then lets the
// follower starts fan out over the completed hierarchies, which are immutable
// and safe to share. The result is bit-identical to SharedMultistart for the
// same incoming rng state, for any worker count.
func ParallelSharedMultistart(p *partition.Problem, cfg Config, starts, hierarchies int, rng *rand.Rand) (*Result, error) {
	return sharedMultistart(p, cfg, starts, hierarchies, cfg.Workers, rng)
}

func sharedMultistart(p *partition.Problem, cfg Config, starts, hierarchies, workers int, rng *rand.Rand) (*Result, error) {
	if p.K != 2 {
		return nil, fmt.Errorf("multilevel: SharedMultistart requires k=2, got k=%d", p.K)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if starts < 1 {
		starts = 1
	}
	h := hierarchies
	if h < 1 {
		h = (starts + 3) / 4
	}
	if h > starts {
		h = starts
	}
	eff := cfg.effective()
	maxCluster := bipartitionMaxCluster(p)
	baseSeed := rng.Uint64()

	hiers := make([]*Hierarchy, h)
	results := make([]*Result, starts)
	errs := make([]error, starts)

	// One FM scratch pinned per worker for both phases (scratch contents
	// never influence results, so this preserves the determinism contract).
	scratches := make([]*fm.Scratch, par.EffectiveWorkers(max(h, starts-h), workers))
	for w := range scratches {
		scratches[w] = fm.GetScratch()
	}
	defer func() {
		for _, sc := range scratches {
			fm.PutScratch(sc)
		}
	}()

	// Phase 1: owner starts. Start j builds hierarchy j and descends on the
	// same RNG — the exact Partition sequence.
	par.ForEachWorker(h, workers, func(worker, j int) {
		r := startRNG(baseSeed, j)
		hiers[j] = buildLevels(p, eff, maxCluster, r)
		results[j], errs[j] = hiers[j].descendWith(r, false, scratches[worker])
	})
	// Phase 2: follower starts fan out over the built hierarchies.
	par.ForEachWorker(starts-h, workers, func(worker, i int) {
		idx := h + i
		hier := hiers[idx%h]
		if hier == nil {
			errs[idx] = fmt.Errorf("multilevel: hierarchy %d unavailable", idx%h)
			return
		}
		results[idx], errs[idx] = hier.descendWith(startRNG(baseSeed, idx), true, scratches[worker])
	})

	var best *Result
	for i := 0; i < starts; i++ {
		if errs[i] != nil {
			// The serial loop fails at the first erroring start; returning
			// the lowest-index error preserves equivalence.
			return nil, errs[i]
		}
		if best == nil || results[i].Score < best.Score {
			best = results[i]
		}
	}
	best.Starts = starts
	return best, nil
}
