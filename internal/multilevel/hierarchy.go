package multilevel

import (
	"context"
	"fmt"
	"math/rand/v2"
	"runtime/metrics"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"repro/internal/fm"
	"repro/internal/partition"
)

// Hierarchy is the product of one coarsening descent: the stack of
// progressively coarser problems plus the cluster maps between them. It is
// immutable once built, so many refinement-only descents — serial or
// concurrent — can share it; that is what SharedMultistart exploits to
// amortise coarsening (and its contraction cost) over many starts.
//
// A Hierarchy is only sound to share between *starts of the same problem and
// config*. It must not be reused for V-cycling: V-cycles re-coarsen
// restricted to the current solution, so their stack depends on the very
// assignment being refined.
type Hierarchy struct {
	levels []level
	cfg    Config // effective config the hierarchy was built with
}

// Root returns the original (finest) problem.
func (h *Hierarchy) Root() *partition.Problem { return h.levels[0].problem }

// Levels returns the number of coarsening levels (0 = the hierarchy is flat).
func (h *Hierarchy) Levels() int { return len(h.levels) - 1 }

// Coarsest returns the coarsest problem of the stack.
func (h *Hierarchy) Coarsest() *partition.Problem { return h.levels[len(h.levels)-1].problem }

// BuildHierarchy runs the coarsening phase of Partition once and returns the
// resulting hierarchy. Partition(p, cfg, rng) is exactly
// BuildHierarchy(p, cfg, rng) followed by Descend(rng) on the same rng.
func BuildHierarchy(p *partition.Problem, cfg Config, rng *rand.Rand) (*Hierarchy, error) {
	if p.K != 2 {
		return nil, fmt.Errorf("multilevel: BuildHierarchy requires k=2, got k=%d", p.K)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return buildLevels(p, cfg.effective(), bipartitionMaxCluster(p), rng), nil
}

// Descend runs one full-refinement start over the hierarchy: initial
// partitioning at the coarsest feasible level, then FM refinement at every
// level on the way up. Each call consumes rng exactly as the corresponding
// phase of Partition does.
func (h *Hierarchy) Descend(rng *rand.Rand) (*Result, error) { return h.descend(rng, false) }

// bipartitionMaxCluster caps cluster growth well below the part capacity so
// the coarsest level retains enough granularity near the balance boundary.
func bipartitionMaxCluster(p *partition.Problem) int64 {
	maxCluster := p.Balance.Max[0][0] / 20
	if maxCluster < 1 {
		maxCluster = 1
	}
	return maxCluster
}

// buildLevels runs the coarsening loop on an already-validated problem and
// effective config.
func buildLevels(p *partition.Problem, cfg Config, maxCluster int64, rng *rand.Rand) *Hierarchy {
	h := &Hierarchy{cfg: cfg}
	cfg.Stats.track(phaseCoarsen, func() {
		levels := []level{{problem: p}}
		curr := p
		for len(levels) < cfg.MaxLevels {
			if curr.MovableCount() <= cfg.CoarsestSize {
				break
			}
			coarse, clusterOf, ok := coarsenLevel(cfg.Scheme, curr, nil, maxCluster, cfg.ClusteringRatio, cfg.HugeNetThreshold, cfg.CoarsenWorkers, rng)
			if !ok {
				break
			}
			levels[len(levels)-1].clusterOf = clusterOf
			levels = append(levels, level{problem: coarse})
			curr = coarse
		}
		h.levels = levels
	})
	return h
}

// descend runs one refinement start. Owner descents (follower=false) refine
// with the full configured FM discipline and replay Partition's phases
// bit-identically; follower descents — extra SharedMultistart starts
// resampling a hierarchy another start owns — apply cfg.FollowerPassFraction
// as a pass cutoff during uncoarsening refinement, trading a sliver of
// per-start quality for a large reduction in per-start cost (the coarsest
// initial partitioning, where start diversity comes from, stays at full
// strength). One FM scratch is leased for the whole descent, so neither the
// initial tries nor the per-level refinements pay the kernel's allocation
// cost.
func (h *Hierarchy) descend(rng *rand.Rand, follower bool) (*Result, error) {
	sc := fm.GetScratch()
	defer fm.PutScratch(sc)
	return h.descendWith(rng, follower, sc)
}

// descendWith is descend running on a caller-provided FM scratch, for
// multistart drivers that pin one scratch per worker across many descents.
// Scratch contents never influence results, so pinning preserves the
// determinism contract.
func (h *Hierarchy) descendWith(rng *rand.Rand, follower bool, sc *fm.Scratch) (*Result, error) {
	cfg := h.cfg
	fmCfg := fm.Config{Policy: cfg.Policy, Objective: cfg.Objective, MaxPassFraction: cfg.MaxPassFraction, MaxPasses: cfg.RefineMaxPasses, Stats: kernelStats(cfg.Stats)}
	if follower {
		fmCfg.MaxPassFraction = followerPassFraction(cfg)
	}
	initCfg := fm.Config{Policy: cfg.Policy, Objective: cfg.Objective, MaxPassFraction: cfg.MaxPassFraction, Stats: kernelStats(cfg.Stats)}

	// Initial partitioning at the deepest level that admits a feasible
	// start; heavy clusters can make the very coarsest level infeasible, in
	// which case we back off toward finer levels.
	start := len(h.levels) - 1
	var a partition.Assignment
	cfg.Stats.track(phaseInit, func() {
		for ; start >= 0; start-- {
			lp := h.levels[start].problem
			var best *fm.Result
			for try := 0; try < cfg.InitialTries; try++ {
				res, err := fm.RunFromRandomWith(lp, initCfg, rng, sc)
				if err != nil {
					break
				}
				// At k = 2 every objective coincides with the cut, so this
				// selection is objective-agnostic (Score == Cut here).
				if best == nil || res.Score < best.Score {
					best = res
				}
			}
			if best != nil {
				a = best.Assignment
				break
			}
		}
	})
	if a == nil {
		return nil, fmt.Errorf("multilevel: no feasible initial solution at any level (instance overconstrained)")
	}

	// Uncoarsen: the optional parallel round stage, then (at the finest
	// level) the localized FM stage, then serial FM polish, per level.
	for lvl := start - 1; lvl >= 0; lvl-- {
		a = project(a, h.levels[lvl].clusterOf)
		var err error
		if a, err = parallelRounds(h.levels[lvl].problem, a, cfg, rng, sc); err != nil {
			return nil, fmt.Errorf("multilevel: refining level %d: %w", lvl, err)
		}
		if a, err = localizedRounds(h.levels[lvl].problem, a, cfg, lvl, rng, sc); err != nil {
			return nil, fmt.Errorf("multilevel: refining level %d: %w", lvl, err)
		}
		lvlCfg := polishConfig(fmCfg, cfg, lvl)
		cfg.Stats.track(phaseRefine, func() {
			var res *fm.Result
			if res, err = fm.BipartitionWith(h.levels[lvl].problem, a, lvlCfg, sc); err == nil {
				a = res.Assignment
			}
		})
		if err != nil {
			return nil, fmt.Errorf("multilevel: refining level %d: %w", lvl, err)
		}
	}
	return newResult(h.Root(), a, cfg, len(h.levels)-1), nil
}

// parallelRounds runs the Config.RefineWorkers synchronous-round stage on one
// level's problem when enabled, tracked under the refine_parallel phase. The
// commit-order salt is drawn from rng with exactly one draw per call whatever
// the worker count, so the RNG stream — and therefore every downstream draw —
// is identical for all RefineWorkers values >= 1. Disabled (< 1), it returns
// a unchanged and consumes nothing.
func parallelRounds(p *partition.Problem, a partition.Assignment, cfg Config, rng *rand.Rand, sc *fm.Scratch) (partition.Assignment, error) {
	if cfg.RefineWorkers < 1 {
		return a, nil
	}
	salt := rng.Uint64()
	var res *fm.ParallelResult
	var err error
	cfg.Stats.track(phaseRefineParallel, func() {
		res, err = fm.ParallelRefineWith(p, a, fm.Config{Objective: cfg.Objective, Sideways: cfg.RefineSideways}, cfg.RefineWorkers, salt, sc)
	})
	if err != nil {
		return nil, err
	}
	return res.Assignment, nil
}

// localizedRounds runs the Config.LocalizedFMWorkers localized parallel FM
// stage when enabled, tracked under the refine_localized phase. The stage
// only runs at the finest level (lvl 0) — that is where the full-budget
// serial polish used to dominate every solve (BENCH_prefine.json); coarse
// levels are cheap enough for the round stage plus a one-pass polish. The
// salt is drawn from rng with exactly one draw per enabled finest level
// whatever the worker count, so the RNG stream stays identical for all
// LocalizedFMWorkers values >= 1. Disabled (< 1) or above the finest level,
// it returns a unchanged and consumes nothing.
func localizedRounds(p *partition.Problem, a partition.Assignment, cfg Config, lvl int, rng *rand.Rand, sc *fm.Scratch) (partition.Assignment, error) {
	if cfg.LocalizedFMWorkers < 1 || lvl != 0 {
		return a, nil
	}
	salt := rng.Uint64()
	var res *fm.LocalizedResult
	var err error
	cfg.Stats.track(phaseRefineLocalized, func() {
		res, err = fm.LocalizedRefineWith(p, a, fm.Config{Objective: cfg.Objective}, cfg.LocalizedFMWorkers, salt, sc)
	})
	if err != nil {
		return nil, err
	}
	return res.Assignment, nil
}

// polishConfig caps the serial FM polish to one pass at coarse levels while
// the parallel round stage is on — the rounds replace the polish's repeated
// passes there, and the remaining pass contributes the hill-climbing the
// greedy rounds cannot. The finest level (lvl 0) keeps the full configured
// pass budget unless the localized FM stage is on: localized searches carry
// the hill-climbing there, so the serial kernel shrinks to a short one-pass
// tail that sweeps up whatever the bounded searches left behind.
func polishConfig(fmCfg fm.Config, cfg Config, lvl int) fm.Config {
	if cfg.RefineWorkers >= 1 && lvl > 0 {
		fmCfg.MaxPasses = 1
	}
	if cfg.LocalizedFMWorkers >= 1 && lvl == 0 {
		fmCfg.MaxPasses = 1
	}
	return fmCfg
}

// followerPassFraction resolves the pass cutoff for follower descents: the
// configured FollowerPassFraction, unless the run-wide MaxPassFraction is
// already an even stricter cutoff.
func followerPassFraction(cfg Config) float64 {
	f := cfg.FollowerPassFraction
	if cfg.MaxPassFraction > 0 && cfg.MaxPassFraction < 1 && cfg.MaxPassFraction < f {
		f = cfg.MaxPassFraction
	}
	return f
}

// PhaseStats accumulates wall time and heap allocation counts per engine
// phase. Attach one to Config.Stats to profile a run; the bench harness
// threads these into BENCH_shared.json. Counters are added to atomically, so
// one PhaseStats may be shared by concurrent descents; the allocation
// numbers read the process-wide heap counter and are only attributable to a
// phase in serial runs.
type PhaseStats struct {
	CoarsenNS int64 `json:"coarsen_ns"`
	InitNS    int64 `json:"init_ns"`
	RefineNS  int64 `json:"refine_ns"`
	// RefineParallelNS is the wall time of the synchronous-round parallel
	// refinement stage (Config.RefineWorkers); RefineNS keeps counting only
	// the serial FM polish, so the two split the refinement phase.
	RefineParallelNS int64 `json:"refine_parallel_ns"`
	// RefineLocalizedNS is the wall time of the localized parallel FM stage
	// (Config.LocalizedFMWorkers) at the finest level; RefineNS keeps
	// counting only the serial FM tail, so the three refine counters split
	// the refinement phase.
	RefineLocalizedNS     int64 `json:"refine_localized_ns"`
	CoarsenAllocs         int64 `json:"coarsen_allocs"`
	InitAllocs            int64 `json:"init_allocs"`
	RefineAllocs          int64 `json:"refine_allocs"`
	RefineParallelAllocs  int64 `json:"refine_parallel_allocs"`
	RefineLocalizedAllocs int64 `json:"refine_localized_allocs"`
	// Kernel accumulates the FM kernel's net-state-aware work counters (nets
	// skipped, pin scans avoided, bucket updates saved) across every FM run a
	// descent performs; like the phase counters it is updated atomically.
	Kernel fm.KernelStats `json:"refine_kernel"`
}

// TotalNS returns the summed wall time across phases.
func (st *PhaseStats) TotalNS() int64 {
	return st.CoarsenNS + st.InitNS + st.RefineNS + st.RefineParallelNS + st.RefineLocalizedNS
}

// kernelStats returns the kernel-counter sink of st, or nil when stats are
// not being collected.
func kernelStats(st *PhaseStats) *fm.KernelStats {
	if st == nil {
		return nil
	}
	return &st.Kernel
}

const (
	phaseCoarsen = iota
	phaseInit
	phaseRefine
	phaseRefineParallel
	phaseRefineLocalized
)

var phaseLabels = [...]string{"coarsen", "init", "refine", "refine_parallel", "refine_localized"}

// track runs fn under a pprof goroutine label for the phase (so CPU/heap
// profiles split by phase) and, when st is non-nil, accrues wall time and
// heap object allocations into the phase counters. st may be nil.
func (st *PhaseStats) track(phase int, fn func()) {
	if st == nil {
		pprof.Do(context.Background(), pprof.Labels("phase", phaseLabels[phase]), func(context.Context) { fn() })
		return
	}
	a0 := heapAllocObjects()
	t0 := time.Now()
	pprof.Do(context.Background(), pprof.Labels("phase", phaseLabels[phase]), func(context.Context) { fn() })
	dt := time.Since(t0).Nanoseconds()
	da := int64(heapAllocObjects() - a0)
	switch phase {
	case phaseCoarsen:
		atomic.AddInt64(&st.CoarsenNS, dt)
		atomic.AddInt64(&st.CoarsenAllocs, da)
	case phaseInit:
		atomic.AddInt64(&st.InitNS, dt)
		atomic.AddInt64(&st.InitAllocs, da)
	case phaseRefine:
		atomic.AddInt64(&st.RefineNS, dt)
		atomic.AddInt64(&st.RefineAllocs, da)
	case phaseRefineParallel:
		atomic.AddInt64(&st.RefineParallelNS, dt)
		atomic.AddInt64(&st.RefineParallelAllocs, da)
	case phaseRefineLocalized:
		atomic.AddInt64(&st.RefineLocalizedNS, dt)
		atomic.AddInt64(&st.RefineLocalizedAllocs, da)
	}
}

// heapAllocObjects returns the cumulative count of heap objects allocated by
// the process, via the cheap runtime/metrics read (no stop-the-world).
func heapAllocObjects() uint64 {
	sample := []metrics.Sample{{Name: "/gc/heap/allocs:objects"}}
	metrics.Read(sample)
	return sample[0].Value.Uint64()
}
