package multilevel_test

import (
	"math/rand/v2"
	"testing"

	"repro/internal/multilevel"
	"repro/internal/partition"
)

// TestCoarsenWorkersGoldenEquivalence is the determinism contract of
// intra-descent parallel coarsening: for workers in {1, 2, 4, 8} both the
// hierarchy (level count, coarsest fingerprint) and the full partitioning
// result (cut + assignment) must be bit-identical to the serial path
// (CoarsenWorkers = 0), on free and fixed-terminals instances. Run under
// -race in CI, which also exercises the concurrent matching and contraction
// passes.
func TestCoarsenWorkersGoldenEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name      string
		fixedFrac float64
	}{
		{"IBM01S", 0}, {"IBM01S", 0.2}, {"IBM02S", 0},
	} {
		p := presetProblem(t, tc.name, 0.08, tc.fixedFrac)
		serialRNG := rand.New(rand.NewPCG(17, 23))
		wantH, err := multilevel.BuildHierarchy(p, multilevel.Config{}, serialRNG)
		if err != nil {
			t.Fatal(err)
		}
		want, err := wantH.Descend(serialRNG)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			cfg := multilevel.Config{CoarsenWorkers: workers}
			rng := rand.New(rand.NewPCG(17, 23))
			gotH, err := multilevel.BuildHierarchy(p, cfg, rng)
			if err != nil {
				t.Fatal(err)
			}
			if gotH.Levels() != wantH.Levels() {
				t.Errorf("%s fixed=%.1f workers=%d: levels = %d, serial %d",
					tc.name, tc.fixedFrac, workers, gotH.Levels(), wantH.Levels())
			}
			if gf, wf := gotH.Coarsest().Fingerprint(), wantH.Coarsest().Fingerprint(); gf != wf {
				t.Errorf("%s fixed=%.1f workers=%d: coarsest fingerprint %x, serial %x",
					tc.name, tc.fixedFrac, workers, gf, wf)
			}
			got, err := gotH.Descend(rng)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, tc.name, want, got)
		}
	}
}

// TestCoarsenWorkersKWayAndVCycle extends the golden guarantee to the other
// two drivers with private coarsening loops: direct k-way descents and
// solution-restricted V-cycle coarsening must also be worker-count
// invariant.
func TestCoarsenWorkersKWayAndVCycle(t *testing.T) {
	p2 := presetProblem(t, "IBM01S", 0.08, 0.1)
	base, err := multilevel.Partition(p2, multilevel.Config{}, rand.New(rand.NewPCG(5, 6)))
	if err != nil {
		t.Fatal(err)
	}
	wantV, err := multilevel.VCycle(p2, base.Assignment, multilevel.Config{}, rand.New(rand.NewPCG(7, 8)))
	if err != nil {
		t.Fatal(err)
	}

	p4 := partition.NewFree(presetProblem(t, "IBM02S", 0.06, 0).H, 4, 0.1)
	wantK, err := multilevel.PartitionKWay(p4, multilevel.Config{}, rand.New(rand.NewPCG(9, 10)))
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 8} {
		cfg := multilevel.Config{CoarsenWorkers: workers}
		gotV, err := multilevel.VCycle(p2, base.Assignment, cfg, rand.New(rand.NewPCG(7, 8)))
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "vcycle", wantV, gotV)
		gotK, err := multilevel.PartitionKWay(p4, cfg, rand.New(rand.NewPCG(9, 10)))
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "kway", wantK, gotK)
	}
}

// TestCoarsenWorkersFingerprintUnchanged pins the cache-compatibility rule:
// CoarsenWorkers splits scans over goroutines without changing any result,
// so it must not move CoarseningFingerprint — hierarchies cached for one
// worker count serve every other.
func TestCoarsenWorkersFingerprintUnchanged(t *testing.T) {
	base := multilevel.Config{}.CoarseningFingerprint()
	for _, workers := range []int{1, 2, 8, 64} {
		if got := (multilevel.Config{CoarsenWorkers: workers}).CoarseningFingerprint(); got != base {
			t.Errorf("CoarsenWorkers=%d moved CoarseningFingerprint: %x vs %x", workers, got, base)
		}
	}
	if got := (multilevel.Config{CoarsestSize: 60}).CoarseningFingerprint(); got == base {
		t.Error("control: CoarsestSize should move the fingerprint")
	}
}
