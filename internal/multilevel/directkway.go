package multilevel

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/fm"
	"repro/internal/partition"
)

// kwayMaxCluster caps coarse-cluster weight for a k-way problem: well below
// the tightest part capacity so the coarsest level keeps enough granularity
// near every balance boundary.
func kwayMaxCluster(p *partition.Problem) int64 {
	maxCluster := p.Balance.Max[0][0]
	for q := 1; q < p.K; q++ {
		if p.Balance.Max[q][0] < maxCluster {
			maxCluster = p.Balance.Max[q][0]
		}
	}
	maxCluster /= 20
	if maxCluster < 1 {
		maxCluster = 1
	}
	return maxCluster
}

// pairwiseRefine improves a feasible k-way assignment with 2-way FM between
// part pairs: for each pair (x, y) that currently shares a cut net, every
// vertex outside the pair is fixed at its part and the FM kernel runs
// restricted to moves between x and y. Pair moves carry full FM hill-climbing
// power (uphill prefixes with rollback), which single-vertex k-way passes
// lack, so this recovers recursive-bisection-strength refinement inside the
// direct driver. Sweeps repeat (pairs in lexicographic order, so the result
// is deterministic) until a sweep fails to improve or maxSweeps is reached.
func pairwiseRefine(p *partition.Problem, a partition.Assignment, cfg fm.Config, maxSweeps int, sc *fm.Scratch) (partition.Assignment, error) {
	nv := p.H.NumVertices()
	prev := partition.KMinus1(p.H, a)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// A pair is worth refining only if some net spans both parts.
		active := make([]bool, p.K*p.K)
		for e := 0; e < p.H.NumNets(); e++ {
			var span partition.Mask
			for _, v := range p.H.Pins(e) {
				span = span.With(int(a[v]))
			}
			for x := 0; x < p.K; x++ {
				if !span.Contains(x) {
					continue
				}
				for y := x + 1; y < p.K; y++ {
					if span.Contains(y) {
						active[x*p.K+y] = true
					}
				}
			}
		}
		for x := 0; x < p.K; x++ {
			for y := x + 1; y < p.K; y++ {
				if !active[x*p.K+y] {
					continue
				}
				pair := partition.Single(x).With(y)
				allowed := make([]partition.Mask, nv)
				for v := 0; v < nv; v++ {
					if q := int(a[v]); q == x || q == y {
						allowed[v] = p.MaskOf(v).Intersect(pair)
					} else {
						allowed[v] = partition.Single(q)
					}
				}
				// Fresh Problem per pair: the movable-count cache must not
				// leak across mask changes.
				restricted := &partition.Problem{H: p.H, K: p.K, Balance: p.Balance, Allowed: allowed}
				res, err := fm.KWayPartitionWith(restricted, a, cfg, sc)
				if err != nil {
					return nil, fmt.Errorf("multilevel: pairwise refine (%d,%d): %w", x, y, err)
				}
				a = res.Assignment
			}
		}
		cur := partition.KMinus1(p.H, a)
		if cur >= prev {
			break
		}
		prev = cur
	}
	return a, nil
}

// PartitionKWay runs one start of the direct k-way multilevel partitioner:
// the full k-way problem is coarsened once (masks intersect downward, so
// fixed vertices and OR-regions are honoured at every level), partitioned at
// the coarsest level, and refined with direct k-way FM at every level on the
// way back up — in contrast to RecursiveBisect, which decomposes the problem
// into a tree of independent 2-way cuts and cannot recover from early
// bisection mistakes.
//
// The coarsest-level initial partition is the best of cfg.InitialTries
// attempts, each a recursive bisection of the (small) coarsest problem
// refined by k-way FM; attempts fall back to a random feasible assignment
// when bisection cannot satisfy the masks, and the driver backs off toward
// finer levels when heavy clusters leave no feasible start at the coarsest
// one. Works for any 2 <= k <= partition.MaxParts, power of two or not.
func PartitionKWay(p *partition.Problem, cfg Config, rng *rand.Rand) (*Result, error) {
	sc := fm.GetScratch()
	defer fm.PutScratch(sc)
	return partitionKWayWith(p, cfg, rng, sc)
}

// partitionKWayWith is PartitionKWay running every FM call (initial tries,
// k-way refinements, pairwise sweeps) on a caller-provided scratch, so the
// multistart drivers can pin one scratch per worker.
func partitionKWayWith(p *partition.Problem, cfg Config, rng *rand.Rand, sc *fm.Scratch) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.effective()
	maxCluster := kwayMaxCluster(p)
	levels := []level{{problem: p}}
	curr := p
	for len(levels) < cfg.MaxLevels {
		if curr.MovableCount() <= cfg.CoarsestSize {
			break
		}
		coarse, clusterOf, ok := coarsenLevel(cfg.Scheme, curr, nil, maxCluster, cfg.ClusteringRatio, cfg.HugeNetThreshold, cfg.CoarsenWorkers, rng)
		if !ok {
			break
		}
		levels[len(levels)-1].clusterOf = clusterOf
		levels = append(levels, level{problem: coarse})
		curr = coarse
	}

	fmCfg := fm.Config{Policy: cfg.Policy, Objective: cfg.Objective, MaxPassFraction: cfg.MaxPassFraction, MaxPasses: cfg.RefineMaxPasses, Stats: kernelStats(cfg.Stats)}
	initCfg := fm.Config{Policy: cfg.Policy, Objective: cfg.Objective, MaxPassFraction: cfg.MaxPassFraction, Stats: kernelStats(cfg.Stats)}

	// Initial partitioning at the deepest level that admits a feasible start.
	start := len(levels) - 1
	var a partition.Assignment
	for ; start >= 0; start-- {
		lp := levels[start].problem
		var best *fm.KWayResult
		for try := 0; try < cfg.InitialTries; try++ {
			seed, ok := kwayInitial(lp, cfg, rng)
			if !ok {
				continue
			}
			res, err := fm.KWayPartitionWith(lp, seed, initCfg, sc)
			if err != nil {
				continue
			}
			// Initial tries have always ranked by connectivity (the kernel's
			// pass ledger): exact for km1 and a historical, bit-identity-
			// preserving tiebreak for cut, where the levels above re-rank
			// completed starts by their own Score.
			if best == nil || res.KMinus1 < best.KMinus1 {
				best = res
			}
		}
		if best != nil {
			a = best.Assignment
			break
		}
	}
	if a == nil {
		return nil, fmt.Errorf("multilevel: no feasible initial k-way solution at any level (instance overconstrained)")
	}

	if p.K > 2 {
		var err error
		a, err = pairwiseRefine(levels[start].problem, a, initCfg, 2, sc)
		if err != nil {
			return nil, err
		}
	}

	// Uncoarsen with direct k-way FM refinement plus pairwise 2-way sweeps
	// (k-way passes move single vertices; the pair sweeps recover the 2-way
	// hill-climbing power recursive bisection gets for free). When the
	// parallel round stage is on it runs first at every level, and the k-way
	// polish at coarse levels drops to a single pass (polishConfig).
	for lvl := start - 1; lvl >= 0; lvl-- {
		a = project(a, levels[lvl].clusterOf)
		var err error
		if a, err = parallelRounds(levels[lvl].problem, a, cfg, rng, sc); err != nil {
			return nil, fmt.Errorf("multilevel: refining level %d: %w", lvl, err)
		}
		if a, err = localizedRounds(levels[lvl].problem, a, cfg, lvl, rng, sc); err != nil {
			return nil, fmt.Errorf("multilevel: refining level %d: %w", lvl, err)
		}
		lvlCfg := polishConfig(fmCfg, cfg, lvl)
		res, err := fm.KWayPartitionWith(levels[lvl].problem, a, lvlCfg, sc)
		if err != nil {
			return nil, fmt.Errorf("multilevel: refining level %d: %w", lvl, err)
		}
		a = res.Assignment
		if p.K > 2 {
			a, err = pairwiseRefine(levels[lvl].problem, a, lvlCfg, 2, sc)
			if err != nil {
				return nil, err
			}
		}
	}
	return newResult(p, a, cfg, len(levels)-1), nil
}

// kwayInitial produces one feasible k-way seed assignment for the (small)
// coarsest problem: recursive bisection when it can satisfy the masks and
// balance, otherwise a random feasible draw.
func kwayInitial(p *partition.Problem, cfg Config, rng *rand.Rand) (partition.Assignment, bool) {
	if res, err := RecursiveBisect(p, cfg, rng); err == nil {
		return res.Assignment, true
	}
	if a, err := partition.RandomFeasible(p, rng); err == nil {
		return a, true
	}
	return nil, false
}

// MultistartKWay runs n independent direct k-way starts and returns the best
// result, ties broken toward the lowest start index. Starts derive per-index
// RNGs exactly like Multistart (rand.NewPCG(seed, startIndex) with one seed
// drawn from rng up front), so ParallelMultistartKWay reproduces this loop
// bit-identically for any worker count.
func MultistartKWay(p *partition.Problem, cfg Config, starts int, rng *rand.Rand) (*Result, error) {
	if starts < 1 {
		starts = 1
	}
	baseSeed := rng.Uint64()
	sc := fm.GetScratch()
	defer fm.PutScratch(sc)
	var best *Result
	for i := 0; i < starts; i++ {
		res, err := partitionKWayWith(p, cfg, startRNG(baseSeed, i), sc)
		if err != nil {
			return nil, err
		}
		if best == nil || res.Score < best.Score {
			best = res
		}
	}
	best.Starts = starts
	return best, nil
}
