package multilevel

import (
	"context"
	"fmt"
	"math/rand/v2"

	"repro/internal/fm"
	"repro/internal/hypergraph"
	"repro/internal/par"
	"repro/internal/partition"
)

// This file is the cancellation seam the hpartd service runs on: multistart
// drivers that accept a context and, when cancelled mid-run, return the best
// result computed so far instead of throwing the work away.
//
// The contract extends the determinism contract of parallel.go:
//
//   - Start i's outcome is still a pure function of (problem, config,
//     baseSeed, i); cancellation never changes what any start computes.
//   - Starts are dispatched in index order (par.ForEachWorkerCtx), so the
//     completed work is always the prefix [0, completed) of the start
//     sequence, and the reduction is "best of a prefix" — each possible
//     answer is one the serial driver would have returned for some smaller
//     starts count.
//   - How long that prefix is under cancellation depends on timing and
//     worker count, so a cancelled run is NOT bit-reproducible; Result.
//     Truncated marks this. An uncancelled run is bit-identical to the
//     corresponding non-context driver.
//
// A run cancelled before any start completes returns ctx.Err() and no
// result.

// ParallelMultistartCtx is ParallelMultistart with cooperative cancellation:
// once ctx is done no new starts launch, in-flight starts finish, and the
// best completed result is returned with Truncated set (and Starts = the
// completed count). With ctx never firing it is bit-identical to
// ParallelMultistart. k must be 2.
func ParallelMultistartCtx(ctx context.Context, p *partition.Problem, cfg Config, starts int, rng *rand.Rand) (*Result, error) {
	return parallelMultistartCtx(ctx, partitionWith, p, cfg, starts, rng)
}

// ParallelMultistartKWayCtx is ParallelMultistartKWay with the same
// cooperative-cancellation contract as ParallelMultistartCtx, for any
// k >= 2 (direct k-way V-cycle starts).
func ParallelMultistartKWayCtx(ctx context.Context, p *partition.Problem, cfg Config, starts int, rng *rand.Rand) (*Result, error) {
	return parallelMultistartCtx(ctx, partitionKWayWith, p, cfg, starts, rng)
}

func parallelMultistartCtx(ctx context.Context, part partitionFunc, p *partition.Problem, cfg Config, starts int, rng *rand.Rand) (*Result, error) {
	if starts < 1 {
		starts = 1
	}
	baseSeed := rng.Uint64()
	results := make([]*Result, starts)
	errs := make([]error, starts)
	scratches := make([]*fm.Scratch, par.EffectiveWorkers(starts, cfg.Workers))
	for w := range scratches {
		scratches[w] = fm.GetScratch()
	}
	completed := par.ForEachWorkerCtx(ctx, starts, cfg.Workers, func(worker, i int) {
		results[i], errs[i] = part(p, cfg, startRNG(baseSeed, i), scratches[worker])
	})
	for _, sc := range scratches {
		fm.PutScratch(sc)
	}
	return reduceCompleted(ctx, results[:completed], errs[:completed], starts)
}

// reduceCompleted applies the serial best-of selection to the completed
// prefix of a (possibly cancelled) multistart run: lowest-index error wins,
// ties on Score break toward the lowest start index, and Truncated marks
// runs that completed fewer starts than requested.
func reduceCompleted(ctx context.Context, results []*Result, errs []error, requested int) (*Result, error) {
	var best *Result
	for i := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if best == nil || results[i].Score < best.Score {
			best = results[i]
		}
	}
	if best == nil {
		if ctx != nil && ctx.Err() != nil {
			return nil, fmt.Errorf("multilevel: cancelled before any start completed: %w", ctx.Err())
		}
		return nil, fmt.Errorf("multilevel: no starts completed")
	}
	best.Starts = len(results)
	best.Truncated = len(results) < requested
	return best, nil
}

// BuildHierarchies builds n independent coarsening hierarchies for the 2-way
// problem p, hierarchy j on the deterministic RNG rand.NewPCG(seed, j). The
// result is a pure function of (p, cfg, n, seed) — no timing, no worker
// count — which is what lets hpartd cache hierarchies across requests: any
// request that derives the same (instance fingerprint, coarsening
// fingerprint, n, seed) key reuses them and gets answers bit-identical to a
// cold build. Cancellation is checked between hierarchies; a cancelled build
// returns ctx.Err() and no hierarchies.
func BuildHierarchies(ctx context.Context, p *partition.Problem, cfg Config, n int, seed uint64) ([]*Hierarchy, error) {
	if p.K != 2 {
		return nil, fmt.Errorf("multilevel: BuildHierarchies requires k=2, got k=%d", p.K)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		n = 1
	}
	eff := cfg.effective()
	maxCluster := bipartitionMaxCluster(p)
	hiers := make([]*Hierarchy, 0, n)
	for j := 0; j < n; j++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		hiers = append(hiers, buildLevels(p, eff, maxCluster, startRNG(seed, j)))
	}
	return hiers, nil
}

// WithRefinement returns a Hierarchy that shares h's (immutable) coarsening
// stack but descends with cfg's refinement-phase settings — policy, pass
// cutoffs, initial tries, follower pass fraction and the stats sink — after
// the usual defaulting. This is how cached hierarchies serve requests whose
// refinement configuration differs from the one the hierarchy was built
// under: only the coarsening-phase fields (see CoarseningFingerprint) must
// match the build for reuse to be sound.
func (h *Hierarchy) WithRefinement(cfg Config) *Hierarchy {
	return &Hierarchy{levels: h.levels, cfg: cfg.effective()}
}

// CoarseningFingerprint returns a stable hash of the configuration fields
// that influence hierarchy construction — scheme, coarsest size, clustering
// ratio, level bound and huge-net threshold — after defaulting. Two configs
// with equal fingerprints build identical hierarchies from the same problem
// and seed, so a hierarchy cache may serve either with the other's entries;
// refinement-phase fields (policy, cutoffs, tries, stats) are deliberately
// excluded because WithRefinement rebinds them per descent. CoarsenWorkers
// is excluded too: it only splits the matching and contraction scans over
// goroutines and never changes the hierarchy, so caches stay shareable
// across clients asking for different worker counts — and RefineWorkers,
// LocalizedFMWorkers and RefineSideways with it, since the parallel
// refinement stages run strictly after coarsening and never influence
// hierarchy construction. Objective is likewise
// excluded — coarsening is objective-independent (matching and contraction
// never consult the metric), so a hierarchy built once may serve both cut
// and km1 descents; any objective separation a cache wants (hpartd keys on
// it conservatively) belongs in the cache key, not here.
func (c Config) CoarseningFingerprint() uint64 {
	eff := c.effective()
	return hypergraph.NewFingerprint().
		Word(uint64(eff.Scheme)).
		Word(uint64(eff.CoarsestSize)).
		Word(uint64(eff.MaxLevels)).
		Word(uint64(eff.HugeNetThreshold)).
		Word(uint64(int64(eff.ClusteringRatio * 1e9))).
		Sum()
}

// MultistartOnHierarchies runs `starts` refinement-only descents over
// prebuilt hierarchies — the hpartd warm path, where the hierarchies come
// from the cache and no request pays for coarsening. Start i descends
// hierarchy i % len(hiers) on rand.NewPCG(baseSeed, i); the first
// len(hiers) starts refine at full strength (owner discipline), later
// starts apply cfg.FollowerPassFraction exactly as SharedMultistart's
// follower starts do. The outcome is a pure function of (hiers, cfg,
// starts, baseSeed) for any worker count; under cancellation the
// best-of-completed-prefix contract of ParallelMultistartCtx applies.
// Hierarchies are immutable, so any number of concurrent calls may share
// them.
func MultistartOnHierarchies(ctx context.Context, hiers []*Hierarchy, cfg Config, starts int, baseSeed uint64) (*Result, error) {
	if len(hiers) == 0 {
		return nil, fmt.Errorf("multilevel: MultistartOnHierarchies needs at least one hierarchy")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if starts < 1 {
		starts = 1
	}
	h := len(hiers)
	bound := make([]*Hierarchy, h)
	for j, hier := range hiers {
		bound[j] = hier.WithRefinement(cfg)
	}
	results := make([]*Result, starts)
	errs := make([]error, starts)
	scratches := make([]*fm.Scratch, par.EffectiveWorkers(starts, cfg.Workers))
	for w := range scratches {
		scratches[w] = fm.GetScratch()
	}
	completed := par.ForEachWorkerCtx(ctx, starts, cfg.Workers, func(worker, i int) {
		results[i], errs[i] = bound[i%h].descendWith(startRNG(baseSeed, i), i >= h, scratches[worker])
	})
	for _, sc := range scratches {
		fm.PutScratch(sc)
	}
	return reduceCompleted(ctx, results[:completed], errs[:completed], starts)
}
