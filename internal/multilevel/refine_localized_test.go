package multilevel_test

import (
	"math/rand/v2"
	"testing"

	"repro/internal/fm"
	"repro/internal/multilevel"
	"repro/internal/partition"
)

// TestLocalizedFMGoldenEquivalence is the determinism contract of the
// localized FM stage at the driver level: for workers in {2, 4, 8} every
// driver — 2-way Partition, direct k-way, V-cycle and shared multistart —
// must return a result bit-identical to LocalizedFMWorkers=1 (the searches
// serialised onto the calling goroutine), on free and fixed-terminals
// instances. Run under -race in CI, which also exercises the concurrent
// boundary scans and the shared search queue on top of the round stage.
func TestLocalizedFMGoldenEquivalence(t *testing.T) {
	p2 := presetProblem(t, "IBM01S", 0.08, 0.2)
	p2free := presetProblem(t, "IBM02S", 0.06, 0)
	p4 := partition.NewFree(p2free.H, 4, 0.1)

	type runs struct {
		part, kway, vcyc, shared *multilevel.Result
	}
	run := func(workers int) runs {
		var r runs
		var err error
		cfg := multilevel.Config{RefineWorkers: 2, LocalizedFMWorkers: workers}
		if r.part, err = multilevel.Partition(p2, cfg, rand.New(rand.NewPCG(3, 4))); err != nil {
			t.Fatalf("workers=%d: Partition: %v", workers, err)
		}
		if r.kway, err = multilevel.PartitionKWay(p4, cfg, rand.New(rand.NewPCG(5, 6))); err != nil {
			t.Fatalf("workers=%d: PartitionKWay: %v", workers, err)
		}
		base, err := multilevel.Partition(p2, multilevel.Config{}, rand.New(rand.NewPCG(7, 8)))
		if err != nil {
			t.Fatalf("workers=%d: VCycle base: %v", workers, err)
		}
		if r.vcyc, err = multilevel.VCycle(p2, base.Assignment, cfg, rand.New(rand.NewPCG(9, 10))); err != nil {
			t.Fatalf("workers=%d: VCycle: %v", workers, err)
		}
		if r.shared, err = multilevel.ParallelSharedMultistart(p2, cfg, 4, 2, rand.New(rand.NewPCG(11, 12))); err != nil {
			t.Fatalf("workers=%d: ParallelSharedMultistart: %v", workers, err)
		}
		return r
	}

	want := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		sameResult(t, "partition", want.part, got.part)
		sameResult(t, "kway", want.kway, got.kway)
		sameResult(t, "vcycle", want.vcyc, got.vcyc)
		sameResult(t, "shared", want.shared, got.shared)
	}
}

// TestLocalizedFMDifferentialQuality bounds what the localized stage (which
// replaces most of the finest-level serial polish with bounded searches plus
// a one-pass tail) costs against the PR 8 pipeline, per the acceptance bar:
// over 40 trials — 20 per objective, varying seed and fixed fraction — the
// mean cut and mean km1 of LocalizedFMWorkers=1 runs must stay within 2% of
// LocalizedFMWorkers=0 runs of the same instances.
func TestLocalizedFMDifferentialQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("quality differential needs full trials")
	}
	for _, obj := range []fm.Objective{fm.ObjectiveCut, fm.ObjectiveKM1} {
		var baseCut, locCut, baseKM1, locKM1 int64
		trial := 0
		for _, inst := range []struct {
			name      string
			fixedFrac float64
		}{
			{"IBM01S", 0}, {"IBM01S", 0.25}, {"IBM02S", 0}, {"IBM02S", 0.25},
		} {
			p2 := presetProblem(t, inst.name, 0.08, inst.fixedFrac)
			p4 := partition.NewFree(p2.H, 4, 0.1)
			for seed := uint64(0); seed < 10; seed++ {
				trial++
				p := p2
				runKWay := seed%2 == 1
				if runKWay {
					p = p4
				}
				run := func(locWorkers int) *multilevel.Result {
					cfg := multilevel.Config{Objective: obj, RefineWorkers: 1, LocalizedFMWorkers: locWorkers}
					rng := rand.New(rand.NewPCG(seed, 0xbeef))
					var res *multilevel.Result
					var err error
					if runKWay {
						res, err = multilevel.PartitionKWay(p, cfg, rng)
					} else {
						res, err = multilevel.Partition(p, cfg, rng)
					}
					if err != nil {
						t.Fatalf("%s trial %d localized-workers=%d: %v", obj, trial, locWorkers, err)
					}
					return res
				}
				b, l := run(0), run(1)
				baseCut += b.Cut
				locCut += l.Cut
				baseKM1 += b.KMinus1
				locKM1 += l.KMinus1
			}
		}
		if trial < 40 {
			t.Fatalf("only %d trials ran, want >= 40", trial)
		}
		if float64(locCut) > 1.02*float64(baseCut) {
			t.Errorf("objective=%s: mean cut with localized FM %.1f exceeds baseline %.1f by more than 2%%",
				obj, float64(locCut)/float64(trial), float64(baseCut)/float64(trial))
		}
		if float64(locKM1) > 1.02*float64(baseKM1) {
			t.Errorf("objective=%s: mean km1 with localized FM %.1f exceeds baseline %.1f by more than 2%%",
				obj, float64(locKM1)/float64(trial), float64(baseKM1)/float64(trial))
		}
	}
}

// TestLocalizedFMFingerprintUnchanged pins the cache-compatibility rule: the
// localized stage runs strictly after coarsening, so LocalizedFMWorkers (and
// RefineSideways) must not move CoarseningFingerprint — hpartd's hierarchy
// cache serves every value with the same entries.
func TestLocalizedFMFingerprintUnchanged(t *testing.T) {
	base := multilevel.Config{}.CoarseningFingerprint()
	for _, workers := range []int{1, 2, 8, 64} {
		if got := (multilevel.Config{LocalizedFMWorkers: workers}).CoarseningFingerprint(); got != base {
			t.Errorf("LocalizedFMWorkers=%d moved CoarseningFingerprint: %x vs %x", workers, got, base)
		}
	}
	if got := (multilevel.Config{RefineSideways: true}).CoarseningFingerprint(); got != base {
		t.Errorf("RefineSideways moved CoarseningFingerprint: %x vs %x", got, base)
	}
}

// TestLocalizedFMOffIsSeedBehavior pins the compatibility promise of the
// zero value: LocalizedFMWorkers=0 must reproduce the PR 8 pipeline bit for
// bit (no extra RNG draws, no localized engine, full finest-level polish) —
// here cross-checked by negative values, which must behave like 0 rather
// than enable anything.
func TestLocalizedFMOffIsSeedBehavior(t *testing.T) {
	p := presetProblem(t, "IBM01S", 0.08, 0.1)
	want, err := multilevel.Partition(p, multilevel.Config{RefineWorkers: 1}, rand.New(rand.NewPCG(21, 22)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := multilevel.Partition(p, multilevel.Config{RefineWorkers: 1, LocalizedFMWorkers: -3}, rand.New(rand.NewPCG(21, 22)))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "localized-fm-workers=-3", want, got)
}

// TestRefineSidewaysGoldenEquivalence checks the sideways knob composes with
// the round stage's determinism contract: with RefineSideways on, workers in
// {2, 4, 8} reproduce workers=1 bit for bit across Partition and direct
// k-way, and leaving the knob off reproduces a default-config run exactly.
func TestRefineSidewaysGoldenEquivalence(t *testing.T) {
	p2 := presetProblem(t, "IBM01S", 0.08, 0.2)
	p4 := partition.NewFree(presetProblem(t, "IBM02S", 0.06, 0).H, 4, 0.1)

	run := func(workers int, sideways bool) (*multilevel.Result, *multilevel.Result) {
		cfg := multilevel.Config{RefineWorkers: workers, RefineSideways: sideways}
		part, err := multilevel.Partition(p2, cfg, rand.New(rand.NewPCG(31, 32)))
		if err != nil {
			t.Fatalf("workers=%d sideways=%v: Partition: %v", workers, sideways, err)
		}
		kway, err := multilevel.PartitionKWay(p4, cfg, rand.New(rand.NewPCG(33, 34)))
		if err != nil {
			t.Fatalf("workers=%d sideways=%v: PartitionKWay: %v", workers, sideways, err)
		}
		return part, kway
	}

	wantPart, wantKWay := run(1, true)
	for _, workers := range []int{2, 4, 8} {
		gotPart, gotKWay := run(workers, true)
		sameResult(t, "sideways partition", wantPart, gotPart)
		sameResult(t, "sideways kway", wantKWay, gotKWay)
	}

	offPart, offKWay := run(1, false)
	basePart, baseKWay := run(1, false)
	sameResult(t, "sideways-off partition determinism", basePart, offPart)
	sameResult(t, "sideways-off kway determinism", baseKWay, offKWay)
}
