package multilevel_test

import (
	"context"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/fm"
	"repro/internal/multilevel"
	"repro/internal/partition"
)

// TestMultistartCtxMatchesUncancelled: with a context that never fires, the
// context-aware drivers are bit-identical to their plain counterparts, for
// both nil and Background contexts and across worker counts.
func TestMultistartCtxMatchesUncancelled(t *testing.T) {
	p := presetProblem(t, "IBM01S", 0.05, 0.3)
	cfg := multilevel.Config{}
	want, err := multilevel.ParallelMultistart(p, cfg, 6, rand.New(rand.NewPCG(7, 7)))
	if err != nil {
		t.Fatal(err)
	}
	for _, ctx := range map[string]context.Context{"nil": nil, "background": context.Background()} {
		for _, workers := range []int{1, 4} {
			c := cfg
			c.Workers = workers
			got, err := multilevel.ParallelMultistartCtx(ctx, p, c, 6, rand.New(rand.NewPCG(7, 7)))
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "ctx driver", want, got)
			if got.Truncated {
				t.Error("uncancelled run reported Truncated")
			}
		}
	}
}

// TestMultistartCtxPreCancelled: a context that is already done before any
// start completes yields an error wrapping ctx.Err(), never a partial result.
func TestMultistartCtxPreCancelled(t *testing.T) {
	p := presetProblem(t, "IBM01S", 0.05, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		cfg := multilevel.Config{Workers: workers}
		if _, err := multilevel.ParallelMultistartCtx(ctx, p, cfg, 4, rand.New(rand.NewPCG(1, 1))); err == nil {
			t.Errorf("workers=%d: pre-cancelled context returned a result", workers)
		}
	}
}

// TestMultistartCtxTruncatedFeasible is the service's core guarantee: a run
// cut short mid-flight either errors with the context cause (nothing
// finished) or returns a feasible partition marked Truncated whose cut
// matches the best of the completed prefix. We cancel from a watcher
// goroutine shortly after the run begins so some starts usually finish first.
func TestMultistartCtxTruncatedFeasible(t *testing.T) {
	p := presetProblem(t, "IBM01S", 0.2, 0)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	cfg := multilevel.Config{Workers: 2}
	res, err := multilevel.ParallelMultistartCtx(ctx, p, cfg, 64, rand.New(rand.NewPCG(3, 3)))
	if err != nil {
		if ctx.Err() == nil {
			t.Fatalf("run failed for a non-cancellation reason: %v", err)
		}
		t.Logf("cancelled before any start completed (allowed): %v", err)
		return
	}
	if ferr := p.Feasible(res.Assignment); ferr != nil {
		t.Fatalf("truncated result infeasible: %v", ferr)
	}
	if res.Starts > 64 {
		t.Errorf("completed %d of 64 starts", res.Starts)
	}
	if res.Starts < 64 && !res.Truncated {
		t.Errorf("completed %d < 64 starts but Truncated is false", res.Starts)
	}
	// The truncated answer must equal an honest serial run over the same
	// prefix: best of starts [0, res.Starts).
	want, err := multilevel.ParallelMultistart(p, multilevel.Config{}, res.Starts, rand.New(rand.NewPCG(3, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != want.Cut {
		t.Errorf("truncated cut %d != best-of-prefix cut %d (prefix %d)", res.Cut, want.Cut, res.Starts)
	}
}

// TestBuildHierarchiesPure: BuildHierarchies is a pure function of its
// arguments — two builds with the same seed descend to identical results —
// and rejects k != 2.
func TestBuildHierarchiesPure(t *testing.T) {
	p := presetProblem(t, "IBM01S", 0.05, 0.2)
	cfg := multilevel.Config{}
	a, err := multilevel.BuildHierarchies(context.Background(), p, cfg, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := multilevel.BuildHierarchies(nil, p, cfg, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := multilevel.MultistartOnHierarchies(context.Background(), a, cfg, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := multilevel.MultistartOnHierarchies(nil, b, cfg, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "rebuilt hierarchies", ra, rb)

	kp4 := partition.NewFree(p.H, 4, 0.02)
	if _, err := multilevel.BuildHierarchies(context.Background(), kp4, cfg, 1, 1); err == nil {
		t.Error("BuildHierarchies accepted k=4")
	}
}

// TestMultistartOnHierarchiesDeterministic: the warm path is worker-count
// independent and its results are feasible; rebinding refinement config via
// the shared hierarchies (different policy) still descends fine.
func TestMultistartOnHierarchiesDeterministic(t *testing.T) {
	p := presetProblem(t, "IBM01S", 0.05, 0.3)
	hiers, err := multilevel.BuildHierarchies(context.Background(), p, multilevel.Config{}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	var want *multilevel.Result
	for _, workers := range []int{1, 2, 8} {
		cfg := multilevel.Config{Workers: workers}
		got, err := multilevel.MultistartOnHierarchies(context.Background(), hiers, cfg, 8, 99)
		if err != nil {
			t.Fatal(err)
		}
		if ferr := p.Feasible(got.Assignment); ferr != nil {
			t.Fatalf("workers=%d: infeasible: %v", workers, ferr)
		}
		if want == nil {
			want = got
		} else {
			sameResult(t, "warm path workers", want, got)
		}
	}
	// A different refinement config on the same hierarchies must also work
	// (WithRefinement rebinding) and stay deterministic.
	cut := multilevel.Config{MaxPassFraction: 0.25}
	r1, err := multilevel.MultistartOnHierarchies(context.Background(), hiers, cut, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := multilevel.MultistartOnHierarchies(context.Background(), hiers, cut, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "rebound refinement", r1, r2)
}

// TestCoarseningFingerprint: refinement-phase knobs do not move the
// fingerprint; coarsening-phase knobs do.
func TestCoarseningFingerprint(t *testing.T) {
	base := multilevel.Config{}.CoarseningFingerprint()
	refine := multilevel.Config{MaxPassFraction: 0.25, InitialTries: 9}
	refine.SetPolicy(fm.LIFO)
	if got := refine.CoarseningFingerprint(); got != base {
		t.Errorf("refinement-only config changed fingerprint: %016x vs %016x", got, base)
	}
	coarse := multilevel.Config{CoarsestSize: 300}
	if got := coarse.CoarseningFingerprint(); got == base {
		t.Error("CoarsestSize change did not move fingerprint")
	}
}
