package multilevel_test

import (
	"math/rand/v2"
	"testing"

	"repro/internal/multilevel"
)

// TestSharedMultistartGoldenEquivalence is the golden guarantee of the shared
// path: with one private hierarchy per start (hierarchies == starts) every
// start is an owner — hierarchy build and full descent on the same per-start
// RNG — so SharedMultistart must reproduce Multistart bit for bit on the
// IBM01S-03S presets, in the free and fixed-terminals regimes.
func TestSharedMultistartGoldenEquivalence(t *testing.T) {
	for _, name := range []string{"IBM01S", "IBM02S", "IBM03S"} {
		for _, fixedFrac := range []float64{0, 0.2} {
			p := presetProblem(t, name, 0.08, fixedFrac)
			const starts = 4
			want, err := multilevel.Multistart(p, multilevel.Config{}, starts, rand.New(rand.NewPCG(11, 13)))
			if err != nil {
				t.Fatal(err)
			}
			got, err := multilevel.SharedMultistart(p, multilevel.Config{}, starts, starts, rand.New(rand.NewPCG(11, 13)))
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, name, want, got)
		}
	}
}

// TestBuildHierarchyDescendMatchesPartition checks the refactoring seam
// directly: BuildHierarchy followed by Descend on the same rng is exactly
// Partition.
func TestBuildHierarchyDescendMatchesPartition(t *testing.T) {
	p := presetProblem(t, "IBM01S", 0.08, 0.1)
	want, err := multilevel.Partition(p, multilevel.Config{}, rand.New(rand.NewPCG(3, 7)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 7))
	h, err := multilevel.BuildHierarchy(p, multilevel.Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Descend(rng)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "build+descend", want, got)
	if h.Levels() != want.Levels {
		t.Errorf("hierarchy levels = %d, want %d", h.Levels(), want.Levels)
	}
	if h.Root() != p {
		t.Error("hierarchy root is not the input problem")
	}
	if h.Coarsest().MovableCount() > 120 {
		t.Errorf("coarsest level has %d movable vertices, want <= 120", h.Coarsest().MovableCount())
	}
}

// TestParallelSharedMultistartWorkers is the determinism contract for the
// shared driver: with followers in play (hierarchies < starts),
// ParallelSharedMultistart must return a bit-identical Result for worker
// counts 1, 2 and 4, all equal to the serial SharedMultistart. Run under
// -race in CI, which also exercises concurrent follower descents sharing one
// immutable hierarchy.
func TestParallelSharedMultistartWorkers(t *testing.T) {
	for _, fixedFrac := range []float64{0, 0.2} {
		p := presetProblem(t, "IBM01S", 0.08, fixedFrac)
		const starts, hierarchies = 6, 2
		want, err := multilevel.SharedMultistart(p, multilevel.Config{}, starts, hierarchies, rand.New(rand.NewPCG(21, 22)))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			cfg := multilevel.Config{Workers: workers}
			got, err := multilevel.ParallelSharedMultistart(p, cfg, starts, hierarchies, rand.New(rand.NewPCG(21, 22)))
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "workers=2", want, got)
		}
	}
}

// TestSharedMultistartFollowerQuality bounds the price of follower descents:
// best-of-8 with 2 hierarchies must stay within a small factor of the
// unshared best-of-8 cut on a mid-size instance.
func TestSharedMultistartFollowerQuality(t *testing.T) {
	p := presetProblem(t, "IBM01S", 0.08, 0)
	unshared, err := multilevel.Multistart(p, multilevel.Config{}, 8, rand.New(rand.NewPCG(31, 32)))
	if err != nil {
		t.Fatal(err)
	}
	shared, err := multilevel.SharedMultistart(p, multilevel.Config{}, 8, 2, rand.New(rand.NewPCG(31, 32)))
	if err != nil {
		t.Fatal(err)
	}
	if float64(shared.Cut) > 1.25*float64(unshared.Cut)+2 {
		t.Errorf("shared best-of-8 cut %d too far above unshared %d", shared.Cut, unshared.Cut)
	}
}

// TestHugeNetThresholdConfig covers the new Config field: negative values are
// rejected by every driver entry point, and sweeping the threshold changes
// coarsening (tiny thresholds leave nothing to score, so the engine still
// works, just flatter).
func TestHugeNetThresholdConfig(t *testing.T) {
	p := presetProblem(t, "IBM01S", 0.05, 0)
	bad := multilevel.Config{HugeNetThreshold: -1}
	if _, err := multilevel.Partition(p, bad, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Error("Partition accepted negative HugeNetThreshold")
	}
	if _, err := multilevel.SharedMultistart(p, bad, 2, 1, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Error("SharedMultistart accepted negative HugeNetThreshold")
	}
	if _, err := multilevel.BuildHierarchy(p, bad, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Error("BuildHierarchy accepted negative HugeNetThreshold")
	}
	for _, thr := range []int{1, 3, 50} {
		res, err := multilevel.Partition(p, multilevel.Config{HugeNetThreshold: thr}, rand.New(rand.NewPCG(2, 2)))
		if err != nil {
			t.Fatalf("threshold %d: %v", thr, err)
		}
		if res.Cut < 0 {
			t.Fatalf("threshold %d: negative cut", thr)
		}
	}
}

// TestPhaseStats checks Config.Stats accounting: all three phases accrue
// time, and the totals are consistent.
func TestPhaseStats(t *testing.T) {
	p := presetProblem(t, "IBM01S", 0.08, 0)
	var st multilevel.PhaseStats
	cfg := multilevel.Config{Stats: &st}
	if _, err := multilevel.Multistart(p, cfg, 2, rand.New(rand.NewPCG(5, 5))); err != nil {
		t.Fatal(err)
	}
	if st.CoarsenNS <= 0 || st.InitNS <= 0 || st.RefineNS <= 0 {
		t.Errorf("phase times not all positive: %+v", st)
	}
	if st.TotalNS() != st.CoarsenNS+st.InitNS+st.RefineNS {
		t.Errorf("TotalNS inconsistent")
	}
	if st.CoarsenAllocs <= 0 || st.InitAllocs <= 0 || st.RefineAllocs <= 0 {
		t.Errorf("phase allocs not all positive: %+v", st)
	}
}
