package multilevel

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// RecursiveBisect partitions a k-way problem (any k >= 2) by recursive
// multilevel bisection, the standard construction for top-down placement.
// Part ranges split ⌈k/2⌉ / ⌊k/2⌋, with each side's balance window being the
// sum of its parts' windows, so non-power-of-two k gets proportional targets.
// Fixed and OR-region masks are honoured at every level: a vertex whose mask
// only intersects one side of the current split is a fixed terminal for that
// bisection. Nets that leave the current block are dropped from the
// subproblem (callers who want terminal propagation should model it with
// explicit fixed pad vertices, as internal/benchgen does).
func RecursiveBisect(p *partition.Problem, cfg Config, rng *rand.Rand) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	nv := p.H.NumVertices()
	out := make(partition.Assignment, nv)
	vertexIDs := make([]int32, nv)
	for i := range vertexIDs {
		vertexIDs[i] = int32(i)
	}
	levels := 0
	if err := bisectRange(p, cfg, rng, p.H, vertexIDs, 0, p.K, out, &levels); err != nil {
		return nil, err
	}
	return newResult(p, out, cfg, levels), nil
}

// bisectRange assigns the vertices of sub (whose original ids are origIDs)
// to parts in [lo, hi), writing results into out.
func bisectRange(root *partition.Problem, cfg Config, rng *rand.Rand, sub *hypergraph.Hypergraph, origIDs []int32, lo, hi int, out partition.Assignment, levels *int) error {
	if hi-lo == 1 {
		for _, ov := range origIDs {
			out[ov] = int8(lo)
		}
		return nil
	}
	mid := lo + (hi-lo+1)/2

	// Side masks in the root's part space.
	var leftMask, rightMask partition.Mask
	for q := lo; q < mid; q++ {
		leftMask = leftMask.With(q)
	}
	for q := mid; q < hi; q++ {
		rightMask = rightMask.With(q)
	}

	nr := sub.NumResources()
	bal := partition.Balance{Min: make([][]int64, 2), Max: make([][]int64, 2)}
	for s := 0; s < 2; s++ {
		bal.Min[s] = make([]int64, nr)
		bal.Max[s] = make([]int64, nr)
	}
	for q := lo; q < hi; q++ {
		s := 0
		if q >= mid {
			s = 1
		}
		for r := 0; r < nr; r++ {
			bal.Min[s][r] += root.Balance.Min[q][r]
			bal.Max[s][r] += root.Balance.Max[q][r]
		}
	}

	bp := &partition.Problem{H: sub, K: 2, Balance: bal}
	needMasks := root.Allowed != nil
	if needMasks {
		masks := make([]partition.Mask, sub.NumVertices())
		for v := range masks {
			var m partition.Mask
			rm := root.MaskOf(int(origIDs[v]))
			if rm.Intersect(leftMask) != 0 {
				m = m.With(0)
			}
			if rm.Intersect(rightMask) != 0 {
				m = m.With(1)
			}
			masks[v] = m
		}
		bp.Allowed = masks
	}
	res, err := Partition(bp, cfg, rng)
	if err != nil {
		return fmt.Errorf("multilevel: bisecting parts [%d,%d): %w", lo, hi, err)
	}
	if res.Levels > *levels {
		*levels = res.Levels
	}

	for s := 0; s < 2; s++ {
		keep := make([]bool, sub.NumVertices())
		count := 0
		for v := range keep {
			if int(res.Assignment[v]) == s {
				keep[v] = true
				count++
			}
		}
		ind, err := hypergraph.InducedSubgraph(sub, keep)
		if err != nil {
			return err
		}
		childIDs := make([]int32, count)
		for sv, pv := range ind.VertexOf {
			childIDs[sv] = origIDs[pv]
		}
		childLo, childHi := lo, mid
		if s == 1 {
			childLo, childHi = mid, hi
		}
		if err := bisectRange(root, cfg, rng, ind.Sub, childIDs, childLo, childHi, out, levels); err != nil {
			return err
		}
	}
	return nil
}
