package multilevel_test

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/gen"
	"repro/internal/multilevel"
	"repro/internal/partition"
)

func benchProblem(b *testing.B, scale float64) *partition.Problem {
	b.Helper()
	pr, err := gen.PresetByName("IBM01S")
	if err != nil {
		b.Fatal(err)
	}
	nl, err := gen.Generate(pr.Params.Scaled(scale))
	if err != nil {
		b.Fatal(err)
	}
	return partition.NewBipartition(nl.H, 0.02)
}

func BenchmarkPartition(b *testing.B) {
	p := benchProblem(b, 0.2)
	rng := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multilevel.Partition(p, multilevel.Config{}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionFullScale(b *testing.B) {
	p := benchProblem(b, 1.0)
	rng := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multilevel.Partition(p, multilevel.Config{}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionFixed30(b *testing.B) {
	p := benchProblem(b, 0.2)
	rng := rand.New(rand.NewPCG(1, 1))
	nv := p.H.NumVertices()
	for _, v := range rng.Perm(nv)[:nv*3/10] {
		p.Fix(v, rng.IntN(2))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multilevel.Partition(p, multilevel.Config{}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVCycle(b *testing.B) {
	p := benchProblem(b, 0.2)
	rng := rand.New(rand.NewPCG(1, 1))
	base, err := multilevel.Partition(p, multilevel.Config{}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multilevel.VCycle(p, base.Assignment, multilevel.Config{}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecursiveBisect4(b *testing.B) {
	pr, err := gen.PresetByName("IBM01S")
	if err != nil {
		b.Fatal(err)
	}
	nl, err := gen.Generate(pr.Params.Scaled(0.2))
	if err != nil {
		b.Fatal(err)
	}
	p := partition.NewFree(nl.H, 4, 0.05)
	rng := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multilevel.RecursiveBisect(p, multilevel.Config{}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelMultistart measures 8-start multilevel runs at several
// worker counts. On a single-CPU host all counts degenerate to serial
// throughput; the sub-benchmarks exist to expose scheduling overhead and, on
// multicore hosts, the speedup of the deterministic parallel driver.
func BenchmarkParallelMultistart(b *testing.B) {
	p := benchProblem(b, 0.2)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := multilevel.Config{Workers: workers}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewPCG(1, 1))
				if _, err := multilevel.ParallelMultistart(p, cfg, 8, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAdaptiveMultistartParallel(b *testing.B) {
	p := benchProblem(b, 0.2)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := multilevel.Config{Workers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewPCG(1, 1))
				if _, err := multilevel.ParallelAdaptiveMultistart(p, cfg, 16, 2, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
