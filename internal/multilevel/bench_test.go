package multilevel_test

import (
	"math/rand/v2"
	"testing"

	"repro/internal/gen"
	"repro/internal/multilevel"
	"repro/internal/partition"
)

func benchProblem(b *testing.B, scale float64) *partition.Problem {
	b.Helper()
	pr, err := gen.PresetByName("IBM01S")
	if err != nil {
		b.Fatal(err)
	}
	nl, err := gen.Generate(pr.Params.Scaled(scale))
	if err != nil {
		b.Fatal(err)
	}
	return partition.NewBipartition(nl.H, 0.02)
}

func BenchmarkPartition(b *testing.B) {
	p := benchProblem(b, 0.2)
	rng := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multilevel.Partition(p, multilevel.Config{}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionFullScale(b *testing.B) {
	p := benchProblem(b, 1.0)
	rng := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multilevel.Partition(p, multilevel.Config{}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionFixed30(b *testing.B) {
	p := benchProblem(b, 0.2)
	rng := rand.New(rand.NewPCG(1, 1))
	nv := p.H.NumVertices()
	for _, v := range rng.Perm(nv)[:nv*3/10] {
		p.Fix(v, rng.IntN(2))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multilevel.Partition(p, multilevel.Config{}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVCycle(b *testing.B) {
	p := benchProblem(b, 0.2)
	rng := rand.New(rand.NewPCG(1, 1))
	base, err := multilevel.Partition(p, multilevel.Config{}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multilevel.VCycle(p, base.Assignment, multilevel.Config{}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecursiveBisect4(b *testing.B) {
	pr, err := gen.PresetByName("IBM01S")
	if err != nil {
		b.Fatal(err)
	}
	nl, err := gen.Generate(pr.Params.Scaled(0.2))
	if err != nil {
		b.Fatal(err)
	}
	p := partition.NewFree(nl.H, 4, 0.05)
	rng := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multilevel.RecursiveBisect(p, multilevel.Config{}, rng); err != nil {
			b.Fatal(err)
		}
	}
}
