package multilevel

import (
	"math/rand/v2"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

func coarsenFixture(t *testing.T) *partition.Problem {
	t.Helper()
	rng := rand.New(rand.NewPCG(5, 5))
	b := hypergraph.NewBuilder(1)
	const nv = 200
	for i := 0; i < nv; i++ {
		b.AddVertex(int64(1 + rng.IntN(3)))
	}
	for e := 0; e < 2*nv; e++ {
		sz := 2 + rng.IntN(3)
		b.AddNet(rng.Perm(nv)[:sz]...)
	}
	return partition.NewBipartition(b.MustBuild(), 0.1)
}

func TestMatchLevelRespectsMasksAndWeights(t *testing.T) {
	p := coarsenFixture(t)
	rng := rand.New(rand.NewPCG(6, 6))
	for v := 0; v < p.H.NumVertices(); v += 3 {
		p.Fix(v, (v/3)%2)
	}
	const maxW = 4
	coarse, clusterOf, ok := matchLevel(p, nil, maxW, 0.95, 50, 2, rng)
	if !ok {
		t.Fatal("matching failed to shrink")
	}
	// Clusters never mix vertices fixed in different parts, never exceed the
	// weight cap, and masks intersect member masks.
	members := map[int32][]int{}
	for v, c := range clusterOf {
		members[c] = append(members[c], v)
	}
	for c, vs := range members {
		var w int64
		mask := partition.AllParts(2)
		for _, v := range vs {
			w += p.H.Weight(v)
			mask = mask.Intersect(p.MaskOf(v))
		}
		if len(vs) > 1 && w > maxW {
			t.Fatalf("cluster %d weight %d exceeds cap %d", c, w, maxW)
		}
		if mask == 0 {
			t.Fatalf("cluster %d mixes incompatible masks", c)
		}
		if coarse.MaskOf(int(c)) != mask {
			t.Fatalf("cluster %d mask %b, want %b", c, coarse.MaskOf(int(c)), mask)
		}
		if coarse.H.Weight(int(c)) != w {
			t.Fatalf("cluster %d weight %d, want %d", c, coarse.H.Weight(int(c)), w)
		}
	}
}

func TestMatchLevelPartRestriction(t *testing.T) {
	p := coarsenFixture(t)
	rng := rand.New(rand.NewPCG(7, 7))
	part := make(partition.Assignment, p.H.NumVertices())
	for v := range part {
		part[v] = int8(v % 2)
	}
	_, clusterOf, ok := matchLevel(p, part, 1<<40, 0.95, 50, 3, rng)
	if !ok {
		t.Skip("restricted matching found nothing (acceptable on this draw)")
	}
	members := map[int32][]int{}
	for v, c := range clusterOf {
		members[c] = append(members[c], v)
	}
	for c, vs := range members {
		for _, v := range vs[1:] {
			if part[v] != part[vs[0]] {
				t.Fatalf("cluster %d crosses the current partition", c)
			}
		}
	}
}

func TestHyperedgeLevelContractsWholeNets(t *testing.T) {
	// A hypergraph of disjoint triangles: hyperedge coarsening contracts
	// each 3-pin net whole.
	b := hypergraph.NewBuilder(1)
	const groups = 30
	for i := 0; i < 3*groups; i++ {
		b.AddVertex(1)
	}
	for g := 0; g < groups; g++ {
		// Heavier than the ring nets so the triangles contract first (the
		// scheme visits nets heaviest-first, smaller-first on ties).
		b.AddWeightedNet(2, 3*g, 3*g+1, 3*g+2)
	}
	// Join the triangles in a ring so nets survive contraction.
	for g := 0; g < groups; g++ {
		b.AddNet(3*g, (3*(g+1))%(3*groups))
	}
	p := partition.NewBipartition(b.MustBuild(), 0.2)
	rng := rand.New(rand.NewPCG(8, 8))
	coarse, clusterOf, ok := hyperedgeLevel(p, nil, 1<<40, 0.95, 50, false, 2, rng)
	if !ok {
		t.Fatal("hyperedge coarsening failed")
	}
	// Every triangle collapses to one cluster.
	for g := 0; g < groups; g++ {
		if clusterOf[3*g] != clusterOf[3*g+1] || clusterOf[3*g] != clusterOf[3*g+2] {
			t.Fatalf("triangle %d not contracted whole", g)
		}
	}
	if coarse.H.NumVertices() != groups {
		t.Fatalf("coarse vertices = %d, want %d", coarse.H.NumVertices(), groups)
	}
}

func TestHyperedgeLevelWeightCap(t *testing.T) {
	b := hypergraph.NewBuilder(1)
	for i := 0; i < 6; i++ {
		b.AddVertex(10)
	}
	b.AddNet(0, 1, 2)
	b.AddNet(3, 4)
	b.AddNet(2, 3)
	p := partition.NewBipartition(b.MustBuild(), 0.3)
	rng := rand.New(rand.NewPCG(9, 9))
	// Cap 20 allows the 2-pin net only.
	_, clusterOf, ok := hyperedgeLevel(p, nil, 20, 0.99, 50, false, 1, rng)
	if !ok {
		t.Fatal("coarsening failed")
	}
	if clusterOf[0] == clusterOf[1] {
		t.Error("over-cap triangle contracted")
	}
	if clusterOf[3] != clusterOf[4] {
		t.Error("in-cap pair not contracted")
	}
}

func TestModifiedHyperedgeContractsResiduals(t *testing.T) {
	// Net A = {0,1}; net B = {1,2,3}. EC contracts A; MHEC additionally
	// contracts B's unmatched pins {2,3}.
	b := hypergraph.NewBuilder(1)
	for i := 0; i < 4; i++ {
		b.AddVertex(1)
	}
	b.AddWeightedNet(5, 0, 1) // heavier: contracted first
	b.AddNet(1, 2, 3)
	p := partition.NewBipartition(b.MustBuild(), 0.5)
	rng := rand.New(rand.NewPCG(10, 10))
	_, clusterOf, ok := hyperedgeLevel(p, nil, 1<<40, 0.99, 50, true, 1, rng)
	if !ok {
		t.Fatal("coarsening failed")
	}
	if clusterOf[0] != clusterOf[1] {
		t.Error("heavy net not contracted")
	}
	if clusterOf[2] != clusterOf[3] {
		t.Error("MHEC residual {2,3} not contracted")
	}
	if clusterOf[1] == clusterOf[2] {
		t.Error("matched vertex re-contracted")
	}
}
