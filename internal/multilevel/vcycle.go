package multilevel

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/fm"
	"repro/internal/partition"
)

// VCycle refines an existing feasible solution with one V-cycle in the style
// of hMetis: the hypergraph is re-coarsened *restricted* to the current
// partition (vertices only merge within their part, so the solution projects
// exactly onto every level), then refined level by level from the coarsest
// projection of the current solution.
//
// The paper's engine deliberately omits V-cycling ("a net loss in terms of
// overall cost-runtime profile"); it is provided here both for completeness
// and so that the claim itself can be measured (see BenchmarkVCycleAblation).
// It returns the improved assignment and cut; the input assignment is not
// modified. Works for any k: 2-way problems refine with fm.Bipartition and
// k-way ones with direct k-way FM, since restricted coarsening is
// part-count-agnostic.
func VCycle(p *partition.Problem, a partition.Assignment, cfg Config, rng *rand.Rand) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.Feasible(a); err != nil {
		return nil, fmt.Errorf("multilevel: VCycle input: %w", err)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.effective()
	maxCluster := kwayMaxCluster(p)

	// Restricted coarsening stack; each level carries the projection of a.
	type vlevel struct {
		problem   *partition.Problem
		clusterOf []int32
		sol       partition.Assignment
	}
	levels := []vlevel{{problem: p, sol: a.Clone()}}
	for len(levels) < cfg.MaxLevels {
		curr := levels[len(levels)-1]
		if curr.problem.MovableCount() <= cfg.CoarsestSize {
			break
		}
		coarse, clusterOf, ok := coarsenLevel(cfg.Scheme, curr.problem, curr.sol, maxCluster, cfg.ClusteringRatio, cfg.HugeNetThreshold, cfg.CoarsenWorkers, rng)
		if !ok {
			break
		}
		coarseSol := make(partition.Assignment, coarse.H.NumVertices())
		for v, c := range clusterOf {
			coarseSol[c] = curr.sol[v]
		}
		levels[len(levels)-1].clusterOf = clusterOf
		levels = append(levels, vlevel{problem: coarse, sol: coarseSol})
	}

	fmCfg := fm.Config{Policy: cfg.Policy, Objective: cfg.Objective, MaxPassFraction: cfg.MaxPassFraction, MaxPasses: cfg.RefineMaxPasses, Stats: kernelStats(cfg.Stats)}
	sc := fm.GetScratch()
	defer fm.PutScratch(sc)
	sol := levels[len(levels)-1].sol
	for lvl := len(levels) - 1; lvl >= 0; lvl-- {
		var err error
		if sol, err = parallelRounds(levels[lvl].problem, sol, cfg, rng, sc); err != nil {
			return nil, fmt.Errorf("multilevel: V-cycle refining level %d: %w", lvl, err)
		}
		if sol, err = localizedRounds(levels[lvl].problem, sol, cfg, lvl, rng, sc); err != nil {
			return nil, fmt.Errorf("multilevel: V-cycle refining level %d: %w", lvl, err)
		}
		lvlCfg := polishConfig(fmCfg, cfg, lvl)
		var refined partition.Assignment
		if p.K == 2 {
			res, err := fm.BipartitionWith(levels[lvl].problem, sol, lvlCfg, sc)
			if err != nil {
				return nil, fmt.Errorf("multilevel: V-cycle refining level %d: %w", lvl, err)
			}
			refined = res.Assignment
		} else {
			res, err := fm.KWayPartitionWith(levels[lvl].problem, sol, lvlCfg, sc)
			if err != nil {
				return nil, fmt.Errorf("multilevel: V-cycle refining level %d: %w", lvl, err)
			}
			refined = res.Assignment
		}
		sol = refined
		if lvl > 0 {
			sol = project(sol, levels[lvl-1].clusterOf)
		}
	}
	return newResult(p, sol, cfg, len(levels)-1), nil
}

// PartitionWithVCycles runs Partition followed by up to n V-cycles, stopping
// early when a cycle fails to improve the configured objective.
func PartitionWithVCycles(p *partition.Problem, cfg Config, n int, rng *rand.Rand) (*Result, error) {
	res, err := Partition(p, cfg, rng)
	if err != nil {
		return nil, err
	}
	return vcycleLoop(p, res, cfg, n, rng)
}

// PartitionKWayWithVCycles runs PartitionKWay followed by up to n direct
// k-way V-cycles, stopping early when a cycle fails to improve the
// configured objective.
func PartitionKWayWithVCycles(p *partition.Problem, cfg Config, n int, rng *rand.Rand) (*Result, error) {
	res, err := PartitionKWay(p, cfg, rng)
	if err != nil {
		return nil, err
	}
	return vcycleLoop(p, res, cfg, n, rng)
}

func vcycleLoop(p *partition.Problem, res *Result, cfg Config, n int, rng *rand.Rand) (*Result, error) {
	for i := 0; i < n; i++ {
		vres, err := VCycle(p, res.Assignment, cfg, rng)
		if err != nil {
			return nil, err
		}
		if vres.Score >= res.Score {
			break
		}
		res = vres
	}
	return res, nil
}
