package multilevel_test

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/multilevel"
	"repro/internal/partition"
)

// directKs is the part-count sweep the issue requires for direct k-way
// coverage; note 3 is not a power of two.
var directKs = []int{2, 3, 4, 8}

// TestPartitionKWayFeasible checks feasibility and full part usage of the
// direct driver on naturally k-clustered instances for every k in the sweep.
func TestPartitionKWayFeasible(t *testing.T) {
	for _, k := range directKs {
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			h := clusters(k, 80, 3)
			p := partition.NewFree(h, k, 0.1)
			res, err := multilevel.PartitionKWay(p, multilevel.Config{}, rand.New(rand.NewPCG(31, uint64(k))))
			if err != nil {
				t.Fatalf("PartitionKWay: %v", err)
			}
			if err := p.Feasible(res.Assignment); err != nil {
				t.Fatalf("infeasible: %v", err)
			}
			if res.Cut != partition.Cut(h, res.Assignment) {
				t.Errorf("reported cut %d != recomputed %d", res.Cut, partition.Cut(h, res.Assignment))
			}
			counts := make(map[int8]int)
			for _, q := range res.Assignment {
				counts[q]++
			}
			if len(counts) != k {
				t.Errorf("used %d parts, want %d", len(counts), k)
			}
			if res.Levels == 0 {
				t.Errorf("expected coarsening levels > 0 for %d vertices", h.NumVertices())
			}
		})
	}
}

// TestPartitionKWayHonorsFixedVertices fixes a slice of each natural cluster
// into a chosen part and checks the direct driver keeps every fixed vertex in
// place at every k.
func TestPartitionKWayHonorsFixedVertices(t *testing.T) {
	for _, k := range directKs {
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			const n = 60
			h := clusters(k, n, 3)
			p := partition.NewFree(h, k, 0.1)
			// Fix the first quarter of each cluster into its natural part.
			for g := 0; g < k; g++ {
				for i := 0; i < n/4; i++ {
					p.Fix(g*n+i, g)
				}
			}
			res, err := multilevel.PartitionKWay(p, multilevel.Config{}, rand.New(rand.NewPCG(32, uint64(k))))
			if err != nil {
				t.Fatalf("PartitionKWay: %v", err)
			}
			if err := p.Feasible(res.Assignment); err != nil {
				t.Fatalf("infeasible: %v", err)
			}
			for g := 0; g < k; g++ {
				for i := 0; i < n/4; i++ {
					if got := int(res.Assignment[g*n+i]); got != g {
						t.Fatalf("fixed vertex %d moved to part %d, want %d", g*n+i, got, g)
					}
				}
			}
		})
	}
}

// TestPartitionKWayHonorsORMasks restricts a slice of vertices to a two-part
// OR-region and checks the direct driver lands each inside its region at
// every level of the V-cycle-free pipeline.
func TestPartitionKWayHonorsORMasks(t *testing.T) {
	for _, k := range directKs {
		if k < 3 {
			continue // an OR over both parts of k=2 is unconstrained
		}
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			const n = 60
			h := clusters(k, n, 3)
			p := partition.NewFree(h, k, 0.1)
			// Every 7th vertex may live only in part 0 or part k-1.
			region := partition.Single(0).With(k - 1)
			var restricted []int
			for v := 0; v < h.NumVertices(); v += 7 {
				p.Restrict(v, region)
				restricted = append(restricted, v)
			}
			res, err := multilevel.PartitionKWay(p, multilevel.Config{}, rand.New(rand.NewPCG(33, uint64(k))))
			if err != nil {
				t.Fatalf("PartitionKWay: %v", err)
			}
			if err := p.Feasible(res.Assignment); err != nil {
				t.Fatalf("infeasible: %v", err)
			}
			for _, v := range restricted {
				if q := int(res.Assignment[v]); !region.Contains(q) {
					t.Fatalf("OR-region vertex %d in part %d, want within mask %b", v, q, region)
				}
			}
		})
	}
}

// TestMultistartKWaySerialParallelEquivalence verifies the determinism
// contract for the direct driver: serial MultistartKWay and
// ParallelMultistartKWay with 1, 2 and 5 workers all return bit-identical
// results from the same incoming rng state. Runs under -race in CI.
func TestMultistartKWaySerialParallelEquivalence(t *testing.T) {
	for _, k := range []int{3, 4} {
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			h := clusters(k, 50, 3)
			p := partition.NewFree(h, k, 0.1)
			// Mix in fixed vertices so the contract is exercised in the
			// paper's regime.
			for g := 0; g < k; g++ {
				p.Fix(g*50, g)
			}
			const starts = 6
			serial, err := multilevel.MultistartKWay(p, multilevel.Config{}, starts, rand.New(rand.NewPCG(77, uint64(k))))
			if err != nil {
				t.Fatalf("MultistartKWay: %v", err)
			}
			for _, workers := range []int{1, 2, 5} {
				cfg := multilevel.Config{Workers: workers}
				par, err := multilevel.ParallelMultistartKWay(p, cfg, starts, rand.New(rand.NewPCG(77, uint64(k))))
				if err != nil {
					t.Fatalf("ParallelMultistartKWay(workers=%d): %v", workers, err)
				}
				if par.Cut != serial.Cut || !reflect.DeepEqual(par.Assignment, serial.Assignment) {
					t.Errorf("workers=%d: parallel result differs from serial (cut %d vs %d)", workers, par.Cut, serial.Cut)
				}
				if par.Starts != serial.Starts {
					t.Errorf("workers=%d: Starts = %d, want %d", workers, par.Starts, serial.Starts)
				}
			}
		})
	}
}

// TestDirectKWayNotWorseThanRB is the acceptance gate: over the shared
// presets/seeds below, direct k-way's mean cut must not exceed recursive
// bisection's. Both run as single starts per seed from identical rng states.
func TestDirectKWayNotWorseThanRB(t *testing.T) {
	if testing.Short() {
		t.Skip("quality comparison is moderately expensive")
	}
	for _, k := range []int{3, 4, 8} {
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			h := clusters(k, 70, 4)
			p := partition.NewFree(h, k, 0.1)
			var sumDirect, sumRB int64
			const seeds = 5
			for s := 0; s < seeds; s++ {
				direct, err := multilevel.PartitionKWay(p, multilevel.Config{}, rand.New(rand.NewPCG(91, uint64(100*k+s))))
				if err != nil {
					t.Fatalf("PartitionKWay seed %d: %v", s, err)
				}
				rb, err := multilevel.RecursiveBisect(p, multilevel.Config{}, rand.New(rand.NewPCG(91, uint64(100*k+s))))
				if err != nil {
					t.Fatalf("RecursiveBisect seed %d: %v", s, err)
				}
				sumDirect += direct.Cut
				sumRB += rb.Cut
			}
			t.Logf("k=%d mean cut: direct %.1f, rb %.1f", k, float64(sumDirect)/seeds, float64(sumRB)/seeds)
			if sumDirect > sumRB {
				t.Errorf("direct k-way mean cut %.1f exceeds recursive bisection's %.1f", float64(sumDirect)/seeds, float64(sumRB)/seeds)
			}
		})
	}
}

// TestVCycleKWay checks the generalized V-cycle accepts k-way problems and
// never worsens a feasible solution.
func TestVCycleKWay(t *testing.T) {
	const k = 4
	h := clusters(k, 60, 3)
	p := partition.NewFree(h, k, 0.1)
	rng := rand.New(rand.NewPCG(55, 55))
	res, err := multilevel.PartitionKWay(p, multilevel.Config{}, rng)
	if err != nil {
		t.Fatalf("PartitionKWay: %v", err)
	}
	vres, err := multilevel.VCycle(p, res.Assignment, multilevel.Config{}, rng)
	if err != nil {
		t.Fatalf("VCycle k=%d: %v", k, err)
	}
	if err := p.Feasible(vres.Assignment); err != nil {
		t.Fatalf("infeasible after V-cycle: %v", err)
	}
	if vres.Cut > res.Cut {
		t.Errorf("V-cycle worsened cut: %d -> %d", res.Cut, vres.Cut)
	}
}
