package multilevel

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/hypergraph"
	"repro/internal/par"
	"repro/internal/partition"
)

// level is one entry of the coarsening stack.
type level struct {
	problem   *partition.Problem
	clusterOf []int32 // maps this level's vertices to the next-coarser level
}

// Scheme selects the coarsening algorithm.
type Scheme int

const (
	// HeavyEdge is pairwise heavy-edge matching (the default; what the
	// paper's engine and MLC use).
	HeavyEdge Scheme = iota
	// Hyperedge contracts entire small nets whose pins are all unmatched,
	// heaviest-first (hMetis's EC scheme).
	Hyperedge
	// ModifiedHyperedge is Hyperedge plus a second pass contracting the
	// unmatched pins of partially matched nets (hMetis's MHEC scheme).
	ModifiedHyperedge
)

// String returns the scheme name.
func (s Scheme) String() string {
	switch s {
	case HeavyEdge:
		return "heavy-edge"
	case Hyperedge:
		return "hyperedge"
	case ModifiedHyperedge:
		return "modified-hyperedge"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// maxMatchRounds caps the propose/resolve iterations of matchLevel; in
// practice the loop exits on a no-progress round long before this.
const maxMatchRounds = 32

// matchState is the pooled vertex-indexed working state of one matchLevel
// call. clusterOf is NOT here: it is retained by the hierarchy, so it is
// allocated fresh.
type matchState struct {
	matchOf []int32 // partner vertex, or -1
	prop    []int32 // this round's proposal target, or -1
	winner  []int32 // lowest proposer targeting each vertex this round, or -1
	dead    []bool  // vertex can never match (candidate sets only shrink)
	base    []int32 // per-chunk counters (pairs per round, numbering prefix)
}

var matchStatePool = sync.Pool{New: func() any { return &matchState{} }}

// matchShard is one worker slot's scoring scratch: neighbour scores stamped
// by a per-shard visit counter, exactly like the serial matcher's arrays.
type matchShard struct {
	score []int64
	stamp []int32
	cand  []int32
	cur   int32
}

var matchShardPool = sync.Pool{New: func() any { return &matchShard{} }}

// pairHash is the symmetric per-round tie-break for equal-score candidate
// pairs: both endpoints of {a, b} compute the same value, so mutual
// proposals form wherever scores tie. splitmix64 over the salted,
// order-normalized pair.
func pairHash(salt uint64, a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	x := salt ^ (uint64(uint32(a))<<32 | uint64(uint32(b)))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// atomicMinInt32 lowers *addr to v (init -1 = unset). min is commutative, so
// the final value never depends on arrival order — the one concurrent write
// of the matcher stays deterministic.
func atomicMinInt32(addr *int32, v int32) {
	for {
		cur := atomic.LoadInt32(addr)
		if cur >= 0 && cur <= v {
			return
		}
		if atomic.CompareAndSwapInt32(addr, cur, v) {
			return
		}
	}
}

// matchChunk returns the half-open vertex range of chunk c of p.
func matchChunk(n, p, c int) (int, int) {
	return n * c / p, n * (c + 1) / p
}

// matchLevel performs one level of heavy-edge matching on p and returns the
// coarser problem plus the cluster map, or ok=false when the level shrank
// too little to be useful.
//
// The match score between v and u is sum over shared nets of w(e)/(|e|-1)
// (scaled to integers), the "heavy edge" metric of multilevel partitioners.
// Fixed and OR-region vertices only match when their allowed masks
// intersect; the merged cluster carries the intersection, so a cluster
// containing a terminal stays a terminal. When part is non-nil (V-cycling's
// restricted coarsening), vertices only match within the same part. Nets
// with more than hugeNet pins are ignored while scoring (threshold from
// Config.HugeNetThreshold).
//
// The matching runs as deterministic propose/resolve rounds so it
// parallelizes without a sequential vertex order (the serial greedy's
// rng.Perm scan cannot): each round, every unmatched vertex concurrently
// proposes to its best eligible neighbour — score descending, then a salted
// symmetric pair hash, then the lowest vertex id — and conflicts are
// resolved by deterministic rules only: a pair matches when the proposals
// are mutual, or when the proposer is the lowest-id proposer targeting a
// vertex whose own proposal did not succeed. Every rule is a pure function
// of the previous round's state and the per-level salt (the only randomness,
// drawn once from rng), so the clustering is bit-identical for every value
// of workers, including 1. Worker ranges only split the scan; see
// DESIGN.md "Deterministic intra-descent parallel coarsening".
func matchLevel(p *partition.Problem, part partition.Assignment, maxClusterWeight int64, minShrink float64, hugeNet, workers int, rng *rand.Rand) (*partition.Problem, []int32, bool) {
	h := p.H
	nv := h.NumVertices()
	W := workers
	if W < 1 {
		W = 1
	}
	P := W // chunk count; chunk boundaries never influence results
	salt := rng.Uint64()

	st := matchStatePool.Get().(*matchState)
	defer matchStatePool.Put(st)
	st.matchOf = growI32(st.matchOf, nv)
	st.prop = growI32(st.prop, nv)
	st.winner = growI32(st.winner, nv)
	st.base = growI32(st.base, P)
	if cap(st.dead) < nv {
		st.dead = make([]bool, nv)
	} else {
		st.dead = st.dead[:nv]
		clear(st.dead)
	}
	shards := make([]*matchShard, par.EffectiveWorkers(P, W))
	for i := range shards {
		sh := matchShardPool.Get().(*matchShard)
		if sh.cur > 1<<30 { // stamp counter near overflow: restart it
			clear(sh.stamp)
			sh.cur = 0
		}
		sh.score = growI64(sh.score, nv)
		sh.stamp = growI32(sh.stamp, nv)
		shards[i] = sh
	}
	defer func() {
		for _, sh := range shards {
			matchShardPool.Put(sh)
		}
	}()
	par.ForEach(P, W, func(c int) {
		lo, hi := matchChunk(nv, P, c)
		for v := lo; v < hi; v++ {
			st.matchOf[v] = -1
		}
	})

	matched := 0
	for round := 0; round < maxMatchRounds; round++ {
		rsalt := salt ^ uint64(round)*0x9e3779b97f4a7c15
		// Propose: every live vertex picks its best eligible neighbour from
		// the state frozen at the end of the previous round. Also clears the
		// vertex's winner slot for the resolve pass below.
		par.ForEachWorkerCtx(nil, P, W, func(w, c int) {
			sh := shards[w]
			lo, hi := matchChunk(nv, P, c)
			for v := lo; v < hi; v++ {
				st.winner[v] = -1
				if st.matchOf[v] >= 0 || st.dead[v] {
					st.prop[v] = -1
					continue
				}
				sh.cur++
				cand := sh.cand[:0]
				for _, en := range h.NetsOf(v) {
					pins := h.Pins(int(en))
					if len(pins) > hugeNet {
						continue
					}
					// Score scaled by 1e6 to keep integer arithmetic.
					s := 1_000_000 * h.NetWeight(int(en)) / int64(len(pins)-1)
					for _, u := range pins {
						if int(u) == v || st.matchOf[u] >= 0 {
							continue
						}
						if sh.stamp[u] != sh.cur {
							sh.stamp[u] = sh.cur
							sh.score[u] = 0
							cand = append(cand, u)
						}
						sh.score[u] += s
					}
				}
				sh.cand = cand
				var best int32 = -1
				var bestScore int64 = -1
				var bestHash uint64
				mv := p.MaskOf(v)
				wv := h.Weight(v)
				for _, u := range cand {
					s := sh.score[u]
					if s < bestScore {
						continue
					}
					var hsh uint64
					if s == bestScore {
						hsh = pairHash(rsalt, int32(v), u)
						if hsh < bestHash || (hsh == bestHash && u > best) {
							continue
						}
					}
					if mv.Intersect(p.MaskOf(int(u))) == 0 {
						continue
					}
					if part != nil && part[v] != part[u] {
						continue
					}
					if wv+h.Weight(int(u)) > maxClusterWeight {
						continue
					}
					if s > bestScore {
						hsh = pairHash(rsalt, int32(v), u)
					}
					best, bestScore, bestHash = u, s, hsh
				}
				st.prop[v] = best
				if best < 0 {
					// Candidates only disappear as matching proceeds, so a
					// vertex with no eligible partner now never gains one.
					st.dead[v] = true
				}
			}
		})
		// Resolve 1: the lowest-id proposer targeting each vertex wins it.
		par.ForEach(P, W, func(c int) {
			lo, hi := matchChunk(nv, P, c)
			for v := lo; v < hi; v++ {
				if u := st.prop[v]; u >= 0 {
					atomicMinInt32(&st.winner[u], int32(v))
				}
			}
		})
		// Resolve 2: commit pairs. A pair (v, u=prop[v]) matches when the
		// proposals are mutual (committed by the lower endpoint), or when v
		// won u and u's own proposal did not itself succeed. The predicate
		// reads only prop/winner — state frozen by the barrier above — and
		// each matchOf slot has exactly one writer, so the pass is race-free
		// and independent of chunk boundaries.
		par.ForEach(P, W, func(c int) {
			lo, hi := matchChunk(nv, P, c)
			pairs := int32(0)
			for v := lo; v < hi; v++ {
				u := st.prop[v]
				if u < 0 {
					continue
				}
				uu := int(u)
				if st.prop[uu] == int32(v) {
					if v < uu {
						st.matchOf[v] = u
						st.matchOf[uu] = int32(v)
						pairs++
					}
					continue
				}
				if st.winner[uu] != int32(v) {
					continue
				}
				// u's own proposal succeeds when it is mutual or u won its
				// target; in either case u is taken and v must stand down.
				t := st.prop[uu]
				if t >= 0 && (st.prop[t] == u || st.winner[t] == u) {
					continue
				}
				st.matchOf[v] = u
				st.matchOf[uu] = int32(v)
				pairs++
			}
			st.base[c] = pairs
		})
		delta := 0
		for c := 0; c < P; c++ {
			delta += int(st.base[c])
		}
		if delta == 0 {
			break
		}
		matched += 2 * delta
		// Once the level already shrinks enough, a trickle of extra pairs is
		// not worth another full scoring sweep.
		if delta < nv/256 && float64(nv-matched/2) <= minShrink*float64(nv) {
			break
		}
	}
	if matched == 0 {
		return nil, nil, false
	}
	newCount := nv - matched/2
	if float64(newCount) > minShrink*float64(nv) {
		return nil, nil, false
	}

	// Cluster numbering: identical to a serial ascending scan that assigns
	// the next id at each pair's lower endpoint — each chunk counts its
	// leaders, a serial prefix fixes the chunk bases, and the fill writes
	// both endpoints' slots (the partner's slot has exactly one writer, its
	// leader).
	clusterOf := make([]int32, nv)
	par.ForEach(P, W, func(c int) {
		lo, hi := matchChunk(nv, P, c)
		n := int32(0)
		for v := lo; v < hi; v++ {
			if m := st.matchOf[v]; m < 0 || m > int32(v) {
				n++
			}
		}
		st.base[c] = n
	})
	next := int32(0)
	for c := 0; c < P; c++ {
		n := st.base[c]
		st.base[c] = next
		next += n
	}
	par.ForEach(P, W, func(c int) {
		lo, hi := matchChunk(nv, P, c)
		id := st.base[c]
		for v := lo; v < hi; v++ {
			m := st.matchOf[v]
			if m >= 0 && m < int32(v) {
				continue // the lower endpoint numbers this pair
			}
			clusterOf[v] = id
			if m >= 0 {
				clusterOf[m] = id
			}
			id++
		}
	})
	return contractProblem(p, clusterOf, int(next), workers)
}

// growI32 returns a length-n slice reusing s's backing array when large
// enough. Contents are unspecified.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// contractProblem builds the coarse problem from a cluster map, carrying
// intersected masks.
func contractProblem(p *partition.Problem, clusterOf []int32, numClusters, workers int) (*partition.Problem, []int32, bool) {
	coarseH, _, err := hypergraph.ContractParallel(p.H, clusterOf, numClusters, hypergraph.ContractOptions{MergeParallelNets: true}, workers)
	if err != nil {
		// Contract only fails on malformed inputs, which the matchers never
		// produce; treat as "cannot coarsen further".
		return nil, nil, false
	}
	coarse := &partition.Problem{H: coarseH, K: p.K, Balance: p.Balance}
	if p.Allowed != nil {
		masks := make([]partition.Mask, numClusters)
		all := partition.AllParts(p.K)
		for i := range masks {
			masks[i] = all
		}
		for v := 0; v < p.H.NumVertices(); v++ {
			masks[clusterOf[v]] = masks[clusterOf[v]].Intersect(p.MaskOf(v))
		}
		coarse.Allowed = masks
	}
	return coarse, clusterOf, true
}

// hyperedgeLevel performs one round of (modified) hyperedge coarsening:
// nets are visited heaviest-first (ties broken smaller-first, then randomly)
// and contracted whole when all pins are unmatched, mask-compatible,
// same-part (when part is non-nil) and within the weight cap. The modified
// variant then contracts the unmatched-pin subsets of remaining nets.
//
// The net scan itself stays serial (it is inherently order-dependent and only
// used by the ablation schemes); workers only parallelizes the contraction,
// which is bit-identical for every worker count.
func hyperedgeLevel(p *partition.Problem, part partition.Assignment, maxClusterWeight int64, minShrink float64, hugeNet int, modified bool, workers int, rng *rand.Rand) (*partition.Problem, []int32, bool) {
	h := p.H
	nv := h.NumVertices()
	clusterOf := make([]int32, nv)
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	next := int32(0)
	merged := 0

	tryContract := func(pins []int32, requireAllFree bool) {
		group := pins
		if !requireAllFree {
			group = group[:0:0]
			for _, v := range pins {
				if clusterOf[v] < 0 {
					group = append(group, v)
				}
			}
		}
		if len(group) < 2 {
			return
		}
		mask := partition.AllParts(p.K)
		var weight int64
		for _, v := range group {
			if requireAllFree && clusterOf[v] >= 0 {
				return
			}
			mask = mask.Intersect(p.MaskOf(int(v)))
			weight += h.Weight(int(v))
			if part != nil && part[v] != part[group[0]] {
				return
			}
		}
		if mask == 0 || weight > maxClusterWeight {
			return
		}
		for _, v := range group {
			clusterOf[v] = next
		}
		next++
		merged += len(group) - 1
	}

	order := rng.Perm(h.NumNets())
	sort.SliceStable(order, func(i, j int) bool {
		ei, ej := order[i], order[j]
		if h.NetWeight(ei) != h.NetWeight(ej) {
			return h.NetWeight(ei) > h.NetWeight(ej)
		}
		return h.NetSize(ei) < h.NetSize(ej)
	})
	for _, e := range order {
		if h.NetSize(e) > hugeNet {
			continue
		}
		tryContract(h.Pins(e), true)
	}
	if modified {
		for _, e := range order {
			if h.NetSize(e) > hugeNet {
				continue
			}
			tryContract(h.Pins(e), false)
		}
	}
	if merged == 0 {
		return nil, nil, false
	}
	newCount := nv - merged
	if float64(newCount) > minShrink*float64(nv) {
		return nil, nil, false
	}
	for v := 0; v < nv; v++ {
		if clusterOf[v] < 0 {
			clusterOf[v] = next
			next++
		}
	}
	return contractProblem(p, clusterOf, int(next), workers)
}
