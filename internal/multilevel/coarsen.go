package multilevel

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// level is one entry of the coarsening stack.
type level struct {
	problem   *partition.Problem
	clusterOf []int32 // maps this level's vertices to the next-coarser level
}

// Scheme selects the coarsening algorithm.
type Scheme int

const (
	// HeavyEdge is pairwise heavy-edge matching (the default; what the
	// paper's engine and MLC use).
	HeavyEdge Scheme = iota
	// Hyperedge contracts entire small nets whose pins are all unmatched,
	// heaviest-first (hMetis's EC scheme).
	Hyperedge
	// ModifiedHyperedge is Hyperedge plus a second pass contracting the
	// unmatched pins of partially matched nets (hMetis's MHEC scheme).
	ModifiedHyperedge
)

// String returns the scheme name.
func (s Scheme) String() string {
	switch s {
	case HeavyEdge:
		return "heavy-edge"
	case Hyperedge:
		return "hyperedge"
	case ModifiedHyperedge:
		return "modified-hyperedge"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// matchLevel performs one round of heavy-edge matching on p and returns the
// coarser problem plus the cluster map, or ok=false when the level shrank
// too little to be useful.
//
// The match score between v and u is sum over shared nets of w(e)/(|e|-1)
// (scaled to integers), the "heavy edge" metric of multilevel partitioners.
// Fixed and OR-region vertices only match when their allowed masks
// intersect; the merged cluster carries the intersection, so a cluster
// containing a terminal stays a terminal.
//
// When part is non-nil (V-cycling's restricted coarsening), vertices only
// match within the same part of the current solution, so the solution
// projects exactly onto every coarse level.
//
// Nets with more than hugeNet pins are ignored while scoring matches (they
// carry almost no clustering signal and cost quadratic time); the threshold
// comes from Config.HugeNetThreshold.
func matchLevel(p *partition.Problem, part partition.Assignment, maxClusterWeight int64, minShrink float64, hugeNet int, rng *rand.Rand) (*partition.Problem, []int32, bool) {
	h := p.H
	nv := h.NumVertices()
	matchOf := make([]int32, nv)
	for i := range matchOf {
		matchOf[i] = -1
	}
	// Scratch for neighbour scores, stamped by current vertex.
	score := make([]int64, nv)
	stamp := make([]int32, nv)
	cur := int32(0)

	order := rng.Perm(nv)
	matched := 0
	for _, v := range order {
		if matchOf[v] >= 0 {
			continue
		}
		cur++
		var cand []int32
		for _, en := range h.NetsOf(v) {
			pins := h.Pins(int(en))
			if len(pins) > hugeNet {
				continue
			}
			// Score scaled by 1e6 to keep integer arithmetic.
			s := 1_000_000 * h.NetWeight(int(en)) / int64(len(pins)-1)
			for _, u := range pins {
				if int(u) == v || matchOf[u] >= 0 {
					continue
				}
				if stamp[u] != cur {
					stamp[u] = cur
					score[u] = 0
					cand = append(cand, u)
				}
				score[u] += s
			}
		}
		var best int32 = -1
		var bestScore int64 = -1
		mv := p.MaskOf(v)
		for _, u := range cand {
			if score[u] <= bestScore {
				continue
			}
			if mv.Intersect(p.MaskOf(int(u))) == 0 {
				continue
			}
			if part != nil && part[v] != part[u] {
				continue
			}
			if h.Weight(v)+h.Weight(int(u)) > maxClusterWeight {
				continue
			}
			best, bestScore = u, score[u]
		}
		if best >= 0 {
			matchOf[v] = best
			matchOf[best] = int32(v)
			matched += 2
		}
	}
	if matched == 0 {
		return nil, nil, false
	}
	newCount := nv - matched/2
	if float64(newCount) > minShrink*float64(nv) {
		return nil, nil, false
	}
	clusterOf := make([]int32, nv)
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	next := int32(0)
	for v := 0; v < nv; v++ {
		if clusterOf[v] >= 0 {
			continue
		}
		clusterOf[v] = next
		if m := matchOf[v]; m >= 0 {
			clusterOf[m] = next
		}
		next++
	}
	return contractProblem(p, clusterOf, int(next))
}

// contractProblem builds the coarse problem from a cluster map, carrying
// intersected masks.
func contractProblem(p *partition.Problem, clusterOf []int32, numClusters int) (*partition.Problem, []int32, bool) {
	coarseH, _, err := hypergraph.Contract(p.H, clusterOf, numClusters, hypergraph.ContractOptions{MergeParallelNets: true})
	if err != nil {
		// Contract only fails on malformed inputs, which the matchers never
		// produce; treat as "cannot coarsen further".
		return nil, nil, false
	}
	coarse := &partition.Problem{H: coarseH, K: p.K, Balance: p.Balance}
	if p.Allowed != nil {
		masks := make([]partition.Mask, numClusters)
		all := partition.AllParts(p.K)
		for i := range masks {
			masks[i] = all
		}
		for v := 0; v < p.H.NumVertices(); v++ {
			masks[clusterOf[v]] = masks[clusterOf[v]].Intersect(p.MaskOf(v))
		}
		coarse.Allowed = masks
	}
	return coarse, clusterOf, true
}

// hyperedgeLevel performs one round of (modified) hyperedge coarsening:
// nets are visited heaviest-first (ties broken smaller-first, then randomly)
// and contracted whole when all pins are unmatched, mask-compatible,
// same-part (when part is non-nil) and within the weight cap. The modified
// variant then contracts the unmatched-pin subsets of remaining nets.
func hyperedgeLevel(p *partition.Problem, part partition.Assignment, maxClusterWeight int64, minShrink float64, hugeNet int, modified bool, rng *rand.Rand) (*partition.Problem, []int32, bool) {
	h := p.H
	nv := h.NumVertices()
	clusterOf := make([]int32, nv)
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	next := int32(0)
	merged := 0

	tryContract := func(pins []int32, requireAllFree bool) {
		group := pins
		if !requireAllFree {
			group = group[:0:0]
			for _, v := range pins {
				if clusterOf[v] < 0 {
					group = append(group, v)
				}
			}
		}
		if len(group) < 2 {
			return
		}
		mask := partition.AllParts(p.K)
		var weight int64
		for _, v := range group {
			if requireAllFree && clusterOf[v] >= 0 {
				return
			}
			mask = mask.Intersect(p.MaskOf(int(v)))
			weight += h.Weight(int(v))
			if part != nil && part[v] != part[group[0]] {
				return
			}
		}
		if mask == 0 || weight > maxClusterWeight {
			return
		}
		for _, v := range group {
			clusterOf[v] = next
		}
		next++
		merged += len(group) - 1
	}

	order := rng.Perm(h.NumNets())
	sort.SliceStable(order, func(i, j int) bool {
		ei, ej := order[i], order[j]
		if h.NetWeight(ei) != h.NetWeight(ej) {
			return h.NetWeight(ei) > h.NetWeight(ej)
		}
		return h.NetSize(ei) < h.NetSize(ej)
	})
	for _, e := range order {
		if h.NetSize(e) > hugeNet {
			continue
		}
		tryContract(h.Pins(e), true)
	}
	if modified {
		for _, e := range order {
			if h.NetSize(e) > hugeNet {
				continue
			}
			tryContract(h.Pins(e), false)
		}
	}
	if merged == 0 {
		return nil, nil, false
	}
	newCount := nv - merged
	if float64(newCount) > minShrink*float64(nv) {
		return nil, nil, false
	}
	for v := 0; v < nv; v++ {
		if clusterOf[v] < 0 {
			clusterOf[v] = next
			next++
		}
	}
	return contractProblem(p, clusterOf, int(next))
}
