package multilevel_test

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/fm"
	"repro/internal/hypergraph"
	"repro/internal/multilevel"
	"repro/internal/partition"
)

// clusters builds g groups of n vertices; each group is a ring with chords,
// and consecutive groups are joined by `bridges` 2-pin nets. The optimal
// g-way cut separates the groups.
func clusters(g, n, bridges int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(1)
	for i := 0; i < g*n; i++ {
		b.AddVertex(1)
	}
	for gi := 0; gi < g; gi++ {
		base := gi * n
		for i := 0; i < n; i++ {
			b.AddNet(base+i, base+(i+1)%n)
			b.AddNet(base+i, base+(i+2)%n)
		}
	}
	for gi := 0; gi+1 < g; gi++ {
		for i := 0; i < bridges; i++ {
			b.AddNet(gi*n+i%n, (gi+1)*n+i%n)
		}
	}
	return b.MustBuild()
}

func TestPartitionTwoClusters(t *testing.T) {
	h := clusters(2, 400, 6)
	p := partition.NewBipartition(h, 0.02)
	rng := rand.New(rand.NewPCG(1, 1))
	res, err := multilevel.Multistart(p, multilevel.Config{}, 4, rng)
	if err != nil {
		t.Fatalf("Multistart: %v", err)
	}
	if err := p.Feasible(res.Assignment); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	// Splitting the two groups cuts exactly the 6 bridges; a small arc trick
	// can also reach 6 but nothing beats it by much. Demand near-optimal.
	if res.Cut > 6 || res.Cut < 2 {
		t.Errorf("cut = %d, want near 6 (the bridges)", res.Cut)
	}
	if res.Levels == 0 {
		t.Error("expected coarsening levels > 0 for an 800-vertex instance")
	}
	if res.Starts != 4 {
		t.Errorf("Starts = %d, want 4", res.Starts)
	}
}

func TestPartitionCutConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		b := hypergraph.NewBuilder(1)
		nv := 100 + int(seed%100)
		for i := 0; i < nv; i++ {
			b.AddVertex(int64(1 + rng.IntN(3)))
		}
		for e := 0; e < 2*nv; e++ {
			sz := 2 + rng.IntN(3)
			b.AddNet(rng.Perm(nv)[:sz]...)
		}
		p := partition.NewBipartition(b.MustBuild(), 0.1)
		res, err := multilevel.Partition(p, multilevel.Config{}, rng)
		if err != nil {
			return false
		}
		return res.Cut == partition.Cut(p.H, res.Assignment) && p.Feasible(res.Assignment) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionRespectsFixed(t *testing.T) {
	h := clusters(2, 200, 4)
	p := partition.NewBipartition(h, 0.02)
	rng := rand.New(rand.NewPCG(2, 2))
	// Fix 10% of vertices randomly.
	fixed := map[int]int{}
	for _, v := range rng.Perm(h.NumVertices())[:40] {
		part := rng.IntN(2)
		p.Fix(v, part)
		fixed[v] = part
	}
	res, err := multilevel.Partition(p, multilevel.Config{}, rng)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	for v, part := range fixed {
		if int(res.Assignment[v]) != part {
			t.Errorf("fixed vertex %d moved to %d, want %d", v, res.Assignment[v], part)
		}
	}
	if err := p.Feasible(res.Assignment); err != nil {
		t.Errorf("infeasible: %v", err)
	}
}

func TestMultistartNeverWorseThanSingle(t *testing.T) {
	h := clusters(2, 300, 8)
	p := partition.NewBipartition(h, 0.02)
	// Same seed: the first start of the 4-start run replays the 1-start run.
	single, err := multilevel.Multistart(p, multilevel.Config{}, 1, rand.New(rand.NewPCG(3, 3)))
	if err != nil {
		t.Fatalf("single: %v", err)
	}
	multi, err := multilevel.Multistart(p, multilevel.Config{}, 4, rand.New(rand.NewPCG(3, 3)))
	if err != nil {
		t.Fatalf("multi: %v", err)
	}
	if multi.Cut > single.Cut {
		t.Errorf("4-start cut %d worse than 1-start cut %d", multi.Cut, single.Cut)
	}
}

func TestPartitionLIFOPolicy(t *testing.T) {
	h := clusters(2, 200, 5)
	p := partition.NewBipartition(h, 0.02)
	var cfg multilevel.Config
	cfg.SetPolicy(fm.LIFO)
	res, err := multilevel.Partition(p, cfg, rand.New(rand.NewPCG(4, 4)))
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	if err := p.Feasible(res.Assignment); err != nil {
		t.Errorf("infeasible: %v", err)
	}
}

func TestPartitionWithPassCutoff(t *testing.T) {
	h := clusters(2, 200, 5)
	p := partition.NewBipartition(h, 0.02)
	res, err := multilevel.Partition(p, multilevel.Config{MaxPassFraction: 0.25}, rand.New(rand.NewPCG(5, 5)))
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	if err := p.Feasible(res.Assignment); err != nil {
		t.Errorf("infeasible: %v", err)
	}
}

func TestPartitionErrors(t *testing.T) {
	h := clusters(2, 20, 2)
	p := partition.NewFree(h, 4, 0.1)
	if _, err := multilevel.Partition(p, multilevel.Config{}, rand.New(rand.NewPCG(6, 6))); err == nil {
		t.Error("want error for k != 2")
	}
	// Overconstrained: everything fixed to part 0.
	p2 := partition.NewBipartition(h, 0.02)
	for v := 0; v < h.NumVertices(); v++ {
		p2.Fix(v, 0)
	}
	if _, err := multilevel.Partition(p2, multilevel.Config{}, rand.New(rand.NewPCG(7, 7))); err == nil {
		t.Error("want error for overconstrained instance")
	}
}

func TestRecursiveBisectFourClusters(t *testing.T) {
	h := clusters(4, 150, 3)
	p := partition.NewFree(h, 4, 0.05)
	res, err := multilevel.RecursiveBisect(p, multilevel.Config{}, rand.New(rand.NewPCG(8, 8)))
	if err != nil {
		t.Fatalf("RecursiveBisect: %v", err)
	}
	if err := p.Feasible(res.Assignment); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if res.Cut != partition.Cut(h, res.Assignment) {
		t.Errorf("cut mismatch")
	}
	// The chain-of-clusters optimum cuts 3 bridge bundles = 9 nets; allow
	// slack for the heuristic but demand it beats a random split by far.
	if res.Cut > 30 {
		t.Errorf("4-way cut = %d, want near 9", res.Cut)
	}
}

func TestRecursiveBisectRespectsFixed(t *testing.T) {
	h := clusters(4, 100, 3)
	p := partition.NewFree(h, 4, 0.1)
	p.Fix(0, 3)
	p.Fix(150, 1)
	p.Restrict(200, partition.Single(0).With(1)) // OR-region: either of parts 0,1
	res, err := multilevel.RecursiveBisect(p, multilevel.Config{}, rand.New(rand.NewPCG(9, 9)))
	if err != nil {
		t.Fatalf("RecursiveBisect: %v", err)
	}
	if res.Assignment[0] != 3 || res.Assignment[150] != 1 {
		t.Errorf("fixed vertices: a[0]=%d (want 3) a[150]=%d (want 1)", res.Assignment[0], res.Assignment[150])
	}
	if got := res.Assignment[200]; got != 0 && got != 1 {
		t.Errorf("OR-region vertex in part %d, want 0 or 1", got)
	}
}

// TestRecursiveBisectNonPowerOfTwo checks that k=3 (formerly rejected) now
// splits ⌈k/2⌉/⌊k/2⌋ with proportional targets and yields a feasible,
// near-natural-clustering partition.
func TestRecursiveBisectNonPowerOfTwo(t *testing.T) {
	h := clusters(3, 30, 2)
	p := partition.NewFree(h, 3, 0.1)
	res, err := multilevel.RecursiveBisect(p, multilevel.Config{}, rand.New(rand.NewPCG(10, 10)))
	if err != nil {
		t.Fatalf("RecursiveBisect k=3: %v", err)
	}
	if err := p.Feasible(res.Assignment); err != nil {
		t.Errorf("infeasible: %v", err)
	}
	counts := make(map[int8]int)
	for _, q := range res.Assignment {
		counts[q]++
	}
	if len(counts) != 3 {
		t.Errorf("used %d parts, want 3", len(counts))
	}
}

func TestRecursiveBisectK2MatchesPartitionShape(t *testing.T) {
	h := clusters(2, 150, 4)
	p := partition.NewBipartition(h, 0.02)
	res, err := multilevel.RecursiveBisect(p, multilevel.Config{}, rand.New(rand.NewPCG(11, 11)))
	if err != nil {
		t.Fatalf("RecursiveBisect: %v", err)
	}
	if err := p.Feasible(res.Assignment); err != nil {
		t.Errorf("infeasible: %v", err)
	}
	if res.Cut > 20 {
		t.Errorf("k=2 recursive bisect cut = %d, want near 4", res.Cut)
	}
}

// TestFixedMakesInstancesEasier reproduces the paper's headline observation
// at test scale: with 30% of vertices fixed consistently with a good
// solution, a single start lands within a few percent of the best known cut.
func TestFixedMakesInstancesEasier(t *testing.T) {
	h := clusters(2, 300, 10)
	free := partition.NewBipartition(h, 0.02)
	rng := rand.New(rand.NewPCG(12, 12))
	best, err := multilevel.Multistart(free, multilevel.Config{}, 8, rng)
	if err != nil {
		t.Fatalf("Multistart: %v", err)
	}
	good := partition.NewBipartition(h, 0.02)
	for _, v := range rng.Perm(h.NumVertices())[:180] { // 30%
		good.Fix(v, int(best.Assignment[v]))
	}
	avg := func(p *partition.Problem) float64 {
		var sum int64
		const trials = 6
		for i := 0; i < trials; i++ {
			res, err := multilevel.Partition(p, multilevel.Config{}, rng)
			if err != nil {
				t.Fatalf("Partition: %v", err)
			}
			sum += res.Cut
		}
		return float64(sum) / trials
	}
	freeAvg := avg(free)
	goodAvg := avg(good)
	t.Logf("avg single-start cut: free=%.1f, 30%% good-fixed=%.1f, best=%d", freeAvg, goodAvg, best.Cut)
	// On this tiny fixture free single starts already hit the optimum, and
	// the paper itself reports mild nonmonotonicity in the good regime
	// ("relatively overconstrained instances"), so we only demand that
	// fixing does not blow quality up; the full easiness claim is exercised
	// at realistic scale by internal/experiments (Figures 1-2).
	if goodAvg > 2*freeAvg+4 {
		t.Errorf("good-regime fixing degraded single starts badly: %.1f vs free %.1f", goodAvg, freeAvg)
	}
}

func TestAdaptiveMultistart(t *testing.T) {
	h := clusters(2, 300, 8)
	p := partition.NewBipartition(h, 0.02)
	rng := rand.New(rand.NewPCG(31, 31))
	res, err := multilevel.AdaptiveMultistart(p, multilevel.Config{}, 10, 2, rng)
	if err != nil {
		t.Fatalf("AdaptiveMultistart: %v", err)
	}
	if res.Starts < 3 || res.Starts > 10 {
		t.Errorf("Starts = %d, want in [3,10] (patience 2)", res.Starts)
	}
	if err := p.Feasible(res.Assignment); err != nil {
		t.Errorf("infeasible: %v", err)
	}
	// Defaults path (maxStarts/patience <= 0).
	res2, err := multilevel.AdaptiveMultistart(p, multilevel.Config{}, 0, 0, rng)
	if err != nil {
		t.Fatalf("AdaptiveMultistart defaults: %v", err)
	}
	if res2.Starts < 3 || res2.Starts > 16 {
		t.Errorf("default Starts = %d", res2.Starts)
	}
}

func TestCoarseningSchemes(t *testing.T) {
	h := clusters(2, 400, 6)
	for _, scheme := range []multilevel.Scheme{multilevel.HeavyEdge, multilevel.Hyperedge, multilevel.ModifiedHyperedge} {
		t.Run(scheme.String(), func(t *testing.T) {
			p := partition.NewBipartition(h, 0.02)
			rng := rand.New(rand.NewPCG(41, uint64(scheme)))
			res, err := multilevel.Partition(p, multilevel.Config{Scheme: scheme}, rng)
			if err != nil {
				t.Fatalf("Partition: %v", err)
			}
			if err := p.Feasible(res.Assignment); err != nil {
				t.Fatalf("infeasible: %v", err)
			}
			if res.Levels == 0 {
				t.Errorf("no coarsening happened under %v", scheme)
			}
			if res.Cut > 30 {
				t.Errorf("%v: cut = %d, want near 6", scheme, res.Cut)
			}
		})
	}
}

func TestCoarseningSchemesRespectFixed(t *testing.T) {
	h := clusters(2, 300, 4)
	for _, scheme := range []multilevel.Scheme{multilevel.Hyperedge, multilevel.ModifiedHyperedge} {
		p := partition.NewBipartition(h, 0.05)
		rng := rand.New(rand.NewPCG(43, uint64(scheme)))
		fixed := map[int]int{}
		for _, v := range rng.Perm(h.NumVertices())[:60] {
			part := rng.IntN(2)
			p.Fix(v, part)
			fixed[v] = part
		}
		res, err := multilevel.Partition(p, multilevel.Config{Scheme: scheme}, rng)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		for v, part := range fixed {
			if int(res.Assignment[v]) != part {
				t.Errorf("%v: fixed vertex %d moved", scheme, v)
			}
		}
	}
}

func TestSchemeString(t *testing.T) {
	if multilevel.HeavyEdge.String() != "heavy-edge" ||
		multilevel.Hyperedge.String() != "hyperedge" ||
		multilevel.ModifiedHyperedge.String() != "modified-hyperedge" {
		t.Error("Scheme strings wrong")
	}
	if multilevel.Scheme(9).String() == "" {
		t.Error("unknown scheme should format")
	}
}
