package multilevel_test

import (
	"math/rand/v2"
	"testing"

	"repro/internal/multilevel"
	"repro/internal/partition"
)

func TestVCycleNeverWorsens(t *testing.T) {
	h := clusters(2, 400, 8)
	p := partition.NewBipartition(h, 0.02)
	rng := rand.New(rand.NewPCG(21, 21))
	base, err := multilevel.Partition(p, multilevel.Config{}, rng)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	v, err := multilevel.VCycle(p, base.Assignment, multilevel.Config{}, rng)
	if err != nil {
		t.Fatalf("VCycle: %v", err)
	}
	if v.Cut > base.Cut {
		t.Errorf("V-cycle worsened the cut: %d -> %d", base.Cut, v.Cut)
	}
	if err := p.Feasible(v.Assignment); err != nil {
		t.Errorf("infeasible: %v", err)
	}
	if v.Cut != partition.Cut(h, v.Assignment) {
		t.Errorf("cut mismatch")
	}
}

func TestVCycleRespectsFixed(t *testing.T) {
	h := clusters(2, 300, 6)
	p := partition.NewBipartition(h, 0.05)
	rng := rand.New(rand.NewPCG(22, 22))
	fixed := map[int]int{}
	for _, v := range rng.Perm(h.NumVertices())[:60] {
		part := rng.IntN(2)
		p.Fix(v, part)
		fixed[v] = part
	}
	base, err := multilevel.Partition(p, multilevel.Config{}, rng)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	res, err := multilevel.VCycle(p, base.Assignment, multilevel.Config{}, rng)
	if err != nil {
		t.Fatalf("VCycle: %v", err)
	}
	for v, part := range fixed {
		if int(res.Assignment[v]) != part {
			t.Errorf("fixed vertex %d moved", v)
		}
	}
}

func TestVCycleErrors(t *testing.T) {
	h := clusters(2, 50, 2)
	rng := rand.New(rand.NewPCG(23, 23))
	p4 := partition.NewFree(h, 4, 0.1)
	// All-zeros is infeasible for a balanced 4-way problem; VCycle accepts
	// any k but must still reject infeasible inputs.
	if _, err := multilevel.VCycle(p4, make(partition.Assignment, h.NumVertices()), multilevel.Config{}, rng); err == nil {
		t.Error("want error for infeasible k-way input")
	}
	p := partition.NewBipartition(h, 0.02)
	bad := make(partition.Assignment, h.NumVertices()) // all in part 0
	if _, err := multilevel.VCycle(p, bad, multilevel.Config{}, rng); err == nil {
		t.Error("want error for infeasible input")
	}
}

func TestPartitionWithVCycles(t *testing.T) {
	h := clusters(4, 150, 4)
	p := partition.NewBipartition(h, 0.02)
	rng := rand.New(rand.NewPCG(24, 24))
	plain, err := multilevel.Partition(p, multilevel.Config{}, rand.New(rand.NewPCG(24, 24)))
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	vc, err := multilevel.PartitionWithVCycles(p, multilevel.Config{}, 2, rng)
	if err != nil {
		t.Fatalf("PartitionWithVCycles: %v", err)
	}
	// Same seed stream: the embedded Partition run replays, so V-cycles can
	// only improve or match it.
	if vc.Cut > plain.Cut {
		t.Errorf("V-cycles worsened: %d -> %d", plain.Cut, vc.Cut)
	}
	if err := p.Feasible(vc.Assignment); err != nil {
		t.Errorf("infeasible: %v", err)
	}
}
