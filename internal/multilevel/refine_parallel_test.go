package multilevel_test

import (
	"math/rand/v2"
	"testing"

	"repro/internal/fm"
	"repro/internal/multilevel"
	"repro/internal/partition"
)

// TestRefineWorkersGoldenEquivalence is the determinism contract of the
// synchronous-round parallel refinement stage at the driver level: for
// workers in {2, 4, 8} every driver — 2-way Partition, direct k-way, V-cycle
// and shared multistart — must return a result bit-identical to workers=1
// (the stage serialised onto the calling goroutine), on free and
// fixed-terminals instances. Run under -race in CI, which also exercises the
// concurrent propose and dirty-marking phases.
func TestRefineWorkersGoldenEquivalence(t *testing.T) {
	p2 := presetProblem(t, "IBM01S", 0.08, 0.2)
	p2free := presetProblem(t, "IBM02S", 0.06, 0)
	p4 := partition.NewFree(p2free.H, 4, 0.1)

	type runs struct {
		part, kway, vcyc, shared *multilevel.Result
	}
	run := func(workers int) runs {
		var r runs
		var err error
		cfg := multilevel.Config{RefineWorkers: workers}
		if r.part, err = multilevel.Partition(p2, cfg, rand.New(rand.NewPCG(3, 4))); err != nil {
			t.Fatalf("workers=%d: Partition: %v", workers, err)
		}
		if r.kway, err = multilevel.PartitionKWay(p4, cfg, rand.New(rand.NewPCG(5, 6))); err != nil {
			t.Fatalf("workers=%d: PartitionKWay: %v", workers, err)
		}
		base, err := multilevel.Partition(p2, multilevel.Config{}, rand.New(rand.NewPCG(7, 8)))
		if err != nil {
			t.Fatalf("workers=%d: VCycle base: %v", workers, err)
		}
		if r.vcyc, err = multilevel.VCycle(p2, base.Assignment, cfg, rand.New(rand.NewPCG(9, 10))); err != nil {
			t.Fatalf("workers=%d: VCycle: %v", workers, err)
		}
		if r.shared, err = multilevel.ParallelSharedMultistart(p2, cfg, 4, 2, rand.New(rand.NewPCG(11, 12))); err != nil {
			t.Fatalf("workers=%d: ParallelSharedMultistart: %v", workers, err)
		}
		return r
	}

	want := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		sameResult(t, "partition", want.part, got.part)
		sameResult(t, "kway", want.kway, got.kway)
		sameResult(t, "vcycle", want.vcyc, got.vcyc)
		sameResult(t, "shared", want.shared, got.shared)
	}
}

// TestRefineWorkersDifferentialQuality bounds what enabling the round stage
// (plus the capped serial polish) costs against the pure serial kernel, per
// the acceptance bar: over 40 trials — 20 per objective, varying seed and
// fixed fraction — the mean cut and mean km1 of RefineWorkers=1 runs must
// stay within 2% of serial-only (RefineWorkers=0) runs of the same
// instances.
func TestRefineWorkersDifferentialQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("quality differential needs full trials")
	}
	for _, obj := range []fm.Objective{fm.ObjectiveCut, fm.ObjectiveKM1} {
		var serialCut, parCut, serialKM1, parKM1 int64
		trial := 0
		for _, inst := range []struct {
			name      string
			fixedFrac float64
		}{
			{"IBM01S", 0}, {"IBM01S", 0.25}, {"IBM02S", 0}, {"IBM02S", 0.25},
		} {
			p2 := presetProblem(t, inst.name, 0.08, inst.fixedFrac)
			p4 := partition.NewFree(p2.H, 4, 0.1)
			for seed := uint64(0); seed < 10; seed++ {
				trial++
				p := p2
				runKWay := seed%2 == 1
				if runKWay {
					p = p4
				}
				run := func(workers int) *multilevel.Result {
					cfg := multilevel.Config{Objective: obj, RefineWorkers: workers}
					rng := rand.New(rand.NewPCG(seed, 0xbeef))
					var res *multilevel.Result
					var err error
					if runKWay {
						res, err = multilevel.PartitionKWay(p, cfg, rng)
					} else {
						res, err = multilevel.Partition(p, cfg, rng)
					}
					if err != nil {
						t.Fatalf("%s trial %d workers=%d: %v", obj, trial, workers, err)
					}
					return res
				}
				s, q := run(0), run(1)
				serialCut += s.Cut
				parCut += q.Cut
				serialKM1 += s.KMinus1
				parKM1 += q.KMinus1
			}
		}
		if trial < 40 {
			t.Fatalf("only %d trials ran, want >= 40", trial)
		}
		if float64(parCut) > 1.02*float64(serialCut) {
			t.Errorf("objective=%s: mean cut with rounds %.1f exceeds serial-only %.1f by more than 2%%",
				obj, float64(parCut)/float64(trial), float64(serialCut)/float64(trial))
		}
		if float64(parKM1) > 1.02*float64(serialKM1) {
			t.Errorf("objective=%s: mean km1 with rounds %.1f exceeds serial-only %.1f by more than 2%%",
				obj, float64(parKM1)/float64(trial), float64(serialKM1)/float64(trial))
		}
	}
}

// TestRefineWorkersFingerprintUnchanged pins the cache-compatibility rule:
// the round stage runs strictly after coarsening, so RefineWorkers must not
// move CoarseningFingerprint — hpartd's hierarchy cache serves every value
// with the same entries.
func TestRefineWorkersFingerprintUnchanged(t *testing.T) {
	base := multilevel.Config{}.CoarseningFingerprint()
	for _, workers := range []int{1, 2, 8, 64} {
		if got := (multilevel.Config{RefineWorkers: workers}).CoarseningFingerprint(); got != base {
			t.Errorf("RefineWorkers=%d moved CoarseningFingerprint: %x vs %x", workers, got, base)
		}
	}
}

// TestRefineWorkersOffIsSeedBehavior pins the compatibility promise of the
// zero value: RefineWorkers=0 must reproduce the pre-stage serial refinement
// bit for bit (no extra RNG draws, no round engine) — here cross-checked by
// negative values, which must behave like 0 rather than enable anything.
func TestRefineWorkersOffIsSeedBehavior(t *testing.T) {
	p := presetProblem(t, "IBM01S", 0.08, 0.1)
	want, err := multilevel.Partition(p, multilevel.Config{}, rand.New(rand.NewPCG(21, 22)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := multilevel.Partition(p, multilevel.Config{RefineWorkers: -3}, rand.New(rand.NewPCG(21, 22)))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "refine-workers=-3", want, got)
}
