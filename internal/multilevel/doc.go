// Package multilevel implements the multilevel FM hypergraph partitioner the
// paper uses as its testbed engine: heavy-edge-matching coarsening that
// respects fixed vertices, random feasible initial solutions at the coarsest
// level, and FM refinement during uncoarsening (CLIP by default, no
// V-cycling), plus multistart drivers, shared coarsening hierarchies with
// cheap "follower" descents, recursive bisection and a direct k-way V-cycle
// for k > 2.
//
// # Concurrency
//
// Partition and the other single-start entry points are single-goroutine.
// The parallel drivers (ParallelMultistart, ParallelMultistartKWay,
// MultistartOnHierarchies and their Ctx variants) own their parallelism
// internally via internal/par and are safe to call from one goroutine at a
// time each. A Hierarchy is immutable once built: any number of concurrent
// descents — including descents under different refinement configurations
// via WithRefinement, which shares the levels and rebinds only the config —
// may read it simultaneously. This immutability is what lets the hpartd
// server cache hierarchies across concurrent requests.
//
// # Determinism
//
// Start i of any multistart driver runs on its own RNG stream derived as
// startRNG(baseSeed, i) from the caller's seed, never from shared state, so
// for a fixed seed the winning start, assignment and cut are bit-identical
// for every worker count, including 1. The Ctx variants add cancellation
// with a prefix contract: worker dispatch hands out start indices in order,
// so a run cut short by its context has completed exactly the starts
// [0, Result.Starts) and returns their best — the same answer an
// uncancelled run over only those starts would produce. The prefix *length*
// is timing-dependent; Result.Truncated marks it. A run cancelled before
// any start completes returns an error rather than a partial result.
package multilevel
