package multilevel

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/fm"
	"repro/internal/partition"
)

// Config controls the multilevel partitioner. The zero value reproduces the
// paper's engine configuration: CLIP refinement, no V-cycling, heavy-edge
// matching with a 0.9 clustering-ratio stop, coarsest level around 120
// movable vertices.
type Config struct {
	// Policy is the FM refinement discipline. Because the zero Policy value
	// is LIFO while the paper's engine default is CLIP, set it through
	// SetPolicy; an untouched Config refines with CLIP. (The paper notes
	// LIFO gives very similar results.)
	Policy    fm.Policy
	policySet bool
	// Objective selects the metric the FM kernels score by and every driver
	// selects on (multistart best-of, adaptive patience, V-cycle acceptance).
	// The zero value, fm.ObjectiveCut, reproduces the historical engine bit
	// for bit; fm.ObjectiveKM1 ranks candidates by connectivity-minus-one.
	// Coarsening is objective-independent, so CoarseningFingerprint excludes
	// this field and cached hierarchies may serve either objective.
	Objective fm.Objective
	// Scheme selects the coarsening algorithm (default HeavyEdge, as in the
	// paper's engine; Hyperedge and ModifiedHyperedge are the hMetis
	// alternatives, compared in BenchmarkCoarseningAblation).
	Scheme Scheme
	// CoarsestSize stops coarsening once at most this many movable vertices
	// remain (default 120).
	CoarsestSize int
	// ClusteringRatio is the minimum per-level shrink: a matching round must
	// reduce the vertex count to at most this fraction or coarsening stops
	// (default 0.9).
	ClusteringRatio float64
	// InitialTries is the number of random-start FM attempts at the coarsest
	// level (default 4).
	InitialTries int
	// MaxPassFraction applies the paper's pass cutoff to every refinement FM
	// run (0 or 1 disables).
	MaxPassFraction float64
	// MaxLevels bounds the coarsening stack depth (default 40).
	MaxLevels int
	// RefineMaxPasses bounds the FM passes per refinement run during
	// uncoarsening (0 = run to convergence, the default). The
	// coarsest-level initial partitioning always runs to convergence.
	RefineMaxPasses int
	// HugeNetThreshold: nets with more pins than this are ignored while
	// scoring coarsening matches — they carry almost no clustering signal
	// and cost quadratic time (default 50). Negative values are rejected.
	HugeNetThreshold int
	// FollowerPassFraction is the pass cutoff (the paper's Table III
	// mechanism) applied to the uncoarsening refinement of *follower* starts
	// in SharedMultistart — starts that resample a hierarchy already built
	// and fully refined by its owner start (default 0.10; set to 1 to give
	// followers full refinement). It never affects Partition, Multistart or
	// owner starts, so SharedMultistart with hierarchies == starts
	// reproduces Multistart exactly.
	FollowerPassFraction float64
	// Workers bounds the worker pool of ParallelMultistart and
	// ParallelAdaptiveMultistart (<= 0 means runtime.GOMAXPROCS). It never
	// affects results: output is bit-identical for every worker count.
	Workers int
	// CoarsenWorkers parallelizes the inside of each coarsening descent:
	// heavy-edge matching and contraction split their scans over this many
	// goroutines (default/<= 0 means 1, fully serial on the calling
	// goroutine). Like Workers it never affects results — matching is
	// propose/resolve with deterministic conflict resolution and contraction
	// merges shards in net order, so hierarchies, cuts and fingerprints are
	// bit-identical for every value — which is why CoarseningFingerprint
	// deliberately excludes it.
	CoarsenWorkers int
	// RefineWorkers enables the deterministic synchronous-round parallel
	// refinement stage (fm.ParallelRefine) during uncoarsening: at every
	// level the stage runs before the serial FM polish, and at coarse levels
	// the polish is capped to a single pass (the rounds replace its repeated
	// passes; the finest level keeps the full configured polish). <= 0
	// disables the stage entirely — refinement is exactly the serial-only
	// path, bit for bit. Any value >= 1 produces bit-identical results to
	// every other value >= 1 (the rounds are propose/commit with a
	// deterministic commit order; worker chunks only split the scans), but
	// enabling the stage does change results relative to serial-only: the
	// rounds commit their own move sequence and draw one RNG value per
	// refined level. Like CoarsenWorkers it is excluded from
	// CoarseningFingerprint — coarsening never depends on it, so cached
	// hierarchies serve every value.
	RefineWorkers int
	// RefineSideways lets the synchronous-round stage additionally commit
	// zero-gain moves that strictly improve balance (sender minus receiver
	// weight exceeds the vertex weight on the primary resource), closing the
	// "rounds commit only strictly-positive gains" gap: the rounds can now
	// rebalance as well as descend. Off by default — the zero value
	// reproduces the PR 8 round stage bit for bit. It only has effect while
	// RefineWorkers >= 1, and preserves the stage's determinism contract:
	// results stay bit-identical for every worker count >= 1.
	RefineSideways bool
	// LocalizedFMWorkers enables the deterministic localized parallel FM
	// stage (fm.LocalizedRefine) at the finest level of every descent:
	// bounded FM searches seeded from boundary vertices run on this many
	// workers and replace the full-budget serial polish there, which drops to
	// a single-pass serial tail. <= 0 disables the stage — the finest level
	// keeps the full configured serial polish, bit for bit the seed pipeline.
	// Any value >= 1 produces bit-identical results to every other value
	// >= 1 (searches are pure functions of the round-start state and batch
	// index; the work queue only balances load), but enabling the stage does
	// change results relative to off: the searches commit their own move
	// sequence and draw one RNG value at the finest level of each descent.
	// Like CoarsenWorkers and RefineWorkers it is excluded from
	// CoarseningFingerprint — coarsening never depends on it, so cached
	// hierarchies serve every value.
	LocalizedFMWorkers int
	// Stats, when non-nil, accumulates per-phase wall time and heap
	// allocation counts (coarsen / initial partitioning / refinement) over
	// every descent run with this config. Counters are updated atomically;
	// allocation counts read the process-wide heap object counter, so they
	// are only meaningful for serial runs.
	Stats *PhaseStats
}

// SetPolicy selects the refinement policy explicitly.
func (c *Config) SetPolicy(p fm.Policy) {
	c.Policy = p
	c.policySet = true
}

func (c Config) effective() Config {
	if !c.policySet {
		c.Policy = fm.CLIP
	}
	if c.CoarsestSize <= 0 {
		c.CoarsestSize = 120
	}
	if c.ClusteringRatio <= 0 || c.ClusteringRatio >= 1 {
		c.ClusteringRatio = 0.9
	}
	if c.InitialTries <= 0 {
		c.InitialTries = 4
	}
	if c.MaxLevels <= 0 {
		c.MaxLevels = 40
	}
	if c.HugeNetThreshold == 0 {
		c.HugeNetThreshold = 50
	}
	if c.FollowerPassFraction <= 0 {
		c.FollowerPassFraction = 0.10
	}
	return c
}

// validate rejects config values that effective() cannot default away.
func (c Config) validate() error {
	if c.HugeNetThreshold < 0 {
		return fmt.Errorf("multilevel: HugeNetThreshold must be non-negative, got %d", c.HugeNetThreshold)
	}
	return nil
}

// Result is the outcome of a multilevel run. Every result reports all three
// standard hypergraph objectives of its assignment — cut, connectivity-minus-
// one and sum-of-external-degrees — regardless of which one the run
// optimized; Score repeats the one the config's Objective selected on.
type Result struct {
	Assignment partition.Assignment
	Cut        int64
	// KMinus1 is the connectivity-minus-one objective of Assignment.
	KMinus1 int64
	// SOED is the sum-of-external-degrees objective of Assignment
	// (== KMinus1 + Cut for any assignment).
	SOED int64
	// Score is Assignment under the config's Objective (== Cut for
	// fm.ObjectiveCut, == KMinus1 for fm.ObjectiveKM1); drivers select the
	// best start by this number.
	Score int64
	// Objective is the metric the run optimized and Score reports.
	Objective fm.Objective
	// Levels is the number of coarsening levels used (0 = flat).
	Levels int
	// Starts is the number of independent starts contributing to this result
	// (1 for Partition, n for Multistart). For the context-aware drivers it
	// is the number of starts that actually completed, which may be fewer
	// than requested when the run was cancelled.
	Starts int
	// Truncated reports that a context-aware driver was cancelled before all
	// requested starts ran: the result is the best of the completed prefix —
	// still a valid, feasible partition — but not necessarily the answer the
	// full run would have returned.
	Truncated bool
}

// newResult evaluates a finished assignment under all three reported
// objectives (via the partition helpers, by definition) and fills Score from
// the config's Objective. Every driver funnels its final assignment through
// here, so the observability satellite — km1 and soed alongside cut in every
// solve result — holds at every entry point.
func newResult(p *partition.Problem, a partition.Assignment, cfg Config, levels int) *Result {
	r := &Result{
		Assignment: a,
		Cut:        partition.Cut(p.H, a),
		KMinus1:    partition.KMinus1(p.H, a),
		SOED:       partition.SOED(p.H, a),
		Objective:  cfg.Objective,
		Levels:     levels,
		Starts:     1,
	}
	r.Score = r.Cut
	if cfg.Objective == fm.ObjectiveKM1 {
		r.Score = r.KMinus1
	}
	return r
}

// Partition runs one start of the multilevel FM partitioner on the 2-way
// problem p: one coarsening descent (BuildHierarchy) followed by one
// full-refinement descent over it.
func Partition(p *partition.Problem, cfg Config, rng *rand.Rand) (*Result, error) {
	sc := fm.GetScratch()
	defer fm.PutScratch(sc)
	return partitionWith(p, cfg, rng, sc)
}

// partitionWith is Partition running every FM call on a caller-provided
// scratch; the multistart drivers pin one scratch per worker across starts.
func partitionWith(p *partition.Problem, cfg Config, rng *rand.Rand, sc *fm.Scratch) (*Result, error) {
	if p.K != 2 {
		return nil, fmt.Errorf("multilevel: Partition requires k=2, got k=%d (use RecursiveBisect)", p.K)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.effective()
	h := buildLevels(p, cfg, bipartitionMaxCluster(p), rng)
	return h.descendWith(rng, false, sc)
}

// Multistart runs n independent starts and returns the best result, with
// ties broken toward the lowest start index.
//
// Each start runs on its own RNG derived as rand.NewPCG(seed, startIndex),
// where the single seed is drawn from rng up front; rng is never shared
// across starts. This is the same derivation ParallelMultistart uses, so for
// the same incoming rng state the serial and parallel drivers return
// bit-identical results.
func Multistart(p *partition.Problem, cfg Config, starts int, rng *rand.Rand) (*Result, error) {
	if starts < 1 {
		starts = 1
	}
	baseSeed := rng.Uint64()
	sc := fm.GetScratch()
	defer fm.PutScratch(sc)
	var best *Result
	for i := 0; i < starts; i++ {
		res, err := partitionWith(p, cfg, startRNG(baseSeed, i), sc)
		if err != nil {
			return nil, err
		}
		if best == nil || res.Score < best.Score {
			best = res
		}
	}
	best.Starts = starts
	return best, nil
}

// AdaptiveMultistart keeps launching starts until `patience` consecutive
// starts fail to improve the best cut, up to maxStarts (defaults: patience 2,
// maxStarts 16). Result.Starts reports how many starts were actually used —
// an operational answer to the paper's question of how much multistart
// effort a given instance deserves: in the fixed-terminals regime the loop
// stops after the minimum patience window, on free instances it keeps
// paying for improvements.
//
// Starts draw per-index RNGs exactly like Multistart, so
// ParallelAdaptiveMultistart reproduces this loop bit-identically.
func AdaptiveMultistart(p *partition.Problem, cfg Config, maxStarts, patience int, rng *rand.Rand) (*Result, error) {
	if maxStarts < 1 {
		maxStarts = 16
	}
	if patience < 1 {
		patience = 2
	}
	baseSeed := rng.Uint64()
	sc := fm.GetScratch()
	defer fm.PutScratch(sc)
	var best *Result
	stale := 0
	used := 0
	for used < maxStarts {
		res, err := partitionWith(p, cfg, startRNG(baseSeed, used), sc)
		if err != nil {
			return nil, err
		}
		used++
		if best == nil || res.Score < best.Score {
			best = res
			stale = 0
		} else {
			stale++
			if stale >= patience {
				break
			}
		}
	}
	best.Starts = used
	return best, nil
}

// coarsenLevel dispatches one coarsening round to the configured scheme.
func coarsenLevel(s Scheme, p *partition.Problem, part partition.Assignment, maxCluster int64, minShrink float64, hugeNet, workers int, rng *rand.Rand) (*partition.Problem, []int32, bool) {
	switch s {
	case Hyperedge:
		return hyperedgeLevel(p, part, maxCluster, minShrink, hugeNet, false, workers, rng)
	case ModifiedHyperedge:
		return hyperedgeLevel(p, part, maxCluster, minShrink, hugeNet, true, workers, rng)
	default:
		return matchLevel(p, part, maxCluster, minShrink, hugeNet, workers, rng)
	}
}

func project(coarse partition.Assignment, clusterOf []int32) partition.Assignment {
	fine := make(partition.Assignment, len(clusterOf))
	for v, c := range clusterOf {
		fine[v] = coarse[c]
	}
	return fine
}
