package multilevel_test

import (
	"math/rand/v2"
	"testing"

	"repro/internal/gen"
	"repro/internal/multilevel"
	"repro/internal/partition"
)

// presetProblem builds a 2-way problem from a gen preset at reduced scale,
// optionally fixing a fraction of vertices (good-regime style: a mix of both
// parts) so the equivalence tests also cover the fixed-terminals regime.
func presetProblem(t *testing.T, name string, scale, fixedFrac float64) *partition.Problem {
	t.Helper()
	pr, err := gen.PresetByName(name)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := gen.Generate(pr.Params.Scaled(scale))
	if err != nil {
		t.Fatal(err)
	}
	p := partition.NewBipartition(nl.H, 0.02)
	if fixedFrac > 0 {
		rng := rand.New(rand.NewPCG(99, 99))
		nv := nl.H.NumVertices()
		for _, v := range rng.Perm(nv)[:int(fixedFrac*float64(nv))] {
			p.Fix(v, rng.IntN(2))
		}
	}
	return p
}

func sameResult(t *testing.T, label string, want, got *multilevel.Result) {
	t.Helper()
	if got.Cut != want.Cut {
		t.Errorf("%s: cut = %d, want %d", label, got.Cut, want.Cut)
	}
	if got.Starts != want.Starts {
		t.Errorf("%s: starts = %d, want %d", label, got.Starts, want.Starts)
	}
	if len(got.Assignment) != len(want.Assignment) {
		t.Fatalf("%s: assignment length %d, want %d", label, len(got.Assignment), len(want.Assignment))
	}
	for v := range want.Assignment {
		if got.Assignment[v] != want.Assignment[v] {
			t.Errorf("%s: assignment diverges at vertex %d (%d vs %d)", label, v, got.Assignment[v], want.Assignment[v])
			return
		}
	}
}

// TestParallelMultistartMatchesSerial is the determinism contract:
// ParallelMultistart with 1, 2 and 8 workers returns a bit-identical Result
// (cut + assignment + starts) to the serial Multistart for the same seed, on
// free and fixed-terminals instances. Run under -race in CI.
func TestParallelMultistartMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name      string
		fixedFrac float64
	}{
		{"free", 0},
		{"fixed30", 0.30},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := presetProblem(t, "IBM01S", 0.05, tc.fixedFrac)
			const starts = 6
			serial, err := multilevel.Multistart(p, multilevel.Config{}, starts, rand.New(rand.NewPCG(7, 7)))
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			for _, workers := range []int{1, 2, 8} {
				cfg := multilevel.Config{Workers: workers}
				par, err := multilevel.ParallelMultistart(p, cfg, starts, rand.New(rand.NewPCG(7, 7)))
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				sameResult(t, tc.name, serial, par)
			}
		})
	}
}

// TestParallelAdaptiveMatchesSerial checks the speculative-batch adaptive
// driver preserves the sequential stopping semantics exactly: same best
// result and same Starts count as the serial loop, for any worker count.
func TestParallelAdaptiveMatchesSerial(t *testing.T) {
	p := presetProblem(t, "IBM01S", 0.05, 0)
	for _, cfg := range []struct{ maxStarts, patience int }{
		{16, 2},
		{10, 3},
		{1, 1},
	} {
		serial, err := multilevel.AdaptiveMultistart(p, multilevel.Config{}, cfg.maxStarts, cfg.patience, rand.New(rand.NewPCG(13, 13)))
		if err != nil {
			t.Fatalf("serial: %v", err)
		}
		for _, workers := range []int{1, 2, 8} {
			mlCfg := multilevel.Config{Workers: workers}
			par, err := multilevel.ParallelAdaptiveMultistart(p, mlCfg, cfg.maxStarts, cfg.patience, rand.New(rand.NewPCG(13, 13)))
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			sameResult(t, "adaptive", serial, par)
		}
	}
}

// TestParallelMultistartSmallClusters covers the tiny-instance path (fewer
// starts than workers) and feasibility of the parallel result.
func TestParallelMultistartSmallClusters(t *testing.T) {
	h := clusters(2, 300, 6)
	p := partition.NewBipartition(h, 0.02)
	res, err := multilevel.ParallelMultistart(p, multilevel.Config{Workers: 8}, 3, rand.New(rand.NewPCG(5, 5)))
	if err != nil {
		t.Fatalf("ParallelMultistart: %v", err)
	}
	if err := p.Feasible(res.Assignment); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if res.Starts != 3 {
		t.Errorf("Starts = %d, want 3", res.Starts)
	}
	if res.Cut != partition.Cut(h, res.Assignment) {
		t.Error("reported cut does not match assignment")
	}
}

// TestParallelMultistartError: an overconstrained instance must surface the
// same error the serial driver produces.
func TestParallelMultistartError(t *testing.T) {
	h := clusters(2, 40, 2)
	p := partition.NewBipartition(h, 0.02)
	for v := 0; v < h.NumVertices(); v++ {
		p.Fix(v, 0)
	}
	if _, err := multilevel.ParallelMultistart(p, multilevel.Config{Workers: 4}, 4, rand.New(rand.NewPCG(6, 6))); err == nil {
		t.Error("want error for overconstrained instance")
	}
	if _, err := multilevel.ParallelAdaptiveMultistart(p, multilevel.Config{Workers: 4}, 8, 2, rand.New(rand.NewPCG(6, 6))); err == nil {
		t.Error("adaptive: want error for overconstrained instance")
	}
}
