// Package par provides the tiny bounded-worker parallel-for primitive shared
// by the parallel multistart engine, the experiment sweeps, and the placer.
//
// The contract that makes determinism easy for callers: ForEach only decides
// *which goroutine* runs each index, never the meaning of the index. Callers
// that (a) derive any randomness from the index (not from shared state) and
// (b) write results into a slot addressed by the index get output that is
// bit-identical for every worker count, including 1.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Workers normalizes a configured worker count: values <= 0 mean
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on up to `workers` goroutines
// (<= 0 meaning GOMAXPROCS) and returns when all calls have finished. fn must
// be safe for concurrent invocation. With workers == 1 — or n == 1 — fn runs
// on the calling goroutine in index order, with no goroutines spawned.
func ForEach(n, workers int, fn func(i int)) {
	ForEachWorker(n, workers, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach exposing which pool slot runs each index:
// fn(worker, i) with worker in [0, EffectiveWorkers(n, workers)). Callers use
// the worker index to pin per-worker state (e.g. one FM scratch per worker
// for the whole run instead of a pool round-trip per index). The contract is
// unchanged: the worker index must only select *storage*, never influence the
// meaning or result of index i, or bit-identical-across-worker-counts breaks.
func ForEachWorker(n, workers int, fn func(worker, i int)) {
	workers = EffectiveWorkers(n, workers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				fn(w, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// ForEachWorkerCtx is ForEachWorker with cooperative cancellation: once ctx
// is done, no further indices are dispatched, but every index already handed
// to a worker runs to completion (fn is never interrupted mid-call). It
// returns the number of indices dispatched — all of which have completed by
// the time it returns. Indices are dispatched in order, so the set that ran
// is exactly the prefix [0, dispatched).
//
// Determinism caveat: *how many* indices run under cancellation depends on
// timing and worker count. Callers keep the per-index determinism contract
// (index i's result never changes), but the length of the completed prefix —
// and therefore any "best of completed" reduction — is only reproducible
// when ctx never fires. A nil ctx means no cancellation.
func ForEachWorkerCtx(ctx context.Context, n, workers int, fn func(worker, i int)) int {
	if ctx == nil {
		ForEachWorker(n, workers, fn)
		return n
	}
	workers = EffectiveWorkers(n, workers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return i
			}
			fn(0, i)
		}
		return n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				fn(w, i)
			}
		}(w)
	}
	dispatched := 0
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
			dispatched++
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return dispatched
}

// EffectiveWorkers returns the number of pool slots ForEach/ForEachWorker
// actually use for n items and a configured worker count: Workers(workers)
// clamped to n, and at least 1 when there is work.
func EffectiveWorkers(n, workers int) int {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers < 1 && n > 0 {
		workers = 1
	}
	return workers
}
