// Package par provides the tiny bounded-worker parallel-for primitive shared
// by the parallel multistart engine, the experiment sweeps, and the placer.
//
// The contract that makes determinism easy for callers: ForEach only decides
// *which goroutine* runs each index, never the meaning of the index. Callers
// that (a) derive any randomness from the index (not from shared state) and
// (b) write results into a slot addressed by the index get output that is
// bit-identical for every worker count, including 1.
package par

import (
	"runtime"
	"sync"
)

// Workers normalizes a configured worker count: values <= 0 mean
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on up to `workers` goroutines
// (<= 0 meaning GOMAXPROCS) and returns when all calls have finished. fn must
// be safe for concurrent invocation. With workers == 1 — or n == 1 — fn runs
// on the calling goroutine in index order, with no goroutines spawned.
func ForEach(n, workers int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
