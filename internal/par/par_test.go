package par_test

import (
	"sync/atomic"
	"testing"

	"repro/internal/par"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		const n = 57
		var hits [n]int32
		par.ForEach(n, workers, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	ran := false
	par.ForEach(0, 4, func(int) { ran = true })
	if ran {
		t.Error("fn ran for n=0")
	}
	var count int32
	par.ForEach(3, -1, func(int) { atomic.AddInt32(&count, 1) })
	if count != 3 {
		t.Errorf("negative workers: ran %d of 3", count)
	}
}

func TestForEachSingleWorkerOrdered(t *testing.T) {
	var order []int
	par.ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("workers=1 order = %v, want ascending", order)
		}
	}
}

func TestWorkers(t *testing.T) {
	if par.Workers(3) != 3 {
		t.Error("Workers(3) != 3")
	}
	if par.Workers(0) < 1 || par.Workers(-2) < 1 {
		t.Error("Workers must default to at least 1")
	}
}
