package par_test

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/par"
)

// TestForEachWorkerCtxUncancelled: with a nil or never-cancelled context,
// every index runs exactly once and the dispatched count is n.
func TestForEachWorkerCtxUncancelled(t *testing.T) {
	for _, ctx := range map[string]context.Context{"nil": nil, "background": context.Background()} {
		for _, workers := range []int{0, 1, 2, 8} {
			const n = 41
			var hits [n]int32
			got := par.ForEachWorkerCtx(ctx, n, workers, func(worker, i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			if got != n {
				t.Fatalf("workers=%d: dispatched %d, want %d", workers, got, n)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
				}
			}
		}
	}
}

// TestForEachWorkerCtxPreCancelled: a context cancelled before the call
// dispatches nothing.
func TestForEachWorkerCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran int32
		got := par.ForEachWorkerCtx(ctx, 100, workers, func(worker, i int) {
			atomic.AddInt32(&ran, 1)
		})
		if got != 0 || ran != 0 {
			t.Errorf("workers=%d: dispatched %d, ran %d after pre-cancel", workers, got, ran)
		}
	}
}

// TestForEachWorkerCtxPrefix is the contract the cancellable multistart
// reduction rests on: whenever the loop is cut short, the dispatched set is
// exactly the prefix [0, returned). Cancel from inside the body and verify.
func TestForEachWorkerCtxPrefix(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		const n = 200
		ctx, cancel := context.WithCancel(context.Background())
		var hits [n]int32
		got := par.ForEachWorkerCtx(ctx, n, workers, func(worker, i int) {
			atomic.AddInt32(&hits[i], 1)
			if i == 17 {
				cancel()
			}
		})
		cancel()
		if got > n {
			t.Fatalf("workers=%d: dispatched %d > n", workers, got)
		}
		for i := 0; i < got; i++ {
			if atomic.LoadInt32(&hits[i]) != 1 {
				t.Fatalf("workers=%d: index %d inside prefix [0,%d) ran %d times", workers, i, got, hits[i])
			}
		}
		for i := got; i < n; i++ {
			if atomic.LoadInt32(&hits[i]) != 0 {
				t.Fatalf("workers=%d: index %d outside prefix [0,%d) ran", workers, i, got)
			}
		}
	}
}

// TestForEachWorkerCtxWorkerIndex: worker indices stay within
// [0, EffectiveWorkers) so pinned per-worker scratch is safe.
func TestForEachWorkerCtxWorkerIndex(t *testing.T) {
	const n, workers = 64, 5
	eff := par.EffectiveWorkers(n, workers)
	var bad int32
	par.ForEachWorkerCtx(context.Background(), n, workers, func(worker, i int) {
		if worker < 0 || worker >= eff {
			atomic.AddInt32(&bad, 1)
		}
	})
	if bad != 0 {
		t.Errorf("%d calls saw out-of-range worker index", bad)
	}
}
