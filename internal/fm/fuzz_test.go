package fm_test

import (
	"encoding/binary"
	"reflect"
	"testing"

	"repro/internal/fm"
	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// FuzzFMKernel runs the net-state-aware kernel against the frozen reference
// (reference.go) on byte-decoded fixed-vertex problems — random k, net
// sizes and weights, fixed/OR-region masks, multi-resource vertex weights,
// and a randomized objective (cut or km1) — and asserts identical final
// assignments, objectives, and pass statistics, plus that the reported
// Score matches an independent from-scratch partition.Cut / KMinus1
// recomputation. The reference predates the objective layer and always
// walks the (λ-1) trajectory, so comparing a km1 run against it also
// enforces the documented trajectory-independence invariant. Each input
// additionally drives the parallel round engine (ParallelRefine) at a
// randomized worker count and cross-checks it against workers=1: identical
// assignment and round/move/gain counts, feasible output, and a Gain that
// matches the from-scratch connectivity reduction. The same input finally
// drives the localized engine (LocalizedRefine) at a second randomized
// worker count and cross-checks it against workers=1: identical assignment
// and search/commit/move/gain counts, feasible output, and a committed-gain
// ledger that matches the from-scratch connectivity reduction.
func FuzzFMKernel(f *testing.F) {
	f.Add([]byte{3, 20, 1, 2, 3, 4, 5, 6, 7, 8}, uint8(0))
	f.Add([]byte{2, 40, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0}, uint8(1))
	f.Add([]byte{5, 33, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2}, uint8(3))
	f.Add([]byte{4, 28, 2, 4, 6, 8, 1, 3, 5, 7}, uint8(9))
	f.Add([]byte{3, 50, 1, 1, 2, 2, 3, 3, 4, 4}, uint8(15))
	f.Fuzz(func(t *testing.T, data []byte, mode uint8) {
		k := 2 + int(fu8(data, 0))%4
		nv := 8 + int(fu8(data, 1))%56
		nr := 1 + int(fu8(data, 2))%2
		pos := 3

		b := hypergraph.NewBuilder(nr)
		for v := 0; v < nv; v++ {
			w := make([]int64, nr)
			for r := range w {
				w[r] = int64(1 + fu8(data, pos)%4)
				pos++
			}
			b.AddVertex(w...)
		}
		ne := 1 + int(fu8(data, pos))%(2*nv)
		pos++
		for e := 0; e < ne; e++ {
			sz := 2 + int(fu8(data, pos))%5
			pos++
			pins := make([]int, 0, sz)
			seen := make(map[int]bool, sz)
			for i := 0; i < sz; i++ {
				p := int(fu8(data, pos)) % nv
				pos++
				if !seen[p] {
					seen[p] = true
					pins = append(pins, p)
				}
			}
			if len(pins) < 2 {
				continue
			}
			b.AddWeightedNet(int64(1+fu8(data, pos)%3), pins...)
			pos++
		}
		h, err := b.Build()
		if err != nil || h.NumNets() == 0 {
			return
		}

		p := partition.NewFree(h, k, 0.1+float64(fu8(data, pos)%4)*0.1)
		pos++
		for v := 0; v < nv; v++ {
			switch fu8(data, pos) % 6 {
			case 0: // fixed terminal
				p.Fix(v, int(fu8(data, pos+1))%k)
			case 1: // OR region: two allowed parts
				a := int(fu8(data, pos+1)) % k
				c := int(fu8(data, pos+2)) % k
				if c != a {
					p.Restrict(v, partition.Single(a).With(c))
				}
			}
			pos += 3
		}

		// Deterministic initial assignment decoded from the data; bail if
		// infeasible (balance or masks violated).
		initial := partition.NewAssignment(nv)
		for v := 0; v < nv; v++ {
			q := int(fu8(data, pos)) % k
			if fp, ok := p.FixedPart(v); ok {
				q = fp
			} else if !p.MaskOf(v).Contains(q) {
				return
			}
			initial[v] = int8(q)
			pos++
		}
		if p.Feasible(initial) != nil {
			return
		}

		cfg := fm.Config{Policy: fm.LIFO}
		if mode&1 != 0 {
			cfg.Policy = fm.CLIP
		}
		if mode&2 != 0 {
			cfg.MaxPassFraction = 0.5
		}
		if mode&4 != 0 {
			cfg.StallCutoff = 6
		}
		if mode&8 != 0 {
			cfg.Objective = fm.ObjectiveKM1
		}

		got, err := fm.KWayPartition(p, initial, cfg)
		if err != nil {
			t.Fatalf("optimized: %v", err)
		}
		want, err := fm.KWayPartitionReference(p, initial, cfg)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		if !reflect.DeepEqual(got.Assignment, want.Assignment) {
			t.Fatalf("assignments diverge:\n got %v\nwant %v", got.Assignment, want.Assignment)
		}
		if got.Cut != want.Cut || got.KMinus1 != want.KMinus1 {
			t.Fatalf("objective diverged: cut %d/%d, want %d/%d", got.Cut, got.KMinus1, want.Cut, want.KMinus1)
		}
		if !reflect.DeepEqual(got.Passes, want.Passes) {
			t.Fatalf("pass stats diverge:\n got %+v\nwant %+v", got.Passes, want.Passes)
		}
		// The reported metrics must match a from-scratch recomputation on the
		// final assignment: Cut and KMinus1 by definition, and Score under
		// whichever objective the run was configured with.
		if c := partition.Cut(h, got.Assignment); got.Cut != c {
			t.Fatalf("Cut %d != recomputed %d", got.Cut, c)
		}
		if l := partition.KMinus1(h, got.Assignment); got.KMinus1 != l {
			t.Fatalf("KMinus1 %d != recomputed %d", got.KMinus1, l)
		}
		if got.Objective != cfg.Objective {
			t.Fatalf("Objective echoed %v, want %v", got.Objective, cfg.Objective)
		}
		if s := cfg.Objective.Score(h, got.Assignment); got.Score != s {
			t.Fatalf("objective %v: Score %d != recomputed %d", cfg.Objective, got.Score, s)
		}

		// Parallel round engine: a randomized worker count must reproduce the
		// workers=1 rounds bit for bit (same salt, decoded from the data), the
		// result must be feasible, and the reported Gain must equal the
		// from-scratch connectivity reduction.
		workers := 2 + int(mode>>4)%7
		salt := uint64(fu8(data, pos))<<8 | uint64(mode)
		cfg.Sideways = fu8(data, pos+1)&1 == 1
		pWant, err := fm.ParallelRefine(p, initial, cfg, 1, salt)
		if err != nil {
			t.Fatalf("parallel workers=1: %v", err)
		}
		pGot, err := fm.ParallelRefine(p, initial, cfg, workers, salt)
		if err != nil {
			t.Fatalf("parallel workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(pGot.Assignment, pWant.Assignment) {
			t.Fatalf("parallel workers=%d assignment diverges from workers=1:\n got %v\nwant %v",
				workers, pGot.Assignment, pWant.Assignment)
		}
		if pGot.Rounds != pWant.Rounds || pGot.Moves != pWant.Moves || pGot.Gain != pWant.Gain {
			t.Fatalf("parallel workers=%d stats %d/%d/%d diverge from workers=1 %d/%d/%d",
				workers, pGot.Rounds, pGot.Moves, pGot.Gain, pWant.Rounds, pWant.Moves, pWant.Gain)
		}
		if err := p.Feasible(pGot.Assignment); err != nil {
			t.Fatalf("parallel result infeasible: %v", err)
		}
		if d := partition.KMinus1(h, initial) - partition.KMinus1(h, pGot.Assignment); d != pGot.Gain {
			t.Fatalf("parallel Gain %d != measured connectivity reduction %d", pGot.Gain, d)
		}

		// Localized engine: a second randomized worker count must reproduce
		// the workers=1 searches bit for bit with the same salt, the result
		// must be feasible and never worse under either metric, and the
		// committed-gain ledger must equal the from-scratch connectivity
		// reduction.
		locWorkers := 2 + int(fu8(data, pos+2))%7
		lWant, err := fm.LocalizedRefine(p, initial, cfg, 1, salt)
		if err != nil {
			t.Fatalf("localized workers=1: %v", err)
		}
		lGot, err := fm.LocalizedRefine(p, initial, cfg, locWorkers, salt)
		if err != nil {
			t.Fatalf("localized workers=%d: %v", locWorkers, err)
		}
		if !reflect.DeepEqual(lGot.Assignment, lWant.Assignment) {
			t.Fatalf("localized workers=%d assignment diverges from workers=1:\n got %v\nwant %v",
				locWorkers, lGot.Assignment, lWant.Assignment)
		}
		if lGot.Rounds != lWant.Rounds || lGot.Searches != lWant.Searches ||
			lGot.Committed != lWant.Committed || lGot.Moves != lWant.Moves || lGot.Gain != lWant.Gain {
			t.Fatalf("localized workers=%d stats %d/%d/%d/%d/%d diverge from workers=1 %d/%d/%d/%d/%d",
				locWorkers, lGot.Rounds, lGot.Searches, lGot.Committed, lGot.Moves, lGot.Gain,
				lWant.Rounds, lWant.Searches, lWant.Committed, lWant.Moves, lWant.Gain)
		}
		if err := p.Feasible(lGot.Assignment); err != nil {
			t.Fatalf("localized result infeasible: %v", err)
		}
		km1Before, km1After := partition.KMinus1(h, initial), partition.KMinus1(h, lGot.Assignment)
		if km1After > km1Before {
			t.Fatalf("localized worsened km1: %d -> %d", km1Before, km1After)
		}
		if d := km1Before - km1After; d != lGot.Gain {
			t.Fatalf("localized Gain %d != measured connectivity reduction %d", lGot.Gain, d)
		}
	})
}

// fu8 reads byte i of data, hashing the index when data is short so small
// inputs still produce varied problems.
func fu8(data []byte, i int) uint8 {
	if i < len(data) {
		return data[i]
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(i)*0x9e3779b97f4a7c15)
	return buf[0]
}
