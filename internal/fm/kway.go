package fm

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/partition"
)

// RunFromRandom draws a random feasible starting assignment and refines it
// with flat FM. This is the paper's "single LIFO FM start" building block
// (first pass traditionally begins from a random partitioning).
func RunFromRandom(p *partition.Problem, cfg Config, rng *rand.Rand) (*Result, error) {
	initial, err := partition.RandomFeasible(p, rng)
	if err != nil {
		return nil, err
	}
	return Bipartition(p, initial, cfg)
}

// RunFromRandomWith is RunFromRandom using the caller's scratch, for drivers
// that hold one Scratch across many runs.
func RunFromRandomWith(p *partition.Problem, cfg Config, rng *rand.Rand, sc *Scratch) (*Result, error) {
	initial, err := partition.RandomFeasible(p, rng)
	if err != nil {
		return nil, err
	}
	return BipartitionWith(p, initial, cfg, sc)
}

// KWayRefine improves a feasible k-way assignment by greedy vertex moves: it
// repeatedly sweeps all vertices in random order, moving each to its best
// allowed, feasible part when that strictly reduces the (lambda-1) connectivity
// objective, until a sweep makes no move or maxSweeps is reached. It returns
// the refined assignment and its weighted cut.
//
// This is the paper's "multiway" extension probe; it is intentionally a
// simple hill-climber rather than a full k-way FM with buckets.
func KWayRefine(p *partition.Problem, initial partition.Assignment, maxSweeps int, rng *rand.Rand) (partition.Assignment, int64, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	if err := p.Feasible(initial); err != nil {
		return nil, 0, fmt.Errorf("fm: initial assignment: %w", err)
	}
	if maxSweeps <= 0 {
		maxSweeps = 16
	}
	h := p.H
	nv := h.NumVertices()
	nr := h.NumResources()
	a := initial.Clone()
	// pinCount[e*k+q] = pins of net e in part q.
	k := p.K
	pc := make([]int32, h.NumNets()*k)
	for e := 0; e < h.NumNets(); e++ {
		for _, v := range h.Pins(e) {
			pc[e*k+int(a[v])]++
		}
	}
	weight := make([][]int64, k)
	for q := range weight {
		weight[q] = make([]int64, nr)
	}
	for v := 0; v < nv; v++ {
		for r := 0; r < nr; r++ {
			weight[a[v]][r] += h.WeightIn(v, r)
		}
	}
	feasible := func(v, from, to int) bool {
		for r := 0; r < nr; r++ {
			w := h.WeightIn(v, r)
			if weight[from][r]-w < p.Balance.Min[from][r] ||
				weight[to][r]+w > p.Balance.Max[to][r] {
				return false
			}
		}
		return true
	}
	// moveGain computes the lambda-1 reduction of moving v from its part to q.
	moveGain := func(v, from, to int) int64 {
		var g int64
		for _, en := range h.NetsOf(v) {
			w := h.NetWeight(int(en))
			if pc[int(en)*k+from] == 1 {
				g += w // v leaving empties `from` on this net
			}
			if pc[int(en)*k+to] == 0 {
				g -= w // v arriving adds a new part to this net
			}
		}
		return g
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		moved := false
		for _, v := range rng.Perm(nv) {
			mask := p.MaskOf(v)
			from := int(a[v])
			bestTo, bestGain := -1, int64(0)
			for q := 0; q < k; q++ {
				if q == from || !mask.Contains(q) || !feasible(v, from, q) {
					continue
				}
				if g := moveGain(v, from, q); g > bestGain {
					bestTo, bestGain = q, g
				}
			}
			if bestTo < 0 {
				continue
			}
			for _, en := range h.NetsOf(v) {
				pc[int(en)*k+from]--
				pc[int(en)*k+bestTo]++
			}
			for r := 0; r < nr; r++ {
				w := h.WeightIn(v, r)
				weight[from][r] -= w
				weight[bestTo][r] += w
			}
			a[v] = int8(bestTo)
			moved = true
		}
		if !moved {
			break
		}
	}
	return a, partition.Cut(h, a), nil
}
