package fm_test

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/fm"
	"repro/internal/partition"
)

func TestParseObjective(t *testing.T) {
	cases := []struct {
		in   string
		want fm.Objective
		ok   bool
	}{
		{"", fm.ObjectiveCut, true},
		{"cut", fm.ObjectiveCut, true},
		{"km1", fm.ObjectiveKM1, true},
		{"soed", 0, false},
		{"KM1", 0, false},
	}
	for _, c := range cases {
		got, err := fm.ParseObjective(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseObjective(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseObjective(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, o := range []fm.Objective{fm.ObjectiveCut, fm.ObjectiveKM1} {
		back, err := fm.ParseObjective(o.String())
		if err != nil || back != o {
			t.Errorf("round trip %v -> %q -> (%v, %v)", o, o.String(), back, err)
		}
	}
}

// TestKWayObjectiveTrajectoryIdentical pins the design invariant the docs
// promise: the kernel's gain algebra is the (λ-1) delta under every
// objective, so cut and km1 runs follow the same move trajectory and differ
// only in the Score they report. If a future model diverges the trajectory,
// this test is the tripwire that the bit-identity story needs re-auditing.
func TestKWayObjectiveTrajectoryIdentical(t *testing.T) {
	h := fourClusters(40, 2)
	for _, k := range []int{2, 3, 4} {
		p := partition.NewFree(h, k, 0.1)
		for _, policy := range []fm.Policy{fm.LIFO, fm.CLIP} {
			rng := rand.New(rand.NewPCG(77, uint64(k)))
			initial, err := partition.RandomFeasible(p, rng)
			if err != nil {
				t.Fatalf("RandomFeasible k=%d: %v", k, err)
			}
			cut, err := fm.KWayPartition(p, initial, fm.Config{Policy: policy})
			if err != nil {
				t.Fatalf("cut run k=%d: %v", k, err)
			}
			km1, err := fm.KWayPartition(p, initial, fm.Config{Policy: policy, Objective: fm.ObjectiveKM1})
			if err != nil {
				t.Fatalf("km1 run k=%d: %v", k, err)
			}
			if !reflect.DeepEqual(cut.Assignment, km1.Assignment) {
				t.Errorf("k=%d %v: assignments diverge between objectives", k, policy)
			}
			if !reflect.DeepEqual(cut.Passes, km1.Passes) {
				t.Errorf("k=%d %v: pass statistics diverge between objectives", k, policy)
			}
			if cut.Score != cut.Cut || cut.Score != partition.Cut(h, cut.Assignment) {
				t.Errorf("k=%d %v: cut run Score %d != Cut %d", k, policy, cut.Score, cut.Cut)
			}
			if km1.Score != km1.KMinus1 || km1.Score != partition.KMinus1(h, km1.Assignment) {
				t.Errorf("k=%d %v: km1 run Score %d != KMinus1 %d", k, policy, km1.Score, km1.KMinus1)
			}
			if cut.Objective != fm.ObjectiveCut || km1.Objective != fm.ObjectiveKM1 {
				t.Errorf("k=%d %v: objectives echoed wrong: %v / %v", k, policy, cut.Objective, km1.Objective)
			}
		}
	}
}

// TestBipartitionObjectiveScore checks the k = 2 degenerate case where cut
// and km1 are the same number: both objectives must report Score == Cut and
// the ledger must agree with the from-scratch recomputation.
func TestBipartitionObjectiveScore(t *testing.T) {
	h := twoClusters(40, 3)
	p := partition.NewBipartition(h, 0.1)
	for _, obj := range []fm.Objective{fm.ObjectiveCut, fm.ObjectiveKM1} {
		rng := rand.New(rand.NewPCG(5, 6))
		res, err := fm.RunFromRandom(p, fm.Config{Policy: fm.CLIP, Objective: obj}, rng)
		if err != nil {
			t.Fatalf("RunFromRandom(%v): %v", obj, err)
		}
		if res.Score != res.Cut {
			t.Errorf("%v: Score %d != Cut %d at k=2", obj, res.Score, res.Cut)
		}
		if res.Cut != partition.Cut(h, res.Assignment) {
			t.Errorf("%v: Cut %d != recomputed %d", obj, res.Cut, partition.Cut(h, res.Assignment))
		}
		if res.Objective != obj {
			t.Errorf("Objective echoed %v, want %v", res.Objective, obj)
		}
	}
}

// TestKWayKM1ScoreProperty drives the km1 model over randomized instances
// and cross-checks the reported Score against partition.KMinus1 by
// definition, alongside feasibility and the Score == KMinus1 ledger match.
func TestKWayKM1ScoreProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 97))
		h := fourClusters(8+int(seed%8), 1+int(seed%3))
		k := 2 + int(seed%4)
		p := partition.NewFree(h, k, 0.2)
		initial, err := partition.RandomFeasible(p, rng)
		if err != nil {
			return true // rare overconstrained draw
		}
		res, err := fm.KWayPartition(p, initial, fm.Config{Policy: fm.CLIP, Objective: fm.ObjectiveKM1})
		if err != nil {
			return false
		}
		if p.Feasible(res.Assignment) != nil {
			return false
		}
		if res.Score != partition.KMinus1(h, res.Assignment) {
			return false
		}
		return res.Score == res.KMinus1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
