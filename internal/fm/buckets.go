package fm

// bucketNodes is the intrusive doubly-linked-list node store behind one or
// more gainBuckets. Elements are small integers (vertex ids in the
// bipartition tests, move ids v*k+t in the kernel); an element lives in at
// most one bucket at a time, so all k per-part gainBuckets of a kernel share
// a single node store instead of paying k copies of it.
//
// The three per-element fields — next link, prev link, and current bucket
// index — are interleaved into one array (element e occupies slots 3e..3e+2)
// so that an unlink or relink touches one cache line per element instead of
// three parallel arrays apart. Every hot bucket operation reads or writes at
// least two of the three fields, which makes the interleaved layout strictly
// better than the parallel one on pointer-chasing workloads.
type bucketNodes struct {
	n []int32 // element e: next at 3e, prev at 3e+1 (-1 when e is a head), inIdx at 3e+2 (-1 when absent)
}

// next returns the successor of e in its bucket list, -1 at the tail.
func (n *bucketNodes) next(e int32) int32 { return n.n[3*e] }

// in returns the bucket index e currently occupies, -1 when absent.
func (n *bucketNodes) in(e int32) int32 { return n.n[3*e+2] }

// resize prepares the store for numElems elements, reusing backing arrays
// when large enough. Membership is left unspecified; call clearMembership.
func (n *bucketNodes) resize(numElems int) {
	n.n = growInt32(n.n, 3*numElems)
}

// clearMembership marks every element absent from every bucket sharing this
// store. Buckets whose heads are cleared alongside (resetHeads) end up empty.
func (n *bucketNodes) clearMembership() {
	for i := 2; i < len(n.n); i += 3 {
		n.n[i] = -1
	}
}

// gainBuckets is the classic FM bucket structure for one part: an array of
// doubly-linked lists indexed by (clamped) gain key, with a max-gain cursor.
// Insertions are at the head, so taking the head of the highest non-empty
// bucket yields LIFO tie-breaking. List nodes live in a bucketNodes store
// that may be shared with the other parts' buckets.
type gainBuckets struct {
	nodes  *bucketNodes
	offset int32   // key k is stored at index k+offset
	head   []int32 // head[idx] = first element, or -1
	maxIdx int32   // highest index that may be non-empty (monotone estimate)
	count  int
}

// newGainBuckets returns a standalone structure (own node store) for
// numElems elements and keys in [-maxKey, maxKey].
func newGainBuckets(numElems int, maxKey int32) *gainBuckets {
	b := &gainBuckets{nodes: &bucketNodes{}}
	b.nodes.resize(numElems)
	b.resizeHeads(maxKey)
	b.nodes.clearMembership()
	return b
}

// attach points the bucket at a (shared) node store.
func (b *gainBuckets) attach(nodes *bucketNodes) { b.nodes = nodes }

// resizeHeads prepares the head array for keys in [-maxKey, maxKey], reusing
// the backing array when large enough, and clears it (resetHeads).
func (b *gainBuckets) resizeHeads(maxKey int32) {
	b.offset = maxKey
	b.head = growInt32(b.head, int(2*maxKey)+1)
	b.resetHeads()
}

// clampKey saturates key into the representable bucket range.
func (b *gainBuckets) clampKey(key int64) int32 {
	if key > int64(b.offset) {
		return b.offset
	}
	if key < -int64(b.offset) {
		return -b.offset
	}
	return int32(key)
}

func (b *gainBuckets) insert(e int32, key int64) {
	idx := b.clampKey(key) + b.offset
	nn := b.nodes.n
	base := 3 * e
	h := b.head[idx]
	nn[base] = h
	nn[base+1] = -1
	nn[base+2] = idx
	if h >= 0 {
		nn[3*h+1] = e
	}
	b.head[idx] = e
	if idx > b.maxIdx {
		b.maxIdx = idx
	}
	b.count++
}

func (b *gainBuckets) remove(e int32) {
	nn := b.nodes.n
	base := 3 * e
	idx := nn[base+2]
	if idx < 0 {
		return
	}
	next, prev := nn[base], nn[base+1]
	if prev >= 0 {
		nn[3*prev] = next
	} else {
		b.head[idx] = next
	}
	if next >= 0 {
		nn[3*next+1] = prev
	}
	nn[base+2] = -1
	b.count--
}

// update moves e to the bucket for key (LIFO position). When e is already
// the head of the right bucket the unlink/relink would be an identity, so it
// is skipped.
func (b *gainBuckets) update(e int32, key int64) {
	if idx := b.clampKey(key) + b.offset; b.nodes.n[3*e+2] == idx && b.head[idx] == e {
		return
	}
	b.remove(e)
	b.insert(e, key)
}

// settleMax lowers the max cursor past empty buckets and returns it, or -1
// when the structure is empty.
func (b *gainBuckets) settleMax() int32 {
	for b.maxIdx >= 0 && b.head[b.maxIdx] < 0 {
		b.maxIdx--
	}
	return b.maxIdx
}

func (b *gainBuckets) empty() bool { return b.count == 0 }

// resetHeads clears the bucket's lists without touching the node store;
// when the store is shared, clear it once separately (clearMembership).
func (b *gainBuckets) resetHeads() {
	for i := range b.head {
		b.head[i] = -1
	}
	b.maxIdx = -1
	b.count = 0
}

// reset clears a standalone structure (own node store) for reuse.
func (b *gainBuckets) reset() {
	b.resetHeads()
	b.nodes.clearMembership()
}
