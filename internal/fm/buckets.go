// Package fm implements flat Fiduccia–Mattheyses partitioning with fixed
// vertices: LIFO and CLIP vertex-selection policies, gain buckets, hard
// pass-length cutoffs (the paper's Section III heuristic) and per-pass
// statistics (Table II).
package fm

// gainBuckets is the classic FM bucket structure for one side of a
// bipartition: an array of doubly-linked lists indexed by (clamped) gain key,
// with a max-gain cursor. Insertions are at the head, so taking the head of
// the highest non-empty bucket yields LIFO tie-breaking.
type gainBuckets struct {
	offset int32   // key k is stored at index k+offset
	head   []int32 // head[idx] = first vertex, or -1
	next   []int32 // next[v], -1 terminates (shared per side)
	prev   []int32 // prev[v], -1 when v is a head
	inIdx  []int32 // bucket index v currently occupies, -1 when absent
	maxIdx int32   // highest index that may be non-empty (monotone estimate)
	count  int
}

func newGainBuckets(numVerts int, maxKey int32) *gainBuckets {
	b := &gainBuckets{}
	b.resize(numVerts, maxKey)
	return b
}

// resize prepares the structure for numVerts vertices and keys in
// [-maxKey, maxKey], reusing backing arrays when they are large enough, and
// leaves it empty (reset).
func (b *gainBuckets) resize(numVerts int, maxKey int32) {
	b.offset = maxKey
	b.head = growInt32(b.head, int(2*maxKey)+1)
	b.next = growInt32(b.next, numVerts)
	b.prev = growInt32(b.prev, numVerts)
	b.inIdx = growInt32(b.inIdx, numVerts)
	b.reset()
}

// clampKey saturates key into the representable bucket range.
func (b *gainBuckets) clampKey(key int64) int32 {
	if key > int64(b.offset) {
		return b.offset
	}
	if key < -int64(b.offset) {
		return -b.offset
	}
	return int32(key)
}

func (b *gainBuckets) insert(v int32, key int64) {
	idx := b.clampKey(key) + b.offset
	b.inIdx[v] = idx
	b.prev[v] = -1
	b.next[v] = b.head[idx]
	if h := b.head[idx]; h >= 0 {
		b.prev[h] = v
	}
	b.head[idx] = v
	if idx > b.maxIdx {
		b.maxIdx = idx
	}
	b.count++
}

func (b *gainBuckets) remove(v int32) {
	idx := b.inIdx[v]
	if idx < 0 {
		return
	}
	if p := b.prev[v]; p >= 0 {
		b.next[p] = b.next[v]
	} else {
		b.head[idx] = b.next[v]
	}
	if n := b.next[v]; n >= 0 {
		b.prev[n] = b.prev[v]
	}
	b.inIdx[v] = -1
	b.count--
}

// update moves v to the bucket for key (LIFO position).
func (b *gainBuckets) update(v int32, key int64) {
	b.remove(v)
	b.insert(v, key)
}

// settleMax lowers the max cursor past empty buckets and returns it, or -1
// when the structure is empty.
func (b *gainBuckets) settleMax() int32 {
	for b.maxIdx >= 0 && b.head[b.maxIdx] < 0 {
		b.maxIdx--
	}
	return b.maxIdx
}

func (b *gainBuckets) empty() bool { return b.count == 0 }

// reset clears the structure for a new pass without reallocating.
func (b *gainBuckets) reset() {
	for i := range b.head {
		b.head[i] = -1
	}
	for i := range b.inIdx {
		b.inIdx[i] = -1
	}
	b.maxIdx = -1
	b.count = 0
}
