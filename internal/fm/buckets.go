// Package fm implements Fiduccia–Mattheyses refinement with fixed vertices
// for any number of parts: a part-count-generic move kernel (LIFO and CLIP
// vertex-selection policies, per-part gain buckets, hard pass-length cutoffs
// — the paper's Section III heuristic — and per-pass statistics, Table II).
// Bipartition is the k = 2 instantiation of the kernel; KWayPartition drives
// the same kernel for any k up to partition.MaxParts.
package fm

// bucketNodes is the intrusive doubly-linked-list node store behind one or
// more gainBuckets. Elements are small integers (vertex ids in the
// bipartition tests, move ids v*k+t in the kernel); an element lives in at
// most one bucket at a time, so all k per-part gainBuckets of a kernel share
// a single node store instead of paying k copies of it.
type bucketNodes struct {
	next  []int32 // next[e], -1 terminates
	prev  []int32 // prev[e], -1 when e is a head
	inIdx []int32 // bucket index e currently occupies, -1 when absent
}

// resize prepares the store for numElems elements, reusing backing arrays
// when large enough. Membership is left unspecified; call clearMembership.
func (n *bucketNodes) resize(numElems int) {
	n.next = growInt32(n.next, numElems)
	n.prev = growInt32(n.prev, numElems)
	n.inIdx = growInt32(n.inIdx, numElems)
}

// clearMembership marks every element absent from every bucket sharing this
// store. Buckets whose heads are cleared alongside (resetHeads) end up empty.
func (n *bucketNodes) clearMembership() {
	for i := range n.inIdx {
		n.inIdx[i] = -1
	}
}

// gainBuckets is the classic FM bucket structure for one part: an array of
// doubly-linked lists indexed by (clamped) gain key, with a max-gain cursor.
// Insertions are at the head, so taking the head of the highest non-empty
// bucket yields LIFO tie-breaking. List nodes live in a bucketNodes store
// that may be shared with the other parts' buckets.
type gainBuckets struct {
	nodes  *bucketNodes
	offset int32   // key k is stored at index k+offset
	head   []int32 // head[idx] = first element, or -1
	maxIdx int32   // highest index that may be non-empty (monotone estimate)
	count  int
}

// newGainBuckets returns a standalone structure (own node store) for
// numElems elements and keys in [-maxKey, maxKey].
func newGainBuckets(numElems int, maxKey int32) *gainBuckets {
	b := &gainBuckets{nodes: &bucketNodes{}}
	b.nodes.resize(numElems)
	b.resizeHeads(maxKey)
	b.nodes.clearMembership()
	return b
}

// attach points the bucket at a (shared) node store.
func (b *gainBuckets) attach(nodes *bucketNodes) { b.nodes = nodes }

// resizeHeads prepares the head array for keys in [-maxKey, maxKey], reusing
// the backing array when large enough, and clears it (resetHeads).
func (b *gainBuckets) resizeHeads(maxKey int32) {
	b.offset = maxKey
	b.head = growInt32(b.head, int(2*maxKey)+1)
	b.resetHeads()
}

// clampKey saturates key into the representable bucket range.
func (b *gainBuckets) clampKey(key int64) int32 {
	if key > int64(b.offset) {
		return b.offset
	}
	if key < -int64(b.offset) {
		return -b.offset
	}
	return int32(key)
}

func (b *gainBuckets) insert(e int32, key int64) {
	idx := b.clampKey(key) + b.offset
	n := b.nodes
	n.inIdx[e] = idx
	n.prev[e] = -1
	n.next[e] = b.head[idx]
	if h := b.head[idx]; h >= 0 {
		n.prev[h] = e
	}
	b.head[idx] = e
	if idx > b.maxIdx {
		b.maxIdx = idx
	}
	b.count++
}

func (b *gainBuckets) remove(e int32) {
	n := b.nodes
	idx := n.inIdx[e]
	if idx < 0 {
		return
	}
	if p := n.prev[e]; p >= 0 {
		n.next[p] = n.next[e]
	} else {
		b.head[idx] = n.next[e]
	}
	if nx := n.next[e]; nx >= 0 {
		n.prev[nx] = n.prev[e]
	}
	n.inIdx[e] = -1
	b.count--
}

// update moves e to the bucket for key (LIFO position).
func (b *gainBuckets) update(e int32, key int64) {
	b.remove(e)
	b.insert(e, key)
}

// settleMax lowers the max cursor past empty buckets and returns it, or -1
// when the structure is empty.
func (b *gainBuckets) settleMax() int32 {
	for b.maxIdx >= 0 && b.head[b.maxIdx] < 0 {
		b.maxIdx--
	}
	return b.maxIdx
}

func (b *gainBuckets) empty() bool { return b.count == 0 }

// resetHeads clears the bucket's lists without touching the node store;
// when the store is shared, clear it once separately (clearMembership).
func (b *gainBuckets) resetHeads() {
	for i := range b.head {
		b.head[i] = -1
	}
	b.maxIdx = -1
	b.count = 0
}

// reset clears a standalone structure (own node store) for reuse.
func (b *gainBuckets) reset() {
	b.resetHeads()
	b.nodes.clearMembership()
}
