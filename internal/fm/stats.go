package fm

import "sync/atomic"

// KernelStats counts the work the net-state-aware kernel avoided relative to
// the straightforward incremental scheme (the frozen reference kernel in
// reference.go). All fields are cumulative across runs and updated
// atomically, so one KernelStats may be shared by concurrent workers (each
// kernel accumulates locally and publishes once per run).
type KernelStats struct {
	// NetsSkipped counts nets bypassed by locked-net short-circuiting: their
	// locked pins covered every part, so no gain could change.
	NetsSkipped int64 `json:"nets_skipped"`
	// PinScansAvoided counts the gain-update pin traversals the reference
	// kernel would have executed on the skipped nets but this kernel did not:
	// one full pin-list scan per critical Φ case (Φ(t) <= 1 before the move,
	// Φ(from) <= 1 after). Non-critical (net, move) pairs charge nothing —
	// the reference does not scan those either.
	PinScansAvoided int64 `json:"pin_scans_avoided"`
	// PinsScanned counts the same traversals on the nets the kernel did
	// process, under identical accounting (the 2-/3-pin fast paths are
	// charged as if they scanned), so the kernel executes a fraction
	// PinsScanned / (PinsScanned + PinScansAvoided) of the reference's
	// gain-update pin traversals.
	PinsScanned int64 `json:"pins_scanned"`
	// BucketUpdatesSaved counts gain deltas that were folded into an earlier
	// repositioning of the same move id by batched bucket updates (the
	// reference repositions once per delta).
	BucketUpdatesSaved int64 `json:"bucket_updates_saved"`
}

func (s *KernelStats) add(nets, avoided, scanned, updates int64) {
	atomic.AddInt64(&s.NetsSkipped, nets)
	atomic.AddInt64(&s.PinScansAvoided, avoided)
	atomic.AddInt64(&s.PinsScanned, scanned)
	atomic.AddInt64(&s.BucketUpdatesSaved, updates)
}

// Snapshot returns an atomically read copy of the counters.
func (s *KernelStats) Snapshot() KernelStats {
	return KernelStats{
		NetsSkipped:        atomic.LoadInt64(&s.NetsSkipped),
		PinScansAvoided:    atomic.LoadInt64(&s.PinScansAvoided),
		PinsScanned:        atomic.LoadInt64(&s.PinsScanned),
		BucketUpdatesSaved: atomic.LoadInt64(&s.BucketUpdatesSaved),
	}
}
