package fm

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/par"
	"repro/internal/partition"
)

// This file implements the deterministic synchronous-round parallel
// refinement engine behind multilevel.Config.RefineWorkers: the same
// propose/resolve shape the coarsening matcher uses, applied to k-way
// vertex moves. Each round
//
//  1. workers scan disjoint vertex chunks in parallel and *propose* the best
//     feasible positive-gain move per vertex against a read-only snapshot of
//     the per-(net, part) pin counts Φ (only vertices whose gains a previous
//     round invalidated are recomputed; clean proposals are reused),
//  2. the proposals are *applied* serially in a deterministic order — gain
//     descending, then a salted splitmix64 hash of the vertex id, then the id
//     itself — under two commit rules: a proposal is skipped when any of its
//     vertex's (gain-relevant) nets was already touched this round (first
//     winner takes the conflict group, which keeps every committed gain exact
//     against the round snapshot), and re-checked against the running part
//     weights so the committed prefix stays balance-feasible,
//  3. the pins of all touched nets are marked stale in parallel, which is
//     exactly the set of vertices whose stored gains the commits invalidated.
//
// Rounds repeat until a round produces no proposals or commits no move.
// Every rule is a pure function of the previous round's state and the salt,
// and chunk boundaries only decide which worker computes what, so the result
// is bit-identical for every worker count, including 1. Termination: each
// committed move applies its exact, strictly positive (λ-1) gain, so the
// connectivity strictly decreases and is bounded below by zero.
//
// Config.Sideways relaxes step 1 for vertices with no positive-gain move:
// they may propose a zero-gain move that strictly improves balance (the
// sender part outweighs the receiver by more than the vertex on the primary
// resource). Such commits are re-checked against the running weights, so
// every committed sideways move strictly shrinks the squared-weight
// potential Σ_q w_q[0]² while leaving the connectivity unchanged (its zero
// gain is exact under the first-winner rule). Termination still holds
// lexicographically on (λ-1, Σ w²): positive commits strictly decrease the
// first component, sideways commits the second, and both are integers
// bounded below.
//
// The engine is a hill climber (no uphill moves, no rollback); the serial FM
// kernel and the localized engine (localized.go) recover gains requiring
// negative prefixes.

// ParallelResult is the outcome of a ParallelRefine run.
type ParallelResult struct {
	// Assignment is the refined solution (feasible by construction; never
	// aliases scratch memory).
	Assignment partition.Assignment
	// Rounds is the number of synchronous propose/commit rounds executed,
	// including the final round that produced no commits.
	Rounds int
	// Moves is the total number of committed moves.
	Moves int
	// Gain is the total (λ-1) connectivity reduction achieved (>= 0). At
	// k = 2 this equals the cut reduction.
	Gain int64
	// Movable is the number of vertices with at least two allowed parts.
	Movable int
}

// parScratch holds the pooled working state specific to the parallel round
// engine; the structural model state (Φ, weights, movability) lives in the
// regular fm.Scratch the caller provides, which the serial polish that
// follows re-initializes anyway.
type parScratch struct {
	propT    []int8   // proposed target per vertex, -1 = none
	propG    []int64  // proposed gain per vertex (> 0 when propT >= 0)
	hash     []uint64 // per-vertex salted tie-break hash, rebuilt per round
	dirty    []int32  // 1 = proposal must be recomputed (atomically marked)
	netRound []int32  // round a net's Φ row last changed, -1 = never
	touched  []int32  // nets committed into during the current round
	cand     [][]int32
	order    []int32
	miss     [][]int64 // per-worker target-miss accumulators, each len k
}

var parScratchPool = sync.Pool{New: func() any { return &parScratch{} }}

// refineHash is the per-round salted tie-break between equal-gain proposals:
// splitmix64 over the salted vertex id. Like the matcher's pairHash it makes
// the commit order independent of chunk boundaries and vertex numbering
// artifacts while staying a pure function of (salt, round, v).
func refineHash(salt uint64, v int32) uint64 {
	x := salt ^ uint64(uint32(v))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// refineChunk returns the half-open vertex range of chunk c of p.
func refineChunk(n, p, c int) (int, int) {
	return n * c / p, n * (c + 1) / p
}

// ParallelRefine improves a feasible k-way assignment with deterministic
// synchronous-round parallel refinement (see the file comment for round
// semantics). The initial assignment is not modified. workers < 1 runs the
// rounds serially; the result is bit-identical for every worker count. salt
// seeds the per-round commit-order tie-break and is the engine's only
// randomness — callers draw it once from their RNG so the stream stays
// worker-count-agnostic. Working state comes from an internal sync.Pool; use
// ParallelRefineWith to manage the Scratch explicitly.
func ParallelRefine(p *partition.Problem, initial partition.Assignment, cfg Config, workers int, salt uint64) (*ParallelResult, error) {
	sc := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(sc)
	return ParallelRefineWith(p, initial, cfg, workers, salt, sc)
}

// ParallelRefineWith is ParallelRefine running on a caller-provided Scratch,
// for drivers that pin one scratch per worker across a whole descent. The
// result never aliases scratch memory.
func ParallelRefineWith(p *partition.Problem, initial partition.Assignment, cfg Config, workers int, salt uint64, sc *Scratch) (*ParallelResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.Feasible(initial); err != nil {
		return nil, fmt.Errorf("fm: initial assignment: %w", err)
	}
	model := newGainModel(cfg.Objective)
	model.init(p, initial, sc)
	m := model.core()
	res := &ParallelResult{Movable: m.nMovable}
	if m.nMovable == 0 {
		res.Assignment = m.a.Clone()
		return res, nil
	}

	W := workers
	if W < 1 {
		W = 1
	}
	P := W // chunk count; chunk boundaries never influence results
	h := m.h
	k := m.k
	nv := h.NumVertices()
	ne := h.NumNets()

	ps := parScratchPool.Get().(*parScratch)
	defer parScratchPool.Put(ps)
	ps.propT = growInt8(ps.propT, nv)
	ps.propG = growInt64(ps.propG, nv)
	ps.hash = growUint64(ps.hash, nv)
	ps.dirty = growInt32(ps.dirty, nv)
	ps.netRound = growInt32(ps.netRound, ne)
	for i := range ps.netRound {
		ps.netRound[i] = -1
	}
	if cap(ps.touched) < 64 {
		ps.touched = make([]int32, 0, 1024)
	}
	if cap(ps.cand) < P {
		ps.cand = make([][]int32, P)
	}
	ps.cand = ps.cand[:P]
	if cap(ps.order) < nv {
		ps.order = make([]int32, 0, nv)
	}
	slots := par.EffectiveWorkers(P, W)
	if cap(ps.miss) < slots {
		ps.miss = make([][]int64, slots)
	}
	ps.miss = ps.miss[:slots]
	for i := range ps.miss {
		ps.miss[i] = growInt64(ps.miss[i], k)
	}
	for v := range ps.propT {
		ps.propT[v] = -1
		ps.dirty[v] = 1 // round 0 computes every movable vertex's proposal
	}

	for round := 0; ; round++ {
		res.Rounds = round + 1
		rs := salt + uint64(round)*0x9e3779b97f4a7c15

		// Propose: each worker recomputes the proposals its chunk's stale
		// vertices against the current (round-stable) Φ snapshot, then
		// collects every live proposal in the chunk as a commit candidate.
		// Clean proposals stay exact — none of their gain-relevant nets
		// changed — and only their balance feasibility is re-judged at commit.
		par.ForEachWorker(P, W, func(w, c int) {
			miss := ps.miss[w]
			lo, hi := refineChunk(nv, P, c)
			cand := ps.cand[c][:0]
			for v := lo; v < hi; v++ {
				if !m.movable[v] {
					continue
				}
				if ps.dirty[v] != 0 {
					ps.dirty[v] = 0
					proposeMove(m, int32(v), miss, ps, cfg.Sideways)
				}
				if ps.propT[v] >= 0 {
					ps.hash[v] = refineHash(rs, int32(v))
					cand = append(cand, int32(v))
				}
			}
			ps.cand[c] = cand
		})

		// Merge the per-chunk candidate lists (chunks are contiguous and
		// internally ascending, so the merged order is ascending by vertex id
		// whatever P is) and sort into the deterministic commit order.
		order := ps.order[:0]
		for c := 0; c < P; c++ {
			order = append(order, ps.cand[c]...)
		}
		ps.order = order
		if len(order) == 0 {
			break
		}
		sort.Slice(order, func(i, j int) bool {
			a, b := order[i], order[j]
			if ps.propG[a] != ps.propG[b] {
				return ps.propG[a] > ps.propG[b]
			}
			if ps.hash[a] != ps.hash[b] {
				return ps.hash[a] < ps.hash[b]
			}
			return a < b
		})

		// Commit serially. The first-winner rule (skip a proposal when any of
		// its gain-relevant nets was already committed into this round) keeps
		// each committed gain exact against the round snapshot; the running
		// feasibleMove re-check keeps the committed prefix balanced.
		ps.touched = ps.touched[:0]
		commits := 0
		for _, v := range order {
			t := int(ps.propT[v])
			from := int(m.a[v])
			conflict := false
			for _, en := range h.NetsOf(int(v)) {
				if ps.netRound[en] == int32(round) && int(m.fixedCover[en]) != k {
					conflict = true
					break
				}
			}
			if conflict {
				// The loser's pins are dirty-marked by the winner's touch, so
				// its proposal is recomputed next round.
				continue
			}
			if !model.feasibleMove(v, t) {
				// Stays a stored proposal: balance may free up next round.
				continue
			}
			if ps.propG[v] == 0 && !sidewaysImproves(m, v, from, t) {
				// A sideways proposal must still improve balance against the
				// *running* weights — earlier commits may have closed the gap.
				// It stays stored and is re-judged next round.
				continue
			}
			for _, en := range h.NetsOf(int(v)) {
				base := int(en) * k
				m.pinCount[base+from]--
				m.pinCount[base+t]++
				// Nets whose immovable pins cover every part never contribute
				// to any gain (see cutModel.moveGain), so their Φ shift
				// invalidates nothing and they neither conflict nor dirty.
				if ps.netRound[en] != int32(round) && int(m.fixedCover[en]) != k {
					ps.netRound[en] = int32(round)
					ps.touched = append(ps.touched, en)
				}
			}
			model.moveVertex(v, from, t)
			res.Gain += ps.propG[v]
			ps.propT[v] = -1
			commits++
		}
		res.Moves += commits
		if commits == 0 {
			// No state changed; the next round would replay this one forever.
			break
		}

		// Mark the pins of every touched net stale, in parallel (atomically:
		// nets share pins across chunks of the touched list). This is exactly
		// the set of vertices whose stored gains the commits invalidated.
		if len(ps.touched) < 256 || W == 1 {
			for _, en := range ps.touched {
				for _, u := range h.Pins(int(en)) {
					if m.movable[u] {
						ps.dirty[u] = 1
					}
				}
			}
		} else {
			par.ForEach(P, W, func(c int) {
				lo, hi := refineChunk(len(ps.touched), P, c)
				for _, en := range ps.touched[lo:hi] {
					for _, u := range h.Pins(int(en)) {
						if m.movable[u] {
							atomic.StoreInt32(&ps.dirty[u], 1)
						}
					}
				}
			})
		}
	}

	res.Assignment = m.a.Clone() // a is scratch-backed; the result must not alias it
	return res, nil
}

// proposeMove recomputes v's best feasible positive-gain move against the
// current Φ snapshot and stores it in ps (propT = -1 when none exists). One
// scan over v's nets prices every target at once: the gain of moving v from
// its part to t is
//
//	Σ w(e)·[Φ(e, from) == 1]  −  Σ w(e)·[Φ(e, t) == 0]
//
// (leaving a part v covered alone gains the net, entering a part the net
// does not touch loses it — cutModel.moveGain term by term). miss is the
// caller's per-worker length-k accumulator for the second sum. With sideways
// set, a vertex with no positive move may fall back to a zero-gain move that
// strictly improves balance (largest sender-receiver gap wins, ties toward
// the lowest part id).
func proposeMove(m *cutModel, v int32, miss []int64, ps *parScratch, sideways bool) {
	h := m.h
	k := m.k
	from := int(m.a[v])
	tgts := m.targets(v)
	for _, t := range tgts {
		miss[t] = 0
	}
	var base int64
	for _, en := range h.NetsOf(int(v)) {
		if int(m.fixedCover[en]) == k {
			continue
		}
		nb := int(en) * k
		w := h.NetWeight(int(en))
		if m.pinCount[nb+from] == 1 {
			base += w
		}
		for _, t := range tgts {
			if m.pinCount[nb+int(t)] == 0 {
				miss[t] += w
			}
		}
	}
	bestT := int8(-1)
	var bestG int64
	for _, t := range tgts {
		if int(t) == from {
			continue
		}
		if g := base - miss[t]; g > bestG && m.feasibleMove(v, int(t)) {
			bestT, bestG = t, g
		}
	}
	if bestT < 0 && sideways {
		var bestD int64
		for _, t := range tgts {
			if int(t) == from || base-miss[t] != 0 {
				continue
			}
			if !sidewaysImproves(m, v, from, int(t)) || !m.feasibleMove(v, int(t)) {
				continue
			}
			if d := m.weight[from][0] - m.weight[t][0]; bestT < 0 || d > bestD {
				bestT, bestD = t, d
			}
		}
	}
	ps.propT[v] = bestT
	ps.propG[v] = bestG
}

// sidewaysImproves reports whether moving v from part `from` to part t
// strictly improves balance on the primary resource: the sender outweighs
// the receiver by more than the vertex, which is exactly the condition for
// the move to strictly shrink Σ_q w_q[0]². Zero-weight vertices never
// qualify (their move would change nothing).
func sidewaysImproves(m *cutModel, v int32, from, t int) bool {
	x := m.h.WeightIn(int(v), 0)
	return x > 0 && m.weight[from][0]-m.weight[t][0] > x
}

func growUint64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}
