package fm

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/par"
	"repro/internal/partition"
)

// This file implements the deterministic localized parallel FM engine behind
// multilevel.Config.LocalizedFMWorkers, the mt-KaHyPar-style answer to the
// finest-level serial-polish bottleneck: instead of one global FM pass over
// every movable vertex, many small bounded FM searches run concurrently, each
// seeded from a batch of boundary vertices and each free to walk through
// negative-gain prefixes — the hill-climbing power the strictly-positive
// synchronous-round stage (parallel.go) lacks. Each round
//
//  1. the boundary is collected deterministically: a movable vertex is a seed
//     when one of its (non-fully-covered) nets spans more than one part; the
//     seed list ascends by vertex id and is split into fixed-size batches,
//  2. workers pull batch indices from a shared atomic queue and run one
//     bounded localized search per batch against the round-start state: the
//     search prices moves through a per-worker stamped overlay (Φ deltas,
//     part-weight deltas, overlay assignment) so it never mutates shared
//     state, acquires at most locMaxDistinct vertices (the batch seeds plus
//     pins of nets its own moves touch), moves each acquired vertex at most
//     once, stops after locStall consecutive non-improving moves, and records
//     its best prefix when that prefix has strictly positive gain,
//  3. a serial commit phase applies the recorded prefixes in a deterministic
//     order — prefix gain descending, then a salted splitmix64 hash of the
//     search index, then the index — under the house conflict rules: a prefix
//     is skipped whole when any of its vertices, or any gain-relevant net of
//     its vertices, was already committed into this round (first winner takes
//     the conflict group, which keeps every committed prefix's gain exact
//     against the round snapshot), and every move is re-checked for balance
//     feasibility and re-priced (attributed-gain recheck) against the live
//     state as it is applied; a prefix that turns infeasible or unprofitable
//     mid-commit is rolled back move by move and skipped.
//
// Rounds repeat until the boundary is empty or a round commits nothing.
// Every search is a pure function of (round-start state, batch index, salt)
// and the commit order is a pure function of the recorded results, so the
// outcome is bit-identical for every worker count >= 1 — the queue only
// decides which goroutine computes which batch. Termination: each committed
// prefix applies its exact, strictly positive (λ-1) gain, so the
// connectivity strictly decreases and is bounded below by zero.

const (
	// locSeedsPerSearch is the number of boundary seeds one localized search
	// starts from. Larger batches mean fewer, broader searches; smaller ones
	// mean more parallelism but more per-search fixed cost.
	locSeedsPerSearch = 16
	// locMaxDistinct bounds the distinct vertices one search may acquire
	// (seeds plus vertices pulled in from nets its moves touch). Each
	// acquired vertex moves at most once, so it also bounds the prefix
	// length.
	locMaxDistinct = 64
	// locStall ends a search after this many consecutive moves that failed
	// to reach a new best prefix — the localized analogue of the serial
	// kernel's StallCutoff.
	locStall = 8
)

// LocalizedResult is the outcome of a LocalizedRefine run.
type LocalizedResult struct {
	// Assignment is the refined solution (feasible by construction; never
	// aliases scratch memory).
	Assignment partition.Assignment
	// Rounds is the number of collect/search/commit rounds executed,
	// including the final round that produced no commits.
	Rounds int
	// Searches is the total number of localized searches run across rounds.
	Searches int
	// Committed is the number of search prefixes that survived the commit
	// phase's conflict and recheck rules.
	Committed int
	// Moves is the total number of committed moves.
	Moves int
	// Gain is the total (λ-1) connectivity reduction achieved (>= 0). At
	// k = 2 this equals the cut reduction.
	Gain int64
	// Movable is the number of vertices with at least two allowed parts.
	Movable int
}

// locMove logs one localized-search move: the vertex, where it came from and
// where it went. from is recorded so the commit phase can verify the prefix
// still applies to the live state.
type locMove struct {
	v        int32
	from, to int8
}

// locPrefix is one search's recorded best prefix (empty when the search found
// no strictly positive prefix).
type locPrefix struct {
	gain  int64
	moves []locMove
}

// locState holds the pooled per-run shared state of the localized engine:
// boundary stamps, the seed queue, per-round results and the commit-phase
// round stamps. One locState serves a whole LocalizedRefine call.
type locState struct {
	bnd        []int32 // round stamp: vertex is a boundary seed this round
	seedChunks [][]int32
	seeds      []int32
	results    []locPrefix
	order      []int32
	vRound     []int32 // round a vertex was last committed, -1 = never
	netRound   []int32 // round a net's Φ row last changed, -1 = never
}

var locStatePool = sync.Pool{New: func() any { return &locState{} }}

func (st *locState) prepare(nv, ne, chunks int) {
	st.bnd = growInt32(st.bnd, nv)
	for i := range st.bnd {
		st.bnd[i] = -1
	}
	st.vRound = growInt32(st.vRound, nv)
	for i := range st.vRound {
		st.vRound[i] = -1
	}
	st.netRound = growInt32(st.netRound, ne)
	for i := range st.netRound {
		st.netRound[i] = -1
	}
	if cap(st.seedChunks) < chunks {
		st.seedChunks = make([][]int32, chunks)
	}
	st.seedChunks = st.seedChunks[:chunks]
	if cap(st.seeds) < 64 {
		st.seeds = make([]int32, 0, 1024)
	}
}

// locScratch is one worker's private search state. Every per-vertex and
// per-net array is generation-stamped: a search bumps gen once and an entry
// is live only when its stamp equals gen, so searches never pay a clearing
// scan. gen persists across runs of the same scratch (stale stamps are always
// from older generations); freshly grown arrays are zero and gen starts at 1,
// so a stale stamp can never collide with a live generation.
type locScratch struct {
	gen      int32
	vGen     []int32 // overlay assignment stamp
	vPart    []int8  // overlay part when vGen == gen
	acqGen   []int32 // vertex acquired by the current search
	lockGen  []int32 // vertex moved (locked) by the current search
	cacheGen []int32 // cached best move is current
	cacheT   []int8  // cached best feasible target, -1 = none
	cacheG   []int64 // cached gain of cacheT
	netGen   []int32 // Φ overlay row is live
	phiDelta []int32 // per (net, part) Φ delta at e*k+q when netGen == gen
	wDelta   [][]int64
	miss     []int64
	cand     []int32
	moves    []locMove
}

var locScratchPool = sync.Pool{New: func() any { return &locScratch{} }}

func (ls *locScratch) prepare(nv, ne, k, nr int) {
	ls.vGen = growInt32(ls.vGen, nv)
	ls.vPart = growInt8(ls.vPart, nv)
	ls.acqGen = growInt32(ls.acqGen, nv)
	ls.lockGen = growInt32(ls.lockGen, nv)
	ls.cacheGen = growInt32(ls.cacheGen, nv)
	ls.cacheT = growInt8(ls.cacheT, nv)
	ls.cacheG = growInt64(ls.cacheG, nv)
	ls.netGen = growInt32(ls.netGen, ne)
	ls.phiDelta = growInt32(ls.phiDelta, ne*k)
	if cap(ls.wDelta) < k {
		ls.wDelta = append(ls.wDelta[:cap(ls.wDelta)], make([][]int64, k-cap(ls.wDelta))...)
	}
	ls.wDelta = ls.wDelta[:k]
	for q := 0; q < k; q++ {
		ls.wDelta[q] = growInt64(ls.wDelta[q], nr)
	}
	ls.miss = growInt64(ls.miss, k)
	if cap(ls.cand) < locMaxDistinct {
		ls.cand = make([]int32, 0, locMaxDistinct)
	}
	if cap(ls.moves) < locMaxDistinct {
		ls.moves = make([]locMove, 0, locMaxDistinct)
	}
}

// nextGen opens a new search generation, wrapping safely long before the
// stamp space is exhausted.
func (ls *locScratch) nextGen() int32 {
	if ls.gen == math.MaxInt32 {
		for i := range ls.vGen {
			ls.vGen[i] = 0
		}
		for i := range ls.acqGen {
			ls.acqGen[i] = 0
		}
		for i := range ls.lockGen {
			ls.lockGen[i] = 0
		}
		for i := range ls.cacheGen {
			ls.cacheGen[i] = 0
		}
		for i := range ls.netGen {
			ls.netGen[i] = 0
		}
		ls.gen = 0
	}
	ls.gen++
	return ls.gen
}

// partOf reads v's part through the search overlay.
func (ls *locScratch) partOf(m *cutModel, v int32, gen int32) int8 {
	if ls.vGen[v] == gen {
		return ls.vPart[v]
	}
	return m.a[v]
}

// feasible reports whether moving v to part t keeps both affected parts
// balanced under the round-start weights plus the search's own deltas.
func (ls *locScratch) feasible(m *cutModel, v int32, t int, gen int32) bool {
	from := int(ls.partOf(m, v, gen))
	for r := 0; r < m.h.NumResources(); r++ {
		w := m.h.WeightIn(int(v), r)
		if m.weight[from][r]+ls.wDelta[from][r]-w < m.p.Balance.Min[from][r] {
			return false
		}
		if m.weight[t][r]+ls.wDelta[t][r]+w > m.p.Balance.Max[t][r] {
			return false
		}
	}
	return true
}

// price computes v's best feasible move against the round-start Φ plus the
// search overlay — cutModel.moveGain term by term, through the overlay. The
// gain may be negative: localized searches hill-climb and rely on best-prefix
// recording, unlike the round stage's positive-only proposals. Ties keep the
// lowest target part.
func (ls *locScratch) price(m *cutModel, v int32, gen int32) (int8, int64) {
	h := m.h
	k := m.k
	from := int(ls.partOf(m, v, gen))
	tgts := m.targets(v)
	miss := ls.miss
	for _, t := range tgts {
		miss[t] = 0
	}
	var base int64
	for _, en := range h.NetsOf(int(v)) {
		if int(m.fixedCover[en]) == k {
			continue
		}
		nb := int(en) * k
		w := h.NetWeight(int(en))
		if ls.netGen[en] == gen {
			if m.pinCount[nb+from]+ls.phiDelta[nb+from] == 1 {
				base += w
			}
			for _, t := range tgts {
				if m.pinCount[nb+int(t)]+ls.phiDelta[nb+int(t)] == 0 {
					miss[t] += w
				}
			}
		} else {
			if m.pinCount[nb+from] == 1 {
				base += w
			}
			for _, t := range tgts {
				if m.pinCount[nb+int(t)] == 0 {
					miss[t] += w
				}
			}
		}
	}
	bt := int8(-1)
	var bg int64
	for _, t := range tgts {
		if int(t) == from {
			continue
		}
		if g := base - miss[t]; (bt < 0 || g > bg) && ls.feasible(m, v, int(t), gen) {
			bt, bg = t, g
		}
	}
	return bt, bg
}

// localizedSearch runs one bounded FM search for batch i of the round's seed
// queue and records its best strictly-positive prefix in st.results[i]. It is
// a pure function of the round-start model state, the batch and the salt, so
// which worker runs it never matters.
func localizedSearch(m *cutModel, ls *locScratch, st *locState, i int, roundSalt uint64) {
	h := m.h
	k := m.k
	gen := ls.nextGen()
	sHash := refineHash(roundSalt, int32(i))
	lo := i * locSeedsPerSearch
	hi := min(lo+locSeedsPerSearch, len(st.seeds))
	ls.cand = ls.cand[:0]
	for _, s := range st.seeds[lo:hi] {
		ls.acqGen[s] = gen
		ls.cand = append(ls.cand, s)
	}
	for q := 0; q < k; q++ {
		for r := range ls.wDelta[q] {
			ls.wDelta[q][r] = 0
		}
	}
	ls.moves = ls.moves[:0]
	var cum, bestG int64
	bestLen := 0

	for len(ls.moves) < locMaxDistinct && len(ls.moves)-bestLen < locStall {
		// Select the best move among unlocked candidates: gain descending,
		// then the salted per-search vertex hash, then the vertex id.
		var bv int32 = -1
		var bt int8
		var bg int64
		var bh uint64
		for _, v := range ls.cand {
			if ls.lockGen[v] == gen {
				continue
			}
			if ls.cacheGen[v] != gen {
				t, g := ls.price(m, v, gen)
				ls.cacheT[v], ls.cacheG[v] = t, g
				ls.cacheGen[v] = gen
			}
			t, g := ls.cacheT[v], ls.cacheG[v]
			if t >= 0 && !ls.feasible(m, v, int(t), gen) {
				// The cached target went infeasible under the search's own
				// weight deltas; re-price against the current local state.
				t, g = ls.price(m, v, gen)
				ls.cacheT[v], ls.cacheG[v] = t, g
			}
			if t < 0 {
				continue
			}
			hv := refineHash(sHash, v)
			if bv < 0 || g > bg || (g == bg && (hv < bh || (hv == bh && v < bv))) {
				bv, bt, bg, bh = v, t, g, hv
			}
		}
		if bv < 0 {
			break
		}

		// Apply the move to the overlay, lock the vertex, acquire newly
		// boundary-adjacent pins and invalidate their cached prices.
		from := int(ls.partOf(m, bv, gen))
		ls.vGen[bv] = gen
		ls.vPart[bv] = bt
		ls.lockGen[bv] = gen
		for r := 0; r < h.NumResources(); r++ {
			w := h.WeightIn(int(bv), r)
			ls.wDelta[from][r] -= w
			ls.wDelta[bt][r] += w
		}
		for _, en := range h.NetsOf(int(bv)) {
			// Nets whose immovable pins cover every part never contribute to
			// any gain (cutModel.moveGain skips them), so the overlay skips
			// them too; the commit phase still shifts their real Φ rows.
			if int(m.fixedCover[en]) == k {
				continue
			}
			nb := int(en) * k
			if ls.netGen[en] != gen {
				ls.netGen[en] = gen
				for q := 0; q < k; q++ {
					ls.phiDelta[nb+q] = 0
				}
			}
			ls.phiDelta[nb+from]--
			ls.phiDelta[nb+int(bt)]++
			for _, u := range h.Pins(int(en)) {
				if !m.movable[u] {
					continue
				}
				if ls.acqGen[u] != gen {
					if len(ls.cand) >= locMaxDistinct {
						continue
					}
					ls.acqGen[u] = gen
					ls.cand = append(ls.cand, u)
				}
				ls.cacheGen[u] = 0
			}
		}
		ls.moves = append(ls.moves, locMove{v: bv, from: int8(from), to: bt})
		cum += bg
		if cum > bestG {
			bestG, bestLen = cum, len(ls.moves)
		}
	}

	if bestG > 0 {
		moves := make([]locMove, bestLen)
		copy(moves, ls.moves[:bestLen])
		st.results[i] = locPrefix{gain: bestG, moves: moves}
	} else {
		st.results[i] = locPrefix{}
	}
}

// LocalizedRefine improves a feasible k-way assignment with deterministic
// localized parallel FM (see the file comment for round semantics). The
// initial assignment is not modified. workers < 1 runs the searches serially;
// the result is bit-identical for every worker count. salt seeds the commit
// order and the per-search tie-breaks and is the engine's only randomness —
// callers draw it once from their RNG so the stream stays
// worker-count-agnostic. Working state comes from internal sync.Pools; use
// LocalizedRefineWith to manage the FM Scratch explicitly.
func LocalizedRefine(p *partition.Problem, initial partition.Assignment, cfg Config, workers int, salt uint64) (*LocalizedResult, error) {
	sc := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(sc)
	return LocalizedRefineWith(p, initial, cfg, workers, salt, sc)
}

// LocalizedRefineWith is LocalizedRefine running on a caller-provided Scratch,
// for drivers that pin one scratch per worker across a whole descent. The
// result never aliases scratch memory.
func LocalizedRefineWith(p *partition.Problem, initial partition.Assignment, cfg Config, workers int, salt uint64, sc *Scratch) (*LocalizedResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.Feasible(initial); err != nil {
		return nil, fmt.Errorf("fm: initial assignment: %w", err)
	}
	model := newGainModel(cfg.Objective)
	model.init(p, initial, sc)
	m := model.core()
	res := &LocalizedResult{Movable: m.nMovable}
	if m.nMovable == 0 {
		res.Assignment = m.a.Clone()
		return res, nil
	}

	W := workers
	if W < 1 {
		W = 1
	}
	P := W // chunk count for the boundary scans; never influences results
	h := m.h
	k := m.k
	nv := h.NumVertices()
	ne := h.NumNets()

	st := locStatePool.Get().(*locState)
	defer locStatePool.Put(st)
	st.prepare(nv, ne, P)
	slots := par.EffectiveWorkers(P, W)
	scratches := make([]*locScratch, slots)
	for i := range scratches {
		scratches[i] = locScratchPool.Get().(*locScratch)
		scratches[i].prepare(nv, ne, k, h.NumResources())
	}
	defer func() {
		for _, ls := range scratches {
			locScratchPool.Put(ls)
		}
	}()

	for round := 0; ; round++ {
		res.Rounds = round + 1
		roundSalt := salt + uint64(round)*0x9e3779b97f4a7c15

		// Collect the boundary: stamp the movable pins of every net spanning
		// more than one part, then gather the stamped vertices ascending.
		// Chunks only split the scans; the merged seed list is ascending by
		// vertex id whatever P is.
		par.ForEachWorker(P, W, func(_, c int) {
			lo, hi := refineChunk(ne, P, c)
			for en := lo; en < hi; en++ {
				if int(m.fixedCover[en]) == k {
					continue
				}
				base := en * k
				span := 0
				for q := 0; q < k; q++ {
					if m.pinCount[base+q] > 0 {
						if span++; span == 2 {
							break
						}
					}
				}
				if span < 2 {
					continue
				}
				for _, u := range h.Pins(en) {
					if !m.movable[u] {
						continue
					}
					if W == 1 {
						st.bnd[u] = int32(round)
					} else {
						// Stores race benignly: every writer stores the same
						// round value.
						atomic.StoreInt32(&st.bnd[u], int32(round))
					}
				}
			}
		})
		par.ForEachWorker(P, W, func(_, c int) {
			lo, hi := refineChunk(nv, P, c)
			lst := st.seedChunks[c][:0]
			for v := lo; v < hi; v++ {
				if st.bnd[v] == int32(round) {
					lst = append(lst, int32(v))
				}
			}
			st.seedChunks[c] = lst
		})
		seeds := st.seeds[:0]
		for c := 0; c < P; c++ {
			seeds = append(seeds, st.seedChunks[c]...)
		}
		st.seeds = seeds
		if len(seeds) == 0 {
			break
		}

		// Search: workers pull batch indices from a shared queue; results are
		// stored by batch index, so the queue only balances load.
		nSearch := (len(seeds) + locSeedsPerSearch - 1) / locSeedsPerSearch
		if cap(st.results) < nSearch {
			st.results = make([]locPrefix, nSearch)
		}
		st.results = st.results[:nSearch]
		var next int64
		par.ForEachWorker(P, W, func(w, _ int) {
			ls := scratches[w]
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= nSearch {
					return
				}
				localizedSearch(m, ls, st, i, roundSalt)
			}
		})
		res.Searches += nSearch

		// Commit serially in the deterministic order: prefix gain descending,
		// then the salted hash of the search index, then the index.
		order := st.order[:0]
		for i := range st.results {
			if st.results[i].gain > 0 {
				order = append(order, int32(i))
			}
		}
		st.order = order
		sort.Slice(order, func(a, b int) bool {
			ia, ib := order[a], order[b]
			if ga, gb := st.results[ia].gain, st.results[ib].gain; ga != gb {
				return ga > gb
			}
			ha, hb := refineHash(roundSalt, ia), refineHash(roundSalt, ib)
			if ha != hb {
				return ha < hb
			}
			return ia < ib
		})
		commits := 0
		for _, i := range order {
			pr := &st.results[i]
			conflict := false
			for _, mv := range pr.moves {
				if st.vRound[mv.v] == int32(round) {
					conflict = true
					break
				}
				for _, en := range h.NetsOf(int(mv.v)) {
					if st.netRound[en] == int32(round) && int(m.fixedCover[en]) != k {
						conflict = true
						break
					}
				}
				if conflict {
					break
				}
			}
			if conflict {
				continue
			}
			// Attributed-gain recheck: re-price and re-check feasibility of
			// every move against the live state while applying. Conflict-free
			// prefixes re-price to their recorded gain exactly; the recheck
			// guards the balance (earlier commits shift part weights without
			// touching our nets) and keeps the committed gain authoritative.
			var total int64
			applied := 0
			ok := true
			for _, mv := range pr.moves {
				v, t := mv.v, int(mv.to)
				from := int(m.a[v])
				if from != int(mv.from) || !model.feasibleMove(v, t) {
					ok = false
					break
				}
				total += model.moveGain(v, t)
				for _, en := range h.NetsOf(int(v)) {
					nb := int(en) * k
					m.pinCount[nb+from]--
					m.pinCount[nb+t]++
				}
				model.moveVertex(v, from, t)
				applied++
			}
			if !ok || total <= 0 {
				for j := applied - 1; j >= 0; j-- {
					model.undoMove(pr.moves[j].v, int(pr.moves[j].from))
				}
				continue
			}
			for _, mv := range pr.moves {
				st.vRound[mv.v] = int32(round)
				for _, en := range h.NetsOf(int(mv.v)) {
					if int(m.fixedCover[en]) != k {
						st.netRound[en] = int32(round)
					}
				}
			}
			res.Gain += total
			res.Moves += applied
			res.Committed++
			commits++
		}
		if commits == 0 {
			// No state changed; the next round would replay this one forever.
			break
		}
	}

	res.Assignment = m.a.Clone() // a is scratch-backed; the result must not alias it
	return res, nil
}
