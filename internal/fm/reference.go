package fm

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// This file freezes the pre-optimization FM kernel — the exact engine the
// 20-row golden test was recorded against before the net-state-aware rewrite
// (locked-net short-circuiting, small-net fast paths, CSR target lists,
// batched bucket repositioning). It follows the ContractReference pattern:
// the frozen code is retained verbatim so that
//
//   - differential tests (TestKernelMatchesReference, FuzzFMKernel) can
//     assert the optimized kernel is byte-identical on arbitrary
//     fixed-vertex problems, and
//   - BenchmarkRefine / BENCH_refine.json can measure the refine-phase
//     speedup against a faithful baseline with the same allocation
//     discipline (pooled scratch, shared bucket structures).
//
// Production code should call Bipartition / KWayPartition; nothing outside
// tests and benchmarks should depend on the Reference entry points.

// refNodes is the pre-rewrite bucketNodes: three parallel arrays, one cache
// line each per element touched. The rewrite interleaved them; the reference
// keeps the old layout so the benchmark measures that change too.
type refNodes struct {
	next  []int32 // next[e], -1 terminates
	prev  []int32 // prev[e], -1 when e is a head
	inIdx []int32 // bucket index e currently occupies, -1 when absent
}

func (n *refNodes) resize(numElems int) {
	n.next = growInt32(n.next, numElems)
	n.prev = growInt32(n.prev, numElems)
	n.inIdx = growInt32(n.inIdx, numElems)
}

func (n *refNodes) clearMembership() {
	for i := range n.inIdx {
		n.inIdx[i] = -1
	}
}

// refGainBuckets is the pre-rewrite gainBuckets over the parallel-array node
// store, frozen verbatim (modulo the node-store type).
type refGainBuckets struct {
	nodes  *refNodes
	offset int32
	head   []int32
	maxIdx int32
	count  int
}

func (b *refGainBuckets) attach(nodes *refNodes) { b.nodes = nodes }

func (b *refGainBuckets) resizeHeads(maxKey int32) {
	b.offset = maxKey
	b.head = growInt32(b.head, int(2*maxKey)+1)
	b.resetHeads()
}

func (b *refGainBuckets) clampKey(key int64) int32 {
	if key > int64(b.offset) {
		return b.offset
	}
	if key < -int64(b.offset) {
		return -b.offset
	}
	return int32(key)
}

func (b *refGainBuckets) insert(e int32, key int64) {
	idx := b.clampKey(key) + b.offset
	n := b.nodes
	n.inIdx[e] = idx
	n.prev[e] = -1
	n.next[e] = b.head[idx]
	if h := b.head[idx]; h >= 0 {
		n.prev[h] = e
	}
	b.head[idx] = e
	if idx > b.maxIdx {
		b.maxIdx = idx
	}
	b.count++
}

func (b *refGainBuckets) remove(e int32) {
	n := b.nodes
	idx := n.inIdx[e]
	if idx < 0 {
		return
	}
	if p := n.prev[e]; p >= 0 {
		n.next[p] = n.next[e]
	} else {
		b.head[idx] = n.next[e]
	}
	if nx := n.next[e]; nx >= 0 {
		n.prev[nx] = n.prev[e]
	}
	n.inIdx[e] = -1
	b.count--
}

func (b *refGainBuckets) settleMax() int32 {
	for b.maxIdx >= 0 && b.head[b.maxIdx] < 0 {
		b.maxIdx--
	}
	return b.maxIdx
}

func (b *refGainBuckets) empty() bool { return b.count == 0 }

func (b *refGainBuckets) resetHeads() {
	for i := range b.head {
		b.head[i] = -1
	}
	b.maxIdx = -1
	b.count = 0
}

// refScratch is the frozen kernel's reusable working state: the Scratch
// layout as it existed before the rewrite.
type refScratch struct {
	movable   []bool
	locked    []bool
	gain      []int64 // per move id v*k+t
	key       []int64
	pinCount  []int32   // per (net, part) at e*k+q
	weight    [][]int64 // [part][resource]
	nodes     refNodes
	buckets   []refGainBuckets // one per part, sharing nodes
	order     []int32          // move ids in pass-seeding order
	moveLog   []moveRec
	partOrder []int32 // parts in selection-priority order
}

var refScratchPool = sync.Pool{New: func() any { return &refScratch{} }}

func (s *refScratch) prepare(nv, ne, nr, k int) {
	s.movable = growBool(s.movable, nv)
	for i := range s.movable {
		s.movable[i] = false
	}
	s.locked = growBool(s.locked, nv)
	for i := range s.locked {
		s.locked[i] = false
	}
	s.gain = growInt64(s.gain, nv*k)
	s.key = growInt64(s.key, nv*k)
	s.pinCount = growInt32(s.pinCount, ne*k)
	for i := range s.pinCount {
		s.pinCount[i] = 0
	}
	if cap(s.weight) < k {
		s.weight = append(s.weight[:cap(s.weight)], make([][]int64, k-cap(s.weight))...)
	}
	s.weight = s.weight[:k]
	for q := 0; q < k; q++ {
		s.weight[q] = growInt64(s.weight[q], nr)
		for i := range s.weight[q] {
			s.weight[q][i] = 0
		}
	}
	if cap(s.order) < nv {
		s.order = make([]int32, 0, nv)
	}
	s.order = s.order[:0]
	if cap(s.moveLog) < nv {
		s.moveLog = make([]moveRec, 0, nv)
	}
	s.moveLog = s.moveLog[:0]
	s.partOrder = growInt32(s.partOrder, k)
}

func (s *refScratch) sizeBuckets(numMoves int, maxKey int32, k int) {
	s.nodes.resize(numMoves)
	s.nodes.clearMembership()
	if cap(s.buckets) < k {
		s.buckets = append(s.buckets[:cap(s.buckets)], make([]refGainBuckets, k-cap(s.buckets))...)
	}
	s.buckets = s.buckets[:k]
	for q := 0; q < k; q++ {
		s.buckets[q].attach(&s.nodes)
		s.buckets[q].resizeHeads(maxKey)
	}
}

// refKernel is the frozen policy layer + cut model: per-delta MaskOf checks,
// immediate bucket repositioning on every gain delta, and the generic
// Φ-switch for every net regardless of size or locked state.
type refKernel struct {
	p *partition.Problem
	h *hypergraph.Hypergraph
	k int

	a        partition.Assignment
	pinCount []int32
	weight   [][]int64
	movable  []bool
	locked   []bool
	nMovable int

	cfg Config
	sc  *refScratch

	gain      []int64
	key       []int64
	nodes     *refNodes
	buckets   []refGainBuckets
	partOrder []int32
}

// BipartitionReference is the frozen pre-rewrite Bipartition, retained for
// differential testing and benchmarking only.
func BipartitionReference(p *partition.Problem, initial partition.Assignment, cfg Config) (*Result, error) {
	if p.K != 2 {
		return nil, fmt.Errorf("fm: Bipartition requires k=2, got k=%d", p.K)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.Feasible(initial); err != nil {
		return nil, fmt.Errorf("fm: initial assignment: %w", err)
	}
	if cfg.MaxPassFraction < 0 || cfg.MaxPassFraction > 1 {
		return nil, fmt.Errorf("fm: MaxPassFraction %v outside [0,1]", cfg.MaxPassFraction)
	}
	sc := refScratchPool.Get().(*refScratch)
	defer refScratchPool.Put(sc)
	e := newRefKernel(p, initial, cfg, sc)
	r := e.run()
	return &Result{Assignment: r.a, Cut: r.obj, Passes: r.passes, Movable: r.movable}, nil
}

// KWayPartitionReference is the frozen pre-rewrite KWayPartition, retained
// for differential testing and benchmarking only.
func KWayPartitionReference(p *partition.Problem, initial partition.Assignment, cfg Config) (*KWayResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.Feasible(initial); err != nil {
		return nil, fmt.Errorf("fm: initial assignment: %w", err)
	}
	if cfg.MaxPassFraction < 0 || cfg.MaxPassFraction > 1 {
		return nil, fmt.Errorf("fm: MaxPassFraction %v outside [0,1]", cfg.MaxPassFraction)
	}
	sc := refScratchPool.Get().(*refScratch)
	defer refScratchPool.Put(sc)
	e := newRefKernel(p, initial, cfg, sc)
	r := e.run()
	return &KWayResult{
		Assignment: r.a,
		Cut:        partition.Cut(p.H, r.a),
		KMinus1:    r.obj,
		Passes:     r.passes,
		Movable:    r.movable,
	}, nil
}

func newRefKernel(p *partition.Problem, initial partition.Assignment, cfg Config, sc *refScratch) *refKernel {
	e := &refKernel{cfg: cfg, sc: sc}
	h := p.H
	k := p.K
	nv := h.NumVertices()
	ne := h.NumNets()
	nr := h.NumResources()
	sc.prepare(nv, ne, nr, k)
	e.p, e.h, e.k = p, h, k
	e.a = initial.Clone()
	e.pinCount = sc.pinCount
	e.weight = sc.weight
	e.movable = sc.movable
	e.locked = sc.locked
	e.nMovable = 0
	for en := 0; en < ne; en++ {
		for _, v := range h.Pins(en) {
			e.pinCount[en*k+int(e.a[v])]++
		}
	}
	all := partition.AllParts(k)
	for v := 0; v < nv; v++ {
		for r := 0; r < nr; r++ {
			e.weight[e.a[v]][r] += h.WeightIn(v, r)
		}
		if p.MaskOf(v).Intersect(all).Count() >= 2 {
			e.movable[v] = true
			e.nMovable++
		}
	}
	e.gain = sc.gain
	e.key = sc.key
	var maxAdj int64 = 1
	for v := 0; v < nv; v++ {
		if !e.movable[v] {
			continue
		}
		var s int64
		for _, en := range h.NetsOf(v) {
			s += h.NetWeight(int(en))
		}
		if 2*s > maxAdj {
			maxAdj = 2 * s
		}
	}
	const maxBucketSpan = 1 << 21
	if maxAdj > maxBucketSpan {
		maxAdj = maxBucketSpan
	}
	sc.sizeBuckets(nv*k, int32(maxAdj), k)
	e.nodes = &sc.nodes
	e.buckets = sc.buckets
	e.partOrder = sc.partOrder
	return e
}

func (e *refKernel) moveGain(v int32, t int) int64 {
	h := e.h
	k := e.k
	from := int(e.a[v])
	var g int64
	for _, en := range h.NetsOf(int(v)) {
		w := h.NetWeight(int(en))
		if e.pinCount[int(en)*k+from] == 1 {
			g += w
		}
		if e.pinCount[int(en)*k+t] == 0 {
			g -= w
		}
	}
	return g
}

func (e *refKernel) feasibleMove(v int32, t int) bool {
	from := int(e.a[v])
	for r := 0; r < e.h.NumResources(); r++ {
		w := e.h.WeightIn(int(v), r)
		if e.weight[from][r]-w < e.p.Balance.Min[from][r] {
			return false
		}
		if e.weight[t][r]+w > e.p.Balance.Max[t][r] {
			return false
		}
	}
	return true
}

func (e *refKernel) moveVertex(v int32, from, to int) {
	for r := 0; r < e.h.NumResources(); r++ {
		w := e.h.WeightIn(int(v), r)
		e.weight[from][r] -= w
		e.weight[to][r] += w
	}
	e.a[v] = int8(to)
}

func (e *refKernel) undoMove(v int32, f int) {
	k := e.k
	cur := int(e.a[v])
	for _, en := range e.h.NetsOf(int(v)) {
		base := int(en) * k
		e.pinCount[base+cur]--
		e.pinCount[base+f]++
	}
	e.moveVertex(v, cur, f)
}

func (e *refKernel) run() *kernelResult {
	res := &kernelResult{movable: e.nMovable}
	obj := partition.KMinus1(e.p.H, e.a)
	if e.nMovable == 0 {
		res.a = e.a
		res.obj = obj
		return res
	}
	moveLog := e.sc.moveLog[:0]
	for pass := 0; pass < e.cfg.maxPasses(); pass++ {
		limit := e.nMovable
		if pass > 0 && e.cfg.MaxPassFraction > 0 && e.cfg.MaxPassFraction < 1 {
			limit = int(e.cfg.MaxPassFraction * float64(e.nMovable))
			if limit < 1 {
				limit = 1
			}
		}
		stall := 0
		if pass > 0 {
			stall = e.cfg.StallCutoff
		}
		stats := e.runPass(limit, stall, &moveLog)
		res.passes = append(res.passes, stats)
		obj -= stats.Gain
		if stats.Gain <= 0 {
			break
		}
	}
	e.sc.moveLog = moveLog
	res.a = e.a
	res.obj = obj
	return res
}

func (e *refKernel) runPass(limit, stall int, moveLog *[]moveRec) PassStats {
	e.initPass()
	log := (*moveLog)[:0]
	var cum, bestCum int64
	bestIdx := 0
	var cumLog []int64
	for len(log) < limit {
		mid := e.selectMove()
		if mid < 0 {
			break
		}
		v := mid / int32(e.k)
		t := int(mid) % e.k
		g := e.gain[mid]
		from := e.a[v]
		e.applyMove(v, t)
		cum += g
		log = append(log, moveRec{v: v, from: from})
		if e.cfg.RecordProfile {
			cumLog = append(cumLog, cum)
		}
		if cum > bestCum {
			bestCum = cum
			bestIdx = len(log)
		}
		if stall > 0 && len(log)-bestIdx >= stall {
			break
		}
	}
	for i := len(log) - 1; i >= bestIdx; i-- {
		e.undoMove(log[i].v, int(log[i].from))
	}
	*moveLog = log
	stats := PassStats{Moves: len(log), Kept: bestIdx, Gain: bestCum}
	if e.cfg.RecordProfile && bestCum > 0 {
		stats.Profile = gainProfile(cumLog, bestCum)
	}
	return stats
}

func (e *refKernel) initPass() {
	e.nodes.clearMembership()
	for q := range e.buckets {
		e.buckets[q].resetHeads()
	}
	k := e.k
	order := e.sc.order[:0]
	for v := 0; v < e.h.NumVertices(); v++ {
		if !e.movable[v] {
			continue
		}
		e.locked[v] = false
		mask := e.p.MaskOf(v)
		from := int(e.a[v])
		for t := 0; t < k; t++ {
			if t == from || !mask.Contains(t) {
				continue
			}
			mid := int32(v*k + t)
			e.gain[mid] = e.moveGain(int32(v), t)
			order = append(order, mid)
		}
	}
	if e.cfg.Policy == CLIP {
		sort.Slice(order, func(i, j int) bool { return e.gain[order[i]] < e.gain[order[j]] })
	}
	for _, mid := range order {
		if e.cfg.Policy == CLIP {
			e.key[mid] = 0
		} else {
			e.key[mid] = e.gain[mid]
		}
		e.buckets[e.a[mid/int32(k)]].insert(mid, e.key[mid])
	}
	e.sc.order = order
}

func (e *refKernel) selectMove() int32 {
	k := e.k
	po := e.partOrder
	for q := 0; q < k; q++ {
		po[q] = int32(q)
		for i := q; i > 0 && e.weight[po[i]][0] > e.weight[po[i-1]][0]; i-- {
			po[i], po[i-1] = po[i-1], po[i]
		}
	}
	best := int32(-1)
	bestKey := int64(math.MinInt64)
	for _, q := range po {
		b := &e.buckets[q]
		if b.empty() {
			continue
		}
		idx := b.settleMax()
		for idx >= 0 {
			key := int64(idx - b.offset)
			if best >= 0 && key <= bestKey {
				break
			}
			misses := 0
			for mid := b.head[idx]; mid >= 0; mid = e.nodes.next[mid] {
				v := mid / int32(k)
				t := int(mid) % k
				if e.feasibleMove(v, t) {
					best, bestKey = mid, key
					break
				}
				if misses++; misses >= bucketScanCap {
					break
				}
			}
			idx--
		}
	}
	return best
}

func (e *refKernel) applyMove(v int32, t int) {
	h := e.h
	k := e.k
	from := int(e.a[v])
	e.locked[v] = true
	for x := 0; x < k; x++ {
		e.buckets[from].remove(v*int32(k) + int32(x))
	}
	for _, en := range h.NetsOf(int(v)) {
		w := h.NetWeight(int(en))
		pins := h.Pins(int(en))
		base := int(en) * k
		switch e.pinCount[base+t] {
		case 0:
			for _, u := range pins {
				e.deltaMove(u, t, w)
			}
		case 1:
			for _, u := range pins {
				if u != v && int(e.a[u]) == t {
					e.deltaAll(u, -w)
				}
			}
		}
		e.pinCount[base+from]--
		e.pinCount[base+t]++
		switch e.pinCount[base+from] {
		case 0:
			for _, u := range pins {
				e.deltaMove(u, from, -w)
			}
		case 1:
			for _, u := range pins {
				if u != v && int(e.a[u]) == from {
					e.deltaAll(u, w)
				}
			}
		}
	}
	e.moveVertex(v, from, t)
}

func (e *refKernel) deltaMove(u int32, t int, d int64) {
	if e.locked[u] || !e.movable[u] || int(e.a[u]) == t || !e.p.MaskOf(int(u)).Contains(t) {
		return
	}
	mid := u*int32(e.k) + int32(t)
	e.gain[mid] += d
	e.key[mid] += d
	refBucketUpdate(&e.buckets[e.a[u]], mid, e.key[mid])
}

// refBucketUpdate is the pre-rewrite gainBuckets.update, frozen alongside the
// kernel: an unconditional unlink/relink, without the identity fast path the
// optimized update gained (that fast path is part of the rewrite being
// measured, so the reference must not inherit it).
func refBucketUpdate(b *refGainBuckets, e int32, key int64) {
	b.remove(e)
	b.insert(e, key)
}

func (e *refKernel) deltaAll(u int32, d int64) {
	if e.locked[u] || !e.movable[u] {
		return
	}
	mask := e.p.MaskOf(int(u))
	for t := 0; t < e.k; t++ {
		if t == int(e.a[u]) || !mask.Contains(t) {
			continue
		}
		mid := u*int32(e.k) + int32(t)
		e.gain[mid] += d
		e.key[mid] += d
		refBucketUpdate(&e.buckets[e.a[u]], mid, e.key[mid])
	}
}
