package fm

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/partition"
)

// Policy selects the FM vertex-ordering discipline.
type Policy int

const (
	// LIFO is classic FM with last-in-first-out tie-breaking within a gain
	// bucket.
	LIFO Policy = iota
	// CLIP is the cluster-oriented iterative-improvement policy of Dutt and
	// Deng: bucket keys start at zero for every vertex at the beginning of a
	// pass and track only gain *updates*, so selection clusters around
	// recently moved vertices.
	CLIP
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LIFO:
		return "LIFO"
	case CLIP:
		return "CLIP"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config controls a flat FM run.
type Config struct {
	// Policy is the vertex-selection discipline (LIFO or CLIP).
	Policy Policy
	// MaxPassFraction, when in (0,1), imposes the paper's hard cutoff on
	// pass length: every pass after the first makes at most
	// max(1, fraction*movable) moves. 0 or 1 means unlimited.
	MaxPassFraction float64
	// MaxPasses bounds the number of passes (safety net; FM converges well
	// before this). 0 means the default of 64.
	MaxPasses int
	// RecordProfile fills PassStats.Profile with the cumulative-gain curve
	// of each pass, used by the Section III pass-statistics study.
	RecordProfile bool
	// StallCutoff, when positive, ends a pass (after the first) once that
	// many consecutive moves have failed to reach a new best prefix. It is
	// an adaptive alternative to MaxPassFraction in the spirit of the
	// paper's call for heuristics that exploit the fixed-terminals regime:
	// rather than a fixed move budget, the pass stops when it has
	// demonstrably gone stale. Both cutoffs may be combined.
	StallCutoff int
}

func (c Config) maxPasses() int {
	if c.MaxPasses <= 0 {
		return 64
	}
	return c.MaxPasses
}

// PassStats records what happened in one FM pass. The paper's Table II is
// built from Kept/Movable (percentage of nodes whose moves were retained;
// the remaining moves were wasted and undone).
type PassStats struct {
	Moves int   // moves attempted during the pass
	Kept  int   // best-prefix length: moves retained after rollback
	Gain  int64 // objective reduction achieved by the pass (>= 0)
	// Profile, when Config.RecordProfile is set, holds the fraction of the
	// pass's final gain that had accumulated after 10%, 20%, ..., 100% of
	// the moves (entries may be negative while the pass explores downhill).
	// It quantifies the paper's observation that with fixed terminals the
	// improvements concentrate near the beginning of the pass. Nil when the
	// pass achieved no gain.
	Profile []float64
}

// Result is the outcome of a flat FM bipartitioning run.
type Result struct {
	// Assignment is the best solution found (feasible by construction).
	Assignment partition.Assignment
	// Cut is the weighted cut of Assignment.
	Cut int64
	// Passes holds one entry per executed pass, including the final
	// zero-gain pass that triggered termination.
	Passes []PassStats
	// Movable is the number of vertices free to move between the two parts.
	Movable int
}

// TotalMoves returns the total number of moves attempted across all passes.
func (r *Result) TotalMoves() int {
	n := 0
	for _, p := range r.Passes {
		n += p.Moves
	}
	return n
}

// kernel is the policy layer of the part-count-generic FM engine: it owns
// move ordering (LIFO/CLIP seeding, per-part gain buckets over move ids
// v*k+t, heavier-part-first selection), the pass loop with its cutoffs, and
// best-prefix rollback. The structural state and gain arithmetic live in the
// embedded cutModel; for k = 2 the kernel reproduces the dedicated
// bipartition engine move for move.
type kernel struct {
	cutModel
	cfg Config
	sc  *Scratch

	gain      []int64 // per move id v*k+t
	key       []int64 // bucket key per move id (== gain under LIFO)
	nodes     *bucketNodes
	buckets   []gainBuckets // buckets[q] holds moves of vertices in part q
	partOrder []int32
}

// kernelResult is the policy layer's raw outcome, wrapped into Result or
// KWayResult by the entry points.
type kernelResult struct {
	a       partition.Assignment
	obj     int64 // final (λ-1) connectivity; equals the cut when k = 2
	passes  []PassStats
	movable int
}

// Bipartition refines the feasible initial assignment with flat FM passes
// and returns the best solution found. The initial assignment is not
// modified. Vertices whose allowed mask excludes one of the two parts are
// treated as fixed terminals. Working state comes from an internal
// sync.Pool; use BipartitionWith to manage the Scratch explicitly.
func Bipartition(p *partition.Problem, initial partition.Assignment, cfg Config) (*Result, error) {
	sc := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(sc)
	return BipartitionWith(p, initial, cfg, sc)
}

// BipartitionWith is Bipartition running on a caller-provided Scratch, for
// callers that make many runs and want to keep one warm Scratch instead of
// going through the pool. The result never aliases scratch memory.
func BipartitionWith(p *partition.Problem, initial partition.Assignment, cfg Config, sc *Scratch) (*Result, error) {
	if p.K != 2 {
		return nil, fmt.Errorf("fm: Bipartition requires k=2, got k=%d", p.K)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.Feasible(initial); err != nil {
		return nil, fmt.Errorf("fm: initial assignment: %w", err)
	}
	if cfg.MaxPassFraction < 0 || cfg.MaxPassFraction > 1 {
		return nil, fmt.Errorf("fm: MaxPassFraction %v outside [0,1]", cfg.MaxPassFraction)
	}
	e := newKernel(p, initial, cfg, sc)
	r := e.run()
	return &Result{Assignment: r.a, Cut: r.obj, Passes: r.passes, Movable: r.movable}, nil
}

func newKernel(p *partition.Problem, initial partition.Assignment, cfg Config, sc *Scratch) *kernel {
	e := &kernel{cfg: cfg, sc: sc}
	e.cutModel.init(p, initial, sc)
	e.gain = sc.gain
	e.key = sc.key
	// Bucket key range: the largest possible |gain| is the max over movable
	// vertices of the total incident net weight; CLIP deltas can reach twice
	// that. Saturate beyond.
	h := p.H
	var maxAdj int64 = 1
	for v := 0; v < h.NumVertices(); v++ {
		if !e.movable[v] {
			continue
		}
		var s int64
		for _, en := range h.NetsOf(v) {
			s += h.NetWeight(int(en))
		}
		if 2*s > maxAdj {
			maxAdj = 2 * s
		}
	}
	const maxBucketSpan = 1 << 21
	if maxAdj > maxBucketSpan {
		maxAdj = maxBucketSpan
	}
	sc.sizeBuckets(h.NumVertices()*e.k, int32(maxAdj), e.k)
	e.nodes = &sc.nodes
	e.buckets = sc.buckets
	e.partOrder = sc.partOrder
	return e
}

func (e *kernel) run() *kernelResult {
	res := &kernelResult{movable: e.nMovable}
	obj := partition.KMinus1(e.h, e.a)
	if e.nMovable == 0 {
		res.a = e.a
		res.obj = obj
		return res
	}
	moveLog := e.sc.moveLog[:0]
	for pass := 0; pass < e.cfg.maxPasses(); pass++ {
		limit := e.nMovable
		if pass > 0 && e.cfg.MaxPassFraction > 0 && e.cfg.MaxPassFraction < 1 {
			limit = int(e.cfg.MaxPassFraction * float64(e.nMovable))
			if limit < 1 {
				limit = 1
			}
		}
		stall := 0
		if pass > 0 {
			stall = e.cfg.StallCutoff
		}
		stats := e.runPass(limit, stall, &moveLog)
		res.passes = append(res.passes, stats)
		obj -= stats.Gain
		if stats.Gain <= 0 {
			break
		}
	}
	e.sc.moveLog = moveLog // keep any growth for the next run
	res.a = e.a
	res.obj = obj
	return res
}

// runPass executes one FM pass (up to limit moves, ending early after
// stall consecutive non-improving moves when stall > 0), rolls back to the
// best prefix, and returns its statistics.
func (e *kernel) runPass(limit, stall int, moveLog *[]moveRec) PassStats {
	e.initPass()
	log := (*moveLog)[:0]
	var cum, bestCum int64
	bestIdx := 0
	var cumLog []int64
	for len(log) < limit {
		mid := e.selectMove()
		if mid < 0 {
			break
		}
		v := mid / int32(e.k)
		t := int(mid) % e.k
		g := e.gain[mid]
		from := e.a[v]
		e.applyMove(v, t)
		cum += g
		log = append(log, moveRec{v: v, from: from})
		if e.cfg.RecordProfile {
			cumLog = append(cumLog, cum)
		}
		if cum > bestCum {
			bestCum = cum
			bestIdx = len(log)
		}
		if stall > 0 && len(log)-bestIdx >= stall {
			break
		}
	}
	for i := len(log) - 1; i >= bestIdx; i-- {
		e.undoMove(log[i].v, int(log[i].from))
	}
	*moveLog = log
	stats := PassStats{Moves: len(log), Kept: bestIdx, Gain: bestCum}
	if e.cfg.RecordProfile && bestCum > 0 {
		stats.Profile = gainProfile(cumLog, bestCum)
	}
	return stats
}

// gainProfile samples the cumulative gain curve at move-count deciles,
// normalized by the pass's final (best-prefix) gain.
func gainProfile(cumLog []int64, best int64) []float64 {
	prof := make([]float64, 10)
	n := len(cumLog)
	for i := 0; i < 10; i++ {
		idx := (i + 1) * n / 10
		if idx == 0 {
			continue
		}
		prof[i] = float64(cumLog[idx-1]) / float64(best)
	}
	return prof
}

// initPass computes fresh gains for every legal (vertex, target) move and
// fills the per-part bucket structures, seeding vertices in ascending id
// order and targets in ascending part order. Under CLIP every move starts
// with bucket key zero, but the zero bucket is seeded in ascending
// actual-gain order so that the LIFO head — the pass's anchor move — is the
// highest-actual-gain move, per Dutt and Deng.
func (e *kernel) initPass() {
	e.nodes.clearMembership()
	for q := range e.buckets {
		e.buckets[q].resetHeads()
	}
	k := e.k
	order := e.sc.order[:0]
	for v := 0; v < e.h.NumVertices(); v++ {
		if !e.movable[v] {
			continue
		}
		e.locked[v] = false
		mask := e.p.MaskOf(v)
		from := int(e.a[v])
		for t := 0; t < k; t++ {
			if t == from || !mask.Contains(t) {
				continue
			}
			mid := int32(v*k + t)
			e.gain[mid] = e.moveGain(int32(v), t)
			order = append(order, mid)
		}
	}
	if e.cfg.Policy == CLIP {
		sort.Slice(order, func(i, j int) bool { return e.gain[order[i]] < e.gain[order[j]] })
	}
	for _, mid := range order {
		if e.cfg.Policy == CLIP {
			e.key[mid] = 0
		} else {
			e.key[mid] = e.gain[mid]
		}
		e.buckets[e.a[mid/int32(k)]].insert(mid, e.key[mid])
	}
	e.sc.order = order
}

// bucketScanCap bounds how many infeasible moves we examine per bucket
// before skipping to the next gain level; this keeps selection cheap when a
// part sits at its balance boundary.
const bucketScanCap = 8

// selectMove picks the highest-key feasible move, scanning parts in
// decreasing first-resource weight (ties by lower part index) so that ties
// favour the balance-improving direction. Returns -1 when no feasible move
// exists.
func (e *kernel) selectMove() int32 {
	k := e.k
	po := e.partOrder
	for q := 0; q < k; q++ {
		po[q] = int32(q)
		for i := q; i > 0 && e.weight[po[i]][0] > e.weight[po[i-1]][0]; i-- {
			po[i], po[i-1] = po[i-1], po[i]
		}
	}
	best := int32(-1)
	bestKey := int64(math.MinInt64)
	for _, q := range po {
		b := &e.buckets[q]
		if b.empty() {
			continue
		}
		idx := b.settleMax()
		for idx >= 0 {
			key := int64(idx - b.offset)
			if best >= 0 && key <= bestKey {
				break
			}
			misses := 0
			for mid := b.head[idx]; mid >= 0; mid = e.nodes.next[mid] {
				v := mid / int32(k)
				t := int(mid) % k
				if e.feasibleMove(v, t) {
					best, bestKey = mid, key
					break
				}
				if misses++; misses >= bucketScanCap {
					break
				}
			}
			idx--
		}
	}
	return best
}

// applyMove moves v to part t, locks it, and updates affected move gains via
// the k-way critical-net rules (which reduce to the classic FM rules when
// k = 2).
func (e *kernel) applyMove(v int32, t int) {
	h := e.h
	k := e.k
	from := int(e.a[v])
	e.locked[v] = true
	for x := 0; x < k; x++ {
		e.buckets[from].remove(v*int32(k) + int32(x))
	}
	for _, en := range h.NetsOf(int(v)) {
		w := h.NetWeight(int(en))
		pins := h.Pins(int(en))
		base := int(en) * k
		// Before the move.
		switch e.pinCount[base+t] {
		case 0:
			// Part t joins the net: moves toward t stop adding a part.
			for _, u := range pins {
				e.deltaMove(u, t, w)
			}
		case 1:
			// The lone t pin stops being critical for leaving t.
			for _, u := range pins {
				if u != v && int(e.a[u]) == t {
					e.deltaAll(u, -w)
				}
			}
		}
		e.pinCount[base+from]--
		e.pinCount[base+t]++
		// After the move.
		switch e.pinCount[base+from] {
		case 0:
			// Part from left the net: moves toward from now add a part.
			for _, u := range pins {
				e.deltaMove(u, from, -w)
			}
		case 1:
			// The lone remaining from pin became critical.
			for _, u := range pins {
				if u != v && int(e.a[u]) == from {
					e.deltaAll(u, w)
				}
			}
		}
	}
	e.moveVertex(v, from, t)
}

// deltaMove adjusts the gain and bucket position of u's move toward part t,
// if that move is in play.
func (e *kernel) deltaMove(u int32, t int, d int64) {
	if e.locked[u] || !e.movable[u] || int(e.a[u]) == t || !e.p.MaskOf(int(u)).Contains(t) {
		return
	}
	mid := u*int32(e.k) + int32(t)
	e.gain[mid] += d
	e.key[mid] += d
	e.buckets[e.a[u]].update(mid, e.key[mid])
}

// deltaAll adjusts the gains of every move of u (its from-side criticality
// changed).
func (e *kernel) deltaAll(u int32, d int64) {
	if e.locked[u] || !e.movable[u] {
		return
	}
	mask := e.p.MaskOf(int(u))
	for t := 0; t < e.k; t++ {
		if t == int(e.a[u]) || !mask.Contains(t) {
			continue
		}
		mid := u*int32(e.k) + int32(t)
		e.gain[mid] += d
		e.key[mid] += d
		e.buckets[e.a[u]].update(mid, e.key[mid])
	}
}
