package fm

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// Policy selects the FM vertex-ordering discipline.
type Policy int

const (
	// LIFO is classic FM with last-in-first-out tie-breaking within a gain
	// bucket.
	LIFO Policy = iota
	// CLIP is the cluster-oriented iterative-improvement policy of Dutt and
	// Deng: bucket keys start at zero for every vertex at the beginning of a
	// pass and track only gain *updates*, so selection clusters around
	// recently moved vertices.
	CLIP
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LIFO:
		return "LIFO"
	case CLIP:
		return "CLIP"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config controls a flat FM run.
type Config struct {
	// Policy is the vertex-selection discipline (LIFO or CLIP).
	Policy Policy
	// MaxPassFraction, when in (0,1), imposes the paper's hard cutoff on
	// pass length: every pass after the first makes at most
	// max(1, fraction*movable) moves. 0 or 1 means unlimited.
	MaxPassFraction float64
	// MaxPasses bounds the number of passes (safety net; FM converges well
	// before this). 0 means the default of 64.
	MaxPasses int
	// RecordProfile fills PassStats.Profile with the cumulative-gain curve
	// of each pass, used by the Section III pass-statistics study.
	RecordProfile bool
	// StallCutoff, when positive, ends a pass (after the first) once that
	// many consecutive moves have failed to reach a new best prefix. It is
	// an adaptive alternative to MaxPassFraction in the spirit of the
	// paper's call for heuristics that exploit the fixed-terminals regime:
	// rather than a fixed move budget, the pass stops when it has
	// demonstrably gone stale. Both cutoffs may be combined.
	StallCutoff int
}

func (c Config) maxPasses() int {
	if c.MaxPasses <= 0 {
		return 64
	}
	return c.MaxPasses
}

// PassStats records what happened in one FM pass. The paper's Table II is
// built from Kept/Movable (percentage of nodes whose moves were retained;
// the remaining moves were wasted and undone).
type PassStats struct {
	Moves int   // moves attempted during the pass
	Kept  int   // best-prefix length: moves retained after rollback
	Gain  int64 // cut reduction achieved by the pass (>= 0)
	// Profile, when Config.RecordProfile is set, holds the fraction of the
	// pass's final gain that had accumulated after 10%, 20%, ..., 100% of
	// the moves (entries may be negative while the pass explores downhill).
	// It quantifies the paper's observation that with fixed terminals the
	// improvements concentrate near the beginning of the pass. Nil when the
	// pass achieved no gain.
	Profile []float64
}

// Result is the outcome of a flat FM run.
type Result struct {
	// Assignment is the best solution found (feasible by construction).
	Assignment partition.Assignment
	// Cut is the weighted cut of Assignment.
	Cut int64
	// Passes holds one entry per executed pass, including the final
	// zero-gain pass that triggered termination.
	Passes []PassStats
	// Movable is the number of vertices free to move between the two parts.
	Movable int
}

// TotalMoves returns the total number of moves attempted across all passes.
func (r *Result) TotalMoves() int {
	n := 0
	for _, p := range r.Passes {
		n += p.Moves
	}
	return n
}

// engine holds the per-run state of the bipartitioning FM kernel. All bulk
// arrays live in the embedded Scratch so repeated runs can reuse them.
type engine struct {
	p   *partition.Problem
	h   *hypergraph.Hypergraph
	cfg Config

	a partition.Assignment
	*Scratch
	nMovable int
}

// Bipartition refines the feasible initial assignment with flat FM passes
// and returns the best solution found. The initial assignment is not
// modified. Vertices whose allowed mask excludes one of the two parts are
// treated as fixed terminals. Working state comes from an internal
// sync.Pool; use BipartitionWith to manage the Scratch explicitly.
func Bipartition(p *partition.Problem, initial partition.Assignment, cfg Config) (*Result, error) {
	sc := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(sc)
	return BipartitionWith(p, initial, cfg, sc)
}

// BipartitionWith is Bipartition running on a caller-provided Scratch, for
// callers that make many runs and want to keep one warm Scratch instead of
// going through the pool. The result never aliases scratch memory.
func BipartitionWith(p *partition.Problem, initial partition.Assignment, cfg Config, sc *Scratch) (*Result, error) {
	if p.K != 2 {
		return nil, fmt.Errorf("fm: Bipartition requires k=2, got k=%d", p.K)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.Feasible(initial); err != nil {
		return nil, fmt.Errorf("fm: initial assignment: %w", err)
	}
	if cfg.MaxPassFraction < 0 || cfg.MaxPassFraction > 1 {
		return nil, fmt.Errorf("fm: MaxPassFraction %v outside [0,1]", cfg.MaxPassFraction)
	}
	e := newEngine(p, initial, cfg, sc)
	return e.run(), nil
}

func newEngine(p *partition.Problem, initial partition.Assignment, cfg Config, sc *Scratch) *engine {
	h := p.H
	nv := h.NumVertices()
	ne := h.NumNets()
	nr := h.NumResources()
	sc.prepare(nv, ne, nr)
	e := &engine{
		p:       p,
		h:       h,
		cfg:     cfg,
		a:       initial.Clone(),
		Scratch: sc,
	}
	for en := 0; en < ne; en++ {
		for _, v := range h.Pins(en) {
			e.pinCount[e.a[v]][en]++
		}
	}
	for v := 0; v < nv; v++ {
		for r := 0; r < nr; r++ {
			e.weight[e.a[v]][r] += h.WeightIn(v, r)
		}
		m := p.MaskOf(v)
		if m.Contains(0) && m.Contains(1) {
			e.movable[v] = true
			e.nMovable++
		}
	}
	// Bucket key range: the largest possible |gain| is the max over movable
	// vertices of the total incident net weight; CLIP deltas can reach twice
	// that. Saturate beyond.
	var maxAdj int64 = 1
	for v := 0; v < nv; v++ {
		if !e.movable[v] {
			continue
		}
		var s int64
		for _, en := range h.NetsOf(v) {
			s += h.NetWeight(int(en))
		}
		if 2*s > maxAdj {
			maxAdj = 2 * s
		}
	}
	const maxBucketSpan = 1 << 21
	if maxAdj > maxBucketSpan {
		maxAdj = maxBucketSpan
	}
	sc.sizeBuckets(nv, int32(maxAdj))
	return e
}

func (e *engine) run() *Result {
	res := &Result{Movable: e.nMovable}
	cut := partition.Cut(e.h, e.a)
	if e.nMovable == 0 {
		res.Assignment = e.a
		res.Cut = cut
		return res
	}
	moveLog := e.Scratch.moveLog[:0]
	for pass := 0; pass < e.cfg.maxPasses(); pass++ {
		limit := e.nMovable
		if pass > 0 && e.cfg.MaxPassFraction > 0 && e.cfg.MaxPassFraction < 1 {
			limit = int(e.cfg.MaxPassFraction * float64(e.nMovable))
			if limit < 1 {
				limit = 1
			}
		}
		stall := 0
		if pass > 0 {
			stall = e.cfg.StallCutoff
		}
		stats := e.runPass(limit, stall, &moveLog)
		res.Passes = append(res.Passes, stats)
		cut -= stats.Gain
		if stats.Gain <= 0 {
			break
		}
	}
	e.Scratch.moveLog = moveLog // keep any growth for the next run
	res.Assignment = e.a
	res.Cut = cut
	return res
}

// runPass executes one FM pass (up to limit moves, ending early after
// stall consecutive non-improving moves when stall > 0), rolls back to the
// best prefix, and returns its statistics.
func (e *engine) runPass(limit, stall int, moveLog *[]int32) PassStats {
	e.initPass()
	log := (*moveLog)[:0]
	var cum, bestCum int64
	bestIdx := 0
	var cumLog []int64
	for len(log) < limit {
		v := e.selectMove()
		if v < 0 {
			break
		}
		g := e.gain[v]
		e.applyMove(v)
		cum += g
		log = append(log, v)
		if e.cfg.RecordProfile {
			cumLog = append(cumLog, cum)
		}
		if cum > bestCum {
			bestCum = cum
			bestIdx = len(log)
		}
		if stall > 0 && len(log)-bestIdx >= stall {
			break
		}
	}
	for i := len(log) - 1; i >= bestIdx; i-- {
		e.undoMove(log[i])
	}
	*moveLog = log
	stats := PassStats{Moves: len(log), Kept: bestIdx, Gain: bestCum}
	if e.cfg.RecordProfile && bestCum > 0 {
		stats.Profile = gainProfile(cumLog, bestCum)
	}
	return stats
}

// gainProfile samples the cumulative gain curve at move-count deciles,
// normalized by the pass's final (best-prefix) gain.
func gainProfile(cumLog []int64, best int64) []float64 {
	prof := make([]float64, 10)
	n := len(cumLog)
	for i := 0; i < 10; i++ {
		idx := (i + 1) * n / 10
		if idx == 0 {
			continue
		}
		prof[i] = float64(cumLog[idx-1]) / float64(best)
	}
	return prof
}

// initPass computes fresh gains and fills the bucket structures. Under CLIP
// every vertex starts with bucket key zero, but the zero bucket is seeded in
// ascending actual-gain order so that the LIFO head — the pass's anchor move
// — is the highest-actual-gain vertex, per Dutt and Deng.
func (e *engine) initPass() {
	e.buckets[0].reset()
	e.buckets[1].reset()
	h := e.h
	order := e.Scratch.order[:0]
	for v := 0; v < h.NumVertices(); v++ {
		if !e.movable[v] {
			continue
		}
		e.locked[v] = false
		s := int(e.a[v])
		var g int64
		for _, en := range h.NetsOf(v) {
			w := h.NetWeight(int(en))
			if e.pinCount[s][en] == 1 {
				g += w
			}
			if e.pinCount[1-s][en] == 0 {
				g -= w
			}
		}
		e.gain[v] = g
		order = append(order, int32(v))
	}
	if e.cfg.Policy == CLIP {
		sort.Slice(order, func(i, j int) bool { return e.gain[order[i]] < e.gain[order[j]] })
	}
	for _, v := range order {
		if e.cfg.Policy == CLIP {
			e.key[v] = 0
		} else {
			e.key[v] = e.gain[v]
		}
		e.buckets[e.a[v]].insert(v, e.key[v])
	}
	e.Scratch.order = order
}

// feasibleMove reports whether moving v out of side s keeps balance.
func (e *engine) feasibleMove(v int32, s int) bool {
	o := 1 - s
	for r := 0; r < e.h.NumResources(); r++ {
		w := e.h.WeightIn(int(v), r)
		if e.weight[s][r]-w < e.p.Balance.Min[s][r] {
			return false
		}
		if e.weight[o][r]+w > e.p.Balance.Max[o][r] {
			return false
		}
	}
	return true
}

// bucketScanCap bounds how many infeasible vertices we examine per bucket
// before skipping to the next gain level; this keeps selection cheap when a
// side sits at its balance boundary.
const bucketScanCap = 8

// selectMove picks the highest-key feasible move, scanning the heavier side
// first so that ties favour the balance-improving direction. Returns -1 when
// no feasible move exists.
func (e *engine) selectMove() int32 {
	first := 0
	if e.weight[1][0] > e.weight[0][0] {
		first = 1
	}
	best := int32(-1)
	bestKey := int64(math.MinInt64)
	for _, s := range [2]int{first, 1 - first} {
		b := e.buckets[s]
		if b.empty() {
			continue
		}
		idx := b.settleMax()
		for idx >= 0 {
			key := int64(idx - b.offset)
			if best >= 0 && key <= bestKey {
				break
			}
			misses := 0
			for v := b.head[idx]; v >= 0; v = b.next[v] {
				if e.feasibleMove(v, s) {
					best, bestKey = v, key
					break
				}
				if misses++; misses >= bucketScanCap {
					break
				}
			}
			idx--
		}
	}
	return best
}

// applyMove moves v to the other side, locks it, and updates neighbour gains
// with the standard FM critical-net rules.
func (e *engine) applyMove(v int32) {
	h := e.h
	from := int(e.a[v])
	to := 1 - from
	e.locked[v] = true
	e.buckets[from].remove(v)
	for _, en := range h.NetsOf(int(v)) {
		w := h.NetWeight(int(en))
		pins := h.Pins(int(en))
		// Before the move.
		switch e.pinCount[to][en] {
		case 0:
			// Net becomes cut: every free pin would now gain by following.
			for _, u := range pins {
				e.deltaGain(u, w)
			}
		case 1:
			// The lone to-side pin is no longer critical.
			for _, u := range pins {
				if int(e.a[u]) == to {
					e.deltaGain(u, -w)
				}
			}
		}
		e.pinCount[from][en]--
		e.pinCount[to][en]++
		// After the move.
		switch e.pinCount[from][en] {
		case 0:
			// Net is now uncut: no pin gains from crossing anymore.
			for _, u := range pins {
				e.deltaGain(u, -w)
			}
		case 1:
			// The lone remaining from-side pin became critical.
			for _, u := range pins {
				if u != v && int(e.a[u]) == from {
					e.deltaGain(u, w)
				}
			}
		}
	}
	for r := 0; r < h.NumResources(); r++ {
		w := h.WeightIn(int(v), r)
		e.weight[from][r] -= w
		e.weight[to][r] += w
	}
	e.a[v] = int8(to)
}

// deltaGain adjusts the gain and bucket position of u if it is still in play.
func (e *engine) deltaGain(u int32, d int64) {
	if e.locked[u] || !e.movable[u] {
		return
	}
	e.gain[u] += d
	e.key[u] += d
	e.buckets[e.a[u]].update(u, e.key[u])
}

// undoMove reverses applyMove's structural effects (assignment, pin counts,
// weights). Gains are rebuilt at the next pass, so they are left stale.
func (e *engine) undoMove(v int32) {
	h := e.h
	from := int(e.a[v]) // side v currently occupies (the move's destination)
	to := 1 - from      // original side
	for _, en := range h.NetsOf(int(v)) {
		e.pinCount[from][en]--
		e.pinCount[to][en]++
	}
	for r := 0; r < h.NumResources(); r++ {
		w := h.WeightIn(int(v), r)
		e.weight[from][r] -= w
		e.weight[to][r] += w
	}
	e.a[v] = int8(to)
}
