package fm

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/partition"
)

// Policy selects the FM vertex-ordering discipline.
type Policy int

const (
	// LIFO is classic FM with last-in-first-out tie-breaking within a gain
	// bucket.
	LIFO Policy = iota
	// CLIP is the cluster-oriented iterative-improvement policy of Dutt and
	// Deng: bucket keys start at zero for every vertex at the beginning of a
	// pass and track only gain *updates*, so selection clusters around
	// recently moved vertices.
	CLIP
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LIFO:
		return "LIFO"
	case CLIP:
		return "CLIP"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config controls a flat FM run.
type Config struct {
	// Policy is the vertex-selection discipline (LIFO or CLIP).
	Policy Policy
	// Objective selects the gain model the kernel drives and the metric the
	// run reports as Score (and is selected by upstream). The zero value,
	// ObjectiveCut, reproduces the historical engine bit for bit.
	Objective Objective
	// MaxPassFraction, when in (0,1), imposes the paper's hard cutoff on
	// pass length: every pass after the first makes at most
	// max(1, fraction*movable) moves. 0 or 1 means unlimited.
	MaxPassFraction float64
	// MaxPasses bounds the number of passes (safety net; FM converges well
	// before this). 0 means the default of 64.
	MaxPasses int
	// RecordProfile fills PassStats.Profile with the cumulative-gain curve
	// of each pass, used by the Section III pass-statistics study.
	RecordProfile bool
	// Sideways is consulted only by the synchronous-round parallel engine
	// (ParallelRefine): when set, a vertex with no strictly-positive-gain
	// move may instead propose a zero-gain move that strictly improves
	// balance — the sender part outweighs the receiver by more than the
	// vertex on the primary resource — so the rounds can rebalance as well
	// as descend. The serial kernel ignores it (its rollback machinery
	// already explores sideways moves inside passes). Off by default; the
	// zero value reproduces the positive-only round stage bit for bit.
	Sideways bool
	// StallCutoff, when positive, ends a pass (after the first) once that
	// many consecutive moves have failed to reach a new best prefix. It is
	// an adaptive alternative to MaxPassFraction in the spirit of the
	// paper's call for heuristics that exploit the fixed-terminals regime:
	// rather than a fixed move budget, the pass stops when it has
	// demonstrably gone stale. Both cutoffs may be combined.
	StallCutoff int
	// Stats, when non-nil, accumulates the net-state-aware kernel's work
	// counters (nets skipped, pin scans avoided, bucket updates saved)
	// atomically across runs, so one KernelStats may be shared by concurrent
	// workers.
	Stats *KernelStats
}

func (c Config) maxPasses() int {
	if c.MaxPasses <= 0 {
		return 64
	}
	return c.MaxPasses
}

// PassStats records what happened in one FM pass. The paper's Table II is
// built from Kept/Movable (percentage of nodes whose moves were retained;
// the remaining moves were wasted and undone).
type PassStats struct {
	Moves int   // moves attempted during the pass
	Kept  int   // best-prefix length: moves retained after rollback
	Gain  int64 // objective reduction achieved by the pass (>= 0)
	// Profile, when Config.RecordProfile is set, holds the fraction of the
	// pass's final gain that had accumulated after 10%, 20%, ..., 100% of
	// the moves (entries may be negative while the pass explores downhill).
	// It quantifies the paper's observation that with fixed terminals the
	// improvements concentrate near the beginning of the pass. Nil when the
	// pass achieved no gain.
	Profile []float64
}

// Result is the outcome of a flat FM bipartitioning run.
type Result struct {
	// Assignment is the best solution found (feasible by construction).
	Assignment partition.Assignment
	// Cut is the weighted cut of Assignment.
	Cut int64
	// Score is Assignment evaluated under the run's Objective, recomputed by
	// definition from the final assignment. At k = 2 every objective in the
	// family coincides with the cut, so Score == Cut.
	Score int64
	// Objective is the metric the run optimized (Config.Objective).
	Objective Objective
	// Passes holds one entry per executed pass, including the final
	// zero-gain pass that triggered termination.
	Passes []PassStats
	// Movable is the number of vertices free to move between the two parts.
	Movable int
}

// TotalMoves returns the total number of moves attempted across all passes.
func (r *Result) TotalMoves() int {
	n := 0
	for _, p := range r.Passes {
		n += p.Moves
	}
	return n
}

// kernel is the policy layer of the part-count-generic FM engine: it owns
// move ordering (LIFO/CLIP seeding, per-part gain buckets over move ids
// v*k+t, heavier-part-first selection), the pass loop with its cutoffs, and
// best-prefix rollback. The structural state and gain arithmetic live in the
// gain model selected by Config.Objective, driven through the gainModel
// interface; the embedded *cutModel aliases model.core() so the hot paths
// (Φ shifts, packed net records, bucket addressing) keep their direct field
// access. For k = 2 under the default cut objective the kernel reproduces
// the dedicated bipartition engine move for move.
type kernel struct {
	*cutModel
	model gainModel
	cfg   Config
	sc    *Scratch

	// gk interleaves the actual gain (gk[2*mid]) and the bucket key
	// (gk[2*mid+1], == gain under LIFO, delta-only under CLIP) of each move
	// id. Every hot-path delta adjusts both, so interleaving puts the pair on
	// one cache line instead of two parallel arrays apart.
	gk        []int64
	nodes     *bucketNodes
	buckets   []gainBuckets // buckets[q] holds moves of vertices in part q
	partOrder []int32

	// The per-pass locked-net counters live inside the packed cutModel
	// .passNet records (one cache line shared by four nets at k = 2):
	//
	//   - slots [0, k) count this pass's locked pins (fixed terminals plus
	//     moved vertices) per part, and slot k+1 the parts with at least one.
	//     Once the cover reaches k — tracked only for nets of >=
	//     lockTrackMinPins pins — the net's gain contributions are frozen for
	//     the rest of the pass (see applyMove) and its pins are never scanned
	//     again. Smaller nets are left untracked: their dedicated fast paths
	//     cost less, and a 2-pin net can never become covered mid-pass anyway
	//     (the mover itself is still unlocked).
	//   - slot k counts the net's movable pins not yet locked this pass
	//     (seeded from cutModel.movablePins each initPass). When the moving
	//     vertex is a net's last unlocked movable pin, every gain delta would
	//     land on a locked or immovable pin — both out of the buckets — so
	//     the net is skipped for the cost of one counter decrement. This
	//     works for nets of any size, including the 2-pin nets the per-part
	//     counters cannot cover.

	// Batched bucket repositioning: touch() records gain deltas in touchLog
	// (with duplicates) while stamping each move id's latest log position in
	// lastPos, and applyMove repositions each touched move id exactly once,
	// in the chronological order of last touches, which reproduces the
	// incremental scheme's LIFO bucket order byte for byte.
	touchLog []int32
	lastPos  []int32

	// sortGain is a dense gain-by-move-id copy used only by CLIP's seeding
	// sort (see initPass).
	sortGain []int64

	// Work counters for Config.Stats.
	netsSkipped        int64
	pinScansAvoided    int64
	pinsScanned        int64
	bucketUpdatesSaved int64
}

// kernelResult is the policy layer's raw outcome, wrapped into Result or
// KWayResult by the entry points.
type kernelResult struct {
	a       partition.Assignment
	obj     int64 // final (λ-1) connectivity; equals the cut when k = 2
	score   int64 // a evaluated by the model's finalScore (the run's Objective)
	passes  []PassStats
	movable int
}

// Bipartition refines the feasible initial assignment with flat FM passes
// and returns the best solution found. The initial assignment is not
// modified. Vertices whose allowed mask excludes one of the two parts are
// treated as fixed terminals. Working state comes from an internal
// sync.Pool; use BipartitionWith to manage the Scratch explicitly.
func Bipartition(p *partition.Problem, initial partition.Assignment, cfg Config) (*Result, error) {
	sc := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(sc)
	return BipartitionWith(p, initial, cfg, sc)
}

// BipartitionWith is Bipartition running on a caller-provided Scratch, for
// callers that make many runs and want to keep one warm Scratch instead of
// going through the pool. The result never aliases scratch memory.
func BipartitionWith(p *partition.Problem, initial partition.Assignment, cfg Config, sc *Scratch) (*Result, error) {
	if p.K != 2 {
		return nil, fmt.Errorf("fm: Bipartition requires k=2, got k=%d", p.K)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.Feasible(initial); err != nil {
		return nil, fmt.Errorf("fm: initial assignment: %w", err)
	}
	if cfg.MaxPassFraction < 0 || cfg.MaxPassFraction > 1 {
		return nil, fmt.Errorf("fm: MaxPassFraction %v outside [0,1]", cfg.MaxPassFraction)
	}
	e := newKernel(p, initial, cfg, sc)
	r := e.run()
	return &Result{Assignment: r.a, Cut: r.obj, Score: r.score, Objective: cfg.Objective, Passes: r.passes, Movable: r.movable}, nil
}

func newKernel(p *partition.Problem, initial partition.Assignment, cfg Config, sc *Scratch) *kernel {
	e := &kernel{model: newGainModel(cfg.Objective), cfg: cfg, sc: sc}
	e.model.init(p, initial, sc)
	e.cutModel = e.model.core()
	e.gk = sc.gk
	// Bucket key range: the largest possible |gain| is the max over movable
	// vertices of the total incident net weight; CLIP deltas can reach twice
	// that. Saturate beyond.
	h := p.H
	var maxAdj int64 = 1
	for v := 0; v < h.NumVertices(); v++ {
		if !e.movable[v] {
			continue
		}
		var s int64
		for _, en := range h.NetsOf(v) {
			s += h.NetWeight(int(en))
		}
		if 2*s > maxAdj {
			maxAdj = 2 * s
		}
	}
	const maxBucketSpan = 1 << 21
	if maxAdj > maxBucketSpan {
		maxAdj = maxBucketSpan
	}
	sc.sizeBuckets(h.NumVertices()*e.k, int32(maxAdj), e.k)
	e.nodes = &sc.nodes
	e.buckets = sc.buckets
	e.partOrder = sc.partOrder
	e.touchLog = sc.touchLog[:0]
	e.lastPos = sc.lastPos
	e.sortGain = sc.sortGain
	return e
}

func (e *kernel) run() *kernelResult {
	res := &kernelResult{movable: e.nMovable}
	obj := partition.KMinus1(e.h, e.a)
	if e.nMovable == 0 {
		res.a = e.a.Clone() // a is scratch-backed; the result must not alias it
		res.obj = obj
		res.score = e.model.finalScore(res.a)
		return res
	}
	moveLog := e.sc.moveLog[:0]
	for pass := 0; pass < e.cfg.maxPasses(); pass++ {
		limit := e.nMovable
		if pass > 0 && e.cfg.MaxPassFraction > 0 && e.cfg.MaxPassFraction < 1 {
			limit = int(e.cfg.MaxPassFraction * float64(e.nMovable))
			if limit < 1 {
				limit = 1
			}
		}
		stall := 0
		if pass > 0 {
			stall = e.cfg.StallCutoff
		}
		stats := e.runPass(limit, stall, &moveLog)
		res.passes = append(res.passes, stats)
		obj -= stats.Gain
		if stats.Gain <= 0 {
			break
		}
	}
	e.sc.moveLog = moveLog         // keep any growth for the next run
	e.sc.touchLog = e.touchLog[:0] // keep any growth for the next run
	if e.cfg.Stats != nil {
		e.cfg.Stats.add(e.netsSkipped, e.pinScansAvoided, e.pinsScanned, e.bucketUpdatesSaved)
	}
	res.a = e.a.Clone() // a is scratch-backed; the result must not alias it
	res.obj = obj
	res.score = e.model.finalScore(res.a)
	return res
}

// runPass executes one FM pass (up to limit moves, ending early after
// stall consecutive non-improving moves when stall > 0), rolls back to the
// best prefix, and returns its statistics.
func (e *kernel) runPass(limit, stall int, moveLog *[]moveRec) PassStats {
	e.initPass()
	log := (*moveLog)[:0]
	var cum, bestCum int64
	bestIdx := 0
	var cumLog []int64
	for len(log) < limit {
		mid := e.selectMove()
		if mid < 0 {
			break
		}
		v := mid / int32(e.k)
		t := int(mid) % e.k
		g := e.gk[2*mid]
		from := e.a[v]
		e.applyMove(v, t)
		cum += g
		log = append(log, moveRec{v: v, from: from})
		if e.cfg.RecordProfile {
			cumLog = append(cumLog, cum)
		}
		if cum > bestCum {
			bestCum = cum
			bestIdx = len(log)
		}
		if stall > 0 && len(log)-bestIdx >= stall {
			break
		}
	}
	for i := len(log) - 1; i >= bestIdx; i-- {
		e.model.undoMove(log[i].v, int(log[i].from))
	}
	*moveLog = log
	stats := PassStats{Moves: len(log), Kept: bestIdx, Gain: bestCum}
	if e.cfg.RecordProfile && bestCum > 0 {
		stats.Profile = gainProfile(cumLog, bestCum)
	}
	return stats
}

// gainProfile samples the cumulative gain curve at move-count deciles,
// normalized by the pass's final (best-prefix) gain.
func gainProfile(cumLog []int64, best int64) []float64 {
	prof := make([]float64, 10)
	n := len(cumLog)
	for i := 0; i < 10; i++ {
		idx := (i + 1) * n / 10
		if idx == 0 {
			continue
		}
		prof[i] = float64(cumLog[idx-1]) / float64(best)
	}
	return prof
}

// initPass computes fresh gains for every legal (vertex, target) move and
// fills the per-part bucket structures, seeding vertices in ascending id
// order and targets in ascending part order. Under CLIP every move starts
// with bucket key zero, but the zero bucket is seeded in ascending
// actual-gain order so that the LIFO head — the pass's anchor move — is the
// highest-actual-gain move, per Dutt and Deng.
func (e *kernel) initPass() {
	e.nodes.clearMembership()
	for q := range e.buckets {
		e.buckets[q].resetHeads()
	}
	// Reset the per-pass net records to the immovable pins: every pass
	// starts with exactly the fixed terminals locked and every movable pin
	// unlocked. One sequential walk; the arrays are all dense.
	k := e.k
	S := e.nsStride
	for en := 0; en < e.h.NumNets(); en++ {
		st := en * S
		copy(e.passNet[st:st+k], e.fixedLocked[en*k:(en+1)*k])
		e.passNet[st+k] = e.movablePins[en]
		e.passNet[st+k+1] = e.fixedCover[en]
	}
	clip := e.cfg.Policy == CLIP
	order := e.sc.order[:0]
	for v := 0; v < e.h.NumVertices(); v++ {
		if !e.movable[v] {
			continue
		}
		e.locked[v] = false
		from := int(e.a[v])
		for _, t8 := range e.model.targets(int32(v)) {
			t := int(t8)
			if t == from {
				continue
			}
			mid := int32(v*k + t)
			g := e.model.moveGain(int32(v), t)
			e.gk[2*mid] = g
			if clip {
				// sortGain is a dense per-mid copy just for the seeding
				// sort: the comparator gathers half the memory span it
				// would over the interleaved gain/key pairs.
				e.sortGain[mid] = g
			}
			order = append(order, mid)
		}
	}
	if clip {
		sort.Slice(order, func(i, j int) bool { return e.sortGain[order[i]] < e.sortGain[order[j]] })
	}
	for _, mid := range order {
		if clip {
			e.gk[2*mid+1] = 0
		} else {
			e.gk[2*mid+1] = e.gk[2*mid]
		}
		e.buckets[e.a[mid/int32(k)]].insert(mid, e.gk[2*mid+1])
	}
	e.sc.order = order
}

// bucketScanCap bounds how many infeasible moves we examine per bucket
// before skipping to the next gain level; this keeps selection cheap when a
// part sits at its balance boundary.
const bucketScanCap = 8

// selectMove picks the highest-key feasible move, scanning parts in
// decreasing first-resource weight (ties by lower part index) so that ties
// favour the balance-improving direction. Returns -1 when no feasible move
// exists.
func (e *kernel) selectMove() int32 {
	k := e.k
	po := e.partOrder
	for q := 0; q < k; q++ {
		po[q] = int32(q)
		for i := q; i > 0 && e.weight[po[i]][0] > e.weight[po[i-1]][0]; i-- {
			po[i], po[i-1] = po[i-1], po[i]
		}
	}
	best := int32(-1)
	bestKey := int64(math.MinInt64)
	for _, q := range po {
		b := &e.buckets[q]
		if b.empty() {
			continue
		}
		idx := b.settleMax()
		for idx >= 0 {
			key := int64(idx - b.offset)
			if best >= 0 && key <= bestKey {
				break
			}
			misses := 0
			for mid := b.head[idx]; mid >= 0; mid = e.nodes.next(mid) {
				v := mid / int32(k)
				t := int(mid) % k
				if e.model.feasibleMove(v, t) {
					best, bestKey = mid, key
					break
				}
				if misses++; misses >= bucketScanCap {
					break
				}
			}
			idx--
		}
	}
	return best
}

// lockTrackMinPins is the smallest net size the locked-net counters track.
// Below it the skip can never pay for its own bookkeeping: the dedicated 2-
// and 3-pin paths already cost less than the two extra cache lines per
// (net, move) the counters touch, and a 2-pin net cannot become covered
// mid-pass at all (covering both endpoints' parts needs two locked pins, but
// the net is only ever processed through a still-unlocked pin).
const lockTrackMinPins = 4

// applyMove moves v to part t, locks it, and updates affected move gains via
// the k-way critical-net rules (which reduce to the classic FM rules when
// k = 2). It is net-state-aware:
//
//   - A net of >= lockTrackMinPins pins whose locked pins already cover every
//     part is skipped without scanning its pins: Φ(q) >= 1 for all q rules out
//     the "part joins/leaves the net" cases, and any Φ(q) == 1 pin is itself
//     locked, so the criticality cases would only reach locked pins. Only the
//     Φ and locked-pin counters are shifted.
//   - 2-pin and 3-pin nets take dedicated paths that branch directly on the
//     other pins' parts instead of running the generic Φ-switch twice.
//   - Gain deltas go through touch(), which defers the bucket repositioning;
//     each touched move id is repositioned exactly once at the end.
func (e *kernel) applyMove(v int32, t int) {
	h := e.h
	k := e.k
	from := int(e.a[v])
	e.locked[v] = true
	for x := 0; x < k; x++ {
		e.buckets[from].remove(v*int32(k) + int32(x))
	}
	e.touchLog = e.touchLog[:0]
	S := e.nsStride
	for _, en := range h.NetsOf(int(v)) {
		base := int(en) * k
		st := int(en) * S
		ns := e.passNet[st : st+S : st+S]
		// v locks now. If it was the net's last unlocked movable pin, every
		// gain delta would land on a locked or immovable pin — both out of
		// the buckets — so only Φ shifts. The skip decisions and the
		// locked-pin bookkeeping below all hit the net's one packed record,
		// so a skipped net costs the record's line plus the Φ row it shifts.
		un := ns[k] - 1
		ns[k] = un
		if un == 0 {
			preT := e.pinCount[base+t]
			e.pinCount[base+from]--
			e.pinCount[base+t]++
			e.netsSkipped++
			// Count the pin traversals the incremental scheme executes for
			// this net: one full scan per critical Φ case (t joining or nearly
			// joined pre-move, from left or nearly left post-move).
			sz := int64(h.NetSize(int(en)))
			if preT <= 1 {
				e.pinScansAvoided += sz
			}
			if e.pinCount[base+from] <= 1 {
				e.pinScansAvoided += sz
			}
			continue
		}
		size := h.NetSize(int(en))
		tracked := size >= lockTrackMinPins
		// Evaluate coverage before adding v's own lock contribution at t.
		if tracked && int(ns[k+1]) == k {
			preT := e.pinCount[base+t]
			e.pinCount[base+from]--
			e.pinCount[base+t]++
			ns[t]++ // cover already includes t
			e.netsSkipped++
			// Coverage bounds Φ(t) >= 1 and post-move Φ(from) >= 1, so only
			// the two "== 1" critical cases can charge traversals here.
			if preT == 1 {
				e.pinScansAvoided += int64(size)
			}
			if e.pinCount[base+from] == 1 {
				e.pinScansAvoided += int64(size)
			}
			continue
		}
		w := h.NetWeight(int(en))
		pins := h.Pins(int(en))
		preT := e.pinCount[base+t]
		switch size {
		case 2:
			u := pins[0]
			if u == v {
				u = pins[1]
			}
			uk := u * int32(k)
			switch int(e.a[u]) {
			case t:
				// v joins u: the net leaves the cut entirely.
				e.deltaAll(u, -w)
				e.pinCount[base+from]--
				e.pinCount[base+t]++
				e.touch(uk+int32(from), -w)
			case from:
				// v leaves u behind: the net enters the cut.
				e.touch(uk+int32(t), w)
				e.pinCount[base+from]--
				e.pinCount[base+t]++
				e.deltaAll(u, w)
			default:
				// Cut either way (k >= 3): only u's t/from moves shift.
				e.touch(uk+int32(t), w)
				e.pinCount[base+from]--
				e.pinCount[base+t]++
				e.touch(uk+int32(from), -w)
			}
		case 3:
			var u1, u2 int32
			switch v {
			case pins[0]:
				u1, u2 = pins[1], pins[2]
			case pins[1]:
				u1, u2 = pins[0], pins[2]
			default:
				u1, u2 = pins[0], pins[1]
			}
			switch e.pinCount[base+t] {
			case 0:
				e.touch(u1*int32(k)+int32(t), w)
				e.touch(u2*int32(k)+int32(t), w)
			case 1:
				if int(e.a[u1]) == t {
					e.deltaAll(u1, -w)
				} else if int(e.a[u2]) == t {
					e.deltaAll(u2, -w)
				}
			}
			e.pinCount[base+from]--
			e.pinCount[base+t]++
			switch e.pinCount[base+from] {
			case 0:
				e.touch(u1*int32(k)+int32(from), -w)
				e.touch(u2*int32(k)+int32(from), -w)
			case 1:
				if int(e.a[u1]) == from {
					e.deltaAll(u1, w)
				} else if int(e.a[u2]) == from {
					e.deltaAll(u2, w)
				}
			}
		default:
			// Generic Φ-switch. Before the move:
			switch e.pinCount[base+t] {
			case 0:
				// Part t joins the net: moves toward t stop adding a part.
				for _, u := range pins {
					e.touch(u*int32(k)+int32(t), w)
				}
			case 1:
				// The lone t pin stops being critical for leaving t.
				for _, u := range pins {
					if u != v && int(e.a[u]) == t {
						e.deltaAll(u, -w)
					}
				}
			}
			e.pinCount[base+from]--
			e.pinCount[base+t]++
			// After the move:
			switch e.pinCount[base+from] {
			case 0:
				// Part from left the net: moves toward from now add a part.
				for _, u := range pins {
					e.touch(u*int32(k)+int32(from), -w)
				}
			case 1:
				// The lone remaining from pin became critical.
				for _, u := range pins {
					if u != v && int(e.a[u]) == from {
						e.deltaAll(u, w)
					}
				}
			}
		}
		// Charge the executed traversals under the same accounting the skip
		// paths use for avoided ones (the 2-/3-pin paths are charged as if
		// they scanned, so the reduction counters never credit them).
		if preT <= 1 {
			e.pinsScanned += int64(size)
		}
		if e.pinCount[base+from] <= 1 {
			e.pinsScanned += int64(size)
		}
		// v is now a locked pin of this net in part t.
		if tracked {
			if ns[t] == 0 {
				ns[k+1]++
			}
			ns[t]++
		}
	}
	e.flushTouches()
	e.model.moveVertex(v, from, t)
}

// touch adjusts the gain of move id mid if it is live (present in a bucket)
// and logs it for deferred repositioning. Bucket membership subsumes the old
// per-delta guard: initPass inserts exactly the movable, mask-allowed,
// non-current-part moves, and the only mid-pass removals are lock-time, so
// inIdx >= 0 ⟺ "unlocked ∧ movable ∧ t ≠ a(u) ∧ mask allows t".
func (e *kernel) touch(mid int32, d int64) {
	if e.nodes.in(mid) < 0 {
		return
	}
	e.gk[2*mid] += d
	e.gk[2*mid+1] += d
	e.lastPos[mid] = int32(len(e.touchLog))
	e.touchLog = append(e.touchLog, mid)
}

// deltaAll adjusts the gains of every move of u (its from-side criticality
// changed), iterating u's CSR target row in ascending part order like the
// original 0..k mask loop.
func (e *kernel) deltaAll(u int32, d int64) {
	if e.locked[u] {
		return
	}
	base := u * int32(e.k)
	for _, t := range e.targets(u) {
		mid := base + int32(t)
		if e.nodes.in(mid) < 0 {
			continue
		}
		e.gk[2*mid] += d
		e.gk[2*mid+1] += d
		e.lastPos[mid] = int32(len(e.touchLog))
		e.touchLog = append(e.touchLog, mid)
	}
}

// flushTouches repositions every move id touched during the current
// applyMove exactly once. The incremental scheme repositions on every delta,
// and each repositioning re-inserts at the head of the (possibly same)
// bucket list, so the final relative order of the touched mids is the
// chronological order of their LAST touches — later-touched mids sit closer
// to the head. One forward pass over the log, repositioning each mid only at
// the position its lastPos stamp names, replays exactly that order and
// reproduces the incremental bucket state byte for byte, including for mids
// whose net delta is zero: their head-ward shift still changes LIFO
// tie-breaking.
func (e *kernel) flushTouches() {
	k := int32(e.k)
	dups := 0
	for i, mid := range e.touchLog {
		if e.lastPos[mid] != int32(i) {
			dups++
			continue
		}
		e.buckets[e.a[mid/k]].update(mid, e.gk[2*mid+1])
	}
	e.bucketUpdatesSaved += int64(dups)
}
