package fm

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestGainBucketsBasic(t *testing.T) {
	b := newGainBuckets(8, 10)
	if !b.empty() {
		t.Fatal("new buckets not empty")
	}
	b.insert(3, 5)
	b.insert(4, 5)
	b.insert(5, -2)
	if b.empty() || b.count != 3 {
		t.Fatalf("count = %d", b.count)
	}
	// LIFO at equal key: vertex 4 inserted last sits at the head.
	idx := b.settleMax()
	if got := int64(idx - b.offset); got != 5 {
		t.Fatalf("max key = %d, want 5", got)
	}
	if b.head[idx] != 4 {
		t.Errorf("head = %d, want 4 (LIFO)", b.head[idx])
	}
	b.remove(4)
	if b.head[idx] != 3 {
		t.Errorf("after remove head = %d, want 3", b.head[idx])
	}
	b.remove(3)
	if got := int64(b.settleMax() - b.offset); got != -2 {
		t.Errorf("max after removals = %d, want -2", got)
	}
	b.remove(5)
	if !b.empty() {
		t.Error("should be empty")
	}
	if b.settleMax() >= 0 {
		t.Error("settleMax on empty should be negative")
	}
}

func TestGainBucketsUpdateMovesVertex(t *testing.T) {
	b := newGainBuckets(4, 10)
	b.insert(0, 1)
	b.insert(1, 1)
	b.update(0, 7)
	if got := int64(b.settleMax() - b.offset); got != 7 {
		t.Fatalf("max = %d, want 7", got)
	}
	if b.head[b.settleMax()] != 0 {
		t.Error("vertex 0 not at new key")
	}
	// Vertex 1 remains alone at key 1.
	b.remove(0)
	if got := int64(b.settleMax() - b.offset); got != 1 {
		t.Errorf("max = %d, want 1", got)
	}
}

func TestGainBucketsClamp(t *testing.T) {
	b := newGainBuckets(2, 4)
	b.insert(0, 1_000_000)
	b.insert(1, -1_000_000)
	if got := int64(b.settleMax() - b.offset); got != 4 {
		t.Errorf("clamped max = %d, want 4", got)
	}
	b.remove(0)
	if got := int64(b.settleMax() - b.offset); got != -4 {
		t.Errorf("clamped min = %d, want -4", got)
	}
}

func TestGainBucketsRemoveAbsentIsNoop(t *testing.T) {
	b := newGainBuckets(2, 4)
	b.remove(1) // never inserted
	if b.count != 0 {
		t.Error("count changed")
	}
	b.insert(0, 2)
	b.remove(0)
	b.remove(0) // double remove
	if b.count != 0 {
		t.Errorf("count = %d", b.count)
	}
}

func TestGainBucketsReset(t *testing.T) {
	b := newGainBuckets(4, 4)
	b.insert(0, 1)
	b.insert(1, 2)
	b.reset()
	if !b.empty() || b.settleMax() >= 0 {
		t.Error("reset did not clear")
	}
	b.insert(2, 3)
	if got := int64(b.settleMax() - b.offset); got != 3 {
		t.Errorf("post-reset insert broken: %d", got)
	}
}

// TestGainBucketsModel drives the structure against a map-based model.
func TestGainBucketsModel(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 61))
		const n = 24
		b := newGainBuckets(n, 12)
		model := map[int32]int64{}
		for op := 0; op < 200; op++ {
			v := int32(rng.IntN(n))
			switch rng.IntN(3) {
			case 0: // insert/update
				key := int64(rng.IntN(25) - 12)
				if _, in := model[v]; in {
					b.update(v, key)
				} else {
					b.insert(v, key)
				}
				model[v] = key
			case 1: // remove
				b.remove(v)
				delete(model, v)
			case 2: // check max
				idx := b.settleMax()
				if len(model) == 0 {
					if idx >= 0 && b.head[idx] >= 0 {
						return false
					}
					continue
				}
				var want int64 = -1 << 62
				for _, k := range model {
					if k > want {
						want = k
					}
				}
				if int64(idx-b.offset) != want {
					return false
				}
			}
			if b.count != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
