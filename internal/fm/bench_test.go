package fm_test

import (
	"math/rand/v2"
	"testing"

	"repro/internal/fm"
	"repro/internal/gen"
	"repro/internal/partition"
)

func benchProblem(b *testing.B) *partition.Problem {
	b.Helper()
	pr, err := gen.PresetByName("IBM01S")
	if err != nil {
		b.Fatal(err)
	}
	nl, err := gen.Generate(pr.Params.Scaled(0.2))
	if err != nil {
		b.Fatal(err)
	}
	return partition.NewBipartition(nl.H, 0.02)
}

func benchFlat(b *testing.B, cfg fm.Config) {
	p := benchProblem(b)
	rng := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fm.RunFromRandom(p, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlatLIFO(b *testing.B) { benchFlat(b, fm.Config{Policy: fm.LIFO}) }
func BenchmarkFlatCLIP(b *testing.B) { benchFlat(b, fm.Config{Policy: fm.CLIP}) }

func BenchmarkFlatLIFOCutoff5(b *testing.B) {
	benchFlat(b, fm.Config{Policy: fm.LIFO, MaxPassFraction: 0.05})
}

func BenchmarkKWayFM4(b *testing.B) {
	pr, err := gen.PresetByName("IBM01S")
	if err != nil {
		b.Fatal(err)
	}
	nl, err := gen.Generate(pr.Params.Scaled(0.2))
	if err != nil {
		b.Fatal(err)
	}
	p := partition.NewFree(nl.H, 4, 0.05)
	rng := rand.New(rand.NewPCG(2, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		initial, err := partition.RandomFeasible(p, rng)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fm.KWayPartition(p, initial, fm.Config{Policy: fm.LIFO}); err != nil {
			b.Fatal(err)
		}
	}
}
