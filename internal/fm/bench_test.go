package fm_test

import (
	"math/rand/v2"
	"testing"

	"repro/internal/fm"
	"repro/internal/gen"
	"repro/internal/partition"
)

func benchProblem(b *testing.B) *partition.Problem {
	b.Helper()
	pr, err := gen.PresetByName("IBM01S")
	if err != nil {
		b.Fatal(err)
	}
	nl, err := gen.Generate(pr.Params.Scaled(0.2))
	if err != nil {
		b.Fatal(err)
	}
	return partition.NewBipartition(nl.H, 0.02)
}

func benchFlat(b *testing.B, cfg fm.Config) {
	p := benchProblem(b)
	rng := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fm.RunFromRandom(p, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlatLIFO(b *testing.B) { benchFlat(b, fm.Config{Policy: fm.LIFO}) }
func BenchmarkFlatCLIP(b *testing.B) { benchFlat(b, fm.Config{Policy: fm.CLIP}) }

func BenchmarkFlatLIFOCutoff5(b *testing.B) {
	benchFlat(b, fm.Config{Policy: fm.LIFO, MaxPassFraction: 0.05})
}

func BenchmarkKWayFM4(b *testing.B) {
	pr, err := gen.PresetByName("IBM01S")
	if err != nil {
		b.Fatal(err)
	}
	nl, err := gen.Generate(pr.Params.Scaled(0.2))
	if err != nil {
		b.Fatal(err)
	}
	p := partition.NewFree(nl.H, 4, 0.05)
	rng := rand.New(rand.NewPCG(2, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		initial, err := partition.RandomFeasible(p, rng)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fm.KWayPartition(p, initial, fm.Config{Policy: fm.LIFO}); err != nil {
			b.Fatal(err)
		}
	}
}

// Scratch-reuse benchmarks: the same pass over the same initial solution,
// once allocating fresh per-run state each iteration and once reusing a
// single Scratch. The allocs/op gap is the cost the sync.Pool in Bipartition
// removes from multistart loops.

func benchInitial(b *testing.B, p *partition.Problem) partition.Assignment {
	b.Helper()
	initial, err := partition.RandomFeasible(p, rand.New(rand.NewPCG(3, 3)))
	if err != nil {
		b.Fatal(err)
	}
	return initial
}

func BenchmarkBipartitionFreshScratch(b *testing.B) {
	p := benchProblem(b)
	initial := benchInitial(b, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fm.BipartitionWith(p, initial, fm.Config{Policy: fm.CLIP}, fm.NewScratch()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBipartitionReusedScratch(b *testing.B) {
	p := benchProblem(b)
	initial := benchInitial(b, p)
	sc := fm.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fm.BipartitionWith(p, initial, fm.Config{Policy: fm.CLIP}, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBipartitionPooled(b *testing.B) {
	p := benchProblem(b)
	initial := benchInitial(b, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fm.Bipartition(p, initial, fm.Config{Policy: fm.CLIP}); err != nil {
			b.Fatal(err)
		}
	}
}
