package fm_test

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/fm"
	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// TestParallelRefineWorkerInvariance is the determinism contract of the
// synchronous-round engine at the fm level: for a fixed salt, every worker
// count — 1 included — must commit the identical move sequence and return the
// identical assignment, on random fixed-vertex problems across k, weights and
// masks. Run under -race in CI, which also exercises the concurrent propose
// and dirty-marking phases.
func TestParallelRefineWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x9a11e1, 1))
	trials := 0
	for trials < 30 {
		p, initial, ok := diffProblem(rng)
		if !ok {
			continue
		}
		trials++
		salt := rng.Uint64()
		cfg := fm.Config{}
		if trials%2 == 0 {
			cfg.Objective = fm.ObjectiveKM1
		}
		want, err := fm.ParallelRefine(p, initial, cfg, 1, salt)
		if err != nil {
			t.Fatalf("trial %d: workers=1: %v", trials, err)
		}
		for _, workers := range []int{2, 4, 8} {
			got, err := fm.ParallelRefine(p, initial, cfg, workers, salt)
			if err != nil {
				t.Fatalf("trial %d: workers=%d: %v", trials, workers, err)
			}
			if !reflect.DeepEqual(got.Assignment, want.Assignment) {
				t.Fatalf("trial %d: workers=%d assignment diverges from workers=1", trials, workers)
			}
			if got.Rounds != want.Rounds || got.Moves != want.Moves || got.Gain != want.Gain {
				t.Fatalf("trial %d: workers=%d rounds/moves/gain %d/%d/%d, workers=1 %d/%d/%d",
					trials, workers, got.Rounds, got.Moves, got.Gain, want.Rounds, want.Moves, want.Gain)
			}
		}
	}
}

// TestParallelRefineImproves checks the engine's accounting and invariants on
// random problems: the result is feasible, never worse than the input under
// (λ-1) connectivity, Gain equals the measured connectivity reduction, and
// the input assignment is untouched.
func TestParallelRefineImproves(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x9a11e1, 2))
	trials := 0
	improved := 0
	for trials < 40 {
		p, initial, ok := diffProblem(rng)
		if !ok {
			continue
		}
		trials++
		before := initial.Clone()
		km1In := partition.KMinus1(p.H, initial)
		res, err := fm.ParallelRefine(p, initial, fm.Config{}, 3, rng.Uint64())
		if err != nil {
			t.Fatalf("trial %d: %v", trials, err)
		}
		if !reflect.DeepEqual(initial, before) {
			t.Fatalf("trial %d: input assignment was modified", trials)
		}
		if err := p.Feasible(res.Assignment); err != nil {
			t.Fatalf("trial %d: infeasible result: %v", trials, err)
		}
		km1Out := partition.KMinus1(p.H, res.Assignment)
		if km1Out > km1In {
			t.Fatalf("trial %d: connectivity worsened: %d -> %d", trials, km1In, km1Out)
		}
		if got := km1In - km1Out; got != res.Gain {
			t.Fatalf("trial %d: Gain %d, measured reduction %d", trials, res.Gain, got)
		}
		if res.Gain > 0 {
			improved++
		}
	}
	if improved == 0 {
		t.Error("no trial improved its random initial assignment (engine inert?)")
	}
}

// TestParallelRefineAllFixed: with every vertex a fixed terminal the engine
// must return the input unchanged in a single empty round.
func TestParallelRefineAllFixed(t *testing.T) {
	b := hypergraph.NewBuilder(1)
	for v := 0; v < 8; v++ {
		b.AddVertex(1)
	}
	for e := 0; e < 6; e++ {
		b.AddNet(e, (e+1)%8, (e+3)%8)
	}
	p := partition.NewBipartition(b.MustBuild(), 0.5)
	for v := 0; v < 8; v++ {
		p.Fix(v, v%2)
	}
	initial, err := partition.RandomFeasible(p, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fm.ParallelRefine(p, initial, fm.Config{}, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 0 || res.Gain != 0 || res.Movable != 0 {
		t.Errorf("all-fixed problem: moves=%d gain=%d movable=%d, want zeros", res.Moves, res.Gain, res.Movable)
	}
	if !reflect.DeepEqual(res.Assignment, initial) {
		t.Error("all-fixed problem: assignment changed")
	}
}

// TestParallelRefineThenPolish mirrors the multilevel composition — rounds
// first, serial FM polish after, on one leased scratch — and checks the
// polish never undoes the rounds' progress (the combined result is at least
// as good as either stage alone under the run objective).
func TestParallelRefineThenPolish(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x9a11e1, 3))
	sc := fm.NewScratch()
	trials := 0
	for trials < 20 {
		p, initial, ok := diffProblem(rng)
		if !ok {
			continue
		}
		trials++
		salt := rng.Uint64()
		rounds, err := fm.ParallelRefineWith(p, initial, fm.Config{}, 4, salt, sc)
		if err != nil {
			t.Fatalf("trial %d: rounds: %v", trials, err)
		}
		polished, err := fm.KWayPartitionWith(p, rounds.Assignment, fm.Config{Policy: fm.CLIP}, sc)
		if err != nil {
			t.Fatalf("trial %d: polish: %v", trials, err)
		}
		if err := p.Feasible(polished.Assignment); err != nil {
			t.Fatalf("trial %d: polish result infeasible: %v", trials, err)
		}
		if after, mid := partition.KMinus1(p.H, polished.Assignment), partition.KMinus1(p.H, rounds.Assignment); after > mid {
			t.Fatalf("trial %d: polish worsened connectivity %d -> %d", trials, mid, after)
		}
	}
}

// BenchmarkParallelRefineRounds is a micro-benchmark of the round engine in
// isolation (the end-to-end refinement-phase benchmark lives at the repo
// root); it keeps a representative problem shape resident for profiling.
func BenchmarkParallelRefineRounds(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 9))
	nv := 4000
	hb := hypergraph.NewBuilder(1)
	for v := 0; v < nv; v++ {
		hb.AddVertex(int64(1 + rng.IntN(3)))
	}
	for e := 0; e < 2*nv; e++ {
		sz := 2 + rng.IntN(5)
		hb.AddNet(rng.Perm(nv)[:sz]...)
	}
	p := partition.NewBipartition(hb.MustBuild(), 0.1)
	initial, err := partition.RandomFeasible(p, rng)
	if err != nil {
		b.Fatal(err)
	}
	sc := fm.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fm.ParallelRefineWith(p, initial, fm.Config{}, 4, 42, sc); err != nil {
			b.Fatal(err)
		}
	}
}
