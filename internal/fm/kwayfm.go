package fm

import (
	"fmt"

	"repro/internal/partition"
)

// KWayResult is the outcome of a direct k-way FM run.
type KWayResult struct {
	Assignment partition.Assignment
	// Cut is the weighted net-cut of Assignment (nets spanning > 1 part).
	Cut int64
	// KMinus1 is the connectivity ledger the kernel's passes track.
	KMinus1 int64
	// Score is Assignment evaluated under the run's Objective (== Cut for
	// ObjectiveCut, == KMinus1 for ObjectiveKM1), the number multistart and
	// V-cycle drivers select by.
	Score int64
	// Objective is the metric the run optimized (Config.Objective).
	Objective Objective
	Passes    []PassStats
	// Movable is the number of vertices with at least two allowed parts.
	Movable int
}

// KWayPartition refines a feasible k-way assignment with direct k-way FM in
// the style of Sanchis: every (vertex, target part) move has its own gain
// bucket entry, gains measure the (lambda-1) connectivity delta, passes lock
// each vertex after its first move and roll back to the best prefix, and the
// Config's policy (LIFO or CLIP), pass cutoff and stall cutoff apply as in
// bipartitioning. Fixed vertices and OR-region masks are honoured. Working
// state comes from an internal sync.Pool; use KWayPartitionWith to manage
// the Scratch explicitly.
func KWayPartition(p *partition.Problem, initial partition.Assignment, cfg Config) (*KWayResult, error) {
	sc := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(sc)
	return KWayPartitionWith(p, initial, cfg, sc)
}

// KWayPartitionWith is KWayPartition running on a caller-provided Scratch.
// It drives the same part-count-generic kernel as BipartitionWith — at k = 2
// the two produce identical refinements — and never aliases scratch memory
// in its result.
func KWayPartitionWith(p *partition.Problem, initial partition.Assignment, cfg Config, sc *Scratch) (*KWayResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.Feasible(initial); err != nil {
		return nil, fmt.Errorf("fm: initial assignment: %w", err)
	}
	if cfg.MaxPassFraction < 0 || cfg.MaxPassFraction > 1 {
		return nil, fmt.Errorf("fm: MaxPassFraction %v outside [0,1]", cfg.MaxPassFraction)
	}
	e := newKernel(p, initial, cfg, sc)
	r := e.run()
	return &KWayResult{
		Assignment: r.a,
		Cut:        partition.Cut(p.H, r.a),
		KMinus1:    r.obj,
		Score:      r.score,
		Objective:  cfg.Objective,
		Passes:     r.passes,
		Movable:    r.movable,
	}, nil
}
