package fm

import (
	"fmt"
	"sort"

	"repro/internal/partition"
)

// KWayResult is the outcome of a direct k-way FM run.
type KWayResult struct {
	Assignment partition.Assignment
	// Cut is the weighted net-cut of Assignment (nets spanning > 1 part).
	Cut int64
	// KMinus1 is the connectivity objective the engine optimizes.
	KMinus1 int64
	Passes  []PassStats
	// Movable is the number of vertices with at least two allowed parts.
	Movable int
}

// KWayPartition refines a feasible k-way assignment with direct k-way FM in
// the style of Sanchis: every (vertex, target part) move has its own gain
// bucket entry, gains measure the (lambda-1) connectivity delta, passes lock
// each vertex after its first move and roll back to the best prefix, and the
// Config's policy (LIFO or CLIP) and pass cutoff apply as in bipartitioning.
// Fixed vertices and OR-region masks are honoured.
func KWayPartition(p *partition.Problem, initial partition.Assignment, cfg Config) (*KWayResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.Feasible(initial); err != nil {
		return nil, fmt.Errorf("fm: initial assignment: %w", err)
	}
	if cfg.MaxPassFraction < 0 || cfg.MaxPassFraction > 1 {
		return nil, fmt.Errorf("fm: MaxPassFraction %v outside [0,1]", cfg.MaxPassFraction)
	}
	e := newKWayEngine(p, initial, cfg)
	return e.run(), nil
}

// kwayEngine holds per-run state. Move ids are v*K + t.
type kwayEngine struct {
	p   *partition.Problem
	cfg Config
	k   int

	a        partition.Assignment
	pinCount []int32 // pinCount[e*k+q]
	weight   [][]int64
	movable  []bool
	locked   []bool
	gain     []int64 // per move id
	key      []int64 // per move id
	buckets  *gainBuckets
	nMovable int
}

func newKWayEngine(p *partition.Problem, initial partition.Assignment, cfg Config) *kwayEngine {
	h := p.H
	k := p.K
	nv := h.NumVertices()
	nr := h.NumResources()
	e := &kwayEngine{
		p:        p,
		cfg:      cfg,
		k:        k,
		a:        initial.Clone(),
		pinCount: make([]int32, h.NumNets()*k),
		weight:   make([][]int64, k),
		movable:  make([]bool, nv),
		locked:   make([]bool, nv),
		gain:     make([]int64, nv*k),
		key:      make([]int64, nv*k),
	}
	for q := 0; q < k; q++ {
		e.weight[q] = make([]int64, nr)
	}
	for en := 0; en < h.NumNets(); en++ {
		for _, v := range h.Pins(en) {
			e.pinCount[en*k+int(e.a[v])]++
		}
	}
	all := partition.AllParts(k)
	for v := 0; v < nv; v++ {
		for r := 0; r < nr; r++ {
			e.weight[e.a[v]][r] += h.WeightIn(v, r)
		}
		if p.MaskOf(v).Intersect(all).Count() >= 2 {
			e.movable[v] = true
			e.nMovable++
		}
	}
	var maxAdj int64 = 1
	for v := 0; v < nv; v++ {
		if !e.movable[v] {
			continue
		}
		var s int64
		for _, en := range h.NetsOf(v) {
			s += h.NetWeight(int(en))
		}
		if 2*s > maxAdj {
			maxAdj = 2 * s
		}
	}
	const maxBucketSpan = 1 << 21
	if maxAdj > maxBucketSpan {
		maxAdj = maxBucketSpan
	}
	e.buckets = newGainBuckets(nv*k, int32(maxAdj))
	return e
}

func (e *kwayEngine) run() *KWayResult {
	res := &KWayResult{Movable: e.nMovable}
	obj := partition.KMinus1(e.p.H, e.a)
	if e.nMovable == 0 {
		res.Assignment = e.a
		res.KMinus1 = obj
		res.Cut = partition.Cut(e.p.H, e.a)
		return res
	}
	type move struct {
		v int32
		f int8 // original part
	}
	var log []move
	maxPasses := e.cfg.maxPasses()
	for pass := 0; pass < maxPasses; pass++ {
		limit := e.nMovable
		if pass > 0 && e.cfg.MaxPassFraction > 0 && e.cfg.MaxPassFraction < 1 {
			limit = int(e.cfg.MaxPassFraction * float64(e.nMovable))
			if limit < 1 {
				limit = 1
			}
		}
		e.initPass()
		log = log[:0]
		var cum, bestCum int64
		bestIdx := 0
		for len(log) < limit {
			mid := e.selectMove()
			if mid < 0 {
				break
			}
			v := int32(mid / e.k)
			t := mid % e.k
			g := e.gain[mid]
			from := e.a[v]
			e.applyMove(v, t)
			cum += g
			log = append(log, move{v: v, f: from})
			if cum > bestCum {
				bestCum = cum
				bestIdx = len(log)
			}
		}
		for i := len(log) - 1; i >= bestIdx; i-- {
			e.undoMove(log[i].v, int(log[i].f))
		}
		res.Passes = append(res.Passes, PassStats{Moves: len(log), Kept: bestIdx, Gain: bestCum})
		obj -= bestCum
		if bestCum <= 0 {
			break
		}
	}
	res.Assignment = e.a
	res.KMinus1 = obj
	res.Cut = partition.Cut(e.p.H, e.a)
	return res
}

// moveGain computes the lambda-1 delta of moving v to part t from scratch.
func (e *kwayEngine) moveGain(v int32, t int) int64 {
	h := e.p.H
	from := int(e.a[v])
	var g int64
	for _, en := range h.NetsOf(int(v)) {
		w := h.NetWeight(int(en))
		if e.pinCount[int(en)*e.k+from] == 1 {
			g += w
		}
		if e.pinCount[int(en)*e.k+t] == 0 {
			g -= w
		}
	}
	return g
}

func (e *kwayEngine) initPass() {
	e.buckets.reset()
	nv := e.p.H.NumVertices()
	type seeded struct {
		mid  int32
		gain int64
	}
	var order []seeded
	for v := 0; v < nv; v++ {
		if !e.movable[v] {
			continue
		}
		e.locked[v] = false
		mask := e.p.MaskOf(v)
		for t := 0; t < e.k; t++ {
			if t == int(e.a[v]) || !mask.Contains(t) {
				continue
			}
			mid := int32(v*e.k + t)
			g := e.moveGain(int32(v), t)
			e.gain[mid] = g
			order = append(order, seeded{mid, g})
		}
	}
	if e.cfg.Policy == CLIP {
		sort.Slice(order, func(i, j int) bool { return order[i].gain < order[j].gain })
	}
	for _, s := range order {
		if e.cfg.Policy == CLIP {
			e.key[s.mid] = 0
		} else {
			e.key[s.mid] = s.gain
		}
		e.buckets.insert(s.mid, e.key[s.mid])
	}
}

func (e *kwayEngine) feasibleMove(v int32, t int) bool {
	from := int(e.a[v])
	h := e.p.H
	for r := 0; r < h.NumResources(); r++ {
		w := h.WeightIn(int(v), r)
		if e.weight[from][r]-w < e.p.Balance.Min[from][r] {
			return false
		}
		if e.weight[t][r]+w > e.p.Balance.Max[t][r] {
			return false
		}
	}
	return true
}

func (e *kwayEngine) selectMove() int {
	b := e.buckets
	idx := b.settleMax()
	for idx >= 0 {
		misses := 0
		for m := b.head[idx]; m >= 0; m = b.next[m] {
			v := m / int32(e.k)
			t := int(m) % e.k
			if e.feasibleMove(v, t) {
				return int(m)
			}
			if misses++; misses >= bucketScanCap {
				break
			}
		}
		idx--
		// Keep scanning below the max; unlike the two-sided bipartition
		// case there is no second structure to fall back to.
	}
	return -1
}

// applyMove moves v to part t, locks it, and updates affected move gains via
// the k-way critical-net rules.
func (e *kwayEngine) applyMove(v int32, t int) {
	h := e.p.H
	from := int(e.a[v])
	e.locked[v] = true
	for x := 0; x < e.k; x++ {
		e.buckets.remove(v*int32(e.k) + int32(x))
	}
	for _, en := range h.NetsOf(int(v)) {
		w := h.NetWeight(int(en))
		pins := h.Pins(int(en))
		base := int(en) * e.k
		// Before the move.
		switch e.pinCount[base+t] {
		case 0:
			// Part t joins the net: moves toward t stop creating a new part.
			for _, u := range pins {
				e.deltaMove(u, t, w)
			}
		case 1:
			// The lone t pin stops being critical for leaving t.
			for _, u := range pins {
				if u != v && int(e.a[u]) == t {
					e.deltaAll(u, -w)
				}
			}
		}
		e.pinCount[base+from]--
		e.pinCount[base+t]++
		// After the move.
		switch e.pinCount[base+from] {
		case 0:
			// Part from left the net: moves toward from now create a part.
			for _, u := range pins {
				e.deltaMove(u, from, -w)
			}
		case 1:
			// The lone remaining from pin became critical.
			for _, u := range pins {
				if u != v && int(e.a[u]) == from {
					e.deltaAll(u, w)
				}
			}
		}
	}
	for r := 0; r < h.NumResources(); r++ {
		w := h.WeightIn(int(v), r)
		e.weight[from][r] -= w
		e.weight[t][r] += w
	}
	e.a[v] = int8(t)
}

// deltaMove adjusts the gain of u's move toward part t, if that move exists.
func (e *kwayEngine) deltaMove(u int32, t int, d int64) {
	if e.locked[u] || !e.movable[u] || int(e.a[u]) == t || !e.p.MaskOf(int(u)).Contains(t) {
		return
	}
	mid := u*int32(e.k) + int32(t)
	e.gain[mid] += d
	e.key[mid] += d
	e.buckets.update(mid, e.key[mid])
}

// deltaAll adjusts the gains of every move of u (its from-side criticality
// changed).
func (e *kwayEngine) deltaAll(u int32, d int64) {
	if e.locked[u] || !e.movable[u] {
		return
	}
	mask := e.p.MaskOf(int(u))
	for t := 0; t < e.k; t++ {
		if t == int(e.a[u]) || !mask.Contains(t) {
			continue
		}
		mid := u*int32(e.k) + int32(t)
		e.gain[mid] += d
		e.key[mid] += d
		e.buckets.update(mid, e.key[mid])
	}
}

// undoMove returns v to part f without gain maintenance.
func (e *kwayEngine) undoMove(v int32, f int) {
	h := e.p.H
	cur := int(e.a[v])
	for _, en := range h.NetsOf(int(v)) {
		base := int(en) * e.k
		e.pinCount[base+cur]--
		e.pinCount[base+f]++
	}
	for r := 0; r < h.NumResources(); r++ {
		w := h.WeightIn(int(v), r)
		e.weight[cur][r] -= w
		e.weight[f][r] += w
	}
	e.a[v] = int8(f)
}
