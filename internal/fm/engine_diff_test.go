package fm_test

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/fm"
	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// diffProblem draws a random fixed-vertex problem: random k, net sizes,
// weighted nets, multi-resource vertex weights, and a mix of free, fixed,
// and OR-region (two-part mask) vertices.
func diffProblem(rng *rand.Rand) (*partition.Problem, partition.Assignment, bool) {
	nv := 20 + rng.IntN(41)
	nr := 1 + rng.IntN(2)
	k := 2 + rng.IntN(4)
	b := hypergraph.NewBuilder(nr)
	for v := 0; v < nv; v++ {
		w := make([]int64, nr)
		for r := range w {
			w[r] = int64(1 + rng.IntN(4))
		}
		b.AddVertex(w...)
	}
	ne := nv + rng.IntN(2*nv)
	for e := 0; e < ne; e++ {
		sz := 2 + rng.IntN(5)
		if sz > nv {
			sz = nv
		}
		b.AddWeightedNet(int64(1+rng.IntN(3)), rng.Perm(nv)[:sz]...)
	}
	p := partition.NewFree(b.MustBuild(), k, 0.2+0.2*rng.Float64())
	for v := 0; v < nv; v++ {
		switch rng.IntN(5) {
		case 0: // fixed terminal
			p.Fix(v, rng.IntN(k))
		case 1: // OR region spanning two parts
			if k > 2 {
				a := rng.IntN(k)
				c := rng.IntN(k)
				for c == a {
					c = rng.IntN(k)
				}
				p.Restrict(v, partition.Single(a).With(c))
			}
		}
	}
	initial, err := partition.RandomFeasible(p, rng)
	if err != nil {
		return nil, nil, false
	}
	return p, initial, true
}

func diffConfig(rng *rand.Rand) fm.Config {
	cfg := fm.Config{Policy: fm.LIFO}
	if rng.IntN(2) == 1 {
		cfg.Policy = fm.CLIP
	}
	if rng.IntN(2) == 1 {
		cfg.MaxPassFraction = 0.25 + 0.5*rng.Float64()
	}
	if rng.IntN(3) == 0 {
		cfg.StallCutoff = 4 + rng.IntN(12)
	}
	return cfg
}

// TestKernelMatchesReference differentially tests the net-state-aware kernel
// against the frozen reference (reference.go) over random fixed-vertex
// problems: assignments, objectives, and per-pass statistics must all be
// identical — the rewrite is an optimization, not a behavioural change.
func TestKernelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xd1ff, 4))
	trials := 0
	for trials < 60 {
		p, initial, ok := diffProblem(rng)
		if !ok {
			continue
		}
		trials++
		cfg := diffConfig(rng)
		name := fmt.Sprintf("trial %d (k=%d %s)", trials, p.K, cfg.Policy)
		got, err := fm.KWayPartition(p, initial, cfg)
		if err != nil {
			t.Fatalf("%s: optimized: %v", name, err)
		}
		want, err := fm.KWayPartitionReference(p, initial, cfg)
		if err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		if !reflect.DeepEqual(got.Assignment, want.Assignment) {
			t.Fatalf("%s: assignments diverge", name)
		}
		if got.Cut != want.Cut || got.KMinus1 != want.KMinus1 {
			t.Fatalf("%s: cut %d/%d, want %d/%d", name, got.Cut, got.KMinus1, want.Cut, want.KMinus1)
		}
		if !reflect.DeepEqual(got.Passes, want.Passes) {
			t.Fatalf("%s: pass stats diverge:\n got %+v\nwant %+v", name, got.Passes, want.Passes)
		}
		if got.Movable != want.Movable {
			t.Fatalf("%s: movable %d, want %d", name, got.Movable, want.Movable)
		}
	}
}

// TestBipartitionMatchesReference repeats the differential test through the
// k=2 entry points, which the multilevel drivers use.
func TestBipartitionMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xd1ff, 2))
	trials := 0
	for trials < 40 {
		nv := 20 + rng.IntN(41)
		b := hypergraph.NewBuilder(1)
		for v := 0; v < nv; v++ {
			b.AddVertex(int64(1 + rng.IntN(4)))
		}
		for e := 0; e < 2*nv; e++ {
			sz := 2 + rng.IntN(4)
			b.AddNet(rng.Perm(nv)[:sz]...)
		}
		p := partition.NewBipartition(b.MustBuild(), 0.15)
		for v := 0; v < nv; v++ {
			if rng.IntN(4) == 0 {
				p.Fix(v, rng.IntN(2))
			}
		}
		initial, err := partition.RandomFeasible(p, rng)
		if err != nil {
			continue
		}
		trials++
		cfg := diffConfig(rng)
		got, err := fm.Bipartition(p, initial, cfg)
		if err != nil {
			t.Fatalf("trial %d: optimized: %v", trials, err)
		}
		want, err := fm.BipartitionReference(p, initial, cfg)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trials, err)
		}
		if !reflect.DeepEqual(got.Assignment, want.Assignment) || got.Cut != want.Cut {
			t.Fatalf("trial %d: diverged (cut %d vs %d)", trials, got.Cut, want.Cut)
		}
		if !reflect.DeepEqual(got.Passes, want.Passes) {
			t.Fatalf("trial %d: pass stats diverge", trials)
		}
	}
}
