package fm

import "sync"

// Scratch holds the reusable working state of the bipartition engine: gain
// and key arrays, lock/movable flags, per-side pin counts and part weights,
// the two gain-bucket structures, and the per-pass ordering and move-log
// slices. A Scratch can be reused across runs — including runs on different
// problems; every array is (re)sized and cleared at the start of a run — so
// repeated FM starts stop paying the engine's allocation cost.
//
// A Scratch must not be used by two runs concurrently. Results returned by
// the engine never alias scratch memory, so a Scratch may be released (or
// pooled) as soon as the run returns.
type Scratch struct {
	movable  []bool
	locked   []bool
	gain     []int64
	key      []int64
	pinCount [2][]int32
	weight   [2][]int64
	buckets  [2]gainBuckets
	order    []int32
	moveLog  []int32
}

// NewScratch returns an empty Scratch; arrays are allocated lazily on first
// use and retained between runs.
func NewScratch() *Scratch { return &Scratch{} }

// scratchPool caches Scratch values for callers of the non-With entry points
// (Bipartition, RunFromRandom). With a bounded worker pool upstream, each
// worker effectively keeps one warm Scratch, so repeated starts on the same
// problem allocate almost nothing.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// prepare sizes the vertex/net/resource arrays for a run and clears the
// state the engine accumulates into. The gain buckets are sized separately
// (by sizeBuckets) once the engine knows the key span.
func (s *Scratch) prepare(nv, ne, nr int) {
	s.movable = growBool(s.movable, nv)
	for i := range s.movable {
		s.movable[i] = false
	}
	s.locked = growBool(s.locked, nv)
	for i := range s.locked {
		s.locked[i] = false
	}
	// gain/key are fully rewritten by initPass before being read; only size.
	s.gain = growInt64(s.gain, nv)
	s.key = growInt64(s.key, nv)
	for side := 0; side < 2; side++ {
		s.pinCount[side] = growInt32(s.pinCount[side], ne)
		for i := range s.pinCount[side] {
			s.pinCount[side][i] = 0
		}
		s.weight[side] = growInt64(s.weight[side], nr)
		for i := range s.weight[side] {
			s.weight[side][i] = 0
		}
	}
	if cap(s.order) < nv {
		s.order = make([]int32, 0, nv)
	}
	s.order = s.order[:0]
	if cap(s.moveLog) < nv {
		s.moveLog = make([]int32, 0, nv)
	}
	s.moveLog = s.moveLog[:0]
}

// sizeBuckets (re)sizes both gain-bucket sides for nv vertices and the key
// span [-maxKey, maxKey], leaving them empty.
func (s *Scratch) sizeBuckets(nv int, maxKey int32) {
	s.buckets[0].resize(nv, maxKey)
	s.buckets[1].resize(nv, maxKey)
}

// growBool returns a length-n slice, reusing s's backing array when large
// enough. Contents are unspecified.
func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}
