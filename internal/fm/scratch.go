package fm

import (
	"sync"

	"repro/internal/partition"
)

// moveRec logs one applied move for best-prefix rollback: the vertex and the
// part it came from.
type moveRec struct {
	v    int32
	from int8
}

// Scratch holds the reusable working state of the FM kernel for any part
// count k: gain and key arrays (one slot per move id v*k+t), lock/movable
// flags, flattened per-net pin counts Φ(e, part), per-part weights, the k
// per-part gain-bucket structures over a shared node store, and the per-pass
// ordering and move-log slices. A Scratch can be reused across runs —
// including runs on different problems or different k; every array is
// (re)sized and cleared at the start of a run — so repeated FM starts stop
// paying the kernel's allocation cost.
//
// A Scratch must not be used by two runs concurrently. Results returned by
// the kernel never alias scratch memory, so a Scratch may be released (or
// pooled) as soon as the run returns.
type Scratch struct {
	movable   []bool
	locked    []bool
	gk        []int64   // interleaved gain/bucket-key pairs at 2*mid, 2*mid+1
	pinCount  []int32   // per (net, part) at e*k+q
	passNet   []int32   // packed per-pass net records, stride k+2 (see cutModel)
	weight    [][]int64 // [part][resource]
	nodes     bucketNodes
	buckets   []gainBuckets // one per part, sharing nodes
	order     []int32       // move ids in pass-seeding order
	moveLog   []moveRec
	partOrder []int32 // parts in selection-priority order

	// Net-state-aware kernel state.
	assign      partition.Assignment // working assignment (copied from initial)
	tgtOff      []int32              // CSR offsets into tgtList, one per vertex +1
	tgtList     []int8               // allowed target parts per movable vertex, ascending
	fixedLocked []int32              // immovable pins per (net, part) at e*k+q
	fixedCover  []int32              // parts with >= 1 immovable pin, per net
	movablePins []int32              // movable pins per net (constant per run)
	touchLog    []int32              // move ids whose gain changed during one applyMove
	lastPos     []int32              // per move id, its latest touchLog position (only entries stamped by the current applyMove are ever read)
	sortGain    []int64              // dense per-mid gain copy for CLIP's seeding sort
}

// NewScratch returns an empty Scratch; arrays are allocated lazily on first
// use and retained between runs.
func NewScratch() *Scratch { return &Scratch{} }

// scratchPool caches Scratch values for callers of the non-With entry points
// (Bipartition, KWayPartition, RunFromRandom). With a bounded worker pool
// upstream, each worker effectively keeps one warm Scratch, so repeated
// starts on the same problem allocate almost nothing.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// GetScratch leases a Scratch from the shared pool. Callers running many FM
// runs back to back (e.g. one multilevel descent: coarsest-level tries plus a
// refinement per level) hold one scratch across all of them via the *With
// entry points, then return it with PutScratch.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a leased Scratch to the shared pool. The scratch must
// not be used after the call.
func PutScratch(s *Scratch) { scratchPool.Put(s) }

// prepare sizes the vertex/net/resource/part arrays for a run and clears the
// state the kernel accumulates into. The gain buckets are sized separately
// (by sizeBuckets) once the kernel knows the key span.
func (s *Scratch) prepare(nv, ne, nr, k int) {
	s.movable = growBool(s.movable, nv)
	for i := range s.movable {
		s.movable[i] = false
	}
	s.locked = growBool(s.locked, nv)
	for i := range s.locked {
		s.locked[i] = false
	}
	// gain/key pairs are fully rewritten by initPass before being read; only
	// size.
	s.gk = growInt64(s.gk, 2*nv*k)
	s.pinCount = growInt32(s.pinCount, ne*k)
	for i := range s.pinCount {
		s.pinCount[i] = 0
	}
	// The packed per-pass records are overwritten from the fixed arrays at
	// every initPass, so only size them.
	s.passNet = growInt32(s.passNet, ne*(k+2))
	if cap(s.weight) < k {
		s.weight = append(s.weight[:cap(s.weight)], make([][]int64, k-cap(s.weight))...)
	}
	s.weight = s.weight[:k]
	for q := 0; q < k; q++ {
		s.weight[q] = growInt64(s.weight[q], nr)
		for i := range s.weight[q] {
			s.weight[q][i] = 0
		}
	}
	if cap(s.order) < nv {
		s.order = make([]int32, 0, nv)
	}
	s.order = s.order[:0]
	if cap(s.moveLog) < nv {
		s.moveLog = make([]moveRec, 0, nv)
	}
	s.moveLog = s.moveLog[:0]
	s.partOrder = growInt32(s.partOrder, k)

	s.assign = growInt8(s.assign, nv)
	s.tgtOff = growInt32(s.tgtOff, nv+1)
	if cap(s.tgtList) < nv {
		s.tgtList = make([]int8, 0, nv*2)
	}
	s.tgtList = s.tgtList[:0]
	// fixedLocked is rebuilt by cutModel.init; the records' per-pass slots
	// are overwritten from the fixed arrays at every initPass.
	s.fixedLocked = growInt32(s.fixedLocked, ne*k)
	for i := range s.fixedLocked {
		s.fixedLocked[i] = 0
	}
	s.fixedCover = growInt32(s.fixedCover, ne)
	for i := range s.fixedCover {
		s.fixedCover[i] = 0
	}
	// movablePins is rebuilt by cutModel.init.
	s.movablePins = growInt32(s.movablePins, ne)
	if cap(s.touchLog) < 64 {
		s.touchLog = make([]int32, 0, 256)
	}
	s.touchLog = s.touchLog[:0]
	// lastPos never needs clearing: flushTouches only reads entries the
	// current applyMove just stamped, so stale positions are never consulted.
	// sortGain is fully rewritten by each CLIP initPass before the sort reads
	// it. Neither needs clearing, only sizing.
	s.lastPos = growInt32(s.lastPos, nv*k)
	s.sortGain = growInt64(s.sortGain, nv*k)
}

// sizeBuckets (re)sizes the k per-part gain-bucket structures for numMoves
// move ids and the key span [-maxKey, maxKey], leaving them all empty.
func (s *Scratch) sizeBuckets(numMoves int, maxKey int32, k int) {
	s.nodes.resize(numMoves)
	s.nodes.clearMembership()
	if cap(s.buckets) < k {
		s.buckets = append(s.buckets[:cap(s.buckets)], make([]gainBuckets, k-cap(s.buckets))...)
	}
	s.buckets = s.buckets[:k]
	for q := 0; q < k; q++ {
		s.buckets[q].attach(&s.nodes)
		s.buckets[q].resizeHeads(maxKey)
	}
}

// growBool returns a length-n slice, reusing s's backing array when large
// enough. Contents are unspecified.
func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growInt8[S ~[]int8](s S, n int) S {
	if cap(s) < n {
		return make(S, n)
	}
	return s[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}
