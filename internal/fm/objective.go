package fm

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// Objective selects the quality metric an FM run optimizes and reports as
// its Score. The zero value is ObjectiveCut, so existing configurations are
// unchanged.
//
// The kernel's incremental gain algebra is the (λ-1) connectivity delta for
// every objective in the family (see DESIGN.md "objective layer"): moving a
// pin out of a part it covered alone gains the net weight, moving it into a
// part the net did not touch loses it. At k = 2 that delta is exactly the
// classic FM cut gain, and for km1 it is the connectivity gain by
// definition, so cut and km1 runs follow byte-identical move trajectories.
// Where the objectives diverge is scoring and selection: which number a run
// reports as its Score, and therefore which candidate a multistart or
// V-cycle driver keeps.
type Objective int8

const (
	// ObjectiveCut optimizes the weighted net cut (nets spanning more than
	// one part count once). This is the paper's objective and the default.
	ObjectiveCut Objective = iota
	// ObjectiveKM1 optimizes connectivity-minus-one: every net contributes
	// weight*(λ-1) where λ is the number of parts it touches. Equal to the
	// cut at k = 2; strictly finer-grained for k > 2.
	ObjectiveKM1
)

// String returns the canonical flag/wire spelling ("cut", "km1").
func (o Objective) String() string {
	switch o {
	case ObjectiveCut:
		return "cut"
	case ObjectiveKM1:
		return "km1"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// ParseObjective parses the flag/wire spelling produced by String. The empty
// string parses as ObjectiveCut so absent request fields keep today's
// behavior.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "", "cut":
		return ObjectiveCut, nil
	case "km1":
		return ObjectiveKM1, nil
	default:
		return 0, fmt.Errorf("fm: unknown objective %q (want cut or km1)", s)
	}
}

// Score computes the objective value of an assignment from scratch. It is
// the authoritative definition each gain model's finalScore must agree with;
// the fuzz harness cross-checks every kernel run against it.
func (o Objective) Score(h *hypergraph.Hypergraph, a partition.Assignment) int64 {
	if o == ObjectiveKM1 {
		return partition.KMinus1(h, a)
	}
	return partition.Cut(h, a)
}

// gainModel is the objective seam of the FM engine. The kernel (policy
// layer: buckets, pass loop, rollback) drives a model through this interface
// and never hard-codes an objective. A model owns the structural state —
// assignment, Φ(net, part) pin counts, part weights, movability — and the
// from-scratch gain arithmetic; the kernel owns move ordering and the
// incremental (λ-1) delta propagation in applyMove, which every model in the
// current family shares (see Objective). A future model whose gain algebra
// is not a λ-1 delta (e.g. geometry-weighted wirelength) would additionally
// override the kernel's delta rules; the seam for that lives here.
type gainModel interface {
	// init sizes the model out of sc and loads the initial assignment.
	init(p *partition.Problem, initial partition.Assignment, sc *Scratch)
	// core exposes the shared structural state (Φ, weights, movability) the
	// kernel's hot paths address directly.
	core() *cutModel
	// targets returns v's allowed target parts, ascending.
	targets(v int32) []int8
	// moveGain computes from scratch the gain of moving v to part t.
	moveGain(v int32, t int) int64
	// feasibleMove reports whether moving v to t keeps both parts balanced.
	feasibleMove(v int32, t int) bool
	// moveVertex commits v's part change (weights and assignment).
	moveVertex(v int32, from, to int)
	// undoMove structurally reverses a committed move, returning v to f.
	undoMove(v int32, f int)
	// finalScore evaluates the model's objective on a finished assignment,
	// by definition (not from the pass ledger); the kernel cross-checks and
	// reports it as the run's Score.
	finalScore(a partition.Assignment) int64
	// objective names the metric finalScore computes.
	objective() Objective
}

// newGainModel returns the model implementing o. Models are Scratch-backed
// and must be init'd before use.
func newGainModel(o Objective) gainModel {
	if o == ObjectiveKM1 {
		return &km1Model{}
	}
	return &cutModel{}
}

// km1Model scores runs by connectivity-minus-one. It shares the cutModel's
// structural state and gain arithmetic unchanged — the kernel's incremental
// deltas are already the (λ-1) algebra — and differs only in what finalScore
// measures, which is what multistart/V-cycle selection ranks by.
type km1Model struct {
	cutModel
}

func (m *km1Model) core() *cutModel { return &m.cutModel }

func (m *km1Model) objective() Objective { return ObjectiveKM1 }

// finalScore evaluates connectivity-minus-one by definition; the kernel's
// pass ledger must arrive at the same number (fuzz-enforced).
func (m *km1Model) finalScore(a partition.Assignment) int64 {
	return partition.KMinus1(m.h, a)
}
