package fm_test

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/fm"
	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// fourClusters builds 4 groups of n vertices joined in a chain by `bridges`
// 2-pin nets per junction; the optimal 4-way split cuts 3*bridges nets.
func fourClusters(n, bridges int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(1)
	for i := 0; i < 4*n; i++ {
		b.AddVertex(1)
	}
	for g := 0; g < 4; g++ {
		base := g * n
		for i := 0; i < n; i++ {
			b.AddNet(base+i, base+(i+1)%n)
			b.AddNet(base+i, base+(i+2)%n)
		}
	}
	for g := 0; g+1 < 4; g++ {
		for i := 0; i < bridges; i++ {
			b.AddNet(g*n+i%n, (g+1)*n+i%n)
		}
	}
	return b.MustBuild()
}

func TestKWayPartitionImproves(t *testing.T) {
	h := fourClusters(50, 2)
	p := partition.NewFree(h, 4, 0.05)
	rng := rand.New(rand.NewPCG(31, 31))
	initial, err := partition.RandomFeasible(p, rng)
	if err != nil {
		t.Fatalf("RandomFeasible: %v", err)
	}
	before := partition.KMinus1(h, initial)
	res, err := fm.KWayPartition(p, initial, fm.Config{Policy: fm.LIFO})
	if err != nil {
		t.Fatalf("KWayPartition: %v", err)
	}
	if res.KMinus1 >= before {
		t.Errorf("k-way FM did not improve: %d -> %d", before, res.KMinus1)
	}
	if err := p.Feasible(res.Assignment); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if res.KMinus1 != partition.KMinus1(h, res.Assignment) {
		t.Errorf("reported KMinus1 %d != recomputed %d", res.KMinus1, partition.KMinus1(h, res.Assignment))
	}
	if res.Cut != partition.Cut(h, res.Assignment) {
		t.Errorf("reported cut %d != recomputed %d", res.Cut, partition.Cut(h, res.Assignment))
	}
	t.Logf("k-way FM: lambda-1 %d -> %d (random start)", before, res.KMinus1)
}

func TestKWayPartitionConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 41))
		b := hypergraph.NewBuilder(1)
		nv := 20 + int(seed%30)
		for i := 0; i < nv; i++ {
			b.AddVertex(int64(1 + rng.IntN(3)))
		}
		for e := 0; e < 2*nv; e++ {
			sz := 2 + rng.IntN(3)
			b.AddNet(rng.Perm(nv)[:sz]...)
		}
		h := b.MustBuild()
		k := 2 + rng.IntN(3)
		p := partition.NewFree(h, k, 0.15)
		initial, err := partition.RandomFeasible(p, rng)
		if err != nil {
			return true // rare overconstrained draw
		}
		policy := fm.LIFO
		if seed%2 == 0 {
			policy = fm.CLIP
		}
		res, err := fm.KWayPartition(p, initial, fm.Config{Policy: policy})
		if err != nil {
			return false
		}
		if p.Feasible(res.Assignment) != nil {
			return false
		}
		if res.KMinus1 != partition.KMinus1(h, res.Assignment) {
			return false
		}
		return res.KMinus1 <= partition.KMinus1(h, initial)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKWayPartitionK2MatchesBipartitionObjective(t *testing.T) {
	h := twoClusters(30, 3)
	p := partition.NewBipartition(h, 0.05)
	rng := rand.New(rand.NewPCG(33, 33))
	initial, err := partition.RandomFeasible(p, rng)
	if err != nil {
		t.Fatalf("RandomFeasible: %v", err)
	}
	res, err := fm.KWayPartition(p, initial, fm.Config{Policy: fm.LIFO})
	if err != nil {
		t.Fatalf("KWayPartition: %v", err)
	}
	// For k=2 the lambda-1 objective IS the cut.
	if res.KMinus1 != res.Cut {
		t.Errorf("k=2: KMinus1 %d != Cut %d", res.KMinus1, res.Cut)
	}
	bi, err := fm.Bipartition(p, initial, fm.Config{Policy: fm.LIFO})
	if err != nil {
		t.Fatalf("Bipartition: %v", err)
	}
	// Both engines descend from the same start; demand comparable quality
	// (identical trajectories are not guaranteed).
	if float64(res.Cut) > 1.5*float64(bi.Cut)+3 {
		t.Errorf("k-way engine at k=2 much worse than bipartition engine: %d vs %d", res.Cut, bi.Cut)
	}
}

func TestKWayPartitionRespectsMasks(t *testing.T) {
	h := fourClusters(30, 2)
	p := partition.NewFree(h, 4, 0.1)
	p.Fix(0, 3)
	p.Restrict(40, partition.Single(1).With(2))
	rng := rand.New(rand.NewPCG(34, 34))
	initial, err := partition.RandomFeasible(p, rng)
	if err != nil {
		t.Fatalf("RandomFeasible: %v", err)
	}
	res, err := fm.KWayPartition(p, initial, fm.Config{Policy: fm.CLIP})
	if err != nil {
		t.Fatalf("KWayPartition: %v", err)
	}
	if res.Assignment[0] != 3 {
		t.Errorf("fixed vertex moved to %d", res.Assignment[0])
	}
	if got := res.Assignment[40]; got != 1 && got != 2 {
		t.Errorf("OR-region vertex in part %d, want 1 or 2", got)
	}
}

func TestKWayPartitionPassCutoff(t *testing.T) {
	h := fourClusters(40, 2)
	p := partition.NewFree(h, 4, 0.1)
	rng := rand.New(rand.NewPCG(35, 35))
	initial, err := partition.RandomFeasible(p, rng)
	if err != nil {
		t.Fatalf("RandomFeasible: %v", err)
	}
	res, err := fm.KWayPartition(p, initial, fm.Config{Policy: fm.LIFO, MaxPassFraction: 0.1})
	if err != nil {
		t.Fatalf("KWayPartition: %v", err)
	}
	limit := res.Movable / 10
	if limit < 1 {
		limit = 1
	}
	for i, ps := range res.Passes {
		if i > 0 && ps.Moves > limit {
			t.Errorf("pass %d made %d moves, cutoff %d", i, ps.Moves, limit)
		}
	}
}

func TestKWayPartitionErrors(t *testing.T) {
	h := fourClusters(10, 1)
	p := partition.NewFree(h, 4, 0.1)
	bad := make(partition.Assignment, h.NumVertices()) // all in part 0
	if _, err := fm.KWayPartition(p, bad, fm.Config{}); err == nil {
		t.Error("want error for infeasible initial")
	}
	rng := rand.New(rand.NewPCG(36, 36))
	initial, err := partition.RandomFeasible(p, rng)
	if err != nil {
		t.Fatalf("RandomFeasible: %v", err)
	}
	if _, err := fm.KWayPartition(p, initial, fm.Config{MaxPassFraction: -1}); err == nil {
		t.Error("want error for bad fraction")
	}
}

func TestKWayPartitionAllFixed(t *testing.T) {
	h := fourClusters(10, 1)
	p := partition.NewFree(h, 4, 0.3)
	initial := make(partition.Assignment, h.NumVertices())
	for v := range initial {
		initial[v] = int8(v / 10)
		p.Fix(v, v/10)
	}
	res, err := fm.KWayPartition(p, initial, fm.Config{})
	if err != nil {
		t.Fatalf("KWayPartition: %v", err)
	}
	if res.Movable != 0 || len(res.Passes) != 0 {
		t.Errorf("movable=%d passes=%d", res.Movable, len(res.Passes))
	}
}

func TestKWayBeatsGreedyRefine(t *testing.T) {
	h := fourClusters(60, 3)
	p := partition.NewFree(h, 4, 0.05)
	rng := rand.New(rand.NewPCG(37, 37))
	var fmSum, greedySum int64
	for trial := 0; trial < 5; trial++ {
		initial, err := partition.RandomFeasible(p, rng)
		if err != nil {
			t.Fatalf("RandomFeasible: %v", err)
		}
		res, err := fm.KWayPartition(p, initial, fm.Config{Policy: fm.LIFO})
		if err != nil {
			t.Fatalf("KWayPartition: %v", err)
		}
		_, gcut, err := fm.KWayRefine(p, initial, 0, rng)
		if err != nil {
			t.Fatalf("KWayRefine: %v", err)
		}
		fmSum += res.Cut
		greedySum += gcut
	}
	t.Logf("avg cut over 5 random starts: k-way FM=%d, greedy=%d", fmSum/5, greedySum/5)
	// FM hill-climbs through zero/negative moves; it should not lose to the
	// strictly greedy sweep on average.
	if fmSum > greedySum+greedySum/10+5 {
		t.Errorf("k-way FM (%d) notably worse than greedy refinement (%d)", fmSum, greedySum)
	}
}
