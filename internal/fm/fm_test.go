package fm_test

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/fm"
	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// twoClusters builds a netlist with two densely connected groups of n
// vertices each, joined by `bridges` 2-pin nets. The optimal bisection cuts
// exactly the bridges.
func twoClusters(n, bridges int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(1)
	for i := 0; i < 2*n; i++ {
		b.AddVertex(1)
	}
	for g := 0; g < 2; g++ {
		base := g * n
		for i := 0; i < n; i++ {
			b.AddNet(base+i, base+(i+1)%n) // ring
			if i+2 < n {
				b.AddNet(base+i, base+i+2) // chords
			}
		}
	}
	for i := 0; i < bridges; i++ {
		b.AddNet(i%n, n+i%n)
	}
	return b.MustBuild()
}

func randomProblem(seed uint64, nVerts int) (*partition.Problem, *rand.Rand) {
	rng := rand.New(rand.NewPCG(seed, 99))
	b := hypergraph.NewBuilder(1)
	for i := 0; i < nVerts; i++ {
		b.AddVertex(int64(1 + rng.IntN(4)))
	}
	ne := nVerts * 2
	for e := 0; e < ne; e++ {
		sz := 2 + rng.IntN(3)
		b.AddNet(rng.Perm(nVerts)[:sz]...)
	}
	h := b.MustBuild()
	return partition.NewBipartition(h, 0.1), rng
}

func TestBipartitionFindsOptimalOnTwoClusters(t *testing.T) {
	h := twoClusters(20, 2)
	p := partition.NewBipartition(h, 0.02)
	rng := rand.New(rand.NewPCG(42, 0))
	best := int64(1 << 60)
	for start := 0; start < 8; start++ {
		res, err := fm.RunFromRandom(p, fm.Config{Policy: fm.LIFO}, rng)
		if err != nil {
			t.Fatalf("RunFromRandom: %v", err)
		}
		if res.Cut < best {
			best = res.Cut
		}
	}
	if best != 2 {
		t.Errorf("best cut over 8 starts = %d, want 2 (the bridges)", best)
	}
}

func TestBipartitionCutConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		p, rng := randomProblem(seed, 30)
		res, err := fm.RunFromRandom(p, fm.Config{Policy: fm.LIFO}, rng)
		if err != nil {
			return false
		}
		if res.Cut != partition.Cut(p.H, res.Assignment) {
			return false
		}
		return p.Feasible(res.Assignment) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBipartitionNeverWorseThanInitial(t *testing.T) {
	f := func(seed uint64) bool {
		p, rng := randomProblem(seed, 40)
		initial, err := partition.RandomFeasible(p, rng)
		if err != nil {
			return false
		}
		res, err := fm.Bipartition(p, initial, fm.Config{Policy: fm.LIFO})
		if err != nil {
			return false
		}
		return res.Cut <= partition.Cut(p.H, initial)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedVerticesStayPut(t *testing.T) {
	f := func(seed uint64) bool {
		p, rng := randomProblem(seed, 40)
		nv := p.H.NumVertices()
		type fix struct{ v, part int }
		var fixes []fix
		for v := 0; v < nv; v++ {
			if rng.IntN(4) == 0 {
				part := rng.IntN(2)
				p.Fix(v, part)
				fixes = append(fixes, fix{v, part})
			}
		}
		res, err := fm.RunFromRandom(p, fm.Config{Policy: fm.LIFO}, rng)
		if err != nil {
			// Heavy fixing can make the 10% balance infeasible; skip.
			return true
		}
		for _, fx := range fixes {
			if int(res.Assignment[fx.v]) != fx.part {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIPPolicy(t *testing.T) {
	h := twoClusters(20, 2)
	p := partition.NewBipartition(h, 0.02)
	rng := rand.New(rand.NewPCG(7, 0))
	best := int64(1 << 60)
	for start := 0; start < 8; start++ {
		res, err := fm.RunFromRandom(p, fm.Config{Policy: fm.CLIP}, rng)
		if err != nil {
			t.Fatalf("RunFromRandom: %v", err)
		}
		if err := p.Feasible(res.Assignment); err != nil {
			t.Fatalf("infeasible: %v", err)
		}
		if res.Cut != partition.Cut(p.H, res.Assignment) {
			t.Fatalf("cut mismatch")
		}
		if res.Cut < best {
			best = res.Cut
		}
	}
	if best != 2 {
		t.Errorf("CLIP best cut = %d, want 2", best)
	}
}

func TestPassStats(t *testing.T) {
	p, rng := randomProblem(3, 60)
	res, err := fm.RunFromRandom(p, fm.Config{Policy: fm.LIFO}, rng)
	if err != nil {
		t.Fatalf("RunFromRandom: %v", err)
	}
	if len(res.Passes) == 0 {
		t.Fatal("no passes recorded")
	}
	for i, ps := range res.Passes {
		if ps.Kept > ps.Moves {
			t.Errorf("pass %d: kept %d > moves %d", i, ps.Kept, ps.Moves)
		}
		if ps.Gain < 0 {
			t.Errorf("pass %d: negative gain %d", i, ps.Gain)
		}
	}
	last := res.Passes[len(res.Passes)-1]
	if last.Gain != 0 && len(res.Passes) < 64 {
		t.Errorf("run should end with a zero-gain pass, got %d", last.Gain)
	}
	if res.TotalMoves() <= 0 {
		t.Errorf("TotalMoves = %d", res.TotalMoves())
	}
}

func TestPassCutoffLimitsMoves(t *testing.T) {
	p, rng := randomProblem(5, 100)
	res, err := fm.RunFromRandom(p, fm.Config{Policy: fm.LIFO, MaxPassFraction: 0.1}, rng)
	if err != nil {
		t.Fatalf("RunFromRandom: %v", err)
	}
	limit := int(0.1 * float64(res.Movable))
	if limit < 1 {
		limit = 1
	}
	for i, ps := range res.Passes {
		if i == 0 {
			continue // first pass is exempt, per the paper
		}
		if ps.Moves > limit {
			t.Errorf("pass %d made %d moves, cutoff %d", i, ps.Moves, limit)
		}
	}
	if len(res.Passes) > 1 && res.Passes[0].Moves <= limit {
		t.Logf("note: first pass made only %d moves (allowed)", res.Passes[0].Moves)
	}
}

func TestNoMovableVertices(t *testing.T) {
	h := twoClusters(4, 1)
	p := partition.NewBipartition(h, 0.25)
	for v := 0; v < h.NumVertices(); v++ {
		p.Fix(v, v/4) // first cluster in part 0, second in part 1
	}
	initial := make(partition.Assignment, h.NumVertices())
	for v := range initial {
		initial[v] = int8(v / 4)
	}
	res, err := fm.Bipartition(p, initial, fm.Config{})
	if err != nil {
		t.Fatalf("Bipartition: %v", err)
	}
	if res.Movable != 0 || len(res.Passes) != 0 {
		t.Errorf("movable=%d passes=%d, want 0/0", res.Movable, len(res.Passes))
	}
	if res.Cut != partition.Cut(h, initial) {
		t.Errorf("cut changed with no movable vertices")
	}
}

func TestBipartitionErrors(t *testing.T) {
	h := twoClusters(4, 1)
	initial := make(partition.Assignment, h.NumVertices())
	for v := 4; v < 8; v++ {
		initial[v] = 1
	}
	t.Run("k!=2", func(t *testing.T) {
		p := partition.NewFree(h, 4, 0.1)
		if _, err := fm.Bipartition(p, initial, fm.Config{}); err == nil {
			t.Error("want error")
		}
	})
	t.Run("infeasible initial", func(t *testing.T) {
		p := partition.NewBipartition(h, 0.02)
		bad := make(partition.Assignment, h.NumVertices()) // everything in part 0
		if _, err := fm.Bipartition(p, bad, fm.Config{}); err == nil {
			t.Error("want error")
		}
	})
	t.Run("bad fraction", func(t *testing.T) {
		p := partition.NewBipartition(h, 0.1)
		if _, err := fm.Bipartition(p, initial, fm.Config{MaxPassFraction: 1.5}); err == nil {
			t.Error("want error")
		}
	})
}

func TestORRegionVertexMovableInBipartition(t *testing.T) {
	h := twoClusters(10, 1)
	p := partition.NewBipartition(h, 0.1)
	// An OR-region over both parts is equivalent to free in bipartitioning.
	p.Restrict(0, partition.Single(0).With(1))
	rng := rand.New(rand.NewPCG(9, 9))
	res, err := fm.RunFromRandom(p, fm.Config{}, rng)
	if err != nil {
		t.Fatalf("RunFromRandom: %v", err)
	}
	if res.Movable != h.NumVertices() {
		t.Errorf("Movable = %d, want %d", res.Movable, h.NumVertices())
	}
}

func TestPolicyString(t *testing.T) {
	if fm.LIFO.String() != "LIFO" || fm.CLIP.String() != "CLIP" {
		t.Error("Policy.String wrong")
	}
	if fm.Policy(9).String() == "" {
		t.Error("unknown policy should still format")
	}
}

func TestKWayRefine(t *testing.T) {
	h := twoClusters(20, 2)
	p := partition.NewFree(h, 4, 0.1)
	rng := rand.New(rand.NewPCG(11, 0))
	initial, err := partition.RandomFeasible(p, rng)
	if err != nil {
		t.Fatalf("RandomFeasible: %v", err)
	}
	before := partition.Cut(h, initial)
	a, cut, err := fm.KWayRefine(p, initial, 0, rng)
	if err != nil {
		t.Fatalf("KWayRefine: %v", err)
	}
	if err := p.Feasible(a); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if cut > before {
		t.Errorf("k-way refine worsened cut: %d -> %d", before, cut)
	}
	if cut != partition.Cut(h, a) {
		t.Errorf("reported cut %d != recomputed %d", cut, partition.Cut(h, a))
	}
}

func TestKWayRefineRespectsFixed(t *testing.T) {
	h := twoClusters(12, 1)
	p := partition.NewFree(h, 3, 0.2)
	p.Fix(0, 2)
	p.Fix(13, 1)
	rng := rand.New(rand.NewPCG(13, 0))
	initial, err := partition.RandomFeasible(p, rng)
	if err != nil {
		t.Fatalf("RandomFeasible: %v", err)
	}
	a, _, err := fm.KWayRefine(p, initial, 4, rng)
	if err != nil {
		t.Fatalf("KWayRefine: %v", err)
	}
	if a[0] != 2 || a[13] != 1 {
		t.Errorf("fixed vertices moved: a[0]=%d a[13]=%d", a[0], a[13])
	}
}

func TestKWayRefineErrors(t *testing.T) {
	h := twoClusters(6, 1)
	p := partition.NewFree(h, 3, 0.1)
	rng := rand.New(rand.NewPCG(17, 0))
	bad := make(partition.Assignment, h.NumVertices())
	if _, _, err := fm.KWayRefine(p, bad, 2, rng); err == nil {
		t.Error("want error for infeasible initial")
	}
}

// TestTableIIShape checks the paper's Table II direction on a small scale:
// with many fixed terminals, the retained fraction of moves per pass (after
// the first) should not exceed the free case by much; typically it drops.
func TestTableIIShape(t *testing.T) {
	h := twoClusters(40, 4)
	keptFraction := func(fixedFrac float64) float64 {
		p := partition.NewBipartition(h, 0.1)
		rng := rand.New(rand.NewPCG(23, uint64(fixedFrac*100)))
		nv := h.NumVertices()
		nFix := int(fixedFrac * float64(nv))
		for _, v := range rng.Perm(nv)[:nFix] {
			p.Fix(v, rng.IntN(2))
		}
		totKept, totMovable := 0, 0
		for trial := 0; trial < 10; trial++ {
			res, err := fm.RunFromRandom(p, fm.Config{Policy: fm.LIFO}, rng)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for i, ps := range res.Passes {
				if i == 0 {
					continue
				}
				totKept += ps.Kept
				totMovable += res.Movable
			}
		}
		if totMovable == 0 {
			return 0
		}
		return float64(totKept) / float64(totMovable)
	}
	free := keptFraction(0)
	heavy := keptFraction(0.4)
	t.Logf("kept fraction after first pass: free=%.3f 40%%fixed=%.3f", free, heavy)
	if heavy > free+0.3 {
		t.Errorf("kept fraction with heavy fixing (%.3f) unexpectedly exceeds free case (%.3f)", heavy, free)
	}
}

func TestRecordProfile(t *testing.T) {
	p, rng := randomProblem(77, 80)
	res, err := fm.RunFromRandom(p, fm.Config{Policy: fm.LIFO, RecordProfile: true}, rng)
	if err != nil {
		t.Fatalf("RunFromRandom: %v", err)
	}
	sawProfile := false
	for _, ps := range res.Passes {
		if ps.Gain > 0 {
			if ps.Profile == nil || len(ps.Profile) != 10 {
				t.Fatalf("improving pass missing profile: %+v", ps)
			}
			sawProfile = true
			if ps.Profile[9] > 1.0001 {
				t.Errorf("profile end %v exceeds 1", ps.Profile[9])
			}
		} else if ps.Profile != nil {
			t.Errorf("zero-gain pass has profile")
		}
	}
	if !sawProfile {
		t.Skip("no improving passes in this draw")
	}
	// Without the flag, no profiles are recorded.
	res2, err := fm.RunFromRandom(p, fm.Config{Policy: fm.LIFO}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range res2.Passes {
		if ps.Profile != nil {
			t.Error("profile recorded without RecordProfile")
		}
	}
}

func TestStallCutoff(t *testing.T) {
	p, rng := randomProblem(88, 120)
	res, err := fm.RunFromRandom(p, fm.Config{Policy: fm.LIFO, StallCutoff: 5}, rng)
	if err != nil {
		t.Fatalf("RunFromRandom: %v", err)
	}
	if err := p.Feasible(res.Assignment); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if res.Cut != partition.Cut(p.H, res.Assignment) {
		t.Fatal("cut mismatch")
	}
	// After the first pass, no pass runs more than 5 moves past its best
	// prefix.
	for i, ps := range res.Passes {
		if i == 0 {
			continue
		}
		if ps.Moves-ps.Kept > 5 {
			t.Errorf("pass %d overran stall cutoff: moves=%d kept=%d", i, ps.Moves, ps.Kept)
		}
	}
}

// TestScratchReuseMatchesFresh reuses one Scratch across runs on problems of
// different sizes and shapes, interleaved, and checks every result is
// bit-identical to a fresh-scratch run: stale state from a previous (larger)
// problem must never leak into the next.
func TestScratchReuseMatchesFresh(t *testing.T) {
	var probs []*partition.Problem
	var inits []partition.Assignment
	rng := rand.New(rand.NewPCG(21, 21))
	for i, nv := range []int{30, 120, 12, 60, 120, 30} {
		p, _ := randomProblem(uint64(i+1), nv)
		if i%2 == 1 { // alternate in some fixed vertices
			for _, v := range rng.Perm(nv)[:nv/5] {
				p.Fix(v, rng.IntN(2))
			}
		}
		initial, err := partition.RandomFeasible(p, rng)
		if err != nil {
			t.Fatalf("RandomFeasible(%d): %v", i, err)
		}
		probs = append(probs, p)
		inits = append(inits, initial)
	}
	sc := fm.NewScratch()
	for _, policy := range []fm.Policy{fm.LIFO, fm.CLIP} {
		for i, p := range probs {
			cfg := fm.Config{Policy: policy}
			fresh, err := fm.BipartitionWith(p, inits[i], cfg, fm.NewScratch())
			if err != nil {
				t.Fatalf("fresh run %d: %v", i, err)
			}
			reused, err := fm.BipartitionWith(p, inits[i], cfg, sc)
			if err != nil {
				t.Fatalf("reused run %d: %v", i, err)
			}
			if fresh.Cut != reused.Cut {
				t.Fatalf("policy %v problem %d: reused cut %d != fresh cut %d",
					policy, i, reused.Cut, fresh.Cut)
			}
			for v := range fresh.Assignment {
				if fresh.Assignment[v] != reused.Assignment[v] {
					t.Fatalf("policy %v problem %d: assignments diverge at vertex %d",
						policy, i, v)
				}
			}
		}
	}
}
