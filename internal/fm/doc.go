// Package fm implements Fiduccia–Mattheyses refinement with fixed vertices
// for any number of parts: a part-count-generic move kernel (LIFO and CLIP
// vertex-selection policies, per-part gain buckets, hard pass-length cutoffs
// — the paper's Section III heuristic — and per-pass statistics, Table II).
// Bipartition is the k = 2 instantiation of the kernel; KWayPartition drives
// the same kernel for any k up to partition.MaxParts.
//
// Gain updates are net-state aware: locked nets are short-circuited, 2- and
// 3-pin nets take closed-form fast paths, and bucket repositionings are
// batched per move. The work eliminated this way is counted in KernelStats;
// reference.go keeps a frozen pre-rewrite kernel so the counters (and the
// results, which are bit-identical) can be compared under equal accounting.
//
// # Objectives
//
// Config.Objective selects the metric a run minimizes: ObjectiveCut (net
// cut, the default) or ObjectiveKM1 (connectivity minus one). The kernel's
// incremental gain arithmetic is λ−1-native — at k = 2 it coincides with
// the classic cut gain — so both objectives follow the identical move
// trajectory; they differ only in the reported Result.Score, which callers
// (the multilevel multistart and V-cycle drivers) use to select among
// candidates. ObjectiveCut runs are bit-identical to the pre-objective
// kernel. See objective.go for the gainModel seam.
//
// # Concurrency
//
// A kernel instance (Bipartition, KWayPartition, a Scratch, and the gain
// buckets inside them) is single-goroutine: it may not be shared or called
// concurrently. Parallel callers run one kernel (and one Scratch) per
// worker on disjoint problems — the pattern the multilevel multistart
// drivers use. The only shared-safe type is KernelStats: its counters are
// atomics, so any number of kernels may fold their per-run deltas into one
// aggregate concurrently.
//
// # Determinism
//
// Every randomized choice (initial solutions, tie-breaking among equal-gain
// moves) draws from the *rand.Rand passed in by the caller, and nothing
// else: for a given problem, configuration and RNG state the refinement
// trajectory — every move, every pass, the final assignment and cut — is
// bit-identical across runs, platforms and worker counts. Scratch reuse
// does not affect results; a reused Scratch is fully re-initialized.
package fm
