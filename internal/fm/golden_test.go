package fm_test

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"testing"

	"repro/internal/fm"
	"repro/internal/gen"
	"repro/internal/partition"
)

// goldenRun identifies one pinned engine run: a preset, a policy, and the
// fraction of vertices fixed (consistently with a deterministic random
// reference assignment) before refinement.
type goldenRun struct {
	preset   string
	policy   fm.Policy
	fixFrac  float64
	wantCut  int64
	wantHash uint64
}

// bipartitionGoldens pins the exact output of fm.Bipartition on the
// IBM01S–IBM05S presets. The values were recorded from the dedicated 2-way
// engine before it was generalized into the k-way kernel; the k = 2
// instantiation of the kernel must reproduce every run byte-for-byte
// (identical assignment, hence identical hash, hence identical cut).
var bipartitionGoldens = []goldenRun{
	{"IBM01S", fm.LIFO, 0, 451, 0xbf0bec3ad496ae69},
	{"IBM01S", fm.LIFO, 0.25, 1268, 0x850580b1a7d56d88},
	{"IBM01S", fm.CLIP, 0, 131, 0xf468971a8fb6f101},
	{"IBM01S", fm.CLIP, 0.25, 1270, 0x5b97532819e0625b},
	{"IBM02S", fm.LIFO, 0, 151, 0x4be5c2e2e3d44074},
	{"IBM02S", fm.LIFO, 0.25, 1946, 0x37118566ce9c5ae7},
	{"IBM02S", fm.CLIP, 0, 151, 0x91cf454e50e3159d},
	{"IBM02S", fm.CLIP, 0.25, 1870, 0x5794a4161b9591c8},
	{"IBM03S", fm.LIFO, 0, 309, 0xcb207cf37512b648},
	{"IBM03S", fm.LIFO, 0.25, 2154, 0xf27b71c17d5be857},
	{"IBM03S", fm.CLIP, 0, 376, 0x35d38566580de1cb},
	{"IBM03S", fm.CLIP, 0.25, 2230, 0xdba89d7317829cc},
	{"IBM04S", fm.LIFO, 0, 164, 0xfb5f71ee8957d207},
	{"IBM04S", fm.LIFO, 0.25, 2707, 0xb3636889093238e1},
	{"IBM04S", fm.CLIP, 0, 183, 0xb70886fc20daee4d},
	{"IBM04S", fm.CLIP, 0.25, 2639, 0x1dc5f666126a4bde},
	{"IBM05S", fm.LIFO, 0, 510, 0xdf020eb93c23c4d3},
	{"IBM05S", fm.LIFO, 0.25, 2831, 0xca4f70e5fa79dbcd},
	{"IBM05S", fm.CLIP, 0, 310, 0x5febe94a39d32863},
	{"IBM05S", fm.CLIP, 0.25, 3056, 0xde4d965af24cf64a},
}

// goldenProblem deterministically builds the preset instance, fixing regime
// and initial assignment for one golden run.
func goldenProblem(t *testing.T, g goldenRun) (*partition.Problem, partition.Assignment) {
	t.Helper()
	pre, err := gen.PresetByName(g.preset)
	if err != nil {
		t.Fatalf("preset %s: %v", g.preset, err)
	}
	nl, err := gen.Generate(pre.Params.Scaled(0.25))
	if err != nil {
		t.Fatalf("generate %s: %v", g.preset, err)
	}
	h := nl.H
	p := partition.NewBipartition(h, 0.02)
	rng := rand.New(rand.NewPCG(0x601d, pre.Params.Seed))
	if g.fixFrac > 0 {
		ref := make(partition.Assignment, h.NumVertices())
		for v := range ref {
			ref[v] = int8(rng.IntN(2))
		}
		n := int(g.fixFrac * float64(h.NumVertices()))
		for _, v := range rng.Perm(h.NumVertices())[:n] {
			p.Fix(v, int(ref[v]))
		}
	}
	initial, err := partition.RandomFeasible(p, rng)
	if err != nil {
		t.Fatalf("RandomFeasible %s: %v", g.preset, err)
	}
	return p, initial
}

func assignmentHash(a partition.Assignment) uint64 {
	hsh := fnv.New64a()
	buf := make([]byte, len(a))
	for i, p := range a {
		buf[i] = byte(p)
	}
	hsh.Write(buf)
	return hsh.Sum64()
}

// TestBipartitionGoldenPresets is the k=2 regression gate for the kernel
// refactor: on every preset, policy and fixing regime below, the refined
// assignment must match the pre-refactor engine exactly.
func TestBipartitionGoldenPresets(t *testing.T) {
	if testing.Short() {
		t.Skip("golden presets are built at 1/4 scale but still sizable")
	}
	if len(bipartitionGoldens) == 0 {
		// Bootstrap mode: print the table to paste into bipartitionGoldens.
		for _, preset := range []string{"IBM01S", "IBM02S", "IBM03S", "IBM04S", "IBM05S"} {
			for _, policy := range []fm.Policy{fm.LIFO, fm.CLIP} {
				for _, frac := range []float64{0, 0.25} {
					g := goldenRun{preset: preset, policy: policy, fixFrac: frac}
					p, initial := goldenProblem(t, g)
					res, err := fm.Bipartition(p, initial, fm.Config{Policy: policy})
					if err != nil {
						t.Fatalf("%s %v: %v", preset, policy, err)
					}
					fmt.Printf("\t{%q, fm.%v, %v, %d, 0x%x},\n", preset, policy, frac, res.Cut, assignmentHash(res.Assignment))
				}
			}
		}
		t.Fatal("bipartitionGoldens is empty; paste the rows printed above")
	}
	for _, g := range bipartitionGoldens {
		name := fmt.Sprintf("%s/%v/fix%.0f%%", g.preset, g.policy, 100*g.fixFrac)
		t.Run(name, func(t *testing.T) {
			p, initial := goldenProblem(t, g)
			res, err := fm.Bipartition(p, initial, fm.Config{Policy: g.policy})
			if err != nil {
				t.Fatalf("Bipartition: %v", err)
			}
			if res.Cut != g.wantCut {
				t.Errorf("cut = %d, want %d", res.Cut, g.wantCut)
			}
			if h := assignmentHash(res.Assignment); h != g.wantHash {
				t.Errorf("assignment hash = 0x%x, want 0x%x", h, g.wantHash)
			}
		})
	}
}
