package fm_test

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/fm"
	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// TestLocalizedRefineWorkerInvariance is the determinism contract of the
// localized engine at the fm level: for a fixed salt, every worker count — 1
// included — must run the identical searches, commit the identical prefixes
// and return the identical assignment, on random fixed-vertex problems across
// k, weights and masks. Run under -race in CI, which also exercises the
// concurrent boundary scans and the shared search queue.
func TestLocalizedRefineWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x10ca11, 1))
	trials := 0
	for trials < 30 {
		p, initial, ok := diffProblem(rng)
		if !ok {
			continue
		}
		trials++
		salt := rng.Uint64()
		cfg := fm.Config{}
		if trials%2 == 0 {
			cfg.Objective = fm.ObjectiveKM1
		}
		want, err := fm.LocalizedRefine(p, initial, cfg, 1, salt)
		if err != nil {
			t.Fatalf("trial %d: workers=1: %v", trials, err)
		}
		for _, workers := range []int{2, 4, 8} {
			got, err := fm.LocalizedRefine(p, initial, cfg, workers, salt)
			if err != nil {
				t.Fatalf("trial %d: workers=%d: %v", trials, workers, err)
			}
			if !reflect.DeepEqual(got.Assignment, want.Assignment) {
				t.Fatalf("trial %d: workers=%d assignment diverges from workers=1", trials, workers)
			}
			if got.Rounds != want.Rounds || got.Searches != want.Searches ||
				got.Committed != want.Committed || got.Moves != want.Moves || got.Gain != want.Gain {
				t.Fatalf("trial %d: workers=%d rounds/searches/committed/moves/gain %d/%d/%d/%d/%d, workers=1 %d/%d/%d/%d/%d",
					trials, workers, got.Rounds, got.Searches, got.Committed, got.Moves, got.Gain,
					want.Rounds, want.Searches, want.Committed, want.Moves, want.Gain)
			}
		}
	}
}

// TestLocalizedRefineImproves checks the engine's accounting and invariants
// on random problems: the result is feasible, never worse than the input
// under (λ-1) connectivity, Gain equals the measured connectivity reduction
// (the committed-gain ledger is authoritative), and the input assignment is
// untouched.
func TestLocalizedRefineImproves(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x10ca11, 2))
	trials := 0
	improved := 0
	for trials < 40 {
		p, initial, ok := diffProblem(rng)
		if !ok {
			continue
		}
		trials++
		before := initial.Clone()
		km1In := partition.KMinus1(p.H, initial)
		res, err := fm.LocalizedRefine(p, initial, fm.Config{}, 3, rng.Uint64())
		if err != nil {
			t.Fatalf("trial %d: %v", trials, err)
		}
		if !reflect.DeepEqual(initial, before) {
			t.Fatalf("trial %d: input assignment was modified", trials)
		}
		if err := p.Feasible(res.Assignment); err != nil {
			t.Fatalf("trial %d: infeasible result: %v", trials, err)
		}
		km1Out := partition.KMinus1(p.H, res.Assignment)
		if km1Out > km1In {
			t.Fatalf("trial %d: connectivity worsened: %d -> %d", trials, km1In, km1Out)
		}
		if got := km1In - km1Out; got != res.Gain {
			t.Fatalf("trial %d: Gain %d, measured reduction %d", trials, res.Gain, got)
		}
		if res.Gain > 0 {
			improved++
		}
	}
	if improved == 0 {
		t.Error("no trial improved its random initial assignment (engine inert?)")
	}
}

// TestLocalizedRefineAllFixed: with every vertex a fixed terminal the engine
// must return the input unchanged — no seeds, no searches, no moves.
func TestLocalizedRefineAllFixed(t *testing.T) {
	b := hypergraph.NewBuilder(1)
	for v := 0; v < 8; v++ {
		b.AddVertex(1)
	}
	for e := 0; e < 6; e++ {
		b.AddNet(e, (e+1)%8, (e+3)%8)
	}
	p := partition.NewBipartition(b.MustBuild(), 0.5)
	for v := 0; v < 8; v++ {
		p.Fix(v, v%2)
	}
	initial, err := partition.RandomFeasible(p, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fm.LocalizedRefine(p, initial, fm.Config{}, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if res.Searches != 0 || res.Moves != 0 || res.Gain != 0 || res.Movable != 0 {
		t.Errorf("all-fixed problem: searches=%d moves=%d gain=%d movable=%d, want zeros",
			res.Searches, res.Moves, res.Gain, res.Movable)
	}
	if !reflect.DeepEqual(res.Assignment, initial) {
		t.Error("all-fixed problem: assignment changed")
	}
}

// TestLocalizedRefineThenPolish mirrors the multilevel composition — rounds,
// localized searches, then a one-pass serial tail on one leased scratch — and
// checks the tail never undoes the localized stage's progress.
func TestLocalizedRefineThenPolish(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x10ca11, 3))
	sc := fm.NewScratch()
	trials := 0
	for trials < 20 {
		p, initial, ok := diffProblem(rng)
		if !ok {
			continue
		}
		trials++
		salt := rng.Uint64()
		loc, err := fm.LocalizedRefineWith(p, initial, fm.Config{}, 4, salt, sc)
		if err != nil {
			t.Fatalf("trial %d: localized: %v", trials, err)
		}
		polished, err := fm.KWayPartitionWith(p, loc.Assignment, fm.Config{Policy: fm.CLIP, MaxPasses: 1}, sc)
		if err != nil {
			t.Fatalf("trial %d: tail: %v", trials, err)
		}
		if err := p.Feasible(polished.Assignment); err != nil {
			t.Fatalf("trial %d: tail result infeasible: %v", trials, err)
		}
		if after, mid := partition.KMinus1(p.H, polished.Assignment), partition.KMinus1(p.H, loc.Assignment); after > mid {
			t.Fatalf("trial %d: tail worsened connectivity %d -> %d", trials, mid, after)
		}
	}
}

// TestLocalizedRefineBeatsRounds quantifies why the localized stage exists:
// on random problems it must, in aggregate, reach at least the connectivity
// the positive-only round stage reaches from the same inputs — localized
// searches can walk through negative prefixes the rounds cannot.
func TestLocalizedRefineBeatsRounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x10ca11, 4))
	trials := 0
	var roundsTotal, locTotal int64
	for trials < 30 {
		p, initial, ok := diffProblem(rng)
		if !ok {
			continue
		}
		trials++
		salt := rng.Uint64()
		rres, err := fm.ParallelRefine(p, initial, fm.Config{}, 2, salt)
		if err != nil {
			t.Fatalf("trial %d: rounds: %v", trials, err)
		}
		lres, err := fm.LocalizedRefine(p, initial, fm.Config{}, 2, salt)
		if err != nil {
			t.Fatalf("trial %d: localized: %v", trials, err)
		}
		roundsTotal += partition.KMinus1(p.H, rres.Assignment)
		locTotal += partition.KMinus1(p.H, lres.Assignment)
	}
	if locTotal > roundsTotal {
		t.Errorf("localized aggregate km1 %d worse than round stage %d", locTotal, roundsTotal)
	}
}

// TestParallelRefineSideways covers Config.Sideways: with the flag on, the
// round stage stays deterministic across worker counts, keeps the result
// feasible, never worsens connectivity, and its Gain ledger still equals the
// measured (λ-1) reduction (sideways commits contribute exactly zero). The
// flag's off state is the zero value, pinned by every existing golden.
func TestParallelRefineSideways(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x51dee, 1))
	trials := 0
	sidewaysRuns := 0
	for trials < 30 {
		p, initial, ok := diffProblem(rng)
		if !ok {
			continue
		}
		trials++
		salt := rng.Uint64()
		cfg := fm.Config{Sideways: true}
		km1In := partition.KMinus1(p.H, initial)
		want, err := fm.ParallelRefine(p, initial, cfg, 1, salt)
		if err != nil {
			t.Fatalf("trial %d: workers=1: %v", trials, err)
		}
		if err := p.Feasible(want.Assignment); err != nil {
			t.Fatalf("trial %d: infeasible result: %v", trials, err)
		}
		km1Out := partition.KMinus1(p.H, want.Assignment)
		if km1Out > km1In {
			t.Fatalf("trial %d: connectivity worsened: %d -> %d", trials, km1In, km1Out)
		}
		if got := km1In - km1Out; got != want.Gain {
			t.Fatalf("trial %d: Gain %d, measured reduction %d", trials, want.Gain, got)
		}
		for _, workers := range []int{2, 4, 8} {
			got, err := fm.ParallelRefine(p, initial, cfg, workers, salt)
			if err != nil {
				t.Fatalf("trial %d: workers=%d: %v", trials, workers, err)
			}
			if !reflect.DeepEqual(got.Assignment, want.Assignment) {
				t.Fatalf("trial %d: workers=%d assignment diverges from workers=1 with sideways on", trials, workers)
			}
			if got.Moves != want.Moves || got.Gain != want.Gain {
				t.Fatalf("trial %d: workers=%d moves/gain %d/%d, workers=1 %d/%d",
					trials, workers, got.Moves, got.Gain, want.Moves, want.Gain)
			}
		}
		// Count trials where sideways moves actually fired (moves beyond the
		// positive-only run) so the test cannot silently stop covering them.
		off, err := fm.ParallelRefine(p, initial, fm.Config{}, 1, salt)
		if err != nil {
			t.Fatalf("trial %d: sideways off: %v", trials, err)
		}
		if want.Moves > off.Moves {
			sidewaysRuns++
		}
	}
	if sidewaysRuns == 0 {
		t.Error("no trial committed a sideways move (flag inert?)")
	}
}
