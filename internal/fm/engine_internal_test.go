package fm

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// buildEngineProblem makes a random bipartition problem with a feasible
// initial assignment.
func buildEngineProblem(seed uint64, nv int) (*partition.Problem, partition.Assignment, bool) {
	rng := rand.New(rand.NewPCG(seed, 123))
	b := hypergraph.NewBuilder(1)
	for i := 0; i < nv; i++ {
		b.AddVertex(int64(1 + rng.IntN(4)))
	}
	for e := 0; e < 2*nv; e++ {
		sz := 2 + rng.IntN(3)
		b.AddNet(rng.Perm(nv)[:sz]...)
	}
	p := partition.NewBipartition(b.MustBuild(), 0.1)
	for v := 0; v < nv; v++ {
		if rng.IntN(5) == 0 {
			p.Fix(v, rng.IntN(2))
		}
	}
	initial, err := partition.RandomFeasible(p, rng)
	if err != nil {
		return nil, nil, false
	}
	return p, initial, true
}

// TestKernelInvariants drives the kernel at k=2 and checks that its
// incremental bookkeeping (pin counts, part weights) matches a from-scratch
// recomputation after the run.
func TestKernelInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		p, initial, ok := buildEngineProblem(seed, 40)
		if !ok {
			return true
		}
		e := newKernel(p, initial, Config{Policy: LIFO}, NewScratch())
		res := e.run()
		h := p.H
		k := e.k
		// Recompute pin counts from the final assignment.
		for en := 0; en < h.NumNets(); en++ {
			want := make([]int32, k)
			for _, v := range h.Pins(en) {
				want[e.a[v]]++
			}
			for q := 0; q < k; q++ {
				if e.pinCount[en*k+q] != want[q] {
					return false
				}
			}
		}
		// Recompute part weights.
		wantW := make([]int64, k)
		for v := 0; v < h.NumVertices(); v++ {
			wantW[e.a[v]] += h.Weight(v)
		}
		for q := 0; q < k; q++ {
			if e.weight[q][0] != wantW[q] {
				return false
			}
		}
		// The kernel's final assignment is the reported one.
		for v := range res.a {
			if res.a[v] != e.a[v] {
				return false
			}
		}
		return res.obj == partition.Cut(h, res.a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestKernelGainsFreshEachPass verifies initPass recomputes gains that match
// the textbook FS-TE definition at k=2, and that a single applied move keeps
// every unlocked gain consistent with a from-scratch recomputation.
func TestKernelGainsFreshEachPass(t *testing.T) {
	p, initial, ok := buildEngineProblem(7, 30)
	if !ok {
		t.Skip("infeasible draw")
	}
	e := newKernel(p, initial, Config{Policy: LIFO}, NewScratch())
	e.initPass()
	h := p.H
	k := e.k
	for v := 0; v < h.NumVertices(); v++ {
		if !e.movable[v] {
			continue
		}
		s := int(e.a[v])
		var want int64
		for _, en := range h.NetsOf(v) {
			w := h.NetWeight(int(en))
			if e.pinCount[int(en)*k+s] == 1 {
				want += w
			}
			if e.pinCount[int(en)*k+(1-s)] == 0 {
				want -= w
			}
		}
		if got := e.gk[2*(v*k+(1-s))]; got != want {
			t.Fatalf("vertex %d gain %d, want %d", v, got, want)
		}
	}
	// Apply the best feasible move and re-verify every unlocked gain.
	mid := e.selectMove()
	if mid < 0 {
		t.Skip("no feasible move")
	}
	e.applyMove(mid/int32(k), int(mid)%k)
	for u := 0; u < h.NumVertices(); u++ {
		if !e.movable[u] || e.locked[u] {
			continue
		}
		s := int(e.a[u])
		var want int64
		for _, en := range h.NetsOf(u) {
			w := h.NetWeight(int(en))
			if e.pinCount[int(en)*k+s] == 1 {
				want += w
			}
			if e.pinCount[int(en)*k+(1-s)] == 0 {
				want -= w
			}
		}
		if got := e.gk[2*(u*k+(1-s))]; got != want {
			t.Fatalf("after move: vertex %d gain %d, want %d", u, got, want)
		}
	}
}

// TestKWayKernelGainConsistency checks the kernel's incremental gain updates
// at k=3 against from-scratch recomputation after a few applied moves.
func TestKWayKernelGainConsistency(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	b := hypergraph.NewBuilder(1)
	const nv = 36
	for i := 0; i < nv; i++ {
		b.AddVertex(1)
	}
	for e := 0; e < 2*nv; e++ {
		sz := 2 + rng.IntN(3)
		b.AddNet(rng.Perm(nv)[:sz]...)
	}
	p := partition.NewFree(b.MustBuild(), 3, 0.2)
	initial, err := partition.RandomFeasible(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	e := newKernel(p, initial, Config{Policy: LIFO}, NewScratch())
	e.initPass()
	for step := 0; step < 5; step++ {
		mid := e.selectMove()
		if mid < 0 {
			break
		}
		e.applyMove(mid/int32(e.k), int(mid)%e.k)
		for u := int32(0); int(u) < nv; u++ {
			if e.locked[u] || !e.movable[u] {
				continue
			}
			for t2 := 0; t2 < e.k; t2++ {
				if t2 == int(e.a[u]) {
					continue
				}
				if got, want := e.gk[2*(int(u)*e.k+t2)], e.moveGain(u, t2); got != want {
					t.Fatalf("step %d: move (%d->%d) gain %d, want %d", step, u, t2, got, want)
				}
			}
		}
	}
}
