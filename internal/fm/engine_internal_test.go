package fm

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// buildEngineProblem makes a random bipartition problem with a feasible
// initial assignment.
func buildEngineProblem(seed uint64, nv int) (*partition.Problem, partition.Assignment, bool) {
	rng := rand.New(rand.NewPCG(seed, 123))
	b := hypergraph.NewBuilder(1)
	for i := 0; i < nv; i++ {
		b.AddVertex(int64(1 + rng.IntN(4)))
	}
	for e := 0; e < 2*nv; e++ {
		sz := 2 + rng.IntN(3)
		b.AddNet(rng.Perm(nv)[:sz]...)
	}
	p := partition.NewBipartition(b.MustBuild(), 0.1)
	for v := 0; v < nv; v++ {
		if rng.IntN(5) == 0 {
			p.Fix(v, rng.IntN(2))
		}
	}
	initial, err := partition.RandomFeasible(p, rng)
	if err != nil {
		return nil, nil, false
	}
	return p, initial, true
}

// TestEngineInvariants drives the bipartition engine and checks that its
// incremental bookkeeping (pin counts, part weights) matches a from-scratch
// recomputation after the run.
func TestEngineInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		p, initial, ok := buildEngineProblem(seed, 40)
		if !ok {
			return true
		}
		e := newEngine(p, initial, Config{Policy: LIFO}, NewScratch())
		res := e.run()
		h := p.H
		// Recompute pin counts from the final assignment.
		for en := 0; en < h.NumNets(); en++ {
			var want [2]int32
			for _, v := range h.Pins(en) {
				want[e.a[v]]++
			}
			if e.pinCount[0][en] != want[0] || e.pinCount[1][en] != want[1] {
				return false
			}
		}
		// Recompute part weights.
		var wantW [2]int64
		for v := 0; v < h.NumVertices(); v++ {
			wantW[e.a[v]] += h.Weight(v)
		}
		if e.weight[0][0] != wantW[0] || e.weight[1][0] != wantW[1] {
			return false
		}
		// The engine's final assignment is the reported one.
		for v := range res.Assignment {
			if res.Assignment[v] != e.a[v] {
				return false
			}
		}
		return res.Cut == partition.Cut(h, res.Assignment)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineGainsFreshEachPass verifies initPass recomputes gains that match
// the textbook FS-TE definition.
func TestEngineGainsFreshEachPass(t *testing.T) {
	p, initial, ok := buildEngineProblem(7, 30)
	if !ok {
		t.Skip("infeasible draw")
	}
	e := newEngine(p, initial, Config{Policy: LIFO}, NewScratch())
	e.initPass()
	h := p.H
	for v := 0; v < h.NumVertices(); v++ {
		if !e.movable[v] {
			continue
		}
		s := int(e.a[v])
		var want int64
		for _, en := range h.NetsOf(v) {
			w := h.NetWeight(int(en))
			if e.pinCount[s][en] == 1 {
				want += w
			}
			if e.pinCount[1-s][en] == 0 {
				want -= w
			}
		}
		if e.gain[v] != want {
			t.Fatalf("vertex %d gain %d, want %d", v, e.gain[v], want)
		}
		// A single applied move must keep neighbour gains consistent with a
		// from-scratch recomputation.
	}
	// Apply the best feasible move and re-verify every unlocked gain.
	v := e.selectMove()
	if v < 0 {
		t.Skip("no feasible move")
	}
	e.applyMove(v)
	for u := 0; u < h.NumVertices(); u++ {
		if !e.movable[u] || e.locked[u] {
			continue
		}
		s := int(e.a[u])
		var want int64
		for _, en := range h.NetsOf(u) {
			w := h.NetWeight(int(en))
			if e.pinCount[s][en] == 1 {
				want += w
			}
			if e.pinCount[1-s][en] == 0 {
				want -= w
			}
		}
		if e.gain[u] != want {
			t.Fatalf("after move: vertex %d gain %d, want %d", u, e.gain[u], want)
		}
	}
}

// TestKWayEngineGainConsistency checks the k-way engine's incremental gain
// updates against from-scratch recomputation after a few applied moves.
func TestKWayEngineGainConsistency(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	b := hypergraph.NewBuilder(1)
	const nv = 36
	for i := 0; i < nv; i++ {
		b.AddVertex(1)
	}
	for e := 0; e < 2*nv; e++ {
		sz := 2 + rng.IntN(3)
		b.AddNet(rng.Perm(nv)[:sz]...)
	}
	p := partition.NewFree(b.MustBuild(), 3, 0.2)
	initial, err := partition.RandomFeasible(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	e := newKWayEngine(p, initial, Config{Policy: LIFO})
	e.initPass()
	for step := 0; step < 5; step++ {
		mid := e.selectMove()
		if mid < 0 {
			break
		}
		e.applyMove(int32(mid/e.k), mid%e.k)
		for u := int32(0); int(u) < nv; u++ {
			if e.locked[u] || !e.movable[u] {
				continue
			}
			for t2 := 0; t2 < e.k; t2++ {
				if t2 == int(e.a[u]) {
					continue
				}
				if got, want := e.gain[int(u)*e.k+t2], e.moveGain(u, t2); got != want {
					t.Fatalf("step %d: move (%d->%d) gain %d, want %d", step, u, t2, got, want)
				}
			}
		}
	}
}
