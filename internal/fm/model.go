package fm

import (
	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// cutModel is the part-count-generic cut model shared by every FM entry
// point: per-net pin counts Φ(e, part), per-part multi-resource weights,
// movability derived from partition.Mask, and the connectivity-aware move
// gain g(v, target) — the (λ-1) delta of moving v to the target part, which
// for k = 2 is exactly the classic FM cut gain. The model owns the state and
// its structural invariants (apply/undo keep Φ and the weights consistent
// with the assignment); move ordering lives in the policy layer (kernel).
//
// All bulk arrays are Scratch-backed so repeated runs reuse them.
type cutModel struct {
	p *partition.Problem
	h *hypergraph.Hypergraph
	k int

	a        partition.Assignment
	pinCount []int32   // Φ(e, q) at index e*k+q
	weight   [][]int64 // [part][resource]
	movable  []bool    // at least two allowed parts
	locked   []bool    // moved in the current pass
	nMovable int
}

// init sizes the model's arrays out of sc and loads the initial assignment:
// pin counts, part weights, and movability (a vertex is movable when its
// allowed mask intersected with the k live parts leaves at least two
// choices; anything else is a fixed terminal for this run).
func (m *cutModel) init(p *partition.Problem, initial partition.Assignment, sc *Scratch) {
	h := p.H
	k := p.K
	nv := h.NumVertices()
	ne := h.NumNets()
	nr := h.NumResources()
	sc.prepare(nv, ne, nr, k)
	m.p, m.h, m.k = p, h, k
	m.a = initial.Clone()
	m.pinCount = sc.pinCount
	m.weight = sc.weight
	m.movable = sc.movable
	m.locked = sc.locked
	m.nMovable = 0
	for en := 0; en < ne; en++ {
		for _, v := range h.Pins(en) {
			m.pinCount[en*k+int(m.a[v])]++
		}
	}
	all := partition.AllParts(k)
	for v := 0; v < nv; v++ {
		for r := 0; r < nr; r++ {
			m.weight[m.a[v]][r] += h.WeightIn(v, r)
		}
		if p.MaskOf(v).Intersect(all).Count() >= 2 {
			m.movable[v] = true
			m.nMovable++
		}
	}
}

// moveGain computes from scratch the (λ-1) connectivity reduction of moving
// v from its current part to part t: v leaving a net's last pin in its part
// removes that part from the net's span (+w); v arriving in a part the net
// does not yet touch adds one (-w). For k = 2 this is the textbook FS-TE
// cut gain.
func (m *cutModel) moveGain(v int32, t int) int64 {
	h := m.h
	k := m.k
	from := int(m.a[v])
	var g int64
	for _, en := range h.NetsOf(int(v)) {
		w := h.NetWeight(int(en))
		if m.pinCount[int(en)*k+from] == 1 {
			g += w
		}
		if m.pinCount[int(en)*k+t] == 0 {
			g -= w
		}
	}
	return g
}

// feasibleMove reports whether moving v to part t keeps every resource of
// both affected parts within balance.
func (m *cutModel) feasibleMove(v int32, t int) bool {
	from := int(m.a[v])
	for r := 0; r < m.h.NumResources(); r++ {
		w := m.h.WeightIn(int(v), r)
		if m.weight[from][r]-w < m.p.Balance.Min[from][r] {
			return false
		}
		if m.weight[t][r]+w > m.p.Balance.Max[t][r] {
			return false
		}
	}
	return true
}

// moveVertex commits v's part change: per-resource weights and assignment.
// Pin counts are shifted net-by-net by the caller (the policy layer reads Φ
// mid-transition to apply the critical-net gain rules).
func (m *cutModel) moveVertex(v int32, from, to int) {
	for r := 0; r < m.h.NumResources(); r++ {
		w := m.h.WeightIn(int(v), r)
		m.weight[from][r] -= w
		m.weight[to][r] += w
	}
	m.a[v] = int8(to)
}

// undoMove reverses a committed move structurally (pin counts, weights,
// assignment), returning v to part f. Gains are rebuilt at the next pass, so
// they are left stale.
func (m *cutModel) undoMove(v int32, f int) {
	k := m.k
	cur := int(m.a[v])
	for _, en := range m.h.NetsOf(int(v)) {
		base := int(en) * k
		m.pinCount[base+cur]--
		m.pinCount[base+f]++
	}
	m.moveVertex(v, cur, f)
}
