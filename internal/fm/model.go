package fm

import (
	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// cutModel is the cut implementation of the gainModel interface and the
// structural base every other model embeds: per-net pin counts Φ(e, part),
// per-part multi-resource weights, movability derived from partition.Mask,
// and the connectivity-aware move gain g(v, target) — the (λ-1) delta of
// moving v to the target part, which for k = 2 is exactly the classic FM cut
// gain. The model owns the state and its structural invariants (apply/undo
// keep Φ and the weights consistent with the assignment); move ordering
// lives in the policy layer (kernel).
//
// All bulk arrays are Scratch-backed so repeated runs reuse them.
type cutModel struct {
	p *partition.Problem
	h *hypergraph.Hypergraph
	k int

	a        partition.Assignment
	pinCount []int32 // Φ(e, q) at index e*k+q
	// passNet packs each net's per-pass lock state into one record of
	// nsStride = k+2 int32 slots (for k = 2: 16 bytes, one cache line shared
	// by four nets), so the kernel's per-(move, net) lock bookkeeping — the
	// skip checks that decide whether to scan the pin list at all, plus the
	// locked-pin counting — reads one line instead of gathering from three
	// parallel arrays. Φ deliberately stays in its own dense e*k+q array:
	// the gain-seeding gather in initPass touches only Φ, and folding it
	// into the record would quarter that scan's cache density. Net e's
	// record starts at e*nsStride:
	//
	//	[0, k)  locked pins per part, this pass
	//	k       still-unlocked movable pins, this pass
	//	k+1     parts with >= 1 locked pin, this pass
	passNet  []int32
	nsStride int
	weight   [][]int64 // [part][resource]
	movable  []bool    // at least two allowed parts
	locked   []bool    // moved in the current pass
	nMovable int

	// tgtOff/tgtList is a flat CSR of each vertex's allowed target parts
	// (mask ∩ live parts, ascending), built once per run so the hot path
	// never consults partition.Mask. Immovable vertices get an empty row.
	tgtOff  []int32
	tgtList []int8
	// fixedLocked counts immovable pins per (net, part); fixedCover counts
	// parts with at least one immovable pin per net. They seed the per-pass
	// locked-pin counters: a fixed terminal behaves like a vertex locked
	// before the pass's first move. movablePins counts each net's movable
	// pins; it seeds the kernel's per-pass unlocked-pin counters.
	fixedLocked []int32
	fixedCover  []int32
	movablePins []int32
}

// init sizes the model's arrays out of sc and loads the initial assignment:
// pin counts, part weights, and movability (a vertex is movable when its
// allowed mask intersected with the k live parts leaves at least two
// choices; anything else is a fixed terminal for this run).
func (m *cutModel) init(p *partition.Problem, initial partition.Assignment, sc *Scratch) {
	h := p.H
	k := p.K
	nv := h.NumVertices()
	ne := h.NumNets()
	nr := h.NumResources()
	sc.prepare(nv, ne, nr, k)
	m.p, m.h, m.k = p, h, k
	// The working assignment is scratch-backed (no per-run allocation); the
	// kernel clones it into the result on the way out.
	m.a = sc.assign
	copy(m.a, initial)
	m.pinCount = sc.pinCount
	m.passNet = sc.passNet
	m.nsStride = k + 2
	m.weight = sc.weight
	m.movable = sc.movable
	m.locked = sc.locked
	m.nMovable = 0
	all := partition.AllParts(k)
	tgtList := sc.tgtList
	for v := 0; v < nv; v++ {
		for r := 0; r < nr; r++ {
			m.weight[m.a[v]][r] += h.WeightIn(v, r)
		}
		sc.tgtOff[v] = int32(len(tgtList))
		if live := p.MaskOf(v).Intersect(all); live.Count() >= 2 {
			m.movable[v] = true
			m.nMovable++
			for t := 0; t < k; t++ {
				if live.Contains(t) {
					tgtList = append(tgtList, int8(t))
				}
			}
		}
	}
	sc.tgtOff[nv] = int32(len(tgtList))
	sc.tgtList = tgtList
	m.tgtOff = sc.tgtOff
	m.tgtList = tgtList
	// One scan over all pins fills Φ, counts each net's movable pins (which
	// seed the kernel's per-pass unlocked-pin counters), and seeds the
	// locked-net counters with the immovable pins: those never move, so a
	// part they cover holds at least one "locked" pin from the first move of
	// every pass. Only nets large enough for the kernel to track get the
	// per-part seeding (lockTrackMinPins).
	for en := 0; en < ne; en++ {
		pins := h.Pins(en)
		base := en * k
		track := len(pins) >= lockTrackMinPins
		mp := int32(0)
		for _, v := range pins {
			q := int(m.a[v])
			m.pinCount[base+q]++
			if m.movable[v] {
				mp++
			} else if track {
				if sc.fixedLocked[base+q] == 0 {
					sc.fixedCover[en]++
				}
				sc.fixedLocked[base+q]++
			}
		}
		sc.movablePins[en] = mp
	}
	m.fixedLocked = sc.fixedLocked
	m.fixedCover = sc.fixedCover
	m.movablePins = sc.movablePins
}

// core returns the model's shared structural state: cutModel is itself the
// base layer every gain model embeds.
func (m *cutModel) core() *cutModel { return m }

// objective names the metric finalScore computes.
func (m *cutModel) objective() Objective { return ObjectiveCut }

// finalScore evaluates the weighted net cut by definition. At k = 2 it
// coincides with the kernel's (λ-1) pass ledger; for k > 2 the ledger tracks
// connectivity while this reports the cut the run is selected by.
func (m *cutModel) finalScore(a partition.Assignment) int64 {
	return partition.Cut(m.h, a)
}

// targets returns v's allowed target parts (ascending, excluding nothing —
// the caller skips the current part, or relies on bucket membership to).
func (m *cutModel) targets(v int32) []int8 {
	return m.tgtList[m.tgtOff[v]:m.tgtOff[v+1]]
}

// moveGain computes from scratch the (λ-1) connectivity reduction of moving
// v from its current part to part t: v leaving a net's last pin in its part
// removes that part from the net's span (+w); v arriving in a part the net
// does not yet touch adds one (-w). For k = 2 this is the textbook FS-TE
// cut gain.
func (m *cutModel) moveGain(v int32, t int) int64 {
	h := m.h
	k := m.k
	from := int(m.a[v])
	var g int64
	for _, en := range h.NetsOf(int(v)) {
		// Immovable pins covering every part pin the net's contribution to
		// zero: Φ(from) >= 2 (v plus a fixed pin) and Φ(t) >= 1, whatever the
		// movable pins do. (fixedCover is only maintained for nets of >=
		// lockTrackMinPins pins; for smaller nets it stays 0 and the check
		// just never fires.)
		if int(m.fixedCover[en]) == k {
			continue
		}
		base := int(en) * k
		if m.pinCount[base+from] == 1 {
			g += h.NetWeight(int(en))
		}
		if m.pinCount[base+t] == 0 {
			g -= h.NetWeight(int(en))
		}
	}
	return g
}

// feasibleMove reports whether moving v to part t keeps every resource of
// both affected parts within balance.
func (m *cutModel) feasibleMove(v int32, t int) bool {
	from := int(m.a[v])
	for r := 0; r < m.h.NumResources(); r++ {
		w := m.h.WeightIn(int(v), r)
		if m.weight[from][r]-w < m.p.Balance.Min[from][r] {
			return false
		}
		if m.weight[t][r]+w > m.p.Balance.Max[t][r] {
			return false
		}
	}
	return true
}

// moveVertex commits v's part change: per-resource weights and assignment.
// Pin counts are shifted net-by-net by the caller (the policy layer reads Φ
// mid-transition to apply the critical-net gain rules).
func (m *cutModel) moveVertex(v int32, from, to int) {
	for r := 0; r < m.h.NumResources(); r++ {
		w := m.h.WeightIn(int(v), r)
		m.weight[from][r] -= w
		m.weight[to][r] += w
	}
	m.a[v] = int8(to)
}

// undoMove reverses a committed move structurally (pin counts, weights,
// assignment), returning v to part f. Gains are rebuilt at the next pass, so
// they are left stale.
func (m *cutModel) undoMove(v int32, f int) {
	k := m.k
	cur := int(m.a[v])
	for _, en := range m.h.NetsOf(int(v)) {
		base := int(en) * k
		m.pinCount[base+cur]--
		m.pinCount[base+f]++
	}
	m.moveVertex(v, cur, f)
}
