package experiments

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// Regime selects how fixed vertices are assigned to partitions.
type Regime int

const (
	// Good fixes chosen vertices consistently with the best min-cut
	// solution known for the unconstrained instance.
	Good Regime = iota
	// Rand fixes chosen vertices independently into random partitions.
	Rand
)

// String returns "good" or "rand".
func (r Regime) String() string {
	if r == Good {
		return "good"
	}
	return "rand"
}

// DefaultFractions is the paper's fixed-vertex percentage schedule:
// 0%, 0.1%, 0.5%, 1%, 2%, 5%, 10%, 15%, 20%, 30%, 40%, 50%.
func DefaultFractions() []float64 {
	return []float64{0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50}
}

// FixSchedule precomputes a nested fixing order, so that (as in the paper)
// all vertices fixed at 1% are also fixed at 2%: the first ceil(f*n)
// vertices of Order are fixed at fraction f. RandParts holds the random
// partition each vertex would be fixed into under the Rand regime, drawn
// once so the regimes share the same vertex subsets.
type FixSchedule struct {
	Order        []int
	RandParts    []int8
	GoodSolution partition.Assignment
	K            int
}

// NewFixSchedule draws a schedule for h. goodSolution is the best known
// solution of the unconstrained instance (used by the Good regime); it must
// cover every vertex.
func NewFixSchedule(h *hypergraph.Hypergraph, k int, goodSolution partition.Assignment, rng *rand.Rand) (*FixSchedule, error) {
	if len(goodSolution) != h.NumVertices() {
		return nil, fmt.Errorf("experiments: good solution covers %d of %d vertices", len(goodSolution), h.NumVertices())
	}
	s := &FixSchedule{
		Order:        rng.Perm(h.NumVertices()),
		RandParts:    make([]int8, h.NumVertices()),
		GoodSolution: goodSolution.Clone(),
		K:            k,
	}
	for i := range s.RandParts {
		s.RandParts[i] = int8(rng.IntN(k))
	}
	return s, nil
}

// NumFixed returns how many vertices are fixed at the given fraction.
func (s *FixSchedule) NumFixed(fraction float64) int {
	n := int(fraction * float64(len(s.Order)))
	if n > len(s.Order) {
		n = len(s.Order)
	}
	return n
}

// Apply returns a copy of base with the schedule's first fraction*n vertices
// fixed under the given regime. The base problem's own constraints (if any)
// are preserved and intersected with the fixing.
func (s *FixSchedule) Apply(base *partition.Problem, fraction float64, regime Regime) *partition.Problem {
	p := &partition.Problem{H: base.H, K: base.K, Balance: base.Balance}
	if base.Allowed != nil {
		p.Allowed = append([]partition.Mask(nil), base.Allowed...)
	}
	n := s.NumFixed(fraction)
	for _, v := range s.Order[:n] {
		part := int(s.GoodSolution[v])
		if regime == Rand {
			part = int(s.RandParts[v])
		}
		p.Fix(v, part)
	}
	return p
}
