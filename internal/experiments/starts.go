package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"

	"repro/internal/hypergraph"
	"repro/internal/multilevel"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/stats"
)

// StartsRow reports, for one regime and fixing level, the multistart effort
// an adaptive policy actually spends: the paper's question 3 asks for
// "guidelines as to the effort (e.g., with respect to a multistart regime)
// required ... when a given proportion of vertices in the instance are
// fixed."
type StartsRow struct {
	Instance string
	Regime   Regime
	Fraction float64
	// AvgStarts is the average number of starts the adaptive policy used
	// (patience 2, up to 16) before concluding further starts were futile.
	AvgStarts float64
	// AvgCut is the average best cut the adaptive policy returned.
	AvgCut float64
}

// StartsRequired measures adaptive multistart effort across fixing levels,
// running its independent (regime, fraction, trial) cells on cfg.Workers
// goroutines. Per-cell RNGs derive from the seed and cell index, so the
// study is deterministic for every worker count.
func StartsRequired(name string, h *hypergraph.Hypergraph, cfg SweepConfig) ([]StartsRow, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x57a7))
	base := partition.NewBipartition(h, cfg.Tolerance)
	best, err := multilevel.ParallelMultistart(base, withWorkers(cfg.ML, cfg.Workers), cfg.GoodStarts, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: starts study on %s: %w", name, err)
	}
	sched, err := NewFixSchedule(h, 2, best.Assignment, rng)
	if err != nil {
		return nil, err
	}
	type job struct {
		prob   *partition.Problem
		starts int
		cut    int64
		err    error
	}
	cellSeed := rng.Uint64()
	var jobs []job
	for _, regime := range []Regime{Good, Rand} {
		for _, frac := range cfg.Fractions {
			prob := sched.Apply(base, frac, regime)
			for trial := 0; trial < cfg.Trials; trial++ {
				jobs = append(jobs, job{prob: prob})
			}
		}
	}
	par.ForEach(len(jobs), cfg.Workers, func(i int) {
		jrng := rand.New(rand.NewPCG(cellSeed, uint64(i)))
		res, err := multilevel.AdaptiveMultistart(jobs[i].prob, cfg.ML, 16, 2, jrng)
		if err != nil {
			jobs[i].err = err
			return
		}
		jobs[i].starts = res.Starts
		jobs[i].cut = res.Cut
	})
	var rows []StartsRow
	j := 0
	for _, regime := range []Regime{Good, Rand} {
		for _, frac := range cfg.Fractions {
			var starts, cut float64
			for trial := 0; trial < cfg.Trials; trial++ {
				if jobs[j].err != nil {
					return nil, fmt.Errorf("experiments: starts study %v %.1f%%: %w", regime, 100*frac, jobs[j].err)
				}
				starts += float64(jobs[j].starts)
				cut += float64(jobs[j].cut)
				j++
			}
			rows = append(rows, StartsRow{
				Instance:  name,
				Regime:    regime,
				Fraction:  frac,
				AvgStarts: starts / float64(cfg.Trials),
				AvgCut:    cut / float64(cfg.Trials),
			})
		}
	}
	return rows, nil
}

// RenderStartsRequired writes the study as a table.
func RenderStartsRequired(w io.Writer, rows []StartsRow) error {
	fmt.Fprintf(w, "Multistart effort: adaptive starts used (patience 2, max 16) vs %%fixed\n\n")
	t := &stats.Table{Header: []string{"instance", "regime", "%fixed", "avg starts", "avg cut"}}
	for _, r := range rows {
		t.Add(r.Instance, r.Regime.String(), fmt.Sprintf("%.1f", 100*r.Fraction),
			fmt.Sprintf("%.1f", r.AvgStarts), fmt.Sprintf("%.1f", r.AvgCut))
	}
	return t.Render(w)
}
