package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"

	"repro/internal/hypergraph"
	"repro/internal/multilevel"
	"repro/internal/partition"
	"repro/internal/stats"
)

// ConstraintRow relates constraint-strength measures to observed instance
// easiness at one fixing level. The paper's conclusion asks how to measure
// "the strength of fixed terminals, or alternatively the degree of
// constraint in particular problem instances"; this study pairs the
// invariant measures of partition.Constrainedness with the multistart
// benefit (1-start over 8-start average cut — near 1 means easy).
type ConstraintRow struct {
	Instance string
	Regime   Regime
	Fraction float64
	Report   partition.ConstraintReport
	// StartsBenefit is avg(1-start cut)/avg(8-start cut).
	StartsBenefit float64
	// AvgCut is the 1-start average cut.
	AvgCut float64
}

// ConstraintStudy measures constraint strength and easiness across fixing
// levels for both regimes.
func ConstraintStudy(name string, h *hypergraph.Hypergraph, cfg SweepConfig) ([]ConstraintRow, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xc057))
	base := partition.NewBipartition(h, cfg.Tolerance)
	bestRes, err := multilevel.Multistart(base, cfg.ML, cfg.GoodStarts, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: constraint study on %s: %w", name, err)
	}
	sched, err := NewFixSchedule(h, 2, bestRes.Assignment, rng)
	if err != nil {
		return nil, err
	}
	var rows []ConstraintRow
	for _, regime := range []Regime{Good, Rand} {
		for _, frac := range cfg.Fractions {
			prob := sched.Apply(base, frac, regime)
			var one, eight float64
			for trial := 0; trial < cfg.Trials; trial++ {
				r1, err := multilevel.Partition(prob, cfg.ML, rng)
				if err != nil {
					return nil, fmt.Errorf("experiments: constraint study %v %.1f%%: %w", regime, 100*frac, err)
				}
				one += float64(r1.Cut)
				r8, err := multilevel.Multistart(prob, cfg.ML, 8, rng)
				if err != nil {
					return nil, err
				}
				eight += float64(r8.Cut)
			}
			row := ConstraintRow{
				Instance: name,
				Regime:   regime,
				Fraction: frac,
				Report:   partition.Constrainedness(prob),
				AvgCut:   one / float64(cfg.Trials),
			}
			if eight > 0 {
				row.StartsBenefit = one / eight
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderConstraintStudy writes the study as a table.
func RenderConstraintStudy(w io.Writer, rows []ConstraintRow) error {
	fmt.Fprintf(w, "Constraint study: invariant constraint measures vs multistart benefit\n")
	fmt.Fprintf(w, "(netfix = constrained-net fraction, touch = touched-free fraction,\n")
	fmt.Fprintf(w, " forced = forced-cut lower bound, 1v8 = 1-start/8-start avg cut)\n\n")
	t := &stats.Table{Header: []string{"instance", "regime", "%fixed", "netfix", "touch", "forced", "avg cut", "1v8"}}
	for _, r := range rows {
		t.Add(r.Instance, r.Regime.String(), fmt.Sprintf("%.1f", 100*r.Fraction),
			fmt.Sprintf("%.3f", r.Report.ConstrainedNetFraction),
			fmt.Sprintf("%.3f", r.Report.TouchedFreeFraction),
			r.Report.ForcedCut,
			fmt.Sprintf("%.1f", r.AvgCut),
			fmt.Sprintf("%.3f", r.StartsBenefit))
	}
	return t.Render(w)
}
