package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"

	"repro/internal/hypergraph"
	"repro/internal/multilevel"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/stats"
)

// ConstraintRow relates constraint-strength measures to observed instance
// easiness at one fixing level. The paper's conclusion asks how to measure
// "the strength of fixed terminals, or alternatively the degree of
// constraint in particular problem instances"; this study pairs the
// invariant measures of partition.Constrainedness with the multistart
// benefit (1-start over 8-start average cut — near 1 means easy).
type ConstraintRow struct {
	Instance string
	Regime   Regime
	Fraction float64
	Report   partition.ConstraintReport
	// StartsBenefit is avg(1-start cut)/avg(8-start cut).
	StartsBenefit float64
	// AvgCut is the 1-start average cut.
	AvgCut float64
}

// ConstraintStudy measures constraint strength and easiness across fixing
// levels for both regimes. Independent (regime, fraction, trial) cells run
// on cfg.Workers goroutines with index-derived RNGs, so the study is
// deterministic for every worker count.
func ConstraintStudy(name string, h *hypergraph.Hypergraph, cfg SweepConfig) ([]ConstraintRow, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xc057))
	base := partition.NewBipartition(h, cfg.Tolerance)
	bestRes, err := multilevel.ParallelMultistart(base, withWorkers(cfg.ML, cfg.Workers), cfg.GoodStarts, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: constraint study on %s: %w", name, err)
	}
	sched, err := NewFixSchedule(h, 2, bestRes.Assignment, rng)
	if err != nil {
		return nil, err
	}
	type job struct {
		prob       *partition.Problem
		one, eight int64
		err        error
	}
	cellSeed := rng.Uint64()
	var jobs []job
	for _, regime := range []Regime{Good, Rand} {
		for _, frac := range cfg.Fractions {
			prob := sched.Apply(base, frac, regime)
			for trial := 0; trial < cfg.Trials; trial++ {
				jobs = append(jobs, job{prob: prob})
			}
		}
	}
	par.ForEach(len(jobs), cfg.Workers, func(i int) {
		jrng := rand.New(rand.NewPCG(cellSeed, uint64(i)))
		r1, err := multilevel.Partition(jobs[i].prob, cfg.ML, jrng)
		if err != nil {
			jobs[i].err = err
			return
		}
		jobs[i].one = r1.Cut
		r8, err := multilevel.Multistart(jobs[i].prob, cfg.ML, 8, jrng)
		if err != nil {
			jobs[i].err = err
			return
		}
		jobs[i].eight = r8.Cut
	})
	var rows []ConstraintRow
	j := 0
	for _, regime := range []Regime{Good, Rand} {
		for _, frac := range cfg.Fractions {
			prob := jobs[j].prob
			var one, eight float64
			for trial := 0; trial < cfg.Trials; trial++ {
				if jobs[j].err != nil {
					return nil, fmt.Errorf("experiments: constraint study %v %.1f%%: %w", regime, 100*frac, jobs[j].err)
				}
				one += float64(jobs[j].one)
				eight += float64(jobs[j].eight)
				j++
			}
			row := ConstraintRow{
				Instance: name,
				Regime:   regime,
				Fraction: frac,
				Report:   partition.Constrainedness(prob),
				AvgCut:   one / float64(cfg.Trials),
			}
			if eight > 0 {
				row.StartsBenefit = one / eight
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderConstraintStudy writes the study as a table.
func RenderConstraintStudy(w io.Writer, rows []ConstraintRow) error {
	fmt.Fprintf(w, "Constraint study: invariant constraint measures vs multistart benefit\n")
	fmt.Fprintf(w, "(netfix = constrained-net fraction, touch = touched-free fraction,\n")
	fmt.Fprintf(w, " forced = forced-cut lower bound, 1v8 = 1-start/8-start avg cut)\n\n")
	t := &stats.Table{Header: []string{"instance", "regime", "%fixed", "netfix", "touch", "forced", "avg cut", "1v8"}}
	for _, r := range rows {
		t.Add(r.Instance, r.Regime.String(), fmt.Sprintf("%.1f", 100*r.Fraction),
			fmt.Sprintf("%.3f", r.Report.ConstrainedNetFraction),
			fmt.Sprintf("%.3f", r.Report.TouchedFreeFraction),
			r.Report.ForcedCut,
			fmt.Sprintf("%.1f", r.AvgCut),
			fmt.Sprintf("%.3f", r.StartsBenefit))
	}
	return t.Render(w)
}
