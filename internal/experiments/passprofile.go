package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"

	"repro/internal/fm"
	"repro/internal/hypergraph"
	"repro/internal/partition"
	"repro/internal/stats"
)

// PassProfileRow summarizes where LIFO-FM passes peak at one fixing level:
// Deciles[i] is the fraction of improving passes (after the first) whose
// best prefix — the point the pass is rolled back to — lies within the first
// (i+1)*10% of the pass's moves. The paper's Section III motivation, "with
// more fixed terminals, the improvements in a pass are more likely to occur
// near the beginning of the pass", appears as the early deciles approaching
// 1: the cumulative-gain curve peaks almost immediately and every later move
// is wasted.
type PassProfileRow struct {
	Instance string
	Fraction float64
	Deciles  [10]float64
	Passes   int // improving passes contributing to the distribution
	// MeanPeak is the average relative position (Kept/Moves) of the best
	// prefix.
	MeanPeak float64
}

// PassProfile runs the pass-shape study on h in the Good regime.
func PassProfile(name string, h *hypergraph.Hypergraph, cfg FlatConfig) ([]PassProfileRow, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x9a55))
	base := partition.NewBipartition(h, cfg.Tolerance)
	sched, err := goodSchedule(base, cfg, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: pass profile on %s: %w", name, err)
	}
	var rows []PassProfileRow
	for _, frac := range cfg.Fractions {
		prob := sched.Apply(base, frac, Good)
		row := PassProfileRow{Instance: name, Fraction: frac}
		var peakSum float64
		for run := 0; run < cfg.Runs; run++ {
			res, err := fm.RunFromRandom(prob, fm.Config{Policy: fm.LIFO}, rng)
			if err != nil {
				return nil, fmt.Errorf("experiments: pass profile on %s at %.1f%%: %w", name, 100*frac, err)
			}
			for i, ps := range res.Passes {
				if i == 0 || ps.Gain <= 0 || ps.Moves == 0 {
					continue
				}
				pos := float64(ps.Kept) / float64(ps.Moves)
				peakSum += pos
				for d := 0; d < 10; d++ {
					if pos <= float64(d+1)/10 {
						row.Deciles[d]++
					}
				}
				row.Passes++
			}
		}
		if row.Passes > 0 {
			for d := range row.Deciles {
				row.Deciles[d] /= float64(row.Passes)
			}
			row.MeanPeak = peakSum / float64(row.Passes)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderPassProfile writes the study as a table: the CDF of best-prefix
// positions, one decile per column, plus the mean peak position.
func RenderPassProfile(w io.Writer, rows []PassProfileRow) error {
	fmt.Fprintf(w, "Pass peak positions (good regime, LIFO-FM, improving passes after the\n")
	fmt.Fprintf(w, "first): fraction of passes whose best prefix falls within the first d%% of\n")
	fmt.Fprintf(w, "moves — early peaks mean late moves are wasted and cutoffs are safe\n\n")
	header := []string{"instance", "%fixed", "passes", "mean peak"}
	for d := 1; d <= 10; d++ {
		header = append(header, fmt.Sprintf("<=%d0%%", d))
	}
	t := &stats.Table{Header: header}
	for _, r := range rows {
		row := []any{r.Instance, fmt.Sprintf("%.1f", 100*r.Fraction), r.Passes,
			fmt.Sprintf("%.3f", r.MeanPeak)}
		for _, v := range r.Deciles {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		t.Add(row...)
	}
	return t.Render(w)
}
