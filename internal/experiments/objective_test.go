package experiments_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestObjectiveStudy(t *testing.T) {
	h := testNetlist(t, 250, 11)
	cfg := experiments.SweepConfig{
		Fractions:  []float64{0, 0.2},
		Trials:     2,
		Tolerance:  0.1,
		GoodStarts: 2,
		Seed:       11,
	}
	rows, err := experiments.ObjectiveStudy("T250", h, []int{2, 4}, cfg)
	if err != nil {
		t.Fatalf("ObjectiveStudy: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 ks x 2 fractions)", len(rows))
	}
	for _, r := range rows {
		// Selection from an identical candidate set can only help the metric
		// selected on: km1-optimized mean km1 <= cut-optimized mean km1, and
		// symmetrically for the cut.
		if r.KM1OptKM1 > r.CutOptKM1 {
			t.Errorf("k=%d %.0f%%: km1-optimized mean km1 %.1f > cut-optimized %.1f",
				r.K, 100*r.Fraction, r.KM1OptKM1, r.CutOptKM1)
		}
		if r.CutOptCut > r.KM1OptCut {
			t.Errorf("k=%d %.0f%%: cut-optimized mean cut %.1f > km1-optimized %.1f",
				r.K, 100*r.Fraction, r.CutOptCut, r.KM1OptCut)
		}
		// SOED = cut + km1 holds for means of winners too.
		for _, pair := range [][3]float64{
			{r.CutOptSOED, r.CutOptCut, r.CutOptKM1},
			{r.KM1OptSOED, r.KM1OptCut, r.KM1OptKM1},
		} {
			if diff := pair[0] - pair[1] - pair[2]; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("k=%d %.0f%%: soed %.3f != cut %.3f + km1 %.3f", r.K, 100*r.Fraction, pair[0], pair[1], pair[2])
			}
		}
		// k = 2 is the control: the objectives coincide, so the optimizers
		// must return identical numbers.
		if r.K == 2 && (r.CutOptCut != r.KM1OptCut || r.CutOptKM1 != r.KM1OptKM1) {
			t.Errorf("k=2 %.0f%%: optimizers disagree (%+v)", 100*r.Fraction, r)
		}
	}
	// Determinism across worker counts.
	cfg.Workers = 3
	rows2, err := experiments.ObjectiveStudy("T250", h, []int{2, 4}, cfg)
	if err != nil {
		t.Fatalf("ObjectiveStudy workers=3: %v", err)
	}
	for i := range rows {
		if rows[i] != rows2[i] {
			t.Errorf("row %d differs across worker counts: %+v vs %+v", i, rows[i], rows2[i])
		}
	}
	var buf bytes.Buffer
	if err := experiments.RenderObjectiveStudy(&buf, rows); err != nil {
		t.Fatalf("render: %v", err)
	}
	if !strings.Contains(buf.String(), "km1-opt km1") {
		t.Error("rendered table missing header")
	}
}
