// Package experiments implements the paper's experimental protocol: nested
// random fixing of vertex subsets in the "good" and "rand" regimes, the
// multistart sweeps behind Figures 1 and 2, the flat-FM pass-statistics
// study of Table II, the pass-cutoff study of Table III, the
// benchmark-parameter reporting of Tables I and IV, and the extension
// studies (constraint strength, within-pass gain profiles, multistart
// effort) exposed by cmd/experiments.
//
// # Concurrency and determinism
//
// Sweeps fan their independent cells (one per fixed-fraction × trial ×
// start-count point) onto a bounded worker pool via internal/par. Each cell
// derives its RNG from the experiment seed and its own indices, never from
// shared state, and writes into a slot addressed by those indices, so every
// table and figure is bit-identical for every worker count. The nested
// fixing schedule is monotone by construction: the vertices fixed at
// fraction f are a subset of those fixed at any f' > f within one trial,
// matching the paper's protocol.
package experiments
