package experiments

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/benchgen"
	"repro/internal/fm"
	"repro/internal/hypergraph"
	"repro/internal/multilevel"
	"repro/internal/partition"
)

// FlatConfig parameterizes the flat LIFO-FM studies of Tables II and III.
type FlatConfig struct {
	// Fractions of vertices to fix in the Good regime (terminals "fixed in
	// a good location", as Section III specifies). Default DefaultFractions.
	Fractions []float64
	// Runs is the number of single FM starts averaged (the paper uses 50).
	Runs int
	// Tolerance is the balance tolerance (paper: 0.02).
	Tolerance float64
	// GoodStarts finds the reference solution (default 8).
	GoodStarts int
	// ML configures the engine used only to find the reference solution.
	ML   multilevel.Config
	Seed uint64
}

func (c FlatConfig) withDefaults() FlatConfig {
	if c.Fractions == nil {
		c.Fractions = DefaultFractions()
	}
	if c.Runs <= 0 {
		c.Runs = 50
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 0.02
	}
	if c.GoodStarts <= 0 {
		c.GoodStarts = 8
	}
	return c
}

// TableIIRow reports LIFO-FM pass statistics at one fixing level: the
// average number of passes per run and the average percentage of movable
// vertices whose moves were retained per pass, excluding the first pass
// (moves past the retained prefix are wasted and undone; the paper observes
// this percentage falls as terminals are added).
type TableIIRow struct {
	Instance    string
	Fraction    float64
	AvgPasses   float64
	AvgPctMoved float64
}

// TableII runs the paper's Table II protocol on h.
func TableII(name string, h *hypergraph.Hypergraph, cfg FlatConfig) ([]TableIIRow, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x7ab1e2))
	base := partition.NewBipartition(h, cfg.Tolerance)
	sched, err := goodSchedule(base, cfg, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: table II on %s: %w", name, err)
	}
	var rows []TableIIRow
	for _, frac := range cfg.Fractions {
		prob := sched.Apply(base, frac, Good)
		var passes, pctSum float64
		var pctN int
		for run := 0; run < cfg.Runs; run++ {
			res, err := fm.RunFromRandom(prob, fm.Config{Policy: fm.LIFO}, rng)
			if err != nil {
				return nil, fmt.Errorf("experiments: table II on %s at %.1f%%: %w", name, 100*frac, err)
			}
			passes += float64(len(res.Passes))
			for i, ps := range res.Passes {
				if i == 0 || res.Movable == 0 {
					continue
				}
				pctSum += 100 * float64(ps.Kept) / float64(res.Movable)
				pctN++
			}
		}
		row := TableIIRow{Instance: name, Fraction: frac, AvgPasses: passes / float64(cfg.Runs)}
		if pctN > 0 {
			row.AvgPctMoved = pctSum / float64(pctN)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// DefaultCutoffs are the move-limit fractions studied in Table III: no
// cutoff, then 50%, 25%, 10% and 5% of the movable vertices per pass
// (first pass exempt).
func DefaultCutoffs() []float64 { return []float64{1, 0.5, 0.25, 0.10, 0.05} }

// TableIIIRow reports the effect of one pass cutoff at one fixing level:
// average cut and average CPU per single LIFO-FM start.
type TableIIIRow struct {
	Instance string
	Fraction float64
	Cutoff   float64 // 1 means no cutoff
	AvgCut   float64
	AvgCPU   time.Duration
}

// TableIII runs the paper's Table III protocol on h.
func TableIII(name string, h *hypergraph.Hypergraph, cutoffs []float64, cfg FlatConfig) ([]TableIIIRow, error) {
	cfg = cfg.withDefaults()
	if cutoffs == nil {
		cutoffs = DefaultCutoffs()
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x7ab1e3))
	base := partition.NewBipartition(h, cfg.Tolerance)
	sched, err := goodSchedule(base, cfg, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: table III on %s: %w", name, err)
	}
	var rows []TableIIIRow
	for _, frac := range cfg.Fractions {
		prob := sched.Apply(base, frac, Good)
		for _, cutoff := range cutoffs {
			fmCfg := fm.Config{Policy: fm.LIFO}
			if cutoff < 1 {
				fmCfg.MaxPassFraction = cutoff
			}
			var cutSum float64
			var cpu time.Duration
			for run := 0; run < cfg.Runs; run++ {
				t0 := time.Now()
				res, err := fm.RunFromRandom(prob, fmCfg, rng)
				if err != nil {
					return nil, fmt.Errorf("experiments: table III on %s at %.1f%%: %w", name, 100*frac, err)
				}
				cpu += time.Since(t0)
				cutSum += float64(res.Cut)
			}
			rows = append(rows, TableIIIRow{
				Instance: name,
				Fraction: frac,
				Cutoff:   cutoff,
				AvgCut:   cutSum / float64(cfg.Runs),
				AvgCPU:   cpu / time.Duration(cfg.Runs),
			})
		}
	}
	return rows, nil
}

// goodSchedule finds a best-known solution and draws a nested fix schedule.
func goodSchedule(base *partition.Problem, cfg FlatConfig, rng *rand.Rand) (*FixSchedule, error) {
	best, err := multilevel.Multistart(base, cfg.ML, cfg.GoodStarts, rng)
	if err != nil {
		return nil, err
	}
	return NewFixSchedule(base.H, 2, best.Assignment, rng)
}

// TableIVRow is one line of the paper's Table IV: parameters of a derived
// fixed-terminals benchmark instance.
type TableIVRow struct {
	Name         string
	Cells        int
	Nets         int
	Pads         int
	ExternalNets int
	MaxPct       float64
	FixedPct     float64 // fixed vertices as % of instance vertices
}

// TableIV summarizes derived benchmark instances.
func TableIV(instances []*benchgen.Instance) []TableIVRow {
	rows := make([]TableIVRow, 0, len(instances))
	for _, inst := range instances {
		rows = append(rows, TableIVRow{
			Name:         inst.Name,
			Cells:        inst.Stats.Cells,
			Nets:         inst.Stats.Nets,
			Pads:         inst.Stats.Pads,
			ExternalNets: inst.Stats.ExternalNets,
			MaxPct:       inst.Stats.MaxPct,
			FixedPct:     100 * inst.Problem.FixedFraction(),
		})
	}
	return rows
}

// MultiwayRow is one data point of the multiway extension experiment (the
// paper's open question 1: is multiway partitioning as affected by fixed
// terminals?).
type MultiwayRow struct {
	Instance   string
	K          int
	Regime     Regime
	Fraction   float64
	AvgCut     float64
	Normalized float64
}

// MultiwaySweep runs a reduced Figure-1-style sweep with k-way partitioning
// (k a power of two): multilevel recursive bisection followed by a direct
// k-way FM refinement pass.
func MultiwaySweep(name string, h *hypergraph.Hypergraph, k int, cfg SweepConfig) ([]MultiwayRow, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x3a9))
	base := partition.NewFree(h, k, cfg.Tolerance)
	kway := func(prob *partition.Problem) (partition.Assignment, int64, error) {
		r, err := multilevel.RecursiveBisect(prob, cfg.ML, rng)
		if err != nil {
			return nil, 0, err
		}
		ref, err := fm.KWayPartition(prob, r.Assignment, fm.Config{Policy: fm.CLIP})
		if err != nil {
			return nil, 0, err
		}
		return ref.Assignment, ref.Cut, nil
	}
	best := partition.Assignment(nil)
	var bestCut int64 = 1 << 62
	for s := 0; s < cfg.GoodStarts; s++ {
		a, cut, err := kway(base)
		if err != nil {
			return nil, fmt.Errorf("experiments: multiway good solution: %w", err)
		}
		if cut < bestCut {
			bestCut, best = cut, a
		}
	}
	sched, err := NewFixSchedule(h, k, best, rng)
	if err != nil {
		return nil, err
	}
	var rows []MultiwayRow
	for _, regime := range []Regime{Good, Rand} {
		for _, frac := range cfg.Fractions {
			prob := sched.Apply(base, frac, regime)
			var sum float64
			instBest := int64(1) << 62
			for trial := 0; trial < cfg.Trials; trial++ {
				_, cut, err := kway(prob)
				if err != nil {
					return nil, fmt.Errorf("experiments: multiway %v %.1f%%: %w", regime, 100*frac, err)
				}
				sum += float64(cut)
				if cut < instBest {
					instBest = cut
				}
			}
			row := MultiwayRow{
				Instance: name, K: k, Regime: regime, Fraction: frac,
				AvgCut: sum / float64(cfg.Trials),
			}
			ref := float64(bestCut)
			if regime == Rand {
				ref = float64(instBest)
			}
			if ref > 0 {
				row.Normalized = row.AvgCut / ref
			} else {
				row.Normalized = 1
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Overconstrained returns the fractions at which the good-regime average cut
// for the given starts count exceeds both neighbouring fractions — the
// paper's "relatively overconstrained" nonmonotonicity signal.
func Overconstrained(res *SweepResult, starts int) []float64 {
	var pts []*SweepPoint
	for i := range res.Points {
		p := &res.Points[i]
		if p.Regime == Good && p.Starts == starts {
			pts = append(pts, p)
		}
	}
	var out []float64
	for i := 1; i+1 < len(pts); i++ {
		if pts[i].AvgBestCut > pts[i-1].AvgBestCut && pts[i].AvgBestCut > pts[i+1].AvgBestCut {
			out = append(out, pts[i].Fraction)
		}
	}
	return out
}
