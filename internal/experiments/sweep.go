package experiments

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/hypergraph"
	"repro/internal/multilevel"
	"repro/internal/partition"
)

// SweepConfig parameterizes the Figures 1-2 protocol.
type SweepConfig struct {
	// Fractions of vertices to fix (default DefaultFractions).
	Fractions []float64
	// Starts are the multistart counts plotted as separate traces
	// (default 1, 2, 4, 8).
	Starts []int
	// Trials is the number of independent trials averaged per data point
	// (the paper uses 50).
	Trials int
	// Tolerance is the balance tolerance (the paper uses 0.02).
	Tolerance float64
	// GoodStarts is the number of multilevel starts invested in finding the
	// best-known solution of the unconstrained instance (default 10).
	GoodStarts int
	// ML configures the multilevel engine.
	ML multilevel.Config
	// Seed makes the sweep deterministic.
	Seed uint64
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.Fractions == nil {
		c.Fractions = DefaultFractions()
	}
	if c.Starts == nil {
		c.Starts = []int{1, 2, 4, 8}
	}
	if c.Trials <= 0 {
		c.Trials = 10
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 0.02
	}
	if c.GoodStarts <= 0 {
		c.GoodStarts = 10
	}
	return c
}

// SweepPoint is one data point of a Figure 1/2 plot: a (regime, fraction,
// starts) cell averaged over trials.
type SweepPoint struct {
	Regime     Regime
	Fraction   float64
	Starts     int
	AvgBestCut float64
	// Normalized is AvgBestCut divided by the regime's reference: the
	// best-known free cut for Good, and the best cut seen across every
	// start of this instance (this fraction) for Rand.
	Normalized float64
	// AvgCPU is the average wall-clock per trial (all starts of the trial).
	AvgCPU time.Duration
}

// SweepResult holds a full Figure 1/2 dataset for one circuit.
type SweepResult struct {
	Instance     string
	Vertices     int
	BestFreeCut  int64
	GoodSolution partition.Assignment
	Points       []SweepPoint
	// RandBest[fraction] is the reference cut used to normalize the Rand
	// regime at that fraction.
	RandBest map[float64]int64
}

// RunSweep executes the paper's Figure 1/2 protocol on h.
func RunSweep(name string, h *hypergraph.Hypergraph, cfg SweepConfig) (*SweepResult, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xf19a7e))
	base := partition.NewBipartition(h, cfg.Tolerance)

	// Best-known solution of the unconstrained instance ("good" reference).
	best, err := multilevel.Multistart(base, cfg.ML, cfg.GoodStarts, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: finding good solution for %s: %w", name, err)
	}
	sched, err := NewFixSchedule(h, 2, best.Assignment, rng)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		Instance:     name,
		Vertices:     h.NumVertices(),
		BestFreeCut:  best.Cut,
		GoodSolution: best.Assignment,
		RandBest:     map[float64]int64{},
	}
	for _, regime := range []Regime{Good, Rand} {
		for _, frac := range cfg.Fractions {
			prob := sched.Apply(base, frac, regime)
			type cell struct {
				sumCut float64
				sumCPU time.Duration
			}
			cells := make([]cell, len(cfg.Starts))
			instBest := int64(1) << 62
			for trial := 0; trial < cfg.Trials; trial++ {
				for si, starts := range cfg.Starts {
					t0 := time.Now()
					r, err := multilevel.Multistart(prob, cfg.ML, starts, rng)
					if err != nil {
						return nil, fmt.Errorf("experiments: %s %v %.1f%% starts=%d: %w",
							name, regime, 100*frac, starts, err)
					}
					cells[si].sumCut += float64(r.Cut)
					cells[si].sumCPU += time.Since(t0)
					if r.Cut < instBest {
						instBest = r.Cut
					}
				}
			}
			if regime == Rand {
				res.RandBest[frac] = instBest
			}
			for si, starts := range cfg.Starts {
				pt := SweepPoint{
					Regime:     regime,
					Fraction:   frac,
					Starts:     starts,
					AvgBestCut: cells[si].sumCut / float64(cfg.Trials),
					AvgCPU:     cells[si].sumCPU / time.Duration(cfg.Trials),
				}
				ref := float64(best.Cut)
				if regime == Rand {
					ref = float64(instBest)
				}
				if ref > 0 {
					pt.Normalized = pt.AvgBestCut / ref
				} else {
					pt.Normalized = 1
				}
				res.Points = append(res.Points, pt)
			}
		}
	}
	return res, nil
}

// Point returns the sweep point for (regime, fraction, starts), or nil.
func (r *SweepResult) Point(regime Regime, fraction float64, starts int) *SweepPoint {
	for i := range r.Points {
		p := &r.Points[i]
		if p.Regime == regime && p.Fraction == fraction && p.Starts == starts {
			return p
		}
	}
	return nil
}

// StartsBenefit returns, for the given regime and fraction, the relative
// quality advantage of the largest multistart trace over the single-start
// trace: (avg cut at 1 start) / (avg cut at max starts). Values near 1 mean
// extra starts buy nothing — the paper's "instances with many fixed
// terminals are easy" signal.
func (r *SweepResult) StartsBenefit(regime Regime, fraction float64) float64 {
	var one, most *SweepPoint
	maxStarts := 0
	for i := range r.Points {
		p := &r.Points[i]
		if p.Regime != regime || p.Fraction != fraction {
			continue
		}
		if p.Starts == 1 {
			one = p
		}
		if p.Starts > maxStarts {
			maxStarts = p.Starts
			most = p
		}
	}
	if one == nil || most == nil || most.AvgBestCut == 0 {
		return 1
	}
	return one.AvgBestCut / most.AvgBestCut
}
