package experiments

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/hypergraph"
	"repro/internal/multilevel"
	"repro/internal/par"
	"repro/internal/partition"
)

// SweepConfig parameterizes the Figures 1-2 protocol.
type SweepConfig struct {
	// Fractions of vertices to fix (default DefaultFractions).
	Fractions []float64
	// Starts are the multistart counts plotted as separate traces
	// (default 1, 2, 4, 8).
	Starts []int
	// Trials is the number of independent trials averaged per data point
	// (the paper uses 50).
	Trials int
	// Tolerance is the balance tolerance (the paper uses 0.02).
	Tolerance float64
	// GoodStarts is the number of multilevel starts invested in finding the
	// best-known solution of the unconstrained instance (default 10).
	GoodStarts int
	// ML configures the multilevel engine.
	ML multilevel.Config
	// Seed makes the sweep deterministic.
	Seed uint64
	// Workers bounds the goroutines running independent (regime, fraction,
	// trial) cells (<= 0 means runtime.GOMAXPROCS). Cell RNGs derive from
	// Seed and the cell index, so results are identical for every worker
	// count — only wall-clock changes.
	Workers int
	// RefineWorkers, when nonzero, overrides ML.RefineWorkers for every
	// multilevel run of the protocol: positive values enable the
	// synchronous-round parallel refinement stage at that worker count
	// (every count >= 1 is bit-identical), negative values force the stage
	// off even if ML asked for it. Zero leaves ML.RefineWorkers as given.
	RefineWorkers int
	// LocalizedFMWorkers, when nonzero, overrides ML.LocalizedFMWorkers the
	// same way: positive values enable the localized FM stage at the finest
	// level at that worker count (every count >= 1 is bit-identical),
	// negative values force the stage off even if ML asked for it. Zero
	// leaves ML.LocalizedFMWorkers as given.
	LocalizedFMWorkers int
	// SharedHierarchies, when positive, runs each multistart cell through
	// multilevel.SharedMultistart with that many coarsening hierarchies:
	// cheaper sweeps at a small cut penalty from follower descents. Zero
	// keeps the paper's protocol of fully independent starts.
	SharedHierarchies int
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.Fractions == nil {
		c.Fractions = DefaultFractions()
	}
	if c.Starts == nil {
		c.Starts = []int{1, 2, 4, 8}
	}
	if c.Trials <= 0 {
		c.Trials = 10
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 0.02
	}
	if c.GoodStarts <= 0 {
		c.GoodStarts = 10
	}
	if c.RefineWorkers > 0 {
		c.ML.RefineWorkers = c.RefineWorkers
	} else if c.RefineWorkers < 0 {
		c.ML.RefineWorkers = 0
	}
	if c.LocalizedFMWorkers > 0 {
		c.ML.LocalizedFMWorkers = c.LocalizedFMWorkers
	} else if c.LocalizedFMWorkers < 0 {
		c.ML.LocalizedFMWorkers = 0
	}
	return c
}

// SweepPoint is one data point of a Figure 1/2 plot: a (regime, fraction,
// starts) cell averaged over trials.
type SweepPoint struct {
	Regime     Regime
	Fraction   float64
	Starts     int
	AvgBestCut float64
	// Normalized is AvgBestCut divided by the regime's reference: the
	// best-known free cut for Good, and the best cut seen across every
	// start of this instance (this fraction) for Rand.
	Normalized float64
	// AvgCPU is the average wall-clock per trial (all starts of the trial).
	AvgCPU time.Duration
}

// SweepResult holds a full Figure 1/2 dataset for one circuit.
type SweepResult struct {
	Instance     string
	Vertices     int
	BestFreeCut  int64
	GoodSolution partition.Assignment
	Points       []SweepPoint
	// RandBest[fraction] is the reference cut used to normalize the Rand
	// regime at that fraction.
	RandBest map[float64]int64
}

// sweepJob is one independent unit of the sweep protocol: a (regime,
// fraction, trial, starts) cell. Jobs run concurrently on a bounded worker
// pool; each derives its RNG from the sweep seed and its own index, so the
// dataset is identical for every worker count.
type sweepJob struct {
	prob   *partition.Problem
	starts int
	cut    int64
	cpu    time.Duration
	err    error
}

// RunSweep executes the paper's Figure 1/2 protocol on h, running its
// independent (regime, fraction, trial) cells on cfg.Workers goroutines.
func RunSweep(name string, h *hypergraph.Hypergraph, cfg SweepConfig) (*SweepResult, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xf19a7e))
	base := partition.NewBipartition(h, cfg.Tolerance)

	// Best-known solution of the unconstrained instance ("good" reference).
	best, err := multilevel.ParallelMultistart(base, withWorkers(cfg.ML, cfg.Workers), cfg.GoodStarts, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: finding good solution for %s: %w", name, err)
	}
	sched, err := NewFixSchedule(h, 2, best.Assignment, rng)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		Instance:     name,
		Vertices:     h.NumVertices(),
		BestFreeCut:  best.Cut,
		GoodSolution: best.Assignment,
		RandBest:     map[float64]int64{},
	}

	// Flatten the protocol into independent jobs, one per (regime, fraction,
	// trial, starts) cell; all trials of a (regime, fraction) pair share one
	// problem (read-only during solving).
	cellSeed := rng.Uint64()
	var jobs []sweepJob
	for _, regime := range []Regime{Good, Rand} {
		for _, frac := range cfg.Fractions {
			prob := sched.Apply(base, frac, regime)
			for trial := 0; trial < cfg.Trials; trial++ {
				for _, starts := range cfg.Starts {
					jobs = append(jobs, sweepJob{prob: prob, starts: starts})
				}
			}
		}
	}
	runCells(jobs, cellSeed, cfg.Workers, cfg.ML, cfg.SharedHierarchies)

	// Aggregate in deterministic job order.
	j := 0
	for _, regime := range []Regime{Good, Rand} {
		for _, frac := range cfg.Fractions {
			type cell struct {
				sumCut float64
				sumCPU time.Duration
			}
			cells := make([]cell, len(cfg.Starts))
			instBest := int64(1) << 62
			for trial := 0; trial < cfg.Trials; trial++ {
				for si := range cfg.Starts {
					job := &jobs[j]
					j++
					if job.err != nil {
						return nil, fmt.Errorf("experiments: %s %v %.1f%% starts=%d: %w",
							name, regime, 100*frac, job.starts, job.err)
					}
					cells[si].sumCut += float64(job.cut)
					cells[si].sumCPU += job.cpu
					if job.cut < instBest {
						instBest = job.cut
					}
				}
			}
			if regime == Rand {
				res.RandBest[frac] = instBest
			}
			for si, starts := range cfg.Starts {
				pt := SweepPoint{
					Regime:     regime,
					Fraction:   frac,
					Starts:     starts,
					AvgBestCut: cells[si].sumCut / float64(cfg.Trials),
					AvgCPU:     cells[si].sumCPU / time.Duration(cfg.Trials),
				}
				ref := float64(best.Cut)
				if regime == Rand {
					ref = float64(instBest)
				}
				if ref > 0 {
					pt.Normalized = pt.AvgBestCut / ref
				} else {
					pt.Normalized = 1
				}
				res.Points = append(res.Points, pt)
			}
		}
	}
	return res, nil
}

// runCells executes the jobs concurrently. Job i's RNG derives from
// (cellSeed, i), so the outcome of every cell is independent of scheduling.
// With sharedHierarchies > 0, multistart cells amortise coarsening through
// multilevel.SharedMultistart (single-start cells gain nothing from sharing
// and keep the plain path).
func runCells(jobs []sweepJob, cellSeed uint64, workers int, ml multilevel.Config, sharedHierarchies int) {
	par.ForEach(len(jobs), workers, func(i int) {
		job := &jobs[i]
		rng := rand.New(rand.NewPCG(cellSeed, uint64(i)))
		t0 := time.Now()
		var r *multilevel.Result
		var err error
		if sharedHierarchies > 0 && job.starts > 1 {
			r, err = multilevel.SharedMultistart(job.prob, ml, job.starts, sharedHierarchies, rng)
		} else {
			r, err = multilevel.Multistart(job.prob, ml, job.starts, rng)
		}
		job.cpu = time.Since(t0)
		if err != nil {
			job.err = err
			return
		}
		job.cut = r.Cut
	})
}

// withWorkers returns ml with its worker bound overridden by the sweep-level
// setting, for the protocol phases that parallelize inside one multistart
// (reference-solution search) rather than across cells.
func withWorkers(ml multilevel.Config, workers int) multilevel.Config {
	ml.Workers = workers
	return ml
}

// Point returns the sweep point for (regime, fraction, starts), or nil.
func (r *SweepResult) Point(regime Regime, fraction float64, starts int) *SweepPoint {
	for i := range r.Points {
		p := &r.Points[i]
		if p.Regime == regime && p.Fraction == fraction && p.Starts == starts {
			return p
		}
	}
	return nil
}

// StartsBenefit returns, for the given regime and fraction, the relative
// quality advantage of the largest multistart trace over the single-start
// trace: (avg cut at 1 start) / (avg cut at max starts). Values near 1 mean
// extra starts buy nothing — the paper's "instances with many fixed
// terminals are easy" signal.
func (r *SweepResult) StartsBenefit(regime Regime, fraction float64) float64 {
	var one, most *SweepPoint
	maxStarts := 0
	for i := range r.Points {
		p := &r.Points[i]
		if p.Regime != regime || p.Fraction != fraction {
			continue
		}
		if p.Starts == 1 {
			one = p
		}
		if p.Starts > maxStarts {
			maxStarts = p.Starts
			most = p
		}
	}
	if one == nil || most == nil || most.AvgBestCut == 0 {
		return 1
	}
	return one.AvgBestCut / most.AvgBestCut
}
