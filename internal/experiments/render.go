package experiments

import (
	"fmt"
	"io"

	"repro/internal/rent"
	"repro/internal/stats"
)

// RenderTableI writes the paper's Table I for the given Rent parameters.
func RenderTableI(w io.Writer, ps []float64, k float64) error {
	rows, err := rent.TableI(ps, k)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table I: block sizes below which expected fixed vertices exceed a given\n")
	fmt.Fprintf(w, "percentage of instance vertices (k = %.1f pins/cell)\n\n", k)
	t := &stats.Table{Header: []string{"p", ">5% fixed", ">10% fixed", ">20% fixed"}}
	for _, r := range rows {
		t.Add(fmt.Sprintf("%.2f", r.P),
			fmt.Sprintf("%.0f", r.Cells5Pct),
			fmt.Sprintf("%.0f", r.Cells10Pct),
			fmt.Sprintf("%.0f", r.Cells20Pct))
	}
	return t.Render(w)
}

// RenderSweep writes a Figure 1/2 dataset as three tables per regime (raw
// cut, normalized cut, CPU), with one column per starts trace — the text
// equivalent of the paper's six plots.
func RenderSweep(w io.Writer, res *SweepResult, starts []int) error {
	fmt.Fprintf(w, "Figure data: %s (%d vertices), best free cut = %d\n",
		res.Instance, res.Vertices, res.BestFreeCut)
	fractions := sweepFractions(res)
	for _, regime := range []Regime{Good, Rand} {
		for _, metric := range []string{"raw best cut", "normalized cut", "CPU ms/trial"} {
			fmt.Fprintf(w, "\n[%s] %s\n", regime, metric)
			header := []string{"%fixed"}
			for _, s := range starts {
				header = append(header, fmt.Sprintf("%d start(s)", s))
			}
			t := &stats.Table{Header: header}
			for _, f := range fractions {
				row := []any{fmt.Sprintf("%.1f", 100*f)}
				for _, s := range starts {
					p := res.Point(regime, f, s)
					if p == nil {
						row = append(row, "-")
						continue
					}
					switch metric {
					case "raw best cut":
						row = append(row, fmt.Sprintf("%.1f", p.AvgBestCut))
					case "normalized cut":
						row = append(row, fmt.Sprintf("%.3f", p.Normalized))
					default:
						row = append(row, fmt.Sprintf("%.1f", float64(p.AvgCPU.Microseconds())/1000))
					}
				}
				t.Add(row...)
			}
			if err := t.Render(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// SweepCSV writes the raw sweep data points as CSV (one row per regime x
// fraction x starts cell), for plotting Figures 1-2 with external tools.
func SweepCSV(w io.Writer, res *SweepResult) error {
	t := &stats.Table{Header: []string{
		"instance", "regime", "fraction", "starts", "avg_best_cut", "normalized", "avg_cpu_ms",
	}}
	for _, p := range res.Points {
		t.Add(res.Instance, p.Regime.String(),
			fmt.Sprintf("%g", p.Fraction), p.Starts,
			fmt.Sprintf("%.3f", p.AvgBestCut),
			fmt.Sprintf("%.4f", p.Normalized),
			fmt.Sprintf("%.3f", float64(p.AvgCPU.Microseconds())/1000))
	}
	return t.CSV(w)
}

func sweepFractions(res *SweepResult) []float64 {
	var out []float64
	seen := map[float64]bool{}
	for _, p := range res.Points {
		if !seen[p.Fraction] {
			seen[p.Fraction] = true
			out = append(out, p.Fraction)
		}
	}
	return out
}

// RenderTableII writes Table II rows.
func RenderTableII(w io.Writer, rows []TableIIRow) error {
	fmt.Fprintf(w, "Table II: LIFO-FM pass statistics (good regime)\n\n")
	t := &stats.Table{Header: []string{"instance", "%fixed", "avg passes/run", "avg %moved/pass"}}
	for _, r := range rows {
		t.Add(r.Instance, fmt.Sprintf("%.1f", 100*r.Fraction),
			fmt.Sprintf("%.2f", r.AvgPasses), fmt.Sprintf("%.1f", r.AvgPctMoved))
	}
	return t.Render(w)
}

// RenderTableIII writes Table III rows in the paper's "avg cut (avg CPU)"
// form, one column per cutoff.
func RenderTableIII(w io.Writer, rows []TableIIIRow, cutoffs []float64) error {
	fmt.Fprintf(w, "Table III: LIFO-FM with pass cutoffs — avg cut (avg CPU ms)\n\n")
	header := []string{"instance", "%fixed"}
	for _, c := range cutoffs {
		if c >= 1 {
			header = append(header, "no cutoff")
		} else {
			header = append(header, fmt.Sprintf("%.0f%% moves", 100*c))
		}
	}
	t := &stats.Table{Header: header}
	type key struct {
		inst string
		frac float64
	}
	cells := map[key]map[float64]TableIIIRow{}
	var order []key
	for _, r := range rows {
		k := key{r.Instance, r.Fraction}
		if cells[k] == nil {
			cells[k] = map[float64]TableIIIRow{}
			order = append(order, k)
		}
		cells[k][r.Cutoff] = r
	}
	for _, k := range order {
		row := []any{k.inst, fmt.Sprintf("%.1f", 100*k.frac)}
		for _, c := range cutoffs {
			r, ok := cells[k][c]
			if !ok {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.1f (%.1f)", r.AvgCut, float64(r.AvgCPU.Microseconds())/1000))
		}
		t.Add(row...)
	}
	return t.Render(w)
}

// RenderTableIV writes Table IV rows.
func RenderTableIV(w io.Writer, rows []TableIVRow) error {
	fmt.Fprintf(w, "Table IV: parameters of derived fixed-terminals benchmarks\n\n")
	t := &stats.Table{Header: []string{"instance", "cells", "nets", "pads", "ext nets", "Max%", "%fixed"}}
	for _, r := range rows {
		t.Add(r.Name, r.Cells, r.Nets, r.Pads, r.ExternalNets,
			fmt.Sprintf("%.2f", r.MaxPct), fmt.Sprintf("%.1f", r.FixedPct))
	}
	return t.Render(w)
}

// RenderMultiway writes the multiway extension rows.
func RenderMultiway(w io.Writer, rows []MultiwayRow) error {
	fmt.Fprintf(w, "Multiway extension: k-way recursive bisection vs %%fixed\n\n")
	t := &stats.Table{Header: []string{"instance", "k", "regime", "%fixed", "avg cut", "normalized"}}
	for _, r := range rows {
		t.Add(r.Instance, r.K, r.Regime.String(), fmt.Sprintf("%.1f", 100*r.Fraction),
			fmt.Sprintf("%.1f", r.AvgCut), fmt.Sprintf("%.3f", r.Normalized))
	}
	return t.Render(w)
}
