package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"

	"repro/internal/fm"
	"repro/internal/hypergraph"
	"repro/internal/multilevel"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/stats"
)

// KWayModeRow compares, for one (k, fixed fraction) cell, the two ways this
// engine reaches a k-way partition: direct k-way V-cycling (coarsen the full
// problem once, refine k-way at every level) versus recursive multilevel
// bisection with a final direct k-way FM polish. Cuts are averaged over
// cfg.Trials independent single starts per mode.
type KWayModeRow struct {
	Instance  string
	K         int
	Fraction  float64
	DirectCut float64
	RBCut     float64
}

// KWayModeStudy measures direct k-way versus recursive bisection across part
// counts and fixing levels, the engine-side counterpart of the issue's
// acceptance bar (direct mean cut <= rb's). Fixed vertices follow the Good
// regime of a reference k-way solution so the fixing is satisfiable at every
// fraction. Cells run on cfg.Workers goroutines with per-cell RNGs derived
// from the seed and cell index, so results are identical for every worker
// count.
func KWayModeStudy(name string, h *hypergraph.Hypergraph, ks []int, cfg SweepConfig) ([]KWayModeRow, error) {
	cfg = cfg.withDefaults()
	if len(ks) == 0 {
		ks = []int{3, 4}
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x4b3a))
	type cell struct {
		k      int
		frac   float64
		prob   *partition.Problem
		direct int64
		rb     int64
		err    error
	}
	var cells []cell
	for _, k := range ks {
		base := partition.NewFree(h, k, cfg.Tolerance)
		ref, err := multilevel.ParallelMultistartKWay(base, withWorkers(cfg.ML, cfg.Workers), cfg.GoodStarts, rng)
		if err != nil {
			return nil, fmt.Errorf("experiments: k-way mode study reference (k=%d): %w", k, err)
		}
		sched, err := NewFixSchedule(h, k, ref.Assignment, rng)
		if err != nil {
			return nil, err
		}
		for _, frac := range cfg.Fractions {
			prob := sched.Apply(base, frac, Good)
			for trial := 0; trial < cfg.Trials; trial++ {
				cells = append(cells, cell{k: k, frac: frac, prob: prob})
			}
		}
	}
	cellSeed := rng.Uint64()
	par.ForEach(len(cells), cfg.Workers, func(i int) {
		c := &cells[i]
		dres, err := multilevel.PartitionKWay(c.prob, cfg.ML, rand.New(rand.NewPCG(cellSeed, uint64(2*i))))
		if err != nil {
			c.err = err
			return
		}
		rres, err := multilevel.RecursiveBisect(c.prob, cfg.ML, rand.New(rand.NewPCG(cellSeed, uint64(2*i+1))))
		if err != nil {
			c.err = err
			return
		}
		polish, err := fmKWayPolish(c.prob, rres.Assignment, cfg.ML)
		if err != nil {
			c.err = err
			return
		}
		c.direct = dres.Cut
		c.rb = polish
	})
	var rows []KWayModeRow
	i := 0
	for _, k := range ks {
		for _, frac := range cfg.Fractions {
			var direct, rb float64
			for trial := 0; trial < cfg.Trials; trial++ {
				if cells[i].err != nil {
					return nil, fmt.Errorf("experiments: k-way mode cell k=%d %.1f%%: %w", k, 100*frac, cells[i].err)
				}
				direct += float64(cells[i].direct)
				rb += float64(cells[i].rb)
				i++
			}
			rows = append(rows, KWayModeRow{
				Instance:  name,
				K:         k,
				Fraction:  frac,
				DirectCut: direct / float64(cfg.Trials),
				RBCut:     rb / float64(cfg.Trials),
			})
		}
	}
	return rows, nil
}

// fmKWayPolish applies the rb mode's final direct k-way FM refinement and
// returns the polished cut.
func fmKWayPolish(p *partition.Problem, a partition.Assignment, ml multilevel.Config) (int64, error) {
	cfg := ml
	res, err := fm.KWayPartition(p, a, fm.Config{Policy: fm.CLIP, MaxPassFraction: cfg.MaxPassFraction})
	if err != nil {
		return 0, err
	}
	return res.Cut, nil
}

// RenderKWayModeStudy writes the study as a table.
func RenderKWayModeStudy(w io.Writer, rows []KWayModeRow) error {
	fmt.Fprintf(w, "Direct k-way vs recursive bisection: mean cut by part count and %%fixed\n\n")
	t := &stats.Table{Header: []string{"instance", "k", "%fixed", "direct cut", "rb cut"}}
	for _, r := range rows {
		t.Add(r.Instance, fmt.Sprintf("%d", r.K), fmt.Sprintf("%.1f", 100*r.Fraction),
			fmt.Sprintf("%.1f", r.DirectCut), fmt.Sprintf("%.1f", r.RBCut))
	}
	return t.Render(w)
}
