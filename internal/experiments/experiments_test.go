package experiments_test

import (
	"bytes"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/benchgen"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/hypergraph"
	"repro/internal/multilevel"
	"repro/internal/partition"
	"repro/internal/place"
)

func testNetlist(t *testing.T, cells int, seed uint64) *hypergraph.Hypergraph {
	t.Helper()
	nl, err := gen.Generate(gen.Params{
		Cells:        cells,
		Pads:         12,
		RentExponent: 0.65,
		PinsPerCell:  3.6,
		AvgNetSize:   3.3,
		MaxAreaPct:   2,
		Seed:         seed,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return nl.H
}

func TestFixScheduleNested(t *testing.T) {
	h := testNetlist(t, 300, 1)
	rng := rand.New(rand.NewPCG(1, 1))
	good := make(partition.Assignment, h.NumVertices())
	sched, err := experiments.NewFixSchedule(h, 2, good, rng)
	if err != nil {
		t.Fatalf("NewFixSchedule: %v", err)
	}
	base := partition.NewBipartition(h, 0.1)
	p1 := sched.Apply(base, 0.1, experiments.Rand)
	p2 := sched.Apply(base, 0.3, experiments.Rand)
	// Nesting: every vertex fixed at 10% is fixed to the same part at 30%.
	for v := 0; v < h.NumVertices(); v++ {
		if part, ok := p1.FixedPart(v); ok {
			part2, ok2 := p2.FixedPart(v)
			if !ok2 || part2 != part {
				t.Fatalf("vertex %d fixed at 10%% but not identically at 30%%", v)
			}
		}
	}
	if got, want := p1.NumFixed(), sched.NumFixed(0.1); got != want {
		t.Errorf("NumFixed = %d, want %d", got, want)
	}
	// Base problem is untouched.
	if base.NumFixed() != 0 {
		t.Error("Apply mutated the base problem")
	}
}

func TestFixScheduleRegimes(t *testing.T) {
	h := testNetlist(t, 200, 2)
	rng := rand.New(rand.NewPCG(2, 2))
	good := make(partition.Assignment, h.NumVertices())
	for v := range good {
		good[v] = int8(v % 2)
	}
	sched, err := experiments.NewFixSchedule(h, 2, good, rng)
	if err != nil {
		t.Fatal(err)
	}
	base := partition.NewBipartition(h, 0.1)
	pg := sched.Apply(base, 0.5, experiments.Good)
	for v := 0; v < h.NumVertices(); v++ {
		if part, ok := pg.FixedPart(v); ok && int8(part) != good[v] {
			t.Fatalf("good regime fixed vertex %d to %d, solution says %d", v, part, good[v])
		}
	}
}

func TestNewFixScheduleError(t *testing.T) {
	h := testNetlist(t, 100, 3)
	rng := rand.New(rand.NewPCG(3, 3))
	if _, err := experiments.NewFixSchedule(h, 2, make(partition.Assignment, 5), rng); err == nil {
		t.Error("want error for short good solution")
	}
}

func TestRegimeString(t *testing.T) {
	if experiments.Good.String() != "good" || experiments.Rand.String() != "rand" {
		t.Error("Regime strings wrong")
	}
}

func TestDefaultFractions(t *testing.T) {
	fs := experiments.DefaultFractions()
	if len(fs) != 12 || fs[0] != 0 || fs[len(fs)-1] != 0.5 {
		t.Errorf("DefaultFractions = %v", fs)
	}
	for i := 1; i < len(fs); i++ {
		if fs[i] <= fs[i-1] {
			t.Errorf("fractions not increasing at %d", i)
		}
	}
}

func sweepFixture(t *testing.T) *experiments.SweepResult {
	t.Helper()
	h := testNetlist(t, 500, 4)
	res, err := experiments.RunSweep("T500", h, experiments.SweepConfig{
		Fractions:  []float64{0, 0.05, 0.30},
		Starts:     []int{1, 2},
		Trials:     3,
		Tolerance:  0.05,
		GoodStarts: 4,
		Seed:       4,
	})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	return res
}

func TestRunSweep(t *testing.T) {
	res := sweepFixture(t)
	if res.BestFreeCut <= 0 {
		t.Fatalf("best free cut = %d", res.BestFreeCut)
	}
	if len(res.Points) != 2*3*2 { // regimes * fractions * starts
		t.Fatalf("points = %d, want 12", len(res.Points))
	}
	for _, p := range res.Points {
		if p.AvgBestCut < 0 || p.Normalized <= 0 {
			t.Errorf("bad point %+v", p)
		}
		if p.AvgCPU <= 0 {
			t.Errorf("no CPU recorded for %+v", p)
		}
	}
	// Rand regime: heavy random fixing must raise the raw cut well above the
	// free case (the paper's first observation).
	rand0 := res.Point(experiments.Rand, 0, 1)
	rand30 := res.Point(experiments.Rand, 0.30, 1)
	if rand30.AvgBestCut <= rand0.AvgBestCut {
		t.Errorf("rand raw cut did not increase: %.1f -> %.1f", rand0.AvgBestCut, rand30.AvgBestCut)
	}
	// Rand normalization is per fraction.
	if _, ok := res.RandBest[0.30]; !ok {
		t.Error("RandBest missing fraction 0.30")
	}
	// StartsBenefit near 1 means extra starts gain nothing; the two traces
	// draw different random starts, so allow small sampling noise below 1.
	b := res.StartsBenefit(experiments.Good, 0.30)
	if b < 0.9 {
		t.Errorf("StartsBenefit = %v, implausibly below 1", b)
	}
}

// TestRunSweepSharedHierarchies runs the sweep through the shared-hierarchy
// multistart path and checks the dataset has the same shape and sane values.
func TestRunSweepSharedHierarchies(t *testing.T) {
	h := testNetlist(t, 500, 4)
	res, err := experiments.RunSweep("T500", h, experiments.SweepConfig{
		Fractions:         []float64{0, 0.30},
		Starts:            []int{1, 4},
		Trials:            2,
		Tolerance:         0.05,
		GoodStarts:        4,
		Seed:              4,
		SharedHierarchies: 2,
	})
	if err != nil {
		t.Fatalf("RunSweep shared: %v", err)
	}
	if len(res.Points) != 2*2*2 { // regimes * fractions * starts
		t.Fatalf("points = %d, want 8", len(res.Points))
	}
	for _, p := range res.Points {
		if p.AvgBestCut < 0 || p.Normalized <= 0 || p.AvgCPU <= 0 {
			t.Errorf("bad shared point %+v", p)
		}
	}
}

func TestSweepPointLookup(t *testing.T) {
	res := sweepFixture(t)
	if res.Point(experiments.Good, 0.05, 2) == nil {
		t.Error("Point lookup failed")
	}
	if res.Point(experiments.Good, 0.99, 2) != nil {
		t.Error("Point invented data")
	}
}

func TestTableII(t *testing.T) {
	h := testNetlist(t, 400, 5)
	rows, err := experiments.TableII("T400", h, experiments.FlatConfig{
		Fractions:  []float64{0, 0.30},
		Runs:       6,
		Tolerance:  0.05,
		GoodStarts: 2,
		Seed:       5,
	})
	if err != nil {
		t.Fatalf("TableII: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AvgPasses < 1 {
			t.Errorf("AvgPasses = %v", r.AvgPasses)
		}
		if r.AvgPctMoved < 0 || r.AvgPctMoved > 100 {
			t.Errorf("AvgPctMoved = %v", r.AvgPctMoved)
		}
	}
	t.Logf("pct moved: free=%.1f%%, 30%%fixed=%.1f%%", rows[0].AvgPctMoved, rows[1].AvgPctMoved)
	if rows[1].AvgPctMoved > rows[0].AvgPctMoved+15 {
		t.Errorf("pct moved should not rise sharply with terminals: %v -> %v",
			rows[0].AvgPctMoved, rows[1].AvgPctMoved)
	}
}

func TestTableIII(t *testing.T) {
	h := testNetlist(t, 400, 6)
	cutoffs := []float64{1, 0.10}
	rows, err := experiments.TableIII("T400", h, cutoffs, experiments.FlatConfig{
		Fractions:  []float64{0, 0.30},
		Runs:       6,
		Tolerance:  0.05,
		GoodStarts: 2,
		Seed:       6,
	})
	if err != nil {
		t.Fatalf("TableIII: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byKey := map[[2]float64]experiments.TableIIIRow{}
	for _, r := range rows {
		byKey[[2]float64{r.Fraction, r.Cutoff}] = r
		if r.AvgCPU <= 0 {
			t.Errorf("no CPU for %+v", r)
		}
	}
	// With 30% terminals, the 10% cutoff must be quality-safe (paper's
	// claim); allow small noise.
	full := byKey[[2]float64{0.30, 1}]
	cut := byKey[[2]float64{0.30, 0.10}]
	if cut.AvgCut > full.AvgCut*1.35+3 {
		t.Errorf("cutoff hurt quality with terminals: %.1f vs %.1f", cut.AvgCut, full.AvgCut)
	}
	t.Logf("30%% fixed: no-cutoff cut=%.1f (%.2fms), 10%%-cutoff cut=%.1f (%.2fms)",
		full.AvgCut, float64(full.AvgCPU.Microseconds())/1000,
		cut.AvgCut, float64(cut.AvgCPU.Microseconds())/1000)
}

func TestTableIV(t *testing.T) {
	h := testNetlist(t, 300, 7)
	pl, err := place.Place(h, place.Config{}, rand.New(rand.NewPCG(7, 7)))
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	var instances []*benchgen.Instance
	for _, spec := range benchgen.StandardSpecs(pl, "T300S")[:4] {
		inst, err := benchgen.Derive(pl, spec, 0.02)
		if err != nil {
			t.Fatalf("Derive %s: %v", spec.Name, err)
		}
		instances = append(instances, inst)
	}
	rows := experiments.TableIV(instances)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Cells <= 0 || r.Nets <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
		if r.FixedPct <= 0 || r.FixedPct >= 100 {
			t.Errorf("fixed pct = %v", r.FixedPct)
		}
	}
}

func TestMultiwaySweep(t *testing.T) {
	h := testNetlist(t, 400, 8)
	rows, err := experiments.MultiwaySweep("T400", h, 4, experiments.SweepConfig{
		Fractions:  []float64{0, 0.30},
		Trials:     2,
		Tolerance:  0.08,
		GoodStarts: 2,
		Seed:       8,
	})
	if err != nil {
		t.Fatalf("MultiwaySweep: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.K != 4 || r.AvgCut <= 0 || r.Normalized <= 0 {
			t.Errorf("bad row %+v", r)
		}
	}
}

func TestOverconstrained(t *testing.T) {
	res := &experiments.SweepResult{
		Points: []experiments.SweepPoint{
			{Regime: experiments.Good, Starts: 1, Fraction: 0.0, AvgBestCut: 10},
			{Regime: experiments.Good, Starts: 1, Fraction: 0.1, AvgBestCut: 15},
			{Regime: experiments.Good, Starts: 1, Fraction: 0.2, AvgBestCut: 9},
			{Regime: experiments.Rand, Starts: 1, Fraction: 0.1, AvgBestCut: 99},
		},
	}
	got := experiments.Overconstrained(res, 1)
	if len(got) != 1 || math.Abs(got[0]-0.1) > 1e-12 {
		t.Errorf("Overconstrained = %v, want [0.1]", got)
	}
}

func TestRenderers(t *testing.T) {
	var buf bytes.Buffer
	if err := experiments.RenderTableI(&buf, []float64{0.5, 0.68}, 3.5); err != nil {
		t.Fatalf("RenderTableI: %v", err)
	}
	if !strings.Contains(buf.String(), "Table I") || !strings.Contains(buf.String(), "0.68") {
		t.Errorf("table I output: %q", buf.String())
	}

	res := sweepFixture(t)
	buf.Reset()
	if err := experiments.RenderSweep(&buf, res, []int{1, 2}); err != nil {
		t.Fatalf("RenderSweep: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"[good] raw best cut", "[rand] normalized cut", "CPU ms/trial", "T500"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q", want)
		}
	}

	buf.Reset()
	rows := []experiments.TableIIRow{{Instance: "X", Fraction: 0.1, AvgPasses: 3.5, AvgPctMoved: 42}}
	if err := experiments.RenderTableII(&buf, rows); err != nil {
		t.Fatalf("RenderTableII: %v", err)
	}
	if !strings.Contains(buf.String(), "42.0") {
		t.Errorf("table II output: %q", buf.String())
	}

	buf.Reset()
	rows3 := []experiments.TableIIIRow{
		{Instance: "X", Fraction: 0.1, Cutoff: 1, AvgCut: 10},
		{Instance: "X", Fraction: 0.1, Cutoff: 0.05, AvgCut: 11},
	}
	if err := experiments.RenderTableIII(&buf, rows3, []float64{1, 0.05}); err != nil {
		t.Fatalf("RenderTableIII: %v", err)
	}
	if !strings.Contains(buf.String(), "no cutoff") || !strings.Contains(buf.String(), "5% moves") {
		t.Errorf("table III output: %q", buf.String())
	}

	buf.Reset()
	if err := experiments.RenderTableIV(&buf, []experiments.TableIVRow{
		{Name: "T01SA", Cells: 100, Nets: 120, Pads: 10, ExternalNets: 9, MaxPct: 3.3, FixedPct: 9.1}}); err != nil {
		t.Fatalf("RenderTableIV: %v", err)
	}
	if !strings.Contains(buf.String(), "T01SA") {
		t.Errorf("table IV output: %q", buf.String())
	}

	buf.Reset()
	if err := experiments.RenderMultiway(&buf, []experiments.MultiwayRow{
		{Instance: "X", K: 4, Regime: experiments.Good, Fraction: 0.2, AvgCut: 5, Normalized: 1.1}}); err != nil {
		t.Fatalf("RenderMultiway: %v", err)
	}
	if !strings.Contains(buf.String(), "Multiway") {
		t.Errorf("multiway output: %q", buf.String())
	}
}

// TestEasinessSignal exercises the paper's headline claim end to end at test
// scale: at 30% fixed, the single-start normalized cut sits closer to 1 than
// in the free case, i.e. extra starts stop mattering.
func TestEasinessSignal(t *testing.T) {
	h := testNetlist(t, 800, 9)
	res, err := experiments.RunSweep("T800", h, experiments.SweepConfig{
		Fractions:  []float64{0, 0.30},
		Starts:     []int{1, 8},
		Trials:     3,
		Tolerance:  0.05,
		GoodStarts: 8,
		Seed:       9,
	})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	bFree := res.StartsBenefit(experiments.Rand, 0)
	bFixed := res.StartsBenefit(experiments.Rand, 0.30)
	t.Logf("rand-regime 1-start/8-start cut ratio: free=%.3f, 30%%fixed=%.3f", bFree, bFixed)
	if bFixed > bFree+0.15 {
		t.Errorf("extra starts still matter a lot at 30%% fixed (%.3f) vs free (%.3f)", bFixed, bFree)
	}
}

func TestDefaultCutoffs(t *testing.T) {
	cs := experiments.DefaultCutoffs()
	if len(cs) != 5 || cs[0] != 1 || cs[len(cs)-1] != 0.05 {
		t.Errorf("DefaultCutoffs = %v", cs)
	}
}

func TestMultilevelConfigZeroUsable(t *testing.T) {
	// The sweep must work with an entirely zero ML config (library default).
	h := testNetlist(t, 200, 10)
	_, err := experiments.RunSweep("tiny", h, experiments.SweepConfig{
		Fractions: []float64{0},
		Starts:    []int{1},
		Trials:    1,
		Tolerance: 0.1,
		Seed:      10,
	})
	if err != nil {
		t.Fatalf("RunSweep with defaults: %v", err)
	}
	_ = multilevel.Config{}
}

func TestConstraintStudy(t *testing.T) {
	h := testNetlist(t, 400, 11)
	rows, err := experiments.ConstraintStudy("T400", h, experiments.SweepConfig{
		Fractions:  []float64{0, 0.30},
		Trials:     2,
		Tolerance:  0.05,
		GoodStarts: 3,
		Seed:       11,
	})
	if err != nil {
		t.Fatalf("ConstraintStudy: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Fraction == 0 {
			if r.Report.ConstrainedNetFraction != 0 || r.Report.ForcedCut != 0 {
				t.Errorf("free point has constraint: %+v", r.Report)
			}
		} else {
			if r.Report.ConstrainedNetFraction <= 0 || r.Report.TouchedFreeFraction <= 0 {
				t.Errorf("fixed point shows no constraint: %+v", r.Report)
			}
		}
		if r.StartsBenefit < 0.8 {
			t.Errorf("implausible StartsBenefit %v", r.StartsBenefit)
		}
		if r.Regime == experiments.Rand && r.Fraction == 0.30 && r.Report.ForcedCut == 0 {
			t.Error("rand fixing at 30% should force some nets cut")
		}
	}
	var buf bytes.Buffer
	if err := experiments.RenderConstraintStudy(&buf, rows); err != nil {
		t.Fatalf("RenderConstraintStudy: %v", err)
	}
	if !strings.Contains(buf.String(), "forced") {
		t.Errorf("render output: %q", buf.String())
	}
}

func TestPassProfile(t *testing.T) {
	h := testNetlist(t, 500, 12)
	rows, err := experiments.PassProfile("T500", h, experiments.FlatConfig{
		Fractions:  []float64{0, 0.30},
		Runs:       8,
		Tolerance:  0.05,
		GoodStarts: 2,
		Seed:       12,
	})
	if err != nil {
		t.Fatalf("PassProfile: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Passes == 0 {
			t.Fatalf("no improving passes recorded at %.0f%%", 100*r.Fraction)
		}
		// Deciles form a CDF ending at 1.
		prev := 0.0
		for d, v := range r.Deciles {
			if v < prev-1e-9 || v > 1.0001 {
				t.Fatalf("decile %d = %v not a CDF", d, v)
			}
			prev = v
		}
		if r.Deciles[9] < 0.999 {
			t.Errorf("CDF does not reach 1: %v", r.Deciles[9])
		}
		if r.MeanPeak < 0 || r.MeanPeak > 1 {
			t.Errorf("MeanPeak = %v", r.MeanPeak)
		}
	}
	free, fixed := rows[0], rows[1]
	t.Logf("peak within first 30%% of moves: free=%.2f, 30%%fixed=%.2f (mean peak %.3f vs %.3f)",
		free.Deciles[2], fixed.Deciles[2], free.MeanPeak, fixed.MeanPeak)
	// Paper's shape: with terminals, peaks concentrate at least as early as
	// in the free case (allow noise).
	if fixed.Deciles[2] < free.Deciles[2]-0.25 {
		t.Errorf("early-peak concentration did not hold: free=%.2f fixed=%.2f",
			free.Deciles[2], fixed.Deciles[2])
	}
	var buf bytes.Buffer
	if err := experiments.RenderPassProfile(&buf, rows); err != nil {
		t.Fatalf("RenderPassProfile: %v", err)
	}
	if !strings.Contains(buf.String(), "Pass peak positions") {
		t.Errorf("render output: %q", buf.String())
	}
}

func TestStartsRequired(t *testing.T) {
	h := testNetlist(t, 600, 13)
	// 8 trials: at 3 the tiny fixture's start counts are noise-dominated and
	// the easiness margin below flips on many seeds.
	rows, err := experiments.StartsRequired("T600", h, experiments.SweepConfig{
		Fractions:  []float64{0, 0.30},
		Trials:     8,
		Tolerance:  0.05,
		GoodStarts: 3,
		Seed:       13,
	})
	if err != nil {
		t.Fatalf("StartsRequired: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AvgStarts < 3 || r.AvgStarts > 16 {
			t.Errorf("avg starts = %v outside [3,16] (patience 2 means >= 3)", r.AvgStarts)
		}
	}
	// The paper's easiness claim: the 30%-fixed instances should not demand
	// more adaptive starts than the free instance (allow 1 start of noise).
	var free, fixed float64
	for _, r := range rows {
		if r.Regime == experiments.Rand {
			if r.Fraction == 0 {
				free = r.AvgStarts
			} else {
				fixed = r.AvgStarts
			}
		}
	}
	t.Logf("adaptive starts: free=%.1f, 30%%fixed=%.1f", free, fixed)
	if fixed > free+2 {
		t.Errorf("fixed instance demanded more starts (%.1f) than free (%.1f)", fixed, free)
	}
	var buf bytes.Buffer
	if err := experiments.RenderStartsRequired(&buf, rows); err != nil {
		t.Fatalf("RenderStartsRequired: %v", err)
	}
	if !strings.Contains(buf.String(), "Multistart effort") {
		t.Errorf("render output: %q", buf.String())
	}
}

func TestSweepCSV(t *testing.T) {
	res := sweepFixture(t)
	var buf bytes.Buffer
	if err := experiments.SweepCSV(&buf, res); err != nil {
		t.Fatalf("SweepCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(res.Points) {
		t.Fatalf("csv lines = %d, want %d", len(lines), 1+len(res.Points))
	}
	if !strings.HasPrefix(lines[0], "instance,regime,fraction,starts") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "T500,") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestOverconstrainedEmpty(t *testing.T) {
	if got := experiments.Overconstrained(&experiments.SweepResult{}, 1); len(got) != 0 {
		t.Errorf("Overconstrained on empty result = %v", got)
	}
	// Two points cannot have an interior maximum.
	res := &experiments.SweepResult{Points: []experiments.SweepPoint{
		{Regime: experiments.Good, Starts: 1, Fraction: 0, AvgBestCut: 5},
		{Regime: experiments.Good, Starts: 1, Fraction: 0.5, AvgBestCut: 9},
	}}
	if got := experiments.Overconstrained(res, 1); len(got) != 0 {
		t.Errorf("two-point result flagged %v", got)
	}
}

func TestKWayModeStudy(t *testing.T) {
	h := testNetlist(t, 250, 6)
	cfg := experiments.SweepConfig{
		Fractions:  []float64{0, 0.2},
		Trials:     2,
		Tolerance:  0.1,
		GoodStarts: 2,
		Seed:       6,
	}
	rows, err := experiments.KWayModeStudy("T250", h, []int{3, 4}, cfg)
	if err != nil {
		t.Fatalf("KWayModeStudy: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 ks x 2 fractions)", len(rows))
	}
	for _, r := range rows {
		if r.DirectCut < 0 || r.RBCut < 0 {
			t.Errorf("negative mean cut in row %+v", r)
		}
	}
	// Determinism across worker counts.
	cfg.Workers = 3
	rows2, err := experiments.KWayModeStudy("T250", h, []int{3, 4}, cfg)
	if err != nil {
		t.Fatalf("KWayModeStudy workers=3: %v", err)
	}
	for i := range rows {
		if rows[i] != rows2[i] {
			t.Errorf("row %d differs across worker counts: %+v vs %+v", i, rows[i], rows2[i])
		}
	}
	var buf bytes.Buffer
	if err := experiments.RenderKWayModeStudy(&buf, rows); err != nil {
		t.Fatalf("render: %v", err)
	}
	if !strings.Contains(buf.String(), "direct cut") {
		t.Error("rendered table missing header")
	}
}
