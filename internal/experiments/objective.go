package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"

	"repro/internal/fm"
	"repro/internal/hypergraph"
	"repro/internal/multilevel"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/stats"
)

// ObjectiveRow compares, for one (k, fixed fraction) cell, what a multistart
// run returns when it optimizes the cut versus connectivity-minus-one. Both
// optimizers see the identical set of candidate starts (same seeds, and the
// kernel's move trajectory is objective-independent — see fm.Objective), so
// the comparison isolates pure selection pressure: the km1 optimizer's mean
// km1 can never exceed the cut optimizer's, and vice versa for the cut.
// All three standard metrics of each winner are reported.
type ObjectiveRow struct {
	Instance string
	K        int
	Fraction float64
	// CutOpt* are the mean cut/km1/soed of the cut-optimized winners.
	CutOptCut, CutOptKM1, CutOptSOED float64
	// KM1Opt* are the mean cut/km1/soed of the km1-optimized winners.
	KM1OptCut, KM1OptKM1, KM1OptSOED float64
}

// objectiveStarts is the multistart count per cell: selection pressure only
// exists with several candidates to choose between.
const objectiveStarts = 4

// ObjectiveStudy measures cut-optimized versus km1-optimized multistart
// partitioning across part counts and fixing levels. At k = 2 the two
// objectives coincide (every net spans at most two parts), so those rows are
// a built-in control: the columns must agree. Fixed vertices follow the Good
// regime of a reference k-way solution so the fixing is satisfiable at every
// fraction. Cells run on cfg.Workers goroutines with per-cell RNGs derived
// from the seed and cell index, so results are identical for every worker
// count.
func ObjectiveStudy(name string, h *hypergraph.Hypergraph, ks []int, cfg SweepConfig) ([]ObjectiveRow, error) {
	cfg = cfg.withDefaults()
	if len(ks) == 0 {
		ks = []int{2, 4, 8}
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x0b7ec))
	type cell struct {
		k    int
		frac float64
		prob *partition.Problem
		cut  *multilevel.Result // cut-optimized winner
		km1  *multilevel.Result // km1-optimized winner
		err  error
	}
	var cells []cell
	for _, k := range ks {
		base := partition.NewFree(h, k, cfg.Tolerance)
		ref, err := multilevel.ParallelMultistartKWay(base, withWorkers(cfg.ML, cfg.Workers), cfg.GoodStarts, rng)
		if err != nil {
			return nil, fmt.Errorf("experiments: objective study reference (k=%d): %w", k, err)
		}
		sched, err := NewFixSchedule(h, k, ref.Assignment, rng)
		if err != nil {
			return nil, err
		}
		for _, frac := range cfg.Fractions {
			prob := sched.Apply(base, frac, Good)
			for trial := 0; trial < cfg.Trials; trial++ {
				cells = append(cells, cell{k: k, frac: frac, prob: prob})
			}
		}
	}
	cellSeed := rng.Uint64()
	par.ForEach(len(cells), cfg.Workers, func(i int) {
		c := &cells[i]
		// Both optimizers run on a fresh RNG with the same derivation, so
		// they evaluate the identical candidate starts and differ only in
		// which one they keep.
		cutCfg, km1Cfg := cfg.ML, cfg.ML
		cutCfg.Objective = fm.ObjectiveCut
		km1Cfg.Objective = fm.ObjectiveKM1
		c.cut, c.err = multilevel.MultistartKWay(c.prob, cutCfg, objectiveStarts, rand.New(rand.NewPCG(cellSeed, uint64(i))))
		if c.err != nil {
			return
		}
		c.km1, c.err = multilevel.MultistartKWay(c.prob, km1Cfg, objectiveStarts, rand.New(rand.NewPCG(cellSeed, uint64(i))))
	})
	var rows []ObjectiveRow
	i := 0
	for _, k := range ks {
		for _, frac := range cfg.Fractions {
			row := ObjectiveRow{Instance: name, K: k, Fraction: frac}
			for trial := 0; trial < cfg.Trials; trial++ {
				c := &cells[i]
				if c.err != nil {
					return nil, fmt.Errorf("experiments: objective cell k=%d %.1f%%: %w", k, 100*frac, c.err)
				}
				row.CutOptCut += float64(c.cut.Cut)
				row.CutOptKM1 += float64(c.cut.KMinus1)
				row.CutOptSOED += float64(c.cut.SOED)
				row.KM1OptCut += float64(c.km1.Cut)
				row.KM1OptKM1 += float64(c.km1.KMinus1)
				row.KM1OptSOED += float64(c.km1.SOED)
				i++
			}
			n := float64(cfg.Trials)
			row.CutOptCut /= n
			row.CutOptKM1 /= n
			row.CutOptSOED /= n
			row.KM1OptCut /= n
			row.KM1OptKM1 /= n
			row.KM1OptSOED /= n
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderObjectiveStudy writes the study as a table.
func RenderObjectiveStudy(w io.Writer, rows []ObjectiveRow) error {
	fmt.Fprintf(w, "Cut-optimized vs km1-optimized multistart (%d starts/cell): mean cut/km1/soed by part count and %%fixed\n\n", objectiveStarts)
	t := &stats.Table{Header: []string{"instance", "k", "%fixed",
		"cut-opt cut", "cut-opt km1", "cut-opt soed",
		"km1-opt cut", "km1-opt km1", "km1-opt soed"}}
	for _, r := range rows {
		t.Add(r.Instance, fmt.Sprintf("%d", r.K), fmt.Sprintf("%.1f", 100*r.Fraction),
			fmt.Sprintf("%.1f", r.CutOptCut), fmt.Sprintf("%.1f", r.CutOptKM1), fmt.Sprintf("%.1f", r.CutOptSOED),
			fmt.Sprintf("%.1f", r.KM1OptCut), fmt.Sprintf("%.1f", r.KM1OptKM1), fmt.Sprintf("%.1f", r.KM1OptSOED))
	}
	return t.Render(w)
}
