// Package stats provides the small numeric summaries and text-table
// rendering used by the experiment harness.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// Summarize computes a Summary of xs (population standard deviation).
// An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N))
	return s
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// MinInt64 returns the minimum of xs; it panics on empty input.
func MinInt64(xs []int64) int64 {
	if len(xs) == 0 {
		panic("stats: MinInt64 of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Table renders rows of cells as an aligned fixed-width text table with a
// header row.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; cells are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			width := len(c)
			if i < len(widths) {
				width = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", width, c)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	var sep []string
	for _, wd := range widths {
		sep = append(sep, strings.Repeat("-", wd))
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		_, err := fmt.Fprintln(w, strings.Join(cells, ","))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
