package stats_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestSummarize(t *testing.T) {
	s := stats.Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("N=%d Mean=%v", s.N, s.Mean)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := stats.Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if stats.Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestMinInt64(t *testing.T) {
	if got := stats.MinInt64([]int64{5, -2, 9}); got != -2 {
		t.Errorf("MinInt64 = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic for empty input")
		}
	}()
	stats.MinInt64(nil)
}

func TestTableRender(t *testing.T) {
	tb := &stats.Table{Header: []string{"name", "value"}}
	tb.Add("alpha", 3.14159)
	tb.Add("b", 42)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "3.14") {
		t.Errorf("float formatting: %q", lines[2])
	}
	// Alignment: "alpha" column width 5.
	if !strings.HasPrefix(lines[3], "b    ") {
		t.Errorf("misaligned row: %q", lines[3])
	}
}

func TestTableCSV(t *testing.T) {
	tb := &stats.Table{Header: []string{"a", "b"}}
	tb.Add(1, 2)
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatalf("CSV: %v", err)
	}
	if buf.String() != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", buf.String())
	}
}
