package stats_test

import (
	"bytes"
	"testing"

	"repro/internal/stats"
)

func TestTableRaggedRows(t *testing.T) {
	tb := &stats.Table{Header: []string{"a"}}
	tb.Add(1, 2, 3) // longer than header
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if buf.Len() == 0 {
		t.Error("no output")
	}
}
