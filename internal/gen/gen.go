// Package gen synthesizes circuit netlists that stand in for the ISPD-98 IBM
// benchmark suite used by the paper. The generator reproduces the netlist
// statistics the paper's phenomena depend on:
//
//   - Rent-style locality and hierarchy: cells live on an implicit 2D grid
//     carrying a BSP block hierarchy; every net is confined to one block at
//     a depth drawn with P(d) proportional to 2^((1-p)d). A counting
//     argument (see netDepth) shows the expected number of nets crossing a
//     depth-d block boundary is then ~ k*(C/2^d)^p, i.e. blocks obey Rent's
//     rule with exponent p, and the netlist has the modular structure that
//     makes multilevel partitioners outperform flat FM, as on the real
//     suite.
//   - Net degree distribution dominated by 2-3 pin nets with a geometric
//     tail, matching the suite's ~3.5 pins-per-net average.
//   - Heavy-tailed cell areas: most cells are small, but a few macros carry
//     several percent of the total area each (the paper notes this is why
//     unit-area studies are pointless for the real placement context).
//   - Peripheral I/O pads: zero-area terminal vertices connected to cells
//     near the chip boundary.
//
// The IBM01S..IBM05S presets match the published vertex/net counts of
// IBM01-IBM05; Params.Scaled derives reduced-size variants for tests.
package gen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/hypergraph"
)

// Params configures the synthetic netlist generator.
type Params struct {
	// Cells is the number of movable cells (excluding pads).
	Cells int
	// Pads is the number of zero-area I/O pad vertices.
	Pads int
	// RentExponent is the target Rent parameter p (typ. 0.55-0.75).
	RentExponent float64
	// PinsPerCell is the target average pins per cell, k (typ. 3.5-4).
	PinsPerCell float64
	// AvgNetSize is the target average pins per net (typ. ~3.5).
	AvgNetSize float64
	// MacroFraction is the fraction of cells drawn as large macros
	// (typ. 0.0005-0.002).
	MacroFraction float64
	// MaxAreaPct forces the largest macro to approximately this percentage
	// of the total cell area (typ. 2-10; 0 disables the adjustment).
	MaxAreaPct float64
	// PinResource, when set, emits a second weight resource holding each
	// cell's pin count, enabling the multi-balanced ("multi-area")
	// partitioning the proposed benchmark format describes — e.g. balancing
	// cell area and cell pin count simultaneously.
	PinResource bool
	// Seed makes generation deterministic.
	Seed uint64
}

// Validate reports structural errors in the parameters.
func (p Params) Validate() error {
	switch {
	case p.Cells < 4:
		return fmt.Errorf("gen: need at least 4 cells, got %d", p.Cells)
	case p.Pads < 0:
		return fmt.Errorf("gen: negative pad count %d", p.Pads)
	case p.RentExponent <= 0 || p.RentExponent >= 1:
		return fmt.Errorf("gen: Rent exponent %v outside (0,1)", p.RentExponent)
	case p.PinsPerCell < 2:
		return fmt.Errorf("gen: pins per cell %v < 2", p.PinsPerCell)
	case p.AvgNetSize < 2:
		return fmt.Errorf("gen: average net size %v < 2", p.AvgNetSize)
	case p.MacroFraction < 0 || p.MacroFraction > 0.1:
		return fmt.Errorf("gen: macro fraction %v outside [0, 0.1]", p.MacroFraction)
	case p.MaxAreaPct < 0 || p.MaxAreaPct > 50:
		return fmt.Errorf("gen: max area percent %v outside [0, 50]", p.MaxAreaPct)
	}
	return nil
}

// Scaled returns a copy of p with cell, pad and seed-derived sizes scaled by
// factor f (at least 4 cells), for fast test-size instances.
func (p Params) Scaled(f float64) Params {
	q := p
	q.Cells = int(float64(p.Cells) * f)
	if q.Cells < 4 {
		q.Cells = 4
	}
	q.Pads = int(float64(p.Pads) * f)
	return q
}

// Netlist is a generated circuit: the hypergraph plus the implicit placement
// grid used during generation (exported so the top-down placer substrate and
// benchmark derivation can reuse the generator's notion of locality when
// seeding positions).
type Netlist struct {
	H *hypergraph.Hypergraph
	// GridSide is the side length of the implicit cell grid.
	GridSide int
	// CellX, CellY give the implicit grid position of each vertex (pads sit
	// on the periphery).
	CellX, CellY []int
	Params       Params
}

// Generate builds a synthetic netlist.
func Generate(p Params) (*Netlist, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(p.Seed, 0xda7a5eed))
	side := int(math.Ceil(math.Sqrt(float64(p.Cells))))

	numResources := 1
	if p.PinResource {
		numResources = 2
	}
	b := hypergraph.NewBuilder(numResources)
	b.DedupPins = true
	b.DropSingletons = true

	// Cell areas: ~72% unit, the rest a geometric tail, plus macros.
	areas := make([]int64, p.Cells)
	var total int64
	for i := range areas {
		a := int64(1)
		for a < 64 && rng.Float64() < 0.28 {
			a *= 2
		}
		areas[i] = a
		total += a
	}
	nMacros := int(p.MacroFraction * float64(p.Cells))
	if p.MaxAreaPct > 0 && nMacros == 0 {
		nMacros = 1
	}
	if nMacros > 0 && p.MaxAreaPct > 0 {
		// Macro areas decay from the largest; the largest is set so that it
		// is ~MaxAreaPct of the final total.
		frac := p.MaxAreaPct / 100
		for i := 0; i < nMacros; i++ {
			v := rng.IntN(p.Cells)
			share := frac / float64(int64(1)<<uint(i))
			if share < 0.001 {
				break
			}
			a := int64(share / (1 - share) * float64(total))
			if a < 1 {
				a = 1
			}
			total += a - areas[v]
			areas[v] = a
		}
	}
	for i := 0; i < p.Cells; i++ {
		b.AddCell(fmt.Sprintf("a%d", i), areas[i])
	}

	cellX := make([]int, p.Cells+p.Pads)
	cellY := make([]int, p.Cells+p.Pads)
	perm := rng.Perm(side * side)[:p.Cells]
	for i, pos := range perm {
		cellX[i] = pos % side
		cellY[i] = pos / side
	}
	// cellAt[y*side+x] = cell index or -1.
	cellAt := make([]int32, side*side)
	for i := range cellAt {
		cellAt[i] = -1
	}
	for i := 0; i < p.Cells; i++ {
		cellAt[cellY[i]*side+cellX[i]] = int32(i)
	}

	// Net scopes: a BSP hierarchy over the grid, alternating vertical and
	// horizontal splits. A net at depth d is confined to the depth-d block
	// containing a uniformly drawn center cell. With the depth distribution
	// P(d) ~ 2^((1-p)d), the expected number of nets crossing a depth-d
	// block boundary is proportional to 2^(-pd): a level-j net (j < d) sits
	// in a given block's ancestor with probability 2^-j and touches the
	// block with probability ~ size*2^(j-d), so crossings(d) ~
	// 2^-d * sum_{j<d} N_j ~ 2^-d * 2^((1-p)d) = 2^(-pd) — Rent's rule with
	// exponent p.
	maxDepth := 0
	for blockCells := p.Cells; blockCells > 24; blockCells /= 2 {
		maxDepth++
	}
	depthWeights := make([]float64, maxDepth+1)
	var depthTotal float64
	for d := 0; d <= maxDepth; d++ {
		depthWeights[d] = math.Pow(2, (1-p.RentExponent)*float64(d))
		depthTotal += depthWeights[d]
	}
	sampleDepth := func() int {
		u := rng.Float64() * depthTotal
		for d, w := range depthWeights {
			if u < w {
				return d
			}
			u -= w
		}
		return maxDepth
	}
	// blockOf returns the half-open grid rectangle of the depth-d BSP block
	// containing (x, y), by descending a hierarchy whose split positions are
	// jittered per node within [0.40, 0.60] of the block span. The jitter
	// matters: real module boundaries do not align with exact bisection, so
	// a balanced partitioner must choose which natural cluster to break —
	// exact-half splits would instead give every instance one canonical
	// min-cut that any engine finds on the first start.
	splitFrac := func(x0, y0, depth int) float64 {
		z := uint64(x0)*0x9e3779b97f4a7c15 ^ uint64(y0)*0xbf58476d1ce4e5b9 ^
			uint64(depth)*0x94d049bb133111eb ^ p.Seed
		z ^= z >> 31
		z *= 0xd6e8feb86659fd93
		z ^= z >> 27
		return 0.4 + 0.2*float64(z>>11)/float64(1<<53)
	}
	blockOf := func(x, y, d int) (x0, y0, x1, y1 int) {
		x0, y0, x1, y1 = 0, 0, side, side
		for i := 0; i < d; i++ {
			if i%2 == 0 { // vertical split
				at := x0 + int(splitFrac(x0, y0, i)*float64(x1-x0))
				if at <= x0 || at >= x1 {
					at = (x0 + x1) / 2
				}
				if x < at {
					x1 = at
				} else {
					x0 = at
				}
			} else { // horizontal split
				at := y0 + int(splitFrac(x0, y0, i)*float64(y1-y0))
				if at <= y0 || at >= y1 {
					at = (y0 + y1) / 2
				}
				if y < at {
					y1 = at
				} else {
					y0 = at
				}
			}
		}
		return x0, y0, x1, y1
	}
	pickIn := func(x0, y0, x1, y1 int) int {
		for try := 0; try < 12; try++ {
			x := x0 + rng.IntN(x1-x0)
			y := y0 + rng.IntN(y1-y0)
			if c := cellAt[y*side+x]; c >= 0 {
				return int(c)
			}
		}
		return rng.IntN(p.Cells)
	}
	// Net sizes: 2 + geometric, tuned to the requested mean.
	geomP := 1 / (p.AvgNetSize - 1) // mean = 2 + (1-q)/q
	sampleNetSize := func() int {
		s := 2
		for s < 40 && rng.Float64() > geomP {
			s++
		}
		return s
	}

	numNets := int(math.Round(p.PinsPerCell * float64(p.Cells) / p.AvgNetSize))
	scratch := make([]int, 0, 48)
	for e := 0; e < numNets; e++ {
		size := sampleNetSize()
		center := rng.IntN(p.Cells)
		x0, y0, x1, y1 := blockOf(cellX[center], cellY[center], sampleDepth())
		scratch = scratch[:0]
		scratch = append(scratch, center)
		for len(scratch) < size {
			scratch = append(scratch, pickIn(x0, y0, x1, y1))
		}
		b.AddNet(scratch...) // DedupPins drops repeats; DropSingletons drops degenerates
	}

	// Pads: evenly spread around the periphery, each driving a small net
	// into cells of a mid-depth block near the pad.
	padDepth := maxDepth / 2
	for i := 0; i < p.Pads; i++ {
		pad := b.AddPad(fmt.Sprintf("p%d", i))
		px, py := peripheryPoint(side, i, p.Pads, rng)
		cellX[pad] = px
		cellY[pad] = py
		x0, y0, x1, y1 := blockOf(min(px, side-1), min(py, side-1), padDepth)
		size := 1 + sampleNetSize()/2
		scratch = scratch[:0]
		scratch = append(scratch, pad)
		for len(scratch) < 1+size {
			scratch = append(scratch, pickIn(x0, y0, x1, y1))
		}
		b.AddNet(scratch...)
	}

	if p.PinResource {
		// Resource 1 = pin count per vertex, filled in once the nets exist.
		// Count exactly what Build will keep: duplicate pins collapse and
		// nets with fewer than two distinct pins are dropped.
		deg := make([]int64, b.NumVertices())
		stamp := make([]int, b.NumVertices())
		var distinct []int32
		for e := 0; e < b.NumNets(); e++ {
			distinct = distinct[:0]
			for _, v := range b.NetPins(e) {
				if stamp[v] != e+1 {
					stamp[v] = e + 1
					distinct = append(distinct, v)
				}
			}
			if len(distinct) < 2 {
				continue
			}
			for _, v := range distinct {
				deg[v]++
			}
		}
		for v, d := range deg {
			if d == 0 {
				d = 1 // every module supplies at least one unit per resource
			}
			b.SetWeight(v, 1, d)
		}
	}
	h, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("gen: %w", err)
	}
	return &Netlist{H: h, GridSide: side, CellX: cellX, CellY: cellY, Params: p}, nil
}

// peripheryPoint spreads pad i of n around the grid boundary.
func peripheryPoint(side, i, n int, rng *rand.Rand) (int, int) {
	if n <= 0 {
		n = 1
	}
	perimeter := 4 * (side - 1)
	if perimeter < 4 {
		perimeter = 4
	}
	pos := (i*perimeter/n + rng.IntN(3)) % perimeter
	s := side - 1
	switch {
	case pos < s:
		return pos, 0
	case pos < 2*s:
		return s, pos - s
	case pos < 3*s:
		return 3*s - pos, s
	default:
		return 0, 4*s - pos
	}
}
