package gen_test

import (
	"testing"

	"repro/internal/gen"
)

func BenchmarkGenerateIBM01S(b *testing.B) {
	pr, err := gen.PresetByName("IBM01S")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := gen.Generate(pr.Params); err != nil {
			b.Fatal(err)
		}
	}
}
