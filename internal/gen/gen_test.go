package gen_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/gen"
	"repro/internal/hypergraph"
	"repro/internal/multilevel"
	"repro/internal/partition"
	"repro/internal/rent"
)

func smallParams(seed uint64) gen.Params {
	return gen.Params{
		Cells:         2000,
		Pads:          60,
		RentExponent:  0.68,
		PinsPerCell:   3.9,
		AvgNetSize:    3.5,
		MacroFraction: 0.001,
		MaxAreaPct:    5,
		Seed:          seed,
	}
}

func TestGenerateBasic(t *testing.T) {
	nl, err := gen.Generate(smallParams(1))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	h := nl.H
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if h.NumVertices() != 2060 {
		t.Errorf("vertices = %d, want 2060 (cells+pads)", h.NumVertices())
	}
	if h.NumPads() != 60 {
		t.Errorf("pads = %d, want 60", h.NumPads())
	}
	s := hypergraph.ComputeStats(h)
	if s.AvgNetSize < 2.8 || s.AvgNetSize > 4.2 {
		t.Errorf("avg net size = %.2f, want ~3.5", s.AvgNetSize)
	}
	pinsPerCell := float64(s.Pins) / 2000
	if pinsPerCell < 3.0 || pinsPerCell > 5.0 {
		t.Errorf("pins per cell = %.2f, want ~3.9", pinsPerCell)
	}
	// Heavy-tail areas: largest cell carries a few percent of total area.
	if s.MaxWeightPct < 2 || s.MaxWeightPct > 10 {
		t.Errorf("Max%% = %.2f, want ~5", s.MaxWeightPct)
	}
	// 2-pin nets dominate.
	if s.NetSizeCounts[2] < s.Nets/4 {
		t.Errorf("2-pin nets = %d of %d, want dominant", s.NetSizeCounts[2], s.Nets)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := gen.Generate(smallParams(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.Generate(smallParams(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.H.NumNets() != b.H.NumNets() || a.H.NumPins() != b.H.NumPins() {
		t.Fatalf("same seed, different netlists: %v vs %v", a.H, b.H)
	}
	for e := 0; e < a.H.NumNets(); e++ {
		pa, pb := a.H.Pins(e), b.H.Pins(e)
		if len(pa) != len(pb) {
			t.Fatalf("net %d size differs", e)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("net %d pin %d differs", e, i)
			}
		}
	}
	c, err := gen.Generate(smallParams(8))
	if err != nil {
		t.Fatal(err)
	}
	if c.H.NumPins() == a.H.NumPins() && c.H.NumNets() == a.H.NumNets() {
		// Extremely unlikely for different seeds; both counts identical
		// suggests the seed is ignored.
		t.Error("different seeds produced identical pin/net counts")
	}
}

func TestGenerateZeroAreaPads(t *testing.T) {
	nl, err := gen.Generate(smallParams(2))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < nl.H.NumVertices(); v++ {
		if nl.H.IsPad(v) && nl.H.Weight(v) != 0 {
			t.Fatalf("pad %d has area %d", v, nl.H.Weight(v))
		}
	}
}

func TestGridPositionsInRange(t *testing.T) {
	nl, err := gen.Generate(smallParams(3))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < nl.H.NumVertices(); v++ {
		x, y := nl.CellX[v], nl.CellY[v]
		if x < 0 || y < 0 || x >= nl.GridSide || y >= nl.GridSide {
			t.Fatalf("vertex %d at (%d,%d) outside %d-grid", v, x, y, nl.GridSide)
		}
	}
}

// TestRentLocality verifies the generator's central property: geometric
// blocks of the implicit grid expose terminal counts that fit a Rent
// exponent in a plausible band around the target.
func TestRentLocality(t *testing.T) {
	p := smallParams(4)
	p.Cells = 4000
	p.Pads = 0
	nl, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	h := nl.H
	var samples []rent.Sample
	// Blocks: subdivide the grid into 2^d x 2^d tiles for d = 1..3 and count
	// cells and external nets per tile.
	for d := 1; d <= 3; d++ {
		tiles := 1 << d
		tileOf := func(v int) int {
			tx := nl.CellX[v] * tiles / nl.GridSide
			ty := nl.CellY[v] * tiles / nl.GridSide
			return ty*tiles + tx
		}
		cells := make([]int, tiles*tiles)
		terms := make([]int, tiles*tiles)
		for v := 0; v < h.NumVertices(); v++ {
			cells[tileOf(v)]++
		}
		for e := 0; e < h.NumNets(); e++ {
			seen := map[int]bool{}
			for _, v := range h.Pins(e) {
				seen[tileOf(int(v))] = true
			}
			if len(seen) > 1 {
				for tl := range seen {
					terms[tl]++
				}
			}
		}
		for i := range cells {
			if cells[i] > 0 && terms[i] > 0 {
				samples = append(samples, rent.Sample{Cells: cells[i], Terminals: terms[i]})
			}
		}
	}
	_, pFit, err := rent.Fit(samples)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	t.Logf("fitted Rent exponent = %.3f (target %.2f)", pFit, p.RentExponent)
	if pFit < 0.35 || pFit > 0.95 {
		t.Errorf("fitted Rent exponent %.3f wildly off target %.2f", pFit, p.RentExponent)
	}
}

func TestParamsValidate(t *testing.T) {
	base := smallParams(1)
	bad := []func(*gen.Params){
		func(p *gen.Params) { p.Cells = 2 },
		func(p *gen.Params) { p.Pads = -1 },
		func(p *gen.Params) { p.RentExponent = 1.2 },
		func(p *gen.Params) { p.PinsPerCell = 1 },
		func(p *gen.Params) { p.AvgNetSize = 1 },
		func(p *gen.Params) { p.MacroFraction = 0.5 },
		func(p *gen.Params) { p.MaxAreaPct = 90 },
	}
	for i, mut := range bad {
		p := base
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
		if _, err := gen.Generate(p); err == nil {
			t.Errorf("case %d: Generate should refuse invalid params", i)
		}
	}
}

func TestScaled(t *testing.T) {
	p := smallParams(1).Scaled(0.1)
	if p.Cells != 200 || p.Pads != 6 {
		t.Errorf("scaled: cells=%d pads=%d", p.Cells, p.Pads)
	}
	tiny := smallParams(1).Scaled(0.0001)
	if tiny.Cells < 4 {
		t.Errorf("scaled floor violated: %d", tiny.Cells)
	}
}

func TestIBMPresets(t *testing.T) {
	presets := gen.IBMPresets()
	if len(presets) != 5 {
		t.Fatalf("presets = %d, want 5", len(presets))
	}
	wantCells := []int{12506, 19342, 22853, 27220, 28146}
	for i, pr := range presets {
		if pr.Params.Cells != wantCells[i] {
			t.Errorf("%s cells = %d, want %d", pr.Name, pr.Params.Cells, wantCells[i])
		}
		if err := pr.Params.Validate(); err != nil {
			t.Errorf("%s: %v", pr.Name, err)
		}
	}
	// A scaled-down preset generates cleanly.
	small := presets[0].Params.Scaled(0.05)
	nl, err := gen.Generate(small)
	if err != nil {
		t.Fatalf("Generate(IBM01S scaled): %v", err)
	}
	if err := nl.H.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPresetByName(t *testing.T) {
	pr, err := gen.PresetByName("IBM03S")
	if err != nil || pr.Name != "IBM03S" {
		t.Errorf("PresetByName: %v %v", pr.Name, err)
	}
	if _, err := gen.PresetByName("nope"); err == nil {
		t.Error("want error for unknown preset")
	}
}

func TestPinResource(t *testing.T) {
	p := smallParams(20)
	p.PinResource = true
	nl, err := gen.Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	h := nl.H
	if h.NumResources() != 2 {
		t.Fatalf("resources = %d, want 2", h.NumResources())
	}
	// Resource 1 equals the (deduplicated) pin count, except isolated
	// vertices which carry 1.
	for v := 0; v < h.NumVertices(); v++ {
		want := int64(h.Degree(v))
		if want == 0 {
			want = 1
		}
		if got := h.WeightIn(v, 1); got != want {
			t.Fatalf("vertex %d pin resource = %d, want %d", v, got, want)
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestMultibalancePartition exercises the proposed format's multibalance
// semantics end to end: area AND pin count both balanced within tolerance.
func TestMultibalancePartition(t *testing.T) {
	p := smallParams(21)
	p.Cells = 1200
	p.PinResource = true
	nl, err := gen.Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	prob := partition.NewBipartition(nl.H, 0.05)
	res, err := multilevel.Partition(prob, multilevel.Config{}, rand.New(rand.NewPCG(21, 21)))
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	if err := prob.Feasible(res.Assignment); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	w := partition.PartWeights(nl.H, res.Assignment, 2)
	for r := 0; r < 2; r++ {
		total := float64(nl.H.TotalWeightIn(r))
		dev := math.Abs(float64(w[0][r])-total/2) / total
		if dev > 0.05 {
			t.Errorf("resource %d imbalance %.3f exceeds tolerance", r, dev)
		}
	}
}
