package gen

import "fmt"

// Preset is a named parameter set approximating one of the ISPD-98 IBM
// circuits the paper evaluates. Vertex and net counts match the published
// suite statistics; Rent exponents and area skew are set to the values the
// paper cites for modern designs (p near 0.68, k = 3.5, individual cells up
// to several percent of total area).
type Preset struct {
	Name   string
	Params Params
}

// IBMPresets returns IBM01S..IBM05S, synthetic stand-ins for IBM01-IBM05.
// The trailing "S" marks them as synthetic: they reproduce the suite's
// statistics, not its logic.
func IBMPresets() []Preset {
	mk := func(name string, cells, pads int, maxAreaPct float64, seed uint64) Preset {
		return Preset{
			Name: name,
			Params: Params{
				Cells:         cells,
				Pads:          pads,
				RentExponent:  0.68,
				PinsPerCell:   3.9,
				AvgNetSize:    3.5,
				MacroFraction: 0.0005,
				MaxAreaPct:    maxAreaPct,
				Seed:          seed,
			},
		}
	}
	return []Preset{
		mk("IBM01S", 12506, 246, 6.4, 101),
		mk("IBM02S", 19342, 259, 11.3, 102),
		mk("IBM03S", 22853, 283, 9.7, 103),
		mk("IBM04S", 27220, 287, 9.2, 104),
		mk("IBM05S", 28146, 1201, 2.8, 105),
	}
}

// HugePresets returns HUGE1/HUGE2, million-cell synthetic instances sized
// for the intra-descent parallel coarsening path (BenchmarkParallelCoarsen,
// BENCH_coarsen.json). They are placement-scale rather than suite stand-ins:
// HUGE1 keeps the IBM-like Rent exponent, HUGE2 is larger, flatter
// (p = 0.62) and slightly denser, so the two stress different net-size
// mixes. Area skew is kept small so bipartition balance stays feasible at
// tight tolerances.
func HugePresets() []Preset {
	return []Preset{
		{
			Name: "HUGE1",
			Params: Params{
				Cells:         1_000_000,
				Pads:          4_000,
				RentExponent:  0.68,
				PinsPerCell:   3.9,
				AvgNetSize:    3.5,
				MacroFraction: 0.0002,
				MaxAreaPct:    1.5,
				Seed:          201,
			},
		},
		{
			Name: "HUGE2",
			Params: Params{
				Cells:         1_500_000,
				Pads:          6_000,
				RentExponent:  0.62,
				PinsPerCell:   4.2,
				AvgNetSize:    3.8,
				MacroFraction: 0.0002,
				MaxAreaPct:    1.5,
				Seed:          202,
			},
		},
	}
}

// AllPresets returns every named preset: the IBM stand-ins followed by the
// million-cell HUGE instances.
func AllPresets() []Preset {
	return append(IBMPresets(), HugePresets()...)
}

// PresetByName returns the preset with the given name (case-sensitive).
func PresetByName(name string) (Preset, error) {
	for _, p := range AllPresets() {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("gen: unknown preset %q", name)
}
