package geometry_test

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/geometry"
	"repro/internal/partition"
)

func TestRectBasics(t *testing.T) {
	r := geometry.Rect{X0: 1, Y0: 2, X1: 5, Y1: 6}
	if !r.Valid() {
		t.Fatal("valid rect reported invalid")
	}
	if !r.Contains(1, 2) || !r.Contains(5, 6) || !r.Contains(3, 4) {
		t.Error("closed containment wrong")
	}
	if r.Contains(0.9, 4) || r.Contains(3, 6.1) {
		t.Error("containment too loose")
	}
	cx, cy := r.Center()
	if cx != 3 || cy != 4 {
		t.Errorf("center = (%v,%v)", cx, cy)
	}
	p := geometry.Point(2, 3)
	if !p.Valid() || !p.Contains(2, 3) || p.Contains(2, 3.01) {
		t.Error("point semantics wrong")
	}
	inv := geometry.Rect{X0: 5, X1: 1}
	if inv.Valid() {
		t.Error("inverted rect reported valid")
	}
}

func TestRectIntersects(t *testing.T) {
	a := geometry.Rect{X0: 0, Y0: 0, X1: 2, Y1: 2}
	cases := []struct {
		b    geometry.Rect
		want bool
	}{
		{geometry.Rect{X0: 1, Y0: 1, X1: 3, Y1: 3}, true},
		{geometry.Rect{X0: 2, Y0: 0, X1: 4, Y1: 2}, true}, // shared edge
		{geometry.Rect{X0: 2, Y0: 2, X1: 3, Y1: 3}, true}, // shared corner
		{geometry.Rect{X0: 2.1, Y0: 0, X1: 3, Y1: 1}, false},
		{geometry.Point(1, 1), true},
		{geometry.Point(5, 5), false},
	}
	for i, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("case %d: not symmetric", i)
		}
	}
}

func TestLayouts(t *testing.T) {
	bis := geometry.Bisection(10, 8, true)
	if err := bis.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(bis.Parts) != 2 || bis.Parts[0].X1 != 5 {
		t.Errorf("vertical bisection wrong: %+v", bis)
	}
	hor := geometry.Bisection(10, 8, false)
	if hor.Parts[0].Y1 != 4 {
		t.Errorf("horizontal bisection wrong: %+v", hor)
	}
	quad := geometry.Quadrisection(10, 8)
	if err := quad.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(quad.Parts) != 4 {
		t.Fatalf("quadrisection parts = %d", len(quad.Parts))
	}
	// Order: BL, BR, TL, TR.
	if !quad.Parts[0].Contains(1, 1) || !quad.Parts[1].Contains(9, 1) ||
		!quad.Parts[2].Contains(1, 7) || !quad.Parts[3].Contains(9, 7) {
		t.Errorf("quadrant order wrong: %+v", quad.Parts)
	}
	bad := geometry.Layout{Parts: []geometry.Rect{{X0: 1, X1: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("want error for bad layout")
	}
}

func TestMaskForRegion(t *testing.T) {
	quad := geometry.Quadrisection(10, 10)
	// Interior point: one quadrant.
	m, err := quad.MaskForRegion(geometry.Point(2, 2))
	if err != nil || m != partition.Single(0) {
		t.Errorf("BL point mask = %b (%v)", m, err)
	}
	// Point on the horizontal centerline of the left half: both left-side
	// quadrants — the paper's OR example.
	m, err = quad.MaskForRegion(geometry.Point(2, 5))
	if err != nil || m != partition.Single(0).With(2) {
		t.Errorf("left centerline mask = %b (%v)", m, err)
	}
	// Left edge strip spanning the full height: both left quadrants.
	m, err = quad.MaskForRegion(geometry.Rect{X0: 0, Y0: 0, X1: 0, Y1: 10})
	if err != nil || m != partition.Single(0).With(2) {
		t.Errorf("left strip mask = %b (%v)", m, err)
	}
	// The chip center touches all four.
	m, err = quad.MaskForRegion(geometry.Point(5, 5))
	if err != nil || m.Count() != 4 {
		t.Errorf("center mask = %b (%v)", m, err)
	}
	// Disjoint region errors.
	if _, err := quad.MaskForRegion(geometry.Point(20, 20)); err == nil {
		t.Error("want error for unassignable region")
	}
}

func TestNearestPart(t *testing.T) {
	quad := geometry.Quadrisection(10, 10)
	if got := quad.NearestPart(1, 1); got != 0 {
		t.Errorf("NearestPart(1,1) = %d", got)
	}
	if got := quad.NearestPart(9, 9); got != 3 {
		t.Errorf("NearestPart(9,9) = %d", got)
	}
	// Outside the chip, nearest by L1.
	if got := quad.NearestPart(-3, 9); got != 2 {
		t.Errorf("NearestPart(-3,9) = %d", got)
	}
}

func TestPropagationRegion(t *testing.T) {
	block := geometry.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}
	// Point source inside: stays exact.
	r := geometry.PropagationRegion(block, geometry.Point(3, 4))
	if r != geometry.Point(3, 4) {
		t.Errorf("interior point moved: %+v", r)
	}
	// Point source left of the block: nearest boundary point.
	r = geometry.PropagationRegion(block, geometry.Point(-5, 4))
	if r != geometry.Point(0, 4) {
		t.Errorf("left point -> %+v, want (0,4)", r)
	}
	// Corner source: corner point.
	r = geometry.PropagationRegion(block, geometry.Point(-5, -5))
	if r != geometry.Point(0, 0) {
		t.Errorf("corner -> %+v", r)
	}
	// Region source: a tall sibling strip to the left clamps to the left
	// edge spanning the height -> both left quadrants of a quadrisection.
	sib := geometry.Rect{X0: -10, Y0: 0, X1: -1, Y1: 10}
	r = geometry.PropagationRegion(block, sib)
	want := geometry.Rect{X0: 0, Y0: 0, X1: 0, Y1: 10}
	if r != want {
		t.Fatalf("strip -> %+v, want %+v", r, want)
	}
	quad := geometry.Quadrisection(10, 10)
	m, err := quad.MaskForRegion(r)
	if err != nil || m != partition.Single(0).With(2) {
		t.Errorf("propagated strip mask = %b (%v), want both left quadrants", m, err)
	}
}

func TestPropagationRegionProperty(t *testing.T) {
	block := geometry.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 71))
		src := geometry.Rect{
			X0: rng.Float64()*40 - 20,
			Y0: rng.Float64()*40 - 20,
		}
		src.X1 = src.X0 + rng.Float64()*10
		src.Y1 = src.Y0 + rng.Float64()*10
		r := geometry.PropagationRegion(block, src)
		// Result is always valid and inside the block.
		if !r.Valid() {
			return false
		}
		return r.X0 >= 0 && r.X1 <= 10 && r.Y0 >= 0 && r.Y1 <= 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
