// Package geometry models the geometric side of the paper's proposed
// benchmark features: multiple partition geometries (bisection halves,
// quadrisection quadrants, arbitrary rectangles), and terminals assigned to
// regions or exact locations (degenerate regions). A terminal whose region
// overlaps several partition rectangles is allowed in any of them — the
// paper's OR semantics, e.g. "a propagated terminal can be fixed in the two
// left-side quadrants of a quadrisection instance, so that the partitioner
// is free to assign it to either left-side quadrant."
package geometry

import (
	"fmt"

	"repro/internal/partition"
)

// Rect is a closed axis-parallel rectangle; X0 == X1 and/or Y0 == Y1 yields
// a degenerate region (segment or point, used for exact locations).
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// Point returns the degenerate region at (x, y).
func Point(x, y float64) Rect { return Rect{x, y, x, y} }

// Valid reports whether the rectangle is non-inverted.
func (r Rect) Valid() bool { return r.X0 <= r.X1 && r.Y0 <= r.Y1 }

// Contains reports whether (x, y) lies in the closed rectangle.
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X0 && x <= r.X1 && y >= r.Y0 && y <= r.Y1
}

// Intersects reports whether the closed rectangles share at least a point.
func (r Rect) Intersects(o Rect) bool {
	return r.X0 <= o.X1 && o.X0 <= r.X1 && r.Y0 <= o.Y1 && o.Y0 <= r.Y1
}

// Center returns the rectangle's midpoint.
func (r Rect) Center() (float64, float64) {
	return (r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2
}

// Layout assigns each partition a rectangle of the layout region. Parts may
// share boundaries; a terminal region on a shared boundary is allowed in all
// touching parts.
type Layout struct {
	Parts []Rect
}

// Bisection returns the 2-part layout splitting the w x h region with a
// vertical (left = part 0) or horizontal (bottom = part 0) cutline.
func Bisection(w, h float64, vertical bool) Layout {
	return BisectionOf(Rect{0, 0, w, h}, vertical)
}

// BisectionOf splits an arbitrary block rectangle in two.
func BisectionOf(r Rect, vertical bool) Layout {
	cx, cy := r.Center()
	if vertical {
		return Layout{Parts: []Rect{{r.X0, r.Y0, cx, r.Y1}, {cx, r.Y0, r.X1, r.Y1}}}
	}
	return Layout{Parts: []Rect{{r.X0, r.Y0, r.X1, cy}, {r.X0, cy, r.X1, r.Y1}}}
}

// Quadrisection returns the 4-part layout of the w x h region in the order
// bottom-left, bottom-right, top-left, top-right.
func Quadrisection(w, h float64) Layout {
	return QuadrisectionOf(Rect{0, 0, w, h})
}

// QuadrisectionOf splits an arbitrary block rectangle into its quadrants
// (bottom-left, bottom-right, top-left, top-right).
func QuadrisectionOf(r Rect) Layout {
	cx, cy := r.Center()
	return Layout{Parts: []Rect{
		{r.X0, r.Y0, cx, cy},
		{cx, r.Y0, r.X1, cy},
		{r.X0, cy, cx, r.Y1},
		{cx, cy, r.X1, r.Y1},
	}}
}

// Validate checks the layout for structural errors.
func (l Layout) Validate() error {
	if len(l.Parts) < 2 || len(l.Parts) > partition.MaxParts {
		return fmt.Errorf("geometry: layout has %d parts, want 2..%d", len(l.Parts), partition.MaxParts)
	}
	for i, r := range l.Parts {
		if !r.Valid() {
			return fmt.Errorf("geometry: part %d rectangle inverted: %+v", i, r)
		}
	}
	return nil
}

// MaskForRegion returns the OR-mask of partitions whose rectangles intersect
// the terminal region. It returns an error when the region touches no
// partition (an unassignable terminal).
func (l Layout) MaskForRegion(r Rect) (partition.Mask, error) {
	var m partition.Mask
	for i, pr := range l.Parts {
		if pr.Intersects(r) {
			m = m.With(i)
		}
	}
	if m == 0 {
		return 0, fmt.Errorf("geometry: region %+v intersects no partition", r)
	}
	return m, nil
}

// NearestPart returns the partition whose rectangle is closest to (x, y)
// (containment wins; otherwise minimal L1 distance to the rectangle).
func (l Layout) NearestPart(x, y float64) int {
	best, bestDist := 0, -1.0
	for i, pr := range l.Parts {
		d := rectDistL1(pr, x, y)
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

func rectDistL1(r Rect, x, y float64) float64 {
	var dx, dy float64
	if x < r.X0 {
		dx = r.X0 - x
	} else if x > r.X1 {
		dx = x - r.X1
	}
	if y < r.Y0 {
		dy = r.Y0 - y
	} else if y > r.Y1 {
		dy = y - r.Y1
	}
	return dx + dy
}

// PropagationRegion models terminal propagation onto a block in the
// Dunlop-Kernighan sense: the external vertex's own region (its placed
// location as a degenerate rectangle, or the sibling block it currently
// lives in) is clamped into the block, yielding the nearest boundary point
// for a point source and a boundary strip for a region source. A terminal
// whose source region is a tall strip left of a quadrisection block clamps
// to the block's left edge, which intersects both left-side quadrants — the
// paper's OR example.
func PropagationRegion(block, src Rect) Rect {
	return Rect{
		X0: clamp(src.X0, block.X0, block.X1),
		Y0: clamp(src.Y0, block.Y0, block.Y1),
		X1: clamp(src.X1, block.X0, block.X1),
		Y1: clamp(src.Y1, block.Y0, block.Y1),
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
