package hypergraph

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/par"
)

// minParallelNets is the size below which ContractParallel falls back to the
// serial ContractInto: goroutine dispatch and shard bookkeeping cost more than
// they save on the small, deep levels of a hierarchy. The threshold depends
// only on the input, never on the worker count, so the fallback cannot break
// the bit-identical-across-worker-counts contract.
// A variable only so the differential tests can force small instances
// through the parallel path.
var minParallelNets = 4096

// contractShard is the per-slot working state of ContractParallel. One shard
// serves two distinct roles, both indexed by the same slot id because the
// chunk count equals the worker count:
//
//   - mark/collapsed are *worker* storage: whichever pool goroutine processes
//     a chunk stamps clusters in its own mark array (stamps are global net
//     ids, unique across chunks, so one array serves many chunks safely).
//   - lens/pins/hashes/cnt are *chunk* outputs: results addressed by the
//     chunk index, which is what keeps the merge deterministic no matter
//     which goroutine produced them.
type contractShard struct {
	// Worker-side scratch.
	mark      []int32 // last net id that touched each cluster
	markRun   uint64  // run id mark was last cleared for
	collapsed []int32 // one net's pins collapsed to distinct clusters

	// Chunk-side outputs of the projection phase.
	lens   []int32  // per net in this chunk: distinct-cluster count (<2 = dropped)
	pins   []int32  // concatenated collapsed pins of this chunk's kept nets
	hashes []uint64 // per kept net: FNV hash of the (sorted) pins, merge mode only

	// Chunk-side vertex-CSR counters, reused as fill cursors.
	cnt []int32
}

// contractParScratch is the pooled working state of one ContractParallel
// call: the shards, the merge table and survivor metadata, and the atomic
// seen/non-pad flags of the weight phase.
type contractParScratch struct {
	shards   []*contractShard
	table    []int32
	srcChunk []int32 // per coarse net: chunk holding its pins
	srcOff   []int32 // per coarse net: offset of its pins in that chunk
	offsets  []int32
	weights  []int64
	seen     []uint32
	nonPad   []uint32
	badV     []int32 // per chunk: smallest out-of-range vertex, or -1
}

var contractParPool = sync.Pool{New: func() any { return &contractParScratch{} }}

// contractRunID tags each ContractParallel call so pooled mark arrays can be
// cleared lazily, once per run, by whichever goroutine first touches them.
var contractRunID atomic.Uint64

// chunkBounds returns the half-open range of chunk c when n items are split
// into p contiguous chunks. The split depends only on (n, p).
func chunkBounds(n, p, c int) (int, int) {
	return n * c / p, n * (c + 1) / p
}

// ContractParallel is Contract with the projection, CSR construction and
// weight accumulation spread over `workers` goroutines. Its output is
// bit-identical to Contract / ContractInto / ContractReference for every
// worker count: net chunks are contiguous ranges visited in order by a serial
// merge pass, pin positions in the vertex CSR are computed from global
// counts, and every cross-chunk reduction is either order-independent
// (integer sums, minima) or performed serially in chunk order. Worker slots
// select storage only, never meaning, per the internal/par contract.
//
// Small inputs (fewer than minParallelNets nets) and workers <= 1 take the
// serial path; the fallback condition depends only on the input.
func ContractParallel(h *Hypergraph, clusterOf []int32, numClusters int, opts ContractOptions, workers int) (*Hypergraph, []int32, error) {
	if workers <= 1 || h.numNets < minParallelNets {
		return Contract(h, clusterOf, numClusters, opts)
	}
	if len(clusterOf) != h.numVerts {
		return nil, nil, fmt.Errorf("hypergraph: clusterOf has %d entries for %d vertices", len(clusterOf), h.numVerts)
	}
	P := workers // chunk count; results are identical for every value
	s := contractParPool.Get().(*contractParScratch)
	defer contractParPool.Put(s)
	for len(s.shards) < P {
		s.shards = append(s.shards, &contractShard{})
	}
	runID := contractRunID.Add(1)

	r := h.NumResources()
	coarse := &Hypergraph{
		numVerts:    numClusters,
		weights:     make([][]int64, r),
		totalWeight: make([]int64, r),
		isPad:       make([]bool, numClusters),
	}
	for i := 0; i < r; i++ {
		coarse.weights[i] = make([]int64, numClusters)
	}

	// Phase 1: cluster weights, membership and pad flags, in parallel over
	// vertex ranges. Weight sums use atomic adds (64-bit integer addition is
	// exact and order-independent), membership and non-pad flags are
	// idempotent atomic stores, and each chunk tracks its smallest
	// out-of-range vertex so the error matches the serial scan.
	s.seen = growUint32s(s.seen, numClusters)
	s.nonPad = growUint32s(s.nonPad, numClusters)
	par.ForEach(P, P, func(c int) {
		lo, hi := chunkBounds(numClusters, P, c)
		clear(s.seen[lo:hi])
		clear(s.nonPad[lo:hi])
	})
	s.badV = growInts(s.badV, P)
	par.ForEachWorkerCtx(nil, P, P, func(_, ci int) {
		lo, hi := chunkBounds(h.numVerts, P, ci)
		bad := int32(-1)
		for v := lo; v < hi; v++ {
			c := clusterOf[v]
			if c < 0 || int(c) >= numClusters {
				bad = int32(v)
				break
			}
			atomic.StoreUint32(&s.seen[c], 1)
			if !h.IsPad(v) {
				atomic.StoreUint32(&s.nonPad[c], 1)
			}
			for i := 0; i < r; i++ {
				atomic.AddInt64(&coarse.weights[i][c], h.weights[i][v])
			}
		}
		s.badV[ci] = bad
	})
	for ci := 0; ci < P; ci++ {
		if bad := s.badV[ci]; bad >= 0 {
			return nil, nil, fmt.Errorf("hypergraph: vertex %d mapped to cluster %d outside [0,%d)", bad, clusterOf[bad], numClusters)
		}
	}
	for c := 0; c < numClusters; c++ {
		if s.seen[c] == 0 {
			return nil, nil, fmt.Errorf("hypergraph: cluster %d has no members", c)
		}
		coarse.isPad[c] = s.nonPad[c] == 0
	}
	for i := 0; i < r; i++ {
		coarse.totalWeight[i] = h.totalWeight[i]
	}

	// Phase 2: project each chunk's nets onto clusters concurrently. The
	// worker slot supplies the mark array, the chunk index addresses the
	// outputs; pins are sorted (merge mode) and hashed here so the serial
	// merge below only probes and compares.
	par.ForEachWorkerCtx(nil, P, P, func(w, ci int) {
		ws := s.shards[w]
		if ws.markRun != runID {
			ws.mark = growInts(ws.mark, numClusters)
			for i := range ws.mark {
				ws.mark[i] = -1
			}
			ws.markRun = runID
		} else {
			ws.mark = growInts(ws.mark, numClusters)
		}
		cs := s.shards[ci]
		lo, hi := chunkBounds(h.numNets, P, ci)
		cs.lens = growInts(cs.lens, hi-lo) // every entry is written below
		cs.pins = cs.pins[:0]
		cs.hashes = cs.hashes[:0]
		for e := lo; e < hi; e++ {
			ws.collapsed = ws.collapsed[:0]
			for _, v := range h.Pins(e) {
				c := clusterOf[v]
				if ws.mark[c] != int32(e) {
					ws.mark[c] = int32(e)
					ws.collapsed = append(ws.collapsed, c)
				}
			}
			cs.lens[e-lo] = int32(len(ws.collapsed))
			if len(ws.collapsed) < 2 {
				continue
			}
			if opts.MergeParallelNets {
				slices.Sort(ws.collapsed)
				cs.hashes = append(cs.hashes, hashPins(ws.collapsed))
			}
			cs.pins = append(cs.pins, ws.collapsed...)
		}
	})

	// Phase 3: serial merge in global net order — the step that fixes coarse
	// net ids, survivor choice and weight accumulation exactly as the serial
	// code does. It walks chunks in index order (= net order) and touches
	// pins only to resolve hash hits.
	netMap := make([]int32, h.numNets)
	var tableMask uint64
	if opts.MergeParallelNets {
		size := 16
		for size < 2*h.numNets {
			size <<= 1
		}
		s.table = growInts(s.table, size)
		par.ForEach(P, P, func(c int) {
			lo, hi := chunkBounds(size, P, c)
			for i := lo; i < hi; i++ {
				s.table[i] = -1
			}
		})
		tableMask = uint64(size - 1)
	}
	s.srcChunk = s.srcChunk[:0]
	s.srcOff = s.srcOff[:0]
	s.offsets = append(s.offsets[:0], 0)
	s.weights = s.weights[:0]
	for ci := 0; ci < P; ci++ {
		cs := s.shards[ci]
		lo, hi := chunkBounds(h.numNets, P, ci)
		cur, hcur := int32(0), 0
		for e := lo; e < hi; e++ {
			ln := cs.lens[e-lo]
			if ln < 2 {
				netMap[e] = -1
				continue
			}
			pins := cs.pins[cur : cur+ln]
			cur += ln
			if opts.MergeParallelNets {
				hsh := cs.hashes[hcur]
				hcur++
				slot := hsh & tableMask
				merged := false
				for {
					id := s.table[slot]
					if id < 0 {
						s.table[slot] = int32(len(s.weights))
						break
					}
					sc := s.shards[s.srcChunk[id]]
					surv := sc.pins[s.srcOff[id] : s.srcOff[id]+(s.offsets[id+1]-s.offsets[id])]
					if pinsEqual(surv, pins) {
						s.weights[id] += h.netWeights[e]
						netMap[e] = id
						merged = true
						break
					}
					slot = (slot + 1) & tableMask
				}
				if merged {
					continue
				}
			}
			netMap[e] = int32(len(s.weights))
			s.srcChunk = append(s.srcChunk, int32(ci))
			s.srcOff = append(s.srcOff, cur-ln)
			s.offsets = append(s.offsets, s.offsets[len(s.offsets)-1]+ln)
			s.weights = append(s.weights, h.netWeights[e])
		}
	}

	// Phase 4: copy the surviving nets into right-sized arrays owned by the
	// result, in parallel over coarse-net ranges (target positions are fixed
	// by the offsets, so chunking is free to follow the worker count).
	coarse.numNets = len(s.weights)
	coarse.netOffsets = append(make([]int32, 0, len(s.offsets)), s.offsets...)
	coarse.netWeights = append(make([]int64, 0, len(s.weights)), s.weights...)
	coarse.netPins = make([]int32, s.offsets[len(s.offsets)-1])
	par.ForEach(P, P, func(c int) {
		lo, hi := chunkBounds(coarse.numNets, P, c)
		for id := lo; id < hi; id++ {
			sc := s.shards[s.srcChunk[id]]
			ln := coarse.netOffsets[id+1] - coarse.netOffsets[id]
			copy(coarse.netPins[coarse.netOffsets[id]:], sc.pins[s.srcOff[id]:s.srcOff[id]+ln])
		}
	})

	buildVertexCSRParallel(coarse, s, P)
	return coarse, netMap, nil
}

// buildVertexCSRParallel fills vertOffsets/vertNets concurrently with output
// identical to buildVertexCSRInto: each chunk of coarse nets counts its pins
// per vertex, the counts are turned into exact global fill positions (a pin
// of vertex v in net e lands at vertOffsets[v] plus the number of v's pins in
// earlier nets — a quantity independent of the chunking), and each chunk then
// writes its pins at those positions.
func buildVertexCSRParallel(h *Hypergraph, s *contractParScratch, P int) {
	h.vertOffsets = make([]int32, h.numVerts+1)
	for ci := 0; ci < P; ci++ {
		s.shards[ci].cnt = growInts(s.shards[ci].cnt, h.numVerts)
	}
	par.ForEachWorkerCtx(nil, P, P, func(_, ci int) {
		cs := s.shards[ci]
		clear(cs.cnt[:h.numVerts])
		lo, hi := chunkBounds(h.numNets, P, ci)
		for e := lo; e < hi; e++ {
			for _, v := range h.Pins(e) {
				cs.cnt[v]++
			}
		}
	})
	// Per-vertex degree = sum of chunk counts; computed over vertex ranges.
	par.ForEach(P, P, func(c int) {
		lo, hi := chunkBounds(h.numVerts, P, c)
		for v := lo; v < hi; v++ {
			var d int32
			for ci := 0; ci < P; ci++ {
				d += s.shards[ci].cnt[v]
			}
			h.vertOffsets[v+1] = d
		}
	})
	for v := 0; v < h.numVerts; v++ {
		h.vertOffsets[v+1] += h.vertOffsets[v]
	}
	h.vertNets = make([]int32, h.vertOffsets[h.numVerts])
	// Turn the counts into each chunk's starting cursor for every vertex.
	par.ForEach(P, P, func(c int) {
		lo, hi := chunkBounds(h.numVerts, P, c)
		for v := lo; v < hi; v++ {
			run := h.vertOffsets[v]
			for ci := 0; ci < P; ci++ {
				cs := s.shards[ci]
				n := cs.cnt[v]
				cs.cnt[v] = run
				run += n
			}
		}
	})
	par.ForEachWorkerCtx(nil, P, P, func(_, ci int) {
		cs := s.shards[ci]
		lo, hi := chunkBounds(h.numNets, P, ci)
		for e := lo; e < hi; e++ {
			for _, v := range h.Pins(e) {
				h.vertNets[cs.cnt[v]] = int32(e)
				cs.cnt[v]++
			}
		}
	})
}

func growUint32s(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}
