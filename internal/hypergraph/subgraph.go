package hypergraph

import "fmt"

// InducedResult is the outcome of InducedSubgraph: the sub-hypergraph plus
// mappings back to the parent.
type InducedResult struct {
	Sub *Hypergraph
	// VertexOf maps sub-vertex ids to parent vertex ids.
	VertexOf []int32
	// SubOf maps parent vertex ids to sub-vertex ids, or -1 when excluded.
	SubOf []int32
	// NetOf maps sub-net ids to parent net ids.
	NetOf []int32
	// ClippedNets lists parent nets that had pins both inside and outside
	// the kept set (these become "external nets" of the block in the
	// top-down placement sense). A clipped net is retained in the subgraph
	// only when it still spans >= 2 kept vertices.
	ClippedNets []int32
}

// InducedSubgraph extracts the sub-hypergraph induced by keep[v] == true.
// Nets are restricted to kept pins; restricted nets with fewer than two pins
// are dropped. Weights, pad flags and names carry over.
func InducedSubgraph(h *Hypergraph, keep []bool) (*InducedResult, error) {
	if len(keep) != h.numVerts {
		return nil, fmt.Errorf("hypergraph: keep has %d entries for %d vertices", len(keep), h.numVerts)
	}
	res := &InducedResult{SubOf: make([]int32, h.numVerts)}
	for i := range res.SubOf {
		res.SubOf[i] = -1
	}
	r := h.NumResources()
	b := NewBuilder(r)
	ws := make([]int64, r)
	for v := 0; v < h.numVerts; v++ {
		if !keep[v] {
			continue
		}
		for i := 0; i < r; i++ {
			ws[i] = h.weights[i][v]
		}
		name := ""
		if h.vertNames != nil {
			name = h.vertNames[v]
		}
		id := b.AddCell(name, ws...)
		b.SetPad(id, h.IsPad(v))
		res.SubOf[v] = int32(id)
		res.VertexOf = append(res.VertexOf, int32(v))
	}
	var pins []int
	for e := 0; e < h.numNets; e++ {
		pins = pins[:0]
		clipped := false
		for _, v := range h.Pins(e) {
			if keep[v] {
				pins = append(pins, int(res.SubOf[v]))
			} else {
				clipped = true
			}
		}
		if clipped && len(pins) > 0 {
			res.ClippedNets = append(res.ClippedNets, int32(e))
		}
		if len(pins) < 2 {
			continue
		}
		id := b.AddWeightedNet(h.netWeights[e], pins...)
		if h.netNames != nil {
			b.NameNet(id, h.netNames[e])
		}
		res.NetOf = append(res.NetOf, int32(e))
	}
	sub, err := b.Build()
	if err != nil {
		return nil, err
	}
	res.Sub = sub
	return res, nil
}
