package hypergraph_test

import (
	"math/rand/v2"
	"testing"

	"repro/internal/hypergraph"
)

// benchInput builds a mid-size random hypergraph once per benchmark.
func benchInput(b *testing.B, nv, ne int) *hypergraph.Hypergraph {
	b.Helper()
	rng := rand.New(rand.NewPCG(7, 7))
	bl := hypergraph.NewBuilder(1)
	for i := 0; i < nv; i++ {
		bl.AddVertex(int64(1 + rng.IntN(8)))
	}
	for e := 0; e < ne; e++ {
		sz := 2 + rng.IntN(4)
		pins := make([]int, sz)
		for i := range pins {
			pins[i] = rng.IntN(nv)
		}
		bl.DedupPins = true
		bl.DropSingletons = true
		bl.AddNet(pins...)
	}
	return bl.MustBuild()
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 7))
	const nv, ne = 10000, 12000
	pins := make([][]int, ne)
	for e := range pins {
		sz := 2 + rng.IntN(4)
		pins[e] = make([]int, sz)
		for i := range pins[e] {
			pins[e][i] = rng.IntN(nv)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := hypergraph.NewBuilder(1)
		bl.DedupPins = true
		bl.DropSingletons = true
		for v := 0; v < nv; v++ {
			bl.AddVertex(1)
		}
		for _, p := range pins {
			bl.AddNet(p...)
		}
		if _, err := bl.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchClustering pairs vertices into a half-size clustering of h.
func benchClustering(h *hypergraph.Hypergraph) ([]int32, int) {
	rng := rand.New(rand.NewPCG(8, 8))
	nc := h.NumVertices() / 2
	clusterOf := make([]int32, h.NumVertices())
	for i := 0; i < nc; i++ {
		clusterOf[i] = int32(i)
	}
	for i := nc; i < h.NumVertices(); i++ {
		clusterOf[i] = int32(rng.IntN(nc))
	}
	return clusterOf, nc
}

// BenchmarkContract compares the allocation-free scratch path against the
// frozen map-based reference; run with -benchmem to see the allocation gap.
// The scratch sub-benchmark also enforces the headline acceptance: allocs/op
// must be at least 5x lower than the reference.
func BenchmarkContract(b *testing.B) {
	h := benchInput(b, 10000, 12000)
	clusterOf, nc := benchClustering(h)
	opts := hypergraph.ContractOptions{MergeParallelNets: true}
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := hypergraph.Contract(h, clusterOf, nc, opts); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		newAllocs := testing.AllocsPerRun(20, func() {
			if _, _, err := hypergraph.Contract(h, clusterOf, nc, opts); err != nil {
				b.Fatal(err)
			}
		})
		refAllocs := testing.AllocsPerRun(20, func() {
			if _, _, err := hypergraph.ContractReference(h, clusterOf, nc, opts); err != nil {
				b.Fatal(err)
			}
		})
		b.ReportMetric(newAllocs, "allocs/op-measured")
		b.ReportMetric(refAllocs/newAllocs, "alloc-reduction-x")
		if refAllocs < 5*newAllocs {
			b.Errorf("Contract allocs/op %.0f not reduced >= 5x vs reference %.0f", newAllocs, refAllocs)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := hypergraph.ContractReference(h, clusterOf, nc, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkValidate(b *testing.B) {
	h := benchInput(b, 10000, 12000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInducedSubgraph(b *testing.B) {
	h := benchInput(b, 10000, 12000)
	keep := make([]bool, h.NumVertices())
	for i := range keep {
		keep[i] = i%2 == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hypergraph.InducedSubgraph(h, keep); err != nil {
			b.Fatal(err)
		}
	}
}
