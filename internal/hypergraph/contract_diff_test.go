package hypergraph_test

import (
	"math/rand/v2"
	"testing"

	"repro/internal/hypergraph"
)

// sameHypergraph asserts a and b are bit-identical through the public API:
// same vertex/net counts, weights, pads, pin lists (order included) and
// vertex->net CSR.
func sameHypergraph(t *testing.T, a, b *hypergraph.Hypergraph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumNets() != b.NumNets() || a.NumPins() != b.NumPins() {
		t.Fatalf("shape mismatch: %v vs %v", a, b)
	}
	if a.NumResources() != b.NumResources() {
		t.Fatalf("resource count mismatch: %d vs %d", a.NumResources(), b.NumResources())
	}
	for v := 0; v < a.NumVertices(); v++ {
		for r := 0; r < a.NumResources(); r++ {
			if a.WeightIn(v, r) != b.WeightIn(v, r) {
				t.Fatalf("vertex %d weight mismatch in resource %d: %d vs %d", v, r, a.WeightIn(v, r), b.WeightIn(v, r))
			}
		}
		if a.IsPad(v) != b.IsPad(v) {
			t.Fatalf("vertex %d pad mismatch", v)
		}
		an, bn := a.NetsOf(v), b.NetsOf(v)
		if len(an) != len(bn) {
			t.Fatalf("vertex %d degree mismatch: %d vs %d", v, len(an), len(bn))
		}
		for i := range an {
			if an[i] != bn[i] {
				t.Fatalf("vertex %d nets mismatch at %d: %d vs %d", v, i, an[i], bn[i])
			}
		}
	}
	for e := 0; e < a.NumNets(); e++ {
		if a.NetWeight(e) != b.NetWeight(e) {
			t.Fatalf("net %d weight mismatch: %d vs %d", e, a.NetWeight(e), b.NetWeight(e))
		}
		ap, bp := a.Pins(e), b.Pins(e)
		if len(ap) != len(bp) {
			t.Fatalf("net %d size mismatch: %d vs %d", e, len(ap), len(bp))
		}
		for i := range ap {
			if ap[i] != bp[i] {
				t.Fatalf("net %d pins mismatch at %d: %d vs %d", e, i, ap[i], bp[i])
			}
		}
	}
}

// TestContractMatchesReference drives the allocation-free Contract and the
// frozen ContractReference over random hypergraphs and clusterings (merge on
// and off, pads, multi-resource weights, repeated calls through one pooled
// scratch) and requires bit-identical output.
func TestContractMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 1))
	scratch := hypergraph.NewContractScratch()
	for trial := 0; trial < 40; trial++ {
		nv := 3 + rng.IntN(120)
		ne := 1 + rng.IntN(240)
		nr := 1 + rng.IntN(2)
		bl := hypergraph.NewBuilder(nr)
		bl.DedupPins = true
		bl.DropSingletons = true
		for v := 0; v < nv; v++ {
			if rng.IntN(8) == 0 {
				bl.AddPad("")
			} else {
				ws := make([]int64, nr)
				for r := range ws {
					ws[r] = int64(1 + rng.IntN(9))
				}
				bl.AddVertex(ws...)
			}
		}
		for e := 0; e < ne; e++ {
			sz := 2 + rng.IntN(5)
			pins := make([]int, sz)
			for i := range pins {
				pins[i] = rng.IntN(nv)
			}
			bl.AddWeightedNet(int64(1+rng.IntN(4)), pins...)
		}
		h, err := bl.Build()
		if err != nil {
			t.Fatal(err)
		}
		nc := 1 + rng.IntN(nv)
		clusterOf := make([]int32, nv)
		for v := range clusterOf {
			clusterOf[v] = int32(rng.IntN(nc))
		}
		// Ensure every cluster has a member.
		for c := 0; c < nc && c < nv; c++ {
			clusterOf[c] = int32(c)
		}
		opts := hypergraph.ContractOptions{MergeParallelNets: trial%2 == 0}

		want, wantMap, wantErr := hypergraph.ContractReference(h, clusterOf, nc, opts)
		got, gotMap, gotErr := hypergraph.ContractInto(h, clusterOf, nc, opts, scratch)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		sameHypergraph(t, want, got)
		if len(wantMap) != len(gotMap) {
			t.Fatalf("trial %d: netMap length mismatch", trial)
		}
		for e := range wantMap {
			if wantMap[e] != gotMap[e] {
				t.Fatalf("trial %d: netMap[%d] = %d, reference %d", trial, e, gotMap[e], wantMap[e])
			}
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("trial %d: coarse hypergraph invalid: %v", trial, err)
		}
	}
}

// TestContractErrorsMatchReference checks the rewritten path rejects the same
// malformed inputs as the reference.
func TestContractErrorsMatchReference(t *testing.T) {
	bl := hypergraph.NewBuilder(1)
	for i := 0; i < 3; i++ {
		bl.AddVertex(1)
	}
	bl.AddNet(0, 1, 2)
	h := bl.MustBuild()
	cases := []struct {
		clusterOf []int32
		nc        int
	}{
		{[]int32{0, 0}, 1},    // wrong length
		{[]int32{0, 0, 5}, 2}, // out of range
		{[]int32{0, 0, 0}, 2}, // empty cluster
	}
	for i, c := range cases {
		_, _, refErr := hypergraph.ContractReference(h, c.clusterOf, c.nc, hypergraph.ContractOptions{})
		_, _, newErr := hypergraph.Contract(h, c.clusterOf, c.nc, hypergraph.ContractOptions{})
		if (refErr == nil) != (newErr == nil) {
			t.Fatalf("case %d: error mismatch: reference %v, new %v", i, refErr, newErr)
		}
		if refErr == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}
