package hypergraph

import (
	"errors"
	"fmt"
)

// Builder accumulates vertices and nets and produces an immutable Hypergraph.
// The zero value is ready to use (with a single weight resource).
type Builder struct {
	numResources int
	weights      [][]int64
	isPad        []bool
	vertNames    []string
	anyVertName  bool

	nets       [][]int32
	netWeights []int64
	netNames   []string
	anyNetName bool

	// DropSingletons drops nets with fewer than two distinct pins at Build
	// time instead of rejecting them. Such nets cannot be cut and carry no
	// information for partitioning.
	DropSingletons bool
	// DedupPins removes duplicate pins within a net at Build time instead of
	// rejecting them (netlists occasionally connect a net to the same cell
	// more than once).
	DedupPins bool
}

// NewBuilder returns a Builder for hypergraphs with the given number of
// weight resources per vertex (at least 1; resource 0 is cell area).
func NewBuilder(numResources int) *Builder {
	if numResources < 1 {
		numResources = 1
	}
	return &Builder{numResources: numResources, weights: make([][]int64, numResources)}
}

func (b *Builder) resources() int {
	if b.numResources == 0 {
		b.numResources = 1
		b.weights = make([][]int64, 1)
	}
	return b.numResources
}

// AddVertex adds a vertex with the given weights (one per resource; missing
// trailing resources default to 0) and returns its id.
func (b *Builder) AddVertex(weights ...int64) int {
	r := b.resources()
	id := len(b.weights[0])
	for i := 0; i < r; i++ {
		var w int64
		if i < len(weights) {
			w = weights[i]
		}
		b.weights[i] = append(b.weights[i], w)
	}
	b.isPad = append(b.isPad, false)
	b.vertNames = append(b.vertNames, "")
	return id
}

// AddCell adds a named cell vertex with the given weights and returns its id.
func (b *Builder) AddCell(name string, weights ...int64) int {
	id := b.AddVertex(weights...)
	b.vertNames[id] = name
	b.anyVertName = b.anyVertName || name != ""
	return id
}

// AddPad adds a zero-weight I/O pad vertex and returns its id.
func (b *Builder) AddPad(name string) int {
	id := b.AddCell(name)
	b.isPad[id] = true
	return id
}

// SetPad marks vertex v as a pad (or clears the mark).
func (b *Builder) SetPad(v int, pad bool) { b.isPad[v] = pad }

// SetWeight overwrites vertex v's weight in resource r. It allows weights
// that depend on the netlist itself (e.g. pin counts) to be filled in after
// the nets are added.
func (b *Builder) SetWeight(v, r int, w int64) { b.weights[r][v] = w }

// AddNet adds a net of weight 1 connecting the given vertices and returns
// its id. Pins are recorded as given; validation happens at Build time.
func (b *Builder) AddNet(pins ...int) int {
	return b.AddWeightedNet(1, pins...)
}

// AddWeightedNet adds a net with the given weight and pins and returns its id.
func (b *Builder) AddWeightedNet(weight int64, pins ...int) int {
	p := make([]int32, len(pins))
	for i, v := range pins {
		p[i] = int32(v)
	}
	id := len(b.nets)
	b.nets = append(b.nets, p)
	b.netWeights = append(b.netWeights, weight)
	b.netNames = append(b.netNames, "")
	return id
}

// NameNet assigns a name to net e.
func (b *Builder) NameNet(e int, name string) {
	b.netNames[e] = name
	b.anyNetName = b.anyNetName || name != ""
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int {
	if len(b.weights) == 0 {
		return 0
	}
	return len(b.weights[0])
}

// NumNets returns the number of nets added so far.
func (b *Builder) NumNets() int { return len(b.nets) }

// NetPins returns the pins recorded for net e, exactly as added (duplicates
// included; DedupPins only takes effect at Build time). The slice aliases
// builder storage and must not be modified.
func (b *Builder) NetPins(e int) []int32 { return b.nets[e] }

// Build validates the accumulated data and returns the hypergraph.
// It returns an error when a pin references an unknown vertex, a net has a
// duplicate pin (unless DedupPins), a net has fewer than two pins (unless
// DropSingletons), or a weight is negative.
func (b *Builder) Build() (*Hypergraph, error) {
	r := b.resources()
	nv := b.NumVertices()
	for i := 0; i < r; i++ {
		for v, w := range b.weights[i] {
			if w < 0 {
				return nil, fmt.Errorf("hypergraph: vertex %d has negative weight %d in resource %d", v, w, i)
			}
		}
	}

	type netRec struct {
		pins   []int32
		weight int64
		name   string
	}
	kept := make([]netRec, 0, len(b.nets))
	seen := make([]int32, nv) // seen[v] = net id+1 that last used v
	for e, pins := range b.nets {
		if b.netWeights[e] < 0 {
			return nil, fmt.Errorf("hypergraph: net %d has negative weight %d", e, b.netWeights[e])
		}
		out := pins
		if b.DedupPins {
			out = out[:0:0]
		}
		for _, v := range pins {
			if v < 0 || int(v) >= nv {
				return nil, fmt.Errorf("hypergraph: net %d pin references unknown vertex %d (have %d vertices)", e, v, nv)
			}
			if seen[v] == int32(e)+1 {
				if !b.DedupPins {
					return nil, fmt.Errorf("hypergraph: net %d has duplicate pin on vertex %d", e, v)
				}
				continue
			}
			seen[v] = int32(e) + 1
			if b.DedupPins {
				out = append(out, v)
			}
		}
		if len(out) < 2 {
			if b.DropSingletons {
				continue
			}
			return nil, fmt.Errorf("hypergraph: net %d has %d distinct pins; nets need at least 2 (set DropSingletons to drop)", e, len(out))
		}
		kept = append(kept, netRec{pins: out, weight: b.netWeights[e], name: b.netNames[e]})
	}

	h := &Hypergraph{
		numVerts:    nv,
		numNets:     len(kept),
		weights:     make([][]int64, r),
		netWeights:  make([]int64, len(kept)),
		isPad:       append([]bool(nil), b.isPad...),
		totalWeight: make([]int64, r),
	}
	for i := 0; i < r; i++ {
		h.weights[i] = append([]int64(nil), b.weights[i]...)
		for _, w := range h.weights[i] {
			h.totalWeight[i] += w
		}
	}
	if b.anyVertName {
		h.vertNames = append([]string(nil), b.vertNames...)
	}

	// Net -> pin CSR.
	totalPins := 0
	for _, n := range kept {
		totalPins += len(n.pins)
	}
	h.netOffsets = make([]int32, len(kept)+1)
	h.netPins = make([]int32, 0, totalPins)
	anyNetName := false
	names := make([]string, len(kept))
	for e, n := range kept {
		h.netOffsets[e] = int32(len(h.netPins))
		h.netPins = append(h.netPins, n.pins...)
		h.netWeights[e] = n.weight
		names[e] = n.name
		anyNetName = anyNetName || n.name != ""
	}
	h.netOffsets[len(kept)] = int32(len(h.netPins))
	if anyNetName {
		h.netNames = names
	}

	buildVertexCSR(h)
	return h, nil
}

// MustBuild is Build but panics on error; intended for tests and generators
// whose inputs are correct by construction.
func (b *Builder) MustBuild() *Hypergraph {
	h, err := b.Build()
	if err != nil {
		panic(err)
	}
	return h
}

// buildVertexCSR fills vertOffsets/vertNets from the net->pin CSR.
func buildVertexCSR(h *Hypergraph) {
	deg := make([]int32, h.numVerts+1)
	for _, v := range h.netPins {
		deg[v+1]++
	}
	h.vertOffsets = make([]int32, h.numVerts+1)
	for v := 0; v < h.numVerts; v++ {
		h.vertOffsets[v+1] = h.vertOffsets[v] + deg[v+1]
	}
	h.vertNets = make([]int32, len(h.netPins))
	cursor := make([]int32, h.numVerts)
	copy(cursor, h.vertOffsets[:h.numVerts])
	for e := 0; e < h.numNets; e++ {
		for _, v := range h.Pins(e) {
			h.vertNets[cursor[v]] = int32(e)
			cursor[v]++
		}
	}
}

// Validate checks internal consistency of the hypergraph (CSR symmetry,
// sorted offsets, weight totals). It is used by tests and by parsers after
// deserialization; a correctly built hypergraph always validates.
func (h *Hypergraph) Validate() error {
	if len(h.netOffsets) != h.numNets+1 || len(h.vertOffsets) != h.numVerts+1 {
		return errors.New("hypergraph: offset array length mismatch")
	}
	if !offsetsNonDecreasing(h.netOffsets) {
		return errors.New("hypergraph: net offsets not nondecreasing")
	}
	if !offsetsNonDecreasing(h.vertOffsets) {
		return errors.New("hypergraph: vertex offsets not nondecreasing")
	}
	if len(h.netPins) != len(h.vertNets) {
		return errors.New("hypergraph: pin count mismatch between CSR directions")
	}
	// Every (net, vertex) incidence must appear exactly once in each CSR.
	type inc struct{ e, v int32 }
	fromNets := make(map[inc]int, len(h.netPins))
	for e := 0; e < h.numNets; e++ {
		for _, v := range h.Pins(e) {
			if v < 0 || int(v) >= h.numVerts {
				return fmt.Errorf("hypergraph: net %d references vertex %d out of range", e, v)
			}
			fromNets[inc{int32(e), v}]++
		}
	}
	for v := 0; v < h.numVerts; v++ {
		for _, e := range h.NetsOf(v) {
			if e < 0 || int(e) >= h.numNets {
				return fmt.Errorf("hypergraph: vertex %d references net %d out of range", v, e)
			}
			fromNets[inc{e, int32(v)}]--
		}
	}
	for k, c := range fromNets {
		if c != 0 {
			return fmt.Errorf("hypergraph: incidence (net %d, vertex %d) asymmetric between CSR directions", k.e, k.v)
		}
	}
	for r := range h.weights {
		var sum int64
		for _, w := range h.weights[r] {
			sum += w
		}
		if sum != h.totalWeight[r] {
			return fmt.Errorf("hypergraph: cached total weight %d != recomputed %d in resource %d", h.totalWeight[r], sum, r)
		}
	}
	return nil
}

func offsetsNonDecreasing(o []int32) bool {
	for i := 1; i < len(o); i++ {
		if o[i] < o[i-1] {
			return false
		}
	}
	return true
}
