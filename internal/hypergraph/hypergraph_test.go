package hypergraph_test

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
)

// buildTriangle returns a tiny 3-vertex, 3-net hypergraph used across tests:
// nets {0,1}, {1,2}, {0,1,2} with vertex weights 1, 2, 3.
func buildTriangle(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(1)
	v0 := b.AddVertex(1)
	v1 := b.AddVertex(2)
	v2 := b.AddVertex(3)
	b.AddNet(v0, v1)
	b.AddNet(v1, v2)
	b.AddNet(v0, v1, v2)
	h, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return h
}

func TestBuilderBasic(t *testing.T) {
	h := buildTriangle(t)
	if h.NumVertices() != 3 || h.NumNets() != 3 || h.NumPins() != 7 {
		t.Fatalf("got v=%d e=%d pins=%d, want 3/3/7", h.NumVertices(), h.NumNets(), h.NumPins())
	}
	if h.TotalWeight() != 6 {
		t.Errorf("TotalWeight = %d, want 6", h.TotalWeight())
	}
	if h.Weight(2) != 3 {
		t.Errorf("Weight(2) = %d, want 3", h.Weight(2))
	}
	if h.Degree(1) != 3 {
		t.Errorf("Degree(1) = %d, want 3", h.Degree(1))
	}
	if h.NetSize(2) != 3 {
		t.Errorf("NetSize(2) = %d, want 3", h.NetSize(2))
	}
	if err := h.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderEmpty(t *testing.T) {
	h, err := hypergraph.NewBuilder(1).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if h.NumVertices() != 0 || h.NumNets() != 0 {
		t.Fatalf("empty build got v=%d e=%d", h.NumVertices(), h.NumNets())
	}
	if err := h.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderZeroValue(t *testing.T) {
	var b hypergraph.Builder
	v0 := b.AddVertex(5)
	v1 := b.AddVertex(7)
	b.AddNet(v0, v1)
	h, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if h.NumResources() != 1 || h.TotalWeight() != 12 {
		t.Fatalf("zero-value builder: resources=%d total=%d", h.NumResources(), h.TotalWeight())
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("unknown vertex", func(t *testing.T) {
		b := hypergraph.NewBuilder(1)
		b.AddVertex(1)
		b.AddNet(0, 5)
		if _, err := b.Build(); err == nil {
			t.Fatal("want error for pin on unknown vertex")
		}
	})
	t.Run("duplicate pin", func(t *testing.T) {
		b := hypergraph.NewBuilder(1)
		v := b.AddVertex(1)
		w := b.AddVertex(1)
		b.AddNet(v, w, v)
		if _, err := b.Build(); err == nil {
			t.Fatal("want error for duplicate pin")
		}
	})
	t.Run("singleton net", func(t *testing.T) {
		b := hypergraph.NewBuilder(1)
		v := b.AddVertex(1)
		b.AddVertex(1)
		b.AddNet(v)
		if _, err := b.Build(); err == nil {
			t.Fatal("want error for singleton net")
		}
	})
	t.Run("negative weight", func(t *testing.T) {
		b := hypergraph.NewBuilder(1)
		b.AddVertex(-1)
		if _, err := b.Build(); err == nil {
			t.Fatal("want error for negative vertex weight")
		}
	})
	t.Run("negative net weight", func(t *testing.T) {
		b := hypergraph.NewBuilder(1)
		v := b.AddVertex(1)
		w := b.AddVertex(1)
		b.AddWeightedNet(-2, v, w)
		if _, err := b.Build(); err == nil {
			t.Fatal("want error for negative net weight")
		}
	})
}

func TestBuilderDedupAndDrop(t *testing.T) {
	b := hypergraph.NewBuilder(1)
	b.DedupPins = true
	b.DropSingletons = true
	v := b.AddVertex(1)
	w := b.AddVertex(1)
	b.AddNet(v, w, v) // dedups to {v,w}
	b.AddNet(v, v)    // dedups to {v}, dropped
	h, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if h.NumNets() != 1 {
		t.Fatalf("NumNets = %d, want 1", h.NumNets())
	}
	if h.NetSize(0) != 2 {
		t.Fatalf("NetSize(0) = %d, want 2", h.NetSize(0))
	}
}

func TestMultiResource(t *testing.T) {
	b := hypergraph.NewBuilder(3)
	v := b.AddVertex(10, 2, 5)
	w := b.AddVertex(20) // missing resources default to 0
	b.AddNet(v, w)
	h, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if h.NumResources() != 3 {
		t.Fatalf("NumResources = %d, want 3", h.NumResources())
	}
	if h.WeightIn(v, 2) != 5 || h.WeightIn(w, 1) != 0 {
		t.Errorf("WeightIn wrong: %d %d", h.WeightIn(v, 2), h.WeightIn(w, 1))
	}
	if h.TotalWeightIn(0) != 30 || h.TotalWeightIn(1) != 2 || h.TotalWeightIn(2) != 5 {
		t.Errorf("totals: %d %d %d", h.TotalWeightIn(0), h.TotalWeightIn(1), h.TotalWeightIn(2))
	}
}

func TestPadsAndNames(t *testing.T) {
	b := hypergraph.NewBuilder(1)
	c := b.AddCell("a12", 4)
	p := b.AddPad("pad3")
	b.AddNet(c, p)
	h := b.MustBuild()
	if !h.IsPad(p) || h.IsPad(c) {
		t.Errorf("pad flags wrong")
	}
	if h.NumPads() != 1 {
		t.Errorf("NumPads = %d, want 1", h.NumPads())
	}
	if h.VertexName(c) != "a12" || h.VertexName(p) != "pad3" {
		t.Errorf("names wrong: %q %q", h.VertexName(c), h.VertexName(p))
	}
	if h.Weight(p) != 0 {
		t.Errorf("pad weight = %d, want 0", h.Weight(p))
	}
}

func TestCSRSymmetry(t *testing.T) {
	h := buildTriangle(t)
	// Every net in NetsOf(v) must contain v in its pins and vice versa.
	for v := 0; v < h.NumVertices(); v++ {
		for _, e := range h.NetsOf(v) {
			found := false
			for _, u := range h.Pins(int(e)) {
				if int(u) == v {
					found = true
				}
			}
			if !found {
				t.Errorf("net %d in NetsOf(%d) but %d not in Pins(%d)", e, v, v, e)
			}
		}
	}
}

// randomHypergraph builds a random, always-valid hypergraph from a seed.
func randomHypergraph(seed uint64, maxV, maxE int) *hypergraph.Hypergraph {
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b9))
	nv := 2 + rng.IntN(maxV-1)
	b := hypergraph.NewBuilder(1)
	for i := 0; i < nv; i++ {
		b.AddVertex(int64(1 + rng.IntN(20)))
	}
	ne := rng.IntN(maxE + 1)
	for e := 0; e < ne; e++ {
		sz := 2 + rng.IntN(min(nv, 6)-1)
		perm := rng.Perm(nv)[:sz]
		b.AddWeightedNet(int64(1+rng.IntN(3)), perm...)
	}
	return b.MustBuild()
}

func TestRandomHypergraphsValidate(t *testing.T) {
	f := func(seed uint64) bool {
		h := randomHypergraph(seed, 40, 60)
		return h.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestContractBasic(t *testing.T) {
	h := buildTriangle(t)
	// Merge v0 and v1 into cluster 0, keep v2 as cluster 1.
	coarse, netMap, err := hypergraph.Contract(h, []int32{0, 0, 1}, 2, hypergraph.ContractOptions{})
	if err != nil {
		t.Fatalf("Contract: %v", err)
	}
	if coarse.NumVertices() != 2 {
		t.Fatalf("coarse vertices = %d, want 2", coarse.NumVertices())
	}
	// Net {0,1} collapses to a single cluster and is dropped; nets {1,2} and
	// {0,1,2} both become {c0,c1}.
	if netMap[0] != -1 {
		t.Errorf("net 0 should be dropped, mapped to %d", netMap[0])
	}
	if coarse.NumNets() != 2 {
		t.Errorf("coarse nets = %d, want 2", coarse.NumNets())
	}
	if coarse.Weight(0) != 3 || coarse.Weight(1) != 3 {
		t.Errorf("cluster weights = %d,%d want 3,3", coarse.Weight(0), coarse.Weight(1))
	}
	if coarse.TotalWeight() != h.TotalWeight() {
		t.Errorf("total weight changed: %d != %d", coarse.TotalWeight(), h.TotalWeight())
	}
	if err := coarse.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestContractMergeParallelNets(t *testing.T) {
	h := buildTriangle(t)
	coarse, netMap, err := hypergraph.Contract(h, []int32{0, 0, 1}, 2,
		hypergraph.ContractOptions{MergeParallelNets: true})
	if err != nil {
		t.Fatalf("Contract: %v", err)
	}
	if coarse.NumNets() != 1 {
		t.Fatalf("coarse nets = %d, want 1 (parallel nets merged)", coarse.NumNets())
	}
	if coarse.NetWeight(0) != 2 {
		t.Errorf("merged net weight = %d, want 2", coarse.NetWeight(0))
	}
	if netMap[1] != netMap[2] || netMap[1] != 0 {
		t.Errorf("net map = %v, want nets 1,2 -> 0", netMap)
	}
}

func TestContractErrors(t *testing.T) {
	h := buildTriangle(t)
	if _, _, err := hypergraph.Contract(h, []int32{0, 0}, 1, hypergraph.ContractOptions{}); err == nil {
		t.Error("want error for short clusterOf")
	}
	if _, _, err := hypergraph.Contract(h, []int32{0, 0, 5}, 2, hypergraph.ContractOptions{}); err == nil {
		t.Error("want error for out-of-range cluster")
	}
	if _, _, err := hypergraph.Contract(h, []int32{0, 0, 0}, 2, hypergraph.ContractOptions{}); err == nil {
		t.Error("want error for empty cluster")
	}
}

func TestContractPreservesWeightProperty(t *testing.T) {
	f := func(seed uint64) bool {
		h := randomHypergraph(seed, 30, 40)
		rng := rand.New(rand.NewPCG(seed, 1))
		nc := 1 + rng.IntN(h.NumVertices())
		clusterOf := make([]int32, h.NumVertices())
		// Ensure every cluster id is used at least once.
		for i := 0; i < nc; i++ {
			clusterOf[i] = int32(i)
		}
		for i := nc; i < h.NumVertices(); i++ {
			clusterOf[i] = int32(rng.IntN(nc))
		}
		coarse, _, err := hypergraph.Contract(h, clusterOf, nc, hypergraph.ContractOptions{})
		if err != nil {
			return false
		}
		if coarse.TotalWeight() != h.TotalWeight() {
			return false
		}
		// Pin count never grows under contraction.
		if coarse.NumPins() > h.NumPins() {
			return false
		}
		return coarse.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	h := buildTriangle(t)
	res, err := hypergraph.InducedSubgraph(h, []bool{true, true, false})
	if err != nil {
		t.Fatalf("InducedSubgraph: %v", err)
	}
	if res.Sub.NumVertices() != 2 {
		t.Fatalf("sub vertices = %d, want 2", res.Sub.NumVertices())
	}
	// Net {0,1} survives; {1,2} restricted to {1} drops; {0,1,2} restricted
	// to {0,1} survives as a clipped net.
	if res.Sub.NumNets() != 2 {
		t.Fatalf("sub nets = %d, want 2", res.Sub.NumNets())
	}
	if len(res.ClippedNets) != 2 {
		// Nets 1 and 2 both touch excluded vertex 2 while retaining a kept pin.
		t.Errorf("clipped nets = %v, want 2 entries", res.ClippedNets)
	}
	if res.SubOf[2] != -1 {
		t.Errorf("SubOf[2] = %d, want -1", res.SubOf[2])
	}
	if int(res.VertexOf[res.SubOf[1]]) != 1 {
		t.Errorf("vertex mapping not inverse")
	}
	if err := res.Sub.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestInducedSubgraphProperty(t *testing.T) {
	f := func(seed uint64) bool {
		h := randomHypergraph(seed, 30, 40)
		rng := rand.New(rand.NewPCG(seed, 2))
		keep := make([]bool, h.NumVertices())
		for i := range keep {
			keep[i] = rng.IntN(2) == 0
		}
		res, err := hypergraph.InducedSubgraph(h, keep)
		if err != nil {
			return false
		}
		// Mappings are mutually inverse, weights carry over.
		for sv, pv := range res.VertexOf {
			if int(res.SubOf[pv]) != sv {
				return false
			}
			if res.Sub.Weight(sv) != h.Weight(int(pv)) {
				return false
			}
		}
		return res.Sub.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	h := buildTriangle(t)
	s := hypergraph.ComputeStats(h)
	if s.Vertices != 3 || s.Nets != 3 || s.Pins != 7 {
		t.Fatalf("stats basic: %+v", s)
	}
	if s.MaxNetSize != 3 {
		t.Errorf("MaxNetSize = %d, want 3", s.MaxNetSize)
	}
	if s.NetSizeCounts[2] != 2 || s.NetSizeCounts[3] != 1 {
		t.Errorf("NetSizeCounts = %v", s.NetSizeCounts)
	}
	if s.MaxWeight != 3 || s.TotalWeight != 6 {
		t.Errorf("weights: %+v", s)
	}
	if got := s.MaxWeightPct; got < 49.9 || got > 50.1 {
		t.Errorf("MaxWeightPct = %v, want 50", got)
	}
	hist := s.NetSizeHistogram()
	if len(hist) != 2 || hist[0] != [2]int{2, 2} || hist[1] != [2]int{3, 1} {
		t.Errorf("histogram = %v", hist)
	}
}

func TestMaxDegreeAndString(t *testing.T) {
	h := buildTriangle(t)
	if h.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d, want 3", h.MaxDegree())
	}
	if h.String() == "" {
		t.Error("String empty")
	}
	if h.MaxVertexWeight() != 3 {
		t.Errorf("MaxVertexWeight = %d", h.MaxVertexWeight())
	}
}

func TestNames(t *testing.T) {
	b := hypergraph.NewBuilder(1)
	v := b.AddCell("alu7", 1)
	w := b.AddVertex(1)
	e := b.AddNet(v, w)
	b.NameNet(e, "clk")
	h := b.MustBuild()
	if h.VertexName(v) != "alu7" {
		t.Errorf("VertexName = %q", h.VertexName(v))
	}
	if h.VertexName(w) != "v1" {
		t.Errorf("default VertexName = %q", h.VertexName(w))
	}
	if h.NetName(e) != "clk" {
		t.Errorf("NetName = %q", h.NetName(e))
	}
	// Unnamed hypergraphs generate names.
	b2 := hypergraph.NewBuilder(1)
	a := b2.AddVertex(1)
	c := b2.AddVertex(1)
	n := b2.AddNet(a, c)
	h2 := b2.MustBuild()
	if h2.NetName(n) != "n0" || h2.VertexName(a) != "v0" {
		t.Errorf("generated names: %q %q", h2.NetName(n), h2.VertexName(a))
	}
}

func TestContractKeepsPads(t *testing.T) {
	b := hypergraph.NewBuilder(1)
	c := b.AddCell("c", 3)
	p1 := b.AddPad("p1")
	p2 := b.AddPad("p2")
	b.AddNet(c, p1)
	b.AddNet(c, p2)
	h := b.MustBuild()
	// Merge the two pads; keep the cell separate.
	coarse, _, err := hypergraph.Contract(h, []int32{0, 1, 1}, 2, hypergraph.ContractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if coarse.IsPad(0) {
		t.Error("cell cluster marked pad")
	}
	if !coarse.IsPad(1) {
		t.Error("all-pad cluster lost pad flag")
	}
	// Mixed cluster is not a pad.
	coarse2, _, err := hypergraph.Contract(h, []int32{0, 0, 1}, 2, hypergraph.ContractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if coarse2.IsPad(0) {
		t.Error("mixed cluster marked pad")
	}
}
