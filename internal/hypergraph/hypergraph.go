// Package hypergraph provides the core hypergraph data structure used
// throughout the partitioning testbed.
//
// A hypergraph consists of vertices (circuit cells and pads) and nets
// (hyperedges). Each net connects two or more vertices; each vertex may carry
// one or more weights (resources), the first of which is conventionally cell
// area. The representation is a compressed sparse row (CSR) layout in both
// directions (net -> pins and vertex -> nets), which makes FM-style gain
// updates and coarsening cache-friendly and allocation-free.
//
// Hypergraphs are immutable once built; use Builder to construct one, and
// Contract or InducedSubgraph to derive new hypergraphs from existing ones.
package hypergraph

import "fmt"

// Hypergraph is an immutable vertex/net incidence structure with weights.
// The zero value is an empty hypergraph; use a Builder to create non-empty
// instances.
type Hypergraph struct {
	numVerts int
	numNets  int

	// CSR net -> pins.
	netOffsets []int32 // len numNets+1
	netPins    []int32 // len = total pins

	// CSR vertex -> incident nets.
	vertOffsets []int32 // len numVerts+1
	vertNets    []int32 // len = total pins

	// weights[r][v] is the weight of vertex v in resource r.
	// weights[0] is the primary resource (cell area). Always >= 1 resource.
	weights [][]int64

	netWeights []int64 // len numNets

	// isPad marks I/O pad vertices (typically zero-area terminals).
	isPad []bool

	totalWeight []int64 // per resource

	vertNames []string // optional, nil when unnamed
	netNames  []string // optional, nil when unnamed
}

// NumVertices returns the number of vertices.
func (h *Hypergraph) NumVertices() int { return h.numVerts }

// NumNets returns the number of nets.
func (h *Hypergraph) NumNets() int { return h.numNets }

// NumPins returns the total number of pins (vertex/net incidences).
func (h *Hypergraph) NumPins() int { return len(h.netPins) }

// NumResources returns the number of weight resources per vertex (>= 1).
func (h *Hypergraph) NumResources() int { return len(h.weights) }

// Pins returns the vertices of net e. The returned slice aliases internal
// storage and must not be modified.
func (h *Hypergraph) Pins(e int) []int32 {
	return h.netPins[h.netOffsets[e]:h.netOffsets[e+1]]
}

// NetsOf returns the nets incident to vertex v. The returned slice aliases
// internal storage and must not be modified.
func (h *Hypergraph) NetsOf(v int) []int32 {
	return h.vertNets[h.vertOffsets[v]:h.vertOffsets[v+1]]
}

// Degree returns the number of nets incident to vertex v.
func (h *Hypergraph) Degree(v int) int {
	return int(h.vertOffsets[v+1] - h.vertOffsets[v])
}

// NetSize returns the number of pins on net e.
func (h *Hypergraph) NetSize(e int) int {
	return int(h.netOffsets[e+1] - h.netOffsets[e])
}

// Weight returns the primary-resource weight (area) of vertex v.
func (h *Hypergraph) Weight(v int) int64 { return h.weights[0][v] }

// WeightIn returns the weight of vertex v in resource r.
func (h *Hypergraph) WeightIn(v, r int) int64 { return h.weights[r][v] }

// NetWeight returns the weight of net e.
func (h *Hypergraph) NetWeight(e int) int64 { return h.netWeights[e] }

// TotalWeight returns the total primary-resource weight over all vertices.
func (h *Hypergraph) TotalWeight() int64 { return h.totalWeight[0] }

// TotalWeightIn returns the total weight in resource r over all vertices.
func (h *Hypergraph) TotalWeightIn(r int) int64 { return h.totalWeight[r] }

// IsPad reports whether vertex v is an I/O pad.
func (h *Hypergraph) IsPad(v int) bool { return h.isPad != nil && h.isPad[v] }

// NumPads returns the number of pad vertices.
func (h *Hypergraph) NumPads() int {
	n := 0
	for _, p := range h.isPad {
		if p {
			n++
		}
	}
	return n
}

// VertexName returns the name of vertex v, or a generated "v<i>" name when
// the hypergraph is unnamed.
func (h *Hypergraph) VertexName(v int) string {
	if h.vertNames != nil && h.vertNames[v] != "" {
		return h.vertNames[v]
	}
	return fmt.Sprintf("v%d", v)
}

// NetName returns the name of net e, or a generated "n<i>" name when the
// hypergraph is unnamed.
func (h *Hypergraph) NetName(e int) string {
	if h.netNames != nil && h.netNames[e] != "" {
		return h.netNames[e]
	}
	return fmt.Sprintf("n%d", e)
}

// MaxVertexWeight returns the largest primary-resource vertex weight,
// or 0 for an empty hypergraph.
func (h *Hypergraph) MaxVertexWeight() int64 {
	var m int64
	for _, w := range h.weights[0] {
		if w > m {
			m = w
		}
	}
	return m
}

// MaxDegree returns the largest vertex degree, or 0 for an empty hypergraph.
func (h *Hypergraph) MaxDegree() int {
	m := 0
	for v := 0; v < h.numVerts; v++ {
		if d := h.Degree(v); d > m {
			m = d
		}
	}
	return m
}

// String returns a one-line summary, e.g. "hypergraph{v=833 e=902 pins=2901}".
func (h *Hypergraph) String() string {
	return fmt.Sprintf("hypergraph{v=%d e=%d pins=%d}", h.numVerts, h.numNets, len(h.netPins))
}
