package hypergraph

import (
	"fmt"
	"sort"
)

// ContractReference is the frozen pre-scratch implementation of Contract,
// retained verbatim as a reference: differential tests assert Contract's
// rewritten allocation-free path produces bit-identical output, and the
// allocation benchmarks (BenchmarkContract, BENCH_shared.json) measure the
// alloc reduction against it. It allocates a string-keyed map entry per
// distinct coarse net and grows the coarse CSR by append, which dominated
// coarsening's allocation profile. Production code should call Contract.
func ContractReference(h *Hypergraph, clusterOf []int32, numClusters int, opts ContractOptions) (*Hypergraph, []int32, error) {
	if len(clusterOf) != h.numVerts {
		return nil, nil, fmt.Errorf("hypergraph: clusterOf has %d entries for %d vertices", len(clusterOf), h.numVerts)
	}
	r := h.NumResources()
	coarse := &Hypergraph{
		numVerts:    numClusters,
		weights:     make([][]int64, r),
		totalWeight: make([]int64, r),
		isPad:       make([]bool, numClusters),
	}
	for i := 0; i < r; i++ {
		coarse.weights[i] = make([]int64, numClusters)
	}
	seenMember := make([]bool, numClusters)
	allPads := make([]bool, numClusters)
	for i := range allPads {
		allPads[i] = true
	}
	for v := 0; v < h.numVerts; v++ {
		c := clusterOf[v]
		if c < 0 || int(c) >= numClusters {
			return nil, nil, fmt.Errorf("hypergraph: vertex %d mapped to cluster %d outside [0,%d)", v, c, numClusters)
		}
		seenMember[c] = true
		if !h.IsPad(v) {
			allPads[c] = false
		}
		for i := 0; i < r; i++ {
			coarse.weights[i][c] += h.weights[i][v]
		}
	}
	for c := 0; c < numClusters; c++ {
		if !seenMember[c] {
			return nil, nil, fmt.Errorf("hypergraph: cluster %d has no members", c)
		}
		coarse.isPad[c] = allPads[c]
	}
	for i := 0; i < r; i++ {
		coarse.totalWeight[i] = h.totalWeight[i]
	}

	// Project nets.
	netMap := make([]int32, h.numNets)
	mark := make([]int32, numClusters)
	for i := range mark {
		mark[i] = -1
	}
	var (
		coarsePins    []int32
		coarseOffsets = []int32{0}
		coarseWeights []int64
		scratch       []int32
	)
	// key of a sorted pin list, for parallel-net merging.
	byKey := map[string]int32{}
	keyBuf := make([]byte, 0, 64)
	for e := 0; e < h.numNets; e++ {
		scratch = scratch[:0]
		for _, v := range h.Pins(e) {
			c := clusterOf[v]
			if mark[c] != int32(e) {
				mark[c] = int32(e)
				scratch = append(scratch, c)
			}
		}
		if len(scratch) < 2 {
			netMap[e] = -1
			continue
		}
		if opts.MergeParallelNets {
			sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
			keyBuf = keyBuf[:0]
			for _, c := range scratch {
				keyBuf = append(keyBuf, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
			}
			if id, ok := byKey[string(keyBuf)]; ok {
				coarseWeights[id] += h.netWeights[e]
				netMap[e] = id
				continue
			}
			byKey[string(keyBuf)] = int32(len(coarseWeights))
		}
		netMap[e] = int32(len(coarseWeights))
		coarsePins = append(coarsePins, scratch...)
		coarseOffsets = append(coarseOffsets, int32(len(coarsePins)))
		coarseWeights = append(coarseWeights, h.netWeights[e])
	}
	coarse.numNets = len(coarseWeights)
	coarse.netOffsets = coarseOffsets
	coarse.netPins = coarsePins
	coarse.netWeights = coarseWeights
	buildVertexCSR(coarse)
	return coarse, netMap, nil
}
