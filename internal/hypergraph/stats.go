package hypergraph

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a hypergraph's structural parameters, in the style of the
// benchmark-parameter tables in the ISPD-98 suite and in Table IV of the
// paper.
type Stats struct {
	Vertices int
	Nets     int
	Pins     int
	Pads     int

	TotalWeight   int64
	MaxWeight     int64
	MaxWeightPct  float64 // largest cell as % of total cell area ("Max%")
	AvgDegree     float64 // pins per vertex
	AvgNetSize    float64 // pins per net
	MaxNetSize    int
	NetSizeCounts map[int]int // net size -> count, for degree-distribution checks
}

// ComputeStats returns structural statistics for h.
func ComputeStats(h *Hypergraph) Stats {
	s := Stats{
		Vertices:      h.NumVertices(),
		Nets:          h.NumNets(),
		Pins:          h.NumPins(),
		Pads:          h.NumPads(),
		TotalWeight:   h.TotalWeight(),
		MaxWeight:     h.MaxVertexWeight(),
		NetSizeCounts: map[int]int{},
	}
	if s.TotalWeight > 0 {
		s.MaxWeightPct = 100 * float64(s.MaxWeight) / float64(s.TotalWeight)
	}
	if s.Vertices > 0 {
		s.AvgDegree = float64(s.Pins) / float64(s.Vertices)
	}
	if s.Nets > 0 {
		s.AvgNetSize = float64(s.Pins) / float64(s.Nets)
	}
	for e := 0; e < h.NumNets(); e++ {
		sz := h.NetSize(e)
		s.NetSizeCounts[sz]++
		if sz > s.MaxNetSize {
			s.MaxNetSize = sz
		}
	}
	return s
}

// String renders the stats as a short human-readable block.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vertices=%d nets=%d pins=%d pads=%d\n", s.Vertices, s.Nets, s.Pins, s.Pads)
	fmt.Fprintf(&b, "total weight=%d max weight=%d (%.2f%%)\n", s.TotalWeight, s.MaxWeight, s.MaxWeightPct)
	fmt.Fprintf(&b, "avg degree=%.2f avg net size=%.2f max net size=%d", s.AvgDegree, s.AvgNetSize, s.MaxNetSize)
	return b.String()
}

// NetSizeHistogram returns (size, count) pairs sorted by size.
func (s Stats) NetSizeHistogram() [][2]int {
	sizes := make([]int, 0, len(s.NetSizeCounts))
	for sz := range s.NetSizeCounts {
		sizes = append(sizes, sz)
	}
	sort.Ints(sizes)
	out := make([][2]int, len(sizes))
	for i, sz := range sizes {
		out[i] = [2]int{sz, s.NetSizeCounts[sz]}
	}
	return out
}
