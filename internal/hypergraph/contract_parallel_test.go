package hypergraph

import (
	"math/rand/v2"
	"slices"
	"testing"
)

// identicalHypergraph asserts bit-identity down to the internal CSR arrays —
// stronger than the public-API comparison of the serial differential test,
// because the parallel path builds netPins and the vertex CSR out of order
// and must still land every word in exactly the serial position.
func identicalHypergraph(t *testing.T, want, got *Hypergraph) {
	t.Helper()
	if want.numVerts != got.numVerts || want.numNets != got.numNets {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", want.numVerts, want.numNets, got.numVerts, got.numNets)
	}
	if !slices.Equal(want.netOffsets, got.netOffsets) {
		t.Fatal("netOffsets differ")
	}
	if !slices.Equal(want.netPins, got.netPins) {
		t.Fatal("netPins differ")
	}
	if !slices.Equal(want.netWeights, got.netWeights) {
		t.Fatal("netWeights differ")
	}
	if !slices.Equal(want.vertOffsets, got.vertOffsets) {
		t.Fatal("vertOffsets differ")
	}
	if !slices.Equal(want.vertNets, got.vertNets) {
		t.Fatal("vertNets differ")
	}
	if !slices.Equal(want.isPad, got.isPad) {
		t.Fatal("isPad differs")
	}
	if !slices.Equal(want.totalWeight, got.totalWeight) {
		t.Fatal("totalWeight differs")
	}
	if len(want.weights) != len(got.weights) {
		t.Fatalf("resource count mismatch: %d vs %d", len(want.weights), len(got.weights))
	}
	for r := range want.weights {
		if !slices.Equal(want.weights[r], got.weights[r]) {
			t.Fatalf("weights differ in resource %d", r)
		}
	}
}

// randomContractTrial builds one random hypergraph and clustering with the
// same shape distribution as TestContractMatchesReference.
func randomContractTrial(rng *rand.Rand) (*Hypergraph, []int32, int) {
	nv := 3 + rng.IntN(120)
	ne := 1 + rng.IntN(240)
	nr := 1 + rng.IntN(2)
	bl := NewBuilder(nr)
	bl.DedupPins = true
	bl.DropSingletons = true
	for v := 0; v < nv; v++ {
		if rng.IntN(8) == 0 {
			bl.AddPad("")
		} else {
			ws := make([]int64, nr)
			for r := range ws {
				ws[r] = int64(1 + rng.IntN(9))
			}
			bl.AddVertex(ws...)
		}
	}
	for e := 0; e < ne; e++ {
		sz := 2 + rng.IntN(5)
		pins := make([]int, sz)
		for i := range pins {
			pins[i] = rng.IntN(nv)
		}
		bl.AddWeightedNet(int64(1+rng.IntN(4)), pins...)
	}
	h := bl.MustBuild()
	nc := 1 + rng.IntN(nv)
	clusterOf := make([]int32, nv)
	for v := range clusterOf {
		clusterOf[v] = int32(rng.IntN(nc))
	}
	for c := 0; c < nc && c < nv; c++ {
		clusterOf[c] = int32(c)
	}
	return h, clusterOf, nc
}

// TestContractParallelMatchesReference drives ContractParallel at several
// worker counts against the frozen ContractReference over 40 random
// hypergraphs and clusterings (merge on and off, pads, multi-resource
// weights, repeated calls through the pooled shards) and requires
// bit-identical output, net maps included. The fallback threshold is lowered
// so every trial takes the parallel path.
func TestContractParallelMatchesReference(t *testing.T) {
	defer func(n int) { minParallelNets = n }(minParallelNets)
	minParallelNets = 1

	rng := rand.New(rand.NewPCG(43, 7))
	for trial := 0; trial < 40; trial++ {
		h, clusterOf, nc := randomContractTrial(rng)
		opts := ContractOptions{MergeParallelNets: trial%2 == 0}
		want, wantMap, err := ContractReference(h, clusterOf, nc, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			got, gotMap, err := ContractParallel(h, clusterOf, nc, opts, workers)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			identicalHypergraph(t, want, got)
			if !slices.Equal(wantMap, gotMap) {
				t.Fatalf("trial %d workers %d: netMap differs", trial, workers)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("trial %d workers %d: coarse hypergraph invalid: %v", trial, workers, err)
			}
		}
	}
}

// TestContractParallelLargeInstance exercises the parallel path above the
// real fallback threshold, where chunking is non-trivial, and checks worker
// counts that do not divide the net count evenly.
func TestContractParallelLargeInstance(t *testing.T) {
	rng := rand.New(rand.NewPCG(44, 9))
	const nv, ne = 4000, 9000
	bl := NewBuilder(1)
	bl.DedupPins = true
	bl.DropSingletons = true
	for v := 0; v < nv; v++ {
		if v%97 == 0 {
			bl.AddPad("")
		} else {
			bl.AddVertex(int64(1 + rng.IntN(5)))
		}
	}
	for e := 0; e < ne; e++ {
		sz := 2 + rng.IntN(6)
		pins := make([]int, sz)
		for i := range pins {
			pins[i] = rng.IntN(nv)
		}
		bl.AddWeightedNet(int64(1+rng.IntN(3)), pins...)
	}
	h := bl.MustBuild()
	nc := nv / 2
	clusterOf := make([]int32, nv)
	for v := range clusterOf {
		clusterOf[v] = int32(rng.IntN(nc))
	}
	for c := 0; c < nc; c++ {
		clusterOf[c] = int32(c)
	}
	for _, opts := range []ContractOptions{{MergeParallelNets: true}, {}} {
		want, wantMap, err := ContractReference(h, clusterOf, nc, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 5, 7, 8, 16} {
			got, gotMap, err := ContractParallel(h, clusterOf, nc, opts, workers)
			if err != nil {
				t.Fatalf("workers %d: %v", workers, err)
			}
			identicalHypergraph(t, want, got)
			if !slices.Equal(wantMap, gotMap) {
				t.Fatalf("workers %d: netMap differs", workers)
			}
		}
	}
}

// TestContractParallelErrors checks the parallel path rejects malformed
// inputs with the same messages as the serial scan, including reporting the
// smallest out-of-range vertex even when it lives in a later chunk.
func TestContractParallelErrors(t *testing.T) {
	defer func(n int) { minParallelNets = n }(minParallelNets)
	minParallelNets = 1

	bl := NewBuilder(1)
	for i := 0; i < 12; i++ {
		bl.AddVertex(1)
	}
	for i := 0; i < 6; i++ {
		bl.AddNet(i, i+1, (i+5)%12)
	}
	h := bl.MustBuild()
	cases := []struct {
		clusterOf []int32
		nc        int
	}{
		{make([]int32, 5), 2},                             // wrong length
		{[]int32{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 99, 3}, 4}, // out of range, later chunk
		{[]int32{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, 2},  // empty cluster
		{[]int32{0, 1, 2, 3, 0, 1, 2, 3, -1, 1, 2, 3}, 4}, // negative
		{[]int32{3, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3}, 4},  // valid control
	}
	for i, c := range cases {
		refH, _, refErr := ContractReference(h, c.clusterOf, c.nc, ContractOptions{MergeParallelNets: true})
		gotH, _, gotErr := ContractParallel(h, c.clusterOf, c.nc, ContractOptions{MergeParallelNets: true}, 4)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("case %d: error mismatch: reference %v, parallel %v", i, refErr, gotErr)
		}
		if refErr != nil {
			if refErr.Error() != gotErr.Error() {
				t.Fatalf("case %d: message mismatch: %q vs %q", i, refErr, gotErr)
			}
			continue
		}
		identicalHypergraph(t, refH, gotH)
	}
}
