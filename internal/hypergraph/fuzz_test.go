package hypergraph

import (
	"encoding/binary"
	"testing"
)

// FuzzBuilder drives Builder with an arbitrary byte-encoded sequence of
// vertices, weights and nets. For every input, Build must either return an
// error or a hypergraph whose CSR cross-check (Validate: both incidence
// directions agree, offsets nondecreasing, cached totals correct) holds and
// whose per-net pin counts match what the builder options imply.
func FuzzBuilder(f *testing.F) {
	f.Add([]byte{2, 1, 1, 2, 0, 1}, false, false)
	f.Add([]byte{3, 0, 0, 0, 3, 0, 1, 2, 2, 0, 0}, true, true)
	f.Add([]byte{1, 5, 2, 0, 0}, true, false)
	f.Fuzz(func(t *testing.T, data []byte, dedup, dropSingles bool) {
		b := NewBuilder(1 + int(u8(data, 0))%3)
		b.DedupPins = dedup
		b.DropSingletons = dropSingles
		pos := 1

		// Vertices: count then one weight byte each (occasionally negative to
		// exercise the weight validation path).
		nv := int(u8(data, pos)) % 64
		pos++
		for v := 0; v < nv; v++ {
			w := int64(u8(data, pos)) - 4
			pos++
			b.AddVertex(w)
			if v%5 == 1 {
				b.SetPad(v, true)
			}
		}

		// Nets: size byte then raw pin bytes, until data runs out. Pins are
		// taken modulo nv+2 so some reference unknown vertices.
		for pos < len(data) {
			size := int(u8(data, pos)) % 9
			pos++
			pins := make([]int, 0, size)
			for i := 0; i < size; i++ {
				pins = append(pins, int(u8(data, pos))%(nv+2)-1)
				pos++
			}
			b.AddWeightedNet(int64(u8(data, pos))-2, pins...)
			pos++
		}

		h, err := b.Build()
		if err != nil {
			return
		}
		if verr := h.Validate(); verr != nil {
			t.Fatalf("Build succeeded but Validate failed: %v", verr)
		}
		if h.NumVertices() != nv {
			t.Fatalf("NumVertices = %d, want %d", h.NumVertices(), nv)
		}
		// Build may only succeed if every kept net has >= 2 distinct in-range
		// pins, no duplicates survive, and all weights are nonnegative.
		for e := 0; e < h.NumNets(); e++ {
			pins := h.Pins(e)
			if len(pins) < 2 {
				t.Fatalf("net %d kept with %d pins", e, len(pins))
			}
			seen := map[int32]bool{}
			for _, v := range pins {
				if v < 0 || int(v) >= nv {
					t.Fatalf("net %d pin %d out of range", e, v)
				}
				if seen[v] {
					t.Fatalf("net %d has duplicate pin %d after Build", e, v)
				}
				seen[v] = true
			}
			if h.NetWeight(e) < 0 {
				t.Fatalf("net %d kept with negative weight %d", e, h.NetWeight(e))
			}
		}
		if !dropSingles && h.NumNets() != b.NumNets() {
			t.Fatalf("nets dropped without DropSingletons: %d -> %d", b.NumNets(), h.NumNets())
		}
		for v := 0; v < nv; v++ {
			if h.Weight(v) < 0 {
				t.Fatalf("vertex %d kept with negative weight", v)
			}
		}
	})
}

// u8 reads byte i of data, treating missing bytes as a cheap hash of the
// index so short inputs still produce varied structures.
func u8(data []byte, i int) uint8 {
	if i < len(data) {
		return data[i]
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(i)*0x9e3779b97f4a7c15)
	return buf[0]
}
