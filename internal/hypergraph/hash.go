package hypergraph

// Fingerprint is a streaming FNV-1a (64-bit) hasher over machine words. It
// gives the repository one stable notion of instance identity: two
// hypergraphs (or problems composed on top of them) with equal fingerprints
// have identical structure and weights, byte for byte, across processes and
// runs of the same build — the property the hpartd hierarchy cache keys on.
//
// The zero Fingerprint is NOT a valid initial state; start from
// NewFingerprint. Fingerprint is a value type: Word returns the updated
// state, so chains compose without allocation and a partially folded state
// can be reused as a prefix.
type Fingerprint uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// NewFingerprint returns the FNV-1a initial state.
func NewFingerprint() Fingerprint { return Fingerprint(fnvOffset64) }

// Word folds one 64-bit word into the state, least-significant byte first.
func (f Fingerprint) Word(x uint64) Fingerprint {
	h := uint64(f)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return Fingerprint(h)
}

// Words folds a sequence of int64 values.
func (f Fingerprint) Words(xs []int64) Fingerprint {
	for _, x := range xs {
		f = f.Word(uint64(x))
	}
	return f
}

// words32 folds a sequence of int32 values (CSR offsets and pin lists).
func (f Fingerprint) words32(xs []int32) Fingerprint {
	for _, x := range xs {
		f = f.Word(uint64(uint32(x)))
	}
	return f
}

// Sum returns the current 64-bit digest.
func (f Fingerprint) Sum() uint64 { return uint64(f) }

// Fingerprint returns a stable structural hash of the hypergraph: dimensions,
// the net->pin CSR, every weight resource, net weights and pad flags. Vertex
// and net names are deliberately excluded — they never influence
// partitioning, so renamed copies of the same netlist hash identically. The
// hash is a pure function of the built structure (no addresses, no map
// order), so it is stable across processes; that is what makes it usable as
// a cache key for derived artifacts such as coarsening hierarchies.
func (h *Hypergraph) Fingerprint() uint64 {
	f := NewFingerprint().
		Word(uint64(h.numVerts)).
		Word(uint64(h.numNets)).
		Word(uint64(len(h.weights))).
		words32(h.netOffsets).
		words32(h.netPins)
	for _, res := range h.weights {
		f = f.Words(res)
	}
	f = f.Words(h.netWeights)
	for v := 0; v < h.numVerts; v++ {
		if h.IsPad(v) {
			f = f.Word(uint64(v))
		}
	}
	return f.Sum()
}
