package hypergraph

import (
	"fmt"
	"sort"
)

// ContractOptions controls Contract behaviour.
type ContractOptions struct {
	// MergeParallelNets combines nets with identical pin sets into a single
	// net whose weight is the sum of the originals. Multilevel coarsening
	// enables this to keep coarse hypergraphs small.
	MergeParallelNets bool
}

// Contract builds the coarse hypergraph induced by the clustering clusterOf,
// which maps each vertex of h to a cluster id in [0, numClusters). Cluster
// weights are the sums of member weights in every resource; nets are
// projected onto clusters, with pins collapsed to distinct clusters and nets
// spanning fewer than two clusters dropped. A cluster is marked as a pad only
// when all of its members are pads.
//
// The returned NetMap maps each original net to its coarse net id, or -1 when
// the net was dropped (or merged into another, when MergeParallelNets is set,
// in which case it maps to the survivor).
func Contract(h *Hypergraph, clusterOf []int32, numClusters int, opts ContractOptions) (*Hypergraph, []int32, error) {
	if len(clusterOf) != h.numVerts {
		return nil, nil, fmt.Errorf("hypergraph: clusterOf has %d entries for %d vertices", len(clusterOf), h.numVerts)
	}
	r := h.NumResources()
	coarse := &Hypergraph{
		numVerts:    numClusters,
		weights:     make([][]int64, r),
		totalWeight: make([]int64, r),
		isPad:       make([]bool, numClusters),
	}
	for i := 0; i < r; i++ {
		coarse.weights[i] = make([]int64, numClusters)
	}
	seenMember := make([]bool, numClusters)
	allPads := make([]bool, numClusters)
	for i := range allPads {
		allPads[i] = true
	}
	for v := 0; v < h.numVerts; v++ {
		c := clusterOf[v]
		if c < 0 || int(c) >= numClusters {
			return nil, nil, fmt.Errorf("hypergraph: vertex %d mapped to cluster %d outside [0,%d)", v, c, numClusters)
		}
		seenMember[c] = true
		if !h.IsPad(v) {
			allPads[c] = false
		}
		for i := 0; i < r; i++ {
			coarse.weights[i][c] += h.weights[i][v]
		}
	}
	for c := 0; c < numClusters; c++ {
		if !seenMember[c] {
			return nil, nil, fmt.Errorf("hypergraph: cluster %d has no members", c)
		}
		coarse.isPad[c] = allPads[c]
	}
	for i := 0; i < r; i++ {
		coarse.totalWeight[i] = h.totalWeight[i]
	}

	// Project nets.
	netMap := make([]int32, h.numNets)
	mark := make([]int32, numClusters)
	for i := range mark {
		mark[i] = -1
	}
	var (
		coarsePins    []int32
		coarseOffsets = []int32{0}
		coarseWeights []int64
		scratch       []int32
	)
	// key of a sorted pin list, for parallel-net merging.
	byKey := map[string]int32{}
	keyBuf := make([]byte, 0, 64)
	for e := 0; e < h.numNets; e++ {
		scratch = scratch[:0]
		for _, v := range h.Pins(e) {
			c := clusterOf[v]
			if mark[c] != int32(e) {
				mark[c] = int32(e)
				scratch = append(scratch, c)
			}
		}
		if len(scratch) < 2 {
			netMap[e] = -1
			continue
		}
		if opts.MergeParallelNets {
			sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
			keyBuf = keyBuf[:0]
			for _, c := range scratch {
				keyBuf = append(keyBuf, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
			}
			if id, ok := byKey[string(keyBuf)]; ok {
				coarseWeights[id] += h.netWeights[e]
				netMap[e] = id
				continue
			}
			byKey[string(keyBuf)] = int32(len(coarseWeights))
		}
		netMap[e] = int32(len(coarseWeights))
		coarsePins = append(coarsePins, scratch...)
		coarseOffsets = append(coarseOffsets, int32(len(coarsePins)))
		coarseWeights = append(coarseWeights, h.netWeights[e])
	}
	coarse.numNets = len(coarseWeights)
	coarse.netOffsets = coarseOffsets
	coarse.netPins = coarsePins
	coarse.netWeights = coarseWeights
	buildVertexCSR(coarse)
	return coarse, netMap, nil
}
