package hypergraph

import (
	"fmt"
	"slices"
	"sync"
)

// ContractOptions controls Contract behaviour.
type ContractOptions struct {
	// MergeParallelNets combines nets with identical pin sets into a single
	// net whose weight is the sum of the originals. Multilevel coarsening
	// enables this to keep coarse hypergraphs small.
	MergeParallelNets bool
}

// ContractScratch holds the reusable working state of Contract: the cluster
// mark array, the per-net collapsed-pin buffer, the growing coarse CSR
// accumulation buffers, the open-addressing hash table used for parallel-net
// merging, and the vertex-CSR construction cursors. Reusing one scratch
// across the levels of a coarsening descent (and across multistart
// hierarchies) removes nearly all of Contract's per-call allocations; only
// the right-sized arrays owned by the returned coarse hypergraph are
// allocated fresh.
//
// A ContractScratch must not be used by two contractions concurrently. The
// returned hypergraph never aliases scratch memory, so a scratch may be
// released (or pooled) as soon as Contract returns.
type ContractScratch struct {
	mark      []int32 // last net id that touched each cluster
	seen      []bool  // cluster has at least one member
	allPads   []bool  // cluster members are all pads
	collapsed []int32 // one net's pins collapsed to distinct clusters
	pins      []int32 // coarse pin accumulation
	offsets   []int32 // coarse net offsets accumulation
	weights   []int64 // coarse net weight accumulation
	table     []int32 // open-addressing slots: coarse net id or -1
	cursor    []int32 // vertex-CSR fill cursors
}

// NewContractScratch returns an empty ContractScratch; buffers are allocated
// lazily on first use and retained between contractions.
func NewContractScratch() *ContractScratch { return &ContractScratch{} }

// contractScratchPool caches scratches for callers of Contract. Sequential
// contractions on one goroutine (the levels of a coarsening descent) reuse
// one warm scratch; a bounded worker pool upstream keeps one per worker.
var contractScratchPool = sync.Pool{New: func() any { return NewContractScratch() }}

// Contract builds the coarse hypergraph induced by the clustering clusterOf,
// which maps each vertex of h to a cluster id in [0, numClusters). Cluster
// weights are the sums of member weights in every resource; nets are
// projected onto clusters, with pins collapsed to distinct clusters and nets
// spanning fewer than two clusters dropped. A cluster is marked as a pad only
// when all of its members are pads.
//
// The returned NetMap maps each original net to its coarse net id, or -1 when
// the net was dropped (or merged into another, when MergeParallelNets is set,
// in which case it maps to the survivor).
//
// Contract draws its working buffers from an internal pool; use ContractInto
// to manage the scratch explicitly.
func Contract(h *Hypergraph, clusterOf []int32, numClusters int, opts ContractOptions) (*Hypergraph, []int32, error) {
	s := contractScratchPool.Get().(*ContractScratch)
	defer contractScratchPool.Put(s)
	return ContractInto(h, clusterOf, numClusters, opts, s)
}

// ContractInto is Contract using the caller's scratch. It produces output
// bit-identical to Contract (and to the frozen ContractReference): the same
// coarse net order, pin order, weights and net map for any input.
func ContractInto(h *Hypergraph, clusterOf []int32, numClusters int, opts ContractOptions, s *ContractScratch) (*Hypergraph, []int32, error) {
	if len(clusterOf) != h.numVerts {
		return nil, nil, fmt.Errorf("hypergraph: clusterOf has %d entries for %d vertices", len(clusterOf), h.numVerts)
	}
	r := h.NumResources()
	coarse := &Hypergraph{
		numVerts:    numClusters,
		weights:     make([][]int64, r),
		totalWeight: make([]int64, r),
		isPad:       make([]bool, numClusters),
	}
	for i := 0; i < r; i++ {
		coarse.weights[i] = make([]int64, numClusters)
	}
	s.seen = growBools(s.seen, numClusters)
	s.allPads = growBools(s.allPads, numClusters)
	for c := 0; c < numClusters; c++ {
		s.seen[c] = false
		s.allPads[c] = true
	}
	for v := 0; v < h.numVerts; v++ {
		c := clusterOf[v]
		if c < 0 || int(c) >= numClusters {
			return nil, nil, fmt.Errorf("hypergraph: vertex %d mapped to cluster %d outside [0,%d)", v, c, numClusters)
		}
		s.seen[c] = true
		if !h.IsPad(v) {
			s.allPads[c] = false
		}
		for i := 0; i < r; i++ {
			coarse.weights[i][c] += h.weights[i][v]
		}
	}
	for c := 0; c < numClusters; c++ {
		if !s.seen[c] {
			return nil, nil, fmt.Errorf("hypergraph: cluster %d has no members", c)
		}
		coarse.isPad[c] = s.allPads[c]
	}
	for i := 0; i < r; i++ {
		coarse.totalWeight[i] = h.totalWeight[i]
	}

	// Project nets into the scratch accumulation buffers.
	netMap := make([]int32, h.numNets)
	s.mark = growInts(s.mark, numClusters)
	for c := 0; c < numClusters; c++ {
		s.mark[c] = -1
	}
	s.pins = s.pins[:0]
	s.offsets = append(s.offsets[:0], 0)
	s.weights = s.weights[:0]
	var tableMask uint64
	if opts.MergeParallelNets {
		// Power-of-two table with load factor <= 1/2 at the h.numNets upper
		// bound on distinct coarse nets.
		size := 16
		for size < 2*h.numNets {
			size <<= 1
		}
		s.table = growInts(s.table, size)
		for i := 0; i < size; i++ {
			s.table[i] = -1
		}
		tableMask = uint64(size - 1)
	}
	for e := 0; e < h.numNets; e++ {
		s.collapsed = s.collapsed[:0]
		for _, v := range h.Pins(e) {
			c := clusterOf[v]
			if s.mark[c] != int32(e) {
				s.mark[c] = int32(e)
				s.collapsed = append(s.collapsed, c)
			}
		}
		if len(s.collapsed) < 2 {
			netMap[e] = -1
			continue
		}
		if opts.MergeParallelNets {
			slices.Sort(s.collapsed)
			slot := hashPins(s.collapsed) & tableMask
			merged := false
			for {
				id := s.table[slot]
				if id < 0 {
					s.table[slot] = int32(len(s.weights))
					break
				}
				if pinsEqual(s.pins[s.offsets[id]:s.offsets[id+1]], s.collapsed) {
					s.weights[id] += h.netWeights[e]
					netMap[e] = id
					merged = true
					break
				}
				slot = (slot + 1) & tableMask
			}
			if merged {
				continue
			}
		}
		netMap[e] = int32(len(s.weights))
		s.pins = append(s.pins, s.collapsed...)
		s.offsets = append(s.offsets, int32(len(s.pins)))
		s.weights = append(s.weights, h.netWeights[e])
	}

	// Copy the accumulated CSR into right-sized arrays owned by the result:
	// coarse hypergraphs outlive the scratch (multistart hierarchies retain
	// every level), so they must not alias reusable buffers.
	coarse.numNets = len(s.weights)
	coarse.netOffsets = append(make([]int32, 0, len(s.offsets)), s.offsets...)
	coarse.netPins = append(make([]int32, 0, len(s.pins)), s.pins...)
	coarse.netWeights = append(make([]int64, 0, len(s.weights)), s.weights...)
	buildVertexCSRInto(coarse, s)
	return coarse, netMap, nil
}

// buildVertexCSRInto is buildVertexCSR with the fill cursors taken from the
// scratch; vertOffsets/vertNets are allocated fresh for the result.
func buildVertexCSRInto(h *Hypergraph, s *ContractScratch) {
	h.vertOffsets = make([]int32, h.numVerts+1)
	for _, v := range h.netPins {
		h.vertOffsets[v+1]++
	}
	for v := 0; v < h.numVerts; v++ {
		h.vertOffsets[v+1] += h.vertOffsets[v]
	}
	h.vertNets = make([]int32, len(h.netPins))
	s.cursor = growInts(s.cursor, h.numVerts)
	copy(s.cursor, h.vertOffsets[:h.numVerts])
	for e := 0; e < h.numNets; e++ {
		for _, v := range h.Pins(e) {
			h.vertNets[s.cursor[v]] = int32(e)
			s.cursor[v]++
		}
	}
}

// hashPins is FNV-1a over the pin ids; pins are sorted by the caller, so
// equal pin sets hash equally.
func hashPins(pins []int32) uint64 {
	h := uint64(1469598103934665603)
	for _, p := range pins {
		h ^= uint64(uint32(p))
		h *= 1099511628211
	}
	return h
}

func pinsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// growInts returns a length-n slice reusing s's backing array when large
// enough. Contents are unspecified.
func growInts(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
