package hypergraph_test

import (
	"testing"

	"repro/internal/hypergraph"
)

func buildForHash(t *testing.T, mutate func(b *hypergraph.Builder)) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(1)
	for v := 0; v < 6; v++ {
		b.AddVertex(int64(v + 1))
	}
	b.SetPad(5, true)
	b.AddNet(0, 1, 2)
	b.AddNet(2, 3)
	b.AddWeightedNet(3, 3, 4, 5)
	if mutate != nil {
		mutate(b)
	}
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestFingerprintStable: two independent builds of the same hypergraph share
// a fingerprint, and the fingerprint is a fixed value — it must never change
// across releases, because hpartd cache keys and recorded BENCH artifacts
// embed it.
func TestFingerprintStable(t *testing.T) {
	a := buildForHash(t, nil)
	b := buildForHash(t, nil)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("identical builds disagree: %016x vs %016x", a.Fingerprint(), b.Fingerprint())
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not idempotent")
	}
}

// TestFingerprintSensitivity: every structural aspect — vertex weights, net
// pins, net weights, pad flags — moves the fingerprint.
func TestFingerprintSensitivity(t *testing.T) {
	base := buildForHash(t, nil).Fingerprint()
	cases := map[string]func(b *hypergraph.Builder){
		"extra net":        func(b *hypergraph.Builder) { b.AddNet(0, 4) },
		"extra vertex+net": func(b *hypergraph.Builder) { v := b.AddVertex(9); b.AddNet(v, 0) },
		"net weight":       func(b *hypergraph.Builder) { b.AddWeightedNet(7, 0, 3) },
		"pad flag":         func(b *hypergraph.Builder) { b.SetPad(4, true) },
	}
	for name, mutate := range cases {
		if got := buildForHash(t, mutate).Fingerprint(); got == base {
			t.Errorf("%s: fingerprint unchanged (%016x)", name, got)
		}
	}
}

// TestFingerprintIgnoresNames: names are presentation, not structure.
func TestFingerprintIgnoresNames(t *testing.T) {
	base := buildForHash(t, nil).Fingerprint()
	named := buildForHash(t, func(b *hypergraph.Builder) { b.NameNet(0, "n0") })
	if named.Fingerprint() != base {
		t.Errorf("naming a net changed the fingerprint")
	}
}

// TestFingerprintBuilder exercises the streaming Fingerprint helper directly.
func TestFingerprintBuilder(t *testing.T) {
	a := hypergraph.NewFingerprint().Word(1).Word(2).Sum()
	b := hypergraph.NewFingerprint().Word(2).Word(1).Sum()
	if a == b {
		t.Error("word order does not matter — FNV should be order-sensitive")
	}
	c := hypergraph.NewFingerprint().Words([]int64{1, 2, 3}).Sum()
	d := hypergraph.NewFingerprint().Words([]int64{1, 2, 3}).Sum()
	if c != d {
		t.Error("Words not deterministic")
	}
}
