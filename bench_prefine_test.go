package repro

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/multilevel"
	"repro/internal/partition"
)

// BenchmarkParallelRefine measures the synchronous-round parallel refinement
// stage (Config.RefineWorkers) end to end on million-cell instances, one row
// per worker count in {1, 2, 4, 8} plus a serial-only baseline
// (RefineWorkers=0, the pre-stage pipeline). Coarsening is paid once per
// instance and shared by every row through Hierarchy.WithRefinement, so the
// rows time exactly what the stage changes: the refinement phase
// (refine_parallel_ns + refine_ns) of a full descent.
//
// Every worker row is verified bit-identical to the workers=1 row — cut, km1
// and assignment — before its timing counts; the determinism checks run
// unconditionally on every host. Quality is bounded against the serial-only
// baseline: each row's cut and km1 must stay within 5% on its single descent
// (the statistical 2%-of-mean bar over 40 trials lives in
// internal/multilevel's TestRefineWorkersDifferentialQuality).
//
// Environment knobs:
//
//	REPRO_PREFINE_PRESET  comma-separated instance presets
//	                      (default "HUGE1,HUGE2")
//	REPRO_PREFINE_SCALE   preset scale factor (default 1.0; CI smoke-tests a
//	                      reduced scale)
//
// As in BenchmarkParallelCoarsen, rows raise GOMAXPROCS toward the worker
// count but never past runtime.NumCPU(), and then clamp the effective worker
// count to the GOMAXPROCS actually granted (oversubscribing beyond
// schedulable CPUs only adds propose/merge overhead — results are
// bit-identical either way — and used to distort the high-worker rows on
// small hosts); each row records both the requested and effective counts.
// The first run writes
// BENCH_prefine.json (num_cpu recorded) and enforces the speedup bars the
// host can support: the refinement phase at 8 workers must be >= 3x faster
// than the serial-only baseline given 8 cores, >= 2x given 4, >= 1.2x given
// 2; hosts without spare cores instead bound every row's refinement time to
// 2x the serial-only baseline (the propose/resolve rounds do real extra
// snapshot and merge work that only pays off once workers get their own
// cores).
func BenchmarkParallelRefine(b *testing.B) {
	presets := strings.Split(envStr("REPRO_PREFINE_PRESET", "HUGE1,HUGE2"), ",")
	scale := envFloat("REPRO_PREFINE_SCALE", 1.0)
	workerCounts := []int{1, 2, 4, 8}

	// descend runs one full descent of h at the given RefineWorkers count and
	// reports the result, the refinement-phase nanoseconds (rounds + serial
	// polish), and the GOMAXPROCS it ran under. The RNG is fixed so every
	// descent draws the identical stream.
	descend := func(b *testing.B, h *multilevel.Hierarchy, workers int) (*multilevel.Result, prefinePhases, int, int) {
		procs := runtime.GOMAXPROCS(0)
		if target := min(workers, runtime.NumCPU()); target > procs {
			prev := runtime.GOMAXPROCS(target)
			defer runtime.GOMAXPROCS(prev)
			procs = target
		}
		// Clamp the effective count to the CPUs actually granted, as the
		// server layer does: counts >= 1 are bit-identical, so the clamp
		// only removes oversubscription overhead from the row (workers=0
		// stays 0, the stage off).
		effective := workers
		if effective > procs {
			effective = procs
		}
		phases := &multilevel.PhaseStats{}
		res, err := h.WithRefinement(multilevel.Config{RefineWorkers: effective, Stats: phases}).
			Descend(rand.New(rand.NewPCG(131, 7)))
		if err != nil {
			b.Fatal(err)
		}
		return res, prefinePhases{Rounds: phases.RefineParallelNS, Polish: phases.RefineNS}, procs, effective
	}

	build := func(b *testing.B, preset string) (*multilevel.Hierarchy, *partition.Problem) {
		nl := mustNetlist(b, preset, scale)
		p := partition.NewBipartition(nl.H, 0.02)
		h, err := multilevel.BuildHierarchy(p, multilevel.Config{CoarsenWorkers: min(8, runtime.NumCPU())}, rand.New(rand.NewPCG(31, 41)))
		if err != nil {
			b.Fatal(err)
		}
		return h, p
	}

	for _, preset := range presets {
		h, _ := build(b, preset)
		for _, workers := range append([]int{0}, workerCounts...) {
			b.Run(fmt.Sprintf("%s/workers=%d", preset, workers), func(b *testing.B) {
				var ph prefinePhases
				for i := 0; i < b.N; i++ {
					_, ph, _, _ = descend(b, h, workers)
				}
				b.ReportMetric(float64(ph.Rounds+ph.Polish)/1e6, "refine-ms")
			})
		}
	}

	prefineBaselineOnce.Do(func() {
		base := prefineBaseline{
			Scale:      scale,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		}
		for _, preset := range presets {
			h, p := build(b, preset)
			inst := prefineInstance{
				Instance: preset,
				Vertices: p.H.NumVertices(),
				Nets:     p.H.NumNets(),
				Pins:     p.H.NumPins(),
				Levels:   h.Levels(),
			}
			serial, sph, _, _ := descend(b, h, 0)
			inst.SerialRefineNS = sph.Polish
			inst.SerialCut = serial.Cut
			inst.SerialKM1 = serial.KMinus1

			var refCut, refKM1 int64
			var refAssign partition.Assignment
			for _, workers := range workerCounts {
				res, ph, procs, effective := descend(b, h, workers)
				if workers == workerCounts[0] {
					refCut, refKM1, refAssign = res.Cut, res.KMinus1, res.Assignment
				} else {
					// The determinism contract, enforced on every host: every
					// worker count must reproduce the workers=1 answer bit for
					// bit.
					if res.Cut != refCut || res.KMinus1 != refKM1 {
						b.Errorf("%s workers=%d: cut/km1 %d/%d != workers=1 %d/%d (determinism contract broken)",
							preset, workers, res.Cut, res.KMinus1, refCut, refKM1)
					}
					for v := range refAssign {
						if res.Assignment[v] != refAssign[v] {
							b.Errorf("%s workers=%d: assignment diverges from workers=1 at vertex %d", preset, workers, v)
							break
						}
					}
				}
				// Single-descent quality sanity bound against serial-only.
				if float64(res.Cut) > 1.05*float64(inst.SerialCut) {
					b.Errorf("%s workers=%d: cut %d exceeds serial-only %d by more than 5%%",
						preset, workers, res.Cut, inst.SerialCut)
				}
				if float64(res.KMinus1) > 1.05*float64(inst.SerialKM1) {
					b.Errorf("%s workers=%d: km1 %d exceeds serial-only %d by more than 5%%",
						preset, workers, res.KMinus1, inst.SerialKM1)
				}
				refineNS := ph.Rounds + ph.Polish
				inst.Rows = append(inst.Rows, prefineSample{
					Workers:          workers,
					EffectiveWorkers: effective,
					GOMAXPROCS:       procs,
					RoundsNS:         ph.Rounds,
					PolishNS:         ph.Polish,
					RefineNS:         refineNS,
					Speedup:          float64(inst.SerialRefineNS) / float64(refineNS),
					Cut:              res.Cut,
					KMinus1:          res.KMinus1,
				})
			}

			// Speedup bars scale with the cores the host can actually grant;
			// without spare cores the rows bound pure round overhead instead.
			row8 := inst.Rows[len(inst.Rows)-1]
			switch {
			case base.NumCPU >= 8 && row8.Speedup < 3.0:
				b.Errorf("%s: refine speedup at 8 workers %.2fx below the 3x bar on %d cores (serial-only %.1fms vs %.1fms)",
					preset, row8.Speedup, base.NumCPU, float64(inst.SerialRefineNS)/1e6, float64(row8.RefineNS)/1e6)
			case base.NumCPU >= 4 && base.NumCPU < 8 && row8.Speedup < 2.0:
				b.Errorf("%s: refine speedup at 8 workers %.2fx below the 2x bar on %d cores", preset, row8.Speedup, base.NumCPU)
			case base.NumCPU >= 2 && base.NumCPU < 4 && row8.Speedup < 1.2:
				b.Errorf("%s: refine speedup at 8 workers %.2fx below the 1.2x bar on %d cores", preset, row8.Speedup, base.NumCPU)
			case base.NumCPU == 1:
				for _, row := range inst.Rows {
					if float64(row.RefineNS) > 2.0*float64(inst.SerialRefineNS) {
						b.Errorf("%s workers=%d refinement %.1fms exceeds the 2x overhead bound over serial-only %.1fms on one core",
							preset, row.Workers, float64(row.RefineNS)/1e6, float64(inst.SerialRefineNS)/1e6)
					}
				}
			}
			base.Instances = append(base.Instances, inst)
		}

		buf, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_prefine.json", append(buf, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		for _, inst := range base.Instances {
			row8 := inst.Rows[len(inst.Rows)-1]
			fmt.Printf("wrote BENCH_prefine.json row (%s@%g, serial-only refine %.1fms, 8-worker speedup %.2fx on %d cores, cut %d vs serial %d)\n",
				inst.Instance, scale, float64(inst.SerialRefineNS)/1e6, row8.Speedup, base.NumCPU, row8.Cut, inst.SerialCut)
		}
	})
}

var prefineBaselineOnce sync.Once

// prefinePhases splits one descent's refinement phase: Rounds is the parallel
// round stage (refine_parallel_ns), Polish the serial FM passes (refine_ns).
type prefinePhases struct {
	Rounds, Polish int64
}

// prefineBaseline is the schema of BENCH_prefine.json. Per instance,
// serial_refine_ns is the refinement phase of the RefineWorkers=0 pipeline
// (the quality and speed baseline) and each row's speedup is that divided by
// the row's rounds+polish refinement time; num_cpu records how many real
// cores the rows could use, which is what the speedup bars (and the CI smoke
// assertion) condition on.
type prefineBaseline struct {
	Scale      float64           `json:"scale"`
	NumCPU     int               `json:"num_cpu"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Instances  []prefineInstance `json:"instances"`
}

type prefineInstance struct {
	Instance       string          `json:"instance"`
	Vertices       int             `json:"vertices"`
	Nets           int             `json:"nets"`
	Pins           int             `json:"pins"`
	Levels         int             `json:"levels"`
	SerialRefineNS int64           `json:"serial_refine_ns"`
	SerialCut      int64           `json:"serial_cut"`
	SerialKM1      int64           `json:"serial_km1"`
	Rows           []prefineSample `json:"rows"`
}

type prefineSample struct {
	Workers int `json:"workers"`
	// EffectiveWorkers is the count the row actually ran after the
	// GOMAXPROCS clamp (identical results; see the benchmark comment).
	EffectiveWorkers int     `json:"effective_workers"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
	RoundsNS         int64   `json:"rounds_ns"`
	PolishNS         int64   `json:"polish_ns"`
	RefineNS         int64   `json:"refine_ns"`
	Speedup          float64 `json:"speedup"`
	Cut              int64   `json:"cut"`
	KMinus1          int64   `json:"km1"`
}
